package locaware

import (
	"fmt"
	"io"

	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/sim"
	"github.com/p2prepro/locaware/internal/trace"
)

// FlightRecorder configures tail-sampling causal query tracing
// (Options.FlightRecorder): every query's events buffer only while the
// query is in flight, and on finalisation the trace is kept iff it matches
// at least one retention criterion — so the outliers of a huge run are
// caught in constant memory. Retained traces land on Result.Traces as
// reconstructed causal span trees (submission → per-hop forwards → hit →
// reverse-path response hops → download), renderable as text timelines or
// exportable to Chrome/Perfetto via Result.WritePerfetto.
//
// Recording is inert: trace events buffer in per-shard cells merged at the
// sequential epoch barrier, so the sharded parallel drain stays enabled
// and all metrics are byte-identical with or without a recorder attached.
type FlightRecorder struct {
	// SlowestN retains the N completed queries with the highest latency
	// (download time for answered queries, time-to-finalize for failed
	// ones), tracked in constant memory. 0 disables the criterion.
	SlowestN int
	// KeepFailed retains every query that finalised without an answer.
	KeepFailed bool
	// MinHops retains queries whose flood reached at least this forward
	// depth. 0 disables the criterion.
	MinHops int
	// MaxEventsPerQuery bounds the in-flight buffer per query; overflow is
	// counted in Trace.DroppedEvents. <= 0 means 256.
	MaxEventsPerQuery int
	// MaxKeep caps the KeepFailed/MinHops retentions so a pathological run
	// cannot retain without bound. <= 0 means 64.
	MaxKeep int
}

// policy lowers the facade recorder to the internal retention policy.
func (fr *FlightRecorder) policy() *trace.Policy {
	return &trace.Policy{
		KeepFailed:        fr.KeepFailed,
		MinHops:           fr.MinHops,
		SlowestN:          fr.SlowestN,
		MaxEventsPerQuery: fr.MaxEventsPerQuery,
		MaxKeep:           fr.MaxKeep,
	}
}

// Trace is one retained query's causal record (Options.FlightRecorder).
type Trace struct {
	// Query is the query's 1-based submission sequence number.
	Query uint64
	// SubmitSeconds is the submission timestamp in virtual seconds.
	SubmitSeconds float64
	// LatencySeconds is the completion latency in seconds: download time
	// minus submission for answered queries, time-to-finalize for failures.
	LatencySeconds float64
	// Hops is the deepest forward chain the query reached.
	Hops int
	// Failed reports the query finalised without an answer.
	Failed bool
	// Why names the retention criteria that kept the trace ("failed",
	// "hops", "slowest", comma-joined).
	Why string
	// Events is the query's flat event log in virtual-time order.
	Events []TraceEvent
	// DroppedEvents counts events discarded by MaxEventsPerQuery.
	DroppedEvents int

	qt         *trace.QueryTrace
	processing sim.Time
}

// Render reconstructs the query's span tree and formats it as an indented
// text timeline: one line per span with offsets relative to submission and
// each closed hop's latency split into propagation and processing.
func (t *Trace) Render() string {
	tree := t.qt.Tree(t.processing)
	if tree == nil {
		return ""
	}
	return tree.Render()
}

// liftTraces converts a run's retained traces into the facade shape.
func liftTraces(r *core.RunResult) []*Trace {
	if len(r.Traces) == 0 {
		return nil
	}
	out := make([]*Trace, len(r.Traces))
	for i, qt := range r.Traces {
		events := make([]TraceEvent, len(qt.Events))
		for j, e := range qt.Events {
			events[j] = TraceEvent{
				AtSeconds: e.At.Seconds(),
				Kind:      e.Kind.String(),
				Query:     e.Query,
				Peer:      e.Peer,
				From:      e.From,
				Detail:    e.Detail,
			}
		}
		out[i] = &Trace{
			Query:          qt.Query,
			SubmitSeconds:  qt.Submit.Seconds(),
			LatencySeconds: qt.Latency.Seconds(),
			Hops:           qt.Hops,
			Failed:         qt.Failed,
			Why:            qt.Why,
			Events:         events,
			DroppedEvents:  qt.Dropped,
			qt:             qt,
			processing:     r.TraceProcessing,
		}
	}
	return out
}

// SweepExemplar is one campaign cell's worst-case query trace: the
// highest-latency trace retained across the cell's (protocol × trial)
// runs, pre-rendered as a text timeline. Cells carry exemplars when the
// campaign runs with tracing enabled (Options.FlightRecorder for RunSweep,
// CampaignOptions.FlightRecorder for the distributed modes).
type SweepExemplar struct {
	// Protocol and Trial locate the run that produced the trace.
	Protocol Protocol
	Trial    int
	// Query is the traced query's id.
	Query uint64
	// LatencySeconds is the query's completion latency.
	LatencySeconds float64
	// Failed reports the query finalised without an answer.
	Failed bool
	// Hops is the deepest forward chain the query reached.
	Hops int
	// Rendered is the trace's span-tree text timeline.
	Rendered string
}

// CellExemplar returns grid cell `cell`'s worst-case query trace, or nil
// when the cell carries none (campaign ran untraced, or no trace matched
// the retention policy).
func (r *SweepResult) CellExemplar(cell int) (*SweepExemplar, error) {
	if cell < 0 || cell >= len(r.campaign.Cells) {
		return nil, fmt.Errorf("locaware: cell %d out of range [0, %d)", cell, len(r.campaign.Cells))
	}
	ex := r.campaign.Cells[cell].Exemplar
	if ex == nil {
		return nil, nil
	}
	return &SweepExemplar{
		Protocol:       Protocol(ex.Protocol),
		Trial:          ex.Trial,
		Query:          ex.Query,
		LatencySeconds: ex.LatencySeconds,
		Failed:         ex.Failed,
		Hops:           ex.Hops,
		Rendered:       ex.Rendered,
	}, nil
}

// WritePerfetto exports the run's retained traces in the Chrome trace-event
// JSON format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing:
// one track per participating peer, one complete event per span, and a
// global instant per scenario phase entry. It is a no-op JSON document when
// the run retained no traces; it errors only on writer failure.
func (r *Result) WritePerfetto(w io.Writer) error {
	trees := make([]*trace.SpanTree, 0, len(r.Traces))
	for _, t := range r.Traces {
		if tree := t.qt.Tree(t.processing); tree != nil {
			trees = append(trees, tree)
		}
	}
	return trace.WritePerfetto(w, trees, r.tracePhases)
}
