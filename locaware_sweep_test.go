package locaware

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sweepOptions is the shared sweep test base: accelerated arrivals so the
// grids stay fast.
func sweepOptions() Options {
	o := DefaultOptions()
	o.Seed = 1
	o.QueryRate = 0.01
	return o
}

func mustSweep(t *testing.T, name string) *Sweep {
	t.Helper()
	sw, err := SweepByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// tinyTestSweep shrinks a built-in campaign to test size: 2 trials, short
// runs. The axes and protocol set stay the built-in's.
func tinyTestSweep(t *testing.T, name string) *Sweep {
	t.Helper()
	return mustSweep(t, name).WithTrials(2).WithBudget(40, 120)
}

// TestSweepAcceptance locks the acceptance criterion end to end on a
// built-in campaign: the CSV and figure table are byte-identical at any
// worker count, and every cell equals a standalone RunTrials of the same
// configuration rooted at the cell's derived seed.
func TestSweepAcceptance(t *testing.T) {
	sw := tinyTestSweep(t, "cache-sweep")
	run := func(workers int) *SweepResult {
		o := sweepOptions()
		o.Workers = workers
		res, err := RunSweep(o, sw)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(8)
	if seq.CSV() != par.CSV() {
		t.Fatal("campaign CSV differs between 1 and 8 workers")
	}
	seqTable, err := seq.FigureTable("success", "")
	if err != nil {
		t.Fatal(err)
	}
	parTable, err := par.FigureTable("success", "")
	if err != nil {
		t.Fatal(err)
	}
	if seqTable != parTable {
		t.Fatal("figure table differs between 1 and 8 workers")
	}

	// Standalone equivalence: rebuild cell 3 (cache capacity 100, the
	// fourth axis value) as plain Options and run RunTrials at the cell's
	// derived seed — every estimate must match the campaign's exactly.
	const cell = 3
	seed, err := par.CellSeed(cell)
	if err != nil {
		t.Fatal(err)
	}
	o := sweepOptions()
	o.Peers = 500 // cache-sweep's base override
	o.CacheFilenames = 100
	o.Seed = seed
	o.Trials = 2
	for _, p := range sw.Protocols() {
		tr, err := RunTrials(o, p, sw.Warmup(), sw.Queries())
		if err != nil {
			t.Fatal(err)
		}
		for metric, want := range map[string]Estimate{
			"success":  tr.SuccessRate,
			"msgs":     tr.AvgMessagesPerQuery,
			"rtt":      tr.AvgDownloadRTTMs,
			"sameloc":  tr.SameLocalityRate,
			"cachehit": tr.CacheHitRate,
			"hops":     tr.AvgHops,
		} {
			got, err := par.CellEstimate(cell, p, metric)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s %s: campaign %+v != standalone RunTrials %+v", p, metric, got, want)
			}
		}
	}
}

// TestSweepFromJSON drives the JSON path: a custom campaign parses, runs,
// and rejects malformed input loudly.
func TestSweepFromJSON(t *testing.T) {
	spec := `{
		"name": "custom",
		"protocols": ["Dicas", "Locaware"],
		"warmup": 30,
		"queries": 90,
		"trials": 2,
		"base": {"peers": 80},
		"scenario": "steady-churn",
		"axes": [
			{"param": "ttl", "values": [3, 7]},
			{"param": "scenario-intensity", "values": [0.5, 1]}
		]
	}`
	sw, err := ParseSweep([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if sw.NumCells() != 4 {
		t.Fatalf("2×2 grid reports %d cells", sw.NumCells())
	}
	res, err := RunSweep(sweepOptions(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCells() != 4 || res.Trials() != 2 || res.Runs() != 16 {
		t.Fatalf("campaign shape: cells=%d trials=%d runs=%d", res.NumCells(), res.Trials(), res.Runs())
	}
	if res.PhaseCSV() == "" {
		t.Fatal("scenario campaign must export a phase CSV")
	}
	label, err := res.CellLabel(1)
	if err != nil || label != "ttl=3 scenario-intensity=1" {
		t.Fatalf("cell 1 label = %q, %v", label, err)
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "cell,ttl,scenario-intensity,protocol,trials,") {
		t.Fatalf("tidy CSV header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	// Header + 4 cells × 2 protocols rows.
	if got := strings.Count(strings.TrimSpace(csv), "\n"); got != 8 {
		t.Fatalf("tidy CSV has %d data rows, want 8", got)
	}

	if _, err := ParseSweep([]byte(`{"name":"x","queries":10,"axes":[{"param":"warp","values":[1]}]}`)); err == nil {
		t.Fatal("unknown axis parameter must be rejected")
	}
	if _, err := ParseSweep([]byte(`{"name":"x","queries":10,"axes":[{"param":"peers","values":[10]}],"oops":1}`)); err == nil {
		t.Fatal("unknown spec field must be rejected")
	}
}

// TestSweepOptionsLevel exercises the Options.Sweep surface and the
// Options fallbacks (Trials when the spec leaves it unset, Seed as the
// campaign root).
func TestSweepOptionsLevel(t *testing.T) {
	sw, err := ParseSweep([]byte(`{
		"name": "opt-level", "warmup": 20, "queries": 60,
		"protocols": ["Locaware"],
		"axes": [{"param": "peers", "values": [60, 90]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	o := sweepOptions()
	o.Sweep = sw
	o.Trials = 2
	o.Seed = 7
	res, err := RunSweep(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials() != 2 {
		t.Fatalf("Options.Trials fallback ignored: trials=%d", res.Trials())
	}
	if res.Seed() != 7 {
		t.Fatalf("campaign root = %d, want Options.Seed 7", res.Seed())
	}
	if seed0, _ := res.CellSeed(0); seed0 != 7 {
		t.Fatalf("cell 0 seed = %d, want campaign root (identity)", seed0)
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := RunSweep(sweepOptions(), nil); err == nil {
		t.Fatal("RunSweep without a sweep must error")
	}
	if _, err := SweepByName("no-such-campaign"); err == nil {
		t.Fatal("unknown campaign name must error")
	}
	sw := mustSweep(t, "ttl-sweep")
	r, err := RunSweep(sweepOptions(), sw.WithTrials(1).WithBudget(10, 30))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.CellEstimate(99, ProtocolLocaware, "success"); err == nil {
		t.Fatal("out-of-range cell must error")
	}
	if _, err := r.CellEstimate(0, ProtocolLocaware, "nope"); err == nil {
		t.Fatal("unknown metric must error")
	}
	if _, err := r.CellEstimate(0, Protocol("Chord"), "success"); err == nil {
		t.Fatal("foreign protocol must error")
	}
	if _, err := r.FigureTable("success", "bloom-bits"); err == nil {
		t.Fatal("a parameter the campaign does not sweep must error as an axis")
	}
}

func TestSweepRegistry(t *testing.T) {
	names := SweepNames()
	if len(names) < 4 {
		t.Fatalf("want at least 4 built-in campaigns, have %v", names)
	}
	for _, name := range names {
		sw, err := SweepByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if sw.Description() == "" || sw.NumCells() < 2 {
			t.Fatalf("campaign %q underspecified", name)
		}
		data, err := sw.JSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseSweep(data)
		if err != nil {
			t.Fatalf("builtin %q does not round-trip: %v", name, err)
		}
		if back.Name() != sw.Name() {
			t.Fatalf("round-trip renamed %q to %q", sw.Name(), back.Name())
		}
	}
	if len(SweepParams()) < 10 {
		t.Fatalf("sweep params: %v", SweepParams())
	}
	if len(SweepMetrics()) != 6 {
		t.Fatalf("sweep metrics: %v", SweepMetrics())
	}
}

// TestSweepWithBaseOverride locks the explicit-override path the CLI uses
// for -peers: a spec whose Base pins its own overlay size must yield to
// WithBase, and an unknown parameter must be rejected.
func TestSweepWithBaseOverride(t *testing.T) {
	sw := mustSweep(t, "cache-sweep").WithTrials(1).WithBudget(10, 40)
	small, err := sw.WithBase("peers", 60)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunSweep(sweepOptions(), sw)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := RunSweep(sweepOptions(), small)
	if err != nil {
		t.Fatal(err)
	}
	if big.CSV() == tiny.CSV() {
		t.Fatal("WithBase(peers) changed nothing — the spec's own Base override silently won")
	}
	if _, err := sw.WithBase("scenario", 1); err == nil {
		t.Fatal("non-numeric base parameter must be rejected")
	}
	// The source campaign must be untouched (copy-on-write).
	if _, err := RunSweep(sweepOptions(), sw); err != nil {
		t.Fatal(err)
	}
}

// TestLoadSweepAndScenario exercises the shared name-or-JSON-file
// resolution both CLIs use.
func TestLoadSweepAndScenario(t *testing.T) {
	if sw, err := LoadSweep("ttl-sweep"); err != nil || sw.Name() != "ttl-sweep" {
		t.Fatalf("LoadSweep builtin: %v", err)
	}
	if _, err := LoadSweep("no-such-campaign"); err == nil {
		t.Fatal("unknown name without path characters must not hit the filesystem")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "mini.json")
	spec := `{"name":"mini","queries":30,"warmup":10,"protocols":["Locaware"],"axes":[{"param":"peers","values":[50,70]}]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	sw, err := LoadSweep(path)
	if err != nil || sw.Name() != "mini" {
		t.Fatalf("LoadSweep file: %v", err)
	}
	if _, err := LoadSweep(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing spec file must error")
	}
	if sc, err := LoadScenario("flashcrowd"); err != nil || sc.Name() != "flashcrowd" {
		t.Fatalf("LoadScenario builtin: %v", err)
	}
	if _, err := LoadScenario(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing scenario file must error")
	}
}
