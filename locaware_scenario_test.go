package locaware

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// scenarioOptions is the shared scenario test world: small and accelerated,
// like the golden world.
func scenarioOptions() Options {
	o := DefaultOptions()
	o.Seed = 1
	o.Peers = 200
	o.QueryRate = 0.01
	return o
}

func mustScenario(t *testing.T, name string) *Scenario {
	t.Helper()
	sc, err := ScenarioByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestScenarioSeedReproducible locks seed determinism: the same seed and
// scenario reproduce every whole-run and per-phase metric exactly.
func TestScenarioSeedReproducible(t *testing.T) {
	run := func() *ScenarioResult {
		r, err := RunScenario(scenarioOptions(), ProtocolLocaware, mustScenario(t, "churn-waves"), 100, 200)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if len(a.Phases) != 4 {
		t.Fatalf("churn-waves produced %d phases, want 4", len(a.Phases))
	}
	o := scenarioOptions()
	o.Seed = 2
	c, err := RunScenario(o, ProtocolLocaware, mustScenario(t, "churn-waves"), 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Phases, c.Phases) {
		t.Fatal("different seeds produced identical phase metrics (suspicious)")
	}
}

// TestScenarioWorkerInvariance locks the parallelism contract for scenario
// runs: the worker count changes wall-clock time, never a single byte of
// output — whole-run figures, per-phase windows, everything.
func TestScenarioWorkerInvariance(t *testing.T) {
	run := func(workers int) *Comparison {
		o := scenarioOptions()
		o.Workers = workers
		o.Scenario = mustScenario(t, "flashcrowd")
		cmp, err := Compare(o, Baselines(), 100, 200, []int{50, 100, 150, 200})
		if err != nil {
			t.Fatal(err)
		}
		return cmp
	}
	seq, par := run(1), run(8)
	for _, f := range []Figure{FigureDownloadDistance, FigureSearchTraffic, FigureSuccessRate} {
		if seq.FigureTable(f) != par.FigureTable(f) {
			t.Fatalf("%s: figure table differs across worker counts", f)
		}
	}
	for i, sr := range seq.Results {
		pr := par.Results[i]
		if !reflect.DeepEqual(sr.Phases, pr.Phases) {
			t.Fatalf("%s: phase metrics differ across worker counts:\n%+v\n%+v",
				sr.Protocol, sr.Phases, pr.Phases)
		}
		if PhaseTable(sr.Phases) != PhaseTable(pr.Phases) {
			t.Fatalf("%s: phase table differs across worker counts", sr.Protocol)
		}
	}
}

// TestLegacyChurnBitIdenticalToScenario is the deprecation lock for the
// ad-hoc churn path: Options.Churn now lowers onto the built-in
// steady-churn scenario, and enabling either must produce bit-identical
// results.
func TestLegacyChurnBitIdenticalToScenario(t *testing.T) {
	legacy := scenarioOptions()
	legacy.Churn = true
	viaFlag, err := Run(legacy, ProtocolLocaware, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	explicit := scenarioOptions()
	explicit.Scenario = mustScenario(t, "steady-churn")
	viaScenario, err := Run(explicit, ProtocolLocaware, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaFlag, viaScenario) {
		t.Fatalf("Options.Churn and steady-churn scenario diverged:\n%+v\n%+v", viaFlag, viaScenario)
	}
	if len(viaFlag.Phases) != 1 || viaFlag.Phases[0].Phase != "steady" {
		t.Fatalf("legacy churn run reports phases %+v, want the single steady phase", viaFlag.Phases)
	}
}

// TestScenarioPhaseAccounting checks the per-phase windows tile the
// measured stream exactly: spans are contiguous, cover (0, queries], and
// their query counts and message totals recompose the whole-run scalars.
func TestScenarioPhaseAccounting(t *testing.T) {
	const queries = 200
	res, err := RunScenario(scenarioOptions(), ProtocolLocaware, mustScenario(t, "regional-outage"), 100, queries)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	total := 0
	var msgSum, succ float64
	for _, p := range res.Phases {
		if p.Start != prev {
			t.Fatalf("phase %q starts at %d, want %d", p.Phase, p.Start, prev)
		}
		if p.Queries != p.End-p.Start {
			t.Fatalf("phase %q has %d queries over span (%d,%d]", p.Phase, p.Queries, p.Start, p.End)
		}
		prev = p.End
		total += p.Queries
		msgSum += p.AvgMessagesPerQuery * float64(p.Queries)
		succ += p.SuccessRate * float64(p.Queries)
	}
	if prev != queries || total != queries {
		t.Fatalf("phases cover %d/%d queries to %d", total, queries, prev)
	}
	if got := msgSum / queries; !approxEqual(got, res.AvgMessagesPerQuery) {
		t.Fatalf("phase-weighted msgs/q %v != whole-run %v", got, res.AvgMessagesPerQuery)
	}
	if got := succ / queries; !approxEqual(got, res.SuccessRate) {
		t.Fatalf("phase-weighted success %v != whole-run %v", got, res.SuccessRate)
	}
}

// approxEqual tolerates float re-association when recomposing weighted means.
func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// TestScenarioFromJSON locks the no-code path: a JSON spec runs like a
// built-in, deterministically.
func TestScenarioFromJSON(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
	  "name": "json-test",
	  "phases": [
	    {"name": "a", "fraction": 1},
	    {"name": "b", "fraction": 1,
	     "churn": {"leave_prob": 0.05, "join_prob": 0.2},
	     "events": [{"kind": "churn-wave", "frac": 0.2},
	                {"kind": "flash-crowd", "hot_files": 4, "rate_factor": 2}]},
	    {"name": "c", "fraction": 2, "events": [{"kind": "calm"}, {"kind": "rejoin", "frac": 1}]}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.PhaseNames(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("phase names = %v", got)
	}
	run := func() *ScenarioResult {
		r, err := RunScenario(scenarioOptions(), ProtocolDicas, sc, 100, 200)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("JSON scenario not reproducible")
	}
	if len(a.Phases) != 3 || a.Phases[2].End != 200 || a.Phases[2].Start != 100 {
		t.Fatalf("phases = %+v", a.Phases)
	}

	if _, err := ParseScenario([]byte(`{"name":"x","phases":[{"name":"p","fraction":1,"typo":1}]}`)); err == nil {
		t.Fatal("unknown JSON field accepted")
	}
}

// TestScenarioErrors locks the error surface: unknown names, missing
// scenarios and unresolvable timelines fail with errors, not panics.
func TestScenarioErrors(t *testing.T) {
	if _, err := ScenarioByName("nope"); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
	if _, err := RunScenario(scenarioOptions(), ProtocolLocaware, nil, 10, 50); err == nil {
		t.Fatal("RunScenario without a scenario accepted")
	}
	// 4 phases cannot tile 3 measured queries.
	if _, err := RunScenario(scenarioOptions(), ProtocolLocaware, mustScenario(t, "flashcrowd"), 0, 3); err == nil {
		t.Fatal("unresolvable timeline accepted")
	}
	o := scenarioOptions()
	o.Scenario = mustScenario(t, "flashcrowd")
	if _, err := Compare(o, Baselines(), 0, 3, nil); err == nil {
		t.Fatal("Compare with unresolvable timeline accepted")
	}
	// Options.Scenario feeds RunScenario when no argument is given.
	if res, err := RunScenario(o, ProtocolLocaware, nil, 10, 50); err != nil || res.Scenario != "flashcrowd" {
		t.Fatalf("Options.Scenario fallback: %v, %v", res, err)
	}
}

// TestScenarioRegistry locks the public registry surface.
func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 6 {
		t.Fatalf("%d built-in scenarios, want >= 6", len(names))
	}
	for _, name := range names {
		sc, err := ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Description() == "" || len(sc.PhaseNames()) == 0 {
			t.Fatalf("scenario %q is underdocumented", name)
		}
		data, err := sc.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseScenario(data); err != nil {
			t.Fatalf("scenario %q does not round-trip through JSON: %v", name, err)
		}
	}
}

// TestGoldenScenarioTable locks the fixed-seed flashcrowd scenario output
// at 200 peers — the scenario counterpart of TestGoldenCompareTable. The
// table covers both the paired figure view and every protocol's per-phase
// windows, so any drift in the dynamics timeline, the event RNG, or the
// per-phase collector shows up as a byte diff. Regenerate with
// `go test -run TestGoldenScenarioTable -update .` and justify the diff.
func TestGoldenScenarioTable(t *testing.T) {
	o := goldenOptions()
	o.Scenario = mustScenario(t, "flashcrowd")
	cmp, err := Compare(o, Baselines(), 100, 200, []int{50, 100, 150, 200})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("== fig4-success-rate under scenario flashcrowd\n")
	b.WriteString(cmp.FigureTable(FigureSuccessRate))
	for _, r := range cmp.Results {
		b.WriteString("== phases: " + string(r.Protocol) + "\n")
		b.WriteString(PhaseTable(r.Phases))
	}
	got := b.String()

	path := filepath.Join("testdata", "golden_scenario_flashcrowd_200peers.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("scenario output drifted from golden file %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestScenarioTrialsContract locks replication under scenarios: trial 0 of
// a replicated scenario run is bit-identical to the sequential Run, and
// every trial reports the full phase timeline.
func TestScenarioTrialsContract(t *testing.T) {
	o := scenarioOptions()
	o.Scenario = mustScenario(t, "weekend-surge")
	o.Trials = 2
	o.Workers = 2
	tr, err := RunTrials(o, ProtocolLocaware, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	single := o
	single.Trials, single.Workers = 0, 0
	seq, err := Run(single, ProtocolLocaware, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Trials[0], seq) {
		t.Fatalf("trial 0 under scenario != sequential run:\n%+v\n%+v", tr.Trials[0], seq)
	}
	for i, r := range tr.Trials {
		if len(r.Phases) != 3 {
			t.Fatalf("trial %d has %d phases, want 3", i, len(r.Phases))
		}
	}
	if reflect.DeepEqual(tr.Trials[0].Phases, tr.Trials[1].Phases) {
		t.Fatal("independent trials produced identical phase metrics (suspicious)")
	}
}

// TestScenarioPhaseEstimates locks the replicated per-phase surface:
// RunTrials/CompareTrials under a scenario aggregate the phase windows
// across trials, phase-aligned, with cross-trial spread — and a
// single-trial comparison collapses to the per-run phase values with
// zero-width error bars.
func TestScenarioPhaseEstimates(t *testing.T) {
	o := scenarioOptions()
	o.Scenario = mustScenario(t, "churn-waves")
	o.Trials = 2
	o.Workers = 2
	tr, err := RunTrials(o, ProtocolLocaware, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Phases) != 4 {
		t.Fatalf("churn-waves aggregated %d phases, want 4", len(tr.Phases))
	}
	for i, ph := range tr.Phases {
		if ph.SuccessRate.N != 2 {
			t.Fatalf("phase %d pools %d trials, want 2", i, ph.SuccessRate.N)
		}
		// The estimate must be the mean of the per-trial phase values.
		want := (tr.Trials[0].Phases[i].SuccessRate + tr.Trials[1].Phases[i].SuccessRate) / 2
		if ph.SuccessRate.Mean != want {
			t.Fatalf("phase %d success mean %g != trial mean %g", i, ph.SuccessRate.Mean, want)
		}
		if ph.Phase != tr.Trials[0].Phases[i].Phase || ph.End != tr.Trials[0].Phases[i].End {
			t.Fatalf("phase %d identity drifted: %+v", i, ph)
		}
	}
	table := tr.PhaseTable()
	if !strings.Contains(table, "wave") || !strings.Contains(table, "±") {
		t.Fatalf("replicated phase table lacks phases or error bars:\n%s", table)
	}

	// Single-trial comparison: phase estimates equal the run's own phase
	// metrics exactly, with no spread.
	single := scenarioOptions()
	single.Scenario = mustScenario(t, "churn-waves")
	cmp, err := CompareTrials(single, []Protocol{ProtocolLocaware}, 100, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	set := cmp.Set(ProtocolLocaware)
	if len(set.Phases) != 4 {
		t.Fatalf("single-trial comparison aggregated %d phases", len(set.Phases))
	}
	for i, ph := range set.Phases {
		got := set.Trials[0].Phases[i]
		if ph.SuccessRate.Mean != got.SuccessRate || ph.SuccessRate.CI95 != 0 {
			t.Fatalf("phase %d: single-trial estimate %+v != run value %g", i, ph.SuccessRate, got.SuccessRate)
		}
	}
}

// TestScenarioTraceAnnotations locks the phase-entry trace surface: a
// traced scenario run emits one "phase" event per phase, inline and in
// timeline order, with no acting peer.
func TestScenarioTraceAnnotations(t *testing.T) {
	o := scenarioOptions()
	o.Peers = 80
	o.Scenario = mustScenario(t, "churn-waves")
	_, events, err := RunTraced(o, ProtocolLocaware, 0, 40, 100000)
	if err != nil {
		t.Fatal(err)
	}
	var phases []TraceEvent
	for _, e := range events {
		if e.Kind == "phase" {
			phases = append(phases, e)
		}
	}
	if len(phases) != 4 {
		t.Fatalf("traced run emitted %d phase events, want 4", len(phases))
	}
	for i, e := range phases {
		if e.Peer != -1 || e.From != -1 {
			t.Fatalf("phase event %d carries a peer: %+v", i, e)
		}
		if !strings.Contains(e.Detail, "scenario=churn-waves") {
			t.Fatalf("phase event %d detail = %q", i, e.Detail)
		}
		if i > 0 && e.AtSeconds < phases[i-1].AtSeconds {
			t.Fatalf("phase events out of timeline order: %+v", phases)
		}
		if !strings.Contains(e.String(), "phase") {
			t.Fatalf("phase event renders as %q", e.String())
		}
	}
	for i, name := range []string{"calm", "wave", "recovery", "settled"} {
		if !strings.Contains(phases[i].Detail, "phase="+name) {
			t.Fatalf("phase event %d = %q, want %s", i, phases[i].Detail, name)
		}
	}
}
