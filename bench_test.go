// Benchmarks regenerating every figure of the Locaware paper's evaluation
// (§5.2) plus the ablations and extensions documented in DESIGN.md. Each
// figure bench runs the paired comparison at a reduced-but-representative
// scale and reports the figure's metric per protocol via b.ReportMetric, so
// `go test -bench=.` reproduces the paper's rows. Absolute wall-clock time
// of a bench iteration is simulator speed, not a paper metric.
//
// Paper-scale regeneration (1000 peers) lives in cmd/locaware-exp; the
// benches use 400 peers so the full suite completes in minutes. The shape
// of every comparison (who wins, by roughly what factor) is preserved; see
// EXPERIMENTS.md for paper-scale numbers.
package locaware

import (
	"fmt"
	"testing"
)

// benchOptions is the shared bench world: 400 peers, accelerated arrivals.
func benchOptions(seed int64) Options {
	o := DefaultOptions()
	o.Seed = seed
	o.Peers = 400
	o.QueryRate = 0.005
	return o
}

const (
	benchWarmup  = 1000
	benchQueries = 1000
)

// benchCompare runs the four-protocol comparison once per bench iteration
// and reports the extractor's metric for each protocol.
func benchCompare(b *testing.B, metric string, extract func(*Result) float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cmp, err := Compare(benchOptions(1), Baselines(), benchWarmup, benchQueries, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range cmp.Results {
			b.ReportMetric(extract(r), fmt.Sprintf("%s:%s", r.Protocol, metric))
		}
	}
}

// BenchmarkFig2DownloadDistance regenerates Figure 2: average download
// distance (ms RTT requester→chosen provider) per protocol. Paper shape:
// Locaware ≈14% below the others and improving with query volume.
func BenchmarkFig2DownloadDistance(b *testing.B) {
	benchCompare(b, "rtt_ms", func(r *Result) float64 { return r.AvgDownloadRTTMs })
}

// BenchmarkFig3SearchTraffic regenerates Figure 3: search traffic in
// messages per query. Paper shape: Locaware and the Dicas variants ≈98%
// below Flooding.
func BenchmarkFig3SearchTraffic(b *testing.B) {
	benchCompare(b, "msgs_per_query", func(r *Result) float64 { return r.AvgMessagesPerQuery })
}

// BenchmarkFig4SuccessRate regenerates Figure 4: query success rate. Paper
// shape: Flooding best (huge traffic cost); Locaware above Dicas (+23%)
// and Dicas-Keys (+33%).
func BenchmarkFig4SuccessRate(b *testing.B) {
	benchCompare(b, "success", func(r *Result) float64 { return r.SuccessRate })
}

// BenchmarkAblationLandmarks sweeps the landmark count (paper §5.1: 4
// landmarks → 24 locIds; 5 landmarks scatter 1000 peers too thinly).
func BenchmarkAblationLandmarks(b *testing.B) {
	for _, k := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("landmarks=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions(1)
				o.Landmarks = k
				r, err := Run(o, ProtocolLocaware, benchWarmup, benchQueries)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.SameLocalityRate, "same_locality")
				b.ReportMetric(r.AvgDownloadRTTMs, "rtt_ms")
			}
		})
	}
}

// BenchmarkAblationCacheSize sweeps the response-index capacity.
func BenchmarkAblationCacheSize(b *testing.B) {
	for _, capacity := range []int{10, 25, 50, 100} {
		b.Run(fmt.Sprintf("cache=%d", capacity), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions(1)
				o.CacheFilenames = capacity
				r, err := Run(o, ProtocolLocaware, benchWarmup, benchQueries)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.SuccessRate, "success")
				b.ReportMetric(r.AvgMessagesPerQuery, "msgs_per_query")
			}
		})
	}
}

// BenchmarkAblationBloomSize sweeps the Bloom filter size (paper: 1200
// bits); smaller filters raise false positives and waste forwards, larger
// ones raise gossip cost.
func BenchmarkAblationBloomSize(b *testing.B) {
	for _, bits := range []int{300, 600, 1200, 2400} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions(1)
				o.BloomBits = bits
				r, err := Run(o, ProtocolLocaware, benchWarmup, benchQueries)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.SuccessRate, "success")
				b.ReportMetric(r.ControlKbits, "gossip_kbit")
			}
		})
	}
}

// BenchmarkAblationGroupCount sweeps Dicas's M: more groups mean sparser
// caching and more selective routing.
func BenchmarkAblationGroupCount(b *testing.B) {
	for _, m := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions(1)
				o.Groups = m
				r, err := Run(o, ProtocolLocaware, benchWarmup, benchQueries)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.SuccessRate, "success")
				b.ReportMetric(float64(r.CachedFilenames), "cached_filenames")
			}
		})
	}
}

// BenchmarkExtensionLocationRouting compares Locaware against the §6
// future-work location-aware routing variant.
func BenchmarkExtensionLocationRouting(b *testing.B) {
	for _, p := range []Protocol{ProtocolLocaware, ProtocolLocawareLR} {
		b.Run(string(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := Run(benchOptions(1), p, benchWarmup, benchQueries)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.AvgDownloadRTTMs, "rtt_ms")
				b.ReportMetric(r.SameLocalityRate, "same_locality")
			}
		})
	}
}

// BenchmarkExtensionChurn measures success degradation under peer churn
// for single-provider (Dicas) versus multi-provider (Locaware) indexes.
func BenchmarkExtensionChurn(b *testing.B) {
	for _, p := range []Protocol{ProtocolDicas, ProtocolLocaware} {
		for _, churn := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/churn=%v", p, churn), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					o := benchOptions(1)
					o.Churn = churn
					r, err := Run(o, p, benchWarmup, benchQueries)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(r.SuccessRate, "success")
				}
			})
		}
	}
}

// BenchmarkSimulatorThroughput measures raw engine performance: events
// processed per second for a Locaware run (simulator speed, not a paper
// metric, but the number that bounds experiment turnaround).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Run(benchOptions(int64(i+1)), ProtocolLocaware, 0, 500)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Events), "events")
	}
}

// BenchmarkScale20kPeers is the scale smoke lock behind the streaming
// metrics pipeline: a 20000-peer Locaware run end to end (world build +
// 500 measured queries) with allocation reporting. The streaming collector
// and pooled hot path keep the per-query allocation cost flat as the
// overlay grows; regressions show up here as a jump in allocs/op long
// before they OOM a 100k-peer experiment.
func BenchmarkScale20kPeers(b *testing.B) {
	o := DefaultOptions()
	o.Seed = 1
	o.Peers = 20000
	o.QueryRate = 0.002
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := Run(o, ProtocolLocaware, 0, 500)
		if err != nil {
			b.Fatal(err)
		}
		if r.Queries != 500 {
			b.Fatalf("measured %d queries", r.Queries)
		}
		b.ReportMetric(float64(r.Events), "events")
	}
}
