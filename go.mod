module github.com/p2prepro/locaware

go 1.24
