package locaware

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"github.com/p2prepro/locaware/internal/campaign"
	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/obs"
)

// Observer is a run-wide observability registry: attach one to
// Options.Observer (or CampaignOptions.Observer) and every simulation
// executed under it accumulates event-loop, protocol and campaign
// telemetry — counters, gauges and log-scale histograms — into one
// scrapeable surface. Instrumentation is provably inert: the hot path
// only increments shard-confined cells (merged at the sequential epoch
// barrier), never touches an RNG stream or event order, so results are
// byte-identical with or without an Observer, at any shard count.
//
// One Observer may be shared across concurrent runs; totals then cover
// all of them. Per-run snapshots are on Result.Runtime.
type Observer struct {
	reg *obs.Registry
}

// NewObserver returns an Observer with the full metric catalog
// pre-registered, so a scrape before the first run still advertises
// every family.
func NewObserver() *Observer {
	reg := obs.NewRegistry()
	core.RegisterObsFamilies(reg)
	campaign.RegisterMetrics(reg)
	return &Observer{reg: reg}
}

// Handler returns an http.Handler serving the Prometheus text exposition
// on /metrics and the runtime profiles on /debug/pprof/.
func (o *Observer) Handler() http.Handler { return obs.Handler(o.reg) }

// WriteMetrics writes the registry in Prometheus text exposition format
// (families and series in sorted order).
func (o *Observer) WriteMetrics(w io.Writer) error { return o.reg.WritePrometheus(w) }

// RuntimeStats is one run's observability snapshot — what that run
// contributed to its Observer, assembled from the run's own cells, so it
// is meaningful even when the Observer is shared.
type RuntimeStats struct {
	// Shards is the shard count the run was configured with (0 or 1 =
	// single event queue).
	Shards int
	// EventsByKind counts delivered events per kind (query-deliver,
	// response-deliver, gossip-round, ...) across all shards.
	EventsByKind map[string]uint64
	// EventsScheduled counts all schedule calls, including events later
	// dropped by the horizon.
	EventsScheduled uint64
	// EventsCancelled counts cancelled events the scheduler discarded,
	// whether skipped at pop time or reaped during a calendar rebuild.
	EventsCancelled uint64
	// QueueDepthHighWater is the deepest any event queue got.
	QueueDepthHighWater uint64
	// FreeListEvents is the pooled-event capacity left at end of run.
	FreeListEvents int
	// Epochs, CrossShardEvents and MaxEpochDrainSeconds describe the
	// sharded epoch loop; zero on a single queue.
	Epochs               uint64
	CrossShardEvents     uint64
	MaxEpochDrainSeconds float64
	// Protocol-plane counters.
	Submitted            uint64
	Finalized            uint64
	CacheHits            uint64
	CacheMisses          uint64
	StorageHits          uint64
	BloomInstallCopies   uint64
	PendingHighWater     uint64
	FinalizeWatermarkLag uint64
	// TraceEventsDropped counts trace events discarded by a full tracer
	// buffer (RunTraced's bounded buffer). Non-zero means the trace is
	// incomplete — raise maxEvents, or switch to a FlightRecorder, whose
	// tail sampling never overflows. Always 0 when untraced.
	TraceEventsDropped uint64
	// PoolFree is per-pool free-list occupancy at end of run.
	PoolFree map[string]int
}

func liftRuntime(rs *core.RuntimeStats) *RuntimeStats {
	if rs == nil {
		return nil
	}
	return &RuntimeStats{
		Shards:               rs.Shards,
		EventsByKind:         rs.EventsByKind,
		EventsScheduled:      rs.EventsScheduled,
		EventsCancelled:      rs.EventsCancelled,
		QueueDepthHighWater:  rs.QueueDepthHighWater,
		FreeListEvents:       rs.FreeListEvents,
		Epochs:               rs.Epochs,
		CrossShardEvents:     rs.CrossShardEvents,
		MaxEpochDrainSeconds: rs.MaxEpochDrainSeconds,
		Submitted:            rs.Submitted,
		Finalized:            rs.Finalized,
		CacheHits:            rs.CacheHits,
		CacheMisses:          rs.CacheMisses,
		StorageHits:          rs.StorageHits,
		BloomInstallCopies:   rs.BloomInstallCopies,
		PendingHighWater:     rs.PendingHighWater,
		FinalizeWatermarkLag: rs.FinalizeWatermarkLag,
		TraceEventsDropped:   rs.TraceEventsDropped,
		PoolFree:             rs.PoolFree,
	}
}

// Report renders the snapshot as an aligned, human-readable run report —
// what cmd/locaware-exp prints under -stats.
func (rs *RuntimeStats) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runtime stats:\n")
	fmt.Fprintf(&b, "  event loop:\n")
	shards := rs.Shards
	if shards < 1 {
		shards = 1
	}
	fmt.Fprintf(&b, "    %-28s %d\n", "shards", shards)
	fmt.Fprintf(&b, "    %-28s %d\n", "events scheduled", rs.EventsScheduled)
	fmt.Fprintf(&b, "    %-28s %d\n", "events cancelled", rs.EventsCancelled)
	fmt.Fprintf(&b, "    %-28s %d\n", "queue depth high water", rs.QueueDepthHighWater)
	fmt.Fprintf(&b, "    %-28s %d\n", "event freelist len", rs.FreeListEvents)
	if rs.Epochs > 0 {
		fmt.Fprintf(&b, "    %-28s %d\n", "epochs", rs.Epochs)
		fmt.Fprintf(&b, "    %-28s %d\n", "cross-shard events", rs.CrossShardEvents)
		fmt.Fprintf(&b, "    %-28s %.6f\n", "max epoch drain (s)", rs.MaxEpochDrainSeconds)
	}
	if len(rs.EventsByKind) > 0 {
		fmt.Fprintf(&b, "  events by kind:\n")
		kinds := make([]string, 0, len(rs.EventsByKind))
		for k := range rs.EventsByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(&b, "    %-28s %d\n", k, rs.EventsByKind[k])
		}
	}
	fmt.Fprintf(&b, "  protocol:\n")
	fmt.Fprintf(&b, "    %-28s %d\n", "queries submitted", rs.Submitted)
	fmt.Fprintf(&b, "    %-28s %d\n", "queries finalized", rs.Finalized)
	fmt.Fprintf(&b, "    %-28s %d\n", "cache hits", rs.CacheHits)
	fmt.Fprintf(&b, "    %-28s %d\n", "cache misses", rs.CacheMisses)
	fmt.Fprintf(&b, "    %-28s %d\n", "storage hits", rs.StorageHits)
	fmt.Fprintf(&b, "    %-28s %d\n", "bloom install copies", rs.BloomInstallCopies)
	fmt.Fprintf(&b, "    %-28s %d\n", "pending queries high water", rs.PendingHighWater)
	fmt.Fprintf(&b, "    %-28s %d\n", "finalize watermark lag", rs.FinalizeWatermarkLag)
	if rs.TraceEventsDropped > 0 {
		fmt.Fprintf(&b, "  warning: trace buffer overflowed; %d events dropped (trace is incomplete)\n", rs.TraceEventsDropped)
	}
	if len(rs.PoolFree) > 0 {
		fmt.Fprintf(&b, "  pool free lists:\n")
		pools := make([]string, 0, len(rs.PoolFree))
		for p := range rs.PoolFree {
			pools = append(pools, p)
		}
		sort.Strings(pools)
		for _, p := range pools {
			fmt.Fprintf(&b, "    %-28s %d\n", p, rs.PoolFree[p])
		}
	}
	return b.String()
}
