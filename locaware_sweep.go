package locaware

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/p2prepro/locaware/internal/stats"
	"github.com/p2prepro/locaware/internal/sweep"
)

// looksLikePath reports whether a registry argument should be treated as
// a file path (shared by the scenario and sweep CLI loaders).
func looksLikePath(arg string) bool { return strings.ContainsAny(arg, "./\\") }

// Sweep is a declarative experiment campaign: a grid of axes over
// simulation parameters (overlay size, cache capacity, TTL, scenario
// name/intensity, …) crossed with a protocol set and replicated
// trials-per-cell. RunSweep expands the grid, schedules every
// (cell × protocol × trial) simulation across the worker pool, streams the
// results into cross-trial (and, under scenarios, per-phase) aggregates,
// and exports tidy CSV plus paper-figure tables keyed by axis value with
// mean ± 95% CI error bars.
//
// Campaign determinism is cell-local: cell c's seed derives from the
// campaign seed and c alone, and trial t inside it from that cell seed and
// t — so any subset of the grid (one cell re-run in isolation, the same
// campaign at a different worker count) reproduces byte-identically, and
// every cell equals a standalone RunTrials of the same configuration.
//
// Obtain one from the built-in registry (SweepByName, SweepNames) or from
// JSON (ParseSweep); new campaigns need no code.
type Sweep struct {
	spec *sweep.Spec
}

// ErrUnknownSweep reports a name missing from the built-in registry.
var ErrUnknownSweep = errors.New("locaware: unknown sweep")

// SweepNames lists the built-in campaign registry, sorted.
func SweepNames() []string { return sweep.Names() }

// SweepByName returns a built-in campaign.
func SweepByName(name string) (*Sweep, error) {
	spec, ok := sweep.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %s)", ErrUnknownSweep, name,
			strings.Join(sweep.Names(), ", "))
	}
	return &Sweep{spec: spec}, nil
}

// ParseSweep decodes and validates a JSON campaign spec; see the README
// "Sweeps" section for the schema. Unknown fields are rejected.
func ParseSweep(data []byte) (*Sweep, error) {
	spec, err := sweep.ParseSpec(data)
	if err != nil {
		return nil, err
	}
	return &Sweep{spec: spec}, nil
}

// SweepParams lists the parameter names a sweep axis may range over.
func SweepParams() []string { return sweep.Params() }

// SweepMetrics lists the metric keys the figure exporters accept:
// success, msgs, rtt, sameloc, cachehit, hops.
func SweepMetrics() []string { return sweep.Metrics() }

// Name returns the campaign's name.
func (s *Sweep) Name() string { return s.spec.Name }

// Description returns the campaign's one-line summary.
func (s *Sweep) Description() string { return s.spec.Description }

// NumCells returns the grid size (product of the axis lengths).
func (s *Sweep) NumCells() int { return s.spec.NumCells() }

// Protocols returns the campaign's protocol set in run order.
func (s *Sweep) Protocols() []Protocol {
	names := s.spec.Protocols
	if len(names) == 0 {
		return Baselines()
	}
	out := make([]Protocol, len(names))
	for i, n := range names {
		out[i] = Protocol(n)
	}
	return out
}

// Axes returns the campaign's axis parameters in spec order.
func (s *Sweep) Axes() []string {
	out := make([]string, len(s.spec.Axes))
	for i, a := range s.spec.Axes {
		out[i] = a.Param
	}
	return out
}

// Warmup returns the campaign's per-run warmup query count.
func (s *Sweep) Warmup() int { return s.spec.Warmup }

// Queries returns the campaign's per-run measured query count.
func (s *Sweep) Queries() int { return s.spec.Queries }

// Trials returns the campaign's replication count per cell.
func (s *Sweep) Trials() int { return s.spec.Trials }

// WithTrials returns a copy of the campaign with the per-cell replication
// count replaced; n <= 0 returns the campaign unchanged.
func (s *Sweep) WithTrials(n int) *Sweep {
	if n <= 0 {
		return s
	}
	spec := *s.spec
	spec.Trials = n
	return &Sweep{spec: &spec}
}

// WithSeed returns a copy of the campaign rooted at a different seed;
// 0 returns the campaign unchanged.
func (s *Sweep) WithSeed(seed int64) *Sweep {
	if seed == 0 {
		return s
	}
	spec := *s.spec
	spec.Seed = seed
	return &Sweep{spec: &spec}
}

// WithBudget returns a copy of the campaign with its per-run warmup and
// measured query counts replaced; non-positive values keep the spec's.
func (s *Sweep) WithBudget(warmup, queries int) *Sweep {
	spec := *s.spec
	if warmup >= 0 {
		spec.Warmup = warmup
	}
	if queries > 0 {
		spec.Queries = queries
	}
	return &Sweep{spec: &spec}
}

// WithBase returns a copy of the campaign with one base-configuration
// override set or replaced — e.g. WithBase("peers", 100) shrinks a
// campaign whose spec pins its own overlay size. The parameter must be a
// numeric sweep parameter (SweepParams, minus the scenario pair).
func (s *Sweep) WithBase(param string, value float64) (*Sweep, error) {
	spec := *s.spec
	spec.Base = make(map[string]float64, len(s.spec.Base)+1)
	for k, v := range s.spec.Base {
		spec.Base[k] = v
	}
	spec.Base[param] = value
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Sweep{spec: &spec}, nil
}

// LoadSweep resolves a CLI-style campaign argument: a built-in name
// first; an argument containing path characters is read as a JSON spec
// file instead.
func LoadSweep(nameOrPath string) (*Sweep, error) {
	if sw, err := SweepByName(nameOrPath); err == nil {
		return sw, nil
	} else if !looksLikePath(nameOrPath) {
		return nil, err
	}
	data, err := os.ReadFile(nameOrPath)
	if err != nil {
		return nil, fmt.Errorf("locaware: reading sweep spec: %w", err)
	}
	return ParseSweep(data)
}

// JSON renders the campaign as indented JSON — the exact format ParseSweep
// accepts, so built-ins double as templates for custom campaigns.
func (s *Sweep) JSON() ([]byte, error) { return s.spec.JSON() }

// String identifies the campaign.
func (s *Sweep) String() string {
	return fmt.Sprintf("sweep{%s cells=%d}", s.spec.Name, s.spec.NumCells())
}

// SweepResult is one executed campaign: per-cell, per-protocol cross-trial
// aggregates in grid order, with CSV and figure exporters. It holds only
// aggregates — per-query records and per-trial collectors are folded and
// released while the campaign streams.
type SweepResult struct {
	campaign *sweep.Campaign
}

// RunSweep executes campaign sw (nil means Options.Sweep) over the base
// configuration described by o: every Options field acts as the campaign's
// base value and the axes override per cell; o.Workers bounds the worker
// pool shared by all (cell × protocol × trial) simulations. The spec's
// Trials and Seed win over o.Trials and o.Seed when set; dynamics come
// exclusively from the spec (scenario name/intensity), never from
// o.Scenario or o.Churn. Results are identical for every worker count.
func RunSweep(o Options, sw *Sweep) (*SweepResult, error) {
	if sw == nil {
		sw = o.Sweep
	}
	if sw == nil {
		return nil, errors.New("locaware: RunSweep needs a sweep (argument or Options.Sweep)")
	}
	spec := *sw.spec
	if spec.Trials <= 0 && o.Trials > 0 {
		spec.Trials = o.Trials
	}
	camp, err := sweep.Run(o.coreConfig(), &spec, o.Workers)
	if err != nil {
		return nil, err
	}
	return &SweepResult{campaign: camp}, nil
}

// Name returns the executed campaign's name.
func (r *SweepResult) Name() string { return r.campaign.Spec.Name }

// Seed returns the campaign root seed every cell seed derives from.
func (r *SweepResult) Seed() int64 { return r.campaign.Seed }

// Trials returns the replication count per cell.
func (r *SweepResult) Trials() int { return r.campaign.Trials }

// NumCells returns the number of grid cells the campaign aggregated.
func (r *SweepResult) NumCells() int { return len(r.campaign.Cells) }

// Runs returns the total simulation count (cells × protocols × trials).
func (r *SweepResult) Runs() int { return r.campaign.Runs() }

// Elapsed returns the campaign's wall-clock duration.
func (r *SweepResult) Elapsed() time.Duration { return r.campaign.Elapsed }

// CellsPerSecond reports campaign throughput in grid cells per second.
func (r *SweepResult) CellsPerSecond() float64 { return r.campaign.CellsPerSecond() }

// CellSeed returns the derived root seed of grid cell `cell` — the seed a
// standalone RunTrials needs to reproduce the cell exactly.
func (r *SweepResult) CellSeed(cell int) (int64, error) {
	if cell < 0 || cell >= len(r.campaign.Cells) {
		return 0, fmt.Errorf("locaware: cell %d out of range [0, %d)", cell, len(r.campaign.Cells))
	}
	return r.campaign.Cells[cell].Seed, nil
}

// CellLabel renders grid cell `cell`'s coordinates as "param=value …".
func (r *SweepResult) CellLabel(cell int) (string, error) {
	if cell < 0 || cell >= len(r.campaign.Cells) {
		return "", fmt.Errorf("locaware: cell %d out of range [0, %d)", cell, len(r.campaign.Cells))
	}
	return r.campaign.Cells[cell].Label(), nil
}

// CellEstimate returns one cross-trial metric estimate for (cell,
// protocol): metric is one of SweepMetrics().
func (r *SweepResult) CellEstimate(cell int, p Protocol, metric string) (Estimate, error) {
	if cell < 0 || cell >= len(r.campaign.Cells) {
		return Estimate{}, fmt.Errorf("locaware: cell %d out of range [0, %d)", cell, len(r.campaign.Cells))
	}
	for _, pc := range r.campaign.Cells[cell].Protocols {
		if pc.Protocol != string(p) {
			continue
		}
		sum, ok := sweep.MetricSummary(pc, metric)
		if !ok {
			return Estimate{}, fmt.Errorf("locaware: unknown sweep metric %q (have %s)",
				metric, strings.Join(sweep.Metrics(), ", "))
		}
		return toEstimate(sum), nil
	}
	return Estimate{}, fmt.Errorf("locaware: protocol %q not in campaign", p)
}

// CSV renders the campaign as one tidy table: a row per (cell × protocol)
// with axis-value columns and mean + 95% CI columns per headline metric —
// byte-identical for every worker count.
func (r *SweepResult) CSV() string { return r.campaign.CSV() }

// PhaseCSV renders the per-phase cross-trial aggregates as a tidy table
// (a row per cell × protocol × phase), or "" when no cell ran under a
// scenario.
func (r *SweepResult) PhaseCSV() string { return r.campaign.PhaseCSV() }

// FigureSeries extracts the campaign as figure curves: one series per
// protocol (per fixed combination of the non-x axes), x = the chosen axis
// value, y = the trial-mean metric with a 95% CI half-width. axisParam ""
// selects the first axis.
func (r *SweepResult) FigureSeries(metric, axisParam string) ([]*stats.Series, error) {
	return r.campaign.FigureSeries(metric, axisParam)
}

// FigureTable renders one campaign metric as an aligned text table with
// mean±ci95 cells, one row per axis value and one column per curve.
func (r *SweepResult) FigureTable(metric, axisParam string) (string, error) {
	return r.campaign.FigureTable(metric, axisParam)
}

// FigureCSV renders one campaign metric as figure-shaped CSV (x column
// plus value and _ci95 columns per curve) for external plotting.
func (r *SweepResult) FigureCSV(metric, axisParam string) (string, error) {
	return r.campaign.FigureCSV(metric, axisParam)
}
