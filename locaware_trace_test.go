package locaware

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestFlightRecorderFacade exercises Options.FlightRecorder end to end:
// retained traces land on Result.Traces slowest-first, render as span-tree
// timelines, export as valid Chrome/Perfetto JSON — and recording is
// inert, leaving the run's metrics identical to an untraced twin.
func TestFlightRecorderFacade(t *testing.T) {
	plain, err := Run(fastOptions(7), ProtocolLocaware, 10, 80)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Traces != nil {
		t.Fatal("untraced run must carry no traces")
	}

	o := fastOptions(7)
	o.FlightRecorder = &FlightRecorder{SlowestN: 3, KeepFailed: true}
	res, err := Run(o, ProtocolLocaware, 10, 80)
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate != plain.SuccessRate || res.Events != plain.Events {
		t.Fatalf("recorder perturbed the run: traced %+v vs plain %+v",
			res.SuccessRate, plain.SuccessRate)
	}
	if len(res.Traces) < 3 {
		t.Fatalf("retained %d traces, want >= 3 (slowest-N plus failures)", len(res.Traces))
	}
	for i, tr := range res.Traces {
		if tr.Why == "" || len(tr.Events) == 0 {
			t.Fatalf("trace %d incomplete: why=%q events=%d", i, tr.Why, len(tr.Events))
		}
		if i > 0 && !res.Traces[i].Failed && !res.Traces[i-1].Failed &&
			res.Traces[i].LatencySeconds > res.Traces[i-1].LatencySeconds {
			t.Fatalf("traces not slowest-first at %d: %f > %f",
				i, res.Traces[i].LatencySeconds, res.Traces[i-1].LatencySeconds)
		}
	}
	rendered := res.Traces[0].Render()
	if !strings.Contains(rendered, "q=") || !strings.Contains(rendered, "submit@") {
		t.Fatalf("rendered timeline malformed:\n%s", rendered)
	}

	var buf bytes.Buffer
	if err := res.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Perfetto export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	tracks, spans := 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			tracks++
		case "X":
			spans++
		}
	}
	if tracks == 0 || spans == 0 {
		t.Fatalf("Perfetto export has %d tracks, %d spans; want both > 0", tracks, spans)
	}
}

// TestRunSweepCellExemplars verifies a traced sweep ships a worst-case
// exemplar per cell, reachable through CellExemplar, without changing the
// campaign's CSV bytes.
func TestRunSweepCellExemplars(t *testing.T) {
	sw := tinyTestSweep(t, "cache-sweep")
	run := func(fr *FlightRecorder) *SweepResult {
		o := sweepOptions()
		o.FlightRecorder = fr
		res, err := RunSweep(o, sw)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	traced := run(&FlightRecorder{SlowestN: 1, KeepFailed: true})
	if plain.CSV() != traced.CSV() {
		t.Fatal("tracing changed the campaign CSV")
	}
	if ex, err := plain.CellExemplar(0); err != nil || ex != nil {
		t.Fatalf("untraced sweep returned an exemplar: %+v, %v", ex, err)
	}
	for cell := 0; cell < traced.NumCells(); cell++ {
		ex, err := traced.CellExemplar(cell)
		if err != nil {
			t.Fatal(err)
		}
		if ex == nil {
			t.Fatalf("cell %d carries no exemplar", cell)
		}
		if ex.LatencySeconds < 0 || ex.Rendered == "" {
			t.Fatalf("cell %d exemplar malformed: %+v", cell, ex)
		}
	}
	if _, err := traced.CellExemplar(traced.NumCells()); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	if _, err := traced.CellExemplar(-1); err == nil {
		t.Fatal("negative cell accepted")
	}
}
