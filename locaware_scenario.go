package locaware

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/scenario"
)

// Scenario is a declarative phased-dynamics timeline: the measured query
// stream is divided into named phases, each optionally running periodic
// churn and firing typed dynamics events on entry (churn waves, flash
// crowds, content injection/removal, provider migration, regional latency
// degradation and link loss). Scenarios are deterministic — the same seed
// and scenario reproduce the run byte-for-byte at any worker count — and
// every metric is additionally reported per phase.
//
// Obtain one from the built-in registry (ScenarioByName, ScenarioNames) or
// from JSON (ParseScenario); new scenarios need no code.
type Scenario struct {
	spec *scenario.Spec
}

// ErrUnknownScenario reports a name missing from the built-in registry.
var ErrUnknownScenario = errors.New("locaware: unknown scenario")

// ScenarioNames lists the built-in scenario registry, sorted.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioByName returns a built-in scenario.
func ScenarioByName(name string) (*Scenario, error) {
	spec, ok := scenario.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %s)", ErrUnknownScenario, name,
			strings.Join(scenario.Names(), ", "))
	}
	return &Scenario{spec: spec}, nil
}

// ParseScenario decodes and validates a JSON scenario spec; see the README
// "Scenarios" section for the schema. Unknown fields are rejected.
func ParseScenario(data []byte) (*Scenario, error) {
	spec, err := scenario.ParseSpec(data)
	if err != nil {
		return nil, err
	}
	return &Scenario{spec: spec}, nil
}

// LoadScenario resolves a CLI-style scenario argument: a built-in name
// first; an argument containing path characters is read as a JSON spec
// file instead. Both CLIs (locaware-exp, locaware-trace) resolve their
// -scenario flags through this helper.
func LoadScenario(nameOrPath string) (*Scenario, error) {
	if sc, err := ScenarioByName(nameOrPath); err == nil {
		return sc, nil
	} else if !looksLikePath(nameOrPath) {
		return nil, err
	}
	data, err := os.ReadFile(nameOrPath)
	if err != nil {
		return nil, fmt.Errorf("locaware: reading scenario spec: %w", err)
	}
	return ParseScenario(data)
}

// Name returns the scenario's name.
func (s *Scenario) Name() string { return s.spec.Name }

// Description returns the scenario's one-line summary.
func (s *Scenario) Description() string { return s.spec.Description }

// PhaseNames returns the phase names in timeline order.
func (s *Scenario) PhaseNames() []string {
	out := make([]string, len(s.spec.Phases))
	for i, p := range s.spec.Phases {
		out[i] = p.Name
	}
	return out
}

// JSON renders the scenario as indented JSON — the exact format
// ParseScenario accepts, so built-ins double as templates for custom specs.
func (s *Scenario) JSON() ([]byte, error) { return s.spec.JSON() }

// String identifies the scenario.
func (s *Scenario) String() string {
	return fmt.Sprintf("scenario{%s phases=%d}", s.spec.Name, len(s.spec.Phases))
}

// validateScenario checks that o's scenario (explicit or the legacy churn
// lowering) can be resolved onto `queries` measured queries, so entry
// points fail with an error instead of panicking deep in core.
func validateScenario(o Options, queries int) error {
	if o.Scenario == nil {
		return nil
	}
	_, err := o.Scenario.spec.Marks(queries)
	return err
}

// PhaseMetrics is the full metric set of one scenario phase, computed by
// the streaming collector over the measured queries in (Start, End].
type PhaseMetrics struct {
	// Phase is the phase's name from the scenario spec.
	Phase string
	// Start (exclusive) and End (inclusive) bound the phase's span of
	// cumulative measured query counts; Queries is the span's size.
	Start, End, Queries int
	// The figure metrics over the phase.
	SuccessRate         float64
	AvgMessagesPerQuery float64
	AvgDownloadRTTMs    float64
	// The secondary metrics over the phase (success-conditioned).
	SameLocalityRate float64
	CacheHitRate     float64
	AvgHops          float64
}

// ScenarioResult is one protocol's run under a scenario: the whole-run
// summary plus the scenario identity. Per-phase metrics are in
// Result.Phases.
type ScenarioResult struct {
	*Result
	// Scenario names the executed scenario.
	Scenario string
}

// RunScenario simulates protocol p under scenario sc (nil means
// o.Scenario): warmup queries run under the first phase's dynamics, then
// the measured stream walks the phase timeline. The result carries
// per-phase metric windows sealed by the streaming collector during the
// run.
func RunScenario(o Options, p Protocol, sc *Scenario, warmup, queries int) (*ScenarioResult, error) {
	if sc == nil {
		sc = o.Scenario
	}
	if sc == nil {
		return nil, errors.New("locaware: RunScenario needs a scenario (argument or Options.Scenario)")
	}
	o.Scenario = sc
	res, err := Run(o, p, warmup, queries)
	if err != nil {
		return nil, err
	}
	return &ScenarioResult{Result: res, Scenario: sc.Name()}, nil
}

// PhaseTable renders the per-phase metrics as an aligned text table.
func (r *ScenarioResult) PhaseTable() string {
	return PhaseTable(r.Phases)
}

// PhaseEstimates is the cross-trial aggregation of one scenario phase:
// every phase metric as a mean ± stddev ± 95% CI estimate pooled over the
// replicated trials, phase-aligned (trial t's phase k contributes to
// estimate k). Produced by RunTrials/CompareTrials when Options.Scenario
// (or the legacy churn flag) is set.
type PhaseEstimates struct {
	// Phase is the phase's name from the scenario spec.
	Phase string
	// Start (exclusive) and End (inclusive) bound the phase's span of
	// cumulative measured query counts, shared by all trials.
	Start, End int
	// Queries estimates how many queries each trial recorded in the span.
	Queries Estimate
	// The figure metrics over the phase.
	SuccessRate         Estimate
	AvgMessagesPerQuery Estimate
	AvgDownloadRTTMs    Estimate
	// The secondary metrics over the phase (success-conditioned).
	SameLocalityRate Estimate
	CacheHitRate     Estimate
	AvgHops          Estimate
}

// PhaseTable renders the replicated per-phase metrics as an aligned text
// table with mean±ci95 cells — the error-barred counterpart of the
// single-run PhaseTable.
func (r *TrialsResult) PhaseTable() string {
	return PhaseEstimateTable(r.Phases)
}

// PhaseEstimateTable renders cross-trial per-phase estimates as an aligned
// text table: one row per phase, mean±ci95 per metric.
func PhaseEstimateTable(phases []PhaseEstimates) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %13s %13s %15s %13s %13s %11s\n",
		"phase", "queries", "success", "msgs/q", "rtt(ms)", "sameLoc", "cacheHit", "hops")
	for _, p := range phases {
		fmt.Fprintf(&b, "%-12s %8.0f %13s %13s %15s %13s %13s %11s\n",
			p.Phase, p.Queries.Mean, p.SuccessRate, p.AvgMessagesPerQuery, p.AvgDownloadRTTMs,
			p.SameLocalityRate, p.CacheHitRate, p.AvgHops)
	}
	return b.String()
}

// PhaseTable renders per-phase metrics as an aligned text table: one row
// per phase, one column per metric.
func PhaseTable(phases []PhaseMetrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %9s %8s %10s %9s %10s %7s\n",
		"phase", "queries", "success", "msgs/q", "rtt(ms)", "sameLoc", "cacheHit", "hops")
	for _, p := range phases {
		fmt.Fprintf(&b, "%-12s %8d %9.3f %8.1f %10.1f %9.3f %10.3f %7.2f\n",
			p.Phase, p.Queries, p.SuccessRate, p.AvgMessagesPerQuery, p.AvgDownloadRTTMs,
			p.SameLocalityRate, p.CacheHitRate, p.AvgHops)
	}
	return b.String()
}

// PhaseSeries extracts one named metric across phases for each result of a
// scenario comparison — a per-phase counterpart of FigureSeries for ad-hoc
// plotting. Metric is one of: success, msgs, rtt, sameloc, cachehit, hops.
func PhaseSeries(results []*Result, metric string) (map[Protocol][]float64, error) {
	pick := func(p PhaseMetrics) (float64, bool) {
		switch metric {
		case "success":
			return p.SuccessRate, true
		case "msgs":
			return p.AvgMessagesPerQuery, true
		case "rtt":
			return p.AvgDownloadRTTMs, true
		case "sameloc":
			return p.SameLocalityRate, true
		case "cachehit":
			return p.CacheHitRate, true
		case "hops":
			return p.AvgHops, true
		}
		return 0, false
	}
	out := make(map[Protocol][]float64, len(results))
	for _, r := range results {
		vals := make([]float64, 0, len(r.Phases))
		for _, p := range r.Phases {
			v, ok := pick(p)
			if !ok {
				return nil, fmt.Errorf("locaware: unknown phase metric %q", metric)
			}
			vals = append(vals, v)
		}
		out[r.Protocol] = vals
	}
	return out, nil
}

// scenarioConfig lowers Options to core configuration with the scenario's
// phase grid resolved for `queries` measured queries.
func (o Options) scenarioConfig(queries int) core.Config {
	return core.ResolveScenario(o.coreConfig(), queries)
}
