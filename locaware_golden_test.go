package locaware

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenOptions is the fixed golden world: 200 peers, seed 1, accelerated
// arrivals. Any change to these values invalidates the golden file on
// purpose — the point is that refactors must not silently drift the
// numbers behind the paper's figures.
func goldenOptions() Options {
	o := DefaultOptions()
	o.Seed = 1
	o.Peers = 200
	o.QueryRate = 0.01
	return o
}

// TestGoldenCompareTable locks the fixed-seed Compare output for the
// paper's Fig. 3 (search traffic) and Fig. 4 (success rate) at 200 peers.
// A legitimate behaviour change must regenerate the file with
// `go test -run TestGoldenCompareTable -update .` and justify the diff in
// review; anything else reproducing this table byte-for-byte is the
// determinism contract working.
func TestGoldenCompareTable(t *testing.T) {
	cmp, err := Compare(goldenOptions(), Baselines(), 100, 200, []int{50, 100, 150, 200})
	if err != nil {
		t.Fatal(err)
	}
	got := "== fig3-search-traffic (messages/query)\n" +
		cmp.FigureTable(FigureSearchTraffic) +
		"== fig4-success-rate\n" +
		cmp.FigureTable(FigureSuccessRate)

	path := filepath.Join("testdata", "golden_compare_200peers.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("figure table drifted from golden file %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenMatchesTrialsPath proves the parallel trials path reproduces
// the golden numbers: a 1-trial CompareTrials at any worker count must
// yield the same figure means the golden table locks.
func TestGoldenMatchesTrialsPath(t *testing.T) {
	o := goldenOptions()
	o.Trials = 1
	o.Workers = 8
	tc, err := CompareTrials(o, Baselines(), 100, 200, []int{50, 100, 150, 200})
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(goldenOptions(), Baselines(), 100, 200, []int{50, 100, 150, 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Figure{FigureDownloadDistance, FigureSearchTraffic, FigureSuccessRate} {
		if tc.FigureTable(f) != cmp.FigureTable(f) {
			t.Fatalf("%s: single-trial CompareTrials table not byte-identical to Compare's", f)
		}
		if tc.FigureCSV(f) != cmp.FigureCSV(f) {
			t.Fatalf("%s: single-trial CompareTrials csv not byte-identical to Compare's", f)
		}
	}
	for i, ts := range tc.FigureSeries(FigureSuccessRate) {
		ss := cmp.FigureSeries(FigureSuccessRate)[i]
		if ts.Name != ss.Name || len(ts.Ys) != len(ss.Ys) {
			t.Fatalf("series shape mismatch: %s vs %s", ts.Name, ss.Name)
		}
		if ts.HasErrs() {
			t.Fatalf("%s: single trial must render without error bars", ts.Name)
		}
		for j := range ts.Ys {
			if ts.Ys[j] != ss.Ys[j] {
				t.Fatalf("%s point %d: trials path %v != sequential %v", ts.Name, j, ts.Ys[j], ss.Ys[j])
			}
		}
	}
}
