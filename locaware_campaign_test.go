package locaware

import (
	"strings"
	"testing"
)

// TestCampaignFacade locks the facade-level resume contract on a shrunken
// built-in sweep: fingerprints are stable across calls and sensitive to
// options, an interrupted-then-resumed checkpointed run recomputes only
// the missing cells, and its CSV equals a plain RunSweep byte for byte.
func TestCampaignFacade(t *testing.T) {
	o := sweepOptions()
	o.Workers = 4
	sw := tinyTestSweep(t, "cache-sweep")

	h1, err := SweepFingerprint(o, sw)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := SweepFingerprint(o, sw)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("fingerprint unstable or malformed: %q vs %q", h1, h2)
	}
	o2 := o
	o2.Seed = o.Seed + 1
	h3, err := SweepFingerprint(o2, sw)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("fingerprint ignores the seed")
	}

	plain, err := RunSweep(o, sw)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var lines []string
	copt := CampaignOptions{Checkpoint: dir, Resume: true,
		Logf: func(format string, args ...any) { lines = append(lines, format) }}
	res, stats, err := RunSweepCheckpointed(o, sw, copt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 0 || stats.Executed != stats.Cells {
		t.Fatalf("cold checkpointed run: %+v", stats)
	}
	if res.CSV() != plain.CSV() {
		t.Fatal("checkpointed run CSV differs from plain RunSweep")
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "resumed %d/%d cells") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no resume progress line logged; got %q", lines)
	}

	res2, stats2, err := RunSweepCheckpointed(o, sw, copt)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Resumed != stats.Cells || stats2.Executed != 0 {
		t.Fatalf("warm resume recomputed cells: %+v", stats2)
	}
	if res2.CSV() != plain.CSV() {
		t.Fatal("resumed run CSV differs from plain RunSweep")
	}
}
