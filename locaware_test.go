package locaware

import (
	"strings"
	"testing"
)

// fastOptions shrinks the world so facade tests run in milliseconds.
func fastOptions(seed int64) Options {
	o := DefaultOptions()
	o.Seed = seed
	o.Peers = 150
	o.QueryRate = 0.01
	return o
}

func TestRunBasic(t *testing.T) {
	res, err := Run(fastOptions(1), ProtocolFlooding, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != ProtocolFlooding || res.Queries != 50 {
		t.Fatalf("result header: %+v", res)
	}
	if res.SuccessRate <= 0 || res.SuccessRate > 1 {
		t.Fatalf("success = %v", res.SuccessRate)
	}
	if res.AvgMessagesPerQuery <= 0 {
		t.Fatalf("messages = %v", res.AvgMessagesPerQuery)
	}
	if res.Events == 0 || res.SimulatedSeconds <= 0 {
		t.Fatalf("accounting: %+v", res)
	}
}

func TestRunAllProtocols(t *testing.T) {
	for _, p := range []Protocol{ProtocolFlooding, ProtocolDicas, ProtocolDicasKeys, ProtocolLocaware, ProtocolLocawareLR} {
		res, err := Run(fastOptions(2), p, 20, 40)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Queries != 40 {
			t.Fatalf("%s measured %d", p, res.Queries)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(fastOptions(3), Protocol("bogus"), 0, 10); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := Run(fastOptions(3), ProtocolLocaware, 0, 0); err == nil {
		t.Fatal("zero queries accepted")
	}
	if _, err := Run(fastOptions(3), ProtocolLocaware, -1, 10); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(fastOptions(4), ProtocolLocaware, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastOptions(4), ProtocolLocaware, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	if a.SuccessRate != b.SuccessRate || a.Events != b.Events {
		t.Fatal("same-seed runs differ")
	}
}

func TestLocawareGossipAccounted(t *testing.T) {
	res, err := Run(fastOptions(5), ProtocolLocaware, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.ControlMessages == 0 {
		t.Fatal("no Bloom gossip recorded")
	}
	fl, err := Run(fastOptions(5), ProtocolFlooding, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if fl.ControlMessages != 0 {
		t.Fatal("flooding should not gossip")
	}
}

func TestCompareAndFigures(t *testing.T) {
	cmp, err := Compare(fastOptions(6), nil, 50, 100, []int{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Results) != 4 {
		t.Fatalf("results = %d", len(cmp.Results))
	}
	if cmp.Result(ProtocolLocaware) == nil || cmp.Result(ProtocolLocawareLR) != nil {
		t.Fatal("Result lookup broken")
	}
	for _, f := range []Figure{FigureDownloadDistance, FigureSearchTraffic, FigureSuccessRate} {
		series := cmp.FigureSeries(f)
		if len(series) != 4 {
			t.Fatalf("%s series = %d", f, len(series))
		}
		tbl := cmp.FigureTable(f)
		if !strings.Contains(tbl, "Locaware") || !strings.Contains(tbl, "Flooding") {
			t.Fatalf("%s table missing protocols:\n%s", f, tbl)
		}
		csv := cmp.FigureCSV(f)
		if !strings.HasPrefix(csv, "queries,") {
			t.Fatalf("%s csv header: %q", f, strings.SplitN(csv, "\n", 2)[0])
		}
	}
	h := cmp.Headlines()
	if h.TrafficReductionVsFlooding >= 0 {
		t.Fatalf("traffic reduction = %v, want negative", h.TrafficReductionVsFlooding)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(fastOptions(7), []Protocol{"nope"}, 0, 10, nil); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := Compare(fastOptions(7), nil, 0, 0, nil); err == nil {
		t.Fatal("zero queries accepted")
	}
}

func TestOptionsLowering(t *testing.T) {
	o := DefaultOptions()
	o.Peers = 123
	o.Landmarks = 3
	o.TTL = 5
	o.CacheFilenames = 10
	cfg := o.coreConfig()
	if cfg.NumPeers != 123 || cfg.Landmarks != 3 || cfg.Protocol.TTL != 5 ||
		cfg.Protocol.Cache.MaxFilenames != 10 {
		t.Fatalf("lowering lost fields: %+v", cfg)
	}
	// Zero-value options still produce a runnable config.
	var zero Options
	cfg = zero.coreConfig()
	if cfg.NumPeers <= 0 || cfg.Protocol.TTL <= 0 {
		t.Fatalf("zero options not defaulted: %+v", cfg)
	}
}

func TestBaselinesOrder(t *testing.T) {
	b := Baselines()
	if len(b) != 4 || b[0] != ProtocolFlooding || b[3] != ProtocolLocaware {
		t.Fatalf("baselines = %v", b)
	}
}

func TestChurnOption(t *testing.T) {
	o := fastOptions(8)
	o.Churn = true
	res, err := Run(o, ProtocolLocaware, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 100 {
		t.Fatalf("churn run measured %d", res.Queries)
	}
}

func TestRunTraced(t *testing.T) {
	res, events, err := RunTraced(fastOptions(20), ProtocolLocaware, 0, 20, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 20 {
		t.Fatalf("queries = %d", res.Queries)
	}
	if len(events) == 0 {
		t.Fatal("no events traced")
	}
	submits, outcomes := 0, 0
	for i, e := range events {
		if e.Kind == "submit" {
			submits++
		}
		if e.Kind == "download" || e.Kind == "failed" {
			outcomes++
		}
		if i > 0 && e.AtSeconds < events[i-1].AtSeconds {
			t.Fatal("events out of time order")
		}
		if e.String() == "" {
			t.Fatal("empty event string")
		}
	}
	if submits != 20 {
		t.Fatalf("submits = %d, want 20", submits)
	}
	if outcomes != 20 {
		t.Fatalf("outcomes = %d, want one per query", outcomes)
	}
}

func TestRunTracedErrors(t *testing.T) {
	if _, _, err := RunTraced(fastOptions(21), Protocol("nope"), 0, 5, 100); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, _, err := RunTraced(fastOptions(21), ProtocolLocaware, 0, 0, 100); err == nil {
		t.Fatal("zero queries accepted")
	}
	if _, _, err := RunTraced(fastOptions(21), ProtocolLocaware, -5, 5, 100); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

func TestLocalitiesReport(t *testing.T) {
	opts := DefaultOptions()
	opts.Peers = 500
	rep4 := Localities(opts)
	if rep4.Landmarks != 4 || rep4.PossibleLocIDs != 24 {
		t.Fatalf("report = %+v", rep4)
	}
	if rep4.OccupiedLocIDs == 0 || rep4.OccupiedLocIDs > 24 {
		t.Fatalf("occupied = %d", rep4.OccupiedLocIDs)
	}
	if rep4.MeanPeersPerLocality <= 0 || rep4.LargestLocality <= 0 {
		t.Fatalf("report = %+v", rep4)
	}
	opts.Landmarks = 5
	rep5 := Localities(opts)
	if rep5.PossibleLocIDs != 120 {
		t.Fatalf("5 landmarks possible = %d", rep5.PossibleLocIDs)
	}
	if rep5.MeanPeersPerLocality >= rep4.MeanPeersPerLocality {
		t.Fatal("5 landmarks should scatter peers more thinly (§5.1)")
	}
}

func TestSecondsHelper(t *testing.T) {
	if Seconds(1.5) != 1500000 {
		t.Fatalf("Seconds(1.5) = %d", Seconds(1.5))
	}
}
