package locaware

import (
	"reflect"
	"strings"
	"testing"
)

// fastOptions shrinks the world so facade tests run in milliseconds.
func fastOptions(seed int64) Options {
	o := DefaultOptions()
	o.Seed = seed
	o.Peers = 150
	o.QueryRate = 0.01
	return o
}

func TestRunBasic(t *testing.T) {
	res, err := Run(fastOptions(1), ProtocolFlooding, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != ProtocolFlooding || res.Queries != 50 {
		t.Fatalf("result header: %+v", res)
	}
	if res.SuccessRate <= 0 || res.SuccessRate > 1 {
		t.Fatalf("success = %v", res.SuccessRate)
	}
	if res.AvgMessagesPerQuery <= 0 {
		t.Fatalf("messages = %v", res.AvgMessagesPerQuery)
	}
	if res.Events == 0 || res.SimulatedSeconds <= 0 {
		t.Fatalf("accounting: %+v", res)
	}
}

func TestRunAllProtocols(t *testing.T) {
	for _, p := range []Protocol{ProtocolFlooding, ProtocolDicas, ProtocolDicasKeys, ProtocolLocaware, ProtocolLocawareLR} {
		res, err := Run(fastOptions(2), p, 20, 40)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Queries != 40 {
			t.Fatalf("%s measured %d", p, res.Queries)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(fastOptions(3), Protocol("bogus"), 0, 10); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := Run(fastOptions(3), ProtocolLocaware, 0, 0); err == nil {
		t.Fatal("zero queries accepted")
	}
	if _, err := Run(fastOptions(3), ProtocolLocaware, -1, 10); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(fastOptions(4), ProtocolLocaware, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastOptions(4), ProtocolLocaware, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	if a.SuccessRate != b.SuccessRate || a.Events != b.Events {
		t.Fatal("same-seed runs differ")
	}
}

func TestLocawareGossipAccounted(t *testing.T) {
	res, err := Run(fastOptions(5), ProtocolLocaware, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.ControlMessages == 0 {
		t.Fatal("no Bloom gossip recorded")
	}
	fl, err := Run(fastOptions(5), ProtocolFlooding, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if fl.ControlMessages != 0 {
		t.Fatal("flooding should not gossip")
	}
}

func TestCompareAndFigures(t *testing.T) {
	cmp, err := Compare(fastOptions(6), nil, 50, 100, []int{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Results) != 4 {
		t.Fatalf("results = %d", len(cmp.Results))
	}
	if cmp.Result(ProtocolLocaware) == nil || cmp.Result(ProtocolLocawareLR) != nil {
		t.Fatal("Result lookup broken")
	}
	for _, f := range []Figure{FigureDownloadDistance, FigureSearchTraffic, FigureSuccessRate} {
		series := cmp.FigureSeries(f)
		if len(series) != 4 {
			t.Fatalf("%s series = %d", f, len(series))
		}
		tbl := cmp.FigureTable(f)
		if !strings.Contains(tbl, "Locaware") || !strings.Contains(tbl, "Flooding") {
			t.Fatalf("%s table missing protocols:\n%s", f, tbl)
		}
		csv := cmp.FigureCSV(f)
		if !strings.HasPrefix(csv, "queries,") {
			t.Fatalf("%s csv header: %q", f, strings.SplitN(csv, "\n", 2)[0])
		}
	}
	h := cmp.Headlines()
	if h.TrafficReductionVsFlooding >= 0 {
		t.Fatalf("traffic reduction = %v, want negative", h.TrafficReductionVsFlooding)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(fastOptions(7), []Protocol{"nope"}, 0, 10, nil); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := Compare(fastOptions(7), nil, 0, 0, nil); err == nil {
		t.Fatal("zero queries accepted")
	}
}

func TestOptionsLowering(t *testing.T) {
	o := DefaultOptions()
	o.Peers = 123
	o.Landmarks = 3
	o.TTL = 5
	o.CacheFilenames = 10
	cfg := o.coreConfig()
	if cfg.NumPeers != 123 || cfg.Landmarks != 3 || cfg.Protocol.TTL != 5 ||
		cfg.Protocol.Cache.MaxFilenames != 10 {
		t.Fatalf("lowering lost fields: %+v", cfg)
	}
	// Zero-value options still produce a runnable config.
	var zero Options
	cfg = zero.coreConfig()
	if cfg.NumPeers <= 0 || cfg.Protocol.TTL <= 0 {
		t.Fatalf("zero options not defaulted: %+v", cfg)
	}
}

func TestBaselinesOrder(t *testing.T) {
	b := Baselines()
	if len(b) != 4 || b[0] != ProtocolFlooding || b[3] != ProtocolLocaware {
		t.Fatalf("baselines = %v", b)
	}
}

func TestChurnOption(t *testing.T) {
	o := fastOptions(8)
	o.Churn = true
	res, err := Run(o, ProtocolLocaware, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 100 {
		t.Fatalf("churn run measured %d", res.Queries)
	}
}

func TestRunTraced(t *testing.T) {
	res, events, err := RunTraced(fastOptions(20), ProtocolLocaware, 0, 20, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 20 {
		t.Fatalf("queries = %d", res.Queries)
	}
	if len(events) == 0 {
		t.Fatal("no events traced")
	}
	submits, outcomes := 0, 0
	for i, e := range events {
		if e.Kind == "submit" {
			submits++
		}
		if e.Kind == "download" || e.Kind == "failed" {
			outcomes++
		}
		if i > 0 && e.AtSeconds < events[i-1].AtSeconds {
			t.Fatal("events out of time order")
		}
		if e.String() == "" {
			t.Fatal("empty event string")
		}
	}
	if submits != 20 {
		t.Fatalf("submits = %d, want 20", submits)
	}
	if outcomes != 20 {
		t.Fatalf("outcomes = %d, want one per query", outcomes)
	}
}

func TestRunTracedErrors(t *testing.T) {
	if _, _, err := RunTraced(fastOptions(21), Protocol("nope"), 0, 5, 100); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, _, err := RunTraced(fastOptions(21), ProtocolLocaware, 0, 0, 100); err == nil {
		t.Fatal("zero queries accepted")
	}
	if _, _, err := RunTraced(fastOptions(21), ProtocolLocaware, -5, 5, 100); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

func TestLocalitiesReport(t *testing.T) {
	opts := DefaultOptions()
	opts.Peers = 500
	rep4 := Localities(opts)
	if rep4.Landmarks != 4 || rep4.PossibleLocIDs != 24 {
		t.Fatalf("report = %+v", rep4)
	}
	if rep4.OccupiedLocIDs == 0 || rep4.OccupiedLocIDs > 24 {
		t.Fatalf("occupied = %d", rep4.OccupiedLocIDs)
	}
	if rep4.MeanPeersPerLocality <= 0 || rep4.LargestLocality <= 0 {
		t.Fatalf("report = %+v", rep4)
	}
	opts.Landmarks = 5
	rep5 := Localities(opts)
	if rep5.PossibleLocIDs != 120 {
		t.Fatalf("5 landmarks possible = %d", rep5.PossibleLocIDs)
	}
	if rep5.MeanPeersPerLocality >= rep4.MeanPeersPerLocality {
		t.Fatal("5 landmarks should scatter peers more thinly (§5.1)")
	}
}

func TestSecondsHelper(t *testing.T) {
	if Seconds(1.5) != 1500000 {
		t.Fatalf("Seconds(1.5) = %d", Seconds(1.5))
	}
}

func TestRunTrialsSingleTrialMatchesRun(t *testing.T) {
	o := fastOptions(30)
	single, err := Run(o, ProtocolLocaware, 20, 60)
	if err != nil {
		t.Fatal(err)
	}
	o.Trials = 1
	agg, err := RunTrials(o, ProtocolLocaware, 20, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Trials) != 1 {
		t.Fatalf("trials = %d", len(agg.Trials))
	}
	if !reflect.DeepEqual(agg.Trials[0], single) {
		t.Fatalf("Trials=1 diverged from Run:\n%+v\nvs\n%+v", agg.Trials[0], single)
	}
	if agg.SuccessRate.Mean != single.SuccessRate || agg.SuccessRate.CI95 != 0 {
		t.Fatalf("estimate = %+v", agg.SuccessRate)
	}
}

func TestRunTrialsWorkerCountInvariant(t *testing.T) {
	o := fastOptions(31)
	o.Trials = 4
	o.Workers = 1
	a, err := RunTrials(o, ProtocolLocaware, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	b, err := RunTrials(o, ProtocolLocaware, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Workers=1 vs Workers=8 aggregated results differ")
	}
}

func TestRunTrialsErrors(t *testing.T) {
	o := fastOptions(32)
	if _, err := RunTrials(o, Protocol("bogus"), 0, 10); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := RunTrials(o, ProtocolLocaware, 0, 0); err == nil {
		t.Fatal("zero queries accepted")
	}
	if _, err := RunTrials(o, ProtocolLocaware, -1, 10); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

func TestCompareTrialsDeterministicAcrossWorkers(t *testing.T) {
	o := fastOptions(33)
	o.Trials = 3
	run := func(workers int) *TrialsComparison {
		oo := o
		oo.Workers = workers
		cmp, err := CompareTrials(oo, []Protocol{ProtocolFlooding, ProtocolLocaware}, 10, 40, []int{20, 40})
		if err != nil {
			t.Fatal(err)
		}
		return cmp
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a.Sets, b.Sets) {
		t.Fatal("Sets differ across worker counts")
	}
	for _, f := range []Figure{FigureDownloadDistance, FigureSearchTraffic, FigureSuccessRate} {
		if a.FigureTable(f) != b.FigureTable(f) {
			t.Fatalf("%s table differs across worker counts", f)
		}
		if a.FigureCSV(f) != b.FigureCSV(f) {
			t.Fatalf("%s csv differs across worker counts", f)
		}
	}
}

func TestCompareTrialsFiguresAndHeadlines(t *testing.T) {
	o := fastOptions(34)
	o.Trials = 2
	cmp, err := CompareTrials(o, nil, 20, 60, []int{30, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Sets) != 4 {
		t.Fatalf("sets = %d", len(cmp.Sets))
	}
	if cmp.Set(ProtocolLocaware) == nil || cmp.Set(ProtocolLocawareLR) != nil {
		t.Fatal("Set lookup broken")
	}
	tbl := cmp.FigureTable(FigureSuccessRate)
	if !strings.Contains(tbl, "±") {
		t.Fatalf("table missing error bars:\n%s", tbl)
	}
	csv := cmp.FigureCSV(FigureSuccessRate)
	if !strings.Contains(csv, "Locaware_ci95") {
		t.Fatalf("csv missing ci column: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	series := cmp.FigureSeries(FigureSearchTraffic)
	if len(series) != 4 || !series[0].HasErrs() {
		t.Fatal("series missing error bars")
	}
	h := cmp.Headlines()
	if h.TrafficReductionVsFlooding >= 0 {
		t.Fatalf("traffic reduction = %v, want negative", h.TrafficReductionVsFlooding)
	}
	for _, set := range cmp.Sets {
		if set.SuccessRate.N != 2 || len(set.Trials) != 2 {
			t.Fatalf("%s: %+v", set.Protocol, set.SuccessRate)
		}
	}
}

func TestCompareTrialsErrors(t *testing.T) {
	o := fastOptions(35)
	if _, err := CompareTrials(o, []Protocol{"nope"}, 0, 10, nil); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := CompareTrials(o, nil, 0, 0, nil); err == nil {
		t.Fatal("zero queries accepted")
	}
	if _, err := CompareTrials(o, nil, -1, 10, nil); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{N: 8, Mean: 0.431, StdDev: 0.02, CI95: 0.014}
	if e.String() != "0.431±0.014" {
		t.Fatalf("Estimate.String() = %q", e.String())
	}
}

func TestEstimateStringSingleTrial(t *testing.T) {
	e := Estimate{N: 1, Mean: 0.431}
	if e.String() != "0.431" {
		t.Fatalf("single-trial Estimate.String() = %q, want bare mean", e.String())
	}
}

func TestCompareHonorsWorkers(t *testing.T) {
	o := fastOptions(36)
	o.Workers = 1
	a, err := Compare(o, []Protocol{ProtocolFlooding, ProtocolLocaware}, 10, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	b, err := Compare(o, []Protocol{ProtocolFlooding, ProtocolLocaware}, 10, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Results, b.Results) {
		t.Fatal("Compare results differ across worker counts")
	}
}
