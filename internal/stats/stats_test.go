package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !almost(s.Mean, 5) {
		t.Fatalf("summary = %+v", s)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s.StdDev-2.13809) > 1e-4 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.StdDev != 0 || s.CI95() != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestCI95(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	ci := s.CI95()
	if ci <= 0 || ci > s.StdDev {
		t.Fatalf("ci = %v", ci)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if !almost(Percentile(xs, 0), 15) || !almost(Percentile(xs, 100), 50) {
		t.Fatal("extremes wrong")
	}
	if !almost(Percentile(xs, 50), 35) {
		t.Fatalf("median = %v", Percentile(xs, 50))
	}
	if !almost(Median(xs), 35) {
		t.Fatal("Median disagrees")
	}
	// Interpolation: 25th of [10,20] = 12.5.
	if !almost(Percentile([]float64{10, 20}, 25), 12.5) {
		t.Fatalf("interp = %v", Percentile([]float64{10, 20}, 25))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	if !almost(Percentile([]float64{7}, 90), 7) {
		t.Fatal("single percentile")
	}
	// Clamping.
	if !almost(Percentile(xs, -5), 15) || !almost(Percentile(xs, 150), 50) {
		t.Fatal("clamp failed")
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestPercentileQuickMonotone(t *testing.T) {
	prop := func(raw []float64, pa, pb uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a, b := float64(pa%101), float64(pb%101)
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ma := MovingAverage(xs, 3)
	if len(ma) != 6 {
		t.Fatalf("len = %d", len(ma))
	}
	if !almost(ma[0], 1) || !almost(ma[1], 1.5) || !almost(ma[2], 2) {
		t.Fatalf("warmup = %v", ma[:3])
	}
	if !almost(ma[5], 5) { // (4+5+6)/3
		t.Fatalf("ma[5] = %v", ma[5])
	}
	cp := MovingAverage(xs, 1)
	if !almost(cp[3], 4) {
		t.Fatal("window=1 should copy")
	}
}

func TestRelativeChange(t *testing.T) {
	if !almost(RelativeChange(100, 86), -0.14) {
		t.Fatalf("got %v", RelativeChange(100, 86))
	}
	if RelativeChange(0, 5) != 0 {
		t.Fatal("zero denominator not guarded")
	}
}

func TestSeriesBasics(t *testing.T) {
	s := &Series{Name: "locaware"}
	if s.LastY() != 0 || s.Len() != 0 {
		t.Fatal("empty series accessors")
	}
	s.Add(100, 1.5)
	s.Add(200, 2.5)
	if s.Len() != 2 || !almost(s.LastY(), 2.5) || !almost(s.MeanY(), 2) {
		t.Fatalf("series = %+v", s)
	}
}

func TestTableAndCSV(t *testing.T) {
	a := &Series{Name: "flooding"}
	b := &Series{Name: "locaware"}
	for _, x := range []float64{100, 200, 300} {
		a.Add(x, x/10)
		b.Add(x, x/20)
	}
	tbl := Table("queries", []*Series{a, b})
	if !strings.Contains(tbl, "flooding") || !strings.Contains(tbl, "locaware") {
		t.Fatalf("table missing headers:\n%s", tbl)
	}
	if !strings.Contains(tbl, "100") || !strings.Contains(tbl, "10.000") {
		t.Fatalf("table missing data:\n%s", tbl)
	}
	csv := CSV("queries", []*Series{a, b})
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != "queries,flooding,locaware" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if lines[1] != "100,10,5" {
		t.Fatalf("csv row = %q", lines[1])
	}
}

func TestTableMismatchedGrids(t *testing.T) {
	a := &Series{Name: "a"}
	a.Add(100, 1)
	b := &Series{Name: "b"}
	b.Add(200, 2)
	tbl := Table("x", []*Series{a, b})
	if !strings.Contains(tbl, "-") {
		t.Fatalf("missing blank cell marker:\n%s", tbl)
	}
	if Table("x", nil) != "" {
		t.Fatal("empty input should render empty")
	}
}

func TestSeriesErrBars(t *testing.T) {
	s := &Series{Name: "Locaware"}
	s.Add(10, 0.5) // first point without an error bar
	s.AddErr(20, 0.6, 0.05)
	if !s.HasErrs() || len(s.Errs) != 2 || s.Errs[0] != 0 || s.Errs[1] != 0.05 {
		t.Fatalf("errs = %v", s.Errs)
	}
	tbl := Table("queries", []*Series{s})
	if !strings.Contains(tbl, "0.600±0.050") {
		t.Fatalf("table missing error bar:\n%s", tbl)
	}
	csv := CSV("queries", []*Series{s})
	if !strings.HasPrefix(csv, "queries,Locaware,Locaware_ci95\n") {
		t.Fatalf("csv header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if !strings.Contains(csv, "20,0.6,0.05") {
		t.Fatalf("csv missing error column:\n%s", csv)
	}
}

func TestErrSeriesMixedWithPlain(t *testing.T) {
	plain := &Series{Name: "Flooding"}
	plain.Add(10, 400)
	errd := &Series{Name: "Locaware"}
	errd.AddErr(10, 12, 1.5)
	csv := CSV("queries", []*Series{plain, errd})
	if !strings.HasPrefix(csv, "queries,Flooding,Locaware,Locaware_ci95\n") {
		t.Fatalf("csv header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if !strings.Contains(csv, "10,400,12,1.5") {
		t.Fatalf("csv rows:\n%s", csv)
	}
	tbl := Table("queries", []*Series{plain, errd})
	if !strings.Contains(tbl, "400.000") || !strings.Contains(tbl, "12.000±1.500") {
		t.Fatalf("table rows:\n%s", tbl)
	}
}
