// Package stats provides the small statistical toolkit the experiment
// harness uses: summary statistics, percentiles, windowed series and
// confidence intervals. Stdlib only.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var sq float64
		for _, x := range xs {
			d := x - s.Mean
			sq += d * d
		}
		s.StdDev = math.Sqrt(sq / float64(len(xs)-1))
	}
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f", s.N, s.Mean, s.StdDev, s.Min, s.Max)
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval of the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies and sorts its input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Median is the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// MovingAverage returns the trailing moving average of xs with the given
// window (window <= 1 returns a copy).
func MovingAverage(xs []float64, window int) []float64 {
	out := make([]float64, len(xs))
	if window <= 1 {
		copy(out, xs)
		return out
	}
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
			out[i] = sum / float64(window)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}

// RelativeChange returns (b-a)/a, guarding the zero denominator.
func RelativeChange(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a
}
