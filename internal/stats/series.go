package stats

import (
	"fmt"
	"strings"
)

// Series is a named sequence of (x, y) points, the unit the figure
// regeneration harness prints (one Series per curve in a paper figure).
// Errs, when non-empty, holds a symmetric error half-width per point
// (e.g. a 95% CI across replicated trials) and is rendered as y±err.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
	Errs []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Xs = append(s.Xs, x)
	s.Ys = append(s.Ys, y)
}

// AddErr appends a point with a symmetric error half-width.
func (s *Series) AddErr(x, y, err float64) {
	s.Add(x, y)
	for len(s.Errs) < len(s.Xs)-1 {
		s.Errs = append(s.Errs, 0)
	}
	s.Errs = append(s.Errs, err)
}

// HasErrs reports whether the series carries error bars.
func (s *Series) HasErrs() bool { return len(s.Errs) > 0 }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Xs) }

// LastY returns the final y value (0 if empty).
func (s *Series) LastY() float64 {
	if len(s.Ys) == 0 {
		return 0
	}
	return s.Ys[len(s.Ys)-1]
}

// MeanY returns the mean of the y values.
func (s *Series) MeanY() float64 { return Mean(s.Ys) }

// Table renders a set of series sharing the same x grid as an aligned
// text table with the given x-column header. Series with mismatched grids
// are rendered with blank cells.
func Table(xHeader string, series []*Series) string {
	if len(series) == 0 {
		return ""
	}
	// Collect the union x grid, preserving first-seen order.
	var grid []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.Xs {
			if !seen[x] {
				seen[x] = true
				grid = append(grid, x)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", xHeader)
	for _, s := range series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range grid {
		// %g keeps fractional x grids (intensity sweeps) readable and
		// renders integer grids exactly as %.0f did.
		fmt.Fprintf(&b, "%-12s", fmt.Sprintf("%g", x))
		for _, s := range series {
			y, e, ok := lookupPoint(s, x)
			switch {
			case !ok:
				fmt.Fprintf(&b, " %14s", "-")
			case s.HasErrs():
				fmt.Fprintf(&b, " %14s", fmt.Sprintf("%.3f±%.3f", y, e))
			default:
				fmt.Fprintf(&b, " %14.3f", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the series set as comma-separated values with an x column.
// Series carrying error bars get a second <name>_ci95 column holding the
// half-width next to their value column.
func CSV(xHeader string, series []*Series) string {
	var b strings.Builder
	b.WriteString(xHeader)
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(s.Name)
		if s.HasErrs() {
			b.WriteString("," + s.Name + "_ci95")
		}
	}
	b.WriteByte('\n')
	var grid []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.Xs {
			if !seen[x] {
				seen[x] = true
				grid = append(grid, x)
			}
		}
	}
	for _, x := range grid {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			y, e, ok := lookupPoint(s, x)
			if ok {
				fmt.Fprintf(&b, ",%g", y)
			} else {
				b.WriteString(",")
			}
			if s.HasErrs() {
				if ok {
					fmt.Fprintf(&b, ",%g", e)
				} else {
					b.WriteString(",")
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lookupPoint(s *Series, x float64) (y, err float64, ok bool) {
	for i, sx := range s.Xs {
		if sx == x {
			if i < len(s.Errs) {
				err = s.Errs[i]
			}
			return s.Ys[i], err, true
		}
	}
	return 0, 0, false
}
