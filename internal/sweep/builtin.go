package sweep

import "sort"

// builtins constructs the registry afresh (specs are mutable data; every
// caller gets its own copy). The campaigns regenerate the paper's figure
// grids: every figure in the evaluation plots a metric against a swept
// parameter for the four protocols, and these four axes — overlay size,
// response-index capacity, TTL and dynamics intensity — are the ones its
// discussion varies.
func builtins() []*Spec {
	return []*Spec{
		{
			Name:        "size-sweep",
			Description: "success/traffic/distance vs overlay size, 250→2000 peers, all baselines",
			Warmup:      300,
			Queries:     1000,
			Trials:      3,
			Axes: []Axis{
				{Param: ParamPeers, Values: []float64{250, 500, 1000, 2000}},
			},
		},
		{
			Name:        "cache-sweep",
			Description: "response-index capacity sweep (paper: 50 filenames) over the caching protocols",
			Protocols:   []string{"Dicas", "Dicas-Keys", "Locaware"},
			Warmup:      300,
			Queries:     1000,
			Trials:      3,
			Base:        map[string]float64{ParamPeers: 500},
			Axes: []Axis{
				{Param: ParamCacheFilenames, Values: []float64{10, 25, 50, 100, 200}},
			},
		},
		{
			Name:        "ttl-sweep",
			Description: "query TTL sweep (paper: 7) — traffic/success trade-off, all baselines",
			Warmup:      300,
			Queries:     1000,
			Trials:      3,
			Base:        map[string]float64{ParamPeers: 500},
			Axes: []Axis{
				{Param: ParamTTL, Values: []float64{3, 5, 7, 9}},
			},
		},
		{
			Name:        "churn-sweep",
			Description: "steady-churn intensity sweep: 0 (static) → 2x the default leave/rejoin pressure",
			Protocols:   []string{"Dicas", "Locaware"},
			Warmup:      300,
			Queries:     1000,
			Trials:      3,
			Scenario:    "steady-churn",
			Base:        map[string]float64{ParamPeers: 500},
			Axes: []Axis{
				{Param: ParamIntensity, Values: []float64{0, 0.5, 1, 2}},
			},
		},
		{
			Name:        "flashcrowd-sweep",
			Description: "flash-crowd intensity sweep: how hard can the crowd rush before caching stops helping",
			Protocols:   []string{"Flooding", "Locaware"},
			Warmup:      300,
			Queries:     1200,
			Trials:      3,
			Scenario:    "flashcrowd",
			Base:        map[string]float64{ParamPeers: 500},
			Axes: []Axis{
				{Param: ParamIntensity, Values: []float64{0.5, 1, 2}},
			},
		},
	}
}

// Builtins returns the built-in campaign registry in stable order. The
// returned specs are fresh copies; callers may adjust them freely.
func Builtins() []*Spec { return builtins() }

// Lookup resolves a built-in campaign by name.
func Lookup(name string) (*Spec, bool) {
	for _, s := range builtins() {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Names lists the built-in campaign names, sorted.
func Names() []string {
	bs := builtins()
	names := make([]string, len(bs))
	for i, s := range bs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
