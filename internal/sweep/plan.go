package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/exper"
	"github.com/p2prepro/locaware/internal/sim"
)

// Plan is a validated campaign lowered onto a base configuration and
// frozen: the expanded grid, the resolved seed/trial/protocol identity,
// and a content hash over all of it. A Plan is the unit two processes can
// agree on — a coordinator and its workers each build one from the same
// spec and base configuration and compare hashes before exchanging work,
// and a checkpoint store binds its files to the hash so cells computed
// under a different campaign are rejected instead of silently merged.
type Plan struct {
	r    *resolved
	hash string
}

// NewPlan validates and resolves the spec against the base configuration
// and fingerprints the result. The same (base, spec) pair always produces
// the same hash; any change that could alter a single cell's bytes — an
// axis value, the seed, the trial count, a protocol, a base-configuration
// parameter — produces a different one.
func NewPlan(base core.Config, s *Spec) (*Plan, error) {
	r, err := resolve(base, s)
	if err != nil {
		return nil, err
	}
	// Mirror resolve: the campaign owns dynamics configuration, so the
	// ambient churn flag and scenario never participate in the identity.
	base.ChurnEnabled = false
	base.Scenario = nil
	h, err := fingerprint(base, r)
	if err != nil {
		return nil, err
	}
	return &Plan{r: r, hash: h}, nil
}

// fingerprint content-addresses the campaign: a SHA-256 over the canonical
// JSON of the spec, the resolved seed/trials/protocol set, and the
// dynamics-cleared base configuration (every field of which can move cell
// bytes). Struct fields marshal in declaration order and the config holds
// no maps, so the encoding — and therefore the hash — is deterministic.
func fingerprint(base core.Config, r *resolved) (string, error) {
	payload := struct {
		Spec      *Spec       `json:"spec"`
		Seed      int64       `json:"seed"`
		Trials    int         `json:"trials"`
		Protocols []string    `json:"protocols"`
		Base      core.Config `json:"base"`
	}{r.spec, r.seed, r.trials, r.names, base}
	data, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("sweep: fingerprinting campaign %q: %w", r.spec.Name, err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Hash returns the campaign's content hash (64 hex characters).
func (p *Plan) Hash() string { return p.hash }

// Spec returns the plan's campaign definition.
func (p *Plan) Spec() *Spec { return p.r.spec }

// Seed returns the resolved campaign root seed.
func (p *Plan) Seed() int64 { return p.r.seed }

// Trials returns the resolved replication count per cell.
func (p *Plan) Trials() int { return p.r.trials }

// Protocols returns the resolved protocol set in campaign order.
func (p *Plan) Protocols() []string {
	out := make([]string, len(p.r.names))
	copy(out, p.r.names)
	return out
}

// NumCells returns the grid size.
func (p *Plan) NumCells() int { return len(p.r.cells) }

// Cells returns the expanded grid in index order.
func (p *Plan) Cells() []Cell {
	out := make([]Cell, len(p.r.cells))
	copy(out, p.r.cells)
	return out
}

// NewCampaign returns an empty campaign shell for this plan: identity
// fields filled, one CellResult per grid cell carrying its Cell identity
// with no protocol aggregates yet. Callers fill Cells[i] as results arrive
// (from RunCells, a checkpoint store, or remote workers) — the grid is
// index-addressed, so arrival order never changes the exported bytes.
func (p *Plan) NewCampaign() *Campaign {
	camp := &Campaign{
		Spec: p.r.spec, Seed: p.r.seed, Trials: p.r.trials, Protocols: p.Protocols(),
		Cells: make([]CellResult, len(p.r.cells)),
	}
	for i, c := range p.r.cells {
		camp.Cells[i] = CellResult{Cell: c}
	}
	return camp
}

// VerifyCell checks that a cell result (typically deserialized from a
// checkpoint file or a remote worker) carries this plan's identity for its
// index: matching seed and coordinates, the campaign's protocol set in
// order, and trial pools of the campaign's size. It reports the first
// mismatch — a corrupted or foreign result — so callers can discard the
// cell and recompute it instead of folding bad data into the campaign.
func (p *Plan) VerifyCell(cr *CellResult) error {
	if cr == nil {
		return fmt.Errorf("sweep %q: nil cell result", p.r.spec.Name)
	}
	if cr.Index < 0 || cr.Index >= len(p.r.cells) {
		return fmt.Errorf("sweep %q: cell index %d out of range [0, %d)", p.r.spec.Name, cr.Index, len(p.r.cells))
	}
	want := p.r.cells[cr.Index]
	if cr.Seed != want.Seed {
		return fmt.Errorf("sweep %q cell %d: seed %d, want %d", p.r.spec.Name, cr.Index, cr.Seed, want.Seed)
	}
	if cr.Label() != want.Label() {
		return fmt.Errorf("sweep %q cell %d: coordinates %q, want %q", p.r.spec.Name, cr.Index, cr.Label(), want.Label())
	}
	if len(cr.Protocols) != len(p.r.names) {
		return fmt.Errorf("sweep %q cell %d: %d protocol aggregates, want %d", p.r.spec.Name, cr.Index, len(cr.Protocols), len(p.r.names))
	}
	for i, pc := range cr.Protocols {
		if pc.Protocol != p.r.names[i] {
			return fmt.Errorf("sweep %q cell %d: protocol %d is %q, want %q", p.r.spec.Name, cr.Index, i, pc.Protocol, p.r.names[i])
		}
		if pc.Summary.SuccessRate.N != p.r.trials {
			return fmt.Errorf("sweep %q cell %d: %s pools %d trials, want %d", p.r.spec.Name, cr.Index, pc.Protocol, pc.Summary.SuccessRate.N, p.r.trials)
		}
	}
	return nil
}

// RunCells executes a subset of the grid — any selection of cell indexes —
// across a worker pool bounded by workers (<= 0 means one per CPU) and
// delivers each completed cell to sink in ascending subset order. The
// (cell × protocol × trial) jobs of the whole subset share one pool, so a
// two-cell resume still saturates the machine. The fold is the full
// campaign's fold restricted to the subset: jobs dispatch and deliver in
// index order, trials fold into per-(cell, protocol) accumulators, and a
// cell sinks when its last protocol aggregate collapses — so every sunk
// CellResult is byte-identical to the cell's entry in an unrestricted Run.
func (p *Plan) RunCells(cells []int, workers int, sink func(*CellResult)) error {
	r := p.r
	for _, c := range cells {
		if c < 0 || c >= len(r.cells) {
			return fmt.Errorf("sweep %q: cell %d out of range [0, %d)", r.spec.Name, c, len(r.cells))
		}
	}
	nProtos := len(r.behaviors)
	perCell := nProtos * r.trials
	n := len(cells) * perCell
	building := make([]*CellResult, len(cells))
	accs := make([][]*core.RunResult, len(cells)*nProtos)
	exemplars := make([]*ExemplarTrace, len(cells))
	exLat := make([]sim.Time, len(cells))
	exper.Stream(n, workers, func(j int) *core.RunResult {
		pos := j / perCell
		rem := j % perCell
		proto := rem / r.trials
		trial := rem % r.trials
		cell := cells[pos]
		cfg := r.cellCfgs[cell]
		cfg.Seed = sim.TrialSeed(r.cells[cell].Seed, trial)
		return core.NewSimulation(cfg, r.behaviors[proto]).RunMeasured(r.spec.Warmup, r.spec.Queries)
	}, func(j int, run *core.RunResult) {
		pos := j / perCell
		rem := j % perCell
		proto := rem / r.trials
		k := pos*nProtos + proto
		// Exemplar fold: delivery is strict index order, so strictly-greater
		// latency keeps the earliest (protocol, trial) on exact ties —
		// deterministic for any worker count.
		if len(run.Traces) > 0 {
			if t := run.Traces[0]; exemplars[pos] == nil || t.Latency > exLat[pos] {
				exemplars[pos] = exemplarOf(run, r.names[proto], rem%r.trials)
				exLat[pos] = t.Latency
			}
		}
		accs[k] = append(accs[k], run)
		if len(accs[k]) < r.trials {
			return
		}
		if building[pos] == nil {
			cell := cells[pos]
			building[pos] = &CellResult{Cell: r.cells[cell], Protocols: make([]ProtocolCell, nProtos)}
		}
		building[pos].Protocols[proto] = ProtocolCell{
			Protocol: r.names[proto],
			Summary:  core.SummarizeTrials(accs[k]),
			Phases:   core.AggregateRunPhases(accs[k]),
		}
		accs[k] = nil
		// Delivery is index-ordered, so the last protocol completing means
		// every earlier one already has.
		if proto == nProtos-1 {
			cr := building[pos]
			cr.Exemplar = exemplars[pos]
			building[pos], exemplars[pos] = nil, nil
			sink(cr)
		}
	})
	return nil
}

// RunCellAt executes one grid cell through the subset runner and returns
// its aggregate — the exact bytes a full Run would place at that index.
// This is the unit of work a campaign worker executes per lease.
func (p *Plan) RunCellAt(cell, workers int) (*CellResult, error) {
	var out *CellResult
	if err := p.RunCells([]int{cell}, workers, func(cr *CellResult) { out = cr }); err != nil {
		return nil, err
	}
	return out, nil
}
