package sweep

import (
	"testing"

	"github.com/p2prepro/locaware/internal/core"
)

// benchSpec is the throughput fixture: a 4-cell TTL grid, two protocols,
// two trials — 16 simulations per campaign, small enough to iterate but
// wide enough to exercise the scheduler and the streamed aggregation.
func benchSpec() *Spec {
	return &Spec{
		Name:      "bench",
		Warmup:    100,
		Queries:   400,
		Trials:    2,
		Protocols: []string{"Dicas", "Locaware"},
		Base:      map[string]float64{ParamPeers: 200},
		Axes: []Axis{
			{Param: ParamTTL, Values: []float64{3, 5, 7, 9}},
		},
	}
}

// BenchmarkSweepThroughput measures campaign throughput in grid cells per
// second end to end: grid expansion, per-cell world builds, all
// (cell × protocol × trial) simulations and the streamed cross-trial
// aggregation. BENCH_pr4.json records the cells/sec headline.
func BenchmarkSweepThroughput(b *testing.B) {
	base := core.DefaultConfig()
	base.Gen.RatePerPeer = 0.01 // accelerate arrivals, as the test worlds do
	spec := benchSpec()
	b.ReportAllocs()
	b.ResetTimer()
	cells := 0
	for i := 0; i < b.N; i++ {
		camp, err := Run(base, spec, 0)
		if err != nil {
			b.Fatal(err)
		}
		cells += len(camp.Cells)
	}
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/sec")
	b.ReportMetric(float64(cells*len(spec.protocols())*spec.trials())/b.Elapsed().Seconds(), "runs/sec")
}
