// Package sweep is the declarative campaign engine of the experiment
// harness: it turns a figure-sized question — "how does each protocol's
// success rate move as the network grows / the cache shrinks / the churn
// intensifies?" — into one schedulable object. A Spec names axes over
// simulation parameters (overlay size, cache capacity, TTL, scenario
// intensity, …), a protocol set and a trials-per-cell count; the engine
// expands the cartesian grid into cells, fans the (cell × protocol ×
// trial) jobs out across the deterministic worker pool, streams every
// finished run into a cross-trial, per-phase aggregator (no per-query
// records are ever held), and exports tidy CSV plus paper-figure series
// keyed by axis value with mean ± 95% CI error bars.
//
// Determinism is cell-local: cell c's root seed derives from the campaign
// seed and c alone (CellSeed), and trial t inside the cell runs under
// sim.TrialSeed(cellSeed, t) — exactly the derivation core.RunTrials uses.
// Any subset of the grid therefore reproduces byte-identically: re-running
// one cell in isolation (RunCell), or the same campaign at a different
// worker count, yields the same numbers bit for bit.
//
// Specs are plain data. The built-in registry (Builtins) regenerates the
// paper's figure grids — overlay-size, cache-capacity, TTL and
// churn/flash-crowd intensity sweeps — and ParseSpec loads custom
// campaigns from JSON, so new sweeps need no code.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/scenario"
)

// Axis parameter names accepted by Axis.Param and Spec.Base.
const (
	ParamPeers          = "peers"
	ParamAvgDegree      = "avg-degree"
	ParamLandmarks      = "landmarks"
	ParamFiles          = "files"
	ParamFilesPerPeer   = "files-per-peer"
	ParamKeywordPool    = "keyword-pool"
	ParamQueryRate      = "query-rate"
	ParamZipfS          = "zipf-s"
	ParamTTL            = "ttl"
	ParamGroups         = "groups"
	ParamCacheFilenames = "cache-filenames"
	ParamCacheProviders = "cache-providers"
	ParamBloomBits      = "bloom-bits"
	// ParamScenario is the one string-valued axis: its Axis.Scenarios lists
	// built-in scenario names the campaign steps through.
	ParamScenario = "scenario"
	// ParamIntensity scales the campaign scenario's dynamics magnitudes
	// (scenario.ScaleIntensity); it requires a scenario, from Spec.Scenario
	// or a scenario axis.
	ParamIntensity = "scenario-intensity"
)

// numericParams lists every numeric axis parameter and how it lowers onto
// the core configuration.
var numericParams = map[string]func(*core.Config, float64){
	ParamPeers:          func(c *core.Config, v float64) { c.NumPeers = int(v) },
	ParamAvgDegree:      func(c *core.Config, v float64) { c.AvgDegree = v },
	ParamLandmarks:      func(c *core.Config, v float64) { c.Landmarks = int(v) },
	ParamFiles:          func(c *core.Config, v float64) { c.Catalog.NumFiles = int(v) },
	ParamFilesPerPeer:   func(c *core.Config, v float64) { c.FilesPerPeer = int(v) },
	ParamKeywordPool:    func(c *core.Config, v float64) { c.Catalog.KeywordPool = int(v) },
	ParamQueryRate:      func(c *core.Config, v float64) { c.Gen.RatePerPeer = v },
	ParamZipfS:          func(c *core.Config, v float64) { c.Gen.ZipfS = v },
	ParamTTL:            func(c *core.Config, v float64) { c.Protocol.TTL = int(v) },
	ParamGroups:         func(c *core.Config, v float64) { c.Protocol.GroupCount = int(v) },
	ParamCacheFilenames: func(c *core.Config, v float64) { c.Protocol.Cache.MaxFilenames = int(v) },
	ParamCacheProviders: func(c *core.Config, v float64) { c.Protocol.Cache.MaxProvidersPerFile = int(v) },
	ParamBloomBits:      func(c *core.Config, v float64) { c.Protocol.BloomBits = int(v) },
}

// Params lists the accepted axis parameter names, sorted — the numeric
// configuration axes plus the scenario name/intensity pair.
func Params() []string {
	out := make([]string, 0, len(numericParams)+2)
	for p := range numericParams {
		out = append(out, p)
	}
	out = append(out, ParamScenario, ParamIntensity)
	sort.Strings(out)
	return out
}

// Spec is a declarative sweep campaign: the cartesian grid of its axes,
// run for every protocol in the set, replicated trials-per-cell times.
type Spec struct {
	// Name identifies the campaign (registry key, report label).
	Name string `json:"name"`
	// Description is a one-line summary for listings.
	Description string `json:"description,omitempty"`
	// Protocols is the protocol set run in every cell; empty means the
	// paper's four baselines.
	Protocols []string `json:"protocols,omitempty"`
	// Warmup and Queries are the per-run warmup and measured query counts.
	Warmup  int `json:"warmup"`
	Queries int `json:"queries"`
	// Trials is the replication count per cell (<= 0 means 1). Trial t of
	// cell c runs under sim.TrialSeed(CellSeed(seed, c), t).
	Trials int `json:"trials,omitempty"`
	// Seed roots the campaign; 0 inherits the base configuration's seed.
	Seed int64 `json:"seed,omitempty"`
	// Scenario optionally names a built-in scenario every cell runs under
	// (a scenario axis overrides it per cell); required by a
	// scenario-intensity axis.
	Scenario string `json:"scenario,omitempty"`
	// Base overrides numeric configuration parameters for every cell
	// before the axes apply — e.g. {"peers": 500} pins the overlay size of
	// a cache sweep.
	Base map[string]float64 `json:"base,omitempty"`
	// Axes span the grid; cells enumerate their cartesian product with the
	// last axis varying fastest.
	Axes []Axis `json:"axes"`
}

// Axis is one swept parameter: a numeric value list, or — for the
// "scenario" parameter — a list of built-in scenario names.
type Axis struct {
	// Param is one of the Param… constants.
	Param string `json:"param"`
	// Values holds the numeric axis points, in sweep order.
	Values []float64 `json:"values,omitempty"`
	// Scenarios holds the scenario-name axis points (Param "scenario").
	Scenarios []string `json:"scenarios,omitempty"`
}

// points returns the axis length.
func (a Axis) points() int {
	if a.Param == ParamScenario {
		return len(a.Scenarios)
	}
	return len(a.Values)
}

func (s *Spec) trials() int {
	if s.Trials < 1 {
		return 1
	}
	return s.Trials
}

// protocols returns the campaign's protocol set (default: the four
// baselines, in figure order).
func (s *Spec) protocols() []string {
	if len(s.Protocols) > 0 {
		return s.Protocols
	}
	return []string{"Flooding", "Dicas", "Dicas-Keys", "Locaware"}
}

// behaviorOf maps a protocol name to its behaviour implementation.
func behaviorOf(name string) (protocol.Behavior, bool) {
	switch name {
	case "Flooding":
		return protocol.Flooding{}, true
	case "Dicas":
		return protocol.Dicas{}, true
	case "Dicas-Keys":
		return protocol.DicasKeys{}, true
	case "Locaware":
		return protocol.Locaware{}, true
	case "Locaware-LR":
		return protocol.LocawareLR{}, true
	}
	return nil, false
}

// Validate checks the spec's internal consistency: a name, positive query
// counts, known protocols, at least one axis with at least one point per
// axis, no duplicated axis parameters, resolvable scenario names, and an
// intensity axis only alongside a scenario.
func (s *Spec) Validate() error {
	if s == nil {
		return fmt.Errorf("sweep: nil spec")
	}
	if s.Name == "" {
		return fmt.Errorf("sweep: spec needs a name")
	}
	if s.Queries <= 0 {
		return fmt.Errorf("sweep %q: queries must be positive", s.Name)
	}
	if s.Warmup < 0 {
		return fmt.Errorf("sweep %q: warmup must be non-negative", s.Name)
	}
	for _, p := range s.protocols() {
		if _, ok := behaviorOf(p); !ok {
			return fmt.Errorf("sweep %q: unknown protocol %q", s.Name, p)
		}
	}
	if s.Scenario != "" {
		if _, ok := scenario.Lookup(s.Scenario); !ok {
			return fmt.Errorf("sweep %q: unknown scenario %q", s.Name, s.Scenario)
		}
	}
	for param := range s.Base {
		if _, ok := numericParams[param]; !ok {
			return fmt.Errorf("sweep %q: base override %q is not a numeric parameter", s.Name, param)
		}
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("sweep %q: needs at least one axis", s.Name)
	}
	seen := map[string]bool{}
	hasScenarioAxis := false
	hasIntensityAxis := false
	for i, a := range s.Axes {
		if seen[a.Param] {
			return fmt.Errorf("sweep %q: axis %d duplicates parameter %q", s.Name, i, a.Param)
		}
		seen[a.Param] = true
		switch {
		case a.Param == ParamScenario:
			hasScenarioAxis = true
			if len(a.Scenarios) == 0 {
				return fmt.Errorf("sweep %q: scenario axis needs scenario names", s.Name)
			}
			if len(a.Values) > 0 {
				return fmt.Errorf("sweep %q: scenario axis takes names, not values", s.Name)
			}
			for _, name := range a.Scenarios {
				if _, ok := scenario.Lookup(name); !ok {
					return fmt.Errorf("sweep %q: unknown scenario %q on the scenario axis", s.Name, name)
				}
			}
		case a.Param == ParamIntensity:
			hasIntensityAxis = true
			if len(a.Values) == 0 {
				return fmt.Errorf("sweep %q: axis %q needs values", s.Name, a.Param)
			}
			for _, v := range a.Values {
				if v < 0 {
					return fmt.Errorf("sweep %q: scenario intensities must be non-negative", s.Name)
				}
			}
		default:
			if _, ok := numericParams[a.Param]; !ok {
				return fmt.Errorf("sweep %q: axis %d has unknown parameter %q (have %v)",
					s.Name, i, a.Param, Params())
			}
			if len(a.Values) == 0 {
				return fmt.Errorf("sweep %q: axis %q needs values", s.Name, a.Param)
			}
		}
	}
	if hasIntensityAxis && s.Scenario == "" && !hasScenarioAxis {
		return fmt.Errorf("sweep %q: a scenario-intensity axis needs a scenario (spec-level or a scenario axis)", s.Name)
	}
	return nil
}

// NumCells returns the grid size (the product of the axis lengths).
func (s *Spec) NumCells() int {
	n := 1
	for _, a := range s.Axes {
		n *= a.points()
	}
	return n
}

// Coordinate is one cell's position along one axis.
type Coordinate struct {
	// Param is the axis parameter.
	Param string
	// Value is the numeric axis value (unused for the scenario axis).
	Value float64
	// Scenario is the scenario-axis value (Param "scenario" only).
	Scenario string
}

// String renders the coordinate as "param=value".
func (c Coordinate) String() string {
	if c.Param == ParamScenario {
		return fmt.Sprintf("%s=%s", c.Param, c.Scenario)
	}
	return fmt.Sprintf("%s=%g", c.Param, c.Value)
}

// Cell is one grid point: its flat index in expansion order, its derived
// root seed, and its coordinates in axis order.
type Cell struct {
	// Index is the cell's position in the row-major grid expansion (last
	// axis fastest).
	Index int
	// Seed is CellSeed(campaign seed, Index): the root every trial of this
	// cell derives from.
	Seed int64
	// Coords locates the cell, one entry per axis in spec order.
	Coords []Coordinate
}

// Label renders the cell's coordinates as "p1=v1 p2=v2".
func (c Cell) Label() string {
	out := ""
	for i, co := range c.Coords {
		if i > 0 {
			out += " "
		}
		out += co.String()
	}
	return out
}

// Cells expands the grid in deterministic row-major order (axis 0 slowest,
// last axis fastest) and derives each cell's root seed from the campaign
// root. The expansion order is part of the determinism contract: cell
// indexes — and therefore seeds — depend only on the spec's axes.
func (s *Spec) Cells(root int64) []Cell {
	n := s.NumCells()
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		coords := make([]Coordinate, len(s.Axes))
		rem := i
		for a := len(s.Axes) - 1; a >= 0; a-- {
			axis := s.Axes[a]
			p := axis.points()
			k := rem % p
			rem /= p
			co := Coordinate{Param: axis.Param}
			if axis.Param == ParamScenario {
				co.Scenario = axis.Scenarios[k]
			} else {
				co.Value = axis.Values[k]
			}
			coords[a] = co
		}
		cells[i] = Cell{Index: i, Seed: CellSeed(root, i), Coords: coords}
	}
	return cells
}

// CellSeed derives grid cell `cell`'s root seed from the campaign root.
// Cell 0 keeps the root unchanged — the first cell of a campaign is
// bit-for-bit a plain RunTrials at the campaign seed — and later cells
// push the pair through a SplitMix64-style finalizer (with a different
// multiplier than sim.TrialSeed, so cell and trial derivations never
// alias) landing neighbouring cells in decorrelated seed-space regions.
// Trial t of the cell then runs under sim.TrialSeed(CellSeed(root, cell),
// t), which is exactly the seed a standalone RunTrials of the cell's
// configuration would use.
func CellSeed(root int64, cell int) int64 {
	if cell == 0 {
		return root
	}
	z := uint64(root) + uint64(cell)*0xd1342543de82ef95
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0xd1342543de82ef95
	}
	return int64(z)
}

// cellConfig lowers one cell onto the base configuration: base overrides
// first, then the cell's coordinates, then the scenario selection (name
// axis over spec-level name) scaled by the intensity coordinate. The
// returned config still needs its Seed set per trial and its scenario
// phase grid resolved (core.ResolveScenario).
func (s *Spec) cellConfig(base core.Config, c Cell) (core.Config, error) {
	cfg := base
	// Apply base overrides in sorted-key order; each parameter touches a
	// distinct field, the sort just keeps the walk deterministic.
	if len(s.Base) > 0 {
		params := make([]string, 0, len(s.Base))
		for p := range s.Base {
			params = append(params, p)
		}
		sort.Strings(params)
		for _, p := range params {
			numericParams[p](&cfg, s.Base[p])
		}
	}
	scenName := s.Scenario
	intensity := -1.0
	for _, co := range c.Coords {
		switch co.Param {
		case ParamScenario:
			scenName = co.Scenario
		case ParamIntensity:
			intensity = co.Value
		default:
			apply, ok := numericParams[co.Param]
			if !ok {
				return cfg, fmt.Errorf("sweep %q: unknown parameter %q", s.Name, co.Param)
			}
			apply(&cfg, co.Value)
		}
	}
	if scenName != "" {
		spec, ok := scenario.Lookup(scenName)
		if !ok {
			return cfg, fmt.Errorf("sweep %q: unknown scenario %q", s.Name, scenName)
		}
		cfg.Scenario = spec
	}
	if intensity >= 0 {
		if cfg.Scenario == nil {
			return cfg, fmt.Errorf("sweep %q: scenario-intensity axis without a scenario", s.Name)
		}
		cfg.Scenario = cfg.Scenario.ScaleIntensity(intensity)
	}
	return cfg, nil
}

// ParseSpec decodes and validates a JSON campaign. Unknown fields are
// rejected so a typo in a hand-written spec fails loudly instead of
// silently sweeping the wrong grid.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// JSON renders the spec as indented JSON — the exact format ParseSpec
// accepts, so every built-in doubles as a template for custom campaigns.
func (s *Spec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
