package sweep

import (
	"fmt"
	"strings"

	"github.com/p2prepro/locaware/internal/stats"
)

// Metric keys accepted by the figure exporters.
const (
	MetricSuccess  = "success"
	MetricMessages = "msgs"
	MetricRTT      = "rtt"
	MetricSameLoc  = "sameloc"
	MetricCacheHit = "cachehit"
	MetricHops     = "hops"
)

// Metrics lists the exportable metric keys in presentation order.
func Metrics() []string {
	return []string{MetricSuccess, MetricMessages, MetricRTT, MetricSameLoc, MetricCacheHit, MetricHops}
}

// MetricSummary selects one cross-trial summary from a protocol cell by
// metric key, reporting whether the key is known.
func MetricSummary(p ProtocolCell, key string) (stats.Summary, bool) { return metricOf(p, key) }

// metricOf selects one cross-trial summary from a protocol cell.
func metricOf(p ProtocolCell, key string) (stats.Summary, bool) {
	switch key {
	case MetricSuccess:
		return p.Summary.SuccessRate, true
	case MetricMessages:
		return p.Summary.MessagesPerQuery, true
	case MetricRTT:
		return p.Summary.DownloadRTT, true
	case MetricSameLoc:
		return p.Summary.SameLocalityRate, true
	case MetricCacheHit:
		return p.Summary.CacheHitRate, true
	case MetricHops:
		return p.Summary.Hops, true
	}
	return stats.Summary{}, false
}

// csvMetrics are the tidy-CSV metric columns: key → (column stem, summary
// selector), in export order.
var csvMetrics = []struct {
	stem string
	key  string
}{
	{"success", MetricSuccess},
	{"msgs_per_query", MetricMessages},
	{"download_rtt_ms", MetricRTT},
	{"same_locality", MetricSameLoc},
	{"cache_hit", MetricCacheHit},
	{"hops", MetricHops},
}

// g formats a float the way every sweep export does: shortest
// round-trippable decimal, so files are stable across platforms and diffs
// stay readable.
func g(v float64) string { return fmt.Sprintf("%g", v) }

// CSV renders the campaign as one tidy table: a row per (cell × protocol)
// carrying the cell index, one column per axis parameter, the protocol,
// the trial count, and mean plus 95% CI columns for every headline metric.
// Rows appear in grid order, protocols in campaign order — the layout is
// deterministic and byte-identical for every worker count.
func (c *Campaign) CSV() string {
	var b strings.Builder
	b.WriteString("cell")
	for _, a := range c.Spec.Axes {
		b.WriteByte(',')
		b.WriteString(a.Param)
	}
	b.WriteString(",protocol,trials")
	for _, m := range csvMetrics {
		fmt.Fprintf(&b, ",%s,%s_ci95", m.stem, m.stem)
	}
	b.WriteByte('\n')
	for _, cell := range c.Cells {
		for _, p := range cell.Protocols {
			fmt.Fprintf(&b, "%d", cell.Index)
			for _, co := range cell.Coords {
				b.WriteByte(',')
				if co.Param == ParamScenario {
					b.WriteString(co.Scenario)
				} else {
					b.WriteString(g(co.Value))
				}
			}
			fmt.Fprintf(&b, ",%s,%d", p.Protocol, c.Trials)
			for _, m := range csvMetrics {
				s, _ := metricOf(p, m.key)
				fmt.Fprintf(&b, ",%s,%s", g(s.Mean), g(s.CI95()))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// PhaseCSV renders the campaign's per-phase aggregates as a tidy table: a
// row per (cell × protocol × phase) with mean and 95% CI columns for every
// phase metric. It returns "" when no cell ran under a scenario.
func (c *Campaign) PhaseCSV() string {
	any := false
	for _, cell := range c.Cells {
		for _, p := range cell.Protocols {
			if len(p.Phases) > 0 {
				any = true
			}
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	b.WriteString("cell")
	for _, a := range c.Spec.Axes {
		b.WriteByte(',')
		b.WriteString(a.Param)
	}
	b.WriteString(",protocol,phase,phase_start,phase_end")
	for _, m := range csvMetrics {
		fmt.Fprintf(&b, ",%s,%s_ci95", m.stem, m.stem)
	}
	b.WriteByte('\n')
	for _, cell := range c.Cells {
		for _, p := range cell.Protocols {
			for _, ph := range p.Phases {
				fmt.Fprintf(&b, "%d", cell.Index)
				for _, co := range cell.Coords {
					b.WriteByte(',')
					if co.Param == ParamScenario {
						b.WriteString(co.Scenario)
					} else {
						b.WriteString(g(co.Value))
					}
				}
				fmt.Fprintf(&b, ",%s,%s,%d,%d", p.Protocol, ph.Name, ph.Start, ph.End)
				for _, sum := range []stats.Summary{
					ph.SuccessRate, ph.MessagesPerQuery, ph.DownloadRTT,
					ph.SameLocalityRate, ph.CacheHitRate, ph.AvgHops,
				} {
					fmt.Fprintf(&b, ",%s,%s", g(sum.Mean), g(sum.CI95()))
				}
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// axisIndex resolves the figure x axis: the named parameter, or the first
// axis when axisParam is empty.
func (c *Campaign) axisIndex(axisParam string) (int, error) {
	if axisParam == "" {
		return 0, nil
	}
	for i, a := range c.Spec.Axes {
		if a.Param == axisParam {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sweep: campaign %q has no axis %q", c.Spec.Name, axisParam)
}

// FigureSeries extracts the campaign as paper-figure curves: one series
// per protocol (per combination of the non-x axes, when the grid has more
// than one), x = the chosen axis value, y = the cell's trial-mean metric,
// err = its 95% confidence half-width. axisParam "" selects the first
// axis; metric is one of the Metric… keys. Points appear in grid order,
// so series x values follow the axis's declared value order. For a
// scenario-name x axis the value index stands in for x.
func (c *Campaign) FigureSeries(metric, axisParam string) ([]*stats.Series, error) {
	ai, err := c.axisIndex(axisParam)
	if err != nil {
		return nil, err
	}
	if _, ok := metricOf(ProtocolCell{}, metric); !ok {
		return nil, fmt.Errorf("sweep: unknown metric %q (have %s)", metric, strings.Join(Metrics(), ", "))
	}
	xOf := func(cell CellResult) float64 {
		co := cell.Coords[ai]
		if co.Param == ParamScenario {
			// Scenario names have no numeric value; their axis position
			// stands in.
			for k, name := range c.Spec.Axes[ai].Scenarios {
				if name == co.Scenario {
					return float64(k)
				}
			}
		}
		return co.Value
	}
	// Series are keyed by protocol plus the fixed coordinates of every
	// other axis, so a 2-D sweep becomes one curve per (protocol × other
	// value) instead of silently averaging.
	keyOf := func(proto string, cell CellResult) string {
		key := proto
		for i, co := range cell.Coords {
			if i != ai {
				key += " " + co.String()
			}
		}
		return key
	}
	var order []string
	byKey := map[string]*stats.Series{}
	for _, cell := range c.Cells {
		for _, p := range cell.Protocols {
			key := keyOf(p.Protocol, cell)
			s, ok := byKey[key]
			if !ok {
				s = &stats.Series{Name: key}
				byKey[key] = s
				order = append(order, key)
			}
			sum, _ := metricOf(p, metric)
			if c.Trials > 1 {
				s.AddErr(xOf(cell), sum.Mean, sum.CI95())
			} else {
				s.Add(xOf(cell), sum.Mean)
			}
		}
	}
	out := make([]*stats.Series, len(order))
	for i, key := range order {
		out[i] = byKey[key]
	}
	return out, nil
}

// FigureTable renders one metric of the campaign as an aligned text table
// — a row per x-axis value, a column per protocol curve, mean±ci95 cells —
// the same presentation the paper's figures use.
func (c *Campaign) FigureTable(metric, axisParam string) (string, error) {
	series, err := c.FigureSeries(metric, axisParam)
	if err != nil {
		return "", err
	}
	ai, _ := c.axisIndex(axisParam)
	return stats.Table(c.Spec.Axes[ai].Param, series), nil
}

// FigureCSV renders one metric of the campaign as figure-shaped CSV (x
// column plus a value and a _ci95 column per curve) for external plotting.
func (c *Campaign) FigureCSV(metric, axisParam string) (string, error) {
	series, err := c.FigureSeries(metric, axisParam)
	if err != nil {
		return "", err
	}
	ai, _ := c.axisIndex(axisParam)
	return stats.CSV(c.Spec.Axes[ai].Param, series), nil
}
