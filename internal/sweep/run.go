package sweep

import (
	"fmt"
	"time"

	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/metrics"
	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/sim"
)

// ProtocolCell is one protocol's replicated result at one grid point: the
// cross-trial summary of the headline metrics plus, under a scenario, the
// phase-aligned cross-trial phase windows.
type ProtocolCell struct {
	// Protocol is the protocol name.
	Protocol string
	// Summary aggregates the headline metrics across the cell's trials —
	// identical to the Summary a standalone core.RunTrials of this cell
	// produces.
	Summary core.TrialSummary
	// Phases aggregates the scenario phase windows across trials; nil
	// without a scenario.
	Phases []metrics.PhaseStats
}

// CellResult is one fully aggregated grid point: its identity (index,
// seed, coordinates) plus one ProtocolCell per campaign protocol, in
// protocol-set order.
type CellResult struct {
	Cell
	// Protocols holds the per-protocol aggregates in campaign order.
	Protocols []ProtocolCell
	// Exemplar is the cell's worst-case query trace — the highest-latency
	// trace any of the cell's runs retained — shipped alongside the
	// aggregates so a distributed campaign surfaces concrete causal
	// evidence, not just summary statistics. Nil unless the campaign ran
	// with a trace policy (base Config.TracePolicy).
	Exemplar *ExemplarTrace `json:",omitempty"`
}

// ExemplarTrace is one retained query trace selected as a cell's exemplar:
// the slowest query observed across the cell's (protocol × trial) runs,
// pre-rendered so coordinators and humans need no simulator state to read
// it. Selection is deterministic: strictly higher latency wins, ties keep
// the earliest (protocol, trial) in campaign order.
type ExemplarTrace struct {
	// Protocol and Trial locate the run that produced the trace.
	Protocol string
	Trial    int
	// Query is the traced query's id.
	Query uint64
	// LatencySeconds is the query's completion latency.
	LatencySeconds float64
	// Failed reports the query finalised without an answer.
	Failed bool
	// Hops is the deepest forward chain the query reached.
	Hops int
	// Rendered is the trace's span-tree text timeline.
	Rendered string
}

// exemplarOf lifts a run's slowest retained trace (runs order traces
// slowest-first) into an exemplar, or nil when the run retained nothing.
func exemplarOf(run *core.RunResult, protocol string, trial int) *ExemplarTrace {
	if len(run.Traces) == 0 {
		return nil
	}
	t := run.Traces[0]
	rendered := ""
	if tree := t.Tree(run.TraceProcessing); tree != nil {
		rendered = tree.Render()
	}
	return &ExemplarTrace{
		Protocol:       protocol,
		Trial:          trial,
		Query:          t.Query,
		LatencySeconds: t.Latency.Seconds(),
		Failed:         t.Failed,
		Hops:           t.Hops,
		Rendered:       rendered,
	}
}

// Campaign is one executed sweep: the spec, the resolved identity of the
// run (seed, trials, protocol set), and every aggregated cell in grid
// order. Campaigns hold only aggregates — per-trial collectors are folded
// and released as results stream in, so campaign memory is O(cells ×
// protocols × phases), independent of trial and query counts.
type Campaign struct {
	// Spec is the campaign definition.
	Spec *Spec
	// Seed is the resolved campaign root seed.
	Seed int64
	// Trials is the resolved replication count per cell.
	Trials int
	// Protocols is the resolved protocol set.
	Protocols []string
	// Cells holds the aggregated grid in expansion order.
	Cells []CellResult
	// Elapsed is the campaign's wall-clock duration (reporting only; it
	// never appears in exported tables).
	Elapsed time.Duration
}

// CellsPerSecond reports campaign throughput in grid cells per wall-clock
// second (0 when the elapsed time was not captured).
func (c *Campaign) CellsPerSecond() float64 {
	if c.Elapsed <= 0 {
		return 0
	}
	return float64(len(c.Cells)) / c.Elapsed.Seconds()
}

// Runs returns the total simulation count of the campaign
// (cells × protocols × trials).
func (c *Campaign) Runs() int {
	return len(c.Cells) * len(c.Protocols) * c.Trials
}

// resolved holds a validated spec lowered onto a base configuration:
// expanded cells, per-cell configs with their scenario grids resolved, and
// the behaviour set.
type resolved struct {
	spec      *Spec
	seed      int64
	trials    int
	names     []string
	behaviors []protocol.Behavior
	cells     []Cell
	cellCfgs  []core.Config
}

// resolve validates and lowers the spec against the base configuration.
func resolve(base core.Config, s *Spec) (*resolved, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	seed := s.Seed
	if seed == 0 {
		seed = base.Seed
	}
	if seed == 0 {
		seed = 1
	}
	names := s.protocols()
	behaviors := make([]protocol.Behavior, len(names))
	for i, n := range names {
		b, ok := behaviorOf(n)
		if !ok {
			return nil, fmt.Errorf("sweep %q: unknown protocol %q", s.Name, n)
		}
		behaviors[i] = b
	}
	// The campaign owns dynamics configuration: the legacy churn flag and
	// any ambient scenario on the base config are cleared so cells run
	// exactly what the spec says (spec/axis scenario, or nothing).
	base.ChurnEnabled = false
	base.Scenario = nil
	cells := s.Cells(seed)
	cellCfgs := make([]core.Config, len(cells))
	for i, c := range cells {
		cfg, err := s.cellConfig(base, c)
		if err != nil {
			return nil, err
		}
		if cfg.Scenario != nil {
			if _, err := cfg.Scenario.Marks(s.Queries); err != nil {
				return nil, fmt.Errorf("sweep %q cell %d: %w", s.Name, c.Index, err)
			}
		}
		cellCfgs[i] = core.ResolveScenario(cfg, s.Queries)
	}
	return &resolved{
		spec: s, seed: seed, trials: s.trials(),
		names: names, behaviors: behaviors,
		cells: cells, cellCfgs: cellCfgs,
	}, nil
}

// Run executes the campaign over the base configuration across a worker
// pool bounded by workers (<= 0 means one per CPU). The full
// (cell × protocol × trial) job grid shares one pool, so a four-cell
// campaign saturates the machine even at one trial per cell. Results are
// identical for every worker count: jobs are index-addressed, folded in
// index order, and each trial's seed depends only on (campaign seed,
// cell index, trial index).
//
// Run is the whole-grid case of Plan.RunCells: every finished run streams
// in index order into its (cell, protocol) accumulator and collapses into
// the final aggregate immediately, so at most O(workers) undelivered
// results plus one cell-row of pending accumulators are alive at any
// point. The campaign layer (internal/campaign) uses the same Plan to run
// arbitrary subsets — resumed or distributed — with identical bytes.
func Run(base core.Config, s *Spec, workers int) (*Campaign, error) {
	p, err := NewPlan(base, s)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	camp := p.NewCampaign()
	all := make([]int, p.NumCells())
	for i := range all {
		all[i] = i
	}
	if err := p.RunCells(all, workers, func(cr *CellResult) { camp.Cells[cr.Index] = *cr }); err != nil {
		return nil, err
	}
	camp.Elapsed = time.Since(start)
	return camp, nil
}

// RunCell executes a single grid cell in isolation — same derivation, same
// configuration, same aggregation as the full campaign — and returns its
// aggregated result. The determinism contract guarantees the values equal
// the cell's entry in a full Run byte for byte; tests lock this.
func RunCell(base core.Config, s *Spec, cell, workers int) (*CellResult, error) {
	r, err := resolve(base, s)
	if err != nil {
		return nil, err
	}
	if cell < 0 || cell >= len(r.cells) {
		return nil, fmt.Errorf("sweep %q: cell %d out of range [0, %d)", s.Name, cell, len(r.cells))
	}
	out := &CellResult{Cell: r.cells[cell], Protocols: make([]ProtocolCell, len(r.behaviors))}
	var exLat sim.Time
	for p, b := range r.behaviors {
		cfg := r.cellCfgs[cell]
		topt := core.TrialOptions{Trials: r.trials, Workers: workers}
		tc := core.RunTrials(withSeed(cfg, r.cells[cell].Seed), b, topt, s.Warmup, s.Queries)
		out.Protocols[p] = ProtocolCell{
			Protocol: r.names[p],
			Summary:  tc.Summary,
			Phases:   tc.PhaseStats,
		}
		// Same exemplar fold as Plan.RunCells, in the same (protocol, trial)
		// order, so the cell stays byte-identical to a full Run's.
		for trial, run := range tc.Runs {
			if len(run.Traces) > 0 {
				if t := run.Traces[0]; out.Exemplar == nil || t.Latency > exLat {
					out.Exemplar = exemplarOf(run, r.names[p], trial)
					exLat = t.Latency
				}
			}
		}
	}
	return out, nil
}

func withSeed(cfg core.Config, seed int64) core.Config {
	cfg.Seed = seed
	return cfg
}
