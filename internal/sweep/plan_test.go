package sweep

import (
	"reflect"
	"testing"

	"github.com/p2prepro/locaware/internal/core"
)

// TestPlanHash locks the content-addressing contract: the hash is stable
// for identical (base, spec) inputs and moves whenever anything that
// could change a cell's bytes moves — spec shape, seed, trials,
// protocols, or the base configuration.
func TestPlanHash(t *testing.T) {
	base := core.DefaultConfig()
	p1, err := NewPlan(base, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlan(base, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if p1.Hash() != p2.Hash() {
		t.Fatalf("hash unstable: %s vs %s", p1.Hash(), p2.Hash())
	}
	if len(p1.Hash()) != 64 {
		t.Fatalf("hash %q is not a sha256 hex digest", p1.Hash())
	}

	distinct := map[string]string{p1.Hash(): "baseline"}
	check := func(label string, base core.Config, s *Spec) {
		t.Helper()
		p, err := NewPlan(base, s)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if prev, ok := distinct[p.Hash()]; ok {
			t.Fatalf("%s collides with %s: %s", label, prev, p.Hash())
		}
		distinct[p.Hash()] = label
	}

	s := tinySpec()
	s.Seed = 99
	check("different seed", base, s)

	s = tinySpec()
	s.Trials = 3
	check("different trials", base, s)

	s = tinySpec()
	s.Protocols = []string{"Dicas"}
	check("different protocols", base, s)

	s = tinySpec()
	s.Axes[0].Values = []float64{60, 91}
	check("different axis values", base, s)

	b := base
	b.Protocol.TTL = 5
	check("different base TTL", b, tinySpec())
}

// TestPlanHashIgnoresAmbientDynamics asserts the campaign-owns-dynamics
// rule carries into the identity: the legacy churn flag and an ambient
// scenario on the base configuration are cleared by resolve, so they must
// not move the hash either.
func TestPlanHashIgnoresAmbientDynamics(t *testing.T) {
	base := core.DefaultConfig()
	p1, err := NewPlan(base, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	b := base
	b.ChurnEnabled = true
	p2, err := NewPlan(b, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if p1.Hash() != p2.Hash() {
		t.Fatal("ambient churn flag moved the campaign hash; resolve clears it, so the hash must too")
	}
}

// TestPlanRunCellsSubset locks the distributed-unit contract: any subset
// of cells run through Plan.RunCells reproduces the corresponding cells
// of a full Run bit for bit, and sinks them in ascending subset order.
func TestPlanRunCellsSubset(t *testing.T) {
	base := core.DefaultConfig()
	spec := tinySpec()
	camp, err := Run(base, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(base, spec)
	if err != nil {
		t.Fatal(err)
	}
	subset := []int{1, 3}
	var got []*CellResult
	if err := p.RunCells(subset, 4, func(cr *CellResult) { got = append(got, cr) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(subset) {
		t.Fatalf("sank %d cells, want %d", len(got), len(subset))
	}
	for i, cr := range got {
		if cr.Index != subset[i] {
			t.Fatalf("sink order: position %d got cell %d, want %d", i, cr.Index, subset[i])
		}
		if !reflect.DeepEqual(*cr, camp.Cells[cr.Index]) {
			t.Fatalf("subset cell %d drifted from the full run:\nsubset: %+v\nfull:   %+v",
				cr.Index, *cr, camp.Cells[cr.Index])
		}
	}

	// The single-cell wrapper is the worker's unit of work.
	cr, err := p.RunCellAt(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*cr, camp.Cells[2]) {
		t.Fatal("RunCellAt drifted from the full run")
	}

	if err := p.RunCells([]int{7}, 1, func(*CellResult) {}); err == nil {
		t.Fatal("out-of-range subset must error")
	}
}

// TestPlanVerifyCell exercises the integrity checks a deserialized cell
// passes through before being folded into a campaign.
func TestPlanVerifyCell(t *testing.T) {
	base := core.DefaultConfig()
	p, err := NewPlan(base, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	cr, err := p.RunCellAt(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyCell(cr); err != nil {
		t.Fatalf("genuine cell must verify: %v", err)
	}
	bad := []struct {
		label  string
		mutate func(*CellResult)
	}{
		{"nil protocols", func(c *CellResult) { c.Protocols = nil }},
		{"wrong seed", func(c *CellResult) { c.Seed++ }},
		{"out of range", func(c *CellResult) { c.Index = 99 }},
		{"wrong coordinates", func(c *CellResult) { c.Coords[0].Value = 1234 }},
		{"wrong protocol name", func(c *CellResult) { c.Protocols[0].Protocol = "Chord" }},
		{"wrong trial pool", func(c *CellResult) { c.Protocols[1].Summary.SuccessRate.N = 7 }},
	}
	for _, tc := range bad {
		clone := *cr
		clone.Coords = append([]Coordinate(nil), cr.Coords...)
		clone.Protocols = append([]ProtocolCell(nil), cr.Protocols...)
		tc.mutate(&clone)
		if err := p.VerifyCell(&clone); err == nil {
			t.Fatalf("%s must fail verification", tc.label)
		}
	}
	if err := p.VerifyCell(nil); err == nil {
		t.Fatal("nil cell must fail verification")
	}
}
