package sweep

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// tinySpec is the 2×2×2 determinism fixture: a 2-axis grid (2 peers
// values × 2 cache capacities) replicated over 2 trials, under a phased
// scenario so the per-phase aggregation path is exercised too.
func tinySpec() *Spec {
	return &Spec{
		Name:      "tiny",
		Warmup:    40,
		Queries:   120,
		Trials:    2,
		Protocols: []string{"Dicas", "Locaware"},
		Scenario:  "churn-waves",
		Axes: []Axis{
			{Param: ParamPeers, Values: []float64{60, 90}},
			{Param: ParamCacheFilenames, Values: []float64{5, 50}},
		},
	}
}

func TestCellSeed(t *testing.T) {
	for _, root := range []int64{1, 42, -7} {
		if got := CellSeed(root, 0); got != root {
			t.Fatalf("CellSeed(%d, 0) = %d, want identity", root, got)
		}
	}
	seen := map[int64]bool{}
	for cell := 0; cell < 100; cell++ {
		s := CellSeed(9, cell)
		if s2 := CellSeed(9, cell); s2 != s {
			t.Fatalf("CellSeed(9, %d) unstable: %d vs %d", cell, s, s2)
		}
		if seen[s] {
			t.Fatalf("CellSeed(9, %d) = %d collides", cell, s)
		}
		seen[s] = true
	}
	// Cell and trial derivations must not alias: otherwise cell c/trial 0
	// would share a world with cell 0/trial c.
	for i := 1; i < 50; i++ {
		if CellSeed(9, i) == sim.TrialSeed(9, i) {
			t.Fatalf("CellSeed and TrialSeed alias at index %d", i)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	base := tinySpec()
	if err := base.Validate(); err != nil {
		t.Fatalf("tiny spec must validate: %v", err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Queries = 0 },
		func(s *Spec) { s.Warmup = -1 },
		func(s *Spec) { s.Protocols = []string{"Chord"} },
		func(s *Spec) { s.Scenario = "no-such-scenario" },
		func(s *Spec) { s.Axes = nil },
		func(s *Spec) { s.Axes[0].Param = "peerz" },
		func(s *Spec) { s.Axes[0].Values = nil },
		func(s *Spec) { s.Axes[1].Param = s.Axes[0].Param },
		func(s *Spec) { s.Base = map[string]float64{"scenario": 1} },
		func(s *Spec) {
			s.Axes = append(s.Axes, Axis{Param: ParamScenario, Scenarios: []string{"nope"}})
		},
		func(s *Spec) {
			s.Scenario = ""
			s.Axes = []Axis{{Param: ParamIntensity, Values: []float64{1}}}
		},
		func(s *Spec) {
			s.Axes = []Axis{{Param: ParamIntensity, Values: []float64{-1}}}
		},
	}
	for i, mutate := range bad {
		s := tinySpec()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Fatalf("mutation %d must fail validation", i)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"name":"x","queries":10,"axes":[{"param":"peers","values":[10]}],"warmpu":3}`)); err == nil {
		t.Fatal("typo'd field must be rejected")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, s := range Builtins() {
		data, err := s.JSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("builtin %q does not round-trip: %v", s.Name, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("builtin %q drifted over JSON round-trip", s.Name)
		}
	}
}

func TestBuiltinsResolve(t *testing.T) {
	if len(Builtins()) < 4 {
		t.Fatalf("want at least 4 built-in campaigns, have %d", len(Builtins()))
	}
	for _, s := range Builtins() {
		if _, err := resolve(core.DefaultConfig(), s); err != nil {
			t.Fatalf("builtin %q does not resolve: %v", s.Name, err)
		}
	}
	if _, ok := Lookup("size-sweep"); !ok {
		t.Fatal("size-sweep missing from registry")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestCellsExpansionOrder(t *testing.T) {
	s := &Spec{
		Name: "order", Queries: 10,
		Axes: []Axis{
			{Param: ParamPeers, Values: []float64{100, 200}},
			{Param: ParamTTL, Values: []float64{3, 5, 7}},
		},
	}
	cells := s.Cells(1)
	if len(cells) != 6 || s.NumCells() != 6 {
		t.Fatalf("2×3 grid expanded to %d cells", len(cells))
	}
	// Row-major: axis 0 slowest, axis 1 fastest.
	want := [][2]float64{{100, 3}, {100, 5}, {100, 7}, {200, 3}, {200, 5}, {200, 7}}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d carries index %d", i, c.Index)
		}
		if c.Coords[0].Value != want[i][0] || c.Coords[1].Value != want[i][1] {
			t.Fatalf("cell %d = %s, want peers=%g ttl=%g", i, c.Label(), want[i][0], want[i][1])
		}
		if c.Seed != CellSeed(1, i) {
			t.Fatalf("cell %d seed drifted", i)
		}
	}
}

func TestScenarioAxisConfig(t *testing.T) {
	s := &Spec{
		Name: "scen", Queries: 100, Warmup: 10,
		Protocols: []string{"Locaware"},
		Axes: []Axis{
			{Param: ParamScenario, Scenarios: []string{"baseline", "steady-churn"}},
			{Param: ParamIntensity, Values: []float64{0.5, 1}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := resolve(core.DefaultConfig(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.cells) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(r.cells))
	}
	for i, cfg := range r.cellCfgs {
		if cfg.Scenario == nil {
			t.Fatalf("cell %d lost its scenario", i)
		}
	}
	if r.cellCfgs[0].Scenario.Name != "baseline" || r.cellCfgs[2].Scenario.Name != "steady-churn" {
		t.Fatalf("scenario axis misapplied: %q / %q",
			r.cellCfgs[0].Scenario.Name, r.cellCfgs[2].Scenario.Name)
	}
	// Intensity 0.5 must halve the steady-churn probabilities.
	full := r.cellCfgs[3].Scenario.Phases[0].Churn
	half := r.cellCfgs[2].Scenario.Phases[0].Churn
	if half.LeaveProb != full.LeaveProb/2 || half.JoinProb != full.JoinProb/2 {
		t.Fatalf("intensity scaling misapplied: half=%+v full=%+v", half, full)
	}
}

// TestGoldenSweepCSV locks the tiny 2×2×2 campaign's full tidy CSV. Any
// refactor that drifts a single cell value breaks this byte-for-byte
// comparison; regenerate deliberately with
// `go test ./internal/sweep -run TestGoldenSweepCSV -update`.
func TestGoldenSweepCSV(t *testing.T) {
	camp, err := Run(core.DefaultConfig(), tinySpec(), 4)
	if err != nil {
		t.Fatal(err)
	}
	got := camp.CSV()
	path := filepath.Join("testdata", "golden_sweep_2x2x2.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("sweep CSV drifted from golden file %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestSweepWorkerInvariance asserts the determinism contract's core
// clause: the campaign's exported bytes are identical at any worker count.
func TestSweepWorkerInvariance(t *testing.T) {
	spec := tinySpec()
	seq, err := Run(core.DefaultConfig(), spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(core.DefaultConfig(), spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if seq.CSV() != par.CSV() {
		t.Fatal("cell CSV differs between 1 and 8 workers")
	}
	if seq.PhaseCSV() != par.PhaseCSV() {
		t.Fatal("phase CSV differs between 1 and 8 workers")
	}
}

// TestSweepCellIsolation locks the subset-reproducibility contract: one
// cell re-run in isolation (RunCell) — and a plain core.RunTrials at the
// cell's derived seed and configuration — reproduce the full campaign's
// values bit for bit.
func TestSweepCellIsolation(t *testing.T) {
	spec := tinySpec()
	camp, err := Run(core.DefaultConfig(), spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	const cell = 2 // peers=90, cache=5: mid-grid, seed != campaign root
	iso, err := RunCell(core.DefaultConfig(), spec, cell, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(camp.Cells[cell].Cell, iso.Cell) {
		t.Fatalf("cell identity drifted: %+v vs %+v", camp.Cells[cell].Cell, iso.Cell)
	}
	if !reflect.DeepEqual(camp.Cells[cell].Protocols, iso.Protocols) {
		t.Fatalf("isolated cell re-run drifted from the full grid:\nfull: %+v\niso:  %+v",
			camp.Cells[cell].Protocols, iso.Protocols)
	}

	// The standalone path: lower the cell's coordinates by hand and run
	// core.RunTrials at the derived seed — the acceptance-criteria
	// equivalence.
	r, err := resolve(core.DefaultConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for p, b := range r.behaviors {
		cfg := r.cellCfgs[cell]
		cfg.Seed = camp.Cells[cell].Seed
		tc := core.RunTrials(cfg, b, core.TrialOptions{Trials: spec.Trials, Workers: 2}, spec.Warmup, spec.Queries)
		if !reflect.DeepEqual(tc.Summary, camp.Cells[cell].Protocols[p].Summary) {
			t.Fatalf("standalone RunTrials drifted from grid cell for %s:\ngrid: %+v\nsolo: %+v",
				r.names[p], camp.Cells[cell].Protocols[p].Summary, tc.Summary)
		}
		if !reflect.DeepEqual(tc.PhaseStats, camp.Cells[cell].Protocols[p].Phases) {
			t.Fatalf("standalone phase stats drifted from grid cell for %s", r.names[p])
		}
	}
}

// TestSweepScenarioProducesPhases asserts the streamed aggregator carries
// the per-phase windows through to the campaign cells.
func TestSweepScenarioProducesPhases(t *testing.T) {
	camp, err := Run(core.DefaultConfig(), tinySpec(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range camp.Cells {
		for _, p := range cell.Protocols {
			if len(p.Phases) != 4 {
				t.Fatalf("cell %d %s: %d phases, want churn-waves' 4", cell.Index, p.Protocol, len(p.Phases))
			}
			if p.Phases[0].SuccessRate.N != camp.Trials {
				t.Fatalf("phase sample pools %d trials, want %d", p.Phases[0].SuccessRate.N, camp.Trials)
			}
		}
	}
	if camp.PhaseCSV() == "" {
		t.Fatal("scenario campaign must export a phase CSV")
	}
}

func TestRunCellOutOfRange(t *testing.T) {
	if _, err := RunCell(core.DefaultConfig(), tinySpec(), 99, 1); err == nil {
		t.Fatal("out-of-range cell must error")
	}
}

func TestFigureExports(t *testing.T) {
	camp, err := Run(core.DefaultConfig(), tinySpec(), 4)
	if err != nil {
		t.Fatal(err)
	}
	series, err := camp.FigureSeries(MetricSuccess, ParamPeers)
	if err != nil {
		t.Fatal(err)
	}
	// 2 protocols × 2 fixed cache values = 4 curves, 2 points each.
	if len(series) != 4 {
		t.Fatalf("got %d series, want 4", len(series))
	}
	for _, s := range series {
		if s.Len() != 2 || !s.HasErrs() {
			t.Fatalf("series %q: %d points, errs=%v", s.Name, s.Len(), s.HasErrs())
		}
		if s.Xs[0] != 60 || s.Xs[1] != 90 {
			t.Fatalf("series %q x grid = %v", s.Name, s.Xs)
		}
	}
	if _, err := camp.FigureSeries("nope", ""); err == nil {
		t.Fatal("unknown metric must error")
	}
	if _, err := camp.FigureSeries(MetricSuccess, "bloom-bits"); err == nil {
		t.Fatal("unknown axis must error")
	}
	table, err := camp.FigureTable(MetricMessages, "")
	if err != nil || !strings.Contains(table, "peers") {
		t.Fatalf("figure table: %v\n%s", err, table)
	}
	csv, err := camp.FigureCSV(MetricRTT, ParamCacheFilenames)
	if err != nil || !strings.HasPrefix(csv, "cache-filenames,") {
		t.Fatalf("figure csv: %v\n%s", err, csv)
	}
}
