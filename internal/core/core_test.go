package core

import (
	"testing"

	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/sim"
)

// smallConfig returns a fast config for tests: 200 peers, accelerated
// query rate so runs finish in milliseconds of wall time.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.NumPeers = 200
	cfg.Gen.RatePerPeer = 0.01
	return cfg
}

func TestNewSimulationAssembly(t *testing.T) {
	s := NewSimulation(smallConfig(1), protocol.Locaware{})
	if s.Graph.N() != 200 || !s.Graph.IsConnected() {
		t.Fatalf("graph: %v", s.Graph)
	}
	if s.Catalog.Size() != 3000 {
		t.Fatalf("catalog = %d", s.Catalog.Size())
	}
	// Every peer shares exactly FilesPerPeer files.
	for p := 0; p < 200; p++ {
		if n := s.Network.Node(overlay.PeerID(p)).NumFiles(); n != 3 {
			t.Fatalf("peer %d shares %d files", p, n)
		}
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSameSeedSameWorldAcrossBehaviors(t *testing.T) {
	a := NewSimulation(smallConfig(7), protocol.Flooding{})
	b := NewSimulation(smallConfig(7), protocol.Locaware{})
	// Identical overlay.
	if a.Graph.Edges() != b.Graph.Edges() {
		t.Fatal("overlays differ across behaviours")
	}
	for p := 0; p < 200; p++ {
		na, nb := a.Graph.Neighbors(overlay.PeerID(p)), b.Graph.Neighbors(overlay.PeerID(p))
		if len(na) != len(nb) {
			t.Fatalf("peer %d neighbourhoods differ", p)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("peer %d neighbourhoods differ", p)
			}
		}
	}
	// Identical locIds and placement.
	for p := 0; p < 200; p++ {
		if a.Locator.LocID(p) != b.Locator.LocID(p) {
			t.Fatalf("locIds differ at %d", p)
		}
	}
}

func TestRunProducesRecords(t *testing.T) {
	s := NewSimulation(smallConfig(2), protocol.Flooding{})
	res := s.Run(50)
	if res.Collector.Submitted() != 50 {
		t.Fatalf("submitted = %d", res.Collector.Submitted())
	}
	if res.Protocol != "Flooding" {
		t.Fatalf("protocol = %q", res.Protocol)
	}
	if res.Events == 0 || res.Duration == 0 {
		t.Fatalf("run accounting: %+v", res)
	}
	if res.Collector.SuccessRate() == 0 {
		t.Fatal("flooding over 200 peers should succeed sometimes")
	}
	if res.Collector.AvgMessagesPerQuery() < 10 {
		t.Fatalf("flooding traffic implausibly low: %v", res.Collector.AvgMessagesPerQuery())
	}
}

func TestRunDeterministic(t *testing.T) {
	r1 := NewSimulation(smallConfig(3), protocol.Locaware{}).Run(80)
	r2 := NewSimulation(smallConfig(3), protocol.Locaware{}).Run(80)
	if r1.Collector.SuccessRate() != r2.Collector.SuccessRate() {
		t.Fatal("same-seed runs differ in success rate")
	}
	if r1.Collector.TotalMessages() != r2.Collector.TotalMessages() {
		t.Fatal("same-seed runs differ in traffic")
	}
	if r1.Events != r2.Events {
		t.Fatal("same-seed runs differ in event count")
	}
}

func TestRunMeasuredDiscardsWarmup(t *testing.T) {
	s := NewSimulation(smallConfig(4), protocol.Locaware{})
	res := s.RunMeasured(30, 40)
	if res.Collector.Submitted() != 40 {
		t.Fatalf("measured records = %d, want 40", res.Collector.Submitted())
	}
}

func TestRunMeasuredPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSimulation(smallConfig(5), protocol.Flooding{}).RunMeasured(0, 0)
}

func TestCachingProtocolPopulatesCaches(t *testing.T) {
	s := NewSimulation(smallConfig(6), protocol.Locaware{})
	res := s.Run(300)
	if res.CacheFilenames == 0 {
		t.Fatal("no filenames cached after 300 queries")
	}
	if res.CacheProviderEntries < res.CacheFilenames {
		t.Fatal("provider entries below filename count")
	}
	if res.ControlMessages == 0 {
		t.Fatal("locaware run produced no Bloom gossip")
	}
}

func TestFloodingCachesNothing(t *testing.T) {
	s := NewSimulation(smallConfig(6), protocol.Flooding{})
	res := s.Run(100)
	if res.CacheFilenames != 0 || res.ControlMessages != 0 {
		t.Fatalf("flooding should not cache or gossip: %+v", res)
	}
}

func TestRunComparisonPaired(t *testing.T) {
	cfg := smallConfig(8)
	cmp := RunComparison(cfg, Baselines(), 50, 100, nil)
	if len(cmp.Results) != 4 || len(cmp.Order) != 4 {
		t.Fatalf("results: %v", cmp.Order)
	}
	for _, name := range []string{"Flooding", "Dicas", "Dicas-Keys", "Locaware"} {
		res, ok := cmp.Results[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if res.Collector.Submitted() != 100 {
			t.Fatalf("%s submitted %d", name, res.Collector.Submitted())
		}
	}
	// Flooding must dominate traffic.
	fl := cmp.Results["Flooding"].Collector.AvgMessagesPerQuery()
	la := cmp.Results["Locaware"].Collector.AvgMessagesPerQuery()
	if la >= fl {
		t.Fatalf("locaware traffic %v >= flooding %v", la, fl)
	}
}

func TestFigureSeriesExtraction(t *testing.T) {
	cfg := smallConfig(9)
	cmp := RunComparison(cfg, []protocol.Behavior{protocol.Flooding{}, protocol.Locaware{}}, 20, 60, []int{20, 40, 60})
	for _, fig := range []string{Fig2DownloadDistance, Fig3SearchTraffic, Fig4SuccessRate} {
		series := cmp.FigureSeries(fig)
		if len(series) != 2 {
			t.Fatalf("%s: %d series", fig, len(series))
		}
		for _, s := range series {
			if s.Len() != 3 {
				t.Fatalf("%s/%s: %d points, want 3", fig, s.Name, s.Len())
			}
			if s.Xs[0] != 20 || s.Xs[2] != 60 {
				t.Fatalf("%s/%s xs = %v", fig, s.Name, s.Xs)
			}
		}
	}
	cum := cmp.CumulativeFigureSeries(Fig4SuccessRate)
	if len(cum) != 2 || cum[0].Len() != 3 {
		t.Fatal("cumulative series broken")
	}
	if got := cmp.FigureSeries("not-a-figure"); got[0].Len() != 0 {
		t.Fatal("unknown figure should yield empty series")
	}
}

func TestNormalizeCheckpoints(t *testing.T) {
	got := normalizeCheckpoints([]int{50, 10, 10, -3, 200}, 100)
	if len(got) != 2 || got[0] != 10 || got[1] != 50 {
		t.Fatalf("normalized = %v (out-of-range and duplicate checkpoints must drop)", got)
	}
	auto := normalizeCheckpoints(nil, 100)
	if len(auto) != 10 || auto[0] != 10 || auto[9] != 100 {
		t.Fatalf("auto checkpoints = %v", auto)
	}
	tiny := normalizeCheckpoints(nil, 3)
	if len(tiny) == 0 {
		t.Fatal("tiny run has no checkpoints")
	}
}

func TestHeadlines(t *testing.T) {
	cfg := smallConfig(10)
	cmp := RunComparison(cfg, Baselines(), 150, 150, nil)
	h := cmp.Headlines()
	if h.TrafficReductionVsFlooding > -0.5 {
		t.Fatalf("traffic reduction %v, expected strongly negative", h.TrafficReductionVsFlooding)
	}
	// Partial comparisons do not panic.
	partial := RunComparison(cfg, []protocol.Behavior{protocol.Locaware{}}, 0, 30, nil)
	_ = partial.Headlines()
	empty := &Comparison{Results: map[string]*RunResult{}}
	_ = empty.Headlines()
}

func TestChurnRun(t *testing.T) {
	cfg := smallConfig(11)
	cfg.ChurnEnabled = true
	cfg.ChurnInterval = 20 * sim.Second
	s := NewSimulation(cfg, protocol.Locaware{})
	res := s.Run(150)
	if res.Collector.Submitted() != 150 {
		t.Fatalf("submitted = %d", res.Collector.Submitted())
	}
	// Churn should leave some peers offline or have cycled them.
	if s.Graph.OnlineCount() == 200 && s.Graph.Edges() == 0 {
		t.Fatal("churn had no effect")
	}
}

func TestWithDefaultsFillsZeroConfig(t *testing.T) {
	var c Config
	c = c.withDefaults()
	d := DefaultConfig()
	if c.NumPeers != d.NumPeers || c.Landmarks != d.Landmarks ||
		c.Protocol.TTL != d.Protocol.TTL || c.Catalog.NumFiles != d.Catalog.NumFiles {
		t.Fatalf("defaults not applied: %+v", c)
	}
	// A zero-config simulation is runnable.
	s := NewSimulation(Config{NumPeers: 100, Gen: c.Gen}, protocol.Dicas{})
	res := s.Run(10)
	if res.Collector.Submitted() != 10 {
		t.Fatal("zero-ish config run failed")
	}
}

func TestLocawareBeatsDicasWarm(t *testing.T) {
	// Integration check of the paper's Fig. 4 ordering at small scale:
	// with a warmed system, Locaware's success rate must be at least
	// Dicas's (the +23% claim is validated at paper scale in the bench
	// harness; here we assert non-inferiority to keep the test robust).
	cfg := smallConfig(12)
	cmp := RunComparison(cfg, []protocol.Behavior{protocol.Dicas{}, protocol.Locaware{}}, 400, 400, nil)
	di := cmp.Results["Dicas"].Collector.SuccessRate()
	la := cmp.Results["Locaware"].Collector.SuccessRate()
	if la < di*0.95 {
		t.Fatalf("locaware %0.3f markedly below dicas %0.3f", la, di)
	}
}

func TestFloodingSuccessDominates(t *testing.T) {
	cfg := smallConfig(13)
	cmp := RunComparison(cfg, []protocol.Behavior{protocol.Flooding{}, protocol.Locaware{}}, 100, 200, nil)
	fl := cmp.Results["Flooding"].Collector.SuccessRate()
	la := cmp.Results["Locaware"].Collector.SuccessRate()
	if fl <= la {
		t.Fatalf("flooding %0.3f should beat locaware %0.3f on success (Fig. 4)", fl, la)
	}
}
