package core

import (
	"github.com/p2prepro/locaware/internal/obs"
	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/sim"
)

// MetricTraceDropped counts trace events discarded because the attached
// tracer sink's buffer overflowed (see trace.Buffer).
const MetricTraceDropped = "trace_events_dropped_total"

// RegisterObsFamilies pre-registers every event-loop and protocol metric
// family on reg, so a scrape surface (the campaign coordinator, a worker
// -obs-addr) advertises the full catalog before the first instrumented
// run reports in. Idempotent.
func RegisterObsFamilies(reg *obs.Registry) {
	sim.RegisterMetrics(reg)
	protocol.RegisterMetrics(reg)
	reg.Counter(MetricTraceDropped, "Trace events dropped by a full tracer buffer.")
}

// RuntimeStats is one run's observability snapshot: what this simulation
// contributed to the registry, assembled from its own shard-confined
// cells (the registry itself may be shared across concurrent runs).
type RuntimeStats struct {
	// Shards is the effective shard count the run executed with.
	Shards int
	// EventsByKind counts deliveries per event kind across all shards.
	EventsByKind map[string]uint64
	// EventsScheduled counts all schedule calls, including cancelled ones.
	EventsScheduled uint64
	// EventsCancelled counts cancelled events discarded by the scheduler,
	// whether skipped at pop time or reaped during a calendar rebuild.
	EventsCancelled uint64
	// QueueDepthHighWater is the deepest any shard's event queue got.
	QueueDepthHighWater uint64
	// FreeListEvents is the pooled-event capacity left at end of run.
	FreeListEvents int
	// Epochs / CrossShardEvents / MaxEpochDrainSeconds describe the
	// sharded epoch loop (zero on a single queue).
	Epochs               uint64
	CrossShardEvents     uint64
	MaxEpochDrainSeconds float64
	// Protocol-plane counters (see protocol.ObsSnapshot).
	Submitted            uint64
	Finalized            uint64
	CacheHits            uint64
	CacheMisses          uint64
	StorageHits          uint64
	BloomInstallCopies   uint64
	PendingHighWater     uint64
	FinalizeWatermarkLag uint64
	// TraceEventsDropped counts trace events the attached tracer's buffer
	// discarded after filling (0 when untraced or nothing dropped). A
	// non-zero value means the trace is incomplete — raise the buffer
	// capacity or switch to a sampling flight recorder.
	TraceEventsDropped uint64
	// PoolFree is the per-pool free-list occupancy at end of run.
	PoolFree map[string]int
}

// attachObs wires instrumentation into the loop and network. Called at
// build time so the hot path sees stable instr pointers for the whole
// run.
func (s *Simulation) attachObs(reg *obs.Registry) {
	RegisterObsFamilies(reg)
	if sh, ok := s.loop.(*sim.Sharded); ok {
		s.obsSh = sh.EnableObs(reg)
	} else {
		s.obsEng = s.Engine.EnableObs(reg)
	}
	s.Network.EnableObs(reg)
}

// finishObs drains every cell, folds the run's end-of-run totals
// (scheduled events, freelists, forwarding tiers, control traffic, pool
// occupancy) into the registry, and attaches the per-run snapshot to
// res. No-op without an attached registry.
func (s *Simulation) finishObs(res *RunResult) {
	reg := s.Cfg.Obs
	if reg == nil {
		return
	}
	if s.obsSh != nil {
		s.obsSh.Drain()
	} else if s.obsEng != nil {
		s.obsEng.Drain()
	}
	s.Network.DrainObs()

	var scheduled, cancelled uint64
	freelist := 0
	if sh, ok := s.loop.(*sim.Sharded); ok {
		for i := 0; i < sh.Shards(); i++ {
			scheduled += sh.Engine(i).Scheduled()
			cancelled += sh.Engine(i).Cancelled()
			freelist += sh.Engine(i).FreeListLen()
		}
	} else {
		scheduled = s.Engine.Scheduled()
		cancelled = s.Engine.Cancelled()
		freelist = s.Engine.FreeListLen()
	}
	reg.Counter(sim.MetricScheduled, "").Add(scheduled)
	reg.Counter(sim.MetricCancelled, "").Add(cancelled)
	reg.Gauge(sim.MetricFreeList, "").SetMax(int64(freelist))

	fwd := s.Network.Forwarding()
	fwdVec := reg.CounterVec(protocol.MetricForwards, "", "tier")
	fwdVec.With("bloom").Add(fwd.BloomMatched)
	fwdVec.With("gid").Add(fwd.GidMatched)
	fwdVec.With("fallback").Add(fwd.Fallback)
	fwdVec.With("flood").Add(fwd.FloodAll)
	reg.Counter(protocol.MetricControlMsgs, "").Add(s.Network.ControlMessages())
	reg.Counter(protocol.MetricControlBits, "").Add(s.Network.ControlBits())
	reg.Counter(protocol.MetricStaleBlooms, "").Add(s.Network.StaleBloomFallbacks())

	pools := s.Network.PoolSizes()
	poolVec := reg.GaugeVec(protocol.MetricPoolFree, "", "pool")
	for name, n := range pools {
		poolVec.With(name).SetMax(int64(n))
	}

	ps := s.Network.ObsStats()
	rs := &RuntimeStats{
		Shards:               s.Cfg.Shards,
		EventsScheduled:      scheduled,
		EventsCancelled:      cancelled,
		FreeListEvents:       freelist,
		Submitted:            ps.Submitted,
		Finalized:            ps.Finalized,
		CacheHits:            ps.CacheHits,
		CacheMisses:          ps.CacheMisses,
		StorageHits:          ps.StorageHits,
		BloomInstallCopies:   ps.BloomInstallCopies,
		PendingHighWater:     ps.PendingHighWater,
		FinalizeWatermarkLag: ps.WatermarkLagHighWtr,
		PoolFree:             pools,
	}
	if s.obsSh != nil {
		rs.EventsByKind = s.obsSh.EventsByKind()
		rs.QueueDepthHighWater = s.obsSh.QueueHighWater()
		rs.Epochs = s.obsSh.Epochs()
		rs.CrossShardEvents = s.obsSh.CrossShardEvents()
		rs.MaxEpochDrainSeconds = s.obsSh.MaxEpochDrainSeconds()
	} else if s.obsEng != nil {
		rs.EventsByKind = s.obsEng.EventsByKind()
		rs.QueueDepthHighWater = s.obsEng.QueueHighWater()
	}
	if dc, ok := s.Network.TracerSink().(interface{ Dropped() uint64 }); ok {
		if d := dc.Dropped(); d > 0 {
			reg.Counter(MetricTraceDropped, "").Add(d)
			rs.TraceEventsDropped = d
		}
	}
	res.Runtime = rs
}
