package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/p2prepro/locaware/internal/metrics"
	"github.com/p2prepro/locaware/internal/netmodel"
	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/scenario"
	"github.com/p2prepro/locaware/internal/sim"
	"github.com/p2prepro/locaware/internal/trace"
	"github.com/p2prepro/locaware/internal/workload"
)

// Simulation is one fully assembled run: topology + workload + one protocol
// behaviour.
type Simulation struct {
	Cfg      Config
	Engine   *sim.Engine
	Graph    *overlay.Graph
	Model    *netmodel.Model
	Locator  *netmodel.Locator
	Catalog  *workload.Catalog
	Network  *protocol.Network
	Behavior protocol.Behavior

	gen       *workload.Generator
	placement *workload.Placement
	scenario  *scenario.Runtime

	// obsEng / obsSh hold the run's event-loop instrumentation when
	// Cfg.Obs is set (exactly one is non-nil, matching the loop kind).
	obsEng *sim.EngineInstr
	obsSh  *sim.ShardedInstr

	// recorder is the run's flight recorder when Cfg.TracePolicy is set; it
	// is the tracer sink behind the network's per-shard trace cells, and
	// RunMeasured harvests its retained traces into the result.
	recorder *trace.FlightRecorder

	// forceSeq forces the sharded loop onto the sequential epoch drain.
	// Tracing no longer needs it (per-shard trace cells merge at the
	// barrier); it remains as the byte-identity test hook.
	forceSeq bool

	// loop drives the run: the sharded per-locality harness when
	// Cfg.Shards > 1 (Engine then aliases shard 0, which hosts the
	// control plane — submission chain, gossip and churn ticks, collector
	// reset), the bare Engine otherwise.
	loop runner

	// runDeadline is fixed by the last arrival's submission event; the
	// run's tail is bounded by it (plus the horizon).
	runDeadline sim.Time
}

// runner is the event-loop surface RunMeasured drives, satisfied by both
// *sim.Engine and *sim.Sharded.
type runner interface {
	RunUntil(deadline sim.Time, maxEvents uint64) uint64
	SetHorizon(t sim.Time)
	Now() sim.Time
	Processed() uint64
}

// NewSimulation assembles a simulation for the behaviour. All randomness
// derives from cfg.Seed via named streams, so two simulations with the same
// config but different behaviours see the same physical world, overlay,
// file placement and query sequence.
func NewSimulation(cfg Config, b protocol.Behavior) *Simulation {
	cfg = cfg.withDefaults()
	rng := sim.NewRNG(cfg.Seed)

	topoRng := rng.Stream("topology")
	pts := netmodel.Place(cfg.NumPeers, cfg.Placement, topoRng)
	model := netmodel.NewModel(pts, cfg.Placement.Side, cfg.Latency, cfg.Seed)
	lm := netmodel.NewLandmarks(cfg.Landmarks, cfg.Placement.Side, rng.Stream("landmarks"))
	locator := netmodel.NewLocator(model, lm)

	graph := overlay.BuildRandom(cfg.NumPeers,
		overlay.BuildConfig{AvgDegree: cfg.AvgDegree, MaxDegree: cfg.MaxDegree},
		rng.Stream("overlay"))

	catalog := workload.NewCatalog(cfg.Catalog, rng.Stream("catalog"))
	placement := workload.NewPlacement(cfg.NumPeers, cfg.FilesPerPeer, catalog, rng.Stream("placement"))

	// Validate the shard count: negatives (and zero) mean one queue, and
	// more shards than occupied localities would only create empty shard
	// engines — clamp down to the locality count instead.
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if occupied := len(locator.Census()); cfg.Shards > occupied {
		cfg.Shards = occupied
	}

	var eng *sim.Engine
	var loop runner
	var net *protocol.Network
	if cfg.Shards > 1 {
		// Dense-rank the occupied locIds so peers spread over all shards
		// even when the locId space is sparse: sorted occupied ids get
		// ranks 0,1,2,… and a peer's shard is its locality's rank modulo
		// the shard count. No shard is ever empty.
		census := locator.Census()
		occupied := make([]int, 0, len(census))
		for id := range census {
			occupied = append(occupied, int(id))
		}
		sort.Ints(occupied)
		rank := make(map[int]int, len(occupied))
		for i, id := range occupied {
			rank[id] = i
		}
		shardOf := func(peer int) int { return rank[int(locator.LocID(peer))] % cfg.Shards }
		// The epoch lookahead is derived, not configured: the minimum
		// cross-peer delay the workload can produce is the model's one-way
		// latency floor plus the per-hop processing delay, and every
		// cross-shard event is a peer-to-peer message — so epochs batch as
		// widely as correctness allows.
		lookahead := sim.FromMillis(model.MinOneWay()) + cfg.Protocol.ProcessingDelay
		sharded := sim.NewSharded(sim.ShardedOptions{
			Shards:    cfg.Shards,
			ShardOf:   shardOf,
			Lookahead: lookahead,
		})
		eng = sharded.Engine(0)
		loop = sharded
		// One protocol RNG stream per shard: shard 0 keeps the single-queue
		// stream name, so tie-breaking stays on familiar streams.
		shardRngs := make([]*rand.Rand, cfg.Shards)
		shardRngs[0] = rng.Stream("protocol")
		for i := 1; i < cfg.Shards; i++ {
			shardRngs[i] = rng.StreamN("protocol-shard", i)
		}
		net = protocol.NewShardedNetwork(sharded, shardOf, shardRngs, lookahead,
			graph, model, locator, b, cfg.Protocol, rng.Stream("gid"))
	} else {
		eng = sim.NewEngine()
		loop = eng
		net = protocol.NewNetwork(eng, graph, model, locator, b, cfg.Protocol,
			rng.Stream("gid"), rng.Stream("protocol"))
	}

	// Seed initial shared storage.
	for p := 0; p < cfg.NumPeers; p++ {
		for _, fid := range placement.Files(p) {
			net.Node(overlay.PeerID(p)).AddFile(catalog.File(fid))
		}
	}

	// Queries target PF, the set of popularly shared files (§3.3): only
	// files some peer actually provides are queryable. Catalogue ids are
	// popularity ranks, so sorting keeps the Zipf head on popular files.
	providerMap := placement.Providers()
	targets := make([]workload.FileID, 0, len(providerMap))
	for fid := range providerMap {
		targets = append(targets, fid)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })

	s := &Simulation{
		Cfg:       cfg,
		Engine:    eng,
		loop:      loop,
		Graph:     graph,
		Model:     model,
		Locator:   locator,
		Catalog:   catalog,
		Network:   net,
		Behavior:  b,
		gen:       workload.NewGeneratorOver(cfg.NumPeers, cfg.Gen, catalog, targets, rng.Stream("workload")),
		placement: placement,
	}

	// Dynamics run through the scenario engine; the legacy whole-run churn
	// flag lowers onto the built-in steady-churn spec, which schedules the
	// same periodic control on the same RNG stream the ad-hoc path used —
	// departed peers' own indexes die with them, survivors' indexes
	// pointing at them become stale and are filtered at selection time.
	if spec := cfg.effectiveScenario(); spec != nil {
		rt, err := scenario.Attach(spec, scenario.World{
			Engine:        eng,
			Graph:         graph,
			Model:         model,
			Locator:       locator,
			Catalog:       catalog,
			Gen:           s.gen,
			Net:           net,
			ChurnDefaults: cfg.Churn,
		}, rng.Stream("churn"), rng.Stream("scenario"))
		if err != nil {
			// The facade validates specs before building; reaching here is
			// a programming error.
			panic(fmt.Sprintf("core: attaching scenario: %v", err))
		}
		s.scenario = rt
	}
	if cfg.Obs != nil {
		// Attach instrumentation last so every engine and shard state
		// exists. Observability is shard-confined and never forces the
		// sequential epoch drain.
		s.attachObs(cfg.Obs)
	}
	if cfg.TracePolicy != nil {
		// The flight recorder sits behind the network's per-shard trace
		// cells, so — like the registry above — it never forces the
		// sequential drain.
		s.recorder = trace.NewFlightRecorder(*cfg.TracePolicy)
		net.SetTracer(s.recorder)
	}
	return s
}

// RunResult summarises one run.
type RunResult struct {
	// Protocol is the behaviour's name.
	Protocol string
	// Collector holds the run's streamed metric accumulators (and, in
	// RetainRecords mode only, the full per-query record stream).
	Collector *metrics.Collector
	// ControlMessages / ControlBits account Bloom gossip traffic
	// separately from search traffic, as the paper does.
	ControlMessages uint64
	ControlBits     uint64
	// CacheFilenames / CacheProviderEntries snapshot aggregate response
	// index occupancy at the end of the run (storage-overhead metric).
	CacheFilenames       int
	CacheProviderEntries int
	// Forwarding tallies how each routing tier was used across the run.
	Forwarding protocol.ForwardStats
	// Duration is the virtual time the run covered.
	Duration sim.Time
	// Events is the number of simulator events processed.
	Events uint64
	// Err is non-nil when a sharded run was aborted by a cross-shard
	// barrier violation (a derived lookahead wider than the workload's
	// minimum cross-shard delay — a harness bug, surfaced instead of
	// crashing the campaign). The result then covers only the epochs
	// delivered before the violation.
	Err error
	// Runtime is the run's observability snapshot; nil unless Config.Obs
	// was set.
	Runtime *RuntimeStats
	// Traces holds the flight recorder's retained query traces (slowest
	// first); nil unless Config.TracePolicy was set.
	Traces []*trace.QueryTrace
	// TracePhases holds the scenario phase-entry events the recorder saw,
	// for export alongside Traces.
	TracePhases []trace.Event
	// TraceProcessing is the per-hop processing delay the run used — the
	// attribution constant QueryTrace.Tree needs. Set iff Traces is.
	TraceProcessing sim.Time
}

// Run submits numQueries queries at the generator's Poisson arrival times
// and drives the engine until every query has been finalised. It can be
// called once per Simulation.
func (s *Simulation) Run(numQueries int) *RunResult {
	return s.RunMeasured(0, numQueries)
}

// RunMeasured runs warmup queries to bring caches, Bloom filters and
// natural replication to operating temperature, then measures the next
// measured queries. Warmup queries execute with full protocol effect but
// their records are discarded: only the measured phase appears in the
// returned result.
//
// Arrivals are streamed: each submission event generates and schedules its
// successor, so the engine queue holds O(in-flight) events instead of the
// whole workload — a million-query run no longer materialises a
// million-entry schedule up front. The generator's RNG is consumed in the
// same sequential order as the old bulk schedule, so results are unchanged.
// The chain is one reused typed event (submitEvent), so driving the whole
// workload allocates nothing per query.
func (s *Simulation) RunMeasured(warmup, measured int) *RunResult {
	total := warmup + measured
	if total <= 0 {
		panic("core: RunMeasured needs at least one query")
	}
	if s.scenario != nil {
		// Fix the phase timeline now that the measured count is known;
		// phase entries then ride the submission events below, so the
		// whole timeline is part of the deterministic event order.
		if err := s.scenario.BeginMeasured(measured); err != nil {
			panic(fmt.Sprintf("core: scenario timeline: %v", err))
		}
	}
	s.runDeadline = 0
	if sh, ok := s.loop.(*sim.Sharded); ok {
		// Route the warmup records by query id (the sharded replacement for
		// the mid-run collector swap), and drain epochs on one goroutine
		// per shard unless a scenario is attached (its dynamics mutate
		// shared substrates from shard-0 events) or a test forces the
		// sequential drain. Tracers no longer disable parallelism: emits go
		// to per-shard cells merged at the barrier, and both drain modes
		// hand the sink the identical stream.
		s.Network.SetWarmupQueries(warmup)
		sh.SetParallel(s.scenario == nil && !s.forceSeq)
	}
	s.scheduleSubmit(&submitEvent{s: s, warmup: warmup, total: total, ev: s.gen.Next()})
	// Step until the last arrival has been generated (deadline known), then
	// run the tail out in one deadline-bounded call. Stepping is batched
	// to spare the sharded loop its per-call epoch setup; scheduleSubmit
	// stops the engine the instant it fixes the deadline, so a batch can
	// never run on past it and deliver an already-queued event (a periodic
	// control rescheduled beyond the eventual deadline before the horizon
	// existed) that the deadline-bounded tail would have excluded.
	for s.runDeadline == 0 && s.loopErr() == nil {
		if s.loop.RunUntil(sim.Time(math.MaxInt64), 256) == 0 {
			if s.loopErr() != nil {
				break
			}
			panic("core: engine drained before the workload completed")
		}
	}
	if s.loopErr() == nil {
		s.loop.RunUntil(s.runDeadline, 0)
	}
	s.Network.FlushPending()

	res := &RunResult{
		Protocol:        s.Behavior.Name(),
		Collector:       s.Network.Collector,
		ControlMessages: s.Network.ControlMessages(),
		ControlBits:     s.Network.ControlBits(),
		Forwarding:      s.Network.Forwarding(),
		Duration:        s.loop.Now(),
		Events:          s.loop.Processed(),
		Err:             s.loopErr(),
	}
	for _, n := range s.Network.Nodes() {
		res.CacheFilenames += n.RI.Len()
		res.CacheProviderEntries += n.RI.TotalProviderEntries()
	}
	s.finishObs(res)
	if s.recorder != nil {
		res.Traces = s.recorder.Traces()
		res.TracePhases = s.recorder.Phases()
		res.TraceProcessing = s.Cfg.Protocol.ProcessingDelay
	}
	return res
}

// submitEvent drives the streamed arrival chain: one instance per run,
// re-posted for each successive query. It is undestined — submissions are
// the control plane's job — while everything it triggers (forward branches,
// finalisation) routes by destination peer.
type submitEvent struct {
	s      *Simulation
	i      int
	warmup int
	total  int
	ev     workload.QueryEvent
}

func (se *submitEvent) EventName() string { return "query-submit" }

func (se *submitEvent) Fire(*sim.Engine) {
	s := se.s
	if s.scenario != nil && se.i >= se.warmup {
		s.scenario.OnSubmit(se.i - se.warmup)
	}
	s.Network.Submit(overlay.PeerID(se.ev.Requester), se.ev.Q)
	if se.i+1 < se.total {
		se.i++
		se.ev = s.gen.Next()
		s.scheduleSubmit(se)
	}
}

// collectorResetEvent swaps in the measured-phase collector just before
// the first measured query (see scheduleSubmit).
type collectorResetEvent struct{ s *Simulation }

func (ev *collectorResetEvent) EventName() string { return "collector-reset" }

func (ev *collectorResetEvent) Fire(*sim.Engine) { ev.s.Network.ResetCollector() }

// scheduleSubmit posts the submission event for its current arrival, the
// collector swap ahead of the first measured query, and — at the last
// arrival — the run deadline and horizon.
func (s *Simulation) scheduleSubmit(se *submitEvent) {
	if se.i == se.warmup && se.warmup > 0 && !s.Network.Sharded() {
		// Swap the collector just before the first measured query;
		// in-flight warmup queries keep finalising into the old one.
		if at := se.ev.At - 1; at < s.Engine.Now() {
			s.Network.ResetCollector()
		} else if err := s.Engine.PostEventAt(at, &collectorResetEvent{s: s}); err != nil {
			panic(fmt.Sprintf("core: scheduling collector reset: %v", err))
		}
	}
	if err := s.Engine.PostEventAt(se.ev.At, se); err != nil {
		panic(fmt.Sprintf("core: scheduling query: %v", err))
	}
	if se.i == se.total-1 {
		// The last arrival fixes the run deadline; the horizon drops
		// anything scheduled beyond it (periodic controls, long tails).
		// Stop ends the current stepping batch right here, so everything
		// after this instant runs under the deadline bound (under the
		// sharded loop the stop lands at the epoch boundary, whose events
		// all carry the current — pre-deadline — timestamp).
		s.runDeadline = se.ev.At + s.Cfg.Protocol.FinalizeAfter + sim.Minute
		s.loop.SetHorizon(s.runDeadline)
		s.Engine.Stop()
	}
}

// loopErr returns the sharded loop's barrier-violation error, or nil on
// the plain engine (which has no failure mode).
func (s *Simulation) loopErr() error {
	if sh, ok := s.loop.(*sim.Sharded); ok {
		return sh.Err()
	}
	return nil
}

// String identifies the simulation.
func (s *Simulation) String() string {
	return fmt.Sprintf("sim{%s peers=%d seed=%d}", s.Behavior.Name(), s.Cfg.NumPeers, s.Cfg.Seed)
}
