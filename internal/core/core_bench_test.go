package core

import (
	"runtime"
	"testing"

	"github.com/p2prepro/locaware/internal/obs"
	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/scenario"
	"github.com/p2prepro/locaware/internal/sim"
	"github.com/p2prepro/locaware/internal/trace"
)

// benchConfig is a mid-scale world with accelerated arrivals, large enough
// that the measured path (queries, forwards, responses, finalisation)
// dominates any per-world constant.
func benchConfig(peers int, seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.NumPeers = peers
	cfg.Gen.RatePerPeer = 0.01
	return cfg
}

// BenchmarkMeasuredPathAllocs locks the streaming-pipeline win: it times
// only RunMeasured (world construction is excluded via StopTimer) and
// reports allocs/query on the measured path. Before the streaming metrics
// pipeline and hot-path pooling this figure was ~950 allocs/query at 2000
// peers; the refactor target is a ≥5× reduction.
func BenchmarkMeasuredPathAllocs(b *testing.B) {
	const queries = 500
	b.ReportAllocs()
	var mallocs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := benchConfig(2000, int64(i+1))
		cfg.Protocol.Collector.Checkpoints = []int{100, 200, 300, 400, 500}
		s := NewSimulation(cfg, protocol.Locaware{})
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		b.StartTimer()
		res := s.RunMeasured(0, queries)
		b.StopTimer()
		runtime.ReadMemStats(&m1)
		mallocs += m1.Mallocs - m0.Mallocs
		if res.Collector.Submitted() != queries {
			b.Fatalf("submitted %d queries", res.Collector.Submitted())
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(mallocs)/float64(uint64(b.N)*queries), "allocs/query")
}

// BenchmarkInstrumentedPathAllocs is BenchmarkMeasuredPathAllocs with the
// observability registry attached: the instrumented hot path must stay
// within the same per-query allocation budget, because per-event
// accounting goes through shard-confined cells (plain increments) and the
// only instrumentation allocations are first-seen label series and the
// end-of-run snapshot, both amortised over the whole run.
func BenchmarkInstrumentedPathAllocs(b *testing.B) {
	const queries = 500
	b.ReportAllocs()
	var mallocs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := benchConfig(2000, int64(i+1))
		cfg.Protocol.Collector.Checkpoints = []int{100, 200, 300, 400, 500}
		cfg.Obs = obs.NewRegistry()
		s := NewSimulation(cfg, protocol.Locaware{})
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		b.StartTimer()
		res := s.RunMeasured(0, queries)
		b.StopTimer()
		runtime.ReadMemStats(&m1)
		mallocs += m1.Mallocs - m0.Mallocs
		if res.Collector.Submitted() != queries {
			b.Fatalf("submitted %d queries", res.Collector.Submitted())
		}
		if res.Runtime == nil || res.Runtime.Submitted != queries {
			b.Fatalf("instrumentation lost the run: %+v", res.Runtime)
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(mallocs)/float64(uint64(b.N)*queries), "allocs/query")
}

// BenchmarkFlightRecorderPathAllocs is BenchmarkMeasuredPathAllocs with a
// tail-sampling flight recorder attached. The recorder's steady state is
// pooled query buffers plus a bounded slowest-N heap, and trace events flow
// through per-shard cells into reused capacity, so the measured path must
// stay within a few allocs/query of the untraced baseline (~42); the
// budget this benchmark watches is ≤ 45 allocs/query.
func BenchmarkFlightRecorderPathAllocs(b *testing.B) {
	const queries = 500
	b.ReportAllocs()
	var mallocs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := benchConfig(2000, int64(i+1))
		cfg.Protocol.Collector.Checkpoints = []int{100, 200, 300, 400, 500}
		cfg.TracePolicy = &trace.Policy{SlowestN: 8}
		s := NewSimulation(cfg, protocol.Locaware{})
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		b.StartTimer()
		res := s.RunMeasured(0, queries)
		b.StopTimer()
		runtime.ReadMemStats(&m1)
		mallocs += m1.Mallocs - m0.Mallocs
		if res.Collector.Submitted() != queries {
			b.Fatalf("submitted %d queries", res.Collector.Submitted())
		}
		if len(res.Traces) != 8 {
			b.Fatalf("recorder retained %d traces, want 8", len(res.Traces))
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(mallocs)/float64(uint64(b.N)*queries), "allocs/query")
}

// BenchmarkScenarioOverhead proves the scenario engine is free when idle:
// the no-op baseline scenario (one steady phase, no dynamics) adds one
// branch per submission and one phase accumulator to the PR 2 hot path, so
// its allocs/query must match the scenario-less measured path — compare
// the scenario=off and scenario=baseline sub-benchmarks.
func BenchmarkScenarioOverhead(b *testing.B) {
	const queries = 500
	for _, withScenario := range []bool{false, true} {
		name := "scenario=off"
		if withScenario {
			name = "scenario=baseline"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var mallocs uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := benchConfig(2000, int64(i+1))
				cfg.Protocol.Collector.Checkpoints = []int{100, 200, 300, 400, 500}
				if withScenario {
					cfg.Scenario, _ = scenario.Lookup("baseline")
					cfg = ResolveScenario(cfg, queries)
				}
				s := NewSimulation(cfg, protocol.Locaware{})
				var m0, m1 runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&m0)
				b.StartTimer()
				res := s.RunMeasured(0, queries)
				b.StopTimer()
				runtime.ReadMemStats(&m1)
				mallocs += m1.Mallocs - m0.Mallocs
				if res.Collector.Submitted() != queries {
					b.Fatalf("submitted %d queries", res.Collector.Submitted())
				}
				if withScenario && len(res.Collector.PhaseWindows()) != 1 {
					b.Fatal("baseline scenario must seal exactly one phase window")
				}
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(mallocs)/float64(uint64(b.N)*queries), "allocs/query")
		})
	}
}

// BenchmarkShardedProtocolEvents drives a full Locaware run per shard
// count — parallel epoch drain active for shards > 1 — and reports
// protocol events/sec. On a 1-core container the parallel drain cannot
// show wall-clock speedup; the figure this benchmark locks is overhead
// parity: per-shard state plus epoch batching must keep shards > 1 within
// noise of the single queue, so that multi-core hosts only see the upside.
func BenchmarkShardedProtocolEvents(b *testing.B) {
	const warmup, measured = 500, 2000
	type variant struct {
		name   string
		shards int
		spawn  bool
	}
	variants := []variant{
		{"shards=1", 1, false},
		{"shards=2", 2, false},
		{"shards=4", 4, false},
		// Legacy per-epoch goroutine spawn, for the persistent-worker delta.
		{"shards=2-spawn", 2, true},
		{"shards=4-spawn", 4, true},
	}
	for _, v := range variants {
		shards := v.shards
		b.Run(v.name, func(b *testing.B) {
			var events uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := benchConfig(2000, int64(i+1))
				cfg.Shards = shards
				s := NewSimulation(cfg, protocol.Locaware{})
				if sh, ok := s.loop.(*sim.Sharded); ok && v.spawn {
					sh.SetSpawnDrain(true)
				}
				b.StartTimer()
				res := s.RunMeasured(warmup, measured)
				b.StopTimer()
				if res.Err != nil {
					b.Fatalf("shards=%d: run aborted: %v", shards, res.Err)
				}
				if res.Collector.Submitted() != measured {
					b.Fatalf("shards=%d: submitted %d queries", shards, res.Collector.Submitted())
				}
				events += res.Events
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkCollectorFootprint contrasts the two measurement modes on the
// same run: the streaming collector's state is O(checkpoints) while
// RetainRecords grows O(queries). The bytes/op gap is the memory the
// streaming pipeline gives back to large runs.
func BenchmarkCollectorFootprint(b *testing.B) {
	for _, retain := range []bool{false, true} {
		name := "streaming"
		if retain {
			name = "retain-records"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(400, int64(i+1))
				cfg.Protocol.Collector.Checkpoints = []int{500, 1000, 1500, 2000}
				cfg.Protocol.Collector.RetainRecords = retain
				s := NewSimulation(cfg, protocol.Locaware{})
				s.RunMeasured(0, 2000)
			}
		})
	}
}
