package core

import (
	"reflect"
	"testing"

	"github.com/p2prepro/locaware/internal/metrics"
	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/trace"
)

// tracedRun executes a sharded run with the flight recorder attached,
// optionally forcing the sequential epoch drain, and returns the rendered
// span trees plus the metrics fingerprint.
func tracedRun(t *testing.T, sequential bool) ([]string, shardFingerprint) {
	t.Helper()
	cfg := benchConfig(400, 11)
	cfg.Shards = 4
	cfg.TracePolicy = &trace.Policy{SlowestN: 5, KeepFailed: true}
	s := NewSimulation(cfg, protocol.Locaware{})
	s.forceSeq = sequential
	res := s.RunMeasured(50, 200)
	if res.Err != nil {
		t.Fatalf("sequential=%v: run aborted: %v", sequential, res.Err)
	}
	if len(res.Traces) == 0 {
		t.Fatalf("sequential=%v: recorder retained nothing", sequential)
	}
	rendered := make([]string, len(res.Traces))
	for i, qt := range res.Traces {
		tree := qt.Tree(res.TraceProcessing)
		if tree == nil {
			t.Fatalf("sequential=%v: trace %d (q=%d) built no tree", sequential, i, qt.Query)
		}
		rendered[i] = tree.Render()
	}
	return rendered, shardFingerprint{
		Success:  res.Collector.SuccessRate(),
		Messages: res.Collector.AvgMessagesPerQuery(),
		RTT:      res.Collector.AvgDownloadRTT(),
		Events:   res.Events,
		Control:  res.ControlMessages,
		Cache:    res.CacheFilenames,
	}
}

// TestTracedParallelMatchesSequential locks the tentpole claim of the
// shard-cell trace collection: with a flight recorder attached the parallel
// epoch drain stays enabled and produces byte-identical retained traces —
// same queries, same rendered span trees — to the sequential drain of the
// same layout, because per-shard cells merge at the epoch barrier in
// (time, query, shard) order regardless of drain interleaving. Run under
// -race this also proves trace emission touches no cross-shard state.
func TestTracedParallelMatchesSequential(t *testing.T) {
	seqTraces, seqFp := tracedRun(t, true)
	parTraces, parFp := tracedRun(t, false)
	if !reflect.DeepEqual(seqFp, parFp) {
		t.Fatalf("traced parallel drain diverged on metrics:\n  seq %+v\n  par %+v", seqFp, parFp)
	}
	if len(seqTraces) != len(parTraces) {
		t.Fatalf("retained %d traces sequentially, %d in parallel", len(seqTraces), len(parTraces))
	}
	for i := range seqTraces {
		if seqTraces[i] != parTraces[i] {
			t.Fatalf("trace %d differs between drains:\n--- sequential\n%s--- parallel\n%s",
				i, seqTraces[i], parTraces[i])
		}
	}
}

// TestRecorderDoesNotPerturbRun locks the inertness contract: attaching a
// flight recorder changes no metric and no per-query record — byte-identical
// to the untraced run — on the single-queue and the sharded path alike.
func TestRecorderDoesNotPerturbRun(t *testing.T) {
	for _, shards := range []int{0, 4} {
		run := func(pol *trace.Policy) (shardFingerprint, []metrics.QueryRecord) {
			cfg := benchConfig(300, 17)
			cfg.Shards = shards
			cfg.Protocol.Collector = metrics.CollectorConfig{RetainRecords: true}
			cfg.TracePolicy = pol
			s := NewSimulation(cfg, protocol.Locaware{})
			res := s.RunMeasured(50, 150)
			if res.Err != nil {
				t.Fatalf("shards=%d: run aborted: %v", shards, res.Err)
			}
			fp := shardFingerprint{
				Success:  res.Collector.SuccessRate(),
				Messages: res.Collector.AvgMessagesPerQuery(),
				RTT:      res.Collector.AvgDownloadRTT(),
				Events:   res.Events,
				Control:  res.ControlMessages,
				Cache:    res.CacheFilenames,
			}
			return fp, res.Collector.Records()
		}
		plainFp, plainRecs := run(nil)
		tracedFp, tracedRecs := run(&trace.Policy{SlowestN: 8, KeepFailed: true})
		if !reflect.DeepEqual(plainFp, tracedFp) {
			t.Fatalf("shards=%d: recorder perturbed metrics:\n  plain  %+v\n  traced %+v", shards, plainFp, tracedFp)
		}
		if !reflect.DeepEqual(plainRecs, tracedRecs) {
			t.Fatalf("shards=%d: recorder perturbed per-query records", shards)
		}
	}
}

// TestRunResultCarriesTraces locks the harvest plumbing: a traced run
// surfaces retained traces, the scenario phase events and the processing
// constant; an untraced run leaves all three zero.
func TestRunResultCarriesTraces(t *testing.T) {
	cfg := benchConfig(200, 5)
	cfg.TracePolicy = &trace.Policy{SlowestN: 3}
	s := NewSimulation(cfg, protocol.Locaware{})
	res := s.RunMeasured(0, 100)
	if len(res.Traces) == 0 || len(res.Traces) > 3 {
		t.Fatalf("retained %d traces, want 1..3", len(res.Traces))
	}
	if res.TraceProcessing != cfg.Protocol.ProcessingDelay {
		t.Fatalf("TraceProcessing = %v, want %v", res.TraceProcessing, cfg.Protocol.ProcessingDelay)
	}
	for i := 1; i < len(res.Traces); i++ {
		if res.Traces[i-1].Latency < res.Traces[i].Latency {
			t.Fatalf("traces not slowest-first: %v then %v", res.Traces[i-1].Latency, res.Traces[i].Latency)
		}
	}

	cfg2 := benchConfig(200, 5)
	s2 := NewSimulation(cfg2, protocol.Locaware{})
	res2 := s2.RunMeasured(0, 100)
	if res2.Traces != nil || res2.TraceProcessing != 0 {
		t.Fatalf("untraced run carries trace state: %d traces, processing %v", len(res2.Traces), res2.TraceProcessing)
	}
}
