// Package core assembles the substrates into runnable Locaware experiments:
// it builds the physical model, landmarks, overlay, nodes and workload from
// one seeded configuration, drives query submission through a protocol
// behaviour, and harvests the paper's metrics. The figure-regeneration
// harness and the public facade sit on top of this package.
package core

import (
	"fmt"

	"github.com/p2prepro/locaware/internal/cache"
	"github.com/p2prepro/locaware/internal/netmodel"
	"github.com/p2prepro/locaware/internal/obs"
	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/scenario"
	"github.com/p2prepro/locaware/internal/sim"
	"github.com/p2prepro/locaware/internal/trace"
	"github.com/p2prepro/locaware/internal/workload"
)

// Config collects every parameter of a simulation run. The zero value is
// not usable; start from DefaultConfig (the paper's §5.1 setup) and adjust.
type Config struct {
	// Seed roots all random streams; identical Seeds give identical
	// topologies and workloads across protocol runs, which is what makes
	// the figure comparisons paired.
	Seed int64

	// NumPeers is the overlay size; paper: 1000.
	NumPeers int
	// AvgDegree is the overlay's average connectivity degree; paper: 3.
	AvgDegree float64
	// MaxDegree caps any peer's neighbour count.
	MaxDegree int

	// Landmarks is the number of landmark machines; paper: 4 (24 locIds).
	Landmarks int
	// Placement positions peers in the latency plane.
	Placement netmodel.PlacementConfig
	// Latency maps plane distance to RTT; paper: 10–500 ms.
	Latency netmodel.LatencyConfig

	// Catalog sizes the shared-file universe; paper: 3000 files × 3
	// keywords from a 9000-keyword pool.
	Catalog workload.CatalogConfig
	// FilesPerPeer is the initial share count; paper: 3.
	FilesPerPeer int
	// Gen drives query arrivals; paper: Zipf at 0.00083 q/s/peer.
	Gen workload.GenConfig

	// Protocol holds the message-plane parameters (TTL 7, M groups, cache
	// bounds, Bloom sizing).
	Protocol protocol.Config

	// Churn, when enabled, applies on/off churn every ChurnInterval. It is
	// the legacy whole-run dynamics switch, now lowered onto the scenario
	// engine as the built-in steady-churn spec (bit-identical output);
	// Scenario, when set, wins.
	ChurnEnabled  bool
	Churn         overlay.ChurnConfig
	ChurnInterval sim.Time

	// Scenario, when non-nil, runs the simulation under a phased-dynamics
	// timeline (churn waves, flash crowds, content and link dynamics) and
	// segments the measured metrics per phase. Entry points resolve the
	// phase grid with ResolveScenario before building the simulation.
	Scenario *scenario.Spec

	// Shards, when > 1, runs the simulation on the sharded event loop:
	// peers partition by locality (occupied locIds dense-ranked, rank
	// modulo Shards), each shard drains its own queue epoch by epoch on
	// its own goroutine (protocol state is split per shard), and
	// cross-locality deliveries hop shards through a deterministic
	// mailbox. The epoch lookahead is derived from the latency model's
	// one-way floor plus the processing delay. Runs are fully
	// reproducible for a fixed shard count, but the cross-shard delivery
	// interleaving differs from the single-queue order, so results are
	// statistically equivalent rather than bit-identical to Shards <= 1
	// (which always uses the plain engine, byte-for-byte identical to
	// previous releases). NewSimulation validates the value: negatives
	// clamp to 1, and counts exceeding the number of occupied localities
	// clamp down to it (empty shard engines would only add barrier
	// overhead).
	Shards int

	// Obs, when non-nil, attaches the run-wide observability registry:
	// event-loop and protocol instrumentation accumulate into it through
	// shard-confined cells, and RunResult.Runtime carries the per-run
	// snapshot. Instrumentation is provably inert — it never touches RNG
	// streams or event order, so output stays byte-identical. The json
	// tag keeps campaign fingerprints and checkpoint identity independent
	// of whether a run is instrumented.
	Obs *obs.Registry `json:"-"`

	// TracePolicy, when non-nil, attaches a tail-sampling
	// trace.FlightRecorder to the run: every query's events buffer only
	// until finalize, traces matching the policy (failed / deep / slowest-N)
	// are retained, and RunResult.Traces carries them. Like Obs, tracing is
	// inert — per-shard trace cells merge at the sequential epoch barrier,
	// so the parallel drain stays enabled and output is byte-identical to
	// an untraced run — and the json tag keeps campaign fingerprints and
	// checkpoint identity independent of whether a run is traced.
	TracePolicy *trace.Policy `json:"-"`
}

// DefaultConfig returns the paper's evaluation setup (§5.1).
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		NumPeers:      1000,
		AvgDegree:     3,
		MaxDegree:     12,
		Landmarks:     4,
		Placement:     netmodel.DefaultPlacement(),
		Latency:       netmodel.DefaultLatency(),
		Catalog:       workload.DefaultCatalog(),
		FilesPerPeer:  3,
		Gen:           workload.DefaultGen(),
		Protocol:      protocol.DefaultConfig(),
		Churn:         overlay.DefaultChurn(),
		ChurnInterval: 60 * sim.Second,
	}
}

// withDefaults fills zero fields so partially specified configs stay
// runnable.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.NumPeers <= 0 {
		c.NumPeers = d.NumPeers
	}
	if c.AvgDegree <= 0 {
		c.AvgDegree = d.AvgDegree
	}
	if c.MaxDegree <= 0 {
		c.MaxDegree = d.MaxDegree
	}
	if c.Landmarks <= 0 {
		c.Landmarks = d.Landmarks
	}
	if c.Placement.Side <= 0 {
		c.Placement = d.Placement
	}
	if c.Latency.MaxRTT <= c.Latency.MinRTT {
		c.Latency = d.Latency
	}
	if c.Catalog.NumFiles <= 0 {
		c.Catalog = d.Catalog
	}
	if c.FilesPerPeer <= 0 {
		c.FilesPerPeer = d.FilesPerPeer
	}
	if c.Gen.RatePerPeer <= 0 {
		c.Gen = d.Gen
	}
	if c.Protocol.TTL <= 0 {
		c.Protocol.TTL = d.Protocol.TTL
	}
	if c.Protocol.GroupCount <= 0 {
		c.Protocol.GroupCount = d.Protocol.GroupCount
	}
	if c.Protocol.Cache.MaxFilenames <= 0 {
		c.Protocol.Cache = cache.DefaultConfig()
	}
	if c.Protocol.BloomBits <= 0 {
		c.Protocol.BloomBits = d.Protocol.BloomBits
		c.Protocol.BloomK = d.Protocol.BloomK
	}
	if c.Protocol.BloomGossipPeriod <= 0 {
		c.Protocol.BloomGossipPeriod = d.Protocol.BloomGossipPeriod
	}
	if c.Protocol.FinalizeAfter <= 0 {
		c.Protocol.FinalizeAfter = d.Protocol.FinalizeAfter
	}
	if c.ChurnInterval <= 0 {
		c.ChurnInterval = d.ChurnInterval
	}
	if c.Churn.AvgDegree <= 0 {
		c.Churn = d.Churn
	}
	return c
}

// effectiveScenario returns the scenario the run executes: the explicit
// spec, the steady-churn lowering of the legacy churn flag, or nil.
func (c Config) effectiveScenario() *scenario.Spec {
	if c.Scenario != nil {
		return c.Scenario
	}
	if c.ChurnEnabled {
		return scenario.SteadyChurn(c.Churn, c.ChurnInterval)
	}
	return nil
}

// ResolveScenario threads cfg's scenario phase grid for a run of
// `measured` measured queries into the collector configuration, so the
// streaming collector seals a full-metric window per phase during the run.
// Every entry point calls it before NewSimulation; it is a no-op without a
// scenario. It panics on an unresolvable grid (fewer measured queries than
// phases) — the public facade validates specs before running.
func ResolveScenario(cfg Config, measured int) Config {
	spec := cfg.withDefaults().effectiveScenario()
	if spec == nil {
		return cfg
	}
	marks, err := spec.Marks(measured)
	if err != nil {
		panic(fmt.Sprintf("core: resolving scenario: %v", err))
	}
	cfg.Protocol.Collector.Phases = marks
	return cfg
}
