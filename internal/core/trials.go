package core

import (
	"github.com/p2prepro/locaware/internal/exper"
	"github.com/p2prepro/locaware/internal/metrics"
	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/sim"
	"github.com/p2prepro/locaware/internal/stats"
)

// TrialOptions configures replicated execution of experiment cells.
type TrialOptions struct {
	// Trials is the number of independent replications per (behaviour ×
	// config) cell; values below 1 mean a single trial. Trial t runs on its
	// own Engine rooted at sim.TrialSeed(cfg.Seed, t), so trial 0
	// reproduces the sequential single-run output exactly.
	Trials int
	// Workers bounds how many simulations run concurrently; <= 0 selects
	// runtime.NumCPU(). The worker count never changes results, only
	// wall-clock time: every cell is an isolated engine with its own RNG
	// streams and results are gathered by index, not completion order.
	Workers int
}

func (t TrialOptions) trials() int {
	if t.Trials < 1 {
		return 1
	}
	return t.Trials
}

// TrialSummary holds cross-trial sample statistics of the headline run
// metrics; each Summary's N is the trial count.
type TrialSummary struct {
	SuccessRate      stats.Summary
	MessagesPerQuery stats.Summary
	DownloadRTT      stats.Summary
	SameLocalityRate stats.Summary
	CacheHitRate     stats.Summary
	Hops             stats.Summary
	ControlMessages  stats.Summary
	ControlKbits     stats.Summary
	CachedFilenames  stats.Summary
}

// TrialCell is one (behaviour × config) experiment cell replicated across
// trials: per-trial run results in trial order plus their aggregation.
type TrialCell struct {
	// Protocol is the behaviour's name.
	Protocol string
	// Seeds[t] is the root seed trial t ran under.
	Seeds []int64
	// Runs[t] is trial t's full result.
	Runs []*RunResult
	// Summary aggregates the headline metrics across trials.
	Summary TrialSummary
	// PhaseStats aggregates the scenario phase windows across trials,
	// phase-aligned — per-phase mean ± CI error bars. Nil unless the cell
	// ran under a scenario.
	PhaseStats []metrics.PhaseStats
}

// SummarizeTrials aggregates the headline run metrics of replicated runs
// into cross-trial sample statistics, folding values in run (trial) order
// so equal run sequences always produce bit-identical float sums.
func SummarizeTrials(runs []*RunResult) TrialSummary { return summarize(runs) }

// AggregateRunPhases collects every run's sealed scenario-phase windows and
// aggregates them phase-aligned across trials. It returns nil when the runs
// carry no phase windows (no scenario configured).
func AggregateRunPhases(runs []*RunResult) []metrics.PhaseStats {
	var perTrial [][]metrics.PhaseWindow
	for _, r := range runs {
		if ws := r.Collector.PhaseWindows(); len(ws) > 0 {
			perTrial = append(perTrial, ws)
		}
	}
	if len(perTrial) == 0 {
		return nil
	}
	return metrics.AggregatePhases(perTrial)
}

func summarize(runs []*RunResult) TrialSummary {
	n := len(runs)
	sr := make([]float64, 0, n)
	mpq := make([]float64, 0, n)
	rtt := make([]float64, 0, n)
	loc := make([]float64, 0, n)
	hit := make([]float64, 0, n)
	hops := make([]float64, 0, n)
	ctl := make([]float64, 0, n)
	kbit := make([]float64, 0, n)
	cached := make([]float64, 0, n)
	for _, r := range runs {
		sr = append(sr, r.Collector.SuccessRate())
		mpq = append(mpq, r.Collector.AvgMessagesPerQuery())
		rtt = append(rtt, r.Collector.AvgDownloadRTT())
		loc = append(loc, r.Collector.SameLocalityRate())
		hit = append(hit, r.Collector.CacheHitRate())
		hops = append(hops, r.Collector.AvgHops())
		ctl = append(ctl, float64(r.ControlMessages))
		kbit = append(kbit, float64(r.ControlBits)/1000)
		cached = append(cached, float64(r.CacheFilenames))
	}
	return TrialSummary{
		SuccessRate:      stats.Summarize(sr),
		MessagesPerQuery: stats.Summarize(mpq),
		DownloadRTT:      stats.Summarize(rtt),
		SameLocalityRate: stats.Summarize(loc),
		CacheHitRate:     stats.Summarize(hit),
		Hops:             stats.Summarize(hops),
		ControlMessages:  stats.Summarize(ctl),
		ControlKbits:     stats.Summarize(kbit),
		CachedFilenames:  stats.Summarize(cached),
	}
}

// RunTrials replicates one behaviour over topt.trials() independent worlds
// across a bounded worker pool. Trial t's config is cfg with its Seed
// replaced by sim.TrialSeed(cfg.Seed, t); everything else is shared, so the
// trials sample seed space at one parameter point.
func RunTrials(cfg Config, b protocol.Behavior, topt TrialOptions, warmup, measured int) *TrialCell {
	cfg = ResolveScenario(cfg, measured)
	trials := topt.trials()
	seeds := make([]int64, trials)
	for t := range seeds {
		seeds[t] = sim.TrialSeed(cfg.Seed, t)
	}
	runs := exper.Map(trials, topt.Workers, func(t int) *RunResult {
		c := cfg
		c.Seed = seeds[t]
		return NewSimulation(c, b).RunMeasured(warmup, measured)
	})
	return &TrialCell{
		Protocol:   b.Name(),
		Seeds:      seeds,
		Runs:       runs,
		Summary:    summarize(runs),
		PhaseStats: AggregateRunPhases(runs),
	}
}

// TrialComparison is a paired multi-protocol, multi-trial experiment: every
// behaviour sees the identical sequence of trial worlds (trial t of every
// behaviour shares one seed, hence one topology, placement and workload),
// preserving the paired-comparison property of RunComparison per trial.
type TrialComparison struct {
	// Cells maps protocol name to its replicated cell.
	Cells map[string]*TrialCell
	// Order preserves behaviour order for stable presentation.
	Order []string
	// Checkpoints are the cumulative query counts of figure points.
	Checkpoints []int
	// Trials is the replication count.
	Trials int
}

// RunTrialComparison fans the full (behaviour × trial) grid out across one
// worker pool, so even a single-trial comparison parallelises across
// behaviours. Results are identical for every worker count.
func RunTrialComparison(cfg Config, behaviors []protocol.Behavior, topt TrialOptions, warmup, numQueries int, checkpoints []int) *TrialComparison {
	cfg = ResolveScenario(cfg, numQueries)
	trials := topt.trials()
	cmp := &TrialComparison{
		Cells:       make(map[string]*TrialCell, len(behaviors)),
		Checkpoints: normalizeCheckpoints(checkpoints, numQueries),
		Trials:      trials,
	}
	seeds := make([]int64, trials)
	for t := range seeds {
		seeds[t] = sim.TrialSeed(cfg.Seed, t)
	}
	n := len(behaviors) * trials
	runs := exper.Map(n, topt.Workers, func(j int) *RunResult {
		c := cfg
		c.Seed = seeds[j%trials]
		// Thread the figure grid into the run so windows are sealed by the
		// streaming collector during execution instead of replayed from
		// records afterwards. The slice is shared read-only across trials.
		c.Protocol.Collector.Checkpoints = cmp.Checkpoints
		return NewSimulation(c, behaviors[j/trials]).RunMeasured(warmup, numQueries)
	})
	for i, b := range behaviors {
		cell := &TrialCell{
			Protocol: b.Name(),
			Seeds:    seeds,
			Runs:     runs[i*trials : (i+1)*trials],
		}
		cell.Summary = summarize(cell.Runs)
		cell.PhaseStats = AggregateRunPhases(cell.Runs)
		cmp.Cells[b.Name()] = cell
		cmp.Order = append(cmp.Order, b.Name())
	}
	return cmp
}

// FigureSeries extracts a figure's curves with cross-trial error bars: one
// series per protocol, y = the trial-mean windowed metric at each
// checkpoint, err = its 95% confidence half-width. With a single trial the
// means equal the sequential FigureSeries values and no error bars are
// attached, so tables and CSV render exactly as the unreplicated path.
func (c *TrialComparison) FigureSeries(fig string) []*stats.Series {
	var out []*stats.Series
	for _, name := range c.Order {
		cell := c.Cells[name]
		perTrial := make([][]metrics.Window, 0, len(cell.Runs))
		for _, r := range cell.Runs {
			perTrial = append(perTrial, r.Collector.Windows(c.Checkpoints))
		}
		s := &stats.Series{Name: name}
		for _, w := range metrics.AggregateWindows(perTrial) {
			var y stats.Summary
			switch fig {
			case Fig2DownloadDistance:
				y = w.DownloadRTT
			case Fig3SearchTraffic:
				y = w.MessagesPerQuery
			case Fig4SuccessRate:
				y = w.SuccessRate
			default:
				continue
			}
			if c.Trials > 1 {
				s.AddErr(float64(w.End), y.Mean, y.CI95())
			} else {
				s.Add(float64(w.End), y.Mean)
			}
		}
		out = append(out, s)
	}
	return out
}

// Headlines computes the paper's headline claims from trial-mean metrics.
func (c *TrialComparison) Headlines() Headline {
	la := c.Cells["Locaware"]
	fl := c.Cells["Flooding"]
	di := c.Cells["Dicas"]
	dk := c.Cells["Dicas-Keys"]
	var h Headline
	if la == nil {
		return h
	}
	if fl != nil && di != nil && dk != nil {
		others := (fl.Summary.DownloadRTT.Mean + di.Summary.DownloadRTT.Mean + dk.Summary.DownloadRTT.Mean) / 3
		h.DistanceReduction = stats.RelativeChange(others, la.Summary.DownloadRTT.Mean)
	}
	if fl != nil {
		h.TrafficReductionVsFlooding = stats.RelativeChange(
			fl.Summary.MessagesPerQuery.Mean, la.Summary.MessagesPerQuery.Mean)
	}
	if di != nil {
		h.HitGainVsDicas = stats.RelativeChange(di.Summary.SuccessRate.Mean, la.Summary.SuccessRate.Mean)
	}
	if dk != nil {
		h.HitGainVsDicasKeys = stats.RelativeChange(dk.Summary.SuccessRate.Mean, la.Summary.SuccessRate.Mean)
	}
	return h
}
