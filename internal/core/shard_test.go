package core

import (
	"reflect"
	"testing"

	"github.com/p2prepro/locaware/internal/metrics"
	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/sim"
)

// shardFingerprint reduces a run to the values a determinism lock cares
// about.
type shardFingerprint struct {
	Success  float64
	Messages float64
	RTT      float64
	Events   uint64
	Control  uint64
	Cache    int
}

func shardRun(t *testing.T, shards, peers, warmup, measured int) shardFingerprint {
	t.Helper()
	cfg := benchConfig(peers, 7)
	cfg.Shards = shards
	cfg.Protocol.Collector = metrics.CollectorConfig{}
	s := NewSimulation(cfg, protocol.Locaware{})
	res := s.RunMeasured(warmup, measured)
	if got := res.Collector.Submitted(); got != measured {
		t.Fatalf("shards=%d submitted %d queries, want %d", shards, got, measured)
	}
	return shardFingerprint{
		Success:  res.Collector.SuccessRate(),
		Messages: res.Collector.AvgMessagesPerQuery(),
		RTT:      res.Collector.AvgDownloadRTT(),
		Events:   res.Events,
		Control:  res.ControlMessages,
		Cache:    res.CacheFilenames,
	}
}

// TestShardedRunDeterministic locks the sharded protocol path: a fixed
// shard count reproduces exactly across executions, Shards values <= 1
// take the plain single-queue path bit-identically, and every shard count
// completes the full workload. (Cross-shard delivery interleaving differs
// between shard counts by design — the determinism contract is per
// layout, and Shards <= 1 is the golden-locked configuration.)
func TestShardedRunDeterministic(t *testing.T) {
	const peers, warmup, measured = 400, 100, 250
	base := shardRun(t, 0, peers, warmup, measured)
	if one := shardRun(t, 1, peers, warmup, measured); !reflect.DeepEqual(base, one) {
		t.Fatalf("Shards=1 diverged from unsharded run: %+v vs %+v", one, base)
	}
	for _, shards := range []int{2, 4} {
		a := shardRun(t, shards, peers, warmup, measured)
		b := shardRun(t, shards, peers, warmup, measured)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Shards=%d not reproducible: %+v vs %+v", shards, a, b)
		}
		if a.Success <= 0 || a.Success > 1 {
			t.Fatalf("Shards=%d implausible success rate %v", shards, a.Success)
		}
		if a.Events == 0 || a.Control == 0 {
			t.Fatalf("Shards=%d produced no traffic: %+v", shards, a)
		}
	}
}

// TestRunNeverOutlivesDeadline locks the stepping-loop contract the
// batched deadline discovery relies on: even when a periodic control's
// period exceeds FinalizeAfter + the horizon slack (so a reschedule beyond
// the eventual deadline is queued before the horizon exists), no event
// past the deadline is ever delivered — on the plain engine and on the
// sharded loop alike.
func TestRunNeverOutlivesDeadline(t *testing.T) {
	for _, shards := range []int{0, 2} {
		cfg := benchConfig(200, 3)
		cfg.Shards = shards
		// Gossip period far beyond FinalizeAfter + 1 minute: its
		// self-reschedule can outlive the run deadline.
		cfg.Protocol.BloomGossipPeriod = cfg.Protocol.FinalizeAfter + 5*sim.Minute
		s := NewSimulation(cfg, protocol.Locaware{})
		res := s.RunMeasured(0, 150)
		if res.Duration > s.runDeadline {
			t.Fatalf("shards=%d: run clock %v outlived deadline %v", shards, res.Duration, s.runDeadline)
		}
	}
}
