package core

import (
	"reflect"
	"testing"

	"github.com/p2prepro/locaware/internal/metrics"
	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/sim"
)

// shardFingerprint reduces a run to the values a determinism lock cares
// about.
type shardFingerprint struct {
	Success  float64
	Messages float64
	RTT      float64
	Events   uint64
	Control  uint64
	Cache    int
}

func shardRun(t *testing.T, shards, peers, warmup, measured int) shardFingerprint {
	t.Helper()
	cfg := benchConfig(peers, 7)
	cfg.Shards = shards
	cfg.Protocol.Collector = metrics.CollectorConfig{}
	s := NewSimulation(cfg, protocol.Locaware{})
	res := s.RunMeasured(warmup, measured)
	if got := res.Collector.Submitted(); got != measured {
		t.Fatalf("shards=%d submitted %d queries, want %d", shards, got, measured)
	}
	return shardFingerprint{
		Success:  res.Collector.SuccessRate(),
		Messages: res.Collector.AvgMessagesPerQuery(),
		RTT:      res.Collector.AvgDownloadRTT(),
		Events:   res.Events,
		Control:  res.ControlMessages,
		Cache:    res.CacheFilenames,
	}
}

// TestShardedRunDeterministic locks the sharded protocol path: a fixed
// shard count reproduces exactly across executions, Shards values <= 1
// take the plain single-queue path bit-identically, and every shard count
// completes the full workload. (Cross-shard delivery interleaving differs
// between shard counts by design — the determinism contract is per
// layout, and Shards <= 1 is the golden-locked configuration.)
func TestShardedRunDeterministic(t *testing.T) {
	const peers, warmup, measured = 400, 100, 250
	base := shardRun(t, 0, peers, warmup, measured)
	if one := shardRun(t, 1, peers, warmup, measured); !reflect.DeepEqual(base, one) {
		t.Fatalf("Shards=1 diverged from unsharded run: %+v vs %+v", one, base)
	}
	for _, shards := range []int{2, 4} {
		a := shardRun(t, shards, peers, warmup, measured)
		b := shardRun(t, shards, peers, warmup, measured)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Shards=%d not reproducible: %+v vs %+v", shards, a, b)
		}
		if a.Success <= 0 || a.Success > 1 {
			t.Fatalf("Shards=%d implausible success rate %v", shards, a.Success)
		}
		if a.Events == 0 || a.Control == 0 {
			t.Fatalf("Shards=%d produced no traffic: %+v", shards, a)
		}
	}
}

// TestShardedParallelMatchesSequentialProtocol locks the tentpole claim of
// the per-shard-state refactor: with Shards > 1 the parallel epoch drain
// (goroutine per shard) produces byte-identical metrics and per-query
// records to the sequential drain of the same layout (forced through the
// forceSeq test hook, which drains every shard on one goroutine through
// the exact same epoch schedule). Run under -race this also proves the
// parallel drain touches no shared protocol state outside the epoch
// barrier.
func TestShardedParallelMatchesSequentialProtocol(t *testing.T) {
	const peers, warmup, measured = 400, 50, 200
	run := func(sequential bool) (shardFingerprint, []metrics.QueryRecord) {
		cfg := benchConfig(peers, 11)
		cfg.Shards = 4
		cfg.Protocol.Collector = metrics.CollectorConfig{RetainRecords: true}
		s := NewSimulation(cfg, protocol.Locaware{})
		s.forceSeq = sequential
		res := s.RunMeasured(warmup, measured)
		if res.Err != nil {
			t.Fatalf("sequential=%v: run aborted: %v", sequential, res.Err)
		}
		if got := res.Collector.Submitted(); got != measured {
			t.Fatalf("sequential=%v: submitted %d queries, want %d", sequential, got, measured)
		}
		fp := shardFingerprint{
			Success:  res.Collector.SuccessRate(),
			Messages: res.Collector.AvgMessagesPerQuery(),
			RTT:      res.Collector.AvgDownloadRTT(),
			Events:   res.Events,
			Control:  res.ControlMessages,
			Cache:    res.CacheFilenames,
		}
		return fp, res.Collector.Records()
	}
	seqFp, seqRecs := run(true)
	parFp, parRecs := run(false)
	if !reflect.DeepEqual(seqFp, parFp) {
		t.Fatalf("parallel drain diverged from sequential drain:\n  seq %+v\n  par %+v", seqFp, parFp)
	}
	if len(seqRecs) != measured {
		t.Fatalf("sequential run retained %d records, want %d", len(seqRecs), measured)
	}
	if !reflect.DeepEqual(seqRecs, parRecs) {
		for i := range seqRecs {
			if i < len(parRecs) && !reflect.DeepEqual(seqRecs[i], parRecs[i]) {
				t.Fatalf("record %d differs:\n  seq %+v\n  par %+v", i, seqRecs[i], parRecs[i])
			}
		}
		t.Fatalf("record streams differ in length: seq %d, par %d", len(seqRecs), len(parRecs))
	}
}

// TestShardedShardsClamped locks the Shards validation satellite: negative
// (and zero) counts collapse to the single-queue path, and counts beyond
// the number of occupied localities clamp down to it — empty shard engines
// are never built.
func TestShardedShardsClamped(t *testing.T) {
	cfg := benchConfig(120, 5)
	cfg.Shards = -3
	s := NewSimulation(cfg, protocol.Locaware{})
	if s.Cfg.Shards != 1 {
		t.Fatalf("Shards=-3 clamped to %d, want 1", s.Cfg.Shards)
	}
	if s.Network.Sharded() {
		t.Fatal("Shards=-3 must take the single-queue path")
	}

	cfg = benchConfig(120, 5)
	cfg.Shards = 1 << 20
	s = NewSimulation(cfg, protocol.Locaware{})
	occupied := len(s.Locator.Census())
	if occupied < 2 {
		t.Fatalf("benchConfig world has %d occupied localities; clamping test needs >= 2", occupied)
	}
	if s.Cfg.Shards != occupied {
		t.Fatalf("Shards=1<<20 clamped to %d, want occupied locality count %d", s.Cfg.Shards, occupied)
	}
	res := s.RunMeasured(0, 50)
	if res.Err != nil {
		t.Fatalf("clamped run aborted: %v", res.Err)
	}
	if got := res.Collector.Submitted(); got != 50 {
		t.Fatalf("clamped run submitted %d queries, want 50", got)
	}
}

// TestRunNeverOutlivesDeadline locks the stepping-loop contract the
// batched deadline discovery relies on: even when a periodic control's
// period exceeds FinalizeAfter + the horizon slack (so a reschedule beyond
// the eventual deadline is queued before the horizon exists), no event
// past the deadline is ever delivered — on the plain engine and on the
// sharded loop alike.
func TestRunNeverOutlivesDeadline(t *testing.T) {
	for _, shards := range []int{0, 2} {
		cfg := benchConfig(200, 3)
		cfg.Shards = shards
		// Gossip period far beyond FinalizeAfter + 1 minute: its
		// self-reschedule can outlive the run deadline.
		cfg.Protocol.BloomGossipPeriod = cfg.Protocol.FinalizeAfter + 5*sim.Minute
		s := NewSimulation(cfg, protocol.Locaware{})
		res := s.RunMeasured(0, 150)
		if res.Duration > s.runDeadline {
			t.Fatalf("shards=%d: run clock %v outlived deadline %v", shards, res.Duration, s.runDeadline)
		}
	}
}
