package core

import (
	"sort"

	"github.com/p2prepro/locaware/internal/metrics"
	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/stats"
)

// metricsWindow aliases the metrics checkpoint type used by the figure
// extractors.
type metricsWindow = metrics.Window

// Baselines returns the paper's four compared protocols in figure order.
func Baselines() []protocol.Behavior {
	return []protocol.Behavior{
		protocol.Flooding{},
		protocol.Dicas{},
		protocol.DicasKeys{},
		protocol.Locaware{},
	}
}

// Comparison is a paired multi-protocol run over an identical world and
// workload.
type Comparison struct {
	// Results maps protocol name to its run result.
	Results map[string]*RunResult
	// Order preserves the behaviour order for stable presentation.
	Order []string
	// Checkpoints are the cumulative query counts at which figure points
	// were taken.
	Checkpoints []int
}

// RunComparison runs every behaviour on the same seeded world for
// numQueries measured queries, preceded by warmup queries whose records
// are discarded (0 disables warmup). It is the single-trial special case of
// RunTrialComparison, so independent behaviours execute concurrently across
// the CPU-bounded worker pool; results are identical to a sequential loop.
// Use RunComparisonWorkers to bound the pool.
func RunComparison(cfg Config, behaviors []protocol.Behavior, warmup, numQueries int, checkpoints []int) *Comparison {
	return RunComparisonWorkers(cfg, behaviors, 0, warmup, numQueries, checkpoints)
}

// RunComparisonWorkers is RunComparison with at most workers concurrent
// simulations (<= 0 means one per CPU).
func RunComparisonWorkers(cfg Config, behaviors []protocol.Behavior, workers, warmup, numQueries int, checkpoints []int) *Comparison {
	tc := RunTrialComparison(cfg, behaviors, TrialOptions{Trials: 1, Workers: workers}, warmup, numQueries, checkpoints)
	cmp := &Comparison{
		Results:     make(map[string]*RunResult, len(tc.Order)),
		Order:       tc.Order,
		Checkpoints: tc.Checkpoints,
	}
	for _, name := range tc.Order {
		cmp.Results[name] = tc.Cells[name].Runs[0]
	}
	return cmp
}

// normalizeCheckpoints sorts, dedups and clamps checkpoints to [1,
// numQueries]; an empty input yields ten equal steps.
func normalizeCheckpoints(cps []int, numQueries int) []int {
	if len(cps) == 0 {
		step := numQueries / 10
		if step < 1 {
			step = 1
		}
		for x := step; x <= numQueries; x += step {
			cps = append(cps, x)
		}
	}
	seen := map[int]bool{}
	var out []int
	for _, c := range cps {
		if c >= 1 && c <= numQueries && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// Figure identifiers for the paper's three evaluation figures.
const (
	Fig2DownloadDistance = "fig2-download-distance"
	Fig3SearchTraffic    = "fig3-search-traffic"
	Fig4SuccessRate      = "fig4-success-rate"
)

// FigureSeries extracts a figure's curves from the comparison: one series
// per protocol, x = number of queries, y = the figure's metric over the
// window ending at that count. Per-window values expose the trends the
// paper reports (Locaware's download distance improving as replication
// spreads providers, the others staying flat).
func (c *Comparison) FigureSeries(fig string) []*stats.Series {
	return c.figureSeries(fig, false)
}

// CumulativeFigureSeries is FigureSeries with each point computed over all
// queries up to the checkpoint instead of the window since the previous
// one.
func (c *Comparison) CumulativeFigureSeries(fig string) []*stats.Series {
	return c.figureSeries(fig, true)
}

func (c *Comparison) figureSeries(fig string, cumulative bool) []*stats.Series {
	var out []*stats.Series
	for _, name := range c.Order {
		res := c.Results[name]
		var windows []metricsWindow
		if cumulative {
			for _, w := range res.Collector.CumulativeWindows(c.Checkpoints) {
				windows = append(windows, w)
			}
		} else {
			for _, w := range res.Collector.Windows(c.Checkpoints) {
				windows = append(windows, w)
			}
		}
		s := &stats.Series{Name: name}
		for _, w := range windows {
			var y float64
			switch fig {
			case Fig2DownloadDistance:
				y = w.DownloadRTT
			case Fig3SearchTraffic:
				y = w.MessagesPerQuery
			case Fig4SuccessRate:
				y = w.SuccessRate
			default:
				continue
			}
			s.Add(float64(w.End), y)
		}
		out = append(out, s)
	}
	return out
}

// Headline summarises the paper's three headline claims over this
// comparison.
type Headline struct {
	// DistanceReduction is the relative reduction of Locaware's final
	// download distance versus the mean of the other protocols' (paper:
	// ≈ -14%).
	DistanceReduction float64
	// TrafficReductionVsFlooding is Locaware's search-traffic reduction
	// versus Flooding (paper: ≈ -98%).
	TrafficReductionVsFlooding float64
	// HitGainVsDicas and HitGainVsDicasKeys are Locaware's relative
	// success-rate gains (paper: ≈ +23% and ≈ +33%).
	HitGainVsDicas     float64
	HitGainVsDicasKeys float64
}

// Headlines computes the claim metrics from final cumulative values.
func (c *Comparison) Headlines() Headline {
	la := c.Results["Locaware"]
	fl := c.Results["Flooding"]
	di := c.Results["Dicas"]
	dk := c.Results["Dicas-Keys"]
	var h Headline
	if la == nil {
		return h
	}
	if fl != nil && di != nil && dk != nil {
		others := (fl.Collector.AvgDownloadRTT() + di.Collector.AvgDownloadRTT() + dk.Collector.AvgDownloadRTT()) / 3
		h.DistanceReduction = stats.RelativeChange(others, la.Collector.AvgDownloadRTT())
	}
	if fl != nil {
		h.TrafficReductionVsFlooding = stats.RelativeChange(
			fl.Collector.AvgMessagesPerQuery(), la.Collector.AvgMessagesPerQuery())
	}
	if di != nil {
		h.HitGainVsDicas = stats.RelativeChange(di.Collector.SuccessRate(), la.Collector.SuccessRate())
	}
	if dk != nil {
		h.HitGainVsDicasKeys = stats.RelativeChange(dk.Collector.SuccessRate(), la.Collector.SuccessRate())
	}
	return h
}
