package core

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/sim"
)

func TestRunTrialsSingleTrialMatchesSequentialRun(t *testing.T) {
	cfg := smallConfig(21)
	cell := RunTrials(cfg, protocol.Locaware{}, TrialOptions{Trials: 1}, 20, 60)
	seq := NewSimulation(cfg, protocol.Locaware{}).RunMeasured(20, 60)
	if len(cell.Runs) != 1 || cell.Seeds[0] != cfg.Seed {
		t.Fatalf("cell shape: seeds=%v runs=%d", cell.Seeds, len(cell.Runs))
	}
	if !reflect.DeepEqual(cell.Runs[0], seq) {
		t.Fatalf("single trial diverged from sequential run:\n%+v\nvs\n%+v", cell.Runs[0], seq)
	}
	if cell.Summary.SuccessRate.N != 1 || cell.Summary.SuccessRate.Mean != seq.Collector.SuccessRate() {
		t.Fatalf("summary = %+v", cell.Summary.SuccessRate)
	}
}

func TestRunTrialsWorkerCountInvariant(t *testing.T) {
	cfg := smallConfig(22)
	cfg.NumPeers = 120
	a := RunTrials(cfg, protocol.Locaware{}, TrialOptions{Trials: 4, Workers: 1}, 10, 40)
	b := RunTrials(cfg, protocol.Locaware{}, TrialOptions{Trials: 4, Workers: 8}, 10, 40)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Workers=1 and Workers=8 produced different aggregated results")
	}
}

func TestRunTrialsSeedsIndependent(t *testing.T) {
	cfg := smallConfig(23)
	cfg.NumPeers = 120
	cell := RunTrials(cfg, protocol.Flooding{}, TrialOptions{Trials: 3, Workers: 0}, 0, 40)
	if len(cell.Runs) != 3 {
		t.Fatalf("runs = %d", len(cell.Runs))
	}
	for tr := 1; tr < 3; tr++ {
		if cell.Seeds[tr] == cell.Seeds[0] {
			t.Fatalf("trial %d reused trial 0's seed", tr)
		}
		if cell.Runs[tr].Events == cell.Runs[0].Events &&
			cell.Runs[tr].Collector.TotalMessages() == cell.Runs[0].Collector.TotalMessages() {
			t.Fatalf("trial %d is byte-identical to trial 0: seeds not independent", tr)
		}
	}
	if cell.Summary.SuccessRate.StdDev == 0 && cell.Summary.MessagesPerQuery.StdDev == 0 {
		t.Fatal("independent trials show zero spread on every metric")
	}
}

func TestTrialComparisonWorkerCountInvariant(t *testing.T) {
	cfg := smallConfig(24)
	cfg.NumPeers = 120
	behaviors := []protocol.Behavior{protocol.Flooding{}, protocol.Locaware{}}
	a := RunTrialComparison(cfg, behaviors, TrialOptions{Trials: 3, Workers: 1}, 10, 40, []int{20, 40})
	b := RunTrialComparison(cfg, behaviors, TrialOptions{Trials: 3, Workers: 8}, 10, 40, []int{20, 40})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("trial comparison differs across worker counts")
	}
}

func TestTrialComparisonSingleTrialMatchesRunComparison(t *testing.T) {
	cfg := smallConfig(25)
	behaviors := Baselines()
	tc := RunTrialComparison(cfg, behaviors, TrialOptions{Trials: 1, Workers: 4}, 20, 60, nil)
	cmp := RunComparison(cfg, behaviors, 20, 60, nil)
	if !reflect.DeepEqual(tc.Order, cmp.Order) || !reflect.DeepEqual(tc.Checkpoints, cmp.Checkpoints) {
		t.Fatalf("shape mismatch: %v vs %v", tc.Order, cmp.Order)
	}
	for _, name := range tc.Order {
		if !reflect.DeepEqual(tc.Cells[name].Runs[0], cmp.Results[name]) {
			t.Fatalf("%s: trial path diverged from comparison path", name)
		}
	}
}

func TestTrialComparisonPairedAcrossBehaviors(t *testing.T) {
	// Trial t of every behaviour must share one world: same seed per trial
	// index keeps the comparison paired, trial by trial.
	cfg := smallConfig(26)
	cfg.NumPeers = 120
	tc := RunTrialComparison(cfg, []protocol.Behavior{protocol.Flooding{}, protocol.Dicas{}},
		TrialOptions{Trials: 2, Workers: 4}, 0, 30, nil)
	fl, di := tc.Cells["Flooding"], tc.Cells["Dicas"]
	if !reflect.DeepEqual(fl.Seeds, di.Seeds) {
		t.Fatalf("behaviours saw different trial seeds: %v vs %v", fl.Seeds, di.Seeds)
	}
}

func TestTrialComparisonFigureSeriesErrorBars(t *testing.T) {
	cfg := smallConfig(27)
	cfg.NumPeers = 120
	tc := RunTrialComparison(cfg, []protocol.Behavior{protocol.Flooding{}, protocol.Locaware{}},
		TrialOptions{Trials: 3, Workers: 0}, 10, 60, []int{30, 60})
	for _, fig := range []string{Fig2DownloadDistance, Fig3SearchTraffic, Fig4SuccessRate} {
		series := tc.FigureSeries(fig)
		if len(series) != 2 {
			t.Fatalf("%s: %d series", fig, len(series))
		}
		for _, s := range series {
			if s.Len() != 2 {
				t.Fatalf("%s/%s: %d points", fig, s.Name, s.Len())
			}
			if !s.HasErrs() || len(s.Errs) != s.Len() {
				t.Fatalf("%s/%s: missing error bars", fig, s.Name)
			}
		}
	}
	if got := tc.FigureSeries("not-a-figure"); got[0].Len() != 0 {
		t.Fatal("unknown figure should yield empty series")
	}
}

func TestTrialHeadlines(t *testing.T) {
	cfg := smallConfig(28)
	cfg.NumPeers = 120
	tc := RunTrialComparison(cfg, Baselines(), TrialOptions{Trials: 2, Workers: 0}, 50, 100, nil)
	h := tc.Headlines()
	if h.TrafficReductionVsFlooding >= 0 {
		t.Fatalf("traffic reduction = %v, want negative", h.TrafficReductionVsFlooding)
	}
	partial := RunTrialComparison(cfg, []protocol.Behavior{protocol.Locaware{}},
		TrialOptions{Trials: 1}, 0, 20, nil)
	_ = partial.Headlines()
	empty := &TrialComparison{Cells: map[string]*TrialCell{}}
	_ = empty.Headlines()
}

// TestTrialsHammer runs many small trials at high worker counts; under
// -race it catches any shared state leaking between engines (e.g. an
// accidental global RNG or collector). The deep-equal against a sequential
// pass additionally proves scheduling cannot perturb results.
func TestTrialsHammer(t *testing.T) {
	cfg := smallConfig(29)
	cfg.NumPeers = 60
	behaviors := Baselines()
	par := RunTrialComparison(cfg, behaviors, TrialOptions{Trials: 6, Workers: 16}, 0, 15, nil)
	seq := RunTrialComparison(cfg, behaviors, TrialOptions{Trials: 6, Workers: 1}, 0, 15, nil)
	if !reflect.DeepEqual(par, seq) {
		t.Fatal("hammered parallel run diverged from sequential run")
	}
}

// TestParallelSpeedup demonstrates the orchestrator's point: an 8-trial
// cell with Workers=4 must finish at least 2x faster than Workers=1 on
// multi-core hardware, with identical aggregated output. The timing
// assertion needs >= 4 CPUs and a non-short run; the output-identity
// assertion always holds.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	cfg := smallConfig(30)
	topt := func(w int) TrialOptions { return TrialOptions{Trials: 8, Workers: w} }

	t0 := time.Now()
	seq := RunTrials(cfg, protocol.Locaware{}, topt(1), 50, 150)
	seqDur := time.Since(t0)

	t0 = time.Now()
	par := RunTrials(cfg, protocol.Locaware{}, topt(4), 50, 150)
	parDur := time.Since(t0)

	if !reflect.DeepEqual(seq, par) {
		t.Fatal("Workers=4 aggregated output differs from Workers=1")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("have %d CPUs; speedup assertion needs >= 4 (seq=%v par=%v)",
			runtime.NumCPU(), seqDur, parDur)
	}
	if speedup := seqDur.Seconds() / parDur.Seconds(); speedup < 2 {
		t.Fatalf("Workers=4 speedup %.2fx < 2x (seq=%v par=%v)", speedup, seqDur, parDur)
	} else {
		t.Logf("Workers=4 speedup: %.2fx (seq=%v par=%v)", speedup, seqDur, parDur)
	}
}

func TestTrialOptionsDefaults(t *testing.T) {
	if (TrialOptions{}).trials() != 1 || (TrialOptions{Trials: -3}).trials() != 1 {
		t.Fatal("trial floor broken")
	}
	if (TrialOptions{Trials: 5}).trials() != 5 {
		t.Fatal("trial count lost")
	}
	// Trial 0 must always reuse the root seed (sequential reproducibility).
	if sim.TrialSeed(99, 0) != 99 {
		t.Fatal("trial 0 seed not identity")
	}
}
