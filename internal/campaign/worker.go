package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/obs"
	"github.com/p2prepro/locaware/internal/sweep"
)

// Worker executes campaign cells for a remote coordinator: it resolves
// the same spec and base configuration into its own sweep.Plan, then
// loops lease → RunCellAt(cell-local seed) → post result until the
// coordinator reports the campaign complete. The plan's content hash is
// the safety interlock: a job whose hash differs from the local plan —
// the worker was launched with different flags, an older spec, another
// campaign — is refused before any CPU burns, and the coordinator
// symmetrically rejects results under a foreign hash.
type Worker struct {
	plan   *sweep.Plan
	url    string
	sims   int
	opt    Options
	client *http.Client
	id     string
}

// NewWorker resolves the campaign locally and returns a worker bound to
// the coordinator at url. sims bounds the simulation pool used per cell
// (<= 0 means one per CPU).
func NewWorker(base core.Config, spec *sweep.Spec, url string, sims int, opt Options) (*Worker, error) {
	if opt.Obs != nil {
		// Instrument every cell run; Obs is excluded from the content
		// hash, so the coordinator interlock still matches.
		base.Obs = opt.Obs
	}
	if opt.TracePolicy != nil {
		// Record every cell run so posted results carry an exemplar trace;
		// like Obs, the policy is hash-excluded.
		base.TracePolicy = opt.TracePolicy
	}
	plan, err := sweep.NewPlan(base, spec)
	if err != nil {
		return nil, err
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	return &Worker{
		plan:   plan,
		url:    strings.TrimRight(url, "/"),
		sims:   sims,
		opt:    opt,
		client: &http.Client{Timeout: 30 * time.Second},
		id:     fmt.Sprintf("%s-%d", host, os.Getpid()),
	}, nil
}

// ID returns the worker's self-assigned identity (hostname-pid).
func (w *Worker) ID() string { return w.id }

// Hash returns the locally resolved campaign content hash.
func (w *Worker) Hash() string { return w.plan.Hash() }

// transientRetries bounds consecutive failed exchanges before the worker
// decides the coordinator is gone. A coordinator that completed its
// campaign shuts down, so "unreachable after we were talking" normally
// means "campaign finished" and exits cleanly; never having reached it
// at all is an error.
const transientRetries = 5

// Run executes the lease loop until the campaign completes, the context
// is cancelled, or a non-recoverable protocol error occurs. It returns
// the number of cells this worker computed.
func (w *Worker) Run(ctx context.Context) (int, error) {
	completed := 0
	contacted := false
	failures := 0
	lastReport := time.Now()
	for {
		if w.opt.Progress > 0 && time.Since(lastReport) >= w.opt.Progress {
			lastReport = time.Now()
			w.opt.logf("worker %s: %d cells executed", w.id, completed)
		}
		if err := sleepCtx(ctx, 0); err != nil {
			return completed, err
		}
		reply, err := w.lease()
		if err != nil {
			failures++
			if contacted && failures >= transientRetries {
				w.opt.logf("coordinator unreachable after %d attempts — assuming the campaign completed and shut down", failures)
				return completed, nil
			}
			if !contacted && failures >= 4*transientRetries {
				return completed, fmt.Errorf("campaign: coordinator %s unreachable: %w", w.url, err)
			}
			if err := sleepCtx(ctx, w.opt.poll()); err != nil {
				return completed, err
			}
			continue
		}
		contacted = true
		failures = 0
		switch {
		case reply.Done:
			w.opt.logf("campaign complete; worker %s executed %d cells", w.id, completed)
			return completed, nil
		case reply.Job != nil:
			if err := w.execute(reply.Job); err != nil {
				return completed, err
			}
			completed++
		default: // Wait (or an empty reply, treated the same)
			delay := w.opt.poll()
			if reply.RetryMs > 0 {
				delay = time.Duration(reply.RetryMs) * time.Millisecond
			}
			if err := sleepCtx(ctx, delay); err != nil {
				return completed, err
			}
		}
	}
}

// execute runs one leased cell and posts its result.
func (w *Worker) execute(job *Job) error {
	if job.SpecHash != w.plan.Hash() {
		return fmt.Errorf(
			"campaign: stale worker: coordinator campaign is %s, local spec/flags resolve to %s — relaunch the worker with the coordinator's spec and base flags",
			shortHash(job.SpecHash), shortHash(w.plan.Hash()))
	}
	cells := w.plan.Cells()
	if job.Cell < 0 || job.Cell >= len(cells) {
		return fmt.Errorf("campaign: leased cell %d out of range [0, %d)", job.Cell, len(cells))
	}
	if job.Seed != cells[job.Cell].Seed {
		return fmt.Errorf("campaign: leased cell %d carries seed %d, local plan derives %d — campaign hash collision or protocol bug",
			job.Cell, job.Seed, cells[job.Cell].Seed)
	}
	if w.opt.Progress <= 0 {
		w.opt.logf("worker %s: running cell %d (%s)", w.id, job.Cell, cells[job.Cell].Label())
	}
	// Snapshot the registry around the cell so the post carries exactly
	// this cell's counter deltas (the worker runs cells sequentially).
	var before []obs.Sample
	if w.opt.Obs != nil {
		before = w.opt.Obs.CounterSamples()
	}
	cr, err := w.plan.RunCellAt(job.Cell, w.sims)
	if err != nil {
		return err
	}
	var deltas []obs.Sample
	if w.opt.Obs != nil {
		deltas = obs.DiffCounters(before, w.opt.Obs.CounterSamples())
	}
	reply, err := w.post(cr, deltas)
	if err != nil {
		return err
	}
	if w.opt.Progress > 0 {
		return nil
	}
	if reply.Duplicate {
		w.opt.logf("worker %s: cell %d was already complete (another worker won the race)", w.id, job.Cell)
	} else {
		w.opt.logf("worker %s: cell %d posted", w.id, job.Cell)
	}
	return nil
}

// lease performs one lease exchange.
func (w *Worker) lease() (*LeaseReply, error) {
	resp, err := w.client.Get(w.url + "/lease?worker=" + w.id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("lease: coordinator answered %s", resp.Status)
	}
	var reply LeaseReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, fmt.Errorf("lease: decoding reply: %w", err)
	}
	return &reply, nil
}

// post submits one finished cell, retrying transient transport failures.
// A coordinator-side rejection (stale hash, invalid cell) is permanent
// and fails the worker: recomputing the same bytes would be rejected
// again.
func (w *Worker) post(cr *sweep.CellResult, deltas []obs.Sample) (*ResultReply, error) {
	body, err := json.Marshal(ResultPost{SpecHash: w.plan.Hash(), Worker: w.id, Cell: *cr, Obs: deltas})
	if err != nil {
		return nil, fmt.Errorf("campaign: encoding result for cell %d: %w", cr.Index, err)
	}
	var lastErr error
	for attempt := 0; attempt < transientRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(w.opt.poll())
		}
		resp, err := w.client.Post(w.url+"/result", "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		var reply ResultReply
		decErr := json.NewDecoder(resp.Body).Decode(&reply)
		resp.Body.Close()
		if decErr != nil {
			lastErr = fmt.Errorf("result: decoding reply: %w", decErr)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("campaign: coordinator rejected cell %d: %s (%s)", cr.Index, reply.Error, resp.Status)
		}
		return &reply, nil
	}
	return nil, fmt.Errorf("campaign: posting cell %d failed after %d attempts: %w", cr.Index, transientRetries, lastErr)
}

// sleepCtx waits d (0 = just a cancellation check) or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
