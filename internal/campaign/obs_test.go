package campaign

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/obs"
	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/sim"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestCampaignObsEndToEnd drives an instrumented distributed campaign over
// loopback HTTP and checks every observability surface: the pre-run
// /metrics catalog, worker counter-delta absorption, /status worker rows
// with uptime, the pprof endpoints — and that the campaign bytes stay
// golden with instrumentation on at both ends.
func TestCampaignObsEndToEnd(t *testing.T) {
	base := core.DefaultConfig()
	golden := goldenCSV(t)

	coordReg := obs.NewRegistry()
	coord, err := NewCoordinator(base, tinySpec(), Options{
		Poll: 10 * time.Millisecond,
		Obs:  coordReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// The full catalog — campaign, event-loop and protocol families — is
	// scrapeable before any worker has reported in.
	code, body := httpGet(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics answered %d before first result", code)
	}
	for _, fam := range []string{
		MetricCells, MetricCellsDone, MetricCellsLeased, MetricWorkersLive,
		MetricCellsExecuted, MetricLeasesIssued, MetricUptime,
		sim.MetricEvents, sim.MetricEpochDrain,
		protocol.MetricSubmitted, protocol.MetricCacheHits,
	} {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Fatalf("pre-run /metrics missing family %s:\n%s", fam, body)
		}
	}

	workerReg := obs.NewRegistry()
	w, err := NewWorker(base, tinySpec(), srv.URL, 1, Options{
		Poll: 10 * time.Millisecond,
		Obs:  workerReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	n, err := w.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("worker executed %d cells, want 4", n)
	}

	// Instrumentation at both ends must not move a single byte.
	if got := coord.Campaign().CSV(); got != golden {
		t.Fatalf("instrumented campaign CSV drifted from golden:\n%s", got)
	}

	// The coordinator absorbed the accepted results' deltas, so its
	// protocol counters equal the single worker's totals.
	for _, name := range []string{protocol.MetricSubmitted, protocol.MetricFinalized, protocol.MetricCacheMisses} {
		want := workerReg.Counter(name, "").Value()
		got := coordReg.Counter(name, "").Value()
		if want == 0 {
			t.Fatalf("worker registry has zero %s; the absorption check is vacuous", name)
		}
		if got != want {
			t.Fatalf("%s: coordinator absorbed %d, worker counted %d", name, got, want)
		}
	}
	if got := coordReg.Counter(MetricCellsExecuted, "").Value(); got != 4 {
		t.Fatalf("campaign_cells_executed_total = %d, want 4", got)
	}
	if got := coordReg.Counter(MetricLeasesIssued, "").Value(); got != 4 {
		t.Fatalf("campaign_leases_issued_total = %d, want 4", got)
	}

	code, body = httpGet(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics answered %d", code)
	}
	if !strings.Contains(body, MetricCellsExecuted+" 4\n") {
		t.Fatalf("/metrics missing executed count:\n%s", body)
	}
	if !strings.Contains(body, MetricCellsDone+" 4\n") {
		t.Fatalf("/metrics missing done gauge:\n%s", body)
	}

	// /status carries uptime and the per-worker liveness/expiry table.
	code, body = httpGet(t, srv.URL+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status answered %d", code)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Complete || st.Done != 4 {
		t.Fatalf("status: %+v", st)
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("status uptime %v, want > 0", st.UptimeSeconds)
	}
	if len(st.Workers) != 1 {
		t.Fatalf("status lists %d workers, want 1: %+v", len(st.Workers), st.Workers)
	}
	ws := st.Workers[0]
	if ws.ID != w.ID() || ws.Cells != 4 || ws.Expired != 0 || ws.LastSeenSecs < 0 {
		t.Fatalf("worker status row: %+v", ws)
	}

	// The pprof surface rides on the same mux.
	code, _ = httpGet(t, srv.URL+"/debug/pprof/heap?debug=1")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/heap answered %d", code)
	}
}

// TestCoordinatorTracksLeaseExpiry locks the per-worker expiry counter
// behind /status and the reissue counter metric.
func TestCoordinatorTracksLeaseExpiry(t *testing.T) {
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(core.DefaultConfig(), tinySpec(), Options{
		LeaseTimeout: 10 * time.Millisecond,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply := coord.lease("slow-worker"); reply.Job == nil {
		t.Fatalf("lease: %+v", reply)
	}
	time.Sleep(20 * time.Millisecond)
	st := coord.Status() // reaps
	if st.Reissued != 1 {
		t.Fatalf("reissued = %d, want 1", st.Reissued)
	}
	if got := reg.Counter(MetricLeasesReissued, "").Value(); got != 1 {
		t.Fatalf("campaign_leases_reissued_total = %d, want 1", got)
	}
	if len(st.Workers) != 1 || st.Workers[0].Expired != 1 {
		t.Fatalf("worker expiry row: %+v", st.Workers)
	}
}

// TestRunProgressAndObsByteIdentity checks the in-process resumable
// runner under an attached registry and a progress ticker still produces
// golden bytes, and that its instrumentation actually counted the runs.
func TestRunProgressAndObsByteIdentity(t *testing.T) {
	reg := obs.NewRegistry()
	core.RegisterObsFamilies(reg)
	var lines []string
	camp, stats, err := Run(core.DefaultConfig(), tinySpec(), 2, Options{
		Obs:      reg,
		Progress: 5 * time.Millisecond,
		Logf: func(format string, args ...any) {
			lines = append(lines, format)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 4 {
		t.Fatalf("executed %d cells, want 4", stats.Executed)
	}
	if got := camp.CSV(); got != goldenCSV(t) {
		t.Fatalf("instrumented in-process campaign drifted from golden:\n%s", got)
	}
	if got := reg.Counter(protocol.MetricSubmitted, "").Value(); got == 0 {
		t.Fatal("registry counted no submitted queries across the campaign")
	}
	_ = lines // progress lines are timing-dependent; their absence is not a failure
}
