package campaign

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/trace"
)

func tinyTracePolicy() *trace.Policy {
	return &trace.Policy{SlowestN: 1, KeepFailed: true}
}

// TestRunWithTracePolicyShipsExemplars locks the tracing-inertness
// contract for in-process campaigns: attaching a trace policy must leave
// the folded CSV byte-identical to the untraced golden (the policy is
// hash-excluded and the recorder must not perturb the runs), while every
// completed cell carries a rendered worst-case exemplar trace.
func TestRunWithTracePolicyShipsExemplars(t *testing.T) {
	base := core.DefaultConfig()
	camp, stats, err := Run(base, tinySpec(), 4, Options{TracePolicy: tinyTracePolicy()})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 4 {
		t.Fatalf("executed %d cells, want 4", stats.Executed)
	}
	if got := camp.CSV(); got != goldenCSV(t) {
		t.Fatalf("traced campaign CSV drifted from untraced golden:\n--- got ---\n%s", got)
	}
	for i := range camp.Cells {
		ex := camp.Cells[i].Exemplar
		if ex == nil {
			t.Fatalf("cell %d shipped no exemplar trace", i)
		}
		if ex.Protocol != "Dicas" && ex.Protocol != "Locaware" {
			t.Fatalf("cell %d exemplar names unknown protocol %q", i, ex.Protocol)
		}
		if ex.LatencySeconds < 0 {
			t.Fatalf("cell %d exemplar has negative latency %f", i, ex.LatencySeconds)
		}
		if !strings.Contains(ex.Rendered, "q=") {
			t.Fatalf("cell %d exemplar rendering is not a span tree:\n%s", i, ex.Rendered)
		}
	}
}

// TestCoordinatorServesTraces drains a traced campaign through the lease
// protocol (worker posts carry exemplars across the wire) and exercises
// the coordinator's /traces endpoints: the index listing, the per-cell
// rendered timeline, and the 404/400 error paths. The folded CSV must
// still equal the untraced golden bytes.
func TestCoordinatorServesTraces(t *testing.T) {
	base := core.DefaultConfig()
	pol := tinyTracePolicy()
	coord, err := NewCoordinator(base, tinySpec(), Options{TracePolicy: pol, Poll: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// Before any cell completes the index must say so rather than 404.
	if body := get(t, srv.URL+"/traces", http.StatusOK); !strings.Contains(body, "none yet") {
		t.Fatalf("empty campaign index should say no traces yet:\n%s", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	w, err := NewWorker(base, tinySpec(), srv.URL, 1, Options{TracePolicy: pol, Poll: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := w.Run(ctx); err != nil || n != 4 {
		t.Fatalf("worker executed %d cells, err %v", n, err)
	}

	if got := coord.Campaign().CSV(); got != goldenCSV(t) {
		t.Fatal("traced distributed campaign CSV drifted from golden")
	}
	for i := range coord.Campaign().Cells {
		if coord.Campaign().Cells[i].Exemplar == nil {
			t.Fatalf("folded cell %d lost its exemplar crossing the wire", i)
		}
	}

	// Index: one line per cell, each pointing at its detail URL.
	index := get(t, srv.URL+"/traces", http.StatusOK)
	for _, want := range []string{"exemplar traces", "/traces?cell=0", "/traces?cell=3"} {
		if !strings.Contains(index, want) {
			t.Fatalf("trace index missing %q:\n%s", want, index)
		}
	}

	// Detail: header plus the rendered span tree.
	detail := get(t, srv.URL+"/traces?cell=0", http.StatusOK)
	if !strings.Contains(detail, "worst query:") || !strings.Contains(detail, "q=") {
		t.Fatalf("cell detail is not a rendered timeline:\n%s", detail)
	}

	// Error paths: out-of-range cell and a non-integer parameter.
	get(t, srv.URL+"/traces?cell=99", http.StatusNotFound)
	get(t, srv.URL+"/traces?cell=bogus", http.StatusBadRequest)
}

func get(t *testing.T, url string, wantCode int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s answered %d, want %d:\n%s", url, resp.StatusCode, wantCode, body)
	}
	return string(body)
}
