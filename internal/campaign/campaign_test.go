package campaign

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/sweep"
)

// tinySpec mirrors the sweep package's golden fixture: a 2x2 grid, two
// protocols, two trials — 4 cells whose uninterrupted CSV is recorded in
// ../sweep/testdata/golden_sweep_2x2x2.csv.
func tinySpec() *sweep.Spec {
	return &sweep.Spec{
		Name:      "tiny",
		Warmup:    40,
		Queries:   120,
		Trials:    2,
		Protocols: []string{"Dicas", "Locaware"},
		Scenario:  "churn-waves",
		Axes: []sweep.Axis{
			{Param: sweep.ParamPeers, Values: []float64{60, 90}},
			{Param: sweep.ParamCacheFilenames, Values: []float64{5, 50}},
		},
	}
}

func goldenCSV(t testing.TB) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "sweep", "testdata", "golden_sweep_2x2x2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func tinyPlan(t testing.TB) *sweep.Plan {
	t.Helper()
	p, err := sweep.NewPlan(core.DefaultConfig(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStoreRoundTrip(t *testing.T) {
	plan := tinyPlan(t)
	store, err := OpenStore(t.TempDir(), plan.Hash())
	if err != nil {
		t.Fatal(err)
	}
	cr, err := plan.RunCellAt(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(cr); err != nil {
		t.Fatal(err)
	}
	// Overwrite must be idempotent (a reissued lease may checkpoint twice).
	if err := store.Put(cr); err != nil {
		t.Fatal(err)
	}
	loaded, warnings, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
	if len(loaded) != 1 {
		t.Fatalf("loaded %d cells, want 1", len(loaded))
	}
	got, ok := loaded[0]
	if !ok {
		t.Fatal("cell 0 missing from load")
	}
	// The JSON round trip must preserve every bit — floats included — or
	// resumed campaigns could not be byte-identical.
	if !reflect.DeepEqual(*got, *cr) {
		t.Fatalf("checkpoint round trip drifted:\nput:    %+v\nloaded: %+v", *cr, *got)
	}
	// No stray temp files after committed writes.
	entries, err := os.ReadDir(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("leaked temp file %s", e.Name())
		}
	}
}

// TestRunResumeByteIdentity is the kill-and-resume contract: a campaign
// interrupted after a subset of cells, then resumed, executes only the
// missing cells (locked by the Executed run counter) and produces output
// byte-identical to the uninterrupted golden CSV.
func TestRunResumeByteIdentity(t *testing.T) {
	base := core.DefaultConfig()
	golden := goldenCSV(t)
	dir := t.TempDir()

	// Simulate the interrupted first run: cells 0 and 2 finished and were
	// checkpointed, then the process died.
	plan := tinyPlan(t)
	store, err := OpenStore(dir, plan.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.RunCells([]int{0, 2}, 4, func(cr *sweep.CellResult) {
		if err := store.Put(cr); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}

	// Resume: only cells 1 and 3 may execute.
	camp, stats, err := Run(base, tinySpec(), 4, Options{Checkpoint: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 2 {
		t.Fatalf("resumed %d cells, want 2", stats.Resumed)
	}
	if stats.Executed != 2 {
		t.Fatalf("executed %d cells, want exactly the 2 missing ones", stats.Executed)
	}
	if got := camp.CSV(); got != golden {
		t.Fatalf("resumed campaign CSV differs from uninterrupted golden:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}

	// A second resume finds everything checkpointed and computes nothing.
	camp2, stats2, err := Run(base, tinySpec(), 4, Options{Checkpoint: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Resumed != 4 || stats2.Executed != 0 {
		t.Fatalf("full resume: resumed %d executed %d, want 4/0", stats2.Resumed, stats2.Executed)
	}
	if camp2.CSV() != golden {
		t.Fatal("fully resumed campaign CSV differs from golden")
	}

	// Resume disabled: checkpoints are ignored and every cell recomputes.
	_, stats3, err := Run(base, tinySpec(), 4, Options{Checkpoint: dir, Resume: false})
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Resumed != 0 || stats3.Executed != 4 {
		t.Fatalf("resume disabled: resumed %d executed %d, want 0/4", stats3.Resumed, stats3.Executed)
	}
}

// TestRunSurvivesDamagedCheckpoints damages three of four checkpoint
// files — truncation, garbage, a foreign campaign hash — and asserts the
// campaign reports each, re-runs exactly those cells, and still renders
// the golden bytes.
func TestRunSurvivesDamagedCheckpoints(t *testing.T) {
	base := core.DefaultConfig()
	golden := goldenCSV(t)
	dir := t.TempDir()

	if _, _, err := Run(base, tinySpec(), 4, Options{Checkpoint: dir}); err != nil {
		t.Fatal(err)
	}
	plan := tinyPlan(t)
	store, err := OpenStore(dir, plan.Hash())
	if err != nil {
		t.Fatal(err)
	}

	// Cell 0: truncated mid-document (simulates a torn write on a
	// filesystem without atomic rename semantics).
	data, err := os.ReadFile(store.Path(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.Path(0), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Cell 1: not JSON at all.
	if err := os.WriteFile(store.Path(1), []byte("{this is not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Cell 2: well-formed but from a different campaign.
	foreign := `{"version":1,"spec_hash":"deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef","cell":{"index":2}}`
	if err := os.WriteFile(store.Path(2), []byte(foreign), 0o644); err != nil {
		t.Fatal(err)
	}
	// Cell 3 stays valid.

	camp, stats, err := Run(base, tinySpec(), 4, Options{Checkpoint: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 1 {
		t.Fatalf("resumed %d cells, want only the intact cell 3", stats.Resumed)
	}
	if stats.Executed != 3 {
		t.Fatalf("executed %d cells, want the 3 damaged ones", stats.Executed)
	}
	if len(stats.Warnings) < 3 {
		t.Fatalf("want >= 3 damage warnings, got %v", stats.Warnings)
	}
	for i, substr := range map[int]string{0: "corrupted or truncated", 1: "corrupted or truncated", 2: "belongs to campaign"} {
		found := false
		name := filepath.Base(store.Path(i))
		for _, w := range stats.Warnings {
			if strings.Contains(w, name) && strings.Contains(w, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no warning matching %q for %s in %v", substr, name, stats.Warnings)
		}
	}
	if camp.CSV() != golden {
		t.Fatal("campaign with damaged checkpoints drifted from golden CSV")
	}

	// The recovery run rewrote valid checkpoints: the next resume is total.
	_, stats2, err := Run(base, tinySpec(), 4, Options{Checkpoint: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Resumed != 4 || stats2.Executed != 0 || len(stats2.Warnings) != 0 {
		t.Fatalf("post-recovery resume: resumed %d executed %d warnings %v, want 4/0/none",
			stats2.Resumed, stats2.Executed, stats2.Warnings)
	}
}

// TestStoreRejectsWrongVersion covers the format-version gate separately
// since Run-level tests can't produce a future version.
func TestStoreRejectsWrongVersion(t *testing.T) {
	plan := tinyPlan(t)
	store, err := OpenStore(t.TempDir(), plan.Hash())
	if err != nil {
		t.Fatal(err)
	}
	doc := `{"version":99,"spec_hash":"` + plan.Hash() + `","cell":{"index":0}}`
	if err := os.WriteFile(store.Path(0), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	cells, warnings, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Fatal("future-version checkpoint must not load")
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "format version 99") {
		t.Fatalf("want a version warning, got %v", warnings)
	}
}

func TestJobCodec(t *testing.T) {
	j := &Job{SpecHash: "abc", Cell: 3, Seed: -42, Protocols: []string{"Dicas", "Locaware"}, Trials: 2}
	data, err := EncodeJob(j)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJob(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j, back) {
		t.Fatalf("job round trip drifted: %+v vs %+v", j, back)
	}
	if _, err := DecodeJob([]byte(`{"spec_hash":"x","cell":0,"surprise":true}`)); err == nil {
		t.Fatal("unknown job fields must be rejected")
	}
	if _, err := EncodeJob(nil); err == nil {
		t.Fatal("nil job must be rejected")
	}
}
