package campaign

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/sweep"
)

// TestLeaseProtocol drives the coordinator's state machine directly:
// lowest-pending-first leasing, the wait reply when everything is out,
// expiry-driven reissue, first-complete-wins dedup, and rejection of
// stale or damaged results.
func TestLeaseProtocol(t *testing.T) {
	base := core.DefaultConfig()
	coord, err := NewCoordinator(base, tinySpec(), Options{LeaseTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// All four cells lease out in ascending index order.
	for want := 0; want < 4; want++ {
		reply := coord.lease("w1")
		if reply.Job == nil || reply.Job.Cell != want {
			t.Fatalf("lease %d: got %+v, want cell %d", want, reply, want)
		}
		if reply.Job.SpecHash != coord.Hash() {
			t.Fatal("leased job carries the wrong campaign hash")
		}
		if reply.Job.Trials != 2 || len(reply.Job.Protocols) != 2 {
			t.Fatalf("leased job derivation facts wrong: %+v", reply.Job)
		}
	}
	// Nothing pending, nothing done: wait.
	if reply := coord.lease("w2"); !reply.Wait || reply.RetryMs <= 0 {
		t.Fatalf("exhausted grid should answer wait+retry, got %+v", reply)
	}

	// Let every lease expire; the next lease reaps and reissues cell 0.
	time.Sleep(60 * time.Millisecond)
	if reply := coord.lease("w2"); reply.Job == nil || reply.Job.Cell != 0 {
		t.Fatalf("expired leases must reissue from cell 0, got %+v", reply)
	}
	if st := coord.Stats(); st.Reissued < 4 {
		t.Fatalf("reissued %d leases, want all 4 reaped", st.Reissued)
	}

	// Compute cell 0 for real and post it twice: first wins, second is an
	// acknowledged duplicate.
	plan := tinyPlan(t)
	cr, err := plan.RunCellAt(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	reply, code := coord.result(&ResultPost{SpecHash: coord.Hash(), Worker: "w2", Cell: *cr})
	if code != http.StatusOK || !reply.OK || reply.Duplicate {
		t.Fatalf("first result: %+v (%d)", reply, code)
	}
	reply, code = coord.result(&ResultPost{SpecHash: coord.Hash(), Worker: "w1", Cell: *cr})
	if code != http.StatusOK || !reply.OK || !reply.Duplicate {
		t.Fatalf("second result should be a duplicate ack: %+v (%d)", reply, code)
	}
	if st := coord.Stats(); st.Duplicates != 1 || st.Executed != 1 {
		t.Fatalf("stats after dedup: %+v", st)
	}

	// A result under a foreign campaign hash is a conflict.
	_, code = coord.result(&ResultPost{SpecHash: "deadbeef", Worker: "w1", Cell: *cr})
	if code != http.StatusConflict {
		t.Fatalf("foreign-hash result answered %d, want 409", code)
	}

	// A damaged cell is unprocessable and its lease returns to the pool.
	bad := *cr
	bad.Index = 1
	bad.Seed++ // cell 1 with cell 0's (mutated) identity
	_, code = coord.result(&ResultPost{SpecHash: coord.Hash(), Worker: "w1", Cell: bad})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("damaged result answered %d, want 422", code)
	}
	if st := coord.Stats(); len(st.Warnings) == 0 {
		t.Fatal("rejected result must leave a warning")
	}
	status := coord.Status()
	if status.Done != 1 || status.Complete {
		t.Fatalf("status after one cell: %+v", status)
	}
}

// TestCoordinatorWorkersEndToEnd is the loopback fan-out test: a
// coordinator behind httptest and two concurrent workers drain the tiny
// campaign; the folded CSV must equal the uninterrupted golden bytes.
func TestCoordinatorWorkersEndToEnd(t *testing.T) {
	base := core.DefaultConfig()
	golden := goldenCSV(t)
	dir := t.TempDir()

	coord, err := NewCoordinator(base, tinySpec(), Options{
		Checkpoint: dir,
		Poll:       10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	executed := make([]int, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w, err := NewWorker(base, tinySpec(), srv.URL, 1, Options{Poll: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			executed[i], errs[i] = w.Run(ctx)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("workers exited but the campaign is not complete")
	}
	if got := executed[0] + executed[1]; got != 4 {
		t.Fatalf("workers executed %d cells total, want 4", got)
	}
	stats := coord.Stats()
	if stats.Executed != 4 || stats.Resumed != 0 {
		t.Fatalf("coordinator stats: %+v", stats)
	}
	if got := coord.Campaign().CSV(); got != golden {
		t.Fatalf("distributed campaign CSV drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}

	// A late-joining worker on the finished campaign exits at once with
	// zero work.
	late, err := NewWorker(base, tinySpec(), srv.URL, 1, Options{Poll: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	n, err := late.Run(ctx)
	if err != nil || n != 0 {
		t.Fatalf("late worker: executed %d, err %v", n, err)
	}

	// The coordinator checkpointed every cell: a resumed in-process run
	// recomputes nothing and renders the same bytes.
	camp, rstats, err := Run(base, tinySpec(), 4, Options{Checkpoint: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Resumed != 4 || rstats.Executed != 0 {
		t.Fatalf("resume from coordinator checkpoints: %+v", rstats)
	}
	if camp.CSV() != golden {
		t.Fatal("resume from coordinator checkpoints drifted from golden")
	}
}

// TestCoordinatorResumesFromCheckpoints verifies resumed cells are born
// done and never leased.
func TestCoordinatorResumesFromCheckpoints(t *testing.T) {
	base := core.DefaultConfig()
	dir := t.TempDir()
	plan := tinyPlan(t)
	store, err := OpenStore(dir, plan.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.RunCells([]int{0, 1, 2}, 4, func(cr *sweep.CellResult) {
		if err := store.Put(cr); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(base, tinySpec(), Options{Checkpoint: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := coord.Stats(); st.Resumed != 3 {
		t.Fatalf("coordinator resumed %d cells, want 3", st.Resumed)
	}
	if reply := coord.lease("w1"); reply.Job == nil || reply.Job.Cell != 3 {
		t.Fatalf("only cell 3 should lease, got %+v", reply)
	}
}

// TestWorkerRefusesStaleCampaign locks the stale-worker interlock: a
// worker resolved from different flags must refuse the job before
// computing anything.
func TestWorkerRefusesStaleCampaign(t *testing.T) {
	base := core.DefaultConfig()
	coord, err := NewCoordinator(base, tinySpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	staleSpec := tinySpec()
	staleSpec.Seed = 99 // different campaign identity
	w, err := NewWorker(base, staleSpec, srv.URL, 1, Options{Poll: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	n, err := w.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "stale worker") {
		t.Fatalf("want a stale-worker error, got n=%d err=%v", n, err)
	}
	if n != 0 {
		t.Fatalf("stale worker executed %d cells, want 0", n)
	}
}
