package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/obs"
	"github.com/p2prepro/locaware/internal/sweep"
)

// cellState tracks one grid cell through the lease protocol.
type cellState uint8

const (
	cellPending cellState = iota // waiting for a worker
	cellLeased                   // handed out, result due before expiry
	cellDone                     // folded into the campaign
)

// Coordinator owns one campaign's distribution: it expands the spec into
// leasable cells, serves them over HTTP, reissues leases whose workers
// go quiet, deduplicates double results (first complete wins — harmless,
// since every result for a cell is byte-identical by the determinism
// contract), checkpoints finished cells, and folds results into the same
// index-addressed grid sweep.Run fills, so the exported bytes are
// identical to an in-process run.
//
// Protocol (all bodies JSON):
//
//	GET  /lease?worker=ID → LeaseReply (a Job, Wait, or Done)
//	POST /result          ← ResultPost, → ResultReply
//	GET  /status          → Status
type Coordinator struct {
	opt          Options
	leaseTimeout time.Duration

	mu        sync.Mutex
	pr        *prepared
	state     []cellState
	expiry    []time.Time
	holder    []string
	doneCount int
	complete  bool
	start     time.Time
	done      chan struct{}

	workers map[string]*workerInfo
	rate    *obs.RateEWMA
	reg     *obs.Registry
	instr   *coordInstr
}

// NewCoordinator resolves the campaign, loads any resumable checkpoints
// (cells restored from the store are born done and never leased), and
// returns a coordinator ready to serve. A fully resumed campaign is
// complete immediately.
func NewCoordinator(base core.Config, spec *sweep.Spec, opt Options) (*Coordinator, error) {
	pr, err := prepare(base, spec, opt)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		opt:          opt,
		leaseTimeout: opt.leaseTimeout(),
		pr:           pr,
		state:        make([]cellState, pr.stats.Cells),
		expiry:       make([]time.Time, pr.stats.Cells),
		holder:       make([]string, pr.stats.Cells),
		start:        time.Now(),
		done:         make(chan struct{}),
		workers:      make(map[string]*workerInfo),
		rate:         obs.NewRateEWMA(0),
	}
	if opt.Obs != nil {
		c.enableObs(opt.Obs)
	}
	for i, d := range pr.done {
		if d {
			c.state[i] = cellDone
			c.doneCount++
		}
	}
	if c.doneCount == len(c.state) {
		c.completeLocked()
	}
	return c, nil
}

// completeLocked seals the campaign; callers hold mu (or, in the
// constructor, exclusive access).
func (c *Coordinator) completeLocked() {
	if c.complete {
		return
	}
	c.complete = true
	c.pr.camp.Elapsed = time.Since(c.start)
	close(c.done)
}

// Hash returns the campaign's content hash.
func (c *Coordinator) Hash() string { return c.pr.plan.Hash() }

// NumCells returns the campaign grid size.
func (c *Coordinator) NumCells() int { return c.pr.stats.Cells }

// Done is closed when every cell is complete.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Campaign returns the folded campaign; only meaningful once Done is
// closed.
func (c *Coordinator) Campaign() *sweep.Campaign {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pr.camp
}

// Stats returns a snapshot of the run statistics.
func (c *Coordinator) Stats() RunStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.pr.stats
	st.Warnings = append([]string(nil), c.pr.stats.Warnings...)
	return st
}

// Status returns a snapshot of the lease-protocol state.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.reapLocked(now)
	st := Status{
		SpecHash:      c.pr.plan.Hash(),
		Name:          c.pr.plan.Spec().Name,
		Cells:         len(c.state),
		Done:          c.doneCount,
		Resumed:       c.pr.stats.Resumed,
		Reissued:      c.pr.stats.Reissued,
		Duplicates:    c.pr.stats.Duplicates,
		Complete:      c.complete,
		UptimeSeconds: now.Sub(c.start).Seconds(),
		Workers:       c.workerStatusLocked(now),
	}
	for _, s := range c.state {
		switch s {
		case cellLeased:
			st.Leased++
		case cellPending:
			st.Pending++
		}
	}
	return st
}

// reapLocked returns expired leases to the pending pool; callers hold mu.
func (c *Coordinator) reapLocked(now time.Time) {
	for i, st := range c.state {
		if st == cellLeased && now.After(c.expiry[i]) {
			c.state[i] = cellPending
			c.pr.stats.Reissued++
			if w := c.workers[c.holder[i]]; w != nil {
				w.expired++
			}
			if c.instr != nil {
				c.instr.reissued.Inc()
			}
			c.opt.logf("lease on cell %d (worker %q) expired after %s; reissuing", i, c.holder[i], c.leaseTimeout)
		}
	}
}

// lease implements one lease request: expire stale leases, then hand out
// the lowest pending cell.
func (c *Coordinator) lease(worker string) LeaseReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.reapLocked(now)
	c.touchWorkerLocked(worker, now)
	if c.doneCount == len(c.state) {
		return LeaseReply{Done: true}
	}
	idx := -1
	for i, st := range c.state {
		if st == cellPending {
			idx = i
			break
		}
	}
	if idx < 0 {
		return LeaseReply{Wait: true, RetryMs: c.opt.poll().Milliseconds()}
	}
	c.state[idx] = cellLeased
	c.expiry[idx] = now.Add(c.leaseTimeout)
	c.holder[idx] = worker
	if c.instr != nil {
		c.instr.leases.Inc()
	}
	cells := c.pr.plan.Cells()
	return LeaseReply{
		Job: &Job{
			SpecHash:  c.pr.plan.Hash(),
			Cell:      idx,
			Seed:      cells[idx].Seed,
			Protocols: c.pr.plan.Protocols(),
			Trials:    c.pr.plan.Trials(),
		},
		LeaseMs: c.leaseTimeout.Milliseconds(),
	}
}

// result implements one result post. The first complete result for a
// cell wins; later duplicates — a slow worker racing a reissued lease —
// are acknowledged and discarded.
func (c *Coordinator) result(post *ResultPost) (ResultReply, int) {
	if post.SpecHash != c.pr.plan.Hash() {
		return ResultReply{Error: fmt.Sprintf(
			"stale result: campaign %s, this coordinator runs %s (spec or base flags differ)",
			shortHash(post.SpecHash), shortHash(c.pr.plan.Hash()))}, http.StatusConflict
	}
	cr := post.Cell
	if err := c.pr.plan.VerifyCell(&cr); err != nil {
		c.mu.Lock()
		if cr.Index >= 0 && cr.Index < len(c.state) && c.state[cr.Index] == cellLeased {
			c.state[cr.Index] = cellPending // let another worker redo it
		}
		warn := fmt.Sprintf("result from worker %q rejected: %v", post.Worker, err)
		c.pr.stats.Warnings = append(c.pr.stats.Warnings, warn)
		c.mu.Unlock()
		c.opt.logf("%s", warn)
		return ResultReply{Error: err.Error()}, http.StatusUnprocessableEntity
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	w := c.touchWorkerLocked(post.Worker, now)
	if c.state[cr.Index] == cellDone {
		c.pr.stats.Duplicates++
		if c.instr != nil {
			c.instr.duplicates.Inc()
		}
		c.opt.logf("duplicate result for cell %d from worker %q discarded (first complete wins)", cr.Index, post.Worker)
		return ResultReply{OK: true, Duplicate: true}, http.StatusOK
	}
	if c.pr.store != nil {
		if err := c.pr.store.Put(&cr); err != nil {
			// The cell still folds into the in-memory campaign; only its
			// durability is degraded.
			warn := fmt.Sprintf("checkpointing cell %d failed: %v", cr.Index, err)
			c.pr.stats.Warnings = append(c.pr.stats.Warnings, warn)
			c.opt.logf("%s", warn)
		}
	}
	c.pr.camp.Cells[cr.Index] = cr
	c.state[cr.Index] = cellDone
	c.doneCount++
	c.pr.stats.Executed++
	if w != nil {
		w.cells++
	}
	if c.instr != nil {
		c.instr.executed.Inc()
	}
	c.rate.Observe(float64(c.doneCount), now)
	// With a progress interval the periodic summary replaces the
	// per-cell completion lines.
	if c.opt.Progress <= 0 {
		c.opt.logf("cell %d done (%d/%d, worker %q)", cr.Index, c.doneCount, len(c.state), post.Worker)
	}
	if c.doneCount == len(c.state) {
		c.completeLocked()
	}
	return ResultReply{OK: true}, http.StatusOK
}

// Handler returns the coordinator's HTTP interface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/lease", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodPost {
			http.Error(w, "lease wants GET or POST", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, http.StatusOK, c.lease(r.URL.Query().Get("worker")))
	})
	mux.HandleFunc("/result", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "result wants POST", http.StatusMethodNotAllowed)
			return
		}
		var post ResultPost
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&post); err != nil {
			writeJSON(w, http.StatusBadRequest, ResultReply{Error: fmt.Sprintf("decoding result: %v", err)})
			return
		}
		reply, code := c.result(&post)
		// Fold the worker's run-level counter deltas in only when this
		// result was the one accepted: the absorbed totals then match
		// what one uninterrupted in-process sweep would have produced.
		if c.reg != nil && reply.OK && !reply.Duplicate && len(post.Obs) > 0 {
			c.reg.AbsorbCounters(post.Obs)
		}
		writeJSON(w, code, reply)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if cell := r.URL.Query().Get("cell"); cell != "" {
			idx, err := strconv.Atoi(cell)
			if err != nil {
				http.Error(w, "traces: cell wants an integer index", http.StatusBadRequest)
				return
			}
			body, ok := c.traceFor(idx)
			if !ok {
				http.Error(w, fmt.Sprintf("no exemplar trace for cell %d", idx), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, body)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, c.traceIndex())
	})
	if c.reg != nil {
		obs.RegisterOn(mux, c.reg)
	}
	return mux
}

// traceIndex renders the exemplar-trace listing: one line per completed
// cell that shipped a worst-case trace, with the detail URL.
func (c *Coordinator) traceIndex() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "exemplar traces: campaign %q (%s)\n", c.pr.plan.Spec().Name, shortHash(c.pr.plan.Hash()))
	n := 0
	for i := range c.pr.camp.Cells {
		cr := &c.pr.camp.Cells[i]
		if c.state[i] != cellDone || cr.Exemplar == nil {
			continue
		}
		ex := cr.Exemplar
		status := "ok"
		if ex.Failed {
			status = "FAILED"
		}
		fmt.Fprintf(&b, "  cell %-4d %-30s %s trial=%d q=%d latency=%.3fs hops=%d %s  /traces?cell=%d\n",
			cr.Index, cr.Label(), ex.Protocol, ex.Trial, ex.Query, ex.LatencySeconds, ex.Hops, status, cr.Index)
		n++
	}
	if n == 0 {
		b.WriteString("  (none yet — cells ship exemplars only when the campaign runs with a trace policy)\n")
	}
	return b.String()
}

// traceFor renders one cell's exemplar trace as text.
func (c *Coordinator) traceFor(idx int) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx < 0 || idx >= len(c.pr.camp.Cells) || c.state[idx] != cellDone {
		return "", false
	}
	cr := &c.pr.camp.Cells[idx]
	ex := cr.Exemplar
	if ex == nil {
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cell %d %s — worst query: protocol=%s trial=%d q=%d latency=%.3fs hops=%d\n",
		cr.Index, cr.Label(), ex.Protocol, ex.Trial, ex.Query, ex.LatencySeconds, ex.Hops)
	b.WriteString(ex.Rendered)
	return b.String(), true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// Serve binds addr, serves the lease protocol until the campaign
// completes, shuts the server down, and returns the folded campaign.
// It is the blocking, CLI-shaped entry point; tests drive Handler
// directly under httptest instead.
func (c *Coordinator) Serve(addr string) (*sweep.Campaign, RunStats, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, c.Stats(), fmt.Errorf("campaign: coordinator listen: %w", err)
	}
	c.opt.logf("coordinator serving campaign %s (%q, %d cells, %d resumed) on http://%s",
		shortHash(c.Hash()), c.pr.plan.Spec().Name, c.NumCells(), c.Stats().Resumed, l.Addr())
	srv := &http.Server{Handler: c.Handler()}
	if c.opt.Progress > 0 {
		finished := make(chan struct{})
		go func() {
			defer close(finished)
			c.progressLoop(c.opt.Progress)
		}()
		// The loop exits when the campaign completes; wait it out so no
		// Logf call outlives Serve.
		defer func() { <-finished }()
	}
	errCh := make(chan error, 1)
	go func() {
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	select {
	case <-c.done:
	case err := <-errCh:
		return nil, c.Stats(), fmt.Errorf("campaign: coordinator serve: %w", err)
	}
	// Linger briefly so workers polling right now get a clean {done} reply
	// instead of a connection error, then drain in-flight requests.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	return c.Campaign(), c.Stats(), nil
}
