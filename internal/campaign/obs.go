package campaign

import (
	"fmt"
	"sort"
	"time"

	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/obs"
)

// Campaign metric family names. Counters accumulate over the
// coordinator's lifetime; the cell-partition gauges are computed at
// scrape time from the lease table, so /metrics never disagrees with
// /status.
const (
	MetricCells          = "campaign_cells"
	MetricCellsDone      = "campaign_cells_done"
	MetricCellsLeased    = "campaign_cells_leased"
	MetricCellsPending   = "campaign_cells_pending"
	MetricCellsResumed   = "campaign_cells_resumed"
	MetricCellsExecuted  = "campaign_cells_executed_total"
	MetricLeasesIssued   = "campaign_leases_issued_total"
	MetricLeasesReissued = "campaign_leases_reissued_total"
	MetricDuplicates     = "campaign_results_duplicate_total"
	MetricCheckpointHits = "campaign_checkpoint_hits_total"
	MetricWorkersLive    = "campaign_workers_live"
	MetricCellsPerSec    = "campaign_cells_per_second"
	MetricUptime         = "campaign_uptime_seconds"
)

// RegisterMetrics pre-registers the campaign counter families, so a
// scrape before the first lease still advertises the catalog. The
// scrape-time gauges (cell partition, workers, uptime, rate) are bound
// to a live coordinator by enableObs and only exist there.
func RegisterMetrics(reg *obs.Registry) {
	reg.Counter(MetricCellsExecuted, "cells computed and folded this run")
	reg.Counter(MetricLeasesIssued, "cell leases handed to workers")
	reg.Counter(MetricLeasesReissued, "expired leases handed out again")
	reg.Counter(MetricDuplicates, "double results discarded (first complete wins)")
	reg.Counter(MetricCheckpointHits, "cells restored from the checkpoint store")
}

// coordInstr holds the coordinator's pre-resolved counter handles;
// increments are pure atomics, safe under the coordinator mutex.
type coordInstr struct {
	executed   *obs.Counter
	leases     *obs.Counter
	reissued   *obs.Counter
	duplicates *obs.Counter
	ckptHits   *obs.Counter
}

// workerInfo tracks one worker's liveness and contribution, keyed by the
// self-assigned worker ID on /lease and /result.
type workerInfo struct {
	lastSeen time.Time
	cells    int
	expired  int
}

// enableObs binds the campaign instrumentation to reg: counter handles,
// scrape-time gauges over the lease table, and the full sim/protocol
// family catalog so the coordinator's /metrics shows every family a
// worker may report into before the first result arrives. Called from
// the constructor, before the coordinator is shared.
func (c *Coordinator) enableObs(reg *obs.Registry) {
	c.reg = reg
	core.RegisterObsFamilies(reg)
	RegisterMetrics(reg)
	c.instr = &coordInstr{
		executed:   reg.Counter(MetricCellsExecuted, ""),
		leases:     reg.Counter(MetricLeasesIssued, ""),
		reissued:   reg.Counter(MetricLeasesReissued, ""),
		duplicates: reg.Counter(MetricDuplicates, ""),
		ckptHits:   reg.Counter(MetricCheckpointHits, ""),
	}
	c.instr.ckptHits.Add(uint64(c.pr.stats.Resumed))
	reg.GaugeFunc(MetricCells, "campaign grid size", func() float64 {
		return float64(c.NumCells())
	})
	reg.GaugeFunc(MetricCellsDone, "cells complete (resumed + executed)", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.doneCount)
	})
	reg.GaugeFunc(MetricCellsLeased, "cells currently leased out", c.countStateFn(cellLeased))
	reg.GaugeFunc(MetricCellsPending, "cells waiting for a worker", c.countStateFn(cellPending))
	reg.GaugeFunc(MetricCellsResumed, "cells restored from checkpoints at startup", func() float64 {
		return float64(c.pr.stats.Resumed)
	})
	reg.GaugeFunc(MetricWorkersLive, "workers seen within one lease timeout", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.liveWorkersLocked(time.Now()))
	})
	reg.GaugeFunc(MetricCellsPerSec, "EWMA completion rate", func() float64 {
		return c.rate.Rate()
	})
	reg.GaugeFunc(MetricUptime, "seconds since the coordinator started", func() float64 {
		return time.Since(c.start).Seconds()
	})
}

// countStateFn returns a scrape-time closure counting cells in state s.
func (c *Coordinator) countStateFn(s cellState) func() float64 {
	return func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, st := range c.state {
			if st == s {
				n++
			}
		}
		return float64(n)
	}
}

// touchWorkerLocked records a sighting of worker id; callers hold mu.
func (c *Coordinator) touchWorkerLocked(id string, now time.Time) *workerInfo {
	if id == "" {
		return nil
	}
	w := c.workers[id]
	if w == nil {
		w = &workerInfo{}
		c.workers[id] = w
	}
	w.lastSeen = now
	return w
}

// liveWorkersLocked counts workers seen within one lease timeout;
// callers hold mu.
func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	n := 0
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.leaseTimeout {
			n++
		}
	}
	return n
}

// workerStatusLocked snapshots the per-worker table, sorted by ID;
// callers hold mu.
func (c *Coordinator) workerStatusLocked(now time.Time) []WorkerStatus {
	if len(c.workers) == 0 {
		return nil
	}
	out := make([]WorkerStatus, 0, len(c.workers))
	for id, w := range c.workers {
		out = append(out, WorkerStatus{
			ID:           id,
			LastSeenSecs: now.Sub(w.lastSeen).Seconds(),
			Cells:        w.cells,
			Expired:      w.expired,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// progressLoop prints one summary line per interval — completion,
// lease-table shape, EWMA rate and ETA — until the campaign completes.
// It replaces the per-cell completion lines, which Progress > 0
// suppresses.
func (c *Coordinator) progressLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case now := <-t.C:
			st := c.Status()
			c.rate.Observe(float64(st.Done), now)
			line := fmt.Sprintf("progress: %d/%d done (%d resumed, %d leased, %d pending, %d reissued)",
				st.Done, st.Cells, st.Resumed, st.Leased, st.Pending, st.Reissued)
			if r := c.rate.Rate(); r > 0 {
				line += fmt.Sprintf(", %.2f cells/s", r)
			}
			if eta, ok := c.rate.ETA(float64(st.Cells - st.Done)); ok {
				line += fmt.Sprintf(", eta %s", eta.Round(time.Second))
			}
			c.opt.logf("%s", line)
		}
	}
}
