package campaign

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/p2prepro/locaware/internal/core"
)

// BenchmarkCampaignInProcess is the distribution-overhead baseline: the
// tiny 4-cell campaign run entirely in-process, no checkpointing.
func BenchmarkCampaignInProcess(b *testing.B) {
	base := core.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		camp, _, err := Run(base, tinySpec(), 1, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(len(camp.Cells))*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		}
	}
}

// BenchmarkCampaignLoopbackWorker1 runs the same campaign through the
// full HTTP lease protocol with a single worker on loopback. The
// acceptance bar is cells/s within 10% of BenchmarkCampaignInProcess:
// the protocol overhead is a handful of JSON exchanges per multi-second
// cell, so the two must be nearly indistinguishable.
func BenchmarkCampaignLoopbackWorker1(b *testing.B) {
	base := core.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		coord, err := NewCoordinator(base, tinySpec(), Options{Poll: 5 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(coord.Handler())
		w, err := NewWorker(base, tinySpec(), srv.URL, 1, Options{Poll: 5 * time.Millisecond})
		if err != nil {
			srv.Close()
			b.Fatal(err)
		}
		if _, err := w.Run(context.Background()); err != nil {
			srv.Close()
			b.Fatal(err)
		}
		select {
		case <-coord.Done():
		default:
			srv.Close()
			b.Fatal("worker exited before the campaign completed")
		}
		srv.Close()
		if i == b.N-1 {
			b.ReportMetric(float64(coord.NumCells())*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		}
	}
}

// BenchmarkCampaignResume measures the checkpoint cache hit path: every
// cell restored from disk, nothing recomputed.
func BenchmarkCampaignResume(b *testing.B) {
	base := core.DefaultConfig()
	dir := b.TempDir()
	if _, _, err := Run(base, tinySpec(), 1, Options{Checkpoint: dir}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, stats, err := Run(base, tinySpec(), 1, Options{Checkpoint: dir, Resume: true})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Resumed != 4 || stats.Executed != 0 {
			b.Fatalf("resume missed the cache: %+v", stats)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(stats.Cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		}
	}
}
