// Package campaign turns the sweep engine into a cluster-scale,
// resumable campaign runner. A sweep cell is byte-reproducible from
// (campaign content hash, cell index) alone — sweep.CellSeed derives its
// seed, sweep.Plan.RunCells its bytes — which makes a cell a perfect unit
// of distributable, cacheable work. This package provides the three
// layers that exploit it:
//
//   - a checkpoint Store writing one content-addressed file per finished
//     cell (temp file + atomic rename), so a killed campaign — in-process
//     or distributed — resumes by computing only the missing subset;
//   - a Coordinator serving cells over a minimal HTTP lease protocol
//     (/lease, /result, /status), reissuing leases whose workers die and
//     deduplicating double results (first complete wins);
//   - a Worker loop leasing cells and executing them via the shared
//     sweep.Plan at the cell-local seed.
//
// Every path folds results into the same index-addressed campaign grid
// the in-process sweep.Run fills, so the exported CSV and figure bytes
// are identical however the cells were computed: locally, resumed from
// disk, or fanned out across worker processes. Stale state can never
// leak in: jobs, results and checkpoint files all carry the campaign's
// content hash (sweep.Plan.Hash covers the spec, the resolved
// seed/trials/protocol identity and the base configuration), and a
// mismatch rejects the work instead of merging it.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/p2prepro/locaware/internal/obs"
	"github.com/p2prepro/locaware/internal/sweep"
)

// Job is one leasable unit of campaign work: a single grid cell,
// identified by the campaign's content hash and the cell index, with the
// derivation facts (cell seed, protocol set, trial count) echoed so a
// worker can cross-check its own plan before burning CPU on the wrong
// campaign.
type Job struct {
	// SpecHash is the campaign content hash (sweep.Plan.Hash) the cell
	// belongs to; a worker must refuse jobs whose hash differs from its
	// locally resolved plan.
	SpecHash string `json:"spec_hash"`
	// Cell is the grid cell index to execute.
	Cell int `json:"cell"`
	// Seed is the cell's derived root seed (sweep.CellSeed of the campaign
	// seed and Cell) — redundant with SpecHash, kept as a cheap integrity
	// cross-check.
	Seed int64 `json:"seed"`
	// Protocols is the campaign protocol set in run order.
	Protocols []string `json:"protocols"`
	// Trials is the replication count per cell.
	Trials int `json:"trials"`
}

// EncodeJob serializes a job as JSON.
func EncodeJob(j *Job) ([]byte, error) {
	if j == nil {
		return nil, fmt.Errorf("campaign: nil job")
	}
	return json.Marshal(j)
}

// DecodeJob deserializes a job, rejecting unknown fields so protocol
// drift between coordinator and worker builds fails loudly.
func DecodeJob(data []byte) (*Job, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var j Job
	if err := dec.Decode(&j); err != nil {
		return nil, fmt.Errorf("campaign: decoding job: %w", err)
	}
	return &j, nil
}

// LeaseReply is the coordinator's answer to a lease request. Exactly one
// of the three shapes is populated: Job (work to do), Wait (every
// remaining cell is leased — poll again after RetryMs), or Done (the
// campaign is complete — the worker should exit).
type LeaseReply struct {
	// Done reports that every cell is complete.
	Done bool `json:"done,omitempty"`
	// Wait reports that no cell is currently pending but the campaign is
	// not complete; the worker should retry after RetryMs.
	Wait bool `json:"wait,omitempty"`
	// RetryMs is the suggested poll delay when Wait is set.
	RetryMs int64 `json:"retry_ms,omitempty"`
	// Job is the leased cell, when one was available.
	Job *Job `json:"job,omitempty"`
	// LeaseMs is the lease deadline: a result arriving later than this
	// many milliseconds after the lease may find the cell reissued.
	LeaseMs int64 `json:"lease_ms,omitempty"`
}

// ResultPost is a worker's completed cell, posted to /result.
type ResultPost struct {
	// SpecHash is the worker's campaign content hash; the coordinator
	// rejects results computed under any other campaign.
	SpecHash string `json:"spec_hash"`
	// Worker identifies the reporting worker (diagnostics only).
	Worker string `json:"worker,omitempty"`
	// Cell is the fully aggregated cell result.
	Cell sweep.CellResult `json:"cell"`
	// Obs carries the worker's counter deltas for this cell — the change
	// in its observability registry across the cell's runs. Optional;
	// the coordinator absorbs the samples of the accepted result into
	// its own registry, so coordinator /metrics totals match what one
	// in-process sweep would have reported.
	Obs []obs.Sample `json:"obs,omitempty"`
}

// ResultReply is the coordinator's answer to a posted result.
type ResultReply struct {
	// OK reports the result was accepted and folded into the campaign.
	OK bool `json:"ok"`
	// Duplicate reports the cell was already complete (an earlier result
	// won); the post was discarded, which is harmless — all results for a
	// cell are byte-identical by the determinism contract.
	Duplicate bool `json:"duplicate,omitempty"`
	// Error carries the rejection reason when OK is false.
	Error string `json:"error,omitempty"`
}

// Status is the coordinator's /status document.
type Status struct {
	// SpecHash is the campaign content hash.
	SpecHash string `json:"spec_hash"`
	// Name is the campaign spec name.
	Name string `json:"name"`
	// Cells is the grid size; Done, Leased and Pending partition it.
	Cells   int `json:"cells"`
	Done    int `json:"done"`
	Leased  int `json:"leased"`
	Pending int `json:"pending"`
	// Resumed counts cells restored from the checkpoint store at startup.
	Resumed int `json:"resumed"`
	// Reissued counts leases that expired and were handed out again.
	Reissued int `json:"reissued"`
	// Duplicates counts results discarded because the cell was already
	// complete.
	Duplicates int `json:"duplicates"`
	// Complete reports whether every cell is done.
	Complete bool `json:"complete"`
	// UptimeSeconds is how long the coordinator has been serving.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Workers lists every worker that has contacted the coordinator,
	// sorted by ID.
	Workers []WorkerStatus `json:"workers,omitempty"`
}

// WorkerStatus is one worker's row in the coordinator's /status
// document.
type WorkerStatus struct {
	// ID is the worker's self-assigned identity (hostname-pid).
	ID string `json:"id"`
	// LastSeenSecs is the age of the worker's last lease or result.
	LastSeenSecs float64 `json:"last_seen_secs"`
	// Cells counts results from this worker that were accepted.
	Cells int `json:"cells"`
	// Expired counts this worker's leases that timed out and were
	// reissued.
	Expired int `json:"expired"`
}
