package campaign

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/obs"
	"github.com/p2prepro/locaware/internal/sweep"
	"github.com/p2prepro/locaware/internal/trace"
)

// Options configures campaign execution — shared by the in-process
// resumable runner, the coordinator and the worker.
type Options struct {
	// Checkpoint is the checkpoint directory; "" disables checkpointing.
	Checkpoint string
	// Resume, with Checkpoint set, loads existing checkpoints and executes
	// only the missing cells. False ignores (but overwrites) them.
	Resume bool
	// LeaseTimeout is how long the coordinator waits for a leased cell's
	// result before reissuing the lease to another worker; <= 0 selects
	// DefaultLeaseTimeout.
	LeaseTimeout time.Duration
	// Poll is the worker's delay between lease attempts when the
	// coordinator has nothing pending; <= 0 selects DefaultPoll.
	Poll time.Duration
	// Logf receives human-facing progress lines (resume counts, lease
	// reissues, per-cell completion); nil discards them.
	Logf func(format string, args ...any)
	// Obs, when non-nil, attaches the observability registry: the
	// coordinator serves it on /metrics (plus pprof) and absorbs worker
	// counter deltas into it; a worker instruments its cell runs with it
	// and posts per-cell deltas; the in-process runner instruments its
	// cell runs. Instrumentation never changes campaign bytes or the
	// campaign content hash.
	Obs *obs.Registry
	// Progress, when > 0, replaces per-cell completion lines with one
	// summary line per interval (done/leased/resumed/reissued counts,
	// EWMA rate, ETA) on Logf.
	Progress time.Duration
	// TracePolicy, when non-nil, attaches a tail-sampling flight recorder
	// to every cell run; each completed cell then ships its worst-case
	// query trace (sweep.CellResult.Exemplar) to the coordinator, which
	// serves the collection on /traces. Like Obs, the policy is excluded
	// from the campaign content hash, so traced and untraced campaigns
	// share checkpoints and the coordinator/worker interlock still matches.
	TracePolicy *trace.Policy
}

// DefaultLeaseTimeout is the lease deadline when Options.LeaseTimeout is
// unset: generous enough for a large cell on a loaded machine, short
// enough that a dead worker's cells reissue within one coffee.
const DefaultLeaseTimeout = 2 * time.Minute

// DefaultPoll is the worker's idle poll interval when Options.Poll is
// unset.
const DefaultPoll = 200 * time.Millisecond

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o Options) leaseTimeout() time.Duration {
	if o.LeaseTimeout <= 0 {
		return DefaultLeaseTimeout
	}
	return o.LeaseTimeout
}

func (o Options) poll() time.Duration {
	if o.Poll <= 0 {
		return DefaultPoll
	}
	return o.Poll
}

// RunStats reports how a campaign's cells were obtained.
type RunStats struct {
	// Cells is the grid size.
	Cells int
	// Resumed counts cells restored from the checkpoint store instead of
	// recomputed.
	Resumed int
	// Executed counts cells computed this run — the run counter the
	// resume contract is locked against: a resumed campaign executes
	// exactly Cells - Resumed cells.
	Executed int
	// Reissued counts expired leases handed out again (coordinator only).
	Reissued int
	// Duplicates counts discarded double results (coordinator only).
	Duplicates int
	// Warnings collects non-fatal anomalies: skipped checkpoint files,
	// rejected results, checkpoint write failures.
	Warnings []string
}

// prepared is the common startup state of every campaign entry point: the
// resolved plan, the campaign shell, the optional checkpoint store, and
// the set of cells already satisfied from it.
type prepared struct {
	plan  *sweep.Plan
	camp  *sweep.Campaign
	store *Store
	done  []bool
	stats RunStats
}

// prepare resolves the spec into a plan, opens the checkpoint store when
// configured, and — when resuming — loads, verifies and installs every
// valid checkpointed cell into the campaign shell.
func prepare(base core.Config, spec *sweep.Spec, opt Options) (*prepared, error) {
	plan, err := sweep.NewPlan(base, spec)
	if err != nil {
		return nil, err
	}
	pr := &prepared{
		plan: plan,
		camp: plan.NewCampaign(),
		done: make([]bool, plan.NumCells()),
	}
	pr.stats.Cells = plan.NumCells()
	if opt.Checkpoint == "" {
		return pr, nil
	}
	pr.store, err = OpenStore(opt.Checkpoint, plan.Hash())
	if err != nil {
		return nil, err
	}
	if !opt.Resume {
		return pr, nil
	}
	loaded, warnings, err := pr.store.Load()
	if err != nil {
		return nil, err
	}
	pr.stats.Warnings = append(pr.stats.Warnings, warnings...)
	for _, w := range warnings {
		opt.logf("%s", w)
	}
	for idx, cr := range loaded {
		// The store already checked the campaign hash; VerifyCell guards
		// against the residual failure mode of a file that decodes but
		// carries the wrong identity (hand-edited, or a hash collision in
		// someone's nightmares).
		if err := plan.VerifyCell(cr); err != nil {
			warn := fmt.Sprintf("checkpoint for cell %d rejected: %v (cell will re-run)", idx, err)
			pr.stats.Warnings = append(pr.stats.Warnings, warn)
			opt.logf("%s", warn)
			continue
		}
		pr.camp.Cells[cr.Index] = *cr
		pr.done[cr.Index] = true
		pr.stats.Resumed++
	}
	opt.logf("resumed %d/%d cells from %s", pr.stats.Resumed, pr.stats.Cells, opt.Checkpoint)
	return pr, nil
}

// missing returns the cell indexes still to compute, ascending.
func (pr *prepared) missing() []int {
	var out []int
	for i, d := range pr.done {
		if !d {
			out = append(out, i)
		}
	}
	return out
}

// Run executes the campaign in-process with optional checkpoint/resume:
// cells present in the checkpoint store are installed without
// recomputation, the missing subset runs across the worker pool exactly
// as sweep.Run would run it, and every freshly computed cell is
// checkpointed before the campaign completes. Output is byte-identical
// to an uninterrupted sweep.Run of the same spec — resumed cells
// round-trip through JSON, which preserves every float bit — and the
// returned stats carry the resumed/executed split the resume contract is
// tested against.
func Run(base core.Config, spec *sweep.Spec, workers int, opt Options) (*sweep.Campaign, RunStats, error) {
	if opt.Obs != nil {
		// Instrument every cell run; Obs is excluded from the content
		// hash, so resumability and checkpoint identity are unchanged.
		base.Obs = opt.Obs
	}
	if opt.TracePolicy != nil {
		// Record every cell run; like Obs, the policy is hash-excluded.
		base.TracePolicy = opt.TracePolicy
	}
	pr, err := prepare(base, spec, opt)
	if err != nil {
		return nil, RunStats{}, err
	}
	start := time.Now()
	var done atomic.Int64
	done.Store(int64(pr.stats.Resumed))
	if opt.Progress > 0 {
		stop := make(chan struct{})
		finished := make(chan struct{})
		go func() {
			defer close(finished)
			runProgressLoop(opt, pr.stats, &done, stop)
		}()
		// Wait the ticker out so no Logf call outlives Run.
		defer func() { close(stop); <-finished }()
	}
	var putErr error
	err = pr.plan.RunCells(pr.missing(), workers, func(cr *sweep.CellResult) {
		if pr.store != nil {
			if err := pr.store.Put(cr); err != nil && putErr == nil {
				putErr = err
			}
		}
		pr.camp.Cells[cr.Index] = *cr
		pr.stats.Executed++
		done.Add(1)
	})
	if err == nil {
		err = putErr
	}
	if err != nil {
		return nil, pr.stats, err
	}
	pr.camp.Elapsed = time.Since(start)
	return pr.camp, pr.stats, nil
}

// runProgressLoop is the in-process analogue of the coordinator's
// progress summary: one line per interval with completion, rate and ETA,
// until the runner closes stop.
func runProgressLoop(opt Options, stats RunStats, done *atomic.Int64, stop <-chan struct{}) {
	rate := obs.NewRateEWMA(0)
	t := time.NewTicker(opt.Progress)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			d := done.Load()
			rate.Observe(float64(d), now)
			line := fmt.Sprintf("progress: %d/%d done (%d resumed)", d, stats.Cells, stats.Resumed)
			if r := rate.Rate(); r > 0 {
				line += fmt.Sprintf(", %.2f cells/s", r)
			}
			if eta, ok := rate.ETA(float64(stats.Cells) - float64(d)); ok {
				line += fmt.Sprintf(", eta %s", eta.Round(time.Second))
			}
			opt.logf("%s", line)
		}
	}
}
