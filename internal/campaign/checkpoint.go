package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/p2prepro/locaware/internal/sweep"
)

// checkpointVersion is the on-disk format version; files with any other
// version are skipped (and re-run) rather than guessed at.
const checkpointVersion = 1

// checkpointFile is the JSON document a Store writes per finished cell.
type checkpointFile struct {
	Version  int              `json:"version"`
	SpecHash string           `json:"spec_hash"`
	Cell     sweep.CellResult `json:"cell"`
}

// Store is a content-addressed checkpoint directory: one JSON file per
// finished grid cell, bound to one campaign by its content hash. Writes
// go through a temp file and an atomic rename, so a crash mid-write
// leaves either the previous file or none — never a torn one. Load is
// forgiving by design: a corrupted, truncated or foreign file is
// reported and skipped, which simply re-runs that cell, because every
// cell is recomputable from the plan alone.
type Store struct {
	dir  string
	hash string
}

// OpenStore opens (creating if needed) a checkpoint directory bound to
// the campaign with the given content hash.
func OpenStore(dir, specHash string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("campaign: checkpoint store needs a directory")
	}
	if specHash == "" {
		return nil, fmt.Errorf("campaign: checkpoint store needs a campaign hash")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: creating checkpoint dir: %w", err)
	}
	return &Store{dir: dir, hash: specHash}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the checkpoint file path for a cell index.
func (s *Store) Path(cell int) string {
	return filepath.Join(s.dir, fmt.Sprintf("cell_%06d.json", cell))
}

// Put persists one finished cell: the document is written to a temp file
// in the same directory and renamed into place, so readers (and crashes)
// only ever observe complete files. An existing checkpoint for the cell
// is replaced.
func (s *Store) Put(cr *sweep.CellResult) error {
	if cr == nil {
		return fmt.Errorf("campaign: nil cell result")
	}
	data, err := json.Marshal(checkpointFile{Version: checkpointVersion, SpecHash: s.hash, Cell: *cr})
	if err != nil {
		return fmt.Errorf("campaign: encoding checkpoint for cell %d: %w", cr.Index, err)
	}
	tmp, err := os.CreateTemp(s.dir, ".cell_*.tmp")
	if err != nil {
		return fmt.Errorf("campaign: creating checkpoint temp file: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("campaign: writing checkpoint for cell %d: %w", cr.Index, werr)
	}
	if err := os.Rename(tmp.Name(), s.Path(cr.Index)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: committing checkpoint for cell %d: %w", cr.Index, err)
	}
	return nil
}

// Load scans the directory and returns every readable cell checkpoint
// belonging to this campaign, keyed by cell index, plus one warning per
// file it had to skip: unparseable JSON (corrupted or truncated), an
// unknown format version, a foreign campaign hash, or an index that
// disagrees with the filename. Skipped cells are simply recomputed —
// Load never fails the campaign over a bad file.
func (s *Store) Load() (map[int]*sweep.CellResult, []string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: reading checkpoint dir: %w", err)
	}
	cells := make(map[int]*sweep.CellResult)
	var warnings []string
	skip := func(name, reason string) {
		warnings = append(warnings, fmt.Sprintf("checkpoint %s: %s (cell will re-run)", name, reason))
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "cell_%d.json", &idx); err != nil {
			continue // temp files and unrelated content are not checkpoints
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		var fileIdx int
		fmt.Sscanf(name, "cell_%d.json", &fileIdx)
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			skip(name, fmt.Sprintf("unreadable: %v", err))
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		var cf checkpointFile
		if err := dec.Decode(&cf); err != nil {
			skip(name, fmt.Sprintf("corrupted or truncated: %v", err))
			continue
		}
		if cf.Version != checkpointVersion {
			skip(name, fmt.Sprintf("format version %d, want %d", cf.Version, checkpointVersion))
			continue
		}
		if cf.SpecHash != s.hash {
			skip(name, fmt.Sprintf("belongs to campaign %s, this one is %s", shortHash(cf.SpecHash), shortHash(s.hash)))
			continue
		}
		if cf.Cell.Index != fileIdx {
			skip(name, fmt.Sprintf("carries cell index %d", cf.Cell.Index))
			continue
		}
		cr := cf.Cell
		cells[cr.Index] = &cr
	}
	return cells, warnings, nil
}

// shortHash abbreviates a content hash for human-facing messages.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	if h == "" {
		return "(none)"
	}
	return h
}
