// Package keywords models filenames and keyword queries as defined in §3.3
// of the Locaware paper: a filename f is a set of K keywords drawn from a
// global pool; a query q is a random subset of 1..K of those keywords, and
// q is satisfied by any file whose filename contains all of q's keywords.
//
// The paper's evaluation uses a pool of 9000 keywords and filenames of
// exactly 3 keywords.
package keywords

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Keyword is a single search term.
type Keyword string

// Filename is a file's name, decomposed into its keywords ("filenames are
// broken into keywords following predefined rules", §3.1). The canonical
// string form joins the sorted keywords with underscores; it is computed
// once at construction because the simulator hot path keys storage and
// caches by it on every hit and reverse-path hop.
type Filename struct {
	kws  []Keyword
	name string
}

// NewFilename builds a filename from keywords, deduplicating and sorting
// them so equal keyword sets compare equal.
func NewFilename(kws ...Keyword) Filename {
	out := make([]Keyword, 0, len(kws))
outer:
	for _, k := range kws {
		if k == "" {
			continue
		}
		for _, have := range out {
			if have == k {
				continue outer
			}
		}
		out = append(out, k)
	}
	// Insertion sort: filenames hold a handful of keywords and a manual
	// sort avoids sort.Slice's reflection swapper allocation.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return Filename{kws: out, name: joinKeywords(out)}
}

func joinKeywords(kws []Keyword) string {
	switch len(kws) {
	case 0:
		return ""
	case 1:
		return string(kws[0])
	}
	n := len(kws) - 1
	for _, k := range kws {
		n += len(k)
	}
	var b strings.Builder
	b.Grow(n)
	for i, k := range kws {
		if i > 0 {
			b.WriteByte('_')
		}
		b.WriteString(string(k))
	}
	return b.String()
}

// ParseFilename tokenises a canonical filename string back into keywords —
// the "predefined rules" of §3.1 (split on underscores, lower-case).
func ParseFilename(s string) Filename {
	parts := strings.Split(strings.ToLower(s), "_")
	kws := make([]Keyword, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			kws = append(kws, Keyword(p))
		}
	}
	return NewFilename(kws...)
}

// Keywords returns the filename's keywords in canonical order.
func (f Filename) Keywords() []Keyword {
	out := make([]Keyword, len(f.kws))
	copy(out, f.kws)
	return out
}

// K returns the number of keywords in the filename.
func (f Filename) K() int { return len(f.kws) }

// KeywordAt returns the i-th keyword in canonical order without copying
// the keyword slice (the allocation-free counterpart of Keywords).
func (f Filename) KeywordAt(i int) Keyword { return f.kws[i] }

// String returns the canonical filename string (precomputed at
// construction, so calls are allocation-free).
func (f Filename) String() string { return f.name }

// Contains reports whether the filename contains keyword k.
func (f Filename) Contains(k Keyword) bool {
	i := sort.Search(len(f.kws), func(i int) bool { return f.kws[i] >= k })
	return i < len(f.kws) && f.kws[i] == k
}

// Matches reports whether the filename satisfies query q: every query
// keyword is contained in the filename (§3.1: "q can be satisfied by any
// file f which filename contains all keywords of q").
func (f Filename) Matches(q Query) bool {
	if len(q.Kws) == 0 {
		return false
	}
	for _, k := range q.Kws {
		if !f.Contains(k) {
			return false
		}
	}
	return true
}

// Query is a keyword query: 1..K keywords from some target filename (§3.3).
type Query struct {
	Kws []Keyword
}

// NewQuery builds a query from keywords, deduplicated and sorted.
func NewQuery(kws ...Keyword) Query {
	f := NewFilename(kws...)
	return Query{Kws: f.kws}
}

// Strings returns the query keywords as plain strings (for Bloom filter
// membership tests).
func (q Query) Strings() []string {
	out := make([]string, len(q.Kws))
	for i, k := range q.Kws {
		out[i] = string(k)
	}
	return out
}

// String renders the query.
func (q Query) String() string {
	return "q{" + strings.Join(q.Strings(), ",") + "}"
}

// AppendString appends String()'s rendering to b without intermediate
// allocations, for callers formatting into a reused scratch buffer.
func (q Query) AppendString(b []byte) []byte {
	b = append(b, "q{"...)
	for i, k := range q.Kws {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, string(k)...)
	}
	return append(b, '}')
}

// ExtractQuery draws a query of 1..K random keywords from filename f
// ("to express each query, we randomly choose 1 to 3 keywords from the
// queried filename", §5.1).
func ExtractQuery(f Filename, r *rand.Rand) Query {
	k := f.K()
	if k == 0 {
		return Query{}
	}
	x := 1 + r.Intn(k)
	perm := r.Perm(k)
	kws := make([]Keyword, 0, x)
	for _, idx := range perm[:x] {
		kws = append(kws, f.kws[idx])
	}
	return NewQuery(kws...)
}

// Pool is a fixed universe of keywords (the paper's pool of 9000).
type Pool struct {
	kws []Keyword
}

// NewPool generates n synthetic keywords, deterministically.
func NewPool(n int) *Pool {
	kws := make([]Keyword, n)
	for i := range kws {
		kws[i] = Keyword(fmt.Sprintf("kw%05d", i))
	}
	return &Pool{kws: kws}
}

// Size returns the pool's cardinality.
func (p *Pool) Size() int { return len(p.kws) }

// Keyword returns the i-th keyword.
func (p *Pool) Keyword(i int) Keyword { return p.kws[i] }

// RandomFilename draws a filename of exactly k distinct keywords from the
// pool ("each filename is formed of 3 keywords, randomly chosen from a pool
// of 9000", §5.1).
func (p *Pool) RandomFilename(k int, r *rand.Rand) Filename {
	if k > len(p.kws) {
		k = len(p.kws)
	}
	chosen := make([]Keyword, 0, k)
	seen := make(map[int]bool, k)
	for len(chosen) < k {
		i := r.Intn(len(p.kws))
		if seen[i] {
			continue
		}
		seen[i] = true
		chosen = append(chosen, p.kws[i])
	}
	return NewFilename(chosen...)
}
