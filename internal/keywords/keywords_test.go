package keywords

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFilenameCanonical(t *testing.T) {
	a := NewFilename("zebra", "apple", "mango")
	b := NewFilename("mango", "zebra", "apple")
	if a.String() != b.String() {
		t.Fatalf("order-sensitive filenames: %q vs %q", a, b)
	}
	if a.String() != "apple_mango_zebra" {
		t.Fatalf("canonical form = %q", a)
	}
	if a.K() != 3 {
		t.Fatalf("K = %d", a.K())
	}
}

func TestNewFilenameDedupAndEmpty(t *testing.T) {
	f := NewFilename("dup", "dup", "", "other")
	if f.K() != 2 {
		t.Fatalf("K = %d after dedup, want 2", f.K())
	}
	empty := NewFilename()
	if empty.K() != 0 || empty.String() != "" {
		t.Fatal("empty filename misbehaves")
	}
}

func TestParseFilenameRoundTrip(t *testing.T) {
	f := NewFilename("red", "green", "blue")
	g := ParseFilename(f.String())
	if f.String() != g.String() {
		t.Fatalf("round trip: %q -> %q", f, g)
	}
	h := ParseFilename("  Mixed_CASE__extra  ")
	if !h.Contains("mixed") || !h.Contains("case") || !h.Contains("extra") {
		t.Fatalf("tokenizer mangled input: %v", h.Keywords())
	}
	if h.K() != 3 {
		t.Fatalf("K = %d", h.K())
	}
}

func TestContains(t *testing.T) {
	f := NewFilename("alpha", "beta", "gamma")
	for _, k := range []Keyword{"alpha", "beta", "gamma"} {
		if !f.Contains(k) {
			t.Fatalf("Contains(%q) false", k)
		}
	}
	if f.Contains("delta") || f.Contains("") {
		t.Fatal("spurious Contains")
	}
}

func TestMatches(t *testing.T) {
	f := NewFilename("red", "green", "blue")
	cases := []struct {
		q    Query
		want bool
	}{
		{NewQuery("red"), true},
		{NewQuery("red", "blue"), true},
		{NewQuery("red", "green", "blue"), true},
		{NewQuery("red", "yellow"), false},
		{NewQuery("yellow"), false},
		{Query{}, false}, // empty query matches nothing
	}
	for _, c := range cases {
		if got := f.Matches(c.q); got != c.want {
			t.Errorf("Matches(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestKeywordsReturnsCopy(t *testing.T) {
	f := NewFilename("a", "b")
	ks := f.Keywords()
	ks[0] = "mutated"
	if !f.Contains("a") {
		t.Fatal("Keywords() exposed internal storage")
	}
}

func TestQueryStringForms(t *testing.T) {
	q := NewQuery("b", "a")
	ss := q.Strings()
	if len(ss) != 2 || ss[0] != "a" || ss[1] != "b" {
		t.Fatalf("Strings = %v", ss)
	}
	if q.String() != "q{a,b}" {
		t.Fatalf("String = %q", q.String())
	}
}

func TestExtractQuerySubset(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := NewFilename("one", "two", "three")
	for i := 0; i < 500; i++ {
		q := ExtractQuery(f, r)
		if len(q.Kws) < 1 || len(q.Kws) > 3 {
			t.Fatalf("query size %d outside 1..3", len(q.Kws))
		}
		if !f.Matches(q) {
			t.Fatalf("extracted query %v does not match source filename", q)
		}
	}
}

func TestExtractQueryCoversAllSizes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := NewFilename("one", "two", "three")
	sizes := map[int]int{}
	for i := 0; i < 3000; i++ {
		sizes[len(ExtractQuery(f, r).Kws)]++
	}
	for x := 1; x <= 3; x++ {
		if sizes[x] == 0 {
			t.Fatalf("size %d never drawn: %v", x, sizes)
		}
	}
}

func TestExtractQueryEmptyFilename(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	q := ExtractQuery(Filename{}, r)
	if len(q.Kws) != 0 {
		t.Fatal("query from empty filename should be empty")
	}
}

func TestPoolPaperScale(t *testing.T) {
	p := NewPool(9000)
	if p.Size() != 9000 {
		t.Fatalf("size = %d", p.Size())
	}
	if p.Keyword(0) == p.Keyword(1) {
		t.Fatal("pool keywords not distinct")
	}
	r := rand.New(rand.NewSource(4))
	f := p.RandomFilename(3, r)
	if f.K() != 3 {
		t.Fatalf("filename K = %d, want 3", f.K())
	}
}

func TestRandomFilenameDistinctKeywords(t *testing.T) {
	p := NewPool(10)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		f := p.RandomFilename(3, r)
		if f.K() != 3 {
			t.Fatalf("duplicate keywords drawn: %v", f)
		}
	}
	// k larger than pool clamps.
	f := p.RandomFilename(50, r)
	if f.K() != 10 {
		t.Fatalf("clamp failed: K = %d", f.K())
	}
}

func TestPoolDeterministic(t *testing.T) {
	a, b := NewPool(100), NewPool(100)
	for i := 0; i < 100; i++ {
		if a.Keyword(i) != b.Keyword(i) {
			t.Fatal("pool not deterministic")
		}
	}
}

// Property: any subset query of a filename's keywords matches it; any query
// containing a foreign keyword does not.
func TestMatchesQuick(t *testing.T) {
	prop := func(mask uint8, foreign bool) bool {
		f := NewFilename("k1", "k2", "k3")
		var kws []Keyword
		all := f.Keywords()
		for i := 0; i < 3; i++ {
			if mask&(1<<i) != 0 {
				kws = append(kws, all[i])
			}
		}
		if foreign {
			kws = append(kws, "foreign")
		}
		q := NewQuery(kws...)
		if len(q.Kws) == 0 {
			return !f.Matches(q)
		}
		return f.Matches(q) == !foreign
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
