package metrics

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
)

func rec(msgs int, success bool, rtt float64, same bool, hops int) QueryRecord {
	return QueryRecord{Messages: msgs, Success: success, DownloadRTT: rtt, SameLocality: same, Hops: hops}
}

// retaining returns a full-fidelity collector (record replay mode).
func retaining() *Collector {
	return NewCollectorWith(CollectorConfig{RetainRecords: true})
}

func TestRecordAndAggregates(t *testing.T) {
	c := NewCollector() // pure streaming: scalar metrics need no records
	c.Record(rec(10, true, 100, true, 2))
	c.Record(rec(20, false, 0, false, 0))
	c.Record(rec(30, true, 200, false, 4))

	if c.Submitted() != 3 {
		t.Fatalf("submitted = %d", c.Submitted())
	}
	if c.TotalMessages() != 60 {
		t.Fatalf("total msgs = %d", c.TotalMessages())
	}
	if got := c.SuccessRate(); got != 2.0/3.0 {
		t.Fatalf("success = %v", got)
	}
	if got := c.AvgMessagesPerQuery(); got != 20 {
		t.Fatalf("msgs/q = %v", got)
	}
	if got := c.AvgDownloadRTT(); got != 150 {
		t.Fatalf("rtt = %v", got)
	}
	if got := c.SameLocalityRate(); got != 0.5 {
		t.Fatalf("same-locality = %v", got)
	}
	if got := c.AvgHops(); got != 3 {
		t.Fatalf("hops = %v", got)
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
	if c.Records() != nil {
		t.Fatal("streaming collector must not retain records")
	}
}

func TestEmptyCollector(t *testing.T) {
	c := retaining()
	if c.SuccessRate() != 0 || c.AvgMessagesPerQuery() != 0 || c.AvgDownloadRTT() != 0 ||
		c.SameLocalityRate() != 0 || c.AvgHops() != 0 {
		t.Fatal("empty collector should return zeros")
	}
	if len(c.Windows([]int{10})) != 0 {
		t.Fatal("windows over zero records should be empty")
	}
}

func TestRecordAssignsSequentialIDs(t *testing.T) {
	c := retaining()
	for i := 0; i < 5; i++ {
		c.Record(rec(1, true, 1, false, 1))
	}
	rs := c.Records()
	for i, r := range rs {
		if r.ID != uint64(i+1) {
			t.Fatalf("record %d has id %d", i, r.ID)
		}
	}
	rs[0].Messages = 999
	if c.Records()[0].Messages == 999 {
		t.Fatal("Records exposed internal storage")
	}
}

func TestWindows(t *testing.T) {
	c := retaining()
	// 10 queries: first 5 succeed with rtt 100 and 10 msgs, last 5 fail
	// with 50 msgs.
	for i := 0; i < 5; i++ {
		c.Record(rec(10, true, 100, true, 1))
	}
	for i := 0; i < 5; i++ {
		c.Record(rec(50, false, 0, false, 0))
	}
	ws := c.Windows([]int{5, 10})
	if len(ws) != 2 {
		t.Fatalf("windows = %d", len(ws))
	}
	if ws[0].End != 5 || ws[0].SuccessRate != 1 || ws[0].MessagesPerQuery != 10 || ws[0].DownloadRTT != 100 {
		t.Fatalf("w0 = %+v", ws[0])
	}
	if ws[1].End != 10 || ws[1].SuccessRate != 0 || ws[1].MessagesPerQuery != 50 || ws[1].DownloadRTT != 0 {
		t.Fatalf("w1 = %+v", ws[1])
	}
}

func TestWindowsSkipsBadCheckpoints(t *testing.T) {
	c := retaining()
	for i := 0; i < 4; i++ {
		c.Record(rec(1, true, 1, false, 1))
	}
	// Duplicates and non-ascending entries are skipped; the trailing 99
	// clamps to the recorded count (4), which is already covered, so no
	// partial window appears.
	ws := c.Windows([]int{2, 2, 1, 4, 99})
	if len(ws) != 2 || ws[0].End != 2 || ws[1].End != 4 {
		t.Fatalf("windows = %+v", ws)
	}
}

// TestWindowsPartialFinal locks the truncation contract: a checkpoint
// beyond the recorded count yields a partial final window ending at the
// actual count instead of silently dropping the figure's last row.
func TestWindowsPartialFinal(t *testing.T) {
	c := retaining()
	for i := 0; i < 5; i++ {
		c.Record(rec(10, true, 100, true, 1))
	}
	for i := 0; i < 2; i++ {
		c.Record(rec(40, false, 0, false, 0))
	}
	ws := c.Windows([]int{5, 10})
	if len(ws) != 2 {
		t.Fatalf("windows = %+v", ws)
	}
	if ws[1].End != 7 || ws[1].MessagesPerQuery != 40 || ws[1].SuccessRate != 0 {
		t.Fatalf("partial final window = %+v", ws[1])
	}

	// The same truncated run served by the streaming path must agree.
	s := NewCollectorWith(CollectorConfig{Checkpoints: []int{5, 10}})
	for i := 0; i < 5; i++ {
		s.Record(rec(10, true, 100, true, 1))
	}
	for i := 0; i < 2; i++ {
		s.Record(rec(40, false, 0, false, 0))
	}
	if got := s.Windows([]int{5, 10}); !reflect.DeepEqual(got, ws) {
		t.Fatalf("streaming partial = %+v, replay = %+v", got, ws)
	}
	// Cumulative windows keep the documented drop-beyond-count contract.
	if cum := s.CumulativeWindows([]int{5, 10}); len(cum) != 1 || cum[0].End != 5 {
		t.Fatalf("cumulative truncation = %+v", cum)
	}
}

func TestCumulativeWindows(t *testing.T) {
	c := retaining()
	c.Record(rec(10, true, 100, false, 1)) // q1
	c.Record(rec(30, false, 0, false, 0))  // q2
	c.Record(rec(20, true, 200, false, 1)) // q3
	ws := c.CumulativeWindows([]int{1, 2, 3, 10})
	if len(ws) != 3 {
		t.Fatalf("windows = %d", len(ws))
	}
	if ws[0].SuccessRate != 1 || ws[0].MessagesPerQuery != 10 {
		t.Fatalf("w0 = %+v", ws[0])
	}
	if ws[1].SuccessRate != 0.5 || ws[1].MessagesPerQuery != 20 {
		t.Fatalf("w1 = %+v", ws[1])
	}
	if ws[2].SuccessRate != 2.0/3.0 || ws[2].DownloadRTT != 150 {
		t.Fatalf("w2 = %+v", ws[2])
	}
}

// sameWindows compares window slices bit-for-bit, treating empty and nil
// as equal (Window is comparable, so slices.Equal is exact equality).
func sameWindows(a, b []Window) bool { return slices.Equal(a, b) }

// TestStreamingMatchesReplay is the equivalence law of the refactor: on any
// record stream, windows sealed incrementally during the run are
// bit-identical to windows replayed from retained records afterwards.
func TestStreamingMatchesReplay(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	grid := []int{10, 25, 40, 80, 120}
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(130) // sometimes short of the last checkpoints
		c := NewCollectorWith(CollectorConfig{Checkpoints: grid, RetainRecords: true})
		for i := 0; i < n; i++ {
			c.Record(rec(r.Intn(50), r.Intn(3) > 0, 10+490*r.Float64(), r.Intn(2) == 0, r.Intn(7)))
		}
		if got, want := c.Windows(grid), c.replayWindows(grid); !sameWindows(got, want) {
			t.Fatalf("trial %d (n=%d): streaming windows %+v != replay %+v", trial, n, got, want)
		}
		if got, want := c.CumulativeWindows(grid), c.replayCumulativeWindows(grid); !sameWindows(got, want) {
			t.Fatalf("trial %d (n=%d): streaming cumulative %+v != replay %+v", trial, n, got, want)
		}
	}
}

func TestWindowsRequireGridOrRecords(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ad-hoc Windows on a pure streaming collector must panic")
		}
	}()
	c := NewCollectorWith(CollectorConfig{Checkpoints: []int{5}})
	c.Record(rec(1, true, 1, false, 1))
	c.Windows([]int{3}) // not the configured grid, no records to replay
}

func TestCheckpointValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("misordered checkpoints must panic")
		}
	}()
	NewCollectorWith(CollectorConfig{Checkpoints: []int{10, 5}})
}

func TestAggregateWindows(t *testing.T) {
	trial := func(sr, mpq, rtt float64) []Window {
		return []Window{
			{End: 50, SuccessRate: sr, MessagesPerQuery: mpq, DownloadRTT: rtt},
			{End: 100, SuccessRate: sr / 2, MessagesPerQuery: mpq, DownloadRTT: rtt},
		}
	}
	agg := AggregateWindows([][]Window{trial(0.4, 10, 100), trial(0.6, 20, 200)})
	if len(agg) != 2 {
		t.Fatalf("aggregated %d checkpoints", len(agg))
	}
	if agg[0].End != 50 || agg[1].End != 100 {
		t.Fatalf("checkpoint order: %+v", agg)
	}
	w := agg[0]
	if w.SuccessRate.N != 2 || w.SuccessRate.Mean != 0.5 {
		t.Fatalf("success summary = %+v", w.SuccessRate)
	}
	if w.MessagesPerQuery.Mean != 15 || w.DownloadRTT.Mean != 150 {
		t.Fatalf("window summary = %+v", w)
	}
	if w.SuccessRate.StdDev == 0 || w.SuccessRate.CI95() == 0 {
		t.Fatal("two distinct trials must have spread")
	}
}

func TestAggregateWindowsRaggedTrials(t *testing.T) {
	a := []Window{{End: 10, SuccessRate: 1}, {End: 20, SuccessRate: 1}}
	b := []Window{{End: 10, SuccessRate: 0}} // shorter trial
	agg := AggregateWindows([][]Window{a, b})
	if len(agg) != 2 {
		t.Fatalf("aggregated %d checkpoints", len(agg))
	}
	if agg[0].SuccessRate.N != 2 || agg[0].SuccessRate.Mean != 0.5 {
		t.Fatalf("shared checkpoint = %+v", agg[0].SuccessRate)
	}
	if agg[1].SuccessRate.N != 1 || agg[1].SuccessRate.Mean != 1 {
		t.Fatalf("ragged checkpoint = %+v", agg[1].SuccessRate)
	}
}

func TestAggregateWindowsEmpty(t *testing.T) {
	if got := AggregateWindows(nil); len(got) != 0 {
		t.Fatalf("AggregateWindows(nil) = %v", got)
	}
	if got := AggregateWindows([][]Window{nil, {}}); len(got) != 0 {
		t.Fatalf("AggregateWindows(empty) = %v", got)
	}
}

func TestPhaseWindows(t *testing.T) {
	c := NewCollectorWith(CollectorConfig{Phases: []PhaseMark{
		{Name: "calm", End: 2}, {Name: "storm", End: 4}, {Name: "after", End: 6},
	}})
	c.Record(QueryRecord{Messages: 10, Success: true, DownloadRTT: 100, SameLocality: true, FromCache: true, Hops: 2})
	c.Record(QueryRecord{Messages: 20})
	c.Record(QueryRecord{Messages: 2, Success: true, DownloadRTT: 50, Hops: 4})
	c.Record(QueryRecord{Messages: 4, Success: true, DownloadRTT: 70, SameLocality: true, Hops: 2})
	c.Record(QueryRecord{Messages: 8})

	// Two sealed phases plus the in-progress partial third.
	ws := c.PhaseWindows()
	if len(ws) != 3 {
		t.Fatalf("got %d phase windows, want 3: %+v", len(ws), ws)
	}
	calm := ws[0]
	if calm.Name != "calm" || calm.Start != 0 || calm.End != 2 || calm.Queries != 2 {
		t.Fatalf("calm span = %+v", calm)
	}
	if calm.MessagesPerQuery != 15 || calm.SuccessRate != 0.5 || calm.DownloadRTT != 100 {
		t.Fatalf("calm figures = %+v", calm)
	}
	if calm.SameLocalityRate != 1 || calm.CacheHitRate != 1 || calm.AvgHops != 2 {
		t.Fatalf("calm secondary = %+v", calm)
	}
	storm := ws[1]
	if storm.Name != "storm" || storm.Start != 2 || storm.End != 4 || storm.Queries != 2 {
		t.Fatalf("storm span = %+v", storm)
	}
	if storm.SuccessRate != 1 || storm.DownloadRTT != 60 || storm.AvgHops != 3 {
		t.Fatalf("storm figures = %+v", storm)
	}
	if storm.SameLocalityRate != 0.5 || storm.CacheHitRate != 0 {
		t.Fatalf("storm secondary = %+v", storm)
	}
	partial := ws[2]
	if partial.Name != "after" || partial.Start != 4 || partial.End != 5 || partial.Queries != 1 {
		t.Fatalf("partial span = %+v", partial)
	}
	if partial.MessagesPerQuery != 8 || partial.SuccessRate != 0 {
		t.Fatalf("partial figures = %+v", partial)
	}

	// Completing the run seals the final phase at its mark.
	c.Record(QueryRecord{Messages: 6, Success: true, DownloadRTT: 30, Hops: 1})
	ws = c.PhaseWindows()
	if len(ws) != 3 || ws[2].End != 6 || ws[2].Queries != 2 {
		t.Fatalf("final phase = %+v", ws[len(ws)-1])
	}
	if ws[2].MessagesPerQuery != 7 || ws[2].SuccessRate != 0.5 || ws[2].DownloadRTT != 30 {
		t.Fatalf("final figures = %+v", ws[2])
	}
}

func TestPhaseWindowsIndependentOfCheckpoints(t *testing.T) {
	// Phase marks and figure checkpoints are separate grids over the same
	// stream; configuring both must not perturb either.
	grid := []int{2, 4}
	with := NewCollectorWith(CollectorConfig{Checkpoints: grid, Phases: []PhaseMark{{Name: "all", End: 4}}})
	without := NewCollectorWith(CollectorConfig{Checkpoints: grid})
	recs := []QueryRecord{
		{Messages: 3, Success: true, DownloadRTT: 90, Hops: 1},
		{Messages: 5},
		{Messages: 7, Success: true, DownloadRTT: 10, Hops: 2},
		{Messages: 9},
	}
	for _, r := range recs {
		with.Record(r)
		without.Record(r)
	}
	a, b := with.Windows(grid), without.Windows(grid)
	if len(a) != len(b) {
		t.Fatalf("window counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("window %d drifted with phases configured: %+v vs %+v", i, a[i], b[i])
		}
	}
	ws := with.PhaseWindows()
	if len(ws) != 1 || ws[0].Queries != 4 || ws[0].MessagesPerQuery != 6 || ws[0].SuccessRate != 0.5 {
		t.Fatalf("phase window = %+v", ws)
	}
	if without.PhaseWindows() != nil {
		t.Fatal("collector without phase marks invented phase windows")
	}
}

func TestPhaseMarkValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("misordered phase marks must panic")
		}
	}()
	NewCollectorWith(CollectorConfig{Phases: []PhaseMark{{Name: "a", End: 5}, {Name: "b", End: 5}}})
}

func TestAggregatePhases(t *testing.T) {
	trials := [][]PhaseWindow{
		{
			{Name: "calm", Start: 0, End: 4, Queries: 4, SuccessRate: 0.5, MessagesPerQuery: 6, DownloadRTT: 100, SameLocalityRate: 0.5, CacheHitRate: 0.25, AvgHops: 2},
			{Name: "wave", Start: 4, End: 8, Queries: 4, SuccessRate: 0.25, MessagesPerQuery: 8, DownloadRTT: 140, SameLocalityRate: 0, CacheHitRate: 0.5, AvgHops: 3},
		},
		{
			{Name: "calm", Start: 0, End: 4, Queries: 4, SuccessRate: 0.7, MessagesPerQuery: 4, DownloadRTT: 80, SameLocalityRate: 0.3, CacheHitRate: 0.75, AvgHops: 4},
			{Name: "wave", Start: 4, End: 8, Queries: 4, SuccessRate: 0.35, MessagesPerQuery: 6, DownloadRTT: 120, SameLocalityRate: 0.2, CacheHitRate: 0.7, AvgHops: 5},
		},
	}
	ps := AggregatePhases(trials)
	if len(ps) != 2 {
		t.Fatalf("got %d phase stats, want 2", len(ps))
	}
	calm := ps[0]
	if calm.Name != "calm" || calm.Start != 0 || calm.End != 4 {
		t.Fatalf("phase 0 identity = %+v", calm)
	}
	if calm.SuccessRate.N != 2 || calm.SuccessRate.Mean != 0.6 {
		t.Fatalf("calm success = %+v", calm.SuccessRate)
	}
	if calm.MessagesPerQuery.Mean != 5 || calm.DownloadRTT.Mean != 90 {
		t.Fatalf("calm msgs/rtt = %+v / %+v", calm.MessagesPerQuery, calm.DownloadRTT)
	}
	if ps[1].Name != "wave" || ps[1].SuccessRate.Mean != 0.3 {
		t.Fatalf("wave = %+v", ps[1])
	}
}

func TestAggregatePhasesRagged(t *testing.T) {
	trials := [][]PhaseWindow{
		{{Name: "a", End: 5, Queries: 5, SuccessRate: 0.4}},
		{{Name: "a", End: 5, Queries: 5, SuccessRate: 0.6}, {Name: "b", Start: 5, End: 10, Queries: 5, SuccessRate: 1}},
	}
	ps := AggregatePhases(trials)
	if len(ps) != 2 {
		t.Fatalf("got %d phase stats, want 2", len(ps))
	}
	if ps[0].SuccessRate.N != 2 || ps[0].SuccessRate.Mean != 0.5 {
		t.Fatalf("phase a = %+v", ps[0].SuccessRate)
	}
	if ps[1].SuccessRate.N != 1 || ps[1].SuccessRate.Mean != 1 {
		t.Fatalf("truncated trial must shrink the sample, got %+v", ps[1].SuccessRate)
	}
}

func TestAggregatePhasesEmpty(t *testing.T) {
	if got := AggregatePhases(nil); len(got) != 0 {
		t.Fatalf("AggregatePhases(nil) = %v", got)
	}
}
