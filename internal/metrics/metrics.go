// Package metrics implements the measurement pipeline behind §5's three
// performance metrics:
//
//   - download distance — average RTT from requester to the chosen provider;
//   - search traffic — total messages produced by a query;
//   - success rate — satisfied queries / submitted queries.
//
// Each figure plots its metric against the number of queries submitted, so
// the collector both accumulates per-query records and exposes windowed
// series keyed by cumulative query count.
package metrics

import (
	"fmt"

	"github.com/p2prepro/locaware/internal/stats"
)

// QueryRecord is the outcome of one query.
type QueryRecord struct {
	// ID is the query's sequence number (1-based submission order).
	ID uint64
	// Messages is the number of overlay messages the query produced
	// (forwards + responses).
	Messages int
	// Success reports whether the query was satisfied.
	Success bool
	// DownloadRTT is the RTT in ms from requester to the chosen provider;
	// meaningful only when Success is true.
	DownloadRTT float64
	// SameLocality reports whether the chosen provider shared the
	// requester's locId.
	SameLocality bool
	// FromCache reports whether the hit came from a response index rather
	// than a peer's shared storage; meaningful only when Success is true.
	FromCache bool
	// Hops is the overlay hop count to the first hit (0 when unanswered).
	Hops int
}

// Collector accumulates query records for one protocol run.
type Collector struct {
	records []QueryRecord
	// messages counts all messages, including those of unanswered queries.
	totalMessages uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Record appends a query outcome.
func (c *Collector) Record(r QueryRecord) {
	r.ID = uint64(len(c.records) + 1)
	c.records = append(c.records, r)
	c.totalMessages += uint64(r.Messages)
}

// Submitted returns the number of queries recorded.
func (c *Collector) Submitted() int { return len(c.records) }

// TotalMessages returns the total message count across all queries.
func (c *Collector) TotalMessages() uint64 { return c.totalMessages }

// SuccessRate returns satisfied/submitted over the whole run.
func (c *Collector) SuccessRate() float64 {
	if len(c.records) == 0 {
		return 0
	}
	succ := 0
	for _, r := range c.records {
		if r.Success {
			succ++
		}
	}
	return float64(succ) / float64(len(c.records))
}

// AvgMessagesPerQuery returns mean messages per query over the whole run.
func (c *Collector) AvgMessagesPerQuery() float64 {
	if len(c.records) == 0 {
		return 0
	}
	return float64(c.totalMessages) / float64(len(c.records))
}

// AvgDownloadRTT returns the mean download distance over successful
// queries.
func (c *Collector) AvgDownloadRTT() float64 {
	var xs []float64
	for _, r := range c.records {
		if r.Success {
			xs = append(xs, r.DownloadRTT)
		}
	}
	return stats.Mean(xs)
}

// SameLocalityRate returns the fraction of successful downloads served from
// the requester's own locality.
func (c *Collector) SameLocalityRate() float64 {
	succ, same := 0, 0
	for _, r := range c.records {
		if r.Success {
			succ++
			if r.SameLocality {
				same++
			}
		}
	}
	if succ == 0 {
		return 0
	}
	return float64(same) / float64(succ)
}

// CacheHitRate returns the fraction of successful queries answered from a
// response index rather than shared storage — how much work index caching
// is actually doing.
func (c *Collector) CacheHitRate() float64 {
	succ, cached := 0, 0
	for _, r := range c.records {
		if r.Success {
			succ++
			if r.FromCache {
				cached++
			}
		}
	}
	if succ == 0 {
		return 0
	}
	return float64(cached) / float64(succ)
}

// AvgHops returns mean hops-to-hit over successful queries.
func (c *Collector) AvgHops() float64 {
	var xs []float64
	for _, r := range c.records {
		if r.Success {
			xs = append(xs, float64(r.Hops))
		}
	}
	return stats.Mean(xs)
}

// Records returns a copy of all query records.
func (c *Collector) Records() []QueryRecord {
	out := make([]QueryRecord, len(c.records))
	copy(out, c.records)
	return out
}

// Window aggregates one checkpoint of a figure series: the metric values
// over queries (prevEnd, End].
type Window struct {
	// End is the cumulative query count at the checkpoint (figure x value).
	End int
	// DownloadRTT is the mean download distance within the window.
	DownloadRTT float64
	// MessagesPerQuery is the mean per-query traffic within the window.
	MessagesPerQuery float64
	// SuccessRate is the within-window success fraction.
	SuccessRate float64
}

// Windows slices the record stream at the given cumulative-count
// checkpoints (ascending). Checkpoints beyond the recorded count are
// dropped.
func (c *Collector) Windows(checkpoints []int) []Window {
	var out []Window
	prev := 0
	for _, end := range checkpoints {
		if end > len(c.records) {
			break
		}
		if end <= prev {
			continue
		}
		w := Window{End: end}
		var msgs, succ int
		var rtts []float64
		for _, r := range c.records[prev:end] {
			msgs += r.Messages
			if r.Success {
				succ++
				rtts = append(rtts, r.DownloadRTT)
			}
		}
		n := end - prev
		w.MessagesPerQuery = float64(msgs) / float64(n)
		w.SuccessRate = float64(succ) / float64(n)
		w.DownloadRTT = stats.Mean(rtts)
		out = append(out, w)
		prev = end
	}
	return out
}

// CumulativeWindows computes the metrics over queries [0, end] for each
// checkpoint — the "effect of the number of queries" presentation used in
// the paper's figures.
func (c *Collector) CumulativeWindows(checkpoints []int) []Window {
	var out []Window
	for _, end := range checkpoints {
		if end > len(c.records) || end <= 0 {
			continue
		}
		w := Window{End: end}
		var msgs, succ int
		var rtts []float64
		for _, r := range c.records[:end] {
			msgs += r.Messages
			if r.Success {
				succ++
				rtts = append(rtts, r.DownloadRTT)
			}
		}
		w.MessagesPerQuery = float64(msgs) / float64(end)
		w.SuccessRate = float64(succ) / float64(end)
		w.DownloadRTT = stats.Mean(rtts)
		out = append(out, w)
	}
	return out
}

// String summarises the collector.
func (c *Collector) String() string {
	return fmt.Sprintf("metrics{n=%d success=%.3f msgs/q=%.1f rtt=%.1fms}",
		c.Submitted(), c.SuccessRate(), c.AvgMessagesPerQuery(), c.AvgDownloadRTT())
}
