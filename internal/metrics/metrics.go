// Package metrics implements the measurement pipeline behind §5's three
// performance metrics:
//
//   - download distance — average RTT from requester to the chosen provider;
//   - search traffic — total messages produced by a query;
//   - success rate — satisfied queries / submitted queries.
//
// Each figure plots its metric against the number of queries submitted, so
// the collector exposes windowed series keyed by cumulative query count.
//
// The collector is a streaming accumulator: every metric is maintained as a
// constant-size set of running sums and counters, and the per-checkpoint
// figure windows are sealed incrementally as the query count crosses each
// checkpoint. Collector state is therefore O(checkpoints), not O(queries),
// which is what lets a million-query run fit in memory. Full per-query
// records are available as an opt-in (CollectorConfig.RetainRecords) for
// trace tooling and ad-hoc replay; the streaming outputs are bit-identical
// to a replay over the retained records because both accumulate the same
// float64 sums in the same submission order.
package metrics

import (
	"fmt"
	"slices"
)

// QueryRecord is the outcome of one query.
type QueryRecord struct {
	// ID is the query's sequence number (1-based submission order).
	ID uint64
	// Messages is the number of overlay messages the query produced
	// (forwards + responses).
	Messages int
	// Success reports whether the query was satisfied.
	Success bool
	// DownloadRTT is the RTT in ms from requester to the chosen provider;
	// meaningful only when Success is true.
	DownloadRTT float64
	// SameLocality reports whether the chosen provider shared the
	// requester's locId.
	SameLocality bool
	// FromCache reports whether the hit came from a response index rather
	// than a peer's shared storage; meaningful only when Success is true.
	FromCache bool
	// Hops is the overlay hop count to the first hit (0 when unanswered).
	Hops int
}

// CollectorConfig configures the measurement plane of one run.
type CollectorConfig struct {
	// Checkpoints is the ascending list of cumulative query counts at which
	// figure windows are sealed. With checkpoints configured, Windows and
	// CumulativeWindows are served from streaming accumulators sealed during
	// the run; without them (and without RetainRecords) only the whole-run
	// scalar metrics are available.
	Checkpoints []int
	// Phases segments the query stream into named contiguous spans
	// (scenario phases): each mark closes the span (prevEnd, End] under its
	// name. Like checkpoint windows, phase windows are sealed by streaming
	// accumulators during the run — per-phase state is O(phases), never
	// O(queries) — and they carry the full metric set (PhaseWindow), not
	// just the three figure metrics. Ends must be ascending and positive.
	Phases []PhaseMark
	// RetainRecords keeps the full per-query record stream in memory, so
	// Records() works and Windows/CumulativeWindows accept arbitrary
	// checkpoint lists (replayed from the records). This is the
	// full-fidelity trace mode; memory grows O(queries).
	RetainRecords bool
}

// PhaseMark names the query count at which a scenario phase ends.
type PhaseMark struct {
	// Name identifies the phase in per-phase reports.
	Name string
	// End is the cumulative query count closing the phase (inclusive).
	End int
}

// windowAcc is the constant-size accumulator of one in-progress figure
// window. Sums are accumulated in submission order so sealed values are
// bit-identical to a replay over the same records.
type windowAcc struct {
	messages  int
	successes int
	rttSum    float64
}

// phaseAcc is the constant-size accumulator of one in-progress scenario
// phase; unlike the figure windows it tracks the full metric set.
type phaseAcc struct {
	queries   int
	messages  int
	successes int
	sameLoc   int
	fromCache int
	rttSum    float64
	hopsSum   float64
}

func (a *phaseAcc) add(r QueryRecord) {
	a.queries++
	a.messages += r.Messages
	if r.Success {
		a.successes++
		a.rttSum += r.DownloadRTT
		a.hopsSum += float64(r.Hops)
		if r.SameLocality {
			a.sameLoc++
		}
		if r.FromCache {
			a.fromCache++
		}
	}
}

// window converts the accumulator into a sealed PhaseWindow.
func (a *phaseAcc) window(name string, start, end int) PhaseWindow {
	w := PhaseWindow{Name: name, Start: start, End: end, Queries: a.queries}
	if a.queries > 0 {
		w.MessagesPerQuery = float64(a.messages) / float64(a.queries)
		w.SuccessRate = float64(a.successes) / float64(a.queries)
	}
	w.DownloadRTT = meanOrZero(a.rttSum, a.successes)
	w.AvgHops = meanOrZero(a.hopsSum, a.successes)
	if a.successes > 0 {
		w.SameLocalityRate = float64(a.sameLoc) / float64(a.successes)
		w.CacheHitRate = float64(a.fromCache) / float64(a.successes)
	}
	return w
}

// Collector accumulates query outcomes for one protocol run as O(1)
// streaming sums. It optionally retains full records (RetainRecords).
type Collector struct {
	cfg CollectorConfig

	// Whole-run streaming accumulators.
	submitted     int
	totalMessages uint64
	successes     int
	rttSum        float64
	sameLocality  int
	fromCache     int
	hopsSum       float64

	// Sealed per-checkpoint windows; nextCk indexes the first unsealed
	// checkpoint and win accumulates the window in progress.
	sealed    []Window
	cumSealed []Window
	nextCk    int
	win       windowAcc

	// Sealed scenario-phase windows; nextPhase indexes the first unsealed
	// phase mark and pacc accumulates the phase in progress.
	phaseSealed []PhaseWindow
	nextPhase   int
	pacc        phaseAcc

	// records is populated only in RetainRecords mode.
	records []QueryRecord
}

// NewCollector returns an empty streaming collector with no checkpoint grid
// and no record retention: all whole-run scalar metrics work in O(1) state,
// but Windows/CumulativeWindows need a grid (see NewCollectorWith).
func NewCollector() *Collector { return NewCollectorWith(CollectorConfig{}) }

// NewCollectorWith returns an empty collector for the given configuration.
// Checkpoints must be ascending and positive; out-of-order entries panic,
// since a misordered grid would silently corrupt every figure.
func NewCollectorWith(cfg CollectorConfig) *Collector {
	prev := 0
	for _, ck := range cfg.Checkpoints {
		if ck <= prev {
			panic(fmt.Sprintf("metrics: checkpoints must be ascending and positive, got %v", cfg.Checkpoints))
		}
		prev = ck
	}
	prev = 0
	for _, pm := range cfg.Phases {
		if pm.End <= prev {
			panic(fmt.Sprintf("metrics: phase marks must be ascending and positive, got %v", cfg.Phases))
		}
		prev = pm.End
	}
	c := &Collector{cfg: cfg}
	if n := len(cfg.Checkpoints); n > 0 {
		c.sealed = make([]Window, 0, n)
		c.cumSealed = make([]Window, 0, n)
	}
	if n := len(cfg.Phases); n > 0 {
		c.phaseSealed = make([]PhaseWindow, 0, n)
	}
	return c
}

// Config returns the collector's configuration.
func (c *Collector) Config() CollectorConfig { return c.cfg }

// Record folds a query outcome into the running sums (and stores it when
// records are retained).
func (c *Collector) Record(r QueryRecord) {
	c.submitted++
	r.ID = uint64(c.submitted)
	c.totalMessages += uint64(r.Messages)
	c.win.messages += r.Messages
	if r.Success {
		c.successes++
		c.rttSum += r.DownloadRTT
		c.hopsSum += float64(r.Hops)
		c.win.successes++
		c.win.rttSum += r.DownloadRTT
		if r.SameLocality {
			c.sameLocality++
		}
		if r.FromCache {
			c.fromCache++
		}
	}
	if c.cfg.RetainRecords {
		c.records = append(c.records, r)
	}
	// Seal the window if this query is the next checkpoint.
	if c.nextCk < len(c.cfg.Checkpoints) && c.submitted == c.cfg.Checkpoints[c.nextCk] {
		c.seal()
	}
	// Fold the record into the scenario phase in progress and seal it at
	// the phase boundary.
	if c.nextPhase < len(c.cfg.Phases) {
		c.pacc.add(r)
		if c.submitted == c.cfg.Phases[c.nextPhase].End {
			c.sealPhase()
		}
	}
}

// sealPhase closes the in-progress phase window at the current count.
func (c *Collector) sealPhase() {
	start := 0
	if n := len(c.phaseSealed); n > 0 {
		start = c.phaseSealed[n-1].End
	}
	c.phaseSealed = append(c.phaseSealed,
		c.pacc.window(c.cfg.Phases[c.nextPhase].Name, start, c.submitted))
	c.pacc = phaseAcc{}
	c.nextPhase++
}

// seal closes the in-progress window at the current query count and
// snapshots the cumulative metrics at the same point.
func (c *Collector) seal() {
	prev := 0
	if n := len(c.sealed); n > 0 {
		prev = c.sealed[n-1].End
	}
	n := c.submitted - prev
	c.sealed = append(c.sealed, Window{
		End:              c.submitted,
		MessagesPerQuery: float64(c.win.messages) / float64(n),
		SuccessRate:      float64(c.win.successes) / float64(n),
		DownloadRTT:      meanOrZero(c.win.rttSum, c.win.successes),
	})
	c.cumSealed = append(c.cumSealed, Window{
		End:              c.submitted,
		MessagesPerQuery: float64(c.totalMessages) / float64(c.submitted),
		SuccessRate:      float64(c.successes) / float64(c.submitted),
		DownloadRTT:      meanOrZero(c.rttSum, c.successes),
	})
	c.win = windowAcc{}
	c.nextCk++
}

func meanOrZero(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Submitted returns the number of queries recorded.
func (c *Collector) Submitted() int { return c.submitted }

// TotalMessages returns the total message count across all queries.
func (c *Collector) TotalMessages() uint64 { return c.totalMessages }

// SuccessRate returns satisfied/submitted over the whole run.
func (c *Collector) SuccessRate() float64 {
	if c.submitted == 0 {
		return 0
	}
	return float64(c.successes) / float64(c.submitted)
}

// AvgMessagesPerQuery returns mean messages per query over the whole run.
func (c *Collector) AvgMessagesPerQuery() float64 {
	if c.submitted == 0 {
		return 0
	}
	return float64(c.totalMessages) / float64(c.submitted)
}

// AvgDownloadRTT returns the mean download distance over successful
// queries.
func (c *Collector) AvgDownloadRTT() float64 {
	return meanOrZero(c.rttSum, c.successes)
}

// SameLocalityRate returns the fraction of successful downloads served from
// the requester's own locality.
func (c *Collector) SameLocalityRate() float64 {
	if c.successes == 0 {
		return 0
	}
	return float64(c.sameLocality) / float64(c.successes)
}

// CacheHitRate returns the fraction of successful queries answered from a
// response index rather than shared storage — how much work index caching
// is actually doing.
func (c *Collector) CacheHitRate() float64 {
	if c.successes == 0 {
		return 0
	}
	return float64(c.fromCache) / float64(c.successes)
}

// AvgHops returns mean hops-to-hit over successful queries.
func (c *Collector) AvgHops() float64 {
	return meanOrZero(c.hopsSum, c.successes)
}

// Records returns a copy of all query records, or nil unless the collector
// was built with RetainRecords.
func (c *Collector) Records() []QueryRecord {
	if !c.cfg.RetainRecords {
		return nil
	}
	out := make([]QueryRecord, len(c.records))
	copy(out, c.records)
	return out
}

// PhaseWindow is the full metric set of one scenario phase, covering the
// queries in (Start, End] of the measured stream.
type PhaseWindow struct {
	// Name is the phase's name from the scenario spec.
	Name string
	// Start (exclusive) and End (inclusive) bound the phase's cumulative
	// query counts; Queries is the number actually recorded in the span.
	Start, End, Queries int
	// The §5 figure metrics over the phase.
	DownloadRTT      float64
	MessagesPerQuery float64
	SuccessRate      float64
	// The secondary metrics over the phase (success-conditioned, like the
	// whole-run scalars).
	SameLocalityRate float64
	CacheHitRate     float64
	AvgHops          float64
}

// PhaseWindows returns the sealed scenario-phase windows, plus a partial
// window for an in-progress phase with at least one recorded query — a
// truncated run reports what it measured instead of dropping its tail. It
// returns nil when the collector was built without phase marks.
func (c *Collector) PhaseWindows() []PhaseWindow {
	if len(c.cfg.Phases) == 0 {
		return nil
	}
	out := append(make([]PhaseWindow, 0, len(c.phaseSealed)+1), c.phaseSealed...)
	if c.nextPhase < len(c.cfg.Phases) && c.pacc.queries > 0 {
		start := 0
		if n := len(out); n > 0 {
			start = out[n-1].End
		}
		out = append(out, c.pacc.window(c.cfg.Phases[c.nextPhase].Name, start, c.submitted))
	}
	return out
}

// Window aggregates one checkpoint of a figure series: the metric values
// over queries (prevEnd, End].
type Window struct {
	// End is the cumulative query count at the checkpoint (figure x value).
	End int
	// DownloadRTT is the mean download distance within the window.
	DownloadRTT float64
	// MessagesPerQuery is the mean per-query traffic within the window.
	MessagesPerQuery float64
	// SuccessRate is the within-window success fraction.
	SuccessRate float64
}

// Windows slices the query stream at the given cumulative-count checkpoints
// (ascending). A checkpoint beyond the recorded count yields one partial
// final window covering the queries since the last full checkpoint, with
// End set to the actual recorded count — a short run truncates the figure's
// x axis instead of silently losing its last row.
//
// With a configured checkpoint grid the windows are served from the
// accumulators sealed during the run and checkpoints must equal the
// configured grid; any other list requires RetainRecords (replayed from the
// record stream) and panics otherwise.
func (c *Collector) Windows(checkpoints []int) []Window {
	if len(c.cfg.Checkpoints) > 0 && slices.Equal(checkpoints, c.cfg.Checkpoints) {
		// Copy out (as Records does): the sealed slice is live collector
		// state and the run may seal further windows after this call.
		out := append(make([]Window, 0, len(c.sealed)+1), c.sealed...)
		// Partial final window: queries recorded past the last sealed
		// checkpoint, with at least one unmet checkpoint remaining.
		if c.nextCk < len(c.cfg.Checkpoints) {
			prev := 0
			if n := len(out); n > 0 {
				prev = out[n-1].End
			}
			if c.submitted > prev {
				out = append(out, Window{
					End:              c.submitted,
					MessagesPerQuery: float64(c.win.messages) / float64(c.submitted-prev),
					SuccessRate:      float64(c.win.successes) / float64(c.submitted-prev),
					DownloadRTT:      meanOrZero(c.win.rttSum, c.win.successes),
				})
			}
		}
		return out
	}
	if !c.cfg.RetainRecords {
		panic("metrics: Windows with an ad-hoc checkpoint list requires RetainRecords or the configured grid")
	}
	return c.replayWindows(checkpoints)
}

// replayWindows computes windows from the retained record stream. It is the
// reference implementation the streaming path must match bit-for-bit.
func (c *Collector) replayWindows(checkpoints []int) []Window {
	var out []Window
	prev := 0
	for _, end := range checkpoints {
		partial := false
		if end > len(c.records) {
			// Truncated run: close a partial final window over what was
			// actually recorded, then stop.
			end = len(c.records)
			partial = true
		}
		if end <= prev {
			if partial {
				break
			}
			continue
		}
		w := Window{End: end}
		var acc windowAcc
		for _, r := range c.records[prev:end] {
			acc.messages += r.Messages
			if r.Success {
				acc.successes++
				acc.rttSum += r.DownloadRTT
			}
		}
		n := end - prev
		w.MessagesPerQuery = float64(acc.messages) / float64(n)
		w.SuccessRate = float64(acc.successes) / float64(n)
		w.DownloadRTT = meanOrZero(acc.rttSum, acc.successes)
		out = append(out, w)
		prev = end
		if partial {
			break
		}
	}
	return out
}

// CumulativeWindows computes the metrics over queries [0, end] for each
// checkpoint — the "effect of the number of queries" presentation used in
// the paper's figures. Checkpoints beyond the recorded count are dropped
// (the cumulative value at a never-reached count does not exist); this is
// the documented truncation contract.
//
// The same grid rule as Windows applies: the configured checkpoint grid is
// served from sealed accumulators, anything else requires RetainRecords.
func (c *Collector) CumulativeWindows(checkpoints []int) []Window {
	if len(c.cfg.Checkpoints) > 0 && slices.Equal(checkpoints, c.cfg.Checkpoints) {
		return append([]Window(nil), c.cumSealed...)
	}
	if !c.cfg.RetainRecords {
		panic("metrics: CumulativeWindows with an ad-hoc checkpoint list requires RetainRecords or the configured grid")
	}
	return c.replayCumulativeWindows(checkpoints)
}

// replayCumulativeWindows is the record-replay reference for
// CumulativeWindows.
func (c *Collector) replayCumulativeWindows(checkpoints []int) []Window {
	var out []Window
	for _, end := range checkpoints {
		if end > len(c.records) || end <= 0 {
			continue
		}
		w := Window{End: end}
		var acc windowAcc
		for _, r := range c.records[:end] {
			acc.messages += r.Messages
			if r.Success {
				acc.successes++
				acc.rttSum += r.DownloadRTT
			}
		}
		w.MessagesPerQuery = float64(acc.messages) / float64(end)
		w.SuccessRate = float64(acc.successes) / float64(end)
		w.DownloadRTT = meanOrZero(acc.rttSum, acc.successes)
		out = append(out, w)
	}
	return out
}

// String summarises the collector.
func (c *Collector) String() string {
	return fmt.Sprintf("metrics{n=%d success=%.3f msgs/q=%.1f rtt=%.1fms}",
		c.Submitted(), c.SuccessRate(), c.AvgMessagesPerQuery(), c.AvgDownloadRTT())
}
