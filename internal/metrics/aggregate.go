package metrics

import (
	"sort"

	"github.com/p2prepro/locaware/internal/stats"
)

// WindowStats aggregates one checkpoint window across replicated trials:
// each figure metric becomes a cross-trial sample summary, from which the
// figure harness draws mean curves with 95% confidence error bars.
type WindowStats struct {
	// End is the cumulative query count at the checkpoint (figure x value).
	End int
	// DownloadRTT, MessagesPerQuery and SuccessRate summarise the window's
	// per-trial metric values.
	DownloadRTT      stats.Summary
	MessagesPerQuery stats.Summary
	SuccessRate      stats.Summary
}

// AggregateWindows merges per-trial window slices into cross-trial
// summaries, one WindowStats per distinct checkpoint in ascending order.
// Trials are expected to share a checkpoint grid (they run the same query
// count); a trial missing a checkpoint simply contributes no sample at it,
// so ragged inputs degrade to smaller samples instead of failing.
func AggregateWindows(trials [][]Window) []WindowStats {
	type samples struct {
		rtt, mpq, sr []float64
	}
	byEnd := map[int]*samples{}
	var ends []int
	for _, ws := range trials {
		for _, w := range ws {
			s, ok := byEnd[w.End]
			if !ok {
				s = &samples{}
				byEnd[w.End] = s
				ends = append(ends, w.End)
			}
			s.rtt = append(s.rtt, w.DownloadRTT)
			s.mpq = append(s.mpq, w.MessagesPerQuery)
			s.sr = append(s.sr, w.SuccessRate)
		}
	}
	sort.Ints(ends)
	out := make([]WindowStats, 0, len(ends))
	for _, end := range ends {
		s := byEnd[end]
		out = append(out, WindowStats{
			End:              end,
			DownloadRTT:      stats.Summarize(s.rtt),
			MessagesPerQuery: stats.Summarize(s.mpq),
			SuccessRate:      stats.Summarize(s.sr),
		})
	}
	return out
}

// PhaseStats aggregates one scenario phase across replicated trials: every
// PhaseWindow metric becomes a cross-trial sample summary, so per-phase
// figure cells carry mean ± 95% CI error bars like the whole-run metrics.
type PhaseStats struct {
	// Name, Start and End identify the phase; trials share one phase grid
	// (same spec, same measured count), so the bounds are common.
	Name       string
	Start, End int
	// Queries summarises how many queries each trial recorded in the span.
	Queries stats.Summary
	// The full PhaseWindow metric set, summarised across trials.
	DownloadRTT      stats.Summary
	MessagesPerQuery stats.Summary
	SuccessRate      stats.Summary
	SameLocalityRate stats.Summary
	CacheHitRate     stats.Summary
	AvgHops          stats.Summary
}

// AggregatePhases merges per-trial phase-window slices into cross-trial
// summaries, aligned by phase position: phase k of every trial contributes
// to PhaseStats k. Trials run the same scenario over the same measured
// count, so their phase grids coincide; a trial with fewer sealed phases
// (truncated run) simply contributes no sample to the tail phases, so
// ragged inputs degrade to smaller samples instead of failing.
func AggregatePhases(trials [][]PhaseWindow) []PhaseStats {
	n := 0
	for _, ws := range trials {
		if len(ws) > n {
			n = len(ws)
		}
	}
	out := make([]PhaseStats, 0, n)
	for k := 0; k < n; k++ {
		var (
			ps                              PhaseStats
			q, rtt, mpq, sr, loc, hit, hops []float64
		)
		for _, ws := range trials {
			if k >= len(ws) {
				continue
			}
			w := ws[k]
			if ps.Name == "" {
				ps.Name, ps.Start, ps.End = w.Name, w.Start, w.End
			}
			q = append(q, float64(w.Queries))
			rtt = append(rtt, w.DownloadRTT)
			mpq = append(mpq, w.MessagesPerQuery)
			sr = append(sr, w.SuccessRate)
			loc = append(loc, w.SameLocalityRate)
			hit = append(hit, w.CacheHitRate)
			hops = append(hops, w.AvgHops)
		}
		ps.Queries = stats.Summarize(q)
		ps.DownloadRTT = stats.Summarize(rtt)
		ps.MessagesPerQuery = stats.Summarize(mpq)
		ps.SuccessRate = stats.Summarize(sr)
		ps.SameLocalityRate = stats.Summarize(loc)
		ps.CacheHitRate = stats.Summarize(hit)
		ps.AvgHops = stats.Summarize(hops)
		out = append(out, ps)
	}
	return out
}
