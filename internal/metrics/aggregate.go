package metrics

import (
	"sort"

	"github.com/p2prepro/locaware/internal/stats"
)

// WindowStats aggregates one checkpoint window across replicated trials:
// each figure metric becomes a cross-trial sample summary, from which the
// figure harness draws mean curves with 95% confidence error bars.
type WindowStats struct {
	// End is the cumulative query count at the checkpoint (figure x value).
	End int
	// DownloadRTT, MessagesPerQuery and SuccessRate summarise the window's
	// per-trial metric values.
	DownloadRTT      stats.Summary
	MessagesPerQuery stats.Summary
	SuccessRate      stats.Summary
}

// AggregateWindows merges per-trial window slices into cross-trial
// summaries, one WindowStats per distinct checkpoint in ascending order.
// Trials are expected to share a checkpoint grid (they run the same query
// count); a trial missing a checkpoint simply contributes no sample at it,
// so ragged inputs degrade to smaller samples instead of failing.
func AggregateWindows(trials [][]Window) []WindowStats {
	type samples struct {
		rtt, mpq, sr []float64
	}
	byEnd := map[int]*samples{}
	var ends []int
	for _, ws := range trials {
		for _, w := range ws {
			s, ok := byEnd[w.End]
			if !ok {
				s = &samples{}
				byEnd[w.End] = s
				ends = append(ends, w.End)
			}
			s.rtt = append(s.rtt, w.DownloadRTT)
			s.mpq = append(s.mpq, w.MessagesPerQuery)
			s.sr = append(s.sr, w.SuccessRate)
		}
	}
	sort.Ints(ends)
	out := make([]WindowStats, 0, len(ends))
	for _, end := range ends {
		s := byEnd[end]
		out = append(out, WindowStats{
			End:              end,
			DownloadRTT:      stats.Summarize(s.rtt),
			MessagesPerQuery: stats.Summarize(s.mpq),
			SuccessRate:      stats.Summarize(s.sr),
		})
	}
	return out
}
