// Package bloom implements the Bloom filters Locaware uses to summarise the
// keywords of filenames cached in a peer's response index (§4.2). It
// provides a plain bit-vector filter (what peers gossip to neighbours), a
// counting filter (what a peer maintains locally so keyword deletions are
// possible when indexes are evicted), and the compact changed-bit delta
// encoding of footnote 1 (≤12 changed bits × 11 bits of position = 0.132 Kb
// per update for a 1200-bit filter).
package bloom

// maxK caps the number of hash functions (OptimalK never exceeds 16). The
// fixed bound lets every filter operation compute its bit positions in a
// stack array instead of a heap slice — membership tests run on the
// per-hop routing path, where a slice allocation per Test was the single
// biggest allocator left after the typed-event refactor.
const maxK = 16

// hashPair returns two independent 64-bit hashes of s, used for
// Kirsch–Mitzenmacher double hashing: g_i(x) = h1(x) + i*h2(x). The FNV-1a
// loop is inlined (bit-identical to hash/fnv's 64-bit variant) so hashing
// never allocates a hasher; FNV-1a has weak avalanche in its high bits, so
// both outputs go through a splitmix64-style finaliser to decorrelate them.
func hashPair(s string) (uint64, uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	base := uint64(offset64)
	for i := 0; i < len(s); i++ {
		base ^= uint64(s[i])
		base *= prime64
	}
	h1 := mix64(base)
	h2 := mix64(base ^ 0x9e3779b97f4a7c15)
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

// mix64 is the splitmix64 finaliser (Stafford variant 13), a bijective
// avalanche mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// indexes fills idx with the k bit positions of s in an m-bit filter.
func indexes(s string, m uint32, idx []uint32) {
	h1, h2 := hashPair(s)
	for i := range idx {
		idx[i] = uint32((h1 + uint64(i)*h2) % uint64(m))
	}
}

// OptimalK returns the false-positive-minimising number of hash functions
// for an m-bit filter expected to hold n elements: k = (m/n) ln 2.
func OptimalK(m, n int) int {
	if n <= 0 || m <= 0 {
		return 1
	}
	k := int(float64(m)/float64(n)*0.6931471805599453 + 0.5)
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return k
}
