package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := PaperFilter()
	var added []string
	for i := 0; i < 150; i++ {
		s := fmt.Sprintf("keyword-%d", i)
		f.Add(s)
		added = append(added, s)
	}
	for _, s := range added {
		if !f.Test(s) {
			t.Fatalf("false negative for %q", s)
		}
	}
}

func TestNoFalseNegativesQuick(t *testing.T) {
	prop := func(words []string) bool {
		f := New(1200, 6)
		for _, w := range words {
			f.Add(w)
		}
		for _, w := range words {
			if !f.Test(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	// Paper setting: 1200 bits for 150 keywords gives a usable FPR.
	f := PaperFilter()
	for i := 0; i < 150; i++ {
		f.Add(fmt.Sprintf("kw-%d", i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Test(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Fatalf("FPR %.4f too high for paper configuration", rate)
	}
	est := f.EstimatedFPR()
	if est <= 0 || est > 0.1 {
		t.Fatalf("estimated FPR %.4f implausible", est)
	}
}

func TestTestAll(t *testing.T) {
	f := New(1200, 6)
	f.Add("alpha")
	f.Add("beta")
	if !f.TestAll([]string{"alpha", "beta"}) {
		t.Fatal("TestAll false negative")
	}
	if f.TestAll([]string{"alpha", "definitely-not-present-xyzzy-42"}) {
		// Could be a false positive; retry with a fresh improbable word set.
		misses := 0
		for i := 0; i < 100; i++ {
			if !f.TestAll([]string{"alpha", fmt.Sprintf("zzz-%d", i)}) {
				misses++
			}
		}
		if misses == 0 {
			t.Fatal("TestAll never rejects absent keywords")
		}
	}
	if !f.TestAll(nil) {
		t.Fatal("empty query should match vacuously")
	}
}

func TestOptimalK(t *testing.T) {
	if k := OptimalK(1200, 150); k < 4 || k > 8 {
		t.Fatalf("OptimalK(1200,150) = %d, expected ~6", k)
	}
	if OptimalK(0, 10) != 1 || OptimalK(10, 0) != 1 {
		t.Fatal("degenerate OptimalK should be 1")
	}
	if OptimalK(100000, 1) != 16 {
		t.Fatal("OptimalK should cap at 16")
	}
}

func TestGeometryClamps(t *testing.T) {
	f := New(0, 0)
	if f.M() < 8 || f.K() < 1 {
		t.Fatalf("clamps not applied: m=%d k=%d", f.M(), f.K())
	}
	f.Add("x")
	if !f.Test("x") {
		t.Fatal("tiny filter broken")
	}
}

func TestCloneEqualReset(t *testing.T) {
	f := New(1200, 6)
	f.Add("one")
	f.Add("two")
	g := f.Clone()
	if !f.Equal(g) {
		t.Fatal("clone not equal")
	}
	g.Add("three")
	if f.Equal(g) && g.PopCount() != f.PopCount() {
		t.Fatal("clone shares storage")
	}
	f.Reset()
	if f.PopCount() != 0 {
		t.Fatal("reset failed")
	}
	if f.Equal(New(600, 6)) {
		t.Fatal("different geometry reported equal")
	}
	if f.Equal(New(1200, 4)) {
		t.Fatal("different k reported equal")
	}
}

func TestCopyFrom(t *testing.T) {
	f, g := New(1200, 6), New(1200, 6)
	g.Add("payload")
	if err := f.CopyFrom(g); err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatal("CopyFrom incomplete")
	}
	if err := f.CopyFrom(New(600, 6)); err != ErrMismatch {
		t.Fatalf("expected ErrMismatch, got %v", err)
	}
}

func TestBitSetBounds(t *testing.T) {
	f := New(64, 2)
	if f.BitSet(-1) || f.BitSet(64) {
		t.Fatal("out-of-range BitSet should be false")
	}
}

func TestPopCountFillRatio(t *testing.T) {
	f := New(128, 1)
	if f.PopCount() != 0 || f.FillRatio() != 0 {
		t.Fatal("fresh filter not empty")
	}
	f.Add("a")
	if f.PopCount() != 1 {
		t.Fatalf("k=1 add set %d bits", f.PopCount())
	}
}

func TestStringer(t *testing.T) {
	if New(1200, 6).String() == "" {
		t.Fatal("empty String")
	}
}

func TestCountingAddRemove(t *testing.T) {
	c := NewCounting(1200, 6)
	c.Add("word")
	if !c.Test("word") {
		t.Fatal("counting filter false negative")
	}
	c.Remove("word")
	if c.Test("word") {
		t.Fatal("removed element still present")
	}
}

func TestCountingMultiplicity(t *testing.T) {
	c := NewCounting(1200, 6)
	c.Add("dup")
	c.Add("dup")
	c.Remove("dup")
	if !c.Test("dup") {
		t.Fatal("one of two copies removed should leave element present")
	}
	c.Remove("dup")
	if c.Test("dup") {
		t.Fatal("both copies removed, element still present")
	}
}

func TestCountingRemoveAbsentIsSafe(t *testing.T) {
	c := NewCounting(1200, 6)
	c.Remove("never-added") // must not underflow
	c.Add("x")
	if !c.Test("x") {
		t.Fatal("filter corrupted by spurious remove")
	}
}

func TestCountingExportSnapshot(t *testing.T) {
	c := NewCounting(1200, 6)
	words := []string{"a", "b", "c", "d"}
	for _, w := range words {
		c.Add(w)
	}
	snap := c.Snapshot()
	for _, w := range words {
		if !snap.Test(w) {
			t.Fatalf("snapshot missing %q", w)
		}
	}
	c.Remove("a")
	f := New(1200, 6)
	if err := c.Export(f); err != nil {
		t.Fatal(err)
	}
	if f.Test("a") && !anyShareBits("a", words) {
		t.Fatal("export retains removed element")
	}
	if err := c.Export(New(600, 6)); err != ErrMismatch {
		t.Fatalf("geometry mismatch not detected: %v", err)
	}
	c.Reset()
	if c.Test("b") {
		t.Fatal("reset failed")
	}
	if c.M() != 1200 || c.K() != 6 {
		t.Fatal("accessors wrong")
	}
}

// anyShareBits reports whether w's bit positions are fully covered by the
// other words' positions (making a residual true Test unavoidable).
func anyShareBits(w string, words []string) bool {
	cover := map[uint32]bool{}
	idx := make([]uint32, 6)
	for _, o := range words {
		if o == w {
			continue
		}
		indexes(o, 1200, idx)
		for _, i := range idx {
			cover[i] = true
		}
	}
	indexes(w, 1200, idx)
	for _, i := range idx {
		if !cover[i] {
			return false
		}
	}
	return true
}

func TestCountingGeometryClamps(t *testing.T) {
	c := NewCounting(0, 0)
	if c.M() < 8 || c.K() < 1 {
		t.Fatal("clamps not applied")
	}
}

func TestCountingPlainAgreement(t *testing.T) {
	// Counting filter's snapshot must agree with a plain filter fed the same
	// live set, across random add/remove sequences.
	r := rand.New(rand.NewSource(4))
	c := NewCounting(1200, 6)
	live := map[string]int{}
	for op := 0; op < 2000; op++ {
		w := fmt.Sprintf("w%d", r.Intn(80))
		if r.Float64() < 0.6 {
			c.Add(w)
			live[w]++
		} else if live[w] > 0 {
			c.Remove(w)
			live[w]--
		}
	}
	plain := New(1200, 6)
	for w, n := range live {
		if n > 0 {
			plain.Add(w)
		}
	}
	if !c.Snapshot().Equal(plain) {
		t.Fatal("counting snapshot diverges from plain filter of live set")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	oldF := New(1200, 6)
	oldF.Add("alpha")
	newF := oldF.Clone()
	newF.Add("beta")
	newF.Add("gamma")

	d, err := DiffFilters(oldF, newF)
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Fatal("delta unexpectedly empty")
	}
	if err := d.Apply(oldF); err != nil {
		t.Fatal(err)
	}
	if !oldF.Equal(newF) {
		t.Fatal("applying delta did not reproduce new filter")
	}
	// XOR semantics: applying again undoes.
	if err := d.Apply(oldF); err != nil {
		t.Fatal(err)
	}
	if oldF.Equal(newF) {
		t.Fatal("double apply should undo")
	}
}

func TestDeltaSizeBitsPaperBound(t *testing.T) {
	// Footnote 1: one filename (3 keywords) flips at most 3k bits; with the
	// paper's 1200-bit vector each position costs 11 bits.
	oldF := PaperFilter()
	newF := oldF.Clone()
	for _, kw := range []string{"one", "two", "three"} {
		newF.Add(kw)
	}
	d, err := DiffFilters(oldF, newF)
	if err != nil {
		t.Fatal(err)
	}
	perPos := 11 // ceil(log2(1200))
	if d.SizeBits() != len(d.Flipped)*perPos {
		t.Fatalf("SizeBits = %d, want %d", d.SizeBits(), len(d.Flipped)*perPos)
	}
	if len(d.Flipped) > 3*oldF.K() {
		t.Fatalf("one filename flipped %d bits, more than 3k=%d", len(d.Flipped), 3*oldF.K())
	}
}

func TestDeltaEmpty(t *testing.T) {
	f := New(1200, 6)
	d, err := DiffFilters(f, f.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() || d.SizeBits() != 0 {
		t.Fatal("identical filters should give empty delta")
	}
	if err := d.Apply(f); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaMismatch(t *testing.T) {
	if _, err := DiffFilters(New(1200, 6), New(600, 6)); err != ErrMismatch {
		t.Fatalf("size mismatch not detected: %v", err)
	}
	d := Delta{M: 1200, Flipped: []uint32{3}}
	if err := d.Apply(New(600, 6)); err != ErrMismatch {
		t.Fatalf("apply mismatch not detected: %v", err)
	}
	bad := Delta{M: 1200, Flipped: []uint32{5000}}
	if err := bad.Apply(New(1200, 6)); err != ErrMismatch {
		t.Fatalf("out-of-range position not detected: %v", err)
	}
}

func TestDeltaQuickProperty(t *testing.T) {
	// Property: for any two word sets, diff+apply transforms old into new.
	prop := func(oldWords, addWords []string) bool {
		oldF := New(1200, 6)
		for _, w := range oldWords {
			oldF.Add(w)
		}
		newF := oldF.Clone()
		for _, w := range addWords {
			newF.Add(w)
		}
		d, err := DiffFilters(oldF, newF)
		if err != nil {
			return false
		}
		cp := oldF.Clone()
		if err := d.Apply(cp); err != nil {
			return false
		}
		return cp.Equal(newF)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHashPairStability(t *testing.T) {
	a1, a2 := hashPair("stable")
	b1, b2 := hashPair("stable")
	if a1 != b1 || a2 != b2 {
		t.Fatal("hashPair not deterministic")
	}
	c1, c2 := hashPair("different")
	if a1 == c1 && a2 == c2 {
		t.Fatal("hashPair collision on trivial input")
	}
}

// TestHotOpsZeroAlloc locks the stack-allocated hashing path: membership
// tests and counter updates run on the simulator's per-hop routing path
// and must not allocate.
func TestHotOpsZeroAlloc(t *testing.T) {
	f := New(1200, 6)
	c := NewCounting(1200, 6)
	f.Add("locaware")
	c.Add("locaware")
	if n := testing.AllocsPerRun(200, func() { f.Test("locaware") }); n != 0 {
		t.Fatalf("Filter.Test allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(200, func() { f.Add("locaware") }); n != 0 {
		t.Fatalf("Filter.Add allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(200, func() { c.Add("x"); c.Remove("x") }); n != 0 {
		t.Fatalf("Counting.Add/Remove allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(200, func() { c.Test("locaware") }); n != 0 {
		t.Fatalf("Counting.Test allocates %.1f/op", n)
	}
}

// TestDiffFiltersInto checks buffer reuse and equivalence with DiffFilters.
func TestDiffFiltersInto(t *testing.T) {
	a, b := New(256, 4), New(256, 4)
	b.Add("alpha")
	b.Add("beta")
	want, err := DiffFilters(a, b)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]uint32, 0, 64)
	got, err := DiffFiltersInto(a, b, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Flipped) != len(want.Flipped) {
		t.Fatalf("Into diff = %v, want %v", got.Flipped, want.Flipped)
	}
	for i := range got.Flipped {
		if got.Flipped[i] != want.Flipped[i] {
			t.Fatalf("Into diff = %v, want %v", got.Flipped, want.Flipped)
		}
	}
	if &got.Flipped[0] != &buf[:1][0] {
		t.Fatal("DiffFiltersInto did not reuse the caller's buffer")
	}
	if _, err := DiffFiltersInto(a, New(128, 4), buf); err != ErrMismatch {
		t.Fatalf("geometry mismatch not reported: %v", err)
	}
	// Steady-state reuse does not allocate once the buffer has capacity.
	if n := testing.AllocsPerRun(100, func() {
		d, _ := DiffFiltersInto(a, b, buf)
		buf = d.Flipped[:0]
	}); n != 0 {
		t.Fatalf("buffered diff allocates %.1f/op", n)
	}
}

// TestKCapped locks the maxK bound the stack-array fast path relies on.
func TestKCapped(t *testing.T) {
	if f := New(4096, 99); f.K() != 16 {
		t.Fatalf("Filter k = %d, want capped at 16", f.K())
	}
	if c := NewCounting(4096, 99); c.K() != 16 {
		t.Fatalf("Counting k = %d, want capped at 16", c.K())
	}
}
