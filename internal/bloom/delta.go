package bloom

import "math/bits"

// Delta is the compact update of footnote 1 (§4.2): when a filename is
// added to or discarded from the response index, only a small number of
// bits flip in the gossiped bit vector, so a peer transmits the positions
// of the changed bits rather than the whole filter. For a 1200-bit vector
// each position needs 11 bits; the paper bounds an update at 12 positions
// (one filename = 3 keywords × ≤4 hash positions) ≈ 0.132 Kb.
type Delta struct {
	// Flipped lists the bit positions whose value changed.
	Flipped []uint32
	// M is the filter size the delta applies to.
	M uint32
}

// DiffFilters computes the delta that transforms old into new.
func DiffFilters(oldF, newF *Filter) (Delta, error) {
	return DiffFiltersInto(oldF, newF, nil)
}

// DiffFiltersInto is DiffFilters accumulating the flipped positions into
// buf (truncated, capacity reused), so a caller diffing every gossip round
// amortises the position buffer to zero steady-state allocations. The
// returned Delta aliases buf's backing array.
func DiffFiltersInto(oldF, newF *Filter, buf []uint32) (Delta, error) {
	if oldF.m != newF.m || oldF.k != newF.k {
		return Delta{}, ErrMismatch
	}
	d := Delta{M: oldF.m, Flipped: buf[:0]}
	for w := range oldF.bits {
		x := oldF.bits[w] ^ newF.bits[w]
		for x != 0 {
			b := bits.TrailingZeros64(x)
			pos := uint32(w*64 + b)
			if pos < oldF.m {
				d.Flipped = append(d.Flipped, pos)
			}
			x &= x - 1
		}
	}
	return d, nil
}

// Apply flips the delta's positions in f, transforming the old vector into
// the new one. Applying a delta twice undoes it (XOR semantics).
func (d Delta) Apply(f *Filter) error {
	if f.m != d.M {
		return ErrMismatch
	}
	for _, pos := range d.Flipped {
		if pos >= f.m {
			return ErrMismatch
		}
		f.setBit(pos, !f.BitSet(int(pos)))
	}
	return nil
}

// SizeBits returns the encoded size of the delta in bits: one position
// costs ceil(log2(M)) bits. This is the quantity footnote 1 bounds.
func (d Delta) SizeBits() int {
	if len(d.Flipped) == 0 {
		return 0
	}
	perPos := bits.Len32(d.M - 1)
	return len(d.Flipped) * perPos
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool { return len(d.Flipped) == 0 }
