package bloom

// Counting is a counting Bloom filter: each position holds a counter rather
// than a bit, so elements can be removed. Locaware's filter "is built
// incrementally as new filenames are inserted in RI and existing ones
// discarded" (§4.2) — discarding requires deletion support, which a peer
// gets by keeping this counting filter locally and exporting its non-zero
// positions as the plain bit vector it gossips.
type Counting struct {
	m      uint32
	k      int
	counts []uint16
}

// NewCounting returns an m-position counting filter with k hash functions;
// k is clamped to [1, 16] exactly as in New.
func NewCounting(m, k int) *Counting {
	if m < 8 {
		m = 8
	}
	if k < 1 {
		k = 1
	}
	if k > maxK {
		k = maxK
	}
	return &Counting{m: uint32(m), k: k, counts: make([]uint16, m)}
}

// M returns the number of positions.
func (c *Counting) M() int { return int(c.m) }

// K returns the number of hash functions.
func (c *Counting) K() int { return c.k }

// Add inserts s, incrementing its k counters (saturating).
func (c *Counting) Add(s string) {
	var buf [maxK]uint32
	idx := buf[:c.k]
	indexes(s, c.m, idx)
	for _, i := range idx {
		if c.counts[i] < ^uint16(0) {
			c.counts[i]++
		}
	}
}

// Remove deletes one occurrence of s. Removing an element that was never
// added corrupts a counting filter; callers (the response index) guarantee
// add/remove pairing, and Remove defensively floors counters at zero.
func (c *Counting) Remove(s string) {
	var buf [maxK]uint32
	idx := buf[:c.k]
	indexes(s, c.m, idx)
	for _, i := range idx {
		if c.counts[i] > 0 {
			c.counts[i]--
		}
	}
}

// Test reports whether s may be present.
func (c *Counting) Test(s string) bool {
	var buf [maxK]uint32
	idx := buf[:c.k]
	indexes(s, c.m, idx)
	for _, i := range idx {
		if c.counts[i] == 0 {
			return false
		}
	}
	return true
}

// Export writes the plain bit-vector view (counter>0 → bit set) into dst,
// which must have matching geometry.
func (c *Counting) Export(dst *Filter) error {
	if dst.m != c.m || dst.k != c.k {
		return ErrMismatch
	}
	dst.Reset()
	for i, n := range c.counts {
		if n > 0 {
			dst.setBit(uint32(i), true)
		}
	}
	return nil
}

// Snapshot allocates and returns the plain bit-vector view.
func (c *Counting) Snapshot() *Filter {
	f := New(int(c.m), c.k)
	_ = c.Export(f) // geometry matches by construction
	return f
}

// Reset zeroes all counters.
func (c *Counting) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
}
