package bloom

import (
	"fmt"
	"testing"
)

func benchWords(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("kw%05d", i)
	}
	return out
}

func BenchmarkFilterAdd(b *testing.B) {
	f := PaperFilter()
	words := benchWords(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(words[i&1023])
	}
}

func BenchmarkFilterTest(b *testing.B) {
	f := PaperFilter()
	words := benchWords(1024)
	for _, w := range words[:150] {
		f.Add(w)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Test(words[i&1023])
	}
}

func BenchmarkFilterTestAllQuery(b *testing.B) {
	f := PaperFilter()
	words := benchWords(150)
	for _, w := range words {
		f.Add(w)
	}
	query := []string{words[3], words[77], words[149]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.TestAll(query)
	}
}

func BenchmarkCountingAddRemove(b *testing.B) {
	c := NewCounting(1200, 6)
	words := benchWords(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := words[i&255]
		c.Add(w)
		c.Remove(w)
	}
}

func BenchmarkSnapshotAndDiff(b *testing.B) {
	c := NewCounting(1200, 6)
	for _, w := range benchWords(60) {
		c.Add(w)
	}
	prev := c.Snapshot()
	c.Add("extra-one")
	c.Add("extra-two")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := c.Snapshot()
		if _, err := DiffFilters(prev, cur); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBloomSizing reports the measured false-positive rate of each
// candidate filter size at the paper's worst-case load (a full response
// index: 50 filenames × 3 keywords = 150 elements). This is the
// data-structure-level justification for §5.1's 1200-bit choice.
func BenchmarkBloomSizing(b *testing.B) {
	for _, bits := range []int{300, 600, 1200, 2400} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			for iter := 0; iter < b.N; iter++ {
				f := New(bits, OptimalK(bits, 150))
				for _, w := range benchWords(150) {
					f.Add(w)
				}
				fp := 0
				const probes = 10000
				for i := 0; i < probes; i++ {
					if f.Test(fmt.Sprintf("absent%05d", i)) {
						fp++
					}
				}
				b.ReportMetric(float64(fp)/probes, "fpr")
				b.ReportMetric(f.FillRatio(), "fill")
			}
		})
	}
}
