package bloom

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Filter is a plain Bloom filter over strings: an m-bit vector with k hash
// functions. It never returns false negatives; it may return false
// positives (§4.2). This is the representation peers exchange with
// neighbours.
type Filter struct {
	m    uint32
	k    int
	bits []uint64
}

// ErrMismatch reports an operation across filters of different geometry.
var ErrMismatch = errors.New("bloom: filter geometry mismatch")

// New returns an m-bit filter with k hash functions. The paper's setting is
// m=1200 (covering an enlarged response index of 50 filenames × 3 keywords)
// with k near optimal for 150 elements. k is clamped to [1, 16]: the upper
// bound (which OptimalK never exceeds) is what lets every filter operation
// compute its bit positions on the stack.
func New(m, k int) *Filter {
	if m < 8 {
		m = 8
	}
	if k < 1 {
		k = 1
	}
	if k > maxK {
		k = maxK
	}
	return &Filter{m: uint32(m), k: k, bits: make([]uint64, (m+63)/64)}
}

// PaperFilter returns the filter configured exactly as in §5.1: 1200 bits,
// k optimal for 150 keywords.
func PaperFilter() *Filter { return New(1200, OptimalK(1200, 150)) }

// M returns the filter size in bits.
func (f *Filter) M() int { return int(f.m) }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// Add inserts s.
func (f *Filter) Add(s string) {
	var buf [maxK]uint32
	idx := buf[:f.k]
	indexes(s, f.m, idx)
	for _, i := range idx {
		f.bits[i/64] |= 1 << (i % 64)
	}
}

// Test reports whether s may be in the set. False means definitely absent.
func (f *Filter) Test(s string) bool {
	var buf [maxK]uint32
	idx := buf[:f.k]
	indexes(s, f.m, idx)
	for _, i := range idx {
		if f.bits[i/64]&(1<<(i%64)) == 0 {
			return false
		}
	}
	return true
}

// TestAll reports whether every string in ss may be in the set — the "BF
// matches q" predicate of §4.2 (all query keywords must be members).
func (f *Filter) TestAll(ss []string) bool {
	for _, s := range ss {
		if !f.Test(s) {
			return false
		}
	}
	return true
}

// BitSet reports whether bit i is set.
func (f *Filter) BitSet(i int) bool {
	if i < 0 || uint32(i) >= f.m {
		return false
	}
	return f.bits[i/64]&(1<<(uint(i)%64)) != 0
}

// setBit forces bit i to v; used when applying deltas.
func (f *Filter) setBit(i uint32, v bool) {
	if v {
		f.bits[i/64] |= 1 << (i % 64)
	} else {
		f.bits[i/64] &^= 1 << (i % 64)
	}
}

// PopCount returns the number of set bits.
func (f *Filter) PopCount() int {
	c := 0
	for _, w := range f.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 { return float64(f.PopCount()) / float64(f.m) }

// EstimatedFPR estimates the current false-positive rate from the fill
// ratio: (fill)^k.
func (f *Filter) EstimatedFPR() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// Clone returns an independent copy.
func (f *Filter) Clone() *Filter {
	cp := &Filter{m: f.m, k: f.k, bits: make([]uint64, len(f.bits))}
	copy(cp.bits, f.bits)
	return cp
}

// Reset clears all bits.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
}

// Equal reports whether two filters have identical geometry and contents.
func (f *Filter) Equal(o *Filter) bool {
	if f.m != o.m || f.k != o.k {
		return false
	}
	for i := range f.bits {
		if f.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// CopyFrom overwrites f's contents with o's. Geometry must match.
func (f *Filter) CopyFrom(o *Filter) error {
	if f.m != o.m || f.k != o.k {
		return ErrMismatch
	}
	copy(f.bits, o.bits)
	return nil
}

// String summarises the filter.
func (f *Filter) String() string {
	return fmt.Sprintf("bloom{m=%d k=%d fill=%.3f}", f.m, f.k, f.FillRatio())
}
