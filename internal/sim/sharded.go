package sim

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"time"
)

// ShardMap assigns a peer id to a shard. The core harness partitions peers
// by physical locality (locId modulo shard count), which is what makes the
// partition meaningful: most protocol traffic in a locality-aware overlay
// stays inside a locality, so most events never cross a shard boundary.
type ShardMap func(peer int) int

// ShardedOptions configures a sharded event loop.
type ShardedOptions struct {
	// Shards is the number of per-locality event queues. Values <= 1 run a
	// single queue that is bit-identical to a plain Engine.
	Shards int
	// ShardOf maps a destination peer to its shard; required when
	// Shards > 1. Results are reduced modulo Shards defensively.
	ShardOf ShardMap
	// Parallel drains the shards of one epoch on separate goroutines.
	// All state touched by the events of a shard must then be confined to
	// that shard. The protocol path satisfies this with per-shard pending
	// maps, pools and record sinks; runs that install cross-shard readers
	// (a tracer, a scenario mutating shared substrates) switch back to the
	// sequential drain, which delivers the identical event order.
	Parallel bool
	// Lookahead widens each epoch's barrier from the minimum pending time
	// T to T+Lookahead. It must not exceed the minimum cross-shard event
	// delay the workload can produce: a cross-shard event scheduled to
	// arrive before the barrier is a fatal error. Zero (the default) is
	// always safe: epochs advance one distinct timestamp at a time.
	Lookahead Time
}

// mailItem is one cross-shard event in flight between epochs. (at, src,
// seq) is its deterministic sort key: src and seq order same-instant
// deliveries by sending shard and sending order, independent of how the
// epoch's shards were interleaved.
type mailItem struct {
	at  Time
	src int
	seq uint64
	ev  Event
}

// Sharded is a deterministic sharded discrete-event loop: one Engine per
// shard, drained epoch by epoch. Each epoch computes the barrier (the
// minimum pending timestamp across shards, plus lookahead), lets every
// shard drain its own queue up to the barrier, then flushes cross-shard
// events — diverted at scheduling time by a router installed on each
// engine — through a mailbox sorted by (time, source shard, source
// sequence). The event order is therefore a pure function of the workload
// and the shard layout, never of goroutine interleaving.
//
// Scheduling routes on the typed-event destination: a Destined event posted
// on any shard's engine lands in the queue of the shard owning its
// destination peer; undestined events (controls, submission chains) stay on
// the engine they were scheduled on, conventionally shard 0.
type Sharded struct {
	opts    ShardedOptions
	engines []*Engine
	// outbox[i] collects events diverted from shard i's engine during the
	// current epoch; outSeq[i] numbers them in sending order. Each is only
	// touched by shard i's drain, so parallel epochs need no locks.
	outbox  [][]mailItem
	outSeq  []uint64
	flush   []mailItem
	counts  []uint64
	stopped bool
	// err records a barrier violation: a cross-shard event due before its
	// destination shard's clock, i.e. a Lookahead wider than the workload's
	// minimum cross-shard delay. It ends the run at the next epoch
	// boundary and is surfaced through Err / ShardedRun.
	err error
	// epochHook, when non-nil, runs after every epoch's drain, on the
	// caller's goroutine (never concurrently with shard drains). The
	// protocol layer uses it to merge per-shard bookkeeping — cross-shard
	// message counts, finalized-query records — deterministically.
	epochHook func()
	// Persistent drain workers: one parked goroutine per shard, woken each
	// parallel epoch through workerStart[i] (buffered, one barrier per
	// epoch) and joined on workerDone. Started lazily by RunUntil on its
	// first parallel epoch and stopped before it returns, so no goroutine
	// outlives a run. Replaces the per-epoch spawn + WaitGroup cycle, whose
	// setup cost dominated fine-grained epochs; spawnDrain restores the old
	// cycle for benchmark comparison.
	workerStart []chan Time
	workerDone  chan struct{}
	workerEpoch time.Time
	spawnDrain  bool
	// instr, when non-nil, records epoch counts, mailbox traffic and
	// wall-clock drain/barrier timings (see EnableObs). It never affects
	// event order.
	instr *ShardedInstr
}

// NewSharded builds a sharded loop. It panics on Shards > 1 without a
// ShardOf — a configuration bug, not a runtime condition.
func NewSharded(opts ShardedOptions) *Sharded {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.Shards > 1 && opts.ShardOf == nil {
		panic("sim: NewSharded needs a ShardOf map for Shards > 1")
	}
	if opts.Lookahead < 0 {
		opts.Lookahead = 0
	}
	s := &Sharded{
		opts:    opts,
		engines: make([]*Engine, opts.Shards),
		outbox:  make([][]mailItem, opts.Shards),
		outSeq:  make([]uint64, opts.Shards),
	}
	for i := range s.engines {
		s.engines[i] = NewEngine()
		s.engines[i].shard = i
	}
	if opts.Shards > 1 {
		for i := range s.engines {
			i := i
			s.engines[i].route = func(at Time, ev Event) bool {
				d, ok := ev.(Destined)
				if !ok {
					return false
				}
				if s.shardOf(d.EventDst()) == i {
					return false
				}
				s.outSeq[i]++
				s.outbox[i] = append(s.outbox[i], mailItem{at: at, src: i, seq: s.outSeq[i], ev: ev})
				return true
			}
		}
	}
	return s
}

// shardOf reduces the user map's result into [0, Shards).
func (s *Sharded) shardOf(peer int) int {
	k := s.opts.ShardOf(peer) % s.opts.Shards
	if k < 0 {
		k += s.opts.Shards
	}
	return k
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.engines) }

// Engine returns shard i's engine. Shard 0 conventionally hosts the
// control plane: periodic controls, submission chains, and every
// undestined event scheduled through it stay there.
func (s *Sharded) Engine(i int) *Engine { return s.engines[i] }

// Now returns the frontmost shard clock. In the sequential epoch loop all
// clocks agree at each event delivery (idle shards are advanced to the
// epoch time), so this is the global virtual time.
func (s *Sharded) Now() Time {
	now := s.engines[0].Now()
	for _, e := range s.engines[1:] {
		if t := e.Now(); t > now {
			now = t
		}
	}
	return now
}

// Processed returns the number of events delivered across all shards.
func (s *Sharded) Processed() uint64 {
	var n uint64
	for _, e := range s.engines {
		n += e.Processed()
	}
	return n
}

// Len returns the number of queued events across all shards, including
// mailbox items awaiting the next flush.
func (s *Sharded) Len() int {
	n := 0
	for _, e := range s.engines {
		n += e.Len()
	}
	for _, box := range s.outbox {
		n += len(box)
	}
	return n
}

// SetHorizon applies the drop-after-t policy to every shard; mailbox items
// beyond the horizon are dropped at flush time by the same rule.
func (s *Sharded) SetHorizon(t Time) {
	for _, e := range s.engines {
		e.SetHorizon(t)
	}
}

// SetObserver installs fn on every shard's engine. Only meaningful in
// sequential mode, where deliveries happen one at a time; a parallel run
// would invoke fn concurrently.
func (s *Sharded) SetObserver(fn func(at Time, ev Event)) {
	for _, e := range s.engines {
		e.SetObserver(fn)
	}
}

// Stop makes the current Run return at the next epoch boundary.
func (s *Sharded) Stop() { s.stopped = true }

// SetParallel switches the epoch drains between goroutine-per-shard and
// sequential execution. Both deliver the identical event order; callers
// toggle it per run depending on whether every piece of state the events
// touch is shard-confined (see ShardedOptions.Parallel).
func (s *Sharded) SetParallel(parallel bool) { s.opts.Parallel = parallel }

// SetEpochHook installs fn to run after every epoch's drain (sequentially,
// never concurrently with shard goroutines), and once more when a run
// returns. nil uninstalls. The protocol layer merges its per-shard
// bookkeeping here.
func (s *Sharded) SetEpochHook(fn func()) { s.epochHook = fn }

// SetSpawnDrain switches the parallel drain back to the legacy per-epoch
// goroutine spawn + WaitGroup cycle. Benchmark-only: it exists so the
// spawn-vs-persistent-worker comparison stays measurable. Call before Run.
func (s *Sharded) SetSpawnDrain(v bool) { s.spawnDrain = v }

// Err returns the barrier-violation error that aborted the run, if any. A
// non-nil value means the configured Lookahead exceeded the workload's
// minimum cross-shard delay; results past that epoch are partial.
func (s *Sharded) Err() error { return s.err }

// flushMail moves every outbox item into its destination shard's queue, in
// (time, source shard, source sequence) order — the deterministic merge
// that makes cross-shard delivery independent of drain interleaving.
func (s *Sharded) flushMail() {
	s.flush = s.flush[:0]
	for i, box := range s.outbox {
		s.flush = append(s.flush, box...)
		for j := range box {
			box[j].ev = nil
		}
		s.outbox[i] = box[:0]
	}
	if len(s.flush) == 0 {
		return
	}
	slices.SortFunc(s.flush, func(x, y mailItem) int {
		switch {
		case x.at != y.at:
			if x.at < y.at {
				return -1
			}
			return 1
		case x.src != y.src:
			return x.src - y.src
		case x.seq < y.seq:
			return -1
		case x.seq > y.seq:
			return 1
		default:
			return 0
		}
	})
	for _, m := range s.flush {
		dstIdx := s.shardOf(m.ev.(Destined).EventDst())
		dst := s.engines[dstIdx]
		if err := dst.PostEventAt(m.at, m.ev); err != nil {
			// The only possible error is ErrPast: a cross-shard event due
			// inside the epoch that sent it, i.e. a Lookahead larger than
			// the workload's minimum cross-shard delay. Record it and end
			// the run instead of crashing the whole campaign.
			s.err = fmt.Errorf("sim: cross-shard event at t=%v from shard %d to shard %d arrived before the epoch barrier (destination clock %v, lookahead %v): %w",
				m.at, m.src, dstIdx, dst.Now(), s.opts.Lookahead, err)
			return
		}
	}
}

// minPending returns the earliest live event time across all shards.
func (s *Sharded) minPending() (Time, bool) {
	best, ok := Time(0), false
	for _, e := range s.engines {
		if t, live := e.peekTime(); live && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// Run processes events until every queue and mailbox drains, Stop is
// called, or maxEvents events have been delivered (0 means no limit).
func (s *Sharded) Run(maxEvents uint64) uint64 {
	return s.RunUntil(Time(math.MaxInt64), maxEvents)
}

// RunUntil processes events with timestamps <= deadline, epoch by epoch,
// subject to the same stopping conditions as Run. With one shard it
// delegates to the underlying engine and is bit-identical to a plain
// Engine run.
func (s *Sharded) RunUntil(deadline Time, maxEvents uint64) uint64 {
	if len(s.engines) == 1 {
		n := s.engines[0].RunUntil(deadline, maxEvents)
		if s.epochHook != nil {
			s.epochHook()
		}
		if s.instr != nil {
			s.instr.Drain()
		}
		return n
	}
	s.stopped = false
	if s.opts.Parallel && maxEvents == 0 && !s.spawnDrain {
		s.startWorkers()
		defer s.stopWorkers()
	}
	var delivered uint64
	for !s.stopped {
		if maxEvents > 0 && delivered >= maxEvents {
			break
		}
		s.flushMail()
		if s.instr != nil {
			s.instr.crossCount += uint64(len(s.flush))
			s.instr.crossShard.Add(uint64(len(s.flush)))
		}
		if s.err != nil {
			break
		}
		minT, ok := s.minPending()
		if !ok {
			break
		}
		if minT > deadline {
			if deadline != Time(math.MaxInt64) {
				for _, e := range s.engines {
					e.advanceTo(deadline)
				}
			}
			break
		}
		barrier := minT
		if s.opts.Lookahead > 0 && barrier <= Time(math.MaxInt64)-s.opts.Lookahead {
			barrier += s.opts.Lookahead
		}
		if barrier > deadline {
			barrier = deadline
		}
		// Idle shards advance with the epoch so every clock reads the
		// global virtual time during deliveries.
		for _, e := range s.engines {
			e.advanceTo(minT)
		}
		var drainStart time.Time
		if s.instr != nil {
			drainStart = time.Now()
		}
		if s.opts.Parallel && maxEvents == 0 {
			delivered += s.drainParallel(barrier)
		} else {
			for _, e := range s.engines {
				var budget uint64
				if maxEvents > 0 {
					budget = maxEvents - delivered
				}
				delivered += e.RunUntil(barrier, budget)
				if e.stopped {
					// An event called Stop on its shard engine: honour
					// the plain-engine contract and end the whole run.
					s.stopped = true
				}
				if maxEvents > 0 && delivered >= maxEvents {
					break
				}
			}
		}
		var drainDur time.Duration
		if s.instr != nil {
			drainDur = time.Since(drainStart)
		}
		if s.epochHook != nil {
			// The epoch boundary: shard workers (if any) have joined, so
			// cross-shard merges are race-free here.
			s.epochHook()
		}
		// Return burst-sized pooled-event storage at the same sequential
		// point; arena geometry never feeds back into event order.
		for _, e := range s.engines {
			e.capFreeList()
		}
		if s.instr != nil {
			s.instr.endEpoch(drainDur)
		}
	}
	return delivered
}

// startWorkers parks one drain goroutine per shard. Each waits on its own
// start channel for an epoch barrier, drains its engine to it, and signals
// done; channel operations carry the happens-before edges, so the epoch
// loop reads counts and waits only after every done signal arrives.
func (s *Sharded) startWorkers() {
	if s.workerStart != nil {
		return
	}
	if s.counts == nil {
		s.counts = make([]uint64, len(s.engines))
	}
	s.workerStart = make([]chan Time, len(s.engines))
	s.workerDone = make(chan struct{}, len(s.engines))
	for i, e := range s.engines {
		ch := make(chan Time, 1)
		s.workerStart[i] = ch
		go func(i int, e *Engine, ch chan Time) {
			for barrier := range ch {
				s.counts[i] = e.RunUntil(barrier, 0)
				if in := s.instr; in != nil {
					// One writer per slot; read only after the join.
					in.waits[i] = time.Since(s.workerEpoch)
				}
				s.workerDone <- struct{}{}
			}
		}(i, e, ch)
	}
}

// stopWorkers releases the parked workers; RunUntil defers it so no
// goroutine outlives the run that started it.
func (s *Sharded) stopWorkers() {
	if s.workerStart == nil {
		return
	}
	for _, ch := range s.workerStart {
		close(ch)
	}
	s.workerStart = nil
	s.workerDone = nil
}

// drainParallel runs one epoch's shard drains concurrently. The result is
// identical to the sequential drain because shards share nothing inside an
// epoch: cross-shard events sit in per-shard outboxes until the
// deterministic flush, and each engine's delivery order is fixed by its
// own queue.
func (s *Sharded) drainParallel(barrier Time) uint64 {
	if s.workerStart == nil {
		return s.drainSpawn(barrier)
	}
	if s.instr != nil {
		s.workerEpoch = time.Now()
	}
	for _, ch := range s.workerStart {
		ch <- barrier
	}
	for range s.workerStart {
		<-s.workerDone
	}
	if s.instr != nil {
		s.instr.recordWaits()
	}
	var n uint64
	for _, c := range s.counts {
		n += c
	}
	for _, e := range s.engines {
		if e.stopped {
			s.stopped = true
		}
	}
	return n
}

// drainSpawn is the legacy per-epoch goroutine-spawn drain, kept only so
// benchmarks can measure what the persistent workers buy (set spawnDrain
// before Run).
func (s *Sharded) drainSpawn(barrier Time) uint64 {
	if s.counts == nil {
		s.counts = make([]uint64, len(s.engines))
	}
	in := s.instr
	var start time.Time
	if in != nil {
		start = time.Now()
	}
	var wg sync.WaitGroup
	for i, e := range s.engines {
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			s.counts[i] = e.RunUntil(barrier, 0)
			if in != nil {
				in.waits[i] = time.Since(start)
			}
		}(i, e)
	}
	wg.Wait()
	if in != nil {
		in.recordWaits()
	}
	var n uint64
	for _, c := range s.counts {
		n += c
	}
	for _, e := range s.engines {
		if e.stopped {
			s.stopped = true
		}
	}
	return n
}

// ShardedRun is the one-shot form: build the loop, let seed schedule the
// initial events on the shard engines, then run to completion. It returns
// the number of events delivered, and a non-nil error when the run was
// aborted by a cross-shard barrier violation (a Lookahead wider than the
// workload's minimum cross-shard delay); the count then covers only the
// epochs delivered before the violation.
func ShardedRun(opts ShardedOptions, seed func(s *Sharded)) (uint64, error) {
	s := NewSharded(opts)
	seed(s)
	n := s.Run(0)
	return n, s.Err()
}
