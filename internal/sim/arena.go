package sim

// This file holds the engine's flat event storage. Events used to be
// individually heap-allocated and recycled through a pointer free list;
// they now live in slab-allocated arrays addressed by index handles. The
// drain loop walks contiguous memory instead of chasing pointers, the GC
// scans one object per slab instead of one per event, and a Timer can name
// its event as a compact (slab, index, generation) triple that stays valid
// to *interrogate* even after the storage behind it has been reaped.

const (
	// arenaSlabBits sizes one slab at 1<<arenaSlabBits events (~14 KiB of
	// event structs): large enough to amortise slab allocation to noise,
	// small enough that reaping tail slabs after a burst actually returns
	// memory in useful steps.
	arenaSlabBits = 8
	arenaSlabSize = 1 << arenaSlabBits
	arenaSlabMask = arenaSlabSize - 1
)

// eventRef addresses one event slot in an arena: slab index in the high
// bits, slot within the slab in the low arenaSlabBits. It is the handle
// stored in the calendar queue's lanes and inside Timers.
type eventRef uint32

type eventSlab [arenaSlabSize]event

// eventArena is slab-backed storage for one engine's events. All access is
// engine-local (one arena per shard), so nothing here needs atomicity.
type eventArena struct {
	slabs []*eventSlab
	// free lists recycled slots, LIFO. Refs, not pointers: 4 bytes each and
	// invisible to the GC.
	free []eventRef
	// freeBySlab[i] counts free-listed slots in slab i; a tail slab whose
	// count reaches arenaSlabSize holds no live events and can be reaped.
	freeBySlab []int32
	// next is the bump pointer: slots [0, next) have been handed out at
	// least once, slots beyond live in the current tail slab untouched.
	next int
	// stamp issues a unique generation per allocation, so a stale Timer can
	// never match a later incarnation — not even one living in a slab that
	// was reaped and re-created at the same index.
	stamp uint64
}

// get resolves a ref to its event slot. The ref must be live or recently
// live; Timer paths bounds-check with valid first.
func (a *eventArena) get(r eventRef) *event {
	return &a.slabs[r>>arenaSlabBits][r&arenaSlabMask]
}

// valid reports whether r still addresses allocated storage (its slab has
// not been reaped).
func (a *eventArena) valid(r eventRef) bool {
	return int(r>>arenaSlabBits) < len(a.slabs)
}

// alloc hands out a slot: from the free list when one is available,
// otherwise from the bump region, growing by one slab when that is
// exhausted. The returned event carries a fresh generation and is
// otherwise uninitialised — the caller assigns every field.
func (a *eventArena) alloc() (eventRef, *event) {
	var r eventRef
	if n := len(a.free); n > 0 {
		r = a.free[n-1]
		a.free = a.free[:n-1]
		a.freeBySlab[r>>arenaSlabBits]--
	} else {
		if a.next == len(a.slabs)*arenaSlabSize {
			a.slabs = append(a.slabs, new(eventSlab))
			a.freeBySlab = append(a.freeBySlab, 0)
		}
		r = eventRef(a.next)
		a.next++
	}
	ev := a.get(r)
	a.stamp++
	ev.gen = a.stamp
	ev.dead = false
	return r, ev
}

// release returns a slot to the free list. The event keeps its generation
// until the slot's next alloc stamps a fresh one; callers clear the
// reference-holding fields before releasing.
func (a *eventArena) release(r eventRef) {
	a.free = append(a.free, r)
	a.freeBySlab[r>>arenaSlabBits]++
}

// freeLen returns the recycled-slot count (the engine's pooled-event
// capacity, as surfaced by Engine.FreeListLen).
func (a *eventArena) freeLen() int { return len(a.free) }

// live returns the number of slots currently handed out.
func (a *eventArena) live() int { return a.next - len(a.free) }

// reap drops tail slabs that hold no live events until the free list is at
// or below maxFree, and returns the number of slots released back to the
// allocator. Only whole tail slabs can go — interior slabs may pin live
// events — so a reap is best-effort; after a burst fully drains, the tail
// of the arena is exactly the burst's slabs and the reap reclaims them.
func (a *eventArena) reap(maxFree int) int {
	dropped := 0
	for len(a.slabs) > 1 && len(a.free)-dropped > maxFree {
		last := len(a.slabs) - 1
		inTail := a.next - last*arenaSlabSize // handed-out slots in the tail slab
		if int(a.freeBySlab[last]) != inTail || inTail == 0 {
			break // tail slab holds live (or no) events; nothing to reap
		}
		a.slabs = a.slabs[:last]
		a.freeBySlab = a.freeBySlab[:last]
		a.next = last * arenaSlabSize
		dropped += inTail
	}
	if dropped == 0 {
		return 0
	}
	// One filter pass removes the reaped slabs' refs from the free list.
	kept := a.free[:0]
	limit := eventRef(a.next)
	for _, r := range a.free {
		if r < limit {
			kept = append(kept, r)
		}
	}
	a.free = kept
	return dropped
}

// Slab is a generic slab allocator for pooled values: it hands out *T
// pointers carved from fixed-size blocks instead of one heap object per
// value. Callers keep their own free lists (recycling is unchanged); Slab
// only replaces the cold-path `new(T)` so that pool growth costs one
// allocation per block, values sit contiguously for cache locality, and
// the GC scans block headers instead of thousands of individual objects.
// The zero value is ready to use.
type Slab[T any] struct {
	block []T
}

// slabBlockLen is the number of values carved from one block.
const slabBlockLen = 64

// New returns a pointer to a zero T with slab-backed storage. Previously
// returned pointers stay valid: a full block is abandoned to its
// outstanding pointers and a fresh one is carved.
func (s *Slab[T]) New() *T {
	if len(s.block) == cap(s.block) {
		s.block = make([]T, 0, slabBlockLen)
	}
	var zero T
	s.block = append(s.block, zero)
	return &s.block[len(s.block)-1]
}
