package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if FromMillis(1.5) != 1500*Microsecond {
		t.Fatalf("FromMillis(1.5) = %v", FromMillis(1.5))
	}
	if FromMillis(-3) != 0 {
		t.Fatalf("negative millis should clamp to zero")
	}
	if FromSeconds(2) != 2*Second {
		t.Fatalf("FromSeconds(2) = %v", FromSeconds(2))
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds() = %v", got)
	}
	if got := (2500 * Microsecond).Milliseconds(); got != 2.5 {
		t.Fatalf("Milliseconds() = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Microsecond, "500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.MustSchedule(30*Millisecond, func(*Engine) { got = append(got, 3) })
	e.MustSchedule(10*Millisecond, func(*Engine) { got = append(got, 1) })
	e.MustSchedule(20*Millisecond, func(*Engine) { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("delivery order = %v", got)
	}
	if e.Now() != 30*Millisecond {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		e.MustSchedule(5*Millisecond, func(*Engine) { got = append(got, i) })
	}
	e.Run(0)
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-instant events not FIFO: %v", got)
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := NewEngine()
	e.MustSchedule(10*Millisecond, func(*Engine) {})
	e.Run(0)
	if _, err := e.ScheduleAt(5*Millisecond, func(*Engine) {}); err != ErrPast {
		t.Fatalf("expected ErrPast, got %v", err)
	}
	if _, err := e.Schedule(-1, func(*Engine) {}); err != ErrPast {
		t.Fatalf("expected ErrPast for negative delay, got %v", err)
	}
}

func TestZeroDelayRunsAtCurrentInstant(t *testing.T) {
	e := NewEngine()
	fired := false
	e.MustSchedule(10*Millisecond, func(eng *Engine) {
		eng.MustSchedule(0, func(*Engine) { fired = true })
	})
	e.Run(0)
	if !fired {
		t.Fatal("zero-delay follow-up did not fire")
	}
	if e.Now() != 10*Millisecond {
		t.Fatalf("clock advanced unexpectedly: %v", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.MustSchedule(10*Millisecond, func(*Engine) { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should report false")
	}
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Processed() != 0 {
		t.Fatalf("processed = %d, want 0", e.Processed())
	}
}

func TestRunUntilDeadline(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		e.MustSchedule(d*Millisecond, func(eng *Engine) { got = append(got, eng.Now()) })
	}
	n := e.RunUntil(25*Millisecond, 0)
	if n != 2 {
		t.Fatalf("delivered %d events, want 2", n)
	}
	if e.Now() != 25*Millisecond {
		t.Fatalf("clock = %v, want 25ms (advanced to deadline)", e.Now())
	}
	n = e.RunUntil(100*Millisecond, 0)
	if n != 2 {
		t.Fatalf("second phase delivered %d, want 2", n)
	}
}

func TestMaxEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.MustSchedule(Time(i)*Millisecond, func(*Engine) { count++ })
	}
	if n := e.Run(4); n != 4 || count != 4 {
		t.Fatalf("Run(4) delivered %d, handler ran %d times", n, count)
	}
	if n := e.Run(0); n != 6 {
		t.Fatalf("resumed run delivered %d, want 6", n)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.MustSchedule(Time(i)*Millisecond, func(eng *Engine) {
			count++
			if count == 3 {
				eng.Stop()
			}
		})
	}
	e.Run(0)
	if count != 3 {
		t.Fatalf("stopped after %d events, want 3", count)
	}
	// A subsequent Run resumes.
	e.Run(0)
	if count != 10 {
		t.Fatalf("after resume count = %d, want 10", count)
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.Every(10*Millisecond, func(*Engine) bool {
		ticks++
		return ticks < 5
	})
	e.Run(0)
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if e.Now() != 50*Millisecond {
		t.Fatalf("clock = %v, want 50ms", e.Now())
	}
}

func TestEveryCancel(t *testing.T) {
	e := NewEngine()
	ticks := 0
	tm := e.Every(10*Millisecond, func(*Engine) bool {
		ticks++
		return true
	})
	e.MustSchedule(35*Millisecond, func(*Engine) { tm.Cancel() })
	e.RunUntil(200*Millisecond, 0)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3 (cancelled at 35ms)", ticks)
	}
}

func TestEveryPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive period")
		}
	}()
	NewEngine().Every(0, func(*Engine) bool { return false })
}

func TestHorizonDropsLateEvents(t *testing.T) {
	e := NewEngine()
	e.SetHorizon(50 * Millisecond)
	fired := 0
	e.MustSchedule(40*Millisecond, func(*Engine) { fired++ })
	tm := e.MustSchedule(60*Millisecond, func(*Engine) { fired++ })
	if tm.Pending() {
		t.Fatal("beyond-horizon timer should be dead on arrival")
	}
	e.Run(0)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestDrain(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.MustSchedule(Time(i+1)*Millisecond, func(*Engine) { t.Fatal("drained event fired") })
	}
	e.Drain()
	if e.Len() != 0 {
		t.Fatalf("queue len = %d after drain", e.Len())
	}
	e.Run(0)
}

func TestProcessedScheduledCounters(t *testing.T) {
	e := NewEngine()
	tm := e.MustSchedule(Millisecond, func(*Engine) {})
	e.MustSchedule(2*Millisecond, func(*Engine) {})
	tm.Cancel()
	e.Run(0)
	if e.Scheduled() != 2 {
		t.Fatalf("scheduled = %d, want 2", e.Scheduled())
	}
	if e.Processed() != 1 {
		t.Fatalf("processed = %d, want 1", e.Processed())
	}
}

// TestHeapPropertyQuick drives the queue with random timestamps and checks
// events come out in non-decreasing time order with FIFO tie-breaks.
func TestHeapPropertyQuick(t *testing.T) {
	prop := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, d := range delays {
			i, at := i, Time(d)
			e.MustSchedule(at, func(eng *Engine) {
				got = append(got, rec{eng.Now(), i})
			})
		}
		e.Run(0)
		if len(got) != len(delays) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueRandomizedPushPop(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var q calendarQueue
	q.arena = &eventArena{}
	const n = 2000
	for i := 0; i < n; i++ {
		at := Time(r.Intn(1000))
		ref, ev := q.arena.alloc()
		ev.at, ev.seq = at, uint64(i)
		q.push(qent{at: at, seq: uint64(i), ref: ref})
	}
	var prev qent
	for i := 0; i < n; i++ {
		ev, ok := q.pop()
		if !ok {
			t.Fatalf("queue exhausted early at %d", i)
		}
		if i > 0 && qentLess(ev, prev) {
			t.Fatalf("ordering violated: (%d,%d) after (%d,%d)", ev.at, ev.seq, prev.at, prev.seq)
		}
		prev = ev
	}
	if _, ok := q.pop(); ok {
		t.Fatal("queue should be empty")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining", q.Len())
	}
}

func TestRNGStreamsIndependentAndReproducible(t *testing.T) {
	r1 := NewRNG(7)
	r2 := NewRNG(7)
	a := r1.Stream("workload")
	b := r2.Stream("workload")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed,name) streams diverged")
		}
	}
	c := NewRNG(7).Stream("topology")
	d := NewRNG(7).Stream("workload")
	same := true
	for i := 0; i < 16; i++ {
		if c.Int63() != d.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("differently named streams produced identical output")
	}
	if NewRNG(7).Seed() != 7 {
		t.Fatal("Seed() mismatch")
	}
}

func TestRNGStreamN(t *testing.T) {
	r := NewRNG(11)
	a := r.StreamN("peer", 0)
	b := r.StreamN("peer", 1)
	if a.Int63() == b.Int63() && a.Int63() == b.Int63() && a.Int63() == b.Int63() {
		t.Fatal("indexed streams look identical")
	}
	x := NewRNG(11).StreamN("peer", 5)
	y := NewRNG(11).StreamN("peer", 5)
	for i := 0; i < 50; i++ {
		if x.Int63() != y.Int63() {
			t.Fatal("StreamN not reproducible")
		}
	}
}
