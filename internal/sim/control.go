package sim

// Control is a periodic callback, analogous to PeerSim's Control components
// (observers, dynamics injectors) that run every cycle. Returning false
// stops the rescheduling.
type Control func(e *Engine) bool

// Every schedules c to run every period, starting one period from now.
// It returns a Timer for the next pending occurrence; cancelling it stops
// the series.
func (e *Engine) Every(period Time, c Control) *Timer {
	if period <= 0 {
		panic("sim: non-positive control period")
	}
	outer := &Timer{}
	var fire Handler
	fire = func(eng *Engine) {
		if !c(eng) {
			return
		}
		t, err := eng.Schedule(period, fire)
		if err == nil {
			*outer = *t
		}
	}
	t := e.MustSchedule(period, fire)
	*outer = *t
	return outer
}

// After is a readability helper: run h once after delay, panicking on an
// invalid delay (only possible with a negative value).
func (e *Engine) After(delay Time, h Handler) *Timer {
	return e.MustSchedule(delay, h)
}
