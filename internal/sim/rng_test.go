package sim

import "testing"

func TestStreamsIndependentAndReproducible(t *testing.T) {
	r := NewRNG(7)
	a1 := r.Stream("topology").Int63()
	a2 := NewRNG(7).Stream("topology").Int63()
	if a1 != a2 {
		t.Fatal("same (seed, name) stream not reproducible")
	}
	if r.Stream("topology").Int63() == r.Stream("workload").Int63() {
		t.Fatal("named streams coincide")
	}
	if r.StreamN("peer", 1).Int63() == r.StreamN("peer", 2).Int63() {
		t.Fatal("indexed streams coincide")
	}
	if r.Seed() != 7 {
		t.Fatalf("Seed() = %d", r.Seed())
	}
}

func TestTrialSeedZeroTrialIsIdentity(t *testing.T) {
	for _, root := range []int64{0, 1, -5, 1 << 40} {
		if got := TrialSeed(root, 0); got != root {
			t.Fatalf("TrialSeed(%d, 0) = %d, want identity", root, got)
		}
	}
}

func TestTrialSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]int{}
	for trial := 0; trial < 1000; trial++ {
		s := TrialSeed(42, trial)
		if s2 := TrialSeed(42, trial); s2 != s {
			t.Fatalf("trial %d seed not deterministic: %d vs %d", trial, s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("trials %d and %d collide on seed %d", prev, trial, s)
		}
		seen[s] = trial
	}
}

func TestTrialSeedVariesWithRoot(t *testing.T) {
	if TrialSeed(1, 3) == TrialSeed(2, 3) {
		t.Fatal("different roots give identical trial seeds")
	}
}
