// Package sim implements a deterministic discrete-event simulation engine,
// functionally equivalent to the event-driven mode of the PeerSim simulator
// used in the Locaware paper (El Dick & Pacitti, DAMAP/EDBT 2009).
//
// The engine maintains a virtual clock and a priority queue of timestamped
// events. Events scheduled for the same instant are delivered in FIFO order
// of scheduling, which makes runs fully reproducible for a fixed seed.
package sim

import "fmt"

// Time is a virtual timestamp in microseconds since the start of the
// simulation. Microsecond granularity keeps millisecond-scale link latencies
// exact while leaving headroom for sub-millisecond processing delays.
type Time int64

// Common time units expressed in Time ticks.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the time in a human-readable unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%dus", int64(t))
	}
}

// FromMillis converts a floating-point millisecond quantity (as produced by
// the latency model) into a Time, rounding to the nearest microsecond.
func FromMillis(ms float64) Time {
	if ms < 0 {
		ms = 0
	}
	return Time(ms*1000 + 0.5)
}

// FromSeconds converts floating-point seconds into a Time.
func FromSeconds(s float64) Time {
	if s < 0 {
		s = 0
	}
	return Time(s*float64(Second) + 0.5)
}

// Handler is the callback attached to a scheduled event. It receives the
// engine so it can schedule follow-up events.
//
// Handler is the legacy closure form of event dispatch: every Schedule/Post
// of a fresh closure allocates it. Hot paths use typed Events instead
// (PostEvent and friends), which dispatch through a pooled concrete type
// with zero allocations; Handler remains fully supported for cold paths and
// existing callers, and the two forms interleave in one queue with the same
// (time, seq) FIFO ordering.
type Handler func(e *Engine)

// Event is a typed scheduled action: the engine calls Fire on the engine
// that delivers it. Concrete implementations live with the subsystem that
// schedules them (protocol message deliveries, scenario churn ticks, core
// submission chains) and are pooled by their owners, so steady-state
// scheduling allocates nothing — storing a pointer-typed Event in the
// queue's interface field does not box.
//
// Fire receives the delivering engine rather than a captured one so the
// same event value works under the sharded runner, where the delivering
// engine is the destination shard's.
type Event interface {
	Fire(e *Engine)
}

// Destined is implemented by events that name a destination peer. The
// sharded runner routes a Destined event to the shard owning its
// destination; undestined events stay on the engine they were scheduled on
// (shard 0 hosts the control plane).
type Destined interface {
	Event
	// EventDst returns the destination peer id.
	EventDst() int
}

// Sourced is implemented by transfer-shaped events that also name the peer
// the payload came from, so engine-level traces can render links
// (src → dst) rather than bare destinations. Events synthesised without a
// sending peer return -1.
type Sourced interface {
	Event
	// EventSrc returns the source peer id, or -1 when the event has none.
	EventSrc() int
}

// Named is implemented by events that want a stable render name in traces
// and debugging output; see EventName.
type Named interface {
	// EventName returns a short kind label, e.g. "query-deliver".
	EventName() string
}

// EventName returns ev's render name: its EventName() when implemented,
// otherwise its Go type.
func EventName(ev Event) string {
	if n, ok := ev.(Named); ok {
		return n.EventName()
	}
	return fmt.Sprintf("%T", ev)
}

// event is one scheduled entry's payload, stored flat in the engine's event
// arena and addressed by eventRef handles. seq breaks timestamp ties in
// scheduling order so same-instant events are FIFO. Exactly one of handler
// and typed is set. Slots recycle through the arena's free list once
// delivered or discarded; gen is a unique per-allocation stamp, so a stale
// Timer handle can never match a later incarnation of the slot.
type event struct {
	at      Time
	seq     uint64
	handler Handler
	typed   Event
	// next chains this slot into its calendar lane (see queue.go); lanes
	// are intrusive lists through the arena, so queueing an event never
	// allocates lane storage.
	next eventRef
	dead bool
	gen  uint64
}

// Timer is a handle to a scheduled event that can be cancelled. It names
// the event as an arena reference plus the generation it was issued for,
// so it stays safe to interrogate after the event fires, recycles, or even
// after the storage behind it is reaped.
type Timer struct {
	e   *Engine
	ref eventRef
	gen uint64
}

// deadTimer is the shared handle returned for events dropped by the
// horizon; its nil engine makes it permanently non-pending.
var deadTimer = &Timer{}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. Cancel reports whether the event was
// still pending. The cancelled event rides the queue until popped or
// reaped by a calendar rebuild, counted either way by Engine.Cancelled.
func (t *Timer) Cancel() bool {
	if !t.Pending() {
		return false
	}
	t.e.arena.get(t.ref).dead = true
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (t *Timer) Pending() bool {
	if t == nil || t.e == nil || !t.e.arena.valid(t.ref) {
		return false
	}
	ev := t.e.arena.get(t.ref)
	return ev.gen == t.gen && !ev.dead
}
