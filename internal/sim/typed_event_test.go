package sim

import (
	"testing"
)

// countEvent is a minimal typed event: it appends its tag to a shared log
// and optionally schedules a follow-up on the delivering engine.
type countEvent struct {
	log  *[]int
	tag  int
	next *countEvent
	in   Time
}

func (ev *countEvent) Fire(e *Engine) {
	*ev.log = append(*ev.log, ev.tag)
	if ev.next != nil {
		e.PostEvent(ev.in, ev.next)
	}
}

func (ev *countEvent) EventName() string { return "count" }

func TestTypedEventDispatch(t *testing.T) {
	e := NewEngine()
	var log []int
	b := &countEvent{log: &log, tag: 2}
	a := &countEvent{log: &log, tag: 1, next: b, in: 5 * Millisecond}
	e.PostEvent(10*Millisecond, a)
	if n := e.Run(0); n != 2 {
		t.Fatalf("delivered %d events, want 2", n)
	}
	if len(log) != 2 || log[0] != 1 || log[1] != 2 {
		t.Fatalf("log = %v", log)
	}
	if e.Now() != 15*Millisecond {
		t.Fatalf("clock = %v, want 15ms", e.Now())
	}
}

func TestTypedAndHandlerEventsShareFIFO(t *testing.T) {
	e := NewEngine()
	var log []int
	e.Post(5*Millisecond, func(*Engine) { log = append(log, 0) })
	e.PostEvent(5*Millisecond, &countEvent{log: &log, tag: 1})
	e.Post(5*Millisecond, func(*Engine) { log = append(log, 2) })
	e.PostEvent(5*Millisecond, &countEvent{log: &log, tag: 3})
	e.Run(0)
	for i, v := range log {
		if v != i {
			t.Fatalf("same-instant typed/handler events not FIFO: %v", log)
		}
	}
	if len(log) != 4 {
		t.Fatalf("delivered %d events, want 4", len(log))
	}
}

// TestPostEventZeroAlloc locks the tentpole claim: scheduling and firing a
// pooled typed event allocates nothing in steady state (the engine's
// internal wrappers come from its free list, and a pointer-typed Event in
// the interface field does not box).
func TestPostEventZeroAlloc(t *testing.T) {
	e := NewEngine()
	var log []int
	ev := &countEvent{log: &log, tag: 0}
	// Warm the free list and the log's capacity.
	e.PostEvent(Millisecond, ev)
	e.Run(0)
	log = log[:0]
	n := testing.AllocsPerRun(200, func() {
		log = log[:0]
		e.PostEvent(Millisecond, ev)
		e.Run(0)
	})
	if n != 0 {
		t.Fatalf("PostEvent+Run allocated %.1f per cycle, want 0", n)
	}
}

func TestScheduleEventCancel(t *testing.T) {
	e := NewEngine()
	var log []int
	tm, err := e.ScheduleEvent(10*Millisecond, &countEvent{log: &log, tag: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !tm.Pending() {
		t.Fatal("timer should be pending before cancel")
	}
	if !tm.Cancel() {
		t.Fatal("first cancel should report pending")
	}
	e.Run(0)
	if len(log) != 0 {
		t.Fatalf("cancelled typed event fired: %v", log)
	}
}

func TestEventName(t *testing.T) {
	if got := EventName(&countEvent{}); got != "count" {
		t.Fatalf("EventName(named) = %q", got)
	}
	if got := EventName(anonEvent{}); got != "sim.anonEvent" {
		t.Fatalf("EventName(unnamed) = %q", got)
	}
}

type anonEvent struct{}

func (anonEvent) Fire(*Engine) {}

func TestObserverSeesTypedEvents(t *testing.T) {
	e := NewEngine()
	var names []string
	var ats []Time
	e.SetObserver(func(at Time, ev Event) {
		names = append(names, EventName(ev))
		ats = append(ats, at)
	})
	var log []int
	e.PostEvent(2*Millisecond, &countEvent{log: &log, tag: 1})
	e.Post(Millisecond, func(*Engine) {}) // handlers are not observed
	e.Run(0)
	if len(names) != 1 || names[0] != "count" || ats[0] != 2*Millisecond {
		t.Fatalf("observer saw %v at %v", names, ats)
	}
}

// TestTimerStaleGenerationInvalidated covers the recycled-event hazard: a
// Timer held across its event's delivery must not be able to cancel the
// free-listed event's next incarnation.
func TestTimerStaleGenerationInvalidated(t *testing.T) {
	e := NewEngine()
	fired := 0
	t1 := e.MustSchedule(Millisecond, func(*Engine) { fired++ })
	e.Run(0)
	if fired != 1 {
		t.Fatal("first event did not fire")
	}
	if t1.Pending() {
		t.Fatal("fired timer still pending")
	}
	// The second schedule reuses the recycled internal event; the stale
	// handle must observe the bumped generation.
	t2 := e.MustSchedule(Millisecond, func(*Engine) { fired++ })
	if t1.Pending() {
		t.Fatal("stale timer reports pending for the recycled event")
	}
	if t1.Cancel() {
		t.Fatal("stale timer claims to have cancelled something")
	}
	if !t2.Pending() {
		t.Fatal("stale Cancel killed the new incarnation")
	}
	e.Run(0)
	if fired != 2 {
		t.Fatalf("second incarnation did not fire (fired=%d)", fired)
	}
}

// TestTimerCancelledThenRecycled is the cancel-side variant: a cancelled
// event is recycled at delivery time, and the cancelling handle must stay
// dead across the recycle.
func TestTimerCancelledThenRecycled(t *testing.T) {
	e := NewEngine()
	fired := 0
	t1 := e.MustSchedule(Millisecond, func(*Engine) { fired++ })
	t1.Cancel()
	e.Run(0)
	if fired != 0 {
		t.Fatal("cancelled event fired")
	}
	t2 := e.MustSchedule(Millisecond, func(*Engine) { fired++ })
	if t1.Pending() || t1.Cancel() {
		t.Fatal("cancelled stale timer interacts with recycled event")
	}
	e.Run(0)
	if fired != 1 || t2.Pending() {
		t.Fatalf("recycled event lifecycle broken: fired=%d", fired)
	}
}

// TestDeadTimerFromHorizon covers the horizon-dropped path: ScheduleAt
// beyond the horizon returns the shared permanently-dead timer.
func TestDeadTimerFromHorizon(t *testing.T) {
	e := NewEngine()
	e.SetHorizon(10 * Millisecond)
	tm, err := e.ScheduleAt(20*Millisecond, func(*Engine) { t.Fatal("dropped event fired") })
	if err != nil {
		t.Fatalf("horizon drop should not error: %v", err)
	}
	if tm.Pending() {
		t.Fatal("horizon-dropped timer reports pending")
	}
	if tm.Cancel() {
		t.Fatal("horizon-dropped timer claims a cancellation")
	}
	te, err := e.ScheduleEventAt(20*Millisecond, anonEvent{})
	if err != nil || te.Pending() || te.Cancel() {
		t.Fatalf("typed horizon drop: timer=%v err=%v", te.Pending(), err)
	}
	// The shared dead timer must never alias a live event.
	live := e.MustSchedule(5*Millisecond, func(*Engine) {})
	if tm.Cancel() || !live.Pending() {
		t.Fatal("dead timer affected a live event")
	}
	if n := e.Run(0); n != 1 {
		t.Fatalf("delivered %d events, want 1 (the live one)", n)
	}
}
