package sim

import "math/rand"

// RNG wraps math/rand with named substreams so each subsystem (topology,
// workload, protocol tie-breaking, churn) draws from an independent,
// reproducible sequence. Splitting streams prevents a change in one
// subsystem's consumption pattern from perturbing every other subsystem —
// essential when comparing protocols under an identical workload.
type RNG struct {
	seed int64
}

// NewRNG returns a splitter rooted at seed.
func NewRNG(seed int64) *RNG { return &RNG{seed: seed} }

// Seed returns the root seed.
func (r *RNG) Seed() int64 { return r.seed }

// Stream derives an independent *rand.Rand for the named subsystem. The same
// (seed, name) pair always yields the same stream.
func (r *RNG) Stream(name string) *rand.Rand {
	return rand.New(rand.NewSource(r.seed ^ hashName(name)))
}

// StreamN derives an indexed substream, e.g. one per peer.
func (r *RNG) StreamN(name string, n int) *rand.Rand {
	const golden = int64(-0x61c8864680b583eb) // 0x9e3779b97f4a7c15 as int64
	return rand.New(rand.NewSource(r.seed ^ hashName(name) ^ (int64(n)+1)*golden))
}

// TrialSeed derives the root seed of replicated trial number trial
// (0-based) from an experiment's root seed. Trial 0 returns root unchanged,
// so a single-trial experiment is bit-for-bit identical to a plain
// sequential run rooted at the same seed; later trials push the pair
// through a SplitMix64 finalizer so neighbouring trial indexes land in
// decorrelated regions of the seed space while every (root, trial) pair
// stays reproducible.
func TrialSeed(root int64, trial int) int64 {
	if trial == 0 {
		return root
	}
	z := uint64(root) + uint64(trial)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return int64(z)
}

// hashName is FNV-1a folded to int64; good enough to decorrelate stream
// names without importing hash/fnv in the hot path.
func hashName(s string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return int64(h)
}
