package sim

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// hopEvent is a chain of destined events hopping across a synthetic peer
// set: each delivery bumps the destination's counter and re-posts itself to
// the next peer. One chain is one reused event object — the shard barrier
// hands it between shards, so pooled mutation is safe exactly as it is for
// protocol messages.
type hopEvent struct {
	chain  int
	chains int
	peers  int
	dst    int
	hops   int

	counts []uint32
	sumAt  []Time
	log    *[]hopRecord
}

type hopRecord struct {
	at    Time
	chain int
	peer  int
}

func (ev *hopEvent) EventDst() int     { return ev.dst }
func (ev *hopEvent) EventName() string { return "hop" }

func (ev *hopEvent) Fire(e *Engine) {
	ev.counts[ev.dst]++
	ev.sumAt[ev.dst] += e.Now()
	if ev.log != nil {
		*ev.log = append(*ev.log, hopRecord{at: e.Now(), chain: ev.chain, peer: ev.dst})
	}
	if ev.hops == 0 {
		return
	}
	ev.hops--
	ev.dst = (ev.dst + ev.chain + 1) % ev.peers
	// Chain c only ever fires at times congruent to c modulo the chain
	// count: every delay is a positive multiple of chains, so no two
	// chains can tie — which makes the global delivery order a pure
	// function of time, identical for every shard layout.
	delay := Time(ev.chains * (1 + (ev.dst+ev.hops)%5))
	e.PostEvent(delay, ev)
}

// seedHops starts `chains` hop chains over `peers` peers; log may be nil.
func seedHops(s *Sharded, chains, peers, hops int, log *[]hopRecord) (counts []uint32, sumAt []Time) {
	counts = make([]uint32, peers)
	sumAt = make([]Time, peers)
	for c := 0; c < chains; c++ {
		ev := &hopEvent{
			chain: c, chains: chains, peers: peers,
			dst: c % peers, hops: hops,
			counts: counts, sumAt: sumAt, log: log,
		}
		s.Engine(0).PostEvent(Time(chains+c), ev)
	}
	return counts, sumAt
}

// TestShardedShardCountInvariance is the determinism lock of the sharded
// runner: for a tie-free workload, the global delivery order (time, chain,
// peer) is identical for 1, 2, 3 and 4 shards, sequentially drained.
func TestShardedShardCountInvariance(t *testing.T) {
	const chains, peers, hops = 8, 24, 40
	var want []hopRecord
	for _, shards := range []int{1, 2, 3, 4} {
		var log []hopRecord
		s := NewSharded(ShardedOptions{
			Shards:  shards,
			ShardOf: func(peer int) int { return peer },
		})
		seedHops(s, chains, peers, hops, &log)
		n := s.Run(0)
		if n != uint64(chains*(hops+1)) {
			t.Fatalf("shards=%d delivered %d events, want %d", shards, n, chains*(hops+1))
		}
		if s.Processed() != n {
			t.Fatalf("shards=%d Processed()=%d, delivered=%d", shards, s.Processed(), n)
		}
		if shards == 1 {
			want = log
			continue
		}
		if !reflect.DeepEqual(log, want) {
			t.Fatalf("shards=%d delivery order diverged from single-shard run", shards)
		}
	}
}

// TestShardedParallelMatchesSequential locks the parallel drain: with
// shard-confined state, goroutine-per-shard epochs produce exactly the
// per-peer outcome of the sequential drain.
func TestShardedParallelMatchesSequential(t *testing.T) {
	const chains, peers, hops = 12, 32, 60
	run := func(parallel bool) ([]uint32, []Time) {
		s := NewSharded(ShardedOptions{
			Shards:   4,
			ShardOf:  func(peer int) int { return peer },
			Parallel: parallel,
		})
		counts, sumAt := seedHops(s, chains, peers, hops, nil)
		s.Run(0)
		return counts, sumAt
	}
	seqCounts, seqSum := run(false)
	parCounts, parSum := run(true)
	if !reflect.DeepEqual(seqCounts, parCounts) || !reflect.DeepEqual(seqSum, parSum) {
		t.Fatal("parallel epoch drain diverged from sequential drain")
	}
}

// TestShardedSingleShardDelegates locks the Shards:1 fallback: the sharded
// wrapper around one engine delivers the same order as a bare Engine.
func TestShardedSingleShardDelegates(t *testing.T) {
	const chains, peers, hops = 4, 8, 10
	var bare []hopRecord
	{
		e := NewEngine()
		counts := make([]uint32, peers)
		sumAt := make([]Time, peers)
		for c := 0; c < chains; c++ {
			e.PostEvent(Time(chains+c), &hopEvent{
				chain: c, chains: chains, peers: peers, dst: c % peers, hops: hops,
				counts: counts, sumAt: sumAt, log: &bare,
			})
		}
		e.Run(0)
	}
	var wrapped []hopRecord
	s := NewSharded(ShardedOptions{Shards: 1})
	seedHops(s, chains, peers, hops, &wrapped)
	s.Run(0)
	if !reflect.DeepEqual(bare, wrapped) {
		t.Fatal("single-shard sharded run diverged from bare engine")
	}
}

// mailProbe is a destined event recording its delivery order.
type mailProbe struct {
	dst int
	tag string
	log *[]string
}

func (m *mailProbe) EventDst() int { return m.dst }
func (m *mailProbe) Fire(e *Engine) {
	*m.log = append(*m.log, fmt.Sprintf("%s@%d", m.tag, e.Now()))
}

// TestShardedMailboxOrdering locks the deterministic merge: same-instant
// cross-shard deliveries order by (source shard, source sequence), not by
// drain interleaving.
func TestShardedMailboxOrdering(t *testing.T) {
	var log []string
	s := NewSharded(ShardedOptions{
		Shards:  3,
		ShardOf: func(peer int) int { return peer },
	})
	// Shards 1 and 2 each send two events to peer 0 (shard 0) at the same
	// instant. Posting on shard i's engine routes through its outbox.
	s.Engine(2).PostEvent(5, &mailProbe{dst: 0, tag: "s2a", log: &log})
	s.Engine(1).PostEvent(5, &mailProbe{dst: 0, tag: "s1a", log: &log})
	s.Engine(2).PostEvent(5, &mailProbe{dst: 0, tag: "s2b", log: &log})
	s.Engine(1).PostEvent(5, &mailProbe{dst: 0, tag: "s1b", log: &log})
	if s.Len() != 4 {
		t.Fatalf("Len() = %d before run, want 4 mailbox items", s.Len())
	}
	s.Run(0)
	want := []string{"s1a@5", "s1b@5", "s2a@5", "s2b@5"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("mailbox order = %v, want %v", log, want)
	}
	if s.Now() != 5 {
		t.Fatalf("Now() = %v, want 5", s.Now())
	}
}

// TestShardedObserverAndBudget exercises SetObserver plus the maxEvents and
// deadline paths of the epoch loop.
func TestShardedObserverAndBudget(t *testing.T) {
	s := NewSharded(ShardedOptions{Shards: 2, ShardOf: func(p int) int { return p }})
	var seen []string
	s.SetObserver(func(at Time, ev Event) { seen = append(seen, EventName(ev)) })
	var log []string
	s.Engine(0).PostEvent(10, &mailProbe{dst: 1, tag: "a", log: &log})
	s.Engine(0).PostEvent(20, &mailProbe{dst: 0, tag: "b", log: &log})
	s.Engine(0).PostEvent(30, &mailProbe{dst: 1, tag: "c", log: &log})
	if n := s.RunUntil(Time(25), 0); n != 2 {
		t.Fatalf("deadline run delivered %d, want 2", n)
	}
	if s.Now() != 25 {
		t.Fatalf("Now() after deadline = %v, want 25", s.Now())
	}
	if n := s.Run(1); n != 1 {
		t.Fatalf("budget run delivered %d, want 1", n)
	}
	if len(seen) != 3 {
		t.Fatalf("observer saw %d events, want 3", len(seen))
	}
	if !reflect.DeepEqual(log, []string{"a@10", "b@20", "c@30"}) {
		t.Fatalf("log = %v", log)
	}
}

// TestShardedRunHelper covers the one-shot entry point.
func TestShardedRunHelper(t *testing.T) {
	var log []hopRecord
	n, err := ShardedRun(ShardedOptions{Shards: 2, ShardOf: func(p int) int { return p }},
		func(s *Sharded) { seedHops(s, 2, 4, 5, &log) })
	if err != nil {
		t.Fatalf("ShardedRun error: %v", err)
	}
	if n != 12 {
		t.Fatalf("ShardedRun delivered %d, want 12", n)
	}
}

// TestShardedHorizon checks that the horizon drops both locally queued and
// mailbox-routed events.
func TestShardedHorizon(t *testing.T) {
	var log []string
	s := NewSharded(ShardedOptions{Shards: 2, ShardOf: func(p int) int { return p }})
	s.SetHorizon(15)
	s.Engine(0).PostEvent(10, &mailProbe{dst: 1, tag: "keep", log: &log})
	s.Engine(0).PostEvent(20, &mailProbe{dst: 1, tag: "drop", log: &log})
	s.Engine(0).PostEvent(20, &mailProbe{dst: 0, tag: "droplocal", log: &log})
	if n := s.Run(0); n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
	if !reflect.DeepEqual(log, []string{"keep@10"}) {
		t.Fatalf("log = %v", log)
	}
}

// stopEvent stops the delivering engine mid-run.
type stopEvent struct{ dst int }

func (e *stopEvent) EventDst() int    { return e.dst }
func (e *stopEvent) Fire(eng *Engine) { eng.Stop() }

// TestShardedStopPropagates locks the Engine.Stop contract under the
// sharded loop: an event stopping its shard's engine ends the whole run at
// the epoch boundary instead of being silently swallowed.
func TestShardedStopPropagates(t *testing.T) {
	var log []string
	s := NewSharded(ShardedOptions{Shards: 2, ShardOf: func(p int) int { return p }})
	s.Engine(0).PostEvent(10, &mailProbe{dst: 0, tag: "before", log: &log})
	s.Engine(0).PostEvent(20, &stopEvent{dst: 1})
	s.Engine(0).PostEvent(30, &mailProbe{dst: 0, tag: "after", log: &log})
	n := s.Run(0)
	if n != 2 {
		t.Fatalf("delivered %d events before stop, want 2", n)
	}
	if len(log) != 1 || log[0] != "before@10" {
		t.Fatalf("log = %v", log)
	}
	// The stopped run can be resumed by calling Run again.
	if n := s.Run(0); n != 1 || len(log) != 2 {
		t.Fatalf("resume delivered %d (log %v)", n, log)
	}
}

// crossPoster is an undestined event that, when fired, posts its probe
// with the given delay — from inside an epoch, so a cross-shard probe due
// before another shard's clock exercises the barrier-violation path.
type crossPoster struct {
	delay Time
	probe *mailProbe
}

func (p *crossPoster) Fire(e *Engine) { e.PostEvent(p.delay, p.probe) }

// TestShardedBarrierViolationError locks the graceful-degradation contract:
// a Lookahead wider than the workload's minimum cross-shard delay ends the
// run with an error naming the event time and the shards involved, instead
// of panicking.
func TestShardedBarrierViolationError(t *testing.T) {
	var log []string
	n, err := ShardedRun(ShardedOptions{
		Shards:    2,
		ShardOf:   func(peer int) int { return peer },
		Lookahead: 100, // far wider than the 10-tick cross-shard delay below
	}, func(s *Sharded) {
		// Shard 0 posts a cross-shard probe at t=10+10=20; shard 1's local
		// event at t=50 drains in the same (lookahead-widened) epoch, so
		// the probe arrives behind shard 1's clock at the next flush.
		s.Engine(0).PostEvent(10, &crossPoster{delay: 10, probe: &mailProbe{dst: 1, tag: "late", log: &log}})
		s.Engine(1).PostEvent(50, &mailProbe{dst: 1, tag: "local", log: &log})
	})
	if err == nil {
		t.Fatal("barrier violation did not surface as an error")
	}
	if !errors.Is(err, ErrPast) {
		t.Fatalf("error does not wrap ErrPast: %v", err)
	}
	for _, want := range []string{"t=20", "from shard 0 to shard 1", "lookahead 100"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	if n != 2 {
		t.Fatalf("delivered %d events before the violation, want 2", n)
	}
	// The late probe was never delivered.
	if !reflect.DeepEqual(log, []string{"local@50"}) {
		t.Fatalf("log = %v", log)
	}
}

// TestShardedEpochHook locks the merge point the protocol layer builds on:
// the hook runs after every epoch with all shard drains joined — so it
// always observes a log no event is concurrently appending to — and once
// more covers the final epoch, on the multi-shard loop and the single-shard
// delegate alike.
func TestShardedEpochHook(t *testing.T) {
	for _, shards := range []int{1, 2, 3} {
		s := NewSharded(ShardedOptions{
			Shards:  shards,
			ShardOf: func(peer int) int { return peer },
		})
		var log []hopRecord
		seedHops(s, 3, 6, 8, &log)
		var sizes []int
		s.SetEpochHook(func() { sizes = append(sizes, len(log)) })
		s.Run(0)
		if len(sizes) == 0 {
			t.Fatalf("shards=%d: epoch hook never ran", shards)
		}
		for i := 1; i < len(sizes); i++ {
			if sizes[i] < sizes[i-1] {
				t.Fatalf("shards=%d: hook observations not monotonic: %v", shards, sizes)
			}
		}
		if last := sizes[len(sizes)-1]; last != len(log) {
			t.Fatalf("shards=%d: final hook saw %d deliveries, run produced %d", shards, last, len(log))
		}
	}
}
