package sim

import (
	"time"

	"github.com/p2prepro/locaware/internal/obs"
)

// Metric families owned by the event loop. Timing histograms use a fixed
// log-scale layout from 1µs to 1s.
const (
	MetricEvents         = "sim_events_total"
	MetricQueueHighWater = "sim_queue_depth_high_water"
	MetricScheduled      = "sim_events_scheduled_total"
	MetricCancelled      = "sim_events_cancelled_total"
	MetricFreeList       = "sim_event_freelist_len"
	MetricEpochs         = "sim_epochs_total"
	MetricCrossShard     = "sim_cross_shard_events_total"
	MetricEpochDrain     = "sim_epoch_drain_seconds"
	MetricBarrierWait    = "sim_shard_barrier_wait_seconds"
)

func timingBuckets() []float64 { return obs.ExpBuckets(1e-6, 10, 7) }

// RegisterMetrics pre-registers every event-loop metric family so a
// scrape surface (the campaign coordinator) advertises the full catalog
// before the first instrumented run reports in.
func RegisterMetrics(reg *obs.Registry) {
	reg.CounterVec(MetricEvents, "Events delivered by kind.", "kind")
	reg.Gauge(MetricQueueHighWater, "Highest event-queue depth seen on any shard.")
	reg.Counter(MetricScheduled, "Events scheduled, including later-cancelled ones.")
	reg.Counter(MetricCancelled, "Cancelled events discarded at pop time or reaped during calendar rebuilds.")
	reg.Gauge(MetricFreeList, "Largest per-shard event freelist (pooled event capacity).")
	reg.Counter(MetricEpochs, "Sharded epochs completed.")
	reg.Counter(MetricCrossShard, "Events routed between shards through the epoch mailbox.")
	reg.Histogram(MetricEpochDrain, "Wall-clock time draining one epoch across all shards.", timingBuckets())
	reg.Histogram(MetricBarrierWait, "Per-shard idle time at the epoch barrier (time waiting for the slowest shard).", timingBuckets())
}

// EngineInstr holds one engine's shard-confined instrumentation: a plain
// increment per delivery, drained into the shared registry only at
// sequential points (epoch boundaries, end of run).
type EngineInstr struct {
	cell    obs.Cell
	events  *obs.LocalCounterVec
	queueHW *obs.LocalMax
}

// NewEngineInstr builds engine instrumentation against reg.
func NewEngineInstr(reg *obs.Registry) *EngineInstr {
	in := &EngineInstr{}
	in.events = in.cell.CounterVec(reg.CounterVec(MetricEvents, "Events delivered by kind.", "kind"))
	in.queueHW = in.cell.Max(reg.Gauge(MetricQueueHighWater, "Highest event-queue depth seen on any shard."))
	return in
}

// record notes one delivery. ev is nil for handler closures. Steady state
// is a map lookup and two plain increments — no atomics, no allocation.
func (in *EngineInstr) record(e *Engine, ev Event) {
	in.events.Get(instrKind(ev)).Inc()
	in.queueHW.Observe(uint64(e.queue.Len()))
}

// instrKind maps a delivered event to its metric label without
// allocating: named events use their constant name, anonymous typed
// events and handler closures fall into fixed buckets.
func instrKind(ev Event) string {
	if ev == nil {
		return "handler"
	}
	if n, ok := ev.(Named); ok {
		return n.EventName()
	}
	return "event"
}

// Drain folds pending counts into the registry. Sequential contexts only.
func (in *EngineInstr) Drain() { in.cell.Drain() }

// EventsByKind returns this engine's lifetime delivery counts per kind.
func (in *EngineInstr) EventsByKind() map[string]uint64 { return in.events.Totals() }

// QueueHighWater returns the lifetime queue-depth maximum.
func (in *EngineInstr) QueueHighWater() uint64 { return in.queueHW.Max() }

// EnableObs attaches instrumentation to a standalone engine.
func (e *Engine) EnableObs(reg *obs.Registry) *EngineInstr {
	in := NewEngineInstr(reg)
	e.instr = in
	return in
}

// FreeListLen returns the number of pooled event slots on the arena free
// list (capped at the epoch barrier by capFreeList).
func (e *Engine) FreeListLen() int { return e.arena.freeLen() }

// ShardedInstr instruments the epoch loop: epoch count, cross-shard
// mailbox traffic, wall-clock drain time per epoch and per-shard barrier
// waits, plus one EngineInstr per shard. All fields apart from the
// per-shard wait slots are touched only from the sequential epoch loop.
type ShardedInstr struct {
	epochs     *obs.Counter
	crossShard *obs.Counter
	drainSec   *obs.Histogram
	waitSec    *obs.Histogram
	engines    []*EngineInstr

	epochCount uint64
	crossCount uint64
	maxDrain   float64
	// waits[i] is written by shard i's worker goroutine and read after the
	// epoch's barrier join — never concurrently.
	waits []time.Duration
}

// EnableObs attaches instrumentation to the sharded loop and each of its
// engines. Wall-clock histograms record nondeterministic values, but
// nothing here feeds back into event order: the run stays bit-identical.
func (s *Sharded) EnableObs(reg *obs.Registry) *ShardedInstr {
	in := &ShardedInstr{
		epochs:     reg.Counter(MetricEpochs, "Sharded epochs completed."),
		crossShard: reg.Counter(MetricCrossShard, "Events routed between shards through the epoch mailbox."),
		drainSec:   reg.Histogram(MetricEpochDrain, "Wall-clock time draining one epoch across all shards.", timingBuckets()),
		waitSec:    reg.Histogram(MetricBarrierWait, "Per-shard idle time at the epoch barrier (time waiting for the slowest shard).", timingBuckets()),
		engines:    make([]*EngineInstr, len(s.engines)),
		waits:      make([]time.Duration, len(s.engines)),
	}
	for i, e := range s.engines {
		in.engines[i] = NewEngineInstr(reg)
		e.instr = in.engines[i]
	}
	s.instr = in
	return in
}

// endEpoch closes one epoch's accounting from the sequential loop.
func (in *ShardedInstr) endEpoch(drain time.Duration) {
	in.epochCount++
	in.epochs.Inc()
	sec := drain.Seconds()
	in.drainSec.Observe(sec)
	if sec > in.maxDrain {
		in.maxDrain = sec
	}
	for _, ei := range in.engines {
		ei.Drain()
	}
}

// recordWaits folds the per-shard drain durations of one parallel epoch
// into barrier-wait observations: each shard waited (slowest - own).
func (in *ShardedInstr) recordWaits() {
	var max time.Duration
	for _, w := range in.waits {
		if w > max {
			max = w
		}
	}
	for _, w := range in.waits {
		in.waitSec.Observe((max - w).Seconds())
	}
}

// Drain folds every engine's pending counts into the registry.
func (in *ShardedInstr) Drain() {
	for _, ei := range in.engines {
		ei.Drain()
	}
}

// Epochs returns the number of epochs completed this run.
func (in *ShardedInstr) Epochs() uint64 { return in.epochCount }

// CrossShardEvents returns the mailbox traffic this run.
func (in *ShardedInstr) CrossShardEvents() uint64 { return in.crossCount }

// MaxEpochDrainSeconds returns the slowest epoch drain this run.
func (in *ShardedInstr) MaxEpochDrainSeconds() float64 { return in.maxDrain }

// EventsByKind merges lifetime delivery counts across all shards.
func (in *ShardedInstr) EventsByKind() map[string]uint64 {
	out := make(map[string]uint64)
	for _, ei := range in.engines {
		for k, v := range ei.EventsByKind() {
			out[k] += v
		}
	}
	return out
}

// QueueHighWater returns the highest queue depth seen on any shard.
func (in *ShardedInstr) QueueHighWater() uint64 {
	var hw uint64
	for _, ei := range in.engines {
		if q := ei.QueueHighWater(); q > hw {
			hw = q
		}
	}
	return hw
}
