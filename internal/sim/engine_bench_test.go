package sim

import (
	"fmt"
	"testing"
)

// BenchmarkScheduleRun measures raw event throughput: schedule+deliver of
// chained events, the simulator's innermost loop.
func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine()
	remaining := b.N
	var step Handler
	step = func(eng *Engine) {
		if remaining > 0 {
			remaining--
			eng.MustSchedule(Millisecond, step)
		}
	}
	e.MustSchedule(Millisecond, step)
	b.ResetTimer()
	e.Run(0)
}

// BenchmarkQueueMixed measures heap behaviour under a realistic mixed
// horizon: many timers at staggered deadlines.
func BenchmarkQueueMixed(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MustSchedule(Time(i%1000)*Millisecond, func(*Engine) {})
		if i%1000 == 999 {
			e.Run(0)
		}
	}
	e.Run(0)
}

// BenchmarkTimerCancel measures schedule+cancel churn (retransmission
// timers that usually do not fire).
func BenchmarkTimerCancel(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		t := e.MustSchedule(Second, func(*Engine) {})
		t.Cancel()
		if i%4096 == 4095 {
			e.Drain()
		}
	}
}

// BenchmarkPostEvent measures typed-event throughput: the pooled,
// closure-free counterpart of BenchmarkScheduleRun. The gap between the
// two is the per-event closure cost the typed core removes.
func BenchmarkPostEvent(b *testing.B) {
	e := NewEngine()
	ev := &benchChainEvent{remaining: b.N}
	e.PostEvent(Millisecond, ev)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(0)
}

type benchChainEvent struct{ remaining int }

func (ev *benchChainEvent) Fire(e *Engine) {
	if ev.remaining > 0 {
		ev.remaining--
		e.PostEvent(Millisecond, ev)
	}
}

// benchShardEvent is the sharded-throughput workload: a chain of destined
// events that mostly stays inside its shard, crossing a shard boundary on
// every 16th hop with a delay above the lookahead. spin models per-event
// protocol work so the parallel drain has something to overlap.
type benchShardEvent struct {
	dst       int
	peers     int
	shards    int
	remaining *int64
	sink      uint64
}

func (ev *benchShardEvent) EventDst() int { return ev.dst }

func (ev *benchShardEvent) Fire(e *Engine) {
	x := uint64(ev.dst + 1)
	for i := 0; i < 300; i++ {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
	}
	ev.sink = x
	n := *ev.remaining - 1
	*ev.remaining = n
	if n <= 0 {
		return
	}
	if int(n)%16 == 0 {
		// Cross-shard hop: land on the next shard, beyond the lookahead.
		ev.dst = (ev.dst + ev.peers/ev.shards) % ev.peers
		e.PostEvent(2*Millisecond, ev)
		return
	}
	e.PostEvent(Millisecond, ev)
}

// BenchmarkShardedEvents measures events/sec of the sharded loop at 1, 2
// and 4 shards with parallel epoch drains: per-shard chains with a bounded
// cross-shard hop rate, the shape a per-locality protocol partition
// produces. shards=1 is the sequential baseline.
func BenchmarkShardedEvents(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const peers = 64
			s := NewSharded(ShardedOptions{
				Shards:    shards,
				ShardOf:   func(p int) int { return p * shards / peers },
				Parallel:  shards > 1,
				Lookahead: Millisecond / 2,
			})
			// 16 chains per shard share each epoch, so a parallel drain
			// has a full batch of per-event work to overlap.
			chains := shards * 16
			per := make([]int64, chains)
			for c := 0; c < chains; c++ {
				per[c] = int64(b.N / chains)
				if per[c] == 0 {
					per[c] = 1
				}
				s.Engine(0).PostEvent(Millisecond, &benchShardEvent{
					dst: c * peers / chains, peers: peers, shards: shards, remaining: &per[c],
				})
			}
			b.ResetTimer()
			s.Run(0)
		})
	}
}

// BenchmarkQueuePushPop compares the calendar queue against the binary
// heap it replaced (kept as the test-only oracle) on a steady-state mixed
// workload: a fixed-depth queue with near-clustered timestamps, periodic
// far-future spills, and interleaved push/pop — the shape a protocol run
// produces. The calendar side pays its arena alloc/release per op, exactly
// as the engine does.
func BenchmarkQueuePushPop(b *testing.B) {
	const depth = 4096
	workload := func(b *testing.B, push func(at Time, seq uint64), pop func() (Time, bool)) {
		var seq uint64
		var now Time
		x := uint64(0x9e3779b97f4a7c15)
		next := func(mod int64) int64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return int64(x % uint64(mod))
		}
		at := func() Time {
			if next(50) == 0 {
				return now + 30*Second + Time(next(int64(Second)))
			}
			return now + Time(next(2000))
		}
		for i := 0; i < depth; i++ {
			push(at(), seq)
			seq++
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			push(at(), seq)
			seq++
			if t, ok := pop(); ok {
				now = t
			}
		}
		b.StopTimer()
		for {
			if _, ok := pop(); !ok {
				break
			}
		}
	}
	b.Run("calendar", func(b *testing.B) {
		var arena eventArena
		var q calendarQueue
		q.arena = &arena
		workload(b,
			func(at Time, seq uint64) {
				ref, ev := arena.alloc()
				ev.at, ev.seq = at, seq
				q.push(qent{at: at, seq: seq, ref: ref})
			},
			func() (Time, bool) {
				e, ok := q.pop()
				if ok {
					arena.release(e.ref)
				}
				return e.at, ok
			})
	})
	b.Run("heap", func(b *testing.B) {
		var q heapQueue
		workload(b,
			func(at Time, seq uint64) { q.push(qent{at: at, seq: seq}) },
			func() (Time, bool) {
				e, ok := q.pop()
				return e.at, ok
			})
	})
}

// BenchmarkShardedDrainMode compares the persistent parked workers against
// the legacy per-epoch goroutine spawn on the BenchmarkShardedEvents
// workload: the delta is pure epoch-barrier scheduling overhead.
func BenchmarkShardedDrainMode(b *testing.B) {
	for _, mode := range []string{"persistent", "spawn"} {
		for _, shards := range []int{2, 4} {
			b.Run(fmt.Sprintf("%s/shards=%d", mode, shards), func(b *testing.B) {
				const peers = 64
				s := NewSharded(ShardedOptions{
					Shards:    shards,
					ShardOf:   func(p int) int { return p * shards / peers },
					Parallel:  true,
					Lookahead: Millisecond / 2,
				})
				s.SetSpawnDrain(mode == "spawn")
				chains := shards * 16
				per := make([]int64, chains)
				for c := 0; c < chains; c++ {
					per[c] = int64(b.N / chains)
					if per[c] == 0 {
						per[c] = 1
					}
					s.Engine(0).PostEvent(Millisecond, &benchShardEvent{
						dst: c * peers / chains, peers: peers, shards: shards, remaining: &per[c],
					})
				}
				b.ResetTimer()
				s.Run(0)
			})
		}
	}
}

// BenchmarkRNGStream measures substream derivation cost.
func BenchmarkRNGStream(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.StreamN("peer", i&1023)
	}
}
