package sim

import "testing"

// BenchmarkScheduleRun measures raw event throughput: schedule+deliver of
// chained events, the simulator's innermost loop.
func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine()
	remaining := b.N
	var step Handler
	step = func(eng *Engine) {
		if remaining > 0 {
			remaining--
			eng.MustSchedule(Millisecond, step)
		}
	}
	e.MustSchedule(Millisecond, step)
	b.ResetTimer()
	e.Run(0)
}

// BenchmarkQueueMixed measures heap behaviour under a realistic mixed
// horizon: many timers at staggered deadlines.
func BenchmarkQueueMixed(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MustSchedule(Time(i%1000)*Millisecond, func(*Engine) {})
		if i%1000 == 999 {
			e.Run(0)
		}
	}
	e.Run(0)
}

// BenchmarkTimerCancel measures schedule+cancel churn (retransmission
// timers that usually do not fire).
func BenchmarkTimerCancel(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		t := e.MustSchedule(Second, func(*Engine) {})
		t.Cancel()
		if i%4096 == 4095 {
			e.Drain()
		}
	}
}

// BenchmarkRNGStream measures substream derivation cost.
func BenchmarkRNGStream(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.StreamN("peer", i&1023)
	}
}
