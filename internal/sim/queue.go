package sim

import "slices"

// The engine's pending-event store is a deterministic calendar queue:
// time-bucketed lanes over (at, seq) with an overflow ladder for far-future
// events. Simulation timestamps cluster tightly — link latencies are
// bounded below by the model's one-way floor and above by the RTT ceiling
// plus gossip periods — which is exactly the distribution where calendar
// scheduling is O(1) amortised: a push lands in its lane by two shifts and
// a mask, a pop reads the memoised minimum lane, and the only O(n) work is
// an occasional geometry rebuild whose cost is amortised over the window
// it installs.
//
// Ordering contract: pops come out in strictly increasing (at, seq) — the
// identical total order the old binary heap produced, locked by the oracle
// test that runs both queues side by side on randomized workloads. seq is
// the engine's scheduling sequence, so same-instant events are FIFO.
//
// Geometry. The calendar covers one window of nb contiguous virtual
// buckets, each spanning width = 1<<wshift ticks; an event's virtual
// bucket is at>>wshift and its lane is vb&(nb-1). Exactly one virtual
// bucket maps to each lane within a window, so the earliest non-empty lane
// at or after the consumption cursor holds the global minimum. Lanes are
// intrusive sorted lists threaded through the event arena (each slot's
// next ref), so pushing never allocates — steady-state scheduling touches
// no allocator at all, preserving the zero-alloc gossip contract. Each
// lane's head and tail keys are cached inline in the lane table, so the
// push fast paths (empty lane, in-order append, new minimum) and the peek
// scan compare against contiguous cached keys instead of chasing arena
// pointers; only a mid-lane insert (rare at ~one event per lane, see the
// width rule in rebuild) walks event slots.
//
// Events beyond the window's fixed admission edge (endVB) go to the
// ladder — a binary min-heap holding gossip self-reschedules, scenario
// phases and finalize deadlines — so a far-future push costs O(log ladder)
// and a rebuild only ever touches the ladder entries that enter the new
// window, never the far tail. (An earlier sorted-array ladder re-sorted
// the whole spill on every drain, which made long runs with a standing
// far population superlinear.) When the calendar drains, a rebuild
// re-anchors the window at the global minimum, re-deriving width from the
// observed head density and lane count from the pending population. A
// rebuild also fires when in-window population outgrows the lane count
// (density resize) and reaps cancelled events instead of re-bucketing
// them.
//
// Everything here is a pure function of the push/pop sequence — no clocks,
// no randomness — so runs stay bit-reproducible and the sharded drain's
// parallel/sequential equivalence is untouched.

const (
	// calMinBuckets / calMaxBuckets bound the lane count; rebuilds pick a
	// power of two covering the pending population.
	calMinBuckets = 64
	calMaxBuckets = 8192
	// calMaxWShift caps lane width at 2^40 ticks (~13 virtual days per
	// lane) so degenerate gap estimates cannot overflow the vb arithmetic.
	calMaxWShift = 40
	// calInitWShift is the pre-adaptation lane width (1.024ms): the right
	// order of magnitude for link-latency workloads, corrected by the first
	// rebuild anyway.
	calInitWShift = 10
	// calGrowFactor triggers a density rebuild when in-window population
	// exceeds this many events per lane.
	calGrowFactor = 4
	// calDensitySample is how many head entries a rebuild inspects to
	// derive the new lane width.
	calDensitySample = 64
)

// nilRef terminates lane chains; no real slot carries it (slab 0xffffff
// would need 4 billion live events).
const nilRef = ^eventRef(0)

// qent is one queued event: its total-order key plus the arena handle. The
// ladder, the rebuild scratch, the lane key cache and the queue's public
// peek/pop results use this flat 24-byte form; lane membership itself is
// threaded through the arena slots' next refs.
type qent struct {
	at  Time
	seq uint64
	ref eventRef
}

// qentLess is the queue's total order: (at, seq) ascending. seq values are
// unique per engine, so the order is strict.
func qentLess(a, b qent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// beforeNode compares a key against an arena slot's key.
func beforeNode(e qent, n *event) bool {
	if e.at != n.at {
		return e.at < n.at
	}
	return e.seq < n.seq
}

// lane caches its list's boundary keys: head is the lane minimum (the ref
// doubles as the list head, nilRef when empty), tail the maximum (valid
// only when head.ref != nilRef).
type lane struct {
	head qent
	tail qent
}

type calendarQueue struct {
	// arena resolves lane links; installed by NewEngine (tests driving the
	// queue raw install their own).
	arena *eventArena
	// drop, when non-nil, is asked about every entry a rebuild touches;
	// returning true reaps the entry (the owner has recycled it — the
	// engine routes cancelled events here so mass-cancel workloads don't
	// bloat the lanes).
	drop func(qent) bool

	lanes  []lane
	nb     int   // lane count, power of two
	wshift uint  // lane width is 1<<wshift ticks
	baseVB int64 // first virtual bucket of the window
	endVB  int64 // admission edge: vb >= endVB spills to the ladder
	curVB  int64 // consumption cursor (virtual bucket of the last pop)
	cnt0   int   // entries currently in lanes

	// peekB memoises the lane holding the current minimum (-1 when
	// unknown) and peekEnt its key: pop consumes the memo, pushes that
	// beat the minimum move it — all in registers.
	peekB   int
	peekEnt qent

	// ladder is the overflow spill: entries with vb >= endVB (plus the
	// rare pre-pop undercut), kept as a binary min-heap over (at, seq).
	ladder []qent

	scratch []qent // rebuild gather buffer, reused
	n       int    // total entries (lanes + ladder)
}

// Len returns the number of queued entries, including cancelled events not
// yet discarded.
func (q *calendarQueue) Len() int { return q.n }

// push inserts e, growing the window geometry when density demands it.
func (q *calendarQueue) push(e qent) {
	if q.nb == 0 {
		q.initGeometry(e.at)
	} else if q.n == 0 {
		// Empty queue: re-anchor the window at the new head, keeping the
		// adapted geometry.
		q.baseVB = int64(e.at) >> q.wshift
		q.endVB = q.baseVB + int64(q.nb)
		q.curVB = q.baseVB
	}
	q.n++
	vb := int64(e.at) >> q.wshift
	if vb >= q.endVB {
		// Far-future: spill to the ladder.
		q.ladderPush(e)
		return
	}
	if vb < q.curVB {
		// Below the consumption cursor — only possible before the first
		// pop of a freshly anchored window (the engine forbids scheduling
		// in the past). Spill and re-anchor around the new minimum.
		q.ladderPush(e)
		q.rebuild()
		return
	}
	q.link(int(vb&int64(q.nb-1)), e)
	q.cnt0++
	if q.peekB >= 0 && qentLess(e, q.peekEnt) {
		// Only a lane-head insert can beat the global minimum, so the new
		// minimum is e itself.
		q.peekB = int(vb & int64(q.nb-1))
		q.peekEnt = e
	}
	if q.cnt0 > q.nb*calGrowFactor && q.nb < calMaxBuckets {
		q.rebuild()
	}
}

// initGeometry anchors a zero-value queue on its first entry.
func (q *calendarQueue) initGeometry(at Time) {
	q.nb = calMinBuckets
	q.wshift = calInitWShift
	q.lanes = makeLanes(q.nb)
	q.baseVB = int64(at) >> q.wshift
	q.endVB = q.baseVB + int64(q.nb)
	q.curVB = q.baseVB
	q.peekB = -1
}

func makeLanes(nb int) []lane {
	lanes := make([]lane, nb)
	for i := range lanes {
		lanes[i].head.ref = nilRef
	}
	return lanes
}

// link threads e into lane b keeping the list sorted. The fast paths —
// empty lane, in-order append, new lane minimum — decide on the cached
// boundary keys without reading any event slot beyond e's own (still hot
// from its alloc); only a mid-lane insert walks the list, and the
// median-gap lane width keeps that walk to a couple of events.
func (q *calendarQueue) link(b int, e qent) {
	ln := &q.lanes[b]
	node := q.arena.get(e.ref)
	switch {
	case ln.head.ref == nilRef:
		node.next = nilRef
		ln.head, ln.tail = e, e
	case !qentLess(e, ln.tail):
		node.next = nilRef
		q.arena.get(ln.tail.ref).next = e.ref
		ln.tail = e
	case qentLess(e, ln.head):
		node.next = ln.head.ref
		ln.head = e
	default:
		prev := q.arena.get(ln.head.ref)
		for {
			cur := prev.next // never nilRef: e sorts before the tail
			cn := q.arena.get(cur)
			if beforeNode(e, cn) {
				node.next = cur
				prev.next = e.ref
				return
			}
			prev = cn
		}
	}
}

// ladderPush inserts e into the far-future min-heap.
func (q *calendarQueue) ladderPush(e qent) {
	q.ladder = append(q.ladder, e)
	i := len(q.ladder) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !qentLess(q.ladder[i], q.ladder[parent]) {
			break
		}
		q.ladder[i], q.ladder[parent] = q.ladder[parent], q.ladder[i]
		i = parent
	}
}

// ladderPop removes and returns the ladder's minimum entry.
func (q *calendarQueue) ladderPop() qent {
	top := q.ladder[0]
	last := len(q.ladder) - 1
	q.ladder[0] = q.ladder[last]
	q.ladder = q.ladder[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.ladder) && qentLess(q.ladder[l], q.ladder[smallest]) {
			smallest = l
		}
		if r < len(q.ladder) && qentLess(q.ladder[r], q.ladder[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		q.ladder[i], q.ladder[smallest] = q.ladder[smallest], q.ladder[i]
		i = smallest
	}
}

// peek returns the minimum entry without removing it.
func (q *calendarQueue) peek() (qent, bool) {
	for {
		if q.n == 0 {
			return qent{}, false
		}
		if q.peekB >= 0 {
			return q.peekEnt, true
		}
		if q.cnt0 > 0 {
			// The earliest non-empty lane at or after the cursor holds the
			// window minimum: one virtual bucket per lane, no entry can
			// exist below the cursor, and each lane's minimum is its cached
			// head key — the scan reads only the contiguous lane table.
			for vb := q.curVB; vb < q.endVB; vb++ {
				b := int(vb & int64(q.nb-1))
				if q.lanes[b].head.ref == nilRef {
					continue
				}
				q.curVB = vb
				q.peekB = b
				q.peekEnt = q.lanes[b].head
				return q.peekEnt, true
			}
			panic("sim: calendar queue lost an in-window event")
		}
		// Lanes drained; re-anchor the window from the ladder. The rebuild
		// may reap cancelled entries and leave the queue empty, hence the
		// loop.
		q.rebuild()
	}
}

// pop removes and returns the minimum entry.
func (q *calendarQueue) pop() (qent, bool) {
	e, ok := q.peek()
	if !ok {
		return qent{}, false
	}
	node := q.arena.get(e.ref)
	ln := &q.lanes[q.peekB]
	if node.next == nilRef {
		ln.head.ref = nilRef
	} else {
		// Refresh the cached head key from the new head — the next event
		// this lane will surface, so the read doubles as a prefetch.
		nn := q.arena.get(node.next)
		ln.head = qent{at: nn.at, seq: nn.seq, ref: node.next}
	}
	q.peekB = -1
	q.cnt0--
	q.n--
	q.curVB = int64(e.at) >> q.wshift
	return e, true
}

// rebuild installs a fresh window: lane count sized to the population,
// lane width derived from the head's observed density, the ladder keeping
// the far remainder untouched. Runs when the calendar drains into its
// ladder, when density outgrows the lanes, or when a pre-pop push
// undercuts a fresh anchor. Every entry a rebuild touches is offered to
// drop, reaping cancelled events; the far ladder tail is never scanned,
// so rebuild cost is bounded by the window population, not the total
// pending population.
func (q *calendarQueue) rebuild() {
	// Gather the window in ascending order: walking virtual buckets from
	// the cursor visits lanes in time order, and each lane is sorted, so
	// the scratch is born sorted — no sort anywhere in the queue.
	scratch := q.scratch[:0]
	if q.cnt0 > 0 {
		left := q.cnt0
		for vb := q.curVB; vb < q.endVB && left > 0; vb++ {
			b := int(vb & int64(q.nb-1))
			for r := q.lanes[b].head.ref; r != nilRef; {
				node := q.arena.get(r)
				next := node.next
				e := qent{at: node.at, seq: node.seq, ref: r}
				left--
				if q.drop == nil || !q.drop(e) {
					scratch = append(scratch, e)
				}
				r = next
			}
			q.lanes[b].head.ref = nilRef
		}
	}
	q.cnt0 = 0
	q.peekB = -1
	// Lanes empty (a drain re-anchor): seed the head sample from the
	// ladder, whose pops arrive in ascending order.
	if len(scratch) == 0 {
		for len(q.ladder) > 0 && len(scratch) < calDensitySample {
			e := q.ladderPop()
			if q.drop != nil && q.drop(e) {
				continue
			}
			scratch = append(scratch, e)
		}
	}
	q.n = len(scratch) + len(q.ladder)
	if q.n == 0 {
		q.scratch = scratch
		return
	}

	// Lane count: one power-of-two step above the population, bounded.
	// Never shrunk within a run: regrowing on the next burst would cost
	// the very allocations the steady state avoids.
	nb := q.nb
	for nb < q.n && nb < calMaxBuckets {
		nb <<= 1
	}
	// Lane width: ~1 median head gap, so the dense near cluster spreads at
	// about one event per lane while far spills stay on the ladder. The
	// median, not the mean: a bimodal head (a dense near cluster followed
	// by a far band, e.g. traffic plus standing gossip timers) has one
	// huge gap that would blow up a span-based estimate and collapse the
	// whole cluster into a single lane.
	wshift := q.wshift
	if k := min(len(scratch), calDensitySample); k > 1 {
		var gaps [calDensitySample - 1]int64
		for i := 0; i < k-1; i++ {
			gaps[i] = int64(scratch[i+1].at) - int64(scratch[i].at)
		}
		g := gaps[:k-1]
		slices.Sort(g) // in place on the stack array: rebuilds stay alloc-free
		target := g[(k-1)/2] + 1
		wshift = 0
		for int64(1)<<wshift < target && wshift < calMaxWShift {
			wshift++
		}
	}
	if nb != q.nb {
		q.lanes = makeLanes(nb)
	}
	q.nb, q.wshift = nb, wshift
	// Anchor at the global minimum: usually scratch[0], but a pre-pop
	// undercut parks the new minimum on the ladder.
	head := scratch[0]
	if len(q.ladder) > 0 && qentLess(q.ladder[0], head) {
		head = q.ladder[0]
	}
	q.baseVB = int64(head.at) >> wshift
	q.endVB = q.baseVB + int64(nb)
	q.curVB = q.baseVB
	for _, e := range scratch {
		vb := int64(e.at) >> wshift
		if vb >= q.endVB {
			// A narrower window than the sample span: back to the ladder.
			q.ladderPush(e)
			continue
		}
		// Ascending distribution makes every link an O(1) tail append.
		q.link(int(vb&int64(nb-1)), e)
		q.cnt0++
	}
	// Pull the ladder entries the new window admits; ascending pops keep
	// every link an O(1) tail append.
	for len(q.ladder) > 0 && int64(q.ladder[0].at)>>wshift < q.endVB {
		e := q.ladderPop()
		if q.drop != nil && q.drop(e) {
			q.n--
			continue
		}
		q.link(int((int64(e.at)>>wshift)&int64(nb-1)), e)
		q.cnt0++
	}
	q.scratch = scratch[:0]
}
