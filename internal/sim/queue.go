package sim

// eventQueue is a binary min-heap over (at, seq). It is hand-rolled rather
// than built on container/heap to avoid per-operation interface allocations
// in the simulator's hot path.
type eventQueue struct {
	items []*event
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

// push inserts ev into the heap.
func (q *eventQueue) push(ev *event) {
	ev.index = len(q.items)
	q.items = append(q.items, ev)
	q.up(ev.index)
}

// pop removes and returns the earliest event, or nil if the queue is empty.
func (q *eventQueue) pop() *event {
	n := len(q.items)
	if n == 0 {
		return nil
	}
	top := q.items[0]
	q.swap(0, n-1)
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	if len(q.items) > 0 {
		q.down(0)
	}
	top.index = -1
	return top
}

// peek returns the earliest event without removing it.
func (q *eventQueue) peek() *event {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
