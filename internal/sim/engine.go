package sim

import (
	"errors"
	"math"
)

// Engine is a single-threaded discrete-event simulator. All scheduling and
// event delivery happen on the goroutine that calls Run; protocol code never
// needs locks. This mirrors PeerSim's event-driven engine, which the paper's
// evaluation is built on.
//
// Pending events live in a flat slab arena (see arena.go) and are ordered
// by a calendar queue over compact (at, seq, ref) entries (see queue.go):
// the drain loop walks contiguous memory, and scheduling is O(1) amortised
// instead of O(log n) heap ops.
type Engine struct {
	now     Time
	queue   calendarQueue
	arena   eventArena
	seq     uint64
	stopped bool
	// processed counts delivered (non-cancelled) events.
	processed uint64
	// scheduled counts all Schedule calls, including later-cancelled ones.
	scheduled uint64
	// cancelled counts dead events discarded at pop time or reaped during a
	// calendar rebuild.
	cancelled uint64
	// horizon, when non-zero, rejects events scheduled beyond it.
	horizon Time
	// route, when non-nil, may claim a typed fire-and-forget event instead
	// of queueing it locally. The sharded runner installs it to divert
	// events destined to another shard into that shard's mailbox.
	route func(at Time, ev Event) bool
	// observer, when non-nil, sees every delivered typed event just before
	// it fires. Installed by tests and debugging harnesses (the sharded
	// determinism test records global delivery order through it); nil costs
	// one branch per delivery.
	observer func(at Time, ev Event)
	// instr, when non-nil, counts every delivery into shard-confined
	// observability cells (see internal/obs). Unlike observer it is safe
	// under the parallel epoch drain — each engine owns its cells — and
	// costs one branch per delivery when disabled.
	instr *EngineInstr
	// shard is this engine's index under a sharded runner (0 for a plain
	// engine). Event handlers use it to resolve shard-confined state from
	// the engine they fire on.
	shard int
}

// Shard returns the engine's shard index: its position under a sharded
// runner, or 0 for a standalone engine. Protocol state that is split by
// shard indexes on this value from within event handlers.
func (e *Engine) Shard() int { return e.shard }

// alloc takes an event slot from the arena and fills its payload.
func (e *Engine) alloc(at Time, h Handler, t Event) (eventRef, *event) {
	r, ev := e.arena.alloc()
	ev.at, ev.seq, ev.handler, ev.typed = at, e.seq, h, t
	return r, ev
}

// recycle returns a popped slot to the arena free list. The dead mark (set
// by the drain loop before firing, or by Cancel) plus the next alloc's
// fresh generation stamp invalidate outstanding handles.
func (e *Engine) recycle(r eventRef, ev *event) {
	ev.handler = nil
	ev.typed = nil
	ev.dead = true
	e.arena.release(r)
}

// ErrPast is returned when an event is scheduled before the current virtual
// time.
var ErrPast = errors.New("sim: event scheduled in the past")

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	e := &Engine{}
	e.queue.arena = &e.arena
	// Calendar rebuilds hand entries back so cancelled events are reaped
	// (recycled and counted) instead of re-bucketed.
	e.queue.drop = func(qe qent) bool {
		ev := e.arena.get(qe.ref)
		if !ev.dead {
			return false
		}
		e.cancelled++
		e.recycle(qe.ref, ev)
		return true
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of events currently queued, including cancelled
// events that have not yet been discarded.
func (e *Engine) Len() int { return e.queue.Len() }

// Processed returns the number of events delivered so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Scheduled returns the number of events scheduled so far.
func (e *Engine) Scheduled() uint64 { return e.scheduled }

// Cancelled returns the number of cancelled events discarded so far, at pop
// time or by calendar-rebuild reaping.
func (e *Engine) Cancelled() uint64 { return e.cancelled }

// SetHorizon rejects (silently drops) any event scheduled after t. A zero
// horizon disables the limit. It is used to keep long-tailed retransmission
// chains from extending a bounded experiment.
func (e *Engine) SetHorizon(t Time) { e.horizon = t }

// Schedule queues h to run after delay. A negative delay is an error; a zero
// delay runs h at the current instant, after all events already queued for
// that instant.
func (e *Engine) Schedule(delay Time, h Handler) (*Timer, error) {
	if delay < 0 {
		return nil, ErrPast
	}
	return e.ScheduleAt(e.now+delay, h)
}

// ScheduleAt queues h to run at absolute virtual time at.
func (e *Engine) ScheduleAt(at Time, h Handler) (*Timer, error) {
	return e.scheduleAt(at, h, nil)
}

// ScheduleEventAt queues a typed event to fire at absolute virtual time at,
// returning a cancellation handle. Timers are engine-local: the sharded
// router never diverts a cancellable event, so schedule timers on the shard
// that owns their state.
func (e *Engine) ScheduleEventAt(at Time, ev Event) (*Timer, error) {
	return e.scheduleAt(at, nil, ev)
}

// ScheduleEvent queues a typed event to fire after delay, with a
// cancellation handle.
func (e *Engine) ScheduleEvent(delay Time, ev Event) (*Timer, error) {
	if delay < 0 {
		return nil, ErrPast
	}
	return e.scheduleAt(e.now+delay, nil, ev)
}

func (e *Engine) scheduleAt(at Time, h Handler, t Event) (*Timer, error) {
	if at < e.now {
		return nil, ErrPast
	}
	if e.horizon > 0 && at > e.horizon {
		// Dropped by horizon policy: return a dead timer, not an error, so
		// callers near the end of a run need no special casing.
		return deadTimer, nil
	}
	r, ev := e.alloc(at, h, t)
	e.queue.push(qent{at: at, seq: e.seq, ref: r})
	e.seq++
	e.scheduled++
	return &Timer{e: e, ref: r, gen: ev.gen}, nil
}

// PostAt is ScheduleAt without a cancellation handle: the hot-path variant
// for fire-and-forget events, which schedules with zero allocations beyond
// the handler closure. PostEventAt is the fully allocation-free typed form.
func (e *Engine) PostAt(at Time, h Handler) error {
	if at < e.now {
		return ErrPast
	}
	if e.horizon > 0 && at > e.horizon {
		return nil // dropped by horizon policy, as ScheduleAt
	}
	r, _ := e.alloc(at, h, nil)
	e.queue.push(qent{at: at, seq: e.seq, ref: r})
	e.seq++
	e.scheduled++
	return nil
}

// PostEventAt queues a typed event to fire at absolute virtual time at,
// without a cancellation handle. This is the hot-path scheduling primitive:
// with a pooled concrete event it allocates nothing in steady state. Under
// the sharded runner, a Destined event posted here may be diverted to the
// destination peer's shard.
func (e *Engine) PostEventAt(at Time, ev Event) error {
	if at < e.now {
		return ErrPast
	}
	if e.horizon > 0 && at > e.horizon {
		return nil // dropped by horizon policy, as ScheduleAt
	}
	if e.route != nil && e.route(at, ev) {
		return nil // claimed by the shard router
	}
	r, _ := e.alloc(at, nil, ev)
	e.queue.push(qent{at: at, seq: e.seq, ref: r})
	e.seq++
	e.scheduled++
	return nil
}

// PostEvent queues a typed event to fire after delay without a cancellation
// handle; it panics on a negative delay (the only invalid input).
func (e *Engine) PostEvent(delay Time, ev Event) {
	if delay < 0 {
		panic(ErrPast)
	}
	if err := e.PostEventAt(e.now+delay, ev); err != nil {
		panic(err)
	}
}

// Post queues h to run after delay without a cancellation handle; it panics
// on a negative delay (the only invalid input). It is the allocation-free
// counterpart of MustSchedule.
func (e *Engine) Post(delay Time, h Handler) {
	if delay < 0 {
		panic(ErrPast)
	}
	if err := e.PostAt(e.now+delay, h); err != nil {
		panic(err)
	}
}

// MustSchedule is Schedule for callers with a known-valid delay; it panics on
// error. Protocol code uses it with delays derived from the latency model,
// which are always non-negative.
func (e *Engine) MustSchedule(delay Time, h Handler) *Timer {
	t, err := e.Schedule(delay, h)
	if err != nil {
		panic(err)
	}
	return t
}

// Stop makes the current Run return after the in-flight event completes.
// Under the sharded loop, stopping a shard's engine ends the whole
// Sharded run: the remaining shards finish the current epoch, then the
// epoch loop returns.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events until the queue drains, Stop is called, or maxEvents
// events have been delivered (0 means no limit). It returns the number of
// events delivered during this call.
func (e *Engine) Run(maxEvents uint64) uint64 {
	return e.RunUntil(Time(math.MaxInt64), maxEvents)
}

// RunUntil processes events with timestamps <= deadline, subject to the same
// stopping conditions as Run. The clock is left at the timestamp of the last
// delivered event (or at deadline if the next event lies beyond it and at
// least one event was inspected).
func (e *Engine) RunUntil(deadline Time, maxEvents uint64) uint64 {
	e.stopped = false
	var delivered uint64
	for !e.stopped {
		if maxEvents > 0 && delivered >= maxEvents {
			break
		}
		qe, ok := e.queue.peek()
		if !ok {
			break
		}
		if qe.at > deadline {
			if deadline > e.now && deadline != Time(math.MaxInt64) {
				e.now = deadline
			}
			break
		}
		e.queue.pop()
		ev := e.arena.get(qe.ref)
		if ev.dead {
			e.cancelled++
			e.recycle(qe.ref, ev)
			continue
		}
		e.now = qe.at
		ev.dead = true
		h, t := ev.handler, ev.typed
		e.recycle(qe.ref, ev)
		if e.instr != nil {
			e.instr.record(e, t)
		}
		if t != nil {
			if e.observer != nil {
				e.observer(e.now, t)
			}
			t.Fire(e)
		} else {
			h(e)
		}
		e.processed++
		delivered++
	}
	return delivered
}

// SetObserver installs fn to see every delivered typed event just before it
// fires (nil uninstalls). Handler closures are not observed; the hook
// exists for tests and debugging harnesses that assert on delivery order.
func (e *Engine) SetObserver(fn func(at Time, ev Event)) { e.observer = fn }

// advanceTo moves the clock forward to t without delivering anything; the
// sharded runner uses it to keep idle shards' clocks in step with the
// epoch. It never moves the clock backwards.
func (e *Engine) advanceTo(t Time) {
	if t > e.now {
		e.now = t
	}
}

// peekTime returns the timestamp of the earliest pending live event, or
// (0, false) when the queue holds none. Cancelled events at the head are
// discarded on the way.
func (e *Engine) peekTime() (Time, bool) {
	for {
		qe, ok := e.queue.peek()
		if !ok {
			return 0, false
		}
		ev := e.arena.get(qe.ref)
		if !ev.dead {
			return qe.at, true
		}
		e.queue.pop()
		e.cancelled++
		e.recycle(qe.ref, ev)
	}
}

// Drain discards all pending events without running them.
func (e *Engine) Drain() {
	for {
		qe, ok := e.queue.pop()
		if !ok {
			return
		}
		e.recycle(qe.ref, e.arena.get(qe.ref))
	}
}

// capFreeList reaps pooled event storage down to the live population plus
// one slab, so a burst's worth of recycled slots does not pin memory for
// the rest of the run. Only whole tail slabs are returned; the sharded
// runner calls this at the sequential epoch barrier.
func (e *Engine) capFreeList() {
	if limit := e.arena.live() + arenaSlabSize; e.arena.freeLen() > limit {
		e.arena.reap(limit)
	}
}