package sim

import (
	"math/rand"
	"testing"
)

// heapQueue is the engine's former binary min-heap, ported over qent and
// kept test-only as the ordering oracle: the calendar queue must produce
// the byte-identical (at, seq) pop sequence on any workload.
type heapQueue struct {
	ents []qent
}

func (h *heapQueue) Len() int { return len(h.ents) }

func (h *heapQueue) push(e qent) {
	h.ents = append(h.ents, e)
	i := len(h.ents) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !qentLess(h.ents[i], h.ents[parent]) {
			break
		}
		h.ents[i], h.ents[parent] = h.ents[parent], h.ents[i]
		i = parent
	}
}

func (h *heapQueue) pop() (qent, bool) {
	if len(h.ents) == 0 {
		return qent{}, false
	}
	top := h.ents[0]
	last := len(h.ents) - 1
	h.ents[0] = h.ents[last]
	h.ents = h.ents[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.ents) && qentLess(h.ents[l], h.ents[smallest]) {
			smallest = l
		}
		if r < len(h.ents) && qentLess(h.ents[r], h.ents[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top, true
		}
		h.ents[i], h.ents[smallest] = h.ents[smallest], h.ents[i]
		i = smallest
	}
}

// oracleWorld drives a calendar queue (with its arena and reap callback
// wired exactly as the engine wires them) and the heap oracle through the
// same stream of operations.
type oracleWorld struct {
	t         *testing.T
	arena     eventArena
	cal       calendarQueue
	heap      heapQueue
	reaped    int
	dead      map[uint64]bool // seq -> cancelled, the heap side's view
	pending   []qent          // live entries available to cancel
	seq       uint64
	now       Time // engine clock: pops are monotone, pushes never precede it
	delivered int
}

func newOracleWorld(t *testing.T) *oracleWorld {
	w := &oracleWorld{t: t, dead: map[uint64]bool{}}
	w.cal.arena = &w.arena
	w.cal.drop = func(qe qent) bool {
		ev := w.arena.get(qe.ref)
		if !ev.dead {
			return false
		}
		w.reaped++
		w.arena.release(qe.ref)
		return true
	}
	return w
}

func (w *oracleWorld) push(at Time) {
	if at < w.now {
		at = w.now
	}
	ref, ev := w.arena.alloc()
	ev.at, ev.seq = at, w.seq
	e := qent{at: at, seq: w.seq, ref: ref}
	w.seq++
	w.cal.push(e)
	w.heap.push(e)
	w.pending = append(w.pending, e)
}

// cancel marks a random live pending entry dead, as Timer.Cancel does.
func (w *oracleWorld) cancel(r *rand.Rand) {
	if len(w.pending) == 0 {
		return
	}
	i := r.Intn(len(w.pending))
	e := w.pending[i]
	w.pending[i] = w.pending[len(w.pending)-1]
	w.pending = w.pending[:len(w.pending)-1]
	w.dead[e.seq] = true
	w.arena.get(e.ref).dead = true
}

// popLive advances both queues to their next live delivery and asserts the
// (at, seq) keys match; it mirrors the engine's dead-skip loop. Returns
// false when both queues are exhausted.
func (w *oracleWorld) popLive() bool {
	var calEnt qent
	calOK := false
	for {
		e, ok := w.cal.pop()
		if !ok {
			break
		}
		ev := w.arena.get(e.ref)
		if ev.dead {
			w.arena.release(e.ref)
			continue
		}
		ev.dead = true
		w.arena.release(e.ref)
		calEnt, calOK = e, true
		break
	}
	var heapEnt qent
	heapOK := false
	for {
		e, ok := w.heap.pop()
		if !ok {
			break
		}
		if w.dead[e.seq] {
			delete(w.dead, e.seq)
			continue
		}
		heapEnt, heapOK = e, true
		break
	}
	if calOK != heapOK {
		w.t.Fatalf("after %d deliveries: calendar live=%v heap live=%v", w.delivered, calOK, heapOK)
	}
	if !calOK {
		return false
	}
	if calEnt.at != heapEnt.at || calEnt.seq != heapEnt.seq {
		w.t.Fatalf("delivery %d diverged: calendar (%d,%d) vs heap (%d,%d)",
			w.delivered, calEnt.at, calEnt.seq, heapEnt.at, heapEnt.seq)
	}
	if calEnt.at < w.now {
		w.t.Fatalf("delivery %d went back in time: %d after clock %d", w.delivered, calEnt.at, w.now)
	}
	w.now = calEnt.at
	w.delivered++
	// Drop the delivered entry from the cancellable set.
	for i, p := range w.pending {
		if p.seq == calEnt.seq {
			w.pending[i] = w.pending[len(w.pending)-1]
			w.pending = w.pending[:len(w.pending)-1]
			break
		}
	}
	return true
}

// TestQueueOracleRandomized locks the ordering contract: on randomized
// push/pop/cancel streams — same-instant FIFO ties, zero delays, far-future
// ladder spills, bursts and droughts — the calendar queue delivers the
// byte-identical (at, seq) sequence as the binary heap it replaced.
func TestQueueOracleRandomized(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		w := newOracleWorld(t)
		var lastAt Time
		for op := 0; op < 20000; op++ {
			switch k := r.Intn(100); {
			case k < 55: // push
				var at Time
				switch c := r.Intn(10); {
				case c < 4:
					at = w.now + Time(r.Intn(2000)) // near cluster
				case c < 6:
					at = w.now // zero delay
				case c < 8:
					at = lastAt // same-instant FIFO tie
				case c < 9:
					at = w.now + Time(r.Intn(int(30*Second))) // mid-range
				default:
					at = w.now + 30*Second + Time(r.Intn(int(Minute))) // ladder spill
				}
				if at < w.now {
					at = w.now
				}
				lastAt = at
				w.push(at)
			case k < 70: // cancel a random pending entry
				w.cancel(r)
			default: // deliver
				w.popLive()
			}
		}
		for w.popLive() {
		}
		if got := w.cal.Len(); got != 0 {
			t.Fatalf("seed %d: calendar holds %d entries after exhaustion", seed, got)
		}
		if w.delivered == 0 {
			t.Fatalf("seed %d: oracle run delivered nothing", seed)
		}
	}
}

// TestQueueOracleBurstDrain covers the resize path: bursts far above the
// lane capacity force density rebuilds, full drains force ladder
// re-anchors, and the order must still match the heap throughout.
func TestQueueOracleBurstDrain(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	w := newOracleWorld(t)
	for cycle := 0; cycle < 20; cycle++ {
		n := 200 + r.Intn(3000)
		for i := 0; i < n; i++ {
			at := w.now + Time(r.Intn(1000))
			if r.Intn(20) == 0 {
				at = w.now + Time(30*Second) + Time(r.Intn(int(Second)))
			}
			w.push(at)
		}
		for i := 0; i < n/10; i++ {
			w.cancel(r)
		}
		for w.popLive() {
		}
		if w.cal.Len() != 0 || w.heap.Len() != 0 {
			t.Fatalf("cycle %d: queues not drained (cal %d, heap %d)", cycle, w.cal.Len(), w.heap.Len())
		}
	}
}

// TestQueueCancelledReapedOnRebuild proves the mass-cancel satellite:
// cancelled events are reaped (released, counted) when a rebuild touches
// them, rather than riding the lanes until popped.
func TestQueueCancelledReapedOnRebuild(t *testing.T) {
	w := newOracleWorld(t)
	// A ladder entry guarantees the drain ends in a rebuild.
	w.push(w.now + 40*Second)
	for i := 0; i < 400; i++ {
		w.push(w.now + Time(i))
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		w.cancel(r)
	}
	for w.popLive() {
	}
	if w.reaped == 0 {
		t.Fatal("no cancelled entries were reaped during rebuilds")
	}
	if w.cal.Len() != 0 {
		t.Fatalf("calendar holds %d entries after drain", w.cal.Len())
	}
}

// TestEngineCancelledCounter checks the public surface: cancelled events
// are counted whether discarded at pop time or reaped by a rebuild.
func TestEngineCancelledCounter(t *testing.T) {
	e := NewEngine()
	fired := 0
	keep, err := e.Schedule(5, func(*Engine) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	var timers []*Timer
	for i := 0; i < 10; i++ {
		tm, err := e.Schedule(Time(10+i), func(*Engine) { fired++ })
		if err != nil {
			t.Fatal(err)
		}
		timers = append(timers, tm)
	}
	for _, tm := range timers {
		if !tm.Cancel() {
			t.Fatal("cancel failed on a pending timer")
		}
	}
	_ = keep
	e.Run(0)
	if fired != 1 {
		t.Fatalf("fired %d events, want 1", fired)
	}
	if got := e.Cancelled(); got != 10 {
		t.Fatalf("Cancelled() = %d, want 10", got)
	}
}

// TestEngineFreeListCap checks the burst-reap satellite: after a burst
// drains, capFreeList returns tail slabs so the pooled capacity tracks the
// live population instead of the historical peak.
func TestEngineFreeListCap(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 20*arenaSlabSize; i++ {
		e.Post(Time(i%1000), func(*Engine) {})
	}
	e.Run(0)
	if got := e.FreeListLen(); got < 20*arenaSlabSize {
		t.Fatalf("free list %d after burst, want >= %d", got, 20*arenaSlabSize)
	}
	e.capFreeList()
	if got := e.FreeListLen(); got > arenaSlabSize {
		t.Fatalf("free list %d after cap, want <= %d", got, arenaSlabSize)
	}
	// The engine still schedules correctly from the shrunken arena.
	ran := false
	e.Post(1, func(*Engine) { ran = true })
	e.Run(0)
	if !ran {
		t.Fatal("engine broken after free-list cap")
	}
}

// TestTimerSafeAfterReap checks that a Timer whose storage was reaped
// stays safely non-pending, even after the arena grows back over the same
// slab indices.
func TestTimerSafeAfterReap(t *testing.T) {
	e := NewEngine()
	var timers []*Timer
	for i := 0; i < 4*arenaSlabSize; i++ {
		tm, err := e.Schedule(Time(i+1), func(*Engine) {})
		if err != nil {
			t.Fatal(err)
		}
		timers = append(timers, tm)
	}
	e.Run(0)
	e.capFreeList()
	for _, tm := range timers {
		if tm.Pending() {
			t.Fatal("fired timer reports pending after reap")
		}
		if tm.Cancel() {
			t.Fatal("fired timer cancelled after reap")
		}
	}
	// Regrow over the reaped slab indices: stale handles must not match
	// the new incarnations.
	for i := 0; i < 4*arenaSlabSize; i++ {
		e.Post(Time(1), func(*Engine) {})
	}
	for _, tm := range timers {
		if tm.Pending() {
			t.Fatal("stale timer matched a regrown slot")
		}
	}
	e.Run(0)
}