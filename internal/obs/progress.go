package obs

import (
	"math"
	"sync"
	"time"
)

// RateEWMA derives a smoothed per-second rate from samples of a
// monotonically increasing count (cells completed). The instantaneous
// rate between consecutive samples is blended with half-life decay, so
// the ETA a progress line prints tracks recent throughput rather than
// the lifetime average.
type RateEWMA struct {
	halfLife time.Duration

	mu        sync.Mutex
	primed    bool
	lastCount float64
	lastT     time.Time
	rate      float64
}

// NewRateEWMA returns a tracker with the given half-life (<= 0: 30s).
func NewRateEWMA(halfLife time.Duration) *RateEWMA {
	if halfLife <= 0 {
		halfLife = 30 * time.Second
	}
	return &RateEWMA{halfLife: halfLife}
}

// Observe feeds the current cumulative count at time now.
func (r *RateEWMA) Observe(count float64, now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.primed {
		r.primed = true
		r.lastCount, r.lastT = count, now
		return
	}
	dt := now.Sub(r.lastT).Seconds()
	if dt <= 0 {
		return
	}
	inst := (count - r.lastCount) / dt
	alpha := 1 - math.Exp(-dt*math.Ln2/r.halfLife.Seconds())
	r.rate += alpha * (inst - r.rate)
	r.lastCount, r.lastT = count, now
}

// Rate returns the smoothed per-second rate (0 until two observations).
func (r *RateEWMA) Rate() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rate
}

// ETA estimates time to finish remaining items at the current rate. ok
// is false while the rate is effectively zero.
func (r *RateEWMA) ETA(remaining float64) (time.Duration, bool) {
	rate := r.Rate()
	if rate <= 1e-9 || remaining < 0 {
		return 0, false
	}
	return time.Duration(remaining / rate * float64(time.Second)), true
}
