package obs

// Cell groups shard-local instruments. The owning shard increments plain
// (non-atomic) fields on the hot path — no contention, no allocation —
// and Drain folds the pending values into the shared registry atomics.
// Drain must only run from a sequential context (the epoch barrier or
// end of run); the locals keep lifetime totals so a run can snapshot its
// own contribution even though the registry is shared across runs.
type Cell struct {
	counters []*LocalCounter
	maxes    []*LocalMax
}

// Drain folds every pending local value into its registry sink and
// resets the pending state.
func (c *Cell) Drain() {
	for _, lc := range c.counters {
		lc.drain()
	}
	for _, m := range c.maxes {
		m.drain()
	}
}

// LocalCounter is a shard-confined counter bound to a registry Counter.
type LocalCounter struct {
	pend  uint64
	total uint64
	sink  *Counter
}

// Counter binds a new local counter to sink and registers it for drain.
func (c *Cell) Counter(sink *Counter) *LocalCounter {
	lc := &LocalCounter{sink: sink}
	c.counters = append(c.counters, lc)
	return lc
}

func (l *LocalCounter) Inc()         { l.pend++ }
func (l *LocalCounter) Add(n uint64) { l.pend += n }

// Total is the lifetime count, including undrained increments.
func (l *LocalCounter) Total() uint64 { return l.total + l.pend }

func (l *LocalCounter) drain() {
	if l.pend != 0 {
		l.total += l.pend
		l.sink.Add(l.pend)
		l.pend = 0
	}
}

// LocalMax tracks a shard-confined running maximum (queue depths,
// pending-map sizes) folded into a registry Gauge via SetMax.
type LocalMax struct {
	cur  uint64
	all  uint64
	sink *Gauge
}

// Max binds a new local maximum to sink and registers it for drain.
func (c *Cell) Max(sink *Gauge) *LocalMax {
	m := &LocalMax{sink: sink}
	c.maxes = append(c.maxes, m)
	return m
}

func (m *LocalMax) Observe(v uint64) {
	if v > m.cur {
		m.cur = v
	}
}

// Max is the lifetime maximum, including undrained observations.
func (m *LocalMax) Max() uint64 {
	if m.cur > m.all {
		return m.cur
	}
	return m.all
}

func (m *LocalMax) drain() {
	if m.cur > m.all {
		m.all = m.cur
	}
	if m.all > 0 {
		m.sink.SetMax(int64(m.all))
	}
	m.cur = 0
}

// LocalCounterVec fans a label axis (event kind) out to local counters.
// Get allocates only on the first sighting of a label value; steady
// state is one map lookup and a plain increment.
type LocalCounterVec struct {
	cell    *Cell
	sink    *CounterVec
	byLabel map[string]*LocalCounter
}

// CounterVec binds a new local counter vector to sink.
func (c *Cell) CounterVec(sink *CounterVec) *LocalCounterVec {
	return &LocalCounterVec{cell: c, sink: sink, byLabel: make(map[string]*LocalCounter)}
}

// Get returns the local counter for one label value.
func (v *LocalCounterVec) Get(label string) *LocalCounter {
	if lc, ok := v.byLabel[label]; ok {
		return lc
	}
	lc := v.cell.Counter(v.sink.With(label))
	v.byLabel[label] = lc
	return lc
}

// Totals returns the lifetime count per label value. It allocates; call
// it only from snapshot paths.
func (v *LocalCounterVec) Totals() map[string]uint64 {
	out := make(map[string]uint64, len(v.byLabel))
	for l, lc := range v.byLabel {
		if t := lc.Total(); t != 0 {
			out[l] = t
		}
	}
	return out
}
