package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns a mux serving the registry as Prometheus text at
// /metrics plus the standard net/http/pprof endpoints under
// /debug/pprof/ — the scrape surface mounted on the campaign
// coordinator and on workers via -obs-addr.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	RegisterOn(mux, reg)
	return mux
}

// RegisterOn mounts /metrics and /debug/pprof/* on an existing mux (the
// coordinator shares its mux with the lease protocol).
func RegisterOn(mux *http.ServeMux, reg *Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
