package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := reg.Counter("c_total", "ignored"); again.Value() != 5 {
		t.Fatal("re-registration did not return the same series")
	}

	g := reg.Gauge("g", "a gauge")
	g.Set(7)
	g.SetMax(3) // lower: no-op
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge after SetMax = %d, want 11", got)
	}

	h := reg.Histogram("h_seconds", "a histogram", ExpBuckets(0.001, 10, 3))
	h.Observe(0.0005) // first bucket
	h.Observe(0.05)   // third bucket
	h.Observe(5)      // +Inf
	if h.Count() != 3 {
		t.Fatalf("histogram count = %d, want 3", h.Count())
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z_total", "last family").Add(2)
	reg.CounterVec("a_total", "by kind", "kind").With("x").Add(3)
	reg.Gauge("b", "a gauge").Set(-4)
	reg.GaugeFunc("f", "func gauge", func() float64 { return 1.5 })
	h := reg.Histogram("h_seconds", "timings", ExpBuckets(0.01, 10, 2))
	h.Observe(0.005)
	h.Observe(0.05)
	reg.CounterVec("empty_total", "no series yet", "kind")

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wantLines := []string{
		"# HELP a_total by kind",
		"# TYPE a_total counter",
		`a_total{kind="x"} 3`,
		"b -4",
		"f 1.5",
		"# TYPE empty_total counter", // series-less family still advertised
		`h_seconds_bucket{le="0.01"} 1`,
		`h_seconds_bucket{le="0.1"} 2`,
		`h_seconds_bucket{le="+Inf"} 2`,
		"h_seconds_sum 0.055",
		"h_seconds_count 2",
		"z_total 2",
	}
	for _, l := range wantLines {
		if !strings.Contains(out, l+"\n") {
			t.Fatalf("output missing %q:\n%s", l, out)
		}
	}
	// Families must be sorted: a_total before z_total.
	if strings.Index(out, "a_total") > strings.Index(out, "z_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestCellDrainAndTotals(t *testing.T) {
	reg := NewRegistry()
	sinkC := reg.Counter("c_total", "")
	sinkG := reg.Gauge("g_hw", "")
	vec := reg.CounterVec("v_total", "", "kind")

	var cell Cell
	lc := cell.Counter(sinkC)
	lm := cell.Max(sinkG)
	lv := cell.CounterVec(vec)

	lc.Inc()
	lc.Add(9)
	lm.Observe(4)
	lm.Observe(2)
	lv.Get("a").Inc()
	lv.Get("a").Inc()
	lv.Get("b").Inc()

	if sinkC.Value() != 0 {
		t.Fatal("registry saw increments before drain")
	}
	if lc.Total() != 10 {
		t.Fatalf("local total = %d, want 10 before drain", lc.Total())
	}
	cell.Drain()
	if sinkC.Value() != 10 || sinkG.Value() != 4 {
		t.Fatalf("after drain: counter=%d gauge=%d, want 10/4", sinkC.Value(), sinkG.Value())
	}
	if vec.With("a").Value() != 2 || vec.With("b").Value() != 1 {
		t.Fatal("vector drain mismatch")
	}
	// Second drain with no new increments must not double-count.
	cell.Drain()
	if sinkC.Value() != 10 {
		t.Fatalf("double drain changed counter to %d", sinkC.Value())
	}
	lm.Observe(3) // below lifetime max: gauge must stay at 4
	cell.Drain()
	if sinkG.Value() != 4 || lm.Max() != 4 {
		t.Fatalf("max regressed: gauge=%d local=%d", sinkG.Value(), lm.Max())
	}
	tot := lv.Totals()
	if tot["a"] != 2 || tot["b"] != 1 {
		t.Fatalf("Totals = %v", tot)
	}
}

func TestSamplesDiffAbsorb(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "").Add(5)
	reg.CounterVec("b_total", "", "kind").With("x").Add(2)
	before := reg.CounterSamples()

	reg.Counter("a_total", "").Add(3)
	reg.CounterVec("b_total", "", "kind").With("y").Add(7)
	after := reg.CounterSamples()

	diff := DiffCounters(before, after)
	if len(diff) != 2 {
		t.Fatalf("diff = %+v, want 2 entries", diff)
	}
	got := map[string]uint64{}
	for _, s := range diff {
		got[s.Name+"/"+s.Label] = s.Value
	}
	if got["a_total/"] != 3 || got["b_total/y"] != 7 {
		t.Fatalf("diff values = %v", got)
	}

	other := NewRegistry()
	other.AbsorbCounters(diff)
	other.AbsorbCounters(diff)
	if v := other.Counter("a_total", "").Value(); v != 6 {
		t.Fatalf("absorbed a_total = %d, want 6", v)
	}
	if v := other.CounterVec("b_total", "", "kind").With("y").Value(); v != 14 {
		t.Fatalf("absorbed b_total{y} = %d, want 14", v)
	}
}

func TestHandlerServesMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "hits").Inc()
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics":          "hits_total 1",
		"/debug/pprof/heap": "", // just must answer 200
	} {
		resp, err := srv.Client().Get(srv.URL + path + "?debug=1")
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 1<<16)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s -> %d", path, resp.StatusCode)
		}
		if want != "" && !strings.Contains(string(body[:n]), want) {
			t.Fatalf("%s missing %q:\n%s", path, want, body[:n])
		}
	}
}

func TestRateEWMA(t *testing.T) {
	r := NewRateEWMA(10 * time.Second)
	t0 := time.Unix(1000, 0)
	r.Observe(0, t0)
	if r.Rate() != 0 {
		t.Fatal("rate before second sample should be 0")
	}
	// 2 items/sec sustained for several half-lives converges near 2.
	for i := 1; i <= 12; i++ {
		r.Observe(float64(2*5*i), t0.Add(time.Duration(i)*5*time.Second))
	}
	if rate := r.Rate(); rate < 1.5 || rate > 2.5 {
		t.Fatalf("rate = %g, want ~2", rate)
	}
	eta, ok := r.ETA(20)
	if !ok {
		t.Fatal("ETA unavailable despite positive rate")
	}
	if eta < 5*time.Second || eta > 15*time.Second {
		t.Fatalf("ETA = %v, want ~10s", eta)
	}
	if _, ok := NewRateEWMA(0).ETA(5); ok {
		t.Fatal("ETA from unprimed tracker should be unavailable")
	}
}
