// Package obs is the run-wide observability layer: a dependency-free
// metrics registry (counters, gauges, histograms with fixed log-scale
// buckets) with a Prometheus text exposition writer, plus the shard-local
// cells (cell.go) that keep the simulation hot path uncontended and
// alloc-free. Registry totals are atomics so they can be scraped from an
// HTTP handler while runs are in flight; the hot path never touches them
// directly — per-shard cells fold into the registry at sequential epoch
// barriers.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family for the exposition format.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families keyed by name. All methods are safe for
// concurrent use; reads (WritePrometheus, CounterSamples) observe atomics
// and may race benignly with in-flight cell drains.
type Registry struct {
	mu       sync.Mutex
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Family)}
}

// Family is one named metric with zero or more label-value series. A
// family has at most one label key; plain (unlabeled) families hold a
// single series under the empty label value.
type Family struct {
	name    string
	help    string
	kind    Kind
	label   string // label key; "" for plain families
	buckets []float64

	mu     sync.Mutex
	series map[string]*series
}

type series struct {
	c  atomic.Uint64  // counter total
	g  atomic.Int64   // gauge value
	fn func() float64 // gauge callback; nil for stored values

	buckets []atomic.Uint64 // histogram: per-bucket counts, last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // histogram sum as float64 bits
}

func (f *Family) get(label string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[label]; ok {
		return s
	}
	s := &series{}
	if f.kind == KindHistogram {
		s.buckets = make([]atomic.Uint64, len(f.buckets)+1)
	}
	f.series[label] = s
	return s
}

func (r *Registry) family(name, help string, kind Kind, label string, buckets []float64) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic("obs: metric " + name + " re-registered as " + kind.String() + ", was " + f.kind.String())
		}
		return f
	}
	f := &Family{name: name, help: help, kind: kind, label: label,
		buckets: buckets, series: make(map[string]*series)}
	r.families[name] = f
	return f
}

// Counter is a monotonically increasing uint64. Add/Inc are atomic and
// safe from any goroutine; the simulation hot path should go through a
// cell's LocalCounter instead.
type Counter struct{ s *series }

func (c *Counter) Inc()          { c.s.c.Add(1) }
func (c *Counter) Add(n uint64)  { c.s.c.Add(n) }
func (c *Counter) Value() uint64 { return c.s.c.Load() }

// Counter registers (or fetches) a plain counter family and returns its
// single series.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{r.family(name, help, KindCounter, "", nil).get("")}
}

// CounterVec is a counter family with one label key.
type CounterVec struct{ f *Family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{r.family(name, help, KindCounter, label, nil)}
}

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter { return &Counter{v.f.get(value)} }

// Gauge is a settable int64 level (queue depths, high-waters, pool
// sizes). SetMax keeps a running maximum across concurrent writers.
type Gauge struct{ s *series }

func (g *Gauge) Set(v int64)  { g.s.g.Store(v) }
func (g *Gauge) Add(d int64)  { g.s.g.Add(d) }
func (g *Gauge) Value() int64 { return g.s.g.Load() }

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	for {
		old := g.s.g.Load()
		if v <= old {
			return
		}
		if g.s.g.CompareAndSwap(old, v) {
			return
		}
	}
}

// Gauge registers (or fetches) a plain gauge family's single series.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{r.family(name, help, KindGauge, "", nil).get("")}
}

// GaugeVec is a gauge family with one label key.
type GaugeVec struct{ f *Family }

func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{r.family(name, help, KindGauge, label, nil)}
}

func (v *GaugeVec) With(value string) *Gauge { return &Gauge{v.f.get(value)} }

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. fn must be safe to call from the HTTP handler goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, KindGauge, "", nil).get("").fn = fn
}

// Histogram accumulates observations into fixed buckets (upper bounds,
// ascending; an implicit +Inf bucket is appended). Observe is atomic and
// allocation-free.
type Histogram struct {
	f *Family
	s *series
}

// Histogram registers (or fetches) a plain histogram family. The bucket
// layout of the first registration wins.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, KindHistogram, "", buckets)
	return &Histogram{f, f.get("")}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.f.buckets, v)
	h.s.buckets[i].Add(1)
	h.s.count.Add(1)
	for {
		old := h.s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.s.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations recorded.
func (h *Histogram) Count() uint64 { return h.s.count.Load() }

// ExpBuckets returns n exponentially spaced bucket upper bounds starting
// at start, each factor times the previous — the fixed log-scale layout
// used for wall-clock timings.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): families sorted by name, series by label
// value, HELP/TYPE headers emitted even for series-less families so the
// full catalog is visible before the first run.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*Family, len(names))
	sort.Strings(names)
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		f.mu.Lock()
		labels := make([]string, 0, len(f.series))
		for l := range f.series {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		sers := make([]*series, len(labels))
		for i, l := range labels {
			sers[i] = f.series[l]
		}
		f.mu.Unlock()
		for i, s := range sers {
			if err := writeSeries(w, f, labels[i], s); err != nil {
				return err
			}
		}
	}
	return nil
}

func labelPair(f *Family, label string) string {
	if f.label == "" {
		return ""
	}
	return "{" + f.label + `="` + labelEscaper.Replace(label) + `"}`
}

func writeSeries(w io.Writer, f *Family, label string, s *series) error {
	lp := labelPair(f, label)
	switch f.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, lp, s.c.Load())
		return err
	case KindGauge:
		if s.fn != nil {
			_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, lp,
				strconv.FormatFloat(s.fn(), 'g', -1, 64))
			return err
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, lp, s.g.Load())
		return err
	case KindHistogram:
		cum := uint64(0)
		for i, ub := range f.buckets {
			cum += s.buckets[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", f.name,
				strconv.FormatFloat(ub, 'g', -1, 64), cum); err != nil {
				return err
			}
		}
		cum += s.buckets[len(f.buckets)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum); err != nil {
			return err
		}
		sum := math.Float64frombits(s.sumBits.Load())
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", f.name,
			strconv.FormatFloat(sum, 'g', -1, 64)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", f.name, s.count.Load())
		return err
	}
	return nil
}

// Sample is one counter series value, flattened for JSON transfer —
// workers ship per-cell counter deltas to the coordinator this way.
type Sample struct {
	Name  string `json:"name"`
	Key   string `json:"key,omitempty"`   // label key, "" for plain series
	Label string `json:"label,omitempty"` // label value
	Value uint64 `json:"value"`
}

// CounterSamples snapshots every counter series, sorted by (name, label).
func (r *Registry) CounterSamples() []Sample {
	r.mu.Lock()
	fams := make([]*Family, 0, len(r.families))
	for _, f := range r.families {
		if f.kind == KindCounter {
			fams = append(fams, f)
		}
	}
	r.mu.Unlock()
	var out []Sample
	for _, f := range fams {
		f.mu.Lock()
		for l, s := range f.series {
			out = append(out, Sample{Name: f.name, Key: f.label, Label: l, Value: s.c.Load()})
		}
		f.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// DiffCounters returns after minus before, dropping unchanged series.
// Series absent from before count from zero.
func DiffCounters(before, after []Sample) []Sample {
	base := make(map[[2]string]uint64, len(before))
	for _, s := range before {
		base[[2]string{s.Name, s.Label}] = s.Value
	}
	var out []Sample
	for _, s := range after {
		d := s.Value - base[[2]string{s.Name, s.Label}]
		if d != 0 {
			s.Value = d
			out = append(out, s)
		}
	}
	return out
}

// AbsorbCounters adds counter samples into the registry, creating
// families as needed — the coordinator merges worker-posted deltas here.
func (r *Registry) AbsorbCounters(samples []Sample) {
	for _, s := range samples {
		f := r.family(s.Name, "", KindCounter, s.Key, nil)
		f.get(s.Label).c.Add(s.Value)
	}
}
