package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/p2prepro/locaware/internal/keywords"
	"github.com/p2prepro/locaware/internal/netmodel"
	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/sim"
)

type recorder struct {
	added, evicted []string
}

func (r *recorder) FilenameAdded(f keywords.Filename)   { r.added = append(r.added, f.String()) }
func (r *recorder) FilenameEvicted(f keywords.Filename) { r.evicted = append(r.evicted, f.String()) }

func fn(kws ...keywords.Keyword) keywords.Filename { return keywords.NewFilename(kws...) }

func TestPutAndProviders(t *testing.T) {
	x := New(DefaultConfig(), nil)
	f := fn("a", "b", "c")
	x.Put(f, 7, 3, 100*sim.Second)
	ps := x.Providers(f, 100*sim.Second)
	if len(ps) != 1 || ps[0].Peer != 7 || ps[0].LocID != 3 {
		t.Fatalf("providers = %+v", ps)
	}
	if x.Len() != 1 || x.Inserts() != 1 {
		t.Fatalf("len=%d inserts=%d", x.Len(), x.Inserts())
	}
}

func TestMostRecentFirst(t *testing.T) {
	x := New(DefaultConfig(), nil)
	f := fn("x", "y", "z")
	for i := 0; i < 4; i++ {
		x.Put(f, overlay.PeerID(i), netmodel.LocID(i), sim.Time(i)*sim.Second)
	}
	ps := x.Providers(f, 10*sim.Second)
	if len(ps) != 4 {
		t.Fatalf("len = %d", len(ps))
	}
	for i := 0; i < 4; i++ {
		if ps[i].Peer != overlay.PeerID(3-i) {
			t.Fatalf("order wrong at %d: %+v", i, ps)
		}
	}
}

func TestProviderCapDropsOldest(t *testing.T) {
	cfg := Config{MaxFilenames: 10, MaxProvidersPerFile: 3}
	x := New(cfg, nil)
	f := fn("p", "q", "r")
	for i := 0; i < 5; i++ {
		x.Put(f, overlay.PeerID(i), 0, sim.Time(i)*sim.Second)
	}
	ps := x.Providers(f, 10*sim.Second)
	if len(ps) != 3 {
		t.Fatalf("provider list = %d, want 3", len(ps))
	}
	// Peers 4, 3, 2 survive; 0 and 1 (oldest) dropped — "most recent
	// entries replace the oldest ones" (§4.1.2).
	want := []overlay.PeerID{4, 3, 2}
	for i, w := range want {
		if ps[i].Peer != w {
			t.Fatalf("ps = %+v", ps)
		}
	}
}

func TestRefreshMovesToFront(t *testing.T) {
	x := New(DefaultConfig(), nil)
	f := fn("m", "n", "o")
	x.Put(f, 1, 5, 1*sim.Second)
	x.Put(f, 2, 5, 2*sim.Second)
	x.Put(f, 1, 6, 3*sim.Second) // refresh peer 1 with new locId
	ps := x.Providers(f, 5*sim.Second)
	if len(ps) != 2 {
		t.Fatalf("refresh duplicated entry: %+v", ps)
	}
	if ps[0].Peer != 1 || ps[0].LocID != 6 || ps[0].LastSeen != 3*sim.Second {
		t.Fatalf("refresh did not update front: %+v", ps[0])
	}
	if x.Refreshes() != 1 {
		t.Fatalf("refreshes = %d", x.Refreshes())
	}
}

func TestFilenameLRUEviction(t *testing.T) {
	rec := &recorder{}
	cfg := Config{MaxFilenames: 3, MaxProvidersPerFile: 5}
	x := New(cfg, rec)
	f1, f2, f3, f4 := fn("a1"), fn("a2"), fn("a3"), fn("a4")
	x.Put(f1, 1, 0, 1*sim.Second)
	x.Put(f2, 1, 0, 2*sim.Second)
	x.Put(f3, 1, 0, 3*sim.Second)
	x.Put(f1, 2, 0, 4*sim.Second) // touch f1 so f2 becomes LRU
	x.Put(f4, 1, 0, 5*sim.Second)
	if x.Len() != 3 {
		t.Fatalf("len = %d", x.Len())
	}
	if x.Providers(f2, 6*sim.Second) != nil {
		t.Fatal("f2 should have been evicted (LRU)")
	}
	if x.Providers(f1, 6*sim.Second) == nil {
		t.Fatal("recently touched f1 evicted")
	}
	if x.Evictions() != 1 {
		t.Fatalf("evictions = %d", x.Evictions())
	}
	if len(rec.added) != 4 || len(rec.evicted) != 1 || rec.evicted[0] != f2.String() {
		t.Fatalf("events: added=%v evicted=%v", rec.added, rec.evicted)
	}
}

func TestTTLExpiry(t *testing.T) {
	rec := &recorder{}
	cfg := Config{MaxFilenames: 10, MaxProvidersPerFile: 5, TTL: 10 * sim.Second}
	x := New(cfg, rec)
	f := fn("t1", "t2")
	x.Put(f, 1, 0, 0)
	x.Put(f, 2, 0, 8*sim.Second)
	ps := x.Providers(f, 15*sim.Second)
	if len(ps) != 1 || ps[0].Peer != 2 {
		t.Fatalf("expiry wrong: %+v", ps)
	}
	if x.Expiries() != 1 {
		t.Fatalf("expiries = %d", x.Expiries())
	}
	// All providers stale -> filename disappears and event fires.
	if got := x.Providers(f, 60*sim.Second); got != nil {
		t.Fatalf("stale entry survived: %+v", got)
	}
	if x.Len() != 0 {
		t.Fatal("empty entry not removed")
	}
	if len(rec.evicted) != 1 {
		t.Fatalf("eviction event missing: %v", rec.evicted)
	}
}

func TestTTLDisabled(t *testing.T) {
	cfg := Config{MaxFilenames: 10, MaxProvidersPerFile: 5, TTL: 0}
	x := New(cfg, nil)
	f := fn("u1")
	x.Put(f, 1, 0, 0)
	if ps := x.Providers(f, 1000*sim.Hour); len(ps) != 1 {
		t.Fatal("TTL=0 should never expire")
	}
}

func TestLookupKeywordSubset(t *testing.T) {
	x := New(DefaultConfig(), nil)
	x.Put(fn("red", "green", "blue"), 1, 0, sim.Second)
	x.Put(fn("red", "yellow", "pink"), 2, 0, sim.Second)
	x.Put(fn("cyan", "mauve"), 3, 0, sim.Second)

	ms := x.Lookup(keywords.NewQuery("red"), 2*sim.Second)
	if len(ms) != 2 {
		t.Fatalf("lookup(red) = %d matches", len(ms))
	}
	ms = x.Lookup(keywords.NewQuery("red", "green"), 2*sim.Second)
	if len(ms) != 1 || ms[0].File.String() != "blue_green_red" {
		t.Fatalf("lookup(red,green) = %+v", ms)
	}
	if got := x.Lookup(keywords.NewQuery("absent"), 2*sim.Second); got != nil {
		t.Fatalf("phantom match: %+v", got)
	}
	if got := x.Lookup(keywords.Query{}, 2*sim.Second); got != nil {
		t.Fatal("empty query must match nothing")
	}
}

func TestLookupDeterministicOrder(t *testing.T) {
	x := New(DefaultConfig(), nil)
	x.Put(fn("k", "zz"), 1, 0, sim.Second)
	x.Put(fn("k", "aa"), 2, 0, sim.Second)
	x.Put(fn("k", "mm"), 3, 0, sim.Second)
	ms := x.Lookup(keywords.NewQuery("k"), 2*sim.Second)
	if len(ms) != 3 {
		t.Fatalf("matches = %d", len(ms))
	}
	if !(ms[0].File.String() < ms[1].File.String() && ms[1].File.String() < ms[2].File.String()) {
		t.Fatal("lookup order not sorted")
	}
}

func TestFilenames(t *testing.T) {
	x := New(DefaultConfig(), nil)
	x.Put(fn("b"), 1, 0, sim.Second)
	x.Put(fn("a"), 1, 0, sim.Second)
	fs := x.Filenames()
	if len(fs) != 2 || fs[0].String() != "a" || fs[1].String() != "b" {
		t.Fatalf("filenames = %v", fs)
	}
}

func TestRemovePeer(t *testing.T) {
	rec := &recorder{}
	x := New(DefaultConfig(), rec)
	f1, f2 := fn("f1"), fn("f2")
	x.Put(f1, 1, 0, sim.Second)
	x.Put(f1, 2, 0, sim.Second)
	x.Put(f2, 1, 0, sim.Second)
	x.RemovePeer(1)
	if ps := x.Providers(f1, 2*sim.Second); len(ps) != 1 || ps[0].Peer != 2 {
		t.Fatalf("f1 providers = %+v", ps)
	}
	if x.Providers(f2, 2*sim.Second) != nil {
		t.Fatal("f2 should be gone — only provider removed")
	}
	if len(rec.evicted) != 1 || rec.evicted[0] != "f2" {
		t.Fatalf("evicted = %v", rec.evicted)
	}
}

func TestTotalProviderEntries(t *testing.T) {
	x := New(DefaultConfig(), nil)
	x.Put(fn("a"), 1, 0, sim.Second)
	x.Put(fn("a"), 2, 0, sim.Second)
	x.Put(fn("b"), 3, 0, sim.Second)
	if n := x.TotalProviderEntries(); n != 3 {
		t.Fatalf("total = %d", n)
	}
}

func TestConfigFallbacks(t *testing.T) {
	x := New(Config{}, nil)
	f := fn("c1")
	x.Put(f, 1, 0, sim.Second)
	if x.Len() != 1 {
		t.Fatal("zero config unusable")
	}
}

func TestProvidersReturnsCopy(t *testing.T) {
	x := New(DefaultConfig(), nil)
	f := fn("copy")
	x.Put(f, 1, 2, sim.Second)
	ps := x.Providers(f, 2*sim.Second)
	ps[0].Peer = 99
	if x.Providers(f, 2*sim.Second)[0].Peer != 1 {
		t.Fatal("Providers exposed internal storage")
	}
}

// Property: under arbitrary Put sequences the index never exceeds its
// bounds and provider lists stay most-recent-first.
func TestInvariantsQuick(t *testing.T) {
	prop := func(ops []struct {
		File uint8
		Peer uint8
		At   uint16
	}) bool {
		cfg := Config{MaxFilenames: 5, MaxProvidersPerFile: 3}
		x := New(cfg, nil)
		var clock sim.Time
		for _, op := range ops {
			clock += sim.Time(op.At) + 1
			f := fn(keywords.Keyword([]string{"fa", "fb", "fc", "fd", "fe", "ff", "fg", "fh"}[op.File%8]))
			x.Put(f, overlay.PeerID(op.Peer%10), 0, clock)
			if x.Len() > 5 {
				return false
			}
			ps := x.Providers(f, clock)
			if len(ps) > 3 {
				return false
			}
			for i := 1; i < len(ps); i++ {
				if ps[i].LastSeen > ps[i-1].LastSeen {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Fuzz-ish randomized run mixing Put/Lookup/RemovePeer with clock advance.
func TestRandomizedMixedOps(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	x := New(Config{MaxFilenames: 20, MaxProvidersPerFile: 4, TTL: 30 * sim.Second}, nil)
	names := []keywords.Filename{}
	for i := 0; i < 40; i++ {
		names = append(names, fn(keywords.Keyword("w"+string(rune('a'+i%26))), keywords.Keyword("x"+string(rune('a'+i/26)))))
	}
	var clock sim.Time
	for op := 0; op < 5000; op++ {
		clock += sim.Time(r.Intn(3000)) * sim.Millisecond
		switch r.Intn(4) {
		case 0, 1:
			x.Put(names[r.Intn(len(names))], overlay.PeerID(r.Intn(30)), netmodel.LocID(r.Intn(24)), clock)
		case 2:
			q := keywords.ExtractQuery(names[r.Intn(len(names))], r)
			for _, m := range x.Lookup(q, clock) {
				if !m.File.Matches(q) {
					t.Fatal("lookup returned non-matching file")
				}
				for _, p := range m.Providers {
					if clock-p.LastSeen > 30*sim.Second {
						t.Fatal("lookup returned stale provider")
					}
				}
			}
		case 3:
			x.RemovePeer(overlay.PeerID(r.Intn(30)))
		}
		if x.Len() > 20 {
			t.Fatal("capacity bound violated")
		}
	}
}
