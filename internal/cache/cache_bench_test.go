package cache

import (
	"fmt"
	"testing"

	"github.com/p2prepro/locaware/internal/keywords"
	"github.com/p2prepro/locaware/internal/netmodel"
	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/sim"
)

func benchFilenames(n int) []keywords.Filename {
	out := make([]keywords.Filename, n)
	for i := range out {
		out[i] = keywords.NewFilename(
			keywords.Keyword(fmt.Sprintf("kwa%03d", i%37)),
			keywords.Keyword(fmt.Sprintf("kwb%03d", i%53)),
			keywords.Keyword(fmt.Sprintf("kwc%03d", i)),
		)
	}
	return out
}

// BenchmarkPut measures insertion with LRU pressure at the paper's
// 50-filename capacity.
func BenchmarkPut(b *testing.B) {
	x := New(DefaultConfig(), nil)
	files := benchFilenames(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Put(files[i%200], overlay.PeerID(i%30), netmodel.LocID(i%24), sim.Time(i))
	}
}

// BenchmarkLookup measures keyword-subset lookup against a full index.
func BenchmarkLookup(b *testing.B) {
	x := New(DefaultConfig(), nil)
	files := benchFilenames(60)
	for i, f := range files {
		x.Put(f, overlay.PeerID(i%30), 0, sim.Time(i))
	}
	q := keywords.NewQuery("kwa003")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Lookup(q, sim.Time(i))
	}
}

// BenchmarkProvidersRefresh measures the §4.1.2 refresh path (existing
// provider moves to the front).
func BenchmarkProvidersRefresh(b *testing.B) {
	x := New(DefaultConfig(), nil)
	f := benchFilenames(1)[0]
	for p := 0; p < 5; p++ {
		x.Put(f, overlay.PeerID(p), 0, sim.Time(p))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Put(f, overlay.PeerID(i%5), 0, sim.Time(i+10))
	}
}
