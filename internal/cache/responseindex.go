// Package cache implements the response index (RI) of §3.2/§4.1: each peer
// maintains a bounded cache of file indexes, where an index for filename f
// holds one or more provider entries (peer address + locId + recency).
// Locaware's policies are encoded here:
//
//   - several indexes per file, each tagged with the provider's physical
//     location (locId) — §4.1.1;
//   - the most recent provider entries replace the oldest as new responses
//     for f pass by — §4.1.2;
//   - bounded storage: the peer controls its cache size in filenames, with
//     least-recently-updated eviction;
//   - staleness expiry: cached entries are kept for a small amount of time
//     to avoid stale responses in a dynamic network (§4.1.2, citing [11]).
package cache

import (
	"sort"

	"github.com/p2prepro/locaware/internal/keywords"
	"github.com/p2prepro/locaware/internal/netmodel"
	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/sim"
)

// Provider is one cached index entry: a peer that provides the file, its
// physical locality, and when this entry was last refreshed.
type Provider struct {
	Peer     overlay.PeerID
	LocID    netmodel.LocID
	LastSeen sim.Time
}

// entry is the per-filename record.
type entry struct {
	name      string
	file      keywords.Filename
	providers []Provider // most recent first
	touched   sim.Time   // last insertion/refresh, drives filename LRU
}

// Config bounds the response index.
type Config struct {
	// MaxFilenames caps distinct filenames; paper's enlarged RI holds 50.
	MaxFilenames int
	// MaxProvidersPerFile caps the provider list per filename.
	MaxProvidersPerFile int
	// TTL expires provider entries not refreshed within it; 0 disables.
	TTL sim.Time
}

// DefaultConfig matches the paper's RI sizing with a provider-list bound
// and a staleness TTL in line with the Gnutella caching studies it cites.
func DefaultConfig() Config {
	return Config{MaxFilenames: 50, MaxProvidersPerFile: 5, TTL: 10 * sim.Minute}
}

// Events receives cache mutations so callers can maintain derived state
// (Locaware peers keep their keyword Bloom filter in sync through these).
type Events interface {
	// FilenameAdded fires when a filename enters the index.
	FilenameAdded(f keywords.Filename)
	// FilenameEvicted fires when a filename leaves the index (eviction or
	// full expiry).
	FilenameEvicted(f keywords.Filename)
}

// nopEvents lets the index run without a listener.
type nopEvents struct{}

func (nopEvents) FilenameAdded(keywords.Filename)   {}
func (nopEvents) FilenameEvicted(keywords.Filename) {}

// Index is one peer's response index. It is not safe for concurrent use;
// the simulator is single-threaded by design.
type Index struct {
	cfg     Config
	entries map[string]*entry
	events  Events

	// counters for observability and tests
	inserts, refreshes, evictions, expiries uint64
}

// New returns an empty index with the given bounds and an optional event
// listener (nil is allowed).
func New(cfg Config, events Events) *Index {
	if cfg.MaxFilenames <= 0 {
		cfg.MaxFilenames = DefaultConfig().MaxFilenames
	}
	if cfg.MaxProvidersPerFile <= 0 {
		cfg.MaxProvidersPerFile = DefaultConfig().MaxProvidersPerFile
	}
	if events == nil {
		events = nopEvents{}
	}
	return &Index{cfg: cfg, entries: make(map[string]*entry), events: events}
}

// Len returns the number of cached filenames.
func (x *Index) Len() int { return len(x.entries) }

// Inserts returns the number of provider insertions performed.
func (x *Index) Inserts() uint64 { return x.inserts }

// Refreshes returns the number of provider refreshes (existing peer seen
// again).
func (x *Index) Refreshes() uint64 { return x.refreshes }

// Evictions returns the number of filename evictions due to capacity.
func (x *Index) Evictions() uint64 { return x.evictions }

// Expiries returns the number of provider entries dropped for staleness.
func (x *Index) Expiries() uint64 { return x.expiries }

// Put records that peer p (at locality loc) provides file f, observed at
// time now. If p is already listed for f, its entry is refreshed and moved
// to the front; otherwise it is inserted at the front and the oldest entry
// is dropped if the provider list overflows (§4.1.2: "the most recent pf
// entries replace the oldest ones"). Inserting a new filename may evict the
// least-recently-touched filename.
func (x *Index) Put(f keywords.Filename, p overlay.PeerID, loc netmodel.LocID, now sim.Time) {
	name := f.String()
	e, ok := x.entries[name]
	if !ok {
		x.makeRoom(now)
		e = &entry{name: name, file: f}
		x.entries[name] = e
		x.events.FilenameAdded(f)
	}
	e.touched = now
	// Refresh if the provider is already present.
	for i := range e.providers {
		if e.providers[i].Peer == p {
			e.providers[i].LocID = loc
			e.providers[i].LastSeen = now
			// Move to front.
			pr := e.providers[i]
			copy(e.providers[1:i+1], e.providers[:i])
			e.providers[0] = pr
			x.refreshes++
			return
		}
	}
	// Insert at front.
	e.providers = append(e.providers, Provider{})
	copy(e.providers[1:], e.providers)
	e.providers[0] = Provider{Peer: p, LocID: loc, LastSeen: now}
	if len(e.providers) > x.cfg.MaxProvidersPerFile {
		e.providers = e.providers[:x.cfg.MaxProvidersPerFile]
	}
	x.inserts++
}

// makeRoom evicts least-recently-touched filenames until a new one fits.
func (x *Index) makeRoom(now sim.Time) {
	for len(x.entries) >= x.cfg.MaxFilenames {
		var victim *entry
		for _, e := range x.entries {
			if victim == nil || e.touched < victim.touched ||
				(e.touched == victim.touched && e.name < victim.name) {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(x.entries, victim.name)
		x.evictions++
		x.events.FilenameEvicted(victim.file)
	}
}

// expire drops provider entries older than TTL from e; it returns true if
// the whole entry became empty and was removed.
func (x *Index) expire(e *entry, now sim.Time) bool {
	if x.cfg.TTL <= 0 {
		return false
	}
	kept := e.providers[:0]
	for _, p := range e.providers {
		if now-p.LastSeen <= x.cfg.TTL {
			kept = append(kept, p)
		} else {
			x.expiries++
		}
	}
	e.providers = kept
	if len(e.providers) == 0 {
		delete(x.entries, e.name)
		x.events.FilenameEvicted(e.file)
		return true
	}
	return false
}

// Providers returns the live provider list for filename f at time now,
// most recent first. Stale entries are expired on access.
func (x *Index) Providers(f keywords.Filename, now sim.Time) []Provider {
	e, ok := x.entries[f.String()]
	if !ok {
		return nil
	}
	if x.expire(e, now) {
		return nil
	}
	out := make([]Provider, len(e.providers))
	copy(out, e.providers)
	return out
}

// Match is a query hit against the index: the cached filename and its live
// providers.
type Match struct {
	File      keywords.Filename
	Providers []Provider
}

// Lookup returns all cached filenames satisfying q, with their live
// provider lists, deterministic (sorted by filename). The response index of
// a Locaware peer answers keyword queries from exactly this set.
func (x *Index) Lookup(q keywords.Query, now sim.Time) []Match {
	var names []string
	for name, e := range x.entries {
		if e.file.Matches(q) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []Match
	for _, name := range names {
		e := x.entries[name]
		if x.expire(e, now) {
			continue
		}
		ps := make([]Provider, len(e.providers))
		copy(ps, e.providers)
		out = append(out, Match{File: e.file, Providers: ps})
	}
	return out
}

// Filenames returns the cached filenames, sorted.
func (x *Index) Filenames() []keywords.Filename {
	names := make([]string, 0, len(x.entries))
	for name := range x.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]keywords.Filename, len(names))
	for i, name := range names {
		out[i] = x.entries[name].file
	}
	return out
}

// RemovePeer drops every provider entry naming p (used when churn removes a
// peer and its indexes become stale). Filenames left empty are evicted.
func (x *Index) RemovePeer(p overlay.PeerID) {
	for name, e := range x.entries {
		kept := e.providers[:0]
		for _, pr := range e.providers {
			if pr.Peer != p {
				kept = append(kept, pr)
			}
		}
		e.providers = kept
		if len(e.providers) == 0 {
			delete(x.entries, name)
			x.events.FilenameEvicted(e.file)
		}
	}
}

// TotalProviderEntries counts provider entries across all filenames — the
// storage-overhead metric of §4.1.2.
func (x *Index) TotalProviderEntries() int {
	n := 0
	for _, e := range x.entries {
		n += len(e.providers)
	}
	return n
}
