package workload

import (
	"math"
	"math/rand"

	"github.com/p2prepro/locaware/internal/keywords"
	"github.com/p2prepro/locaware/internal/sim"
)

// QueryEvent is one generated query: at time At, peer Requester submits
// query Q targeting file Target.
type QueryEvent struct {
	At        sim.Time
	Requester int
	Target    FileID
	Q         keywords.Query
}

// GenConfig parameterises query generation.
type GenConfig struct {
	// RatePerPeer is queries per second per peer; paper: 0.00083.
	RatePerPeer float64
	// ZipfS is the popularity exponent.
	ZipfS float64
}

// DefaultGen matches §5.1's arrival rate, with the Zipf exponent at 1.0 —
// the value the Gnutella popularity studies the paper cites ([11], [15])
// report for query popularity.
func DefaultGen() GenConfig { return GenConfig{RatePerPeer: 0.00083, ZipfS: 1.0} }

// Generator produces a reproducible stream of query events via independent
// Poisson processes per peer (superposed, equivalent to a single Poisson
// process of aggregate rate n*RatePerPeer with uniform peer attribution).
//
// The popularity ranking, Zipf exponent and arrival rate are mutable
// mid-stream (SetTargets, AddTargets, SetZipfS, SetRateFactor): scenario
// dynamics re-rank popularity for flash crowds and spike the query rate
// without touching the RNG, so the stream stays deterministic.
type Generator struct {
	cfg GenConfig
	cat *Catalog
	// targets is the queryable file set, Zipf rank order. Per §3.3 of the
	// paper, queries request files of PF — the set of popularly *shared*
	// files, each provided by at least one peer — so the experiment
	// harness restricts targets to initially placed files.
	targets []FileID
	zipf    *Zipf
	n       int
	r       *rand.Rand
	now     sim.Time
	// rateFactor scales the aggregate arrival rate (flash-crowd spikes);
	// 1 is the steady state and leaves arrival gaps bit-identical to a
	// factor-free generator.
	rateFactor float64
}

// NewGenerator creates a generator over n peers targeting the whole
// catalogue.
func NewGenerator(n int, cfg GenConfig, cat *Catalog, r *rand.Rand) *Generator {
	return NewGeneratorOver(n, cfg, cat, nil, r)
}

// NewGeneratorOver creates a generator whose queries target only the given
// files (nil means the whole catalogue). Targets should be in ascending id
// order: catalogue ids are popularity ranks, so the Zipf head lands on the
// most popular queryable files.
func NewGeneratorOver(n int, cfg GenConfig, cat *Catalog, targets []FileID, r *rand.Rand) *Generator {
	if cfg.RatePerPeer <= 0 {
		cfg.RatePerPeer = DefaultGen().RatePerPeer
	}
	if len(targets) == 0 {
		targets = make([]FileID, cat.Size())
		for i := range targets {
			targets[i] = FileID(i)
		}
	} else {
		cp := make([]FileID, len(targets))
		copy(cp, targets)
		targets = cp
	}
	return &Generator{
		cfg:        cfg,
		cat:        cat,
		targets:    targets,
		zipf:       NewZipf(len(targets), cfg.ZipfS, r),
		n:          n,
		r:          r,
		rateFactor: 1,
	}
}

// AggregateRate returns the total queries/second across all peers,
// including the current rate factor.
func (g *Generator) AggregateRate() float64 {
	return g.cfg.RatePerPeer * float64(g.n) * g.rateFactor
}

// SetRateFactor scales the aggregate arrival rate by f from the next
// event on (flash-crowd spikes and lulls). Non-positive factors are
// ignored; 1 restores the configured steady rate.
func (g *Generator) SetRateFactor(f float64) {
	if f > 0 {
		g.rateFactor = f
	}
}

// RateFactor returns the current arrival-rate multiplier.
func (g *Generator) RateFactor() float64 { return g.rateFactor }

// SetZipfS rebuilds the popularity sampler with exponent s over the
// current target ranking. Rebuilding consumes no randomness.
func (g *Generator) SetZipfS(s float64) {
	g.cfg.ZipfS = s
	g.zipf = NewZipf(len(g.targets), s, g.r)
}

// ZipfS returns the current popularity exponent.
func (g *Generator) ZipfS() float64 { return g.cfg.ZipfS }

// Targets returns a copy of the current target ranking (most popular
// first).
func (g *Generator) Targets() []FileID {
	out := make([]FileID, len(g.targets))
	copy(out, g.targets)
	return out
}

// SetTargets replaces the target ranking — position is popularity rank, so
// reordering re-ranks popularity (flash crowds promote a hot set to the
// head) and the Zipf sampler is rebuilt over the new length.
func (g *Generator) SetTargets(ts []FileID) {
	g.targets = append(g.targets[:0], ts...)
	g.zipf = NewZipf(len(g.targets), g.cfg.ZipfS, g.r)
}

// AddTargets appends newly queryable files at the unpopular tail of the
// ranking (content injection makes them reachable by queries).
func (g *Generator) AddTargets(ts ...FileID) {
	g.targets = append(g.targets, ts...)
	g.zipf = NewZipf(len(g.targets), g.cfg.ZipfS, g.r)
}

// Next returns the next query event: an exponential inter-arrival at the
// aggregate rate, a uniformly random requester, a Zipf-ranked target file
// and a 1..K keyword query extracted from its filename.
func (g *Generator) Next() QueryEvent {
	lambda := g.AggregateRate()
	gap := g.r.ExpFloat64() / lambda // seconds
	if math.IsInf(gap, 0) || math.IsNaN(gap) {
		gap = 1 / lambda
	}
	g.now += sim.FromSeconds(gap)
	target := g.targets[g.zipf.Draw(g.r)]
	f := g.cat.File(target)
	return QueryEvent{
		At:        g.now,
		Requester: g.r.Intn(g.n),
		Target:    target,
		Q:         keywords.ExtractQuery(f, g.r),
	}
}

// Take generates the next k events.
func (g *Generator) Take(k int) []QueryEvent {
	out := make([]QueryEvent, k)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
