package workload

import (
	"math"
	"math/rand"
)

// Zipf draws popularity ranks with P(rank k) ∝ 1/(k+1)^s — the standard
// model for P2P file popularity that the paper adopts ("queries are
// generated according to Zipf distribution", §5.1; justified by the
// Gnutella trace studies it cites [11,15]).
//
// It wraps math/rand.Zipf with the conventional (s, v=1) parameterisation
// and a convenience for drawing FileIDs.
type Zipf struct {
	z *rand.Zipf
	n int
	s float64
}

// NewZipf returns a Zipf sampler over ranks 0..n-1 with exponent s. The
// Gnutella measurement literature reports exponents between 0.6 and 1.0;
// the harness default is 0.8. rand.Zipf requires s > 1, so the common
// s ≤ 1 range is handled by a bounded rejection transform.
func NewZipf(n int, s float64, r *rand.Rand) *Zipf {
	if n < 1 {
		n = 1
	}
	if s <= 0 {
		s = 0.8
	}
	zp := &Zipf{n: n, s: s}
	if s > 1.001 {
		zp.z = rand.NewZipf(r, s, 1, uint64(n-1))
	}
	return zp
}

// N returns the rank-space size.
func (z *Zipf) N() int { return z.n }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// Draw samples a rank in [0, n).
func (z *Zipf) Draw(r *rand.Rand) int {
	if z.n == 1 {
		return 0
	}
	if z.z != nil {
		return int(z.z.Uint64())
	}
	// Inverse-CDF via the analytic approximation of the generalized
	// harmonic CDF for s in (0,1]; exact enough for workload generation and
	// far cheaper than a table for n=3000. We invert
	//   F(k) ≈ (k^(1-s) - 1) / (n^(1-s) - 1)   for s < 1
	//   F(k) ≈ ln(k) / ln(n)                   for s = 1
	u := r.Float64()
	oneMinus := 1 - z.s
	var k float64
	if oneMinus > 1e-9 {
		nPow := math.Pow(float64(z.n), oneMinus)
		k = math.Pow(u*(nPow-1)+1, 1/oneMinus)
	} else {
		k = math.Pow(float64(z.n), u)
	}
	rank := int(k) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}

// DrawFile samples a FileID, treating catalogue order as popularity rank.
func (z *Zipf) DrawFile(r *rand.Rand) FileID { return FileID(z.Draw(r)) }
