package workload

import "math/rand"

// Placement records which peers initially share which files ("each peer
// initially shares 3 files, randomly chosen from a pool of 3000", §5.1).
type Placement struct {
	// shared[p] lists the FileIDs peer p starts with.
	shared [][]FileID
}

// NewPlacement assigns filesPerPeer random distinct files to each of n
// peers.
func NewPlacement(n, filesPerPeer int, cat *Catalog, r *rand.Rand) *Placement {
	if filesPerPeer > cat.Size() {
		filesPerPeer = cat.Size()
	}
	p := &Placement{shared: make([][]FileID, n)}
	for i := 0; i < n; i++ {
		seen := make(map[FileID]bool, filesPerPeer)
		files := make([]FileID, 0, filesPerPeer)
		for len(files) < filesPerPeer {
			id := FileID(r.Intn(cat.Size()))
			if seen[id] {
				continue
			}
			seen[id] = true
			files = append(files, id)
		}
		p.shared[i] = files
	}
	return p
}

// Files returns the initial file set of peer p.
func (pl *Placement) Files(p int) []FileID {
	out := make([]FileID, len(pl.shared[p]))
	copy(out, pl.shared[p])
	return out
}

// N returns the number of peers in the placement.
func (pl *Placement) N() int { return len(pl.shared) }

// Providers returns, for each file, the peers that initially share it.
func (pl *Placement) Providers() map[FileID][]int {
	m := make(map[FileID][]int)
	for p, files := range pl.shared {
		for _, f := range files {
			m[f] = append(m[f], p)
		}
	}
	return m
}
