package workload

import (
	"math/rand"
	"testing"

	"github.com/p2prepro/locaware/internal/keywords"
)

// BenchmarkZipfDraw measures popularity sampling (s<=1 analytic inverse).
func BenchmarkZipfDraw(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	z := NewZipf(3000, 1.0, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Draw(r)
	}
}

// BenchmarkGeneratorNext measures full query-event generation (arrival,
// requester, target, keyword extraction).
func BenchmarkGeneratorNext(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	cat := NewCatalog(DefaultCatalog(), r)
	g := NewGenerator(1000, DefaultGen(), cat, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

// BenchmarkCatalogMatching measures ground-truth keyword matching across
// the whole catalogue.
func BenchmarkCatalogMatching(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	cat := NewCatalog(DefaultCatalog(), r)
	f := cat.File(100)
	q := keywords.ExtractQuery(f, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cat.MatchingFiles(q)
	}
}

// BenchmarkNewCatalog measures paper-scale catalogue construction.
func BenchmarkNewCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		_ = NewCatalog(DefaultCatalog(), r)
	}
}
