// Package workload generates the Locaware evaluation workload (§5.1): a
// catalogue of 3000 files whose names are 3 keywords from a 9000-keyword
// pool, an initial placement of 3 files per peer, Zipf-distributed query
// popularity, and Poisson query arrivals at 0.00083 queries per second per
// peer, each query expressed with 1–3 keywords of the target filename.
//
// The catalogue is mutable mid-run: scenario content dynamics inject new
// releases and the generator re-ranks popularity, so satisfiability lookups
// go through an inverted keyword index instead of a linear scan.
package workload

import (
	"math/rand"

	"github.com/p2prepro/locaware/internal/keywords"
)

// FileID indexes a file in the catalogue. The catalogue is ordered by
// popularity rank: FileID 0 is the most queried file.
type FileID int

// Catalog is the universe of shared files.
type Catalog struct {
	pool  *keywords.Pool
	files []keywords.Filename
	// byName maps canonical filename strings back to ids.
	byName map[string]FileID
	// byKeyword is the inverted index: keyword -> ascending ids of the
	// files whose names contain it. Ground-truth satisfiability
	// (MatchingFiles) intersects posting lists instead of scanning the
	// whole catalogue, which keeps it cheap when scenarios inject files
	// mid-run and re-check satisfiability per phase.
	byKeyword map[keywords.Keyword][]FileID
	// kwPerFile is the filename width used for generated files (paper: 3).
	kwPerFile int
}

// CatalogConfig sizes the catalogue.
type CatalogConfig struct {
	NumFiles        int // paper: 3000
	KeywordPool     int // paper: 9000
	KeywordsPerFile int // paper: 3
}

// DefaultCatalog matches §5.1.
func DefaultCatalog() CatalogConfig {
	return CatalogConfig{NumFiles: 3000, KeywordPool: 9000, KeywordsPerFile: 3}
}

// NewCatalog generates a catalogue; filenames are drawn with r and
// guaranteed unique.
func NewCatalog(cfg CatalogConfig, r *rand.Rand) *Catalog {
	if cfg.NumFiles <= 0 {
		cfg = DefaultCatalog()
	}
	pool := keywords.NewPool(cfg.KeywordPool)
	c := &Catalog{
		pool:      pool,
		files:     make([]keywords.Filename, 0, cfg.NumFiles),
		byName:    make(map[string]FileID, cfg.NumFiles),
		byKeyword: make(map[keywords.Keyword][]FileID, cfg.KeywordPool),
		kwPerFile: cfg.KeywordsPerFile,
	}
	for len(c.files) < cfg.NumFiles {
		c.Add(pool.RandomFilename(cfg.KeywordsPerFile, r))
	}
	return c
}

// Size returns the number of files.
func (c *Catalog) Size() int { return len(c.files) }

// File returns the filename of id.
func (c *Catalog) File(id FileID) keywords.Filename { return c.files[id] }

// Lookup resolves a canonical filename string to its id.
func (c *Catalog) Lookup(name string) (FileID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// Add inserts a new file into the catalogue, indexing its keywords, and
// returns its id. A duplicate filename returns the existing id with ok
// false. Content dynamics use it to inject files mid-run.
func (c *Catalog) Add(f keywords.Filename) (FileID, bool) {
	name := f.String()
	if id, dup := c.byName[name]; dup {
		return id, false
	}
	id := FileID(len(c.files))
	c.byName[name] = id
	c.files = append(c.files, f)
	// Files are only ever appended, so posting lists stay ascending and
	// MatchingFiles returns ids in the same order a full scan would.
	for i := 0; i < f.K(); i++ {
		kw := f.KeywordAt(i)
		c.byKeyword[kw] = append(c.byKeyword[kw], id)
	}
	return id, true
}

// NewFiles draws n fresh unique filenames from the keyword pool with r and
// adds them to the catalogue, returning their ids in insertion order — the
// injection primitive behind scenario content dynamics.
func (c *Catalog) NewFiles(n int, r *rand.Rand) []FileID {
	k := c.kwPerFile
	if k <= 0 {
		k = DefaultCatalog().KeywordsPerFile
	}
	ids := make([]FileID, 0, n)
	for len(ids) < n {
		if id, ok := c.Add(c.pool.RandomFilename(k, r)); ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// MatchingFiles returns the ids of all files whose names satisfy q, in
// ascending id order. The evaluation uses it to decide ground-truth query
// satisfiability. It probes the inverted index with q's rarest keyword and
// verifies only that posting list, so cost scales with the keyword's
// selectivity, not the catalogue size.
func (c *Catalog) MatchingFiles(q keywords.Query) []FileID {
	if len(q.Kws) == 0 {
		return nil
	}
	// Shortest posting list bounds the candidate set; a keyword absent
	// from the index means no file can satisfy the query.
	var candidates []FileID
	for i, kw := range q.Kws {
		post, ok := c.byKeyword[kw]
		if !ok {
			return nil
		}
		if i == 0 || len(post) < len(candidates) {
			candidates = post
		}
	}
	var out []FileID
	for _, id := range candidates {
		if c.files[id].Matches(q) {
			out = append(out, id)
		}
	}
	return out
}

// Pool exposes the keyword pool behind the catalogue.
func (c *Catalog) Pool() *keywords.Pool { return c.pool }
