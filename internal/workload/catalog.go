// Package workload generates the Locaware evaluation workload (§5.1): a
// catalogue of 3000 files whose names are 3 keywords from a 9000-keyword
// pool, an initial placement of 3 files per peer, Zipf-distributed query
// popularity, and Poisson query arrivals at 0.00083 queries per second per
// peer, each query expressed with 1–3 keywords of the target filename.
package workload

import (
	"math/rand"

	"github.com/p2prepro/locaware/internal/keywords"
)

// FileID indexes a file in the catalogue. The catalogue is ordered by
// popularity rank: FileID 0 is the most queried file.
type FileID int

// Catalog is the universe of shared files.
type Catalog struct {
	pool  *keywords.Pool
	files []keywords.Filename
	// byName maps canonical filename strings back to ids.
	byName map[string]FileID
}

// CatalogConfig sizes the catalogue.
type CatalogConfig struct {
	NumFiles        int // paper: 3000
	KeywordPool     int // paper: 9000
	KeywordsPerFile int // paper: 3
}

// DefaultCatalog matches §5.1.
func DefaultCatalog() CatalogConfig {
	return CatalogConfig{NumFiles: 3000, KeywordPool: 9000, KeywordsPerFile: 3}
}

// NewCatalog generates a catalogue; filenames are drawn with r and
// guaranteed unique.
func NewCatalog(cfg CatalogConfig, r *rand.Rand) *Catalog {
	if cfg.NumFiles <= 0 {
		cfg = DefaultCatalog()
	}
	pool := keywords.NewPool(cfg.KeywordPool)
	c := &Catalog{
		pool:   pool,
		files:  make([]keywords.Filename, 0, cfg.NumFiles),
		byName: make(map[string]FileID, cfg.NumFiles),
	}
	for len(c.files) < cfg.NumFiles {
		f := pool.RandomFilename(cfg.KeywordsPerFile, r)
		name := f.String()
		if _, dup := c.byName[name]; dup {
			continue
		}
		c.byName[name] = FileID(len(c.files))
		c.files = append(c.files, f)
	}
	return c
}

// Size returns the number of files.
func (c *Catalog) Size() int { return len(c.files) }

// File returns the filename of id.
func (c *Catalog) File(id FileID) keywords.Filename { return c.files[id] }

// Lookup resolves a canonical filename string to its id.
func (c *Catalog) Lookup(name string) (FileID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// MatchingFiles returns the ids of all files whose names satisfy q. The
// evaluation uses it to decide ground-truth query satisfiability.
func (c *Catalog) MatchingFiles(q keywords.Query) []FileID {
	var out []FileID
	for id, f := range c.files {
		if f.Matches(q) {
			out = append(out, FileID(id))
		}
	}
	return out
}

// Pool exposes the keyword pool behind the catalogue.
func (c *Catalog) Pool() *keywords.Pool { return c.pool }
