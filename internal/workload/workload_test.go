package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/p2prepro/locaware/internal/keywords"
)

func paperCatalog(seed int64) (*Catalog, *rand.Rand) {
	r := rand.New(rand.NewSource(seed))
	return NewCatalog(DefaultCatalog(), r), r
}

func TestCatalogPaperScale(t *testing.T) {
	c, _ := paperCatalog(1)
	if c.Size() != 3000 {
		t.Fatalf("size = %d, want 3000", c.Size())
	}
	if c.Pool().Size() != 9000 {
		t.Fatalf("pool = %d, want 9000", c.Pool().Size())
	}
	seen := map[string]bool{}
	for id := 0; id < c.Size(); id++ {
		f := c.File(FileID(id))
		if f.K() != 3 {
			t.Fatalf("file %d has %d keywords", id, f.K())
		}
		name := f.String()
		if seen[name] {
			t.Fatalf("duplicate filename %q", name)
		}
		seen[name] = true
	}
}

func TestCatalogLookup(t *testing.T) {
	c, _ := paperCatalog(2)
	f := c.File(42)
	id, ok := c.Lookup(f.String())
	if !ok || id != 42 {
		t.Fatalf("Lookup(%q) = %d,%v", f.String(), id, ok)
	}
	if _, ok := c.Lookup("nonexistent_name_here"); ok {
		t.Fatal("phantom lookup")
	}
}

func TestCatalogDefaultFallback(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	c := NewCatalog(CatalogConfig{}, r)
	if c.Size() != 3000 {
		t.Fatalf("zero config did not fall back: size=%d", c.Size())
	}
}

func TestMatchingFilesGroundTruth(t *testing.T) {
	c, r := paperCatalog(4)
	// A full-filename query must match at least its own file.
	for trial := 0; trial < 50; trial++ {
		id := FileID(r.Intn(c.Size()))
		f := c.File(id)
		q := keywords.NewQuery(f.Keywords()...)
		matches := c.MatchingFiles(q)
		found := false
		for _, m := range matches {
			if m == id {
				found = true
			}
			if !c.File(m).Matches(q) {
				t.Fatalf("MatchingFiles returned non-match %d", m)
			}
		}
		if !found {
			t.Fatalf("file %d not among matches of its own full query", id)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	z := NewZipf(3000, 0.8, r)
	if z.N() != 3000 || z.S() != 0.8 {
		t.Fatalf("params: n=%d s=%v", z.N(), z.S())
	}
	counts := make([]int, 3000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Draw(r)
		if k < 0 || k >= 3000 {
			t.Fatalf("rank %d out of range", k)
		}
		counts[k]++
	}
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	frac := float64(top10) / draws
	// With s=0.8 over 3000 ranks the top 10 files draw a visibly
	// disproportionate share (uniform would give 0.0033).
	if frac < 0.05 {
		t.Fatalf("top-10 share %.4f — distribution not skewed", frac)
	}
	if counts[0] < counts[2999] {
		t.Fatal("rank 0 less popular than rank 2999")
	}
}

func TestZipfHeavyExponentUsesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	z := NewZipf(100, 1.5, r)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Draw(r)]++
	}
	if counts[0] < counts[50] {
		t.Fatal("s=1.5 distribution not decreasing")
	}
}

func TestZipfS1LogForm(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	z := NewZipf(1000, 1.0, r)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Draw(r)]++
	}
	if counts[0] == 0 || counts[0] < counts[500] {
		t.Fatalf("s=1 head not heavy: head=%d mid=%d", counts[0], counts[500])
	}
}

func TestZipfDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	z := NewZipf(0, -1, r)
	if z.N() != 1 {
		t.Fatalf("N = %d, want clamped 1", z.N())
	}
	for i := 0; i < 10; i++ {
		if z.Draw(r) != 0 {
			t.Fatal("single-rank zipf must always draw 0")
		}
	}
	if z.S() != 0.8 {
		t.Fatalf("default exponent not applied: %v", z.S())
	}
}

func TestZipfQuickInRange(t *testing.T) {
	prop := func(nRaw uint16, sRaw uint8, seed int64) bool {
		n := 1 + int(nRaw)%5000
		s := 0.1 + float64(sRaw%30)/10 // 0.1 .. 3.0
		r := rand.New(rand.NewSource(seed))
		z := NewZipf(n, s, r)
		for i := 0; i < 50; i++ {
			k := z.Draw(r)
			if k < 0 || k >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementPaperScale(t *testing.T) {
	c, r := paperCatalog(9)
	pl := NewPlacement(1000, 3, c, r)
	if pl.N() != 1000 {
		t.Fatalf("N = %d", pl.N())
	}
	for p := 0; p < 1000; p++ {
		files := pl.Files(p)
		if len(files) != 3 {
			t.Fatalf("peer %d shares %d files", p, len(files))
		}
		seen := map[FileID]bool{}
		for _, f := range files {
			if f < 0 || int(f) >= c.Size() {
				t.Fatalf("file id %d out of range", f)
			}
			if seen[f] {
				t.Fatalf("peer %d shares duplicate file %d", p, f)
			}
			seen[f] = true
		}
	}
}

func TestPlacementProvidersConsistent(t *testing.T) {
	c, r := paperCatalog(10)
	pl := NewPlacement(200, 3, c, r)
	prov := pl.Providers()
	total := 0
	for f, peers := range prov {
		total += len(peers)
		for _, p := range peers {
			found := false
			for _, g := range pl.Files(p) {
				if g == f {
					found = true
				}
			}
			if !found {
				t.Fatalf("provider map lists peer %d for file %d it does not share", p, f)
			}
		}
	}
	if total != 600 {
		t.Fatalf("provider entries = %d, want 600", total)
	}
}

func TestPlacementFilesReturnsCopy(t *testing.T) {
	c, r := paperCatalog(11)
	pl := NewPlacement(5, 3, c, r)
	fs := pl.Files(0)
	fs[0] = -99
	if pl.Files(0)[0] == -99 {
		t.Fatal("Files exposed internal storage")
	}
}

func TestPlacementClampsToCatalog(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	c := NewCatalog(CatalogConfig{NumFiles: 2, KeywordPool: 100, KeywordsPerFile: 3}, r)
	pl := NewPlacement(3, 10, c, r)
	if len(pl.Files(0)) != 2 {
		t.Fatalf("clamp failed: %d files", len(pl.Files(0)))
	}
}

func TestGeneratorRateAndAttribution(t *testing.T) {
	c, r := paperCatalog(13)
	g := NewGenerator(1000, DefaultGen(), c, r)
	if math.Abs(g.AggregateRate()-0.83) > 1e-9 {
		t.Fatalf("aggregate rate = %v, want 0.83", g.AggregateRate())
	}
	events := g.Take(5000)
	var prev QueryEvent
	requesters := map[int]bool{}
	for i, ev := range events {
		if i > 0 && ev.At < prev.At {
			t.Fatal("event times not monotone")
		}
		if ev.Requester < 0 || ev.Requester >= 1000 {
			t.Fatalf("requester %d out of range", ev.Requester)
		}
		if ev.Target < 0 || int(ev.Target) >= c.Size() {
			t.Fatalf("target %d out of range", ev.Target)
		}
		if len(ev.Q.Kws) < 1 || len(ev.Q.Kws) > 3 {
			t.Fatalf("query size %d", len(ev.Q.Kws))
		}
		if !c.File(ev.Target).Matches(ev.Q) {
			t.Fatal("query does not match its target file")
		}
		requesters[ev.Requester] = true
		prev = ev
	}
	if len(requesters) < 900 {
		t.Fatalf("only %d distinct requesters in 5000 events", len(requesters))
	}
	// Mean inter-arrival should be ~1/0.83 s = ~1.2 s.
	meanGap := events[len(events)-1].At.Seconds() / float64(len(events))
	if meanGap < 0.8 || meanGap > 1.7 {
		t.Fatalf("mean inter-arrival %.3fs, want ~1.2s", meanGap)
	}
}

func TestGeneratorZipfTargetSkew(t *testing.T) {
	c, r := paperCatalog(14)
	g := NewGenerator(1000, DefaultGen(), c, r)
	counts := map[FileID]int{}
	for i := 0; i < 20000; i++ {
		counts[g.Next().Target]++
	}
	if counts[0] <= counts[2500] {
		t.Fatalf("popularity not skewed: head=%d tail=%d", counts[0], counts[2500])
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	c1, r1 := paperCatalog(15)
	c2, r2 := paperCatalog(15)
	g1 := NewGenerator(100, DefaultGen(), c1, r1)
	g2 := NewGenerator(100, DefaultGen(), c2, r2)
	for i := 0; i < 200; i++ {
		a, b := g1.Next(), g2.Next()
		if a.At != b.At || a.Requester != b.Requester || a.Target != b.Target || a.Q.String() != b.Q.String() {
			t.Fatalf("generators diverged at %d", i)
		}
	}
}

func TestGeneratorRateFallback(t *testing.T) {
	c, r := paperCatalog(16)
	g := NewGenerator(10, GenConfig{RatePerPeer: -1, ZipfS: 0.8}, c, r)
	if g.AggregateRate() <= 0 {
		t.Fatal("rate fallback missing")
	}
}

// bruteMatch is the reference linear scan the inverted index replaced.
func bruteMatch(c *Catalog, q keywords.Query) []FileID {
	var out []FileID
	for id := 0; id < c.Size(); id++ {
		if c.File(FileID(id)).Matches(q) {
			out = append(out, FileID(id))
		}
	}
	return out
}

func TestMatchingFilesEqualsLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	c := NewCatalog(CatalogConfig{NumFiles: 400, KeywordPool: 300, KeywordsPerFile: 3}, r)
	for i := 0; i < 500; i++ {
		f := c.File(FileID(r.Intn(c.Size())))
		q := keywords.ExtractQuery(f, r)
		got, want := c.MatchingFiles(q), bruteMatch(c, q)
		if len(got) != len(want) {
			t.Fatalf("query %v: index found %d files, scan %d", q, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %v: index order %v != scan order %v", q, got, want)
			}
		}
	}
	// Queries with unknown keywords match nothing, cheaply.
	if got := c.MatchingFiles(keywords.NewQuery("zz-not-in-pool")); got != nil {
		t.Fatalf("unknown keyword matched %v", got)
	}
	if got := c.MatchingFiles(keywords.Query{}); got != nil {
		t.Fatalf("empty query matched %v", got)
	}
}

func TestCatalogAddIndexesNewFiles(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	c := NewCatalog(CatalogConfig{NumFiles: 50, KeywordPool: 200, KeywordsPerFile: 3}, r)
	f := keywords.NewFilename("brand", "new", "release")
	id, ok := c.Add(f)
	if !ok || int(id) != c.Size()-1 {
		t.Fatalf("Add returned (%d, %v), want fresh tail id", id, ok)
	}
	if id2, ok2 := c.Add(f); ok2 || id2 != id {
		t.Fatalf("duplicate Add returned (%d, %v)", id2, ok2)
	}
	got := c.MatchingFiles(keywords.NewQuery("brand", "release"))
	if len(got) != 1 || got[0] != id {
		t.Fatalf("injected file not found via index: %v", got)
	}
	if lid, ok := c.Lookup(f.String()); !ok || lid != id {
		t.Fatalf("Lookup(%q) = (%d, %v)", f.String(), lid, ok)
	}
}

func TestCatalogNewFilesUniqueAndQueryable(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	c := NewCatalog(CatalogConfig{NumFiles: 100, KeywordPool: 150, KeywordsPerFile: 3}, r)
	before := c.Size()
	ids := c.NewFiles(25, r)
	if len(ids) != 25 || c.Size() != before+25 {
		t.Fatalf("NewFiles grew catalogue %d -> %d with %d ids", before, c.Size(), len(ids))
	}
	for _, id := range ids {
		f := c.File(id)
		got := c.MatchingFiles(keywords.Query{Kws: f.Keywords()})
		found := false
		for _, g := range got {
			if g == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("injected file %d (%s) not satisfiable", id, f)
		}
	}
}

func TestGeneratorDynamics(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	c := NewCatalog(CatalogConfig{NumFiles: 60, KeywordPool: 120, KeywordsPerFile: 3}, r)
	g := NewGenerator(40, GenConfig{RatePerPeer: 0.01, ZipfS: 1.0}, c, rand.New(rand.NewSource(11)))

	base := g.AggregateRate()
	g.SetRateFactor(4)
	if g.AggregateRate() != 4*base || g.RateFactor() != 4 {
		t.Fatalf("rate factor: %v at factor %v", g.AggregateRate(), g.RateFactor())
	}
	g.SetRateFactor(0) // ignored
	if g.RateFactor() != 4 {
		t.Fatal("non-positive rate factor not ignored")
	}
	g.SetRateFactor(1)
	if g.AggregateRate() != base {
		t.Fatal("rate factor 1 must restore the base rate")
	}

	// Promoting a hot set re-ranks popularity: with a steep exponent the
	// head files dominate draws.
	hot := []FileID{41, 17, 53}
	rest := g.Targets()
	g.SetTargets(append(append([]FileID{}, hot...), rest...))
	g.SetZipfS(1.5)
	if g.ZipfS() != 1.5 {
		t.Fatalf("ZipfS() = %v after SetZipfS(1.5) — calm events restore via this getter", g.ZipfS())
	}
	counts := map[FileID]int{}
	for i := 0; i < 3000; i++ {
		counts[g.Next().Target]++
	}
	hotDraws := counts[41] + counts[17] + counts[53]
	if hotDraws < 1500 {
		t.Fatalf("hot set drew only %d of 3000 with s=1.5", hotDraws)
	}

	// Injected targets become drawable.
	ids := c.NewFiles(1, r)
	g.AddTargets(ids...)
	seen := false
	for i := 0; i < 20000 && !seen; i++ {
		seen = g.Next().Target == ids[0]
	}
	if !seen {
		t.Fatalf("injected target %d never drawn", ids[0])
	}
}
