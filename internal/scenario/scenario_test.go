package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/sim"
)

func TestBuiltinsValidateAndResolve(t *testing.T) {
	if len(Builtins()) < 6 {
		t.Fatalf("registry has %d built-ins, want >= 6", len(Builtins()))
	}
	for _, s := range Builtins() {
		if err := s.Validate(); err != nil {
			t.Errorf("built-in %q invalid: %v", s.Name, err)
		}
		marks, err := s.Marks(1000)
		if err != nil {
			t.Errorf("built-in %q: Marks: %v", s.Name, err)
			continue
		}
		if len(marks) != len(s.Phases) {
			t.Errorf("built-in %q: %d marks for %d phases", s.Name, len(marks), len(s.Phases))
		}
		if marks[len(marks)-1].End != 1000 {
			t.Errorf("built-in %q: last mark ends at %d, want 1000", s.Name, marks[len(marks)-1].End)
		}
		prev := 0
		for i, m := range marks {
			if m.End <= prev {
				t.Errorf("built-in %q: mark %d not ascending (%d after %d)", s.Name, i, m.End, prev)
			}
			if m.Name != s.Phases[i].Name {
				t.Errorf("built-in %q: mark %d named %q, want %q", s.Name, i, m.Name, s.Phases[i].Name)
			}
			prev = m.End
		}
	}
}

func TestLookupAndNames(t *testing.T) {
	for _, name := range Names() {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Names lists %q but Lookup misses it", name)
		}
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("Lookup invented a scenario")
	}
	// Registry copies are independent: mutating one must not leak.
	a, _ := Lookup("flashcrowd")
	a.Phases[0].Name = "mutated"
	b, _ := Lookup("flashcrowd")
	if b.Phases[0].Name == "mutated" {
		t.Error("Lookup returns shared mutable spec")
	}
}

func TestMarksTinyRuns(t *testing.T) {
	s, _ := Lookup("flashcrowd") // 4 phases
	if _, err := s.Marks(3); err == nil {
		t.Error("Marks accepted fewer measured queries than phases")
	}
	marks, err := s.Marks(4)
	if err != nil {
		t.Fatalf("Marks(4): %v", err)
	}
	for i, m := range marks {
		if m.End != i+1 {
			t.Fatalf("Marks(4) = %v, want one query per phase", marks)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"no name", Spec{Phases: []PhaseSpec{{Name: "p", Fraction: 1}}}},
		{"no phases", Spec{Name: "x"}},
		{"zero fraction", Spec{Name: "x", Phases: []PhaseSpec{{Name: "p"}}}},
		{"unknown kind", Spec{Name: "x", Phases: []PhaseSpec{{Name: "p", Fraction: 1,
			Events: []EventSpec{{Kind: "warp-core-breach"}}}}}},
		{"wave frac", Spec{Name: "x", Phases: []PhaseSpec{{Name: "p", Fraction: 1,
			Events: []EventSpec{{Kind: KindChurnWave, Frac: 1.5}}}}}},
		{"empty flash", Spec{Name: "x", Phases: []PhaseSpec{{Name: "p", Fraction: 1,
			Events: []EventSpec{{Kind: KindFlashCrowd}}}}}},
		{"inject zero", Spec{Name: "x", Phases: []PhaseSpec{{Name: "p", Fraction: 1,
			Events: []EventSpec{{Kind: KindInjectFiles}}}}}},
		{"degrade nothing", Spec{Name: "x", Phases: []PhaseSpec{{Name: "p", Fraction: 1,
			Events: []EventSpec{{Kind: KindDegradeRegion, Localities: 1}}}}}},
		{"bad churn prob", Spec{Name: "x", Phases: []PhaseSpec{{Name: "p", Fraction: 1,
			Churn: &ChurnSpec{LeaveProb: 2}}}}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid spec", c.name)
		}
	}
}

func TestParseSpecJSONRoundTrip(t *testing.T) {
	for _, s := range Builtins() {
		data, err := s.JSON()
		if err != nil {
			t.Fatalf("%s: JSON: %v", s.Name, err)
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: ParseSpec of own JSON: %v", s.Name, err)
		}
		a, _ := json.Marshal(s)
		b, _ := json.Marshal(back)
		if string(a) != string(b) {
			t.Errorf("%s: JSON round trip drifted:\n%s\n%s", s.Name, a, b)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"name":"x","phases":[{"name":"p","fraction":1,"evnets":[]}]}`))
	if err == nil || !strings.Contains(err.Error(), "evnets") {
		t.Fatalf("typo'd field not rejected: %v", err)
	}
}

func TestSteadyChurnSpec(t *testing.T) {
	cfg := overlay.DefaultChurn()
	s := SteadyChurn(cfg, 42*sim.Second)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.ChurnInterval() != 42*sim.Second {
		t.Fatalf("interval %v, want exactly 42s", s.ChurnInterval())
	}
	if !s.HasChurn() {
		t.Fatal("steady-churn spec reports no churn")
	}
	p := s.Phases[0]
	if p.Churn.LeaveProb != cfg.LeaveProb || p.Churn.JoinProb != cfg.JoinProb ||
		p.Churn.MinOnlineFraction != cfg.MinOnlineFraction {
		t.Fatalf("steady-churn drifted from the churn config: %+v vs %+v", p.Churn, cfg)
	}
}

func TestChurnIntervalDefault(t *testing.T) {
	s := Spec{Name: "x", Phases: []PhaseSpec{{Name: "p", Fraction: 1}}}
	if s.ChurnInterval() != 60*sim.Second {
		t.Fatalf("default interval %v, want 60s", s.ChurnInterval())
	}
	s.ChurnIntervalS = 2.5
	if s.ChurnInterval() != sim.FromSeconds(2.5) {
		t.Fatalf("interval %v, want 2.5s", s.ChurnInterval())
	}
}
