package scenario

import (
	"reflect"
	"testing"
)

func TestScaleIntensityIdentity(t *testing.T) {
	for _, s := range Builtins() {
		scaled := s.ScaleIntensity(1)
		if !reflect.DeepEqual(s, scaled) {
			t.Fatalf("%q: intensity 1 must be the identity\nwant %+v\ngot  %+v", s.Name, s, scaled)
		}
	}
}

func TestScaleIntensityDoesNotMutateSource(t *testing.T) {
	src, _ := Lookup("churn-waves")
	before, _ := src.JSON()
	src.ScaleIntensity(0.25)
	after, _ := src.JSON()
	if string(before) != string(after) {
		t.Fatal("scaling mutated the source spec")
	}
}

func TestScaleIntensityScalesMagnitudes(t *testing.T) {
	src, _ := Lookup("churn-waves")
	half := src.ScaleIntensity(0.5)
	wave := half.Phases[1]
	if wave.Churn.LeaveProb != 0.025 || wave.Churn.JoinProb != 0.025 {
		t.Fatalf("churn probs = %+v, want halved", wave.Churn)
	}
	if wave.Events[0].Frac != 0.125 {
		t.Fatalf("wave frac = %g, want 0.125", wave.Events[0].Frac)
	}
	fc, _ := Lookup("flashcrowd")
	double := fc.ScaleIntensity(2)
	crowd := double.Phases[1].Events[0]
	if crowd.RateFactor != 7 { // 1 + (4-1)*2
		t.Fatalf("rate factor = %g, want excess-scaled 7", crowd.RateFactor)
	}
	if crowd.HotFiles != 16 {
		t.Fatalf("hot files = %d, want 16", crowd.HotFiles)
	}
	ro, _ := Lookup("regional-outage")
	outage := ro.ScaleIntensity(0.5).Phases[1].Events[0]
	if outage.LatencyFactor != 2 { // 1 + (3-1)*0.5
		t.Fatalf("latency factor = %g, want 2", outage.LatencyFactor)
	}
	if outage.LinkDropFrac != 0.15 {
		t.Fatalf("link drop = %g, want 0.15", outage.LinkDropFrac)
	}
}

func TestScaleIntensityClampsAndValidates(t *testing.T) {
	// Every builtin must stay valid across the whole factor range,
	// including the degenerate endpoints and over-amplification that must
	// clamp probabilities and fractions to 1.
	for _, s := range Builtins() {
		for _, f := range []float64{0, 0.1, 1, 2.5, 100, -3} {
			scaled := s.ScaleIntensity(f)
			if err := scaled.Validate(); err != nil {
				t.Fatalf("%q scaled by %g is invalid: %v", s.Name, f, err)
			}
		}
	}
	cw, _ := Lookup("churn-waves")
	big := cw.ScaleIntensity(100)
	if p := big.Phases[1].Churn.LeaveProb; p != 1 {
		t.Fatalf("leave prob = %g, want clamp to 1", p)
	}
	if frac := big.Phases[1].Events[0].Frac; frac != 1 {
		t.Fatalf("wave frac = %g, want clamp to 1", frac)
	}
}

// TestScaleIntensityZeroKeepsBaseZipf locks the intensity-0 baseline
// contract for the absolute Zipf override: the event must fall back to
// "keep the current exponent" (0), never replace a non-uniform base
// popularity with the multiplier-neutral exponent 1.
func TestScaleIntensityZeroKeepsBaseZipf(t *testing.T) {
	fc, _ := Lookup("flashcrowd")
	zero := fc.ScaleIntensity(0)
	crowd := zero.Phases[1].Events[0]
	if crowd.ZipfS != 0 {
		t.Fatalf("zipf override at zero intensity = %g, want 0 (keep)", crowd.ZipfS)
	}
	if crowd.RateFactor != 1 {
		t.Fatalf("rate factor at zero intensity = %g, want neutral 1", crowd.RateFactor)
	}
	if crowd.HotFiles != 0 {
		t.Fatalf("hot set at zero intensity = %d, want 0", crowd.HotFiles)
	}
}

func TestScaleIntensityZeroDropsNoOpEvents(t *testing.T) {
	cw, _ := Lookup("churn-waves")
	zero := cw.ScaleIntensity(0)
	if n := len(zero.Phases[1].Events); n != 0 {
		t.Fatalf("zero-intensity wave phase keeps %d events, want 0 (frac scaled to 0)", n)
	}
	if p := zero.Phases[1].Churn.LeaveProb; p != 0 {
		t.Fatalf("leave prob = %g, want 0", p)
	}
	cs, _ := Lookup("content-shift")
	zeroCS := cs.ScaleIntensity(0)
	for i, p := range zeroCS.Phases {
		if len(p.Events) != 0 {
			t.Fatalf("phase %d keeps %d content events at zero intensity", i, len(p.Events))
		}
	}
	// The phase timeline itself must survive: intensity sweeps compare the
	// same phases across cells.
	if len(zero.Phases) != len(cw.Phases) {
		t.Fatal("zero intensity dropped phases")
	}
}
