package scenario

import (
	"sort"

	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/sim"
)

// SteadyChurn lowers the legacy whole-run churn flag onto the scenario
// engine: a single phase whose periodic churn process runs cfg at the given
// interval — the event cadence, RNG stream and ChurnStep calls are exactly
// the ones the pre-scenario ad-hoc path produced, so enabling churn through
// this spec is bit-identical to the old Options.Churn behaviour.
func SteadyChurn(cfg overlay.ChurnConfig, interval sim.Time) *Spec {
	return &Spec{
		Name:          "steady-churn",
		Description:   "whole-run independent leave/rejoin churn (the legacy Options.Churn behaviour)",
		churnInterval: interval,
		Phases: []PhaseSpec{{
			Name:     "steady",
			Fraction: 1,
			Churn: &ChurnSpec{
				LeaveProb:         cfg.LeaveProb,
				JoinProb:          cfg.JoinProb,
				MinOnlineFraction: cfg.MinOnlineFraction,
			},
		}},
	}
}

// builtins constructs the registry afresh (specs are mutable data; every
// caller gets its own copy).
func builtins() []*Spec {
	dc := overlay.DefaultChurn()
	return []*Spec{
		{
			Name:        "baseline",
			Description: "single steady phase with no dynamics (the paper's static workload)",
			Phases:      []PhaseSpec{{Name: "steady", Fraction: 1}},
		},
		SteadyChurn(dc, 60*sim.Second),
		{
			Name:        "churn-waves",
			Description: "mass departure wave, then a recovery flood of rejoins",
			Phases: []PhaseSpec{
				{Name: "calm", Fraction: 1},
				{Name: "wave", Fraction: 1,
					Churn:  &ChurnSpec{LeaveProb: 0.05, JoinProb: 0.05},
					Events: []EventSpec{{Kind: KindChurnWave, Frac: 0.25}}},
				{Name: "recovery", Fraction: 1,
					Churn:  &ChurnSpec{LeaveProb: 0.01, JoinProb: 0.3},
					Events: []EventSpec{{Kind: KindRejoin, Frac: 1}}},
				{Name: "settled", Fraction: 1},
			},
		},
		{
			Name:        "flashcrowd",
			Description: "a hot file set seizes the popularity head while the query rate spikes 4x",
			Phases: []PhaseSpec{
				{Name: "warm", Fraction: 1},
				{Name: "crowd", Fraction: 1.5,
					Events: []EventSpec{{Kind: KindFlashCrowd, HotFiles: 8, RateFactor: 4, ZipfS: 1.4}}},
				{Name: "decay", Fraction: 1,
					Events: []EventSpec{{Kind: KindFlashCrowd, RateFactor: 2}}},
				{Name: "calm", Fraction: 1,
					Events: []EventSpec{{Kind: KindCalm}}},
			},
		},
		{
			Name:        "content-shift",
			Description: "new releases injected hot, old content withdrawn, providers migrating",
			Phases: []PhaseSpec{
				{Name: "seed", Fraction: 1.5},
				{Name: "release", Fraction: 1.5,
					Events: []EventSpec{{Kind: KindInjectFiles, Files: 40, Copies: 2, Hot: true}}},
				{Name: "churn-out", Fraction: 1,
					Events: []EventSpec{{Kind: KindRemoveFiles, Files: 20}}},
				{Name: "migrated", Fraction: 1,
					Events: []EventSpec{{Kind: KindMigrateProviders, Files: 30}}},
			},
		},
		{
			Name:        "regional-outage",
			Description: "the two most populous localities triple their RTTs and lose 30% of their links",
			Phases: []PhaseSpec{
				{Name: "healthy", Fraction: 1.5},
				{Name: "outage", Fraction: 2,
					Events: []EventSpec{{Kind: KindDegradeRegion, Localities: 2, LatencyFactor: 3, LinkDropFrac: 0.3}}},
				{Name: "restored", Fraction: 1.5,
					Events: []EventSpec{{Kind: KindRestoreRegion}}},
			},
		},
		{
			Name:        "weekend-surge",
			Description: "a diurnal swell: crowds join and query 3x harder, then drain away",
			Phases: []PhaseSpec{
				{Name: "quiet", Fraction: 1.5},
				{Name: "surge", Fraction: 2,
					Churn:  &ChurnSpec{LeaveProb: 0.01, JoinProb: 0.4},
					Events: []EventSpec{{Kind: KindFlashCrowd, HotFiles: 5, RateFactor: 3, ZipfS: 1.2}}},
				{Name: "cooldown", Fraction: 1.5,
					Churn:  &ChurnSpec{LeaveProb: 0.04, JoinProb: 0.05},
					Events: []EventSpec{{Kind: KindCalm}}},
			},
		},
	}
}

// Builtins returns the built-in scenario registry in stable order. The
// returned specs are fresh copies; callers may adjust them freely.
func Builtins() []*Spec { return builtins() }

// Lookup resolves a built-in scenario by name.
func Lookup(name string) (*Spec, bool) {
	for _, s := range builtins() {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Names lists the built-in scenario names, sorted.
func Names() []string {
	bs := builtins()
	names := make([]string, len(bs))
	for i, s := range bs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
