package scenario

// ScaleIntensity returns a deep copy of the spec with every continuous
// dynamics magnitude scaled by factor f — the parameterised-intensity hook
// behind sweep campaigns that plot metric curves against "how hard the
// network is disturbed". f = 1 reproduces the spec unchanged; f = 0 scales
// every disturbance down to its neutral value; f > 1 amplifies.
//
// Scaling rules, chosen so every factor lands on a valid spec:
//
//   - periodic churn probabilities multiply by f (clamped to 1);
//   - churn-wave / rejoin population fractions multiply by f (clamped to
//     1); an event scaled to zero is dropped;
//   - flash-crowd rate factors and degrade-region latency factors scale
//     their excess over 1 (factor' = 1 + (factor-1)·f), so f = 0 yields the
//     neutral multiplier 1; Zipf exponent overrides scale their excess over
//     1 for f > 0 and vanish entirely at f = 0 (the schema's "keep current
//     exponent"); link-drop fractions multiply by f (clamped to 1);
//   - content-dynamics file counts round to files·f; an event scaled to
//     zero files is dropped; hot-set sizes round the same way;
//   - structural knobs (phase grid, churn cadence, copies-per-file,
//     locality counts) are intensity-independent and pass through.
//
// Events whose scaled parameters no longer change anything (a wave moving
// nobody, a region degradation degrading nothing) are dropped from the
// copy, so the result always passes Validate for any f >= 0. The phase
// timeline itself — names, fractions, per-phase metric windows — is
// preserved exactly, which is what makes intensity sweeps comparable
// phase-by-phase across cells.
func (s *Spec) ScaleIntensity(f float64) *Spec {
	if f < 0 {
		f = 0
	}
	out := s.clone()
	for i := range out.Phases {
		p := &out.Phases[i]
		if p.Churn != nil {
			p.Churn.LeaveProb = clamp01(p.Churn.LeaveProb * f)
			p.Churn.JoinProb = clamp01(p.Churn.JoinProb * f)
		}
		events := p.Events[:0]
		for _, e := range p.Events {
			if scaled, keep := scaleEvent(e, f); keep {
				events = append(events, scaled)
			}
		}
		p.Events = events
	}
	return out
}

// scaleEvent applies the intensity factor to one event, reporting whether
// the scaled event still does anything.
func scaleEvent(e EventSpec, f float64) (EventSpec, bool) {
	switch e.Kind {
	case KindChurnWave, KindRejoin:
		e.Frac = clamp01(e.Frac * f)
		return e, e.Frac > 0
	case KindFlashCrowd:
		e.HotFiles = scaleCount(e.HotFiles, f)
		e.RateFactor = scaleExcess(e.RateFactor, f)
		// ZipfS is an absolute replacement exponent, not a multiplier: its
		// neutral value in the event schema is 0 ("keep the current
		// exponent"), so zero intensity must drop the override entirely —
		// scaling it to the multiplier-neutral 1 would swap a non-uniform
		// base popularity for uniform and contaminate the intensity-0
		// baseline cell. Positive intensities scale the excess over 1, the
		// flattest exponent a crowd event meaningfully sharpens from.
		if f == 0 {
			e.ZipfS = 0
		} else {
			e.ZipfS = scaleExcess(e.ZipfS, f)
		}
		// Parameters scaled to exactly-neutral multipliers still validate
		// (only the all-zero "changes nothing" shape is rejected), so the
		// event survives unless every field was zero to begin with.
		return e, e.HotFiles > 0 || e.RateFactor > 0 || e.ZipfS > 0
	case KindInjectFiles, KindRemoveFiles, KindMigrateProviders:
		e.Files = scaleCount(e.Files, f)
		return e, e.Files > 0
	case KindDegradeRegion:
		e.LatencyFactor = scaleExcess(e.LatencyFactor, f)
		e.LinkDropFrac = clamp01(e.LinkDropFrac * f)
		return e, e.LatencyFactor > 1 || e.LinkDropFrac > 0
	default:
		// calm / restore-region restore neutral state; intensity does not
		// apply.
		return e, true
	}
}

// scaleExcess scales a multiplier's excess over the neutral value 1, so
// intensity 0 lands on "no change". Zero means "keep" in the spec schema
// and passes through.
func scaleExcess(factor, f float64) float64 {
	if factor == 0 {
		return 0
	}
	return 1 + (factor-1)*f
}

// scaleCount rounds a set size to count·f, never below zero.
func scaleCount(n int, f float64) int {
	if n <= 0 {
		return n
	}
	scaled := int(float64(n)*f + 0.5)
	if scaled < 0 {
		return 0
	}
	return scaled
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// clone deep-copies the spec: phases, churn blocks and event slices are
// fresh allocations, so scaling one copy never mutates the registry's.
func (s *Spec) clone() *Spec {
	out := *s
	out.Phases = make([]PhaseSpec, len(s.Phases))
	for i, p := range s.Phases {
		cp := p
		if p.Churn != nil {
			churn := *p.Churn
			cp.Churn = &churn
		}
		cp.Events = append([]EventSpec(nil), p.Events...)
		out.Phases[i] = cp
	}
	return &out
}
