// Package scenario is the deterministic phased-dynamics engine: it
// describes an experiment run as a declarative timeline of named phases,
// each carrying typed dynamics events that are applied inside the
// simulation's event loop. The paper evaluates its protocols on one static
// workload; this package opens the workloads its motivation describes —
// peers "failing or leaving the network at any moment" (churn waves), files
// becoming suddenly popular (flash crowds), catalogues that change under
// the experiment's feet (content dynamics), and physical regions degrading
// (latency inflation, link loss).
//
// A Spec divides the measured query stream into phases by fraction; phase
// k's events fire exactly when the k-th boundary query is submitted, so the
// timeline is reproducible for a fixed seed and invariant to the worker
// count (every simulation owns its engine and RNG streams). Phase 0's
// dynamics are active from simulation start — they shape the warmup too,
// which is how the legacy whole-run churn flag lowers onto this engine
// bit-identically.
//
// The supported event kinds:
//
//	churn-wave        burst departure of a fraction of online peers
//	rejoin            burst return of a fraction of offline peers
//	flash-crowd       promote a hot file set to the popularity head,
//	                  spike the arrival rate, sharpen the Zipf exponent
//	calm              restore the original popularity ranking and rate
//	inject-files      add new catalogue files with initial providers
//	remove-files      withdraw all copies of popular files
//	migrate-providers rehome every copy of chosen files to random peers
//	degrade-region    inflate RTTs and drop links in the most populous
//	                  localities
//	restore-region    clear all regional latency inflation
//
// Phases may additionally run the periodic leave/rejoin churn process at a
// per-phase intensity. Scenarios are plain data: the built-in registry
// (Builtins) covers the common shapes, and ParseSpec loads custom ones from
// JSON so new scenarios need no code. Per-phase metrics come from the
// streaming metrics collector, which seals a full-metric PhaseWindow at
// each boundary (see Spec.Marks).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/p2prepro/locaware/internal/metrics"
	"github.com/p2prepro/locaware/internal/sim"
)

// Spec is a declarative scenario: a named timeline of phases over the
// measured query stream.
type Spec struct {
	// Name identifies the scenario (registry key, report label).
	Name string `json:"name"`
	// Description is a one-line summary for listings.
	Description string `json:"description,omitempty"`
	// ChurnIntervalS is the cadence, in simulated seconds, of the periodic
	// churn process for phases that enable churn (default 60, the legacy
	// whole-run churn interval).
	ChurnIntervalS float64 `json:"churn_interval_s,omitempty"`
	// Phases partition the measured queries in order.
	Phases []PhaseSpec `json:"phases"`

	// churnInterval, when set, overrides ChurnIntervalS exactly — the
	// legacy Options.Churn lowering carries the configured sim.Time
	// through without a float round trip.
	churnInterval sim.Time
}

// PhaseSpec is one contiguous span of the scenario timeline.
type PhaseSpec struct {
	// Name labels the phase in per-phase metric reports.
	Name string `json:"name"`
	// Fraction is the phase's share of the measured queries; fractions are
	// normalised over the spec, so 1/2/1 means 25%/50%/25%.
	Fraction float64 `json:"fraction"`
	// Churn, when non-nil, runs the periodic leave/rejoin process at this
	// intensity while the phase is active.
	Churn *ChurnSpec `json:"churn,omitempty"`
	// Events are applied once, in order, at phase entry (phase 0: at
	// simulation start, before warmup).
	Events []EventSpec `json:"events,omitempty"`
}

// ChurnSpec parameterises the periodic churn process of one phase. Degree
// targets for rewiring come from the run's churn defaults.
type ChurnSpec struct {
	// LeaveProb / JoinProb are the per-interval per-peer probabilities.
	LeaveProb float64 `json:"leave_prob"`
	JoinProb  float64 `json:"join_prob"`
	// MinOnlineFraction floors the online population (default 0.5).
	MinOnlineFraction float64 `json:"min_online_fraction,omitempty"`
}

// Event kinds accepted by EventSpec.Kind.
const (
	KindChurnWave        = "churn-wave"
	KindRejoin           = "rejoin"
	KindFlashCrowd       = "flash-crowd"
	KindCalm             = "calm"
	KindInjectFiles      = "inject-files"
	KindRemoveFiles      = "remove-files"
	KindMigrateProviders = "migrate-providers"
	KindDegradeRegion    = "degrade-region"
	KindRestoreRegion    = "restore-region"
)

// EventSpec is one typed dynamics event in JSON-friendly form: Kind selects
// the event type and the remaining fields parameterise it (unused fields
// are ignored by the other kinds).
type EventSpec struct {
	// Kind is one of the Kind… constants.
	Kind string `json:"kind"`

	// Frac is the population fraction for churn-wave (of online peers) and
	// rejoin (of offline peers).
	Frac float64 `json:"frac,omitempty"`

	// HotFiles is the size of a flash crowd's hot set (0 = keep ranking).
	HotFiles int `json:"hot_files,omitempty"`
	// RateFactor scales the query arrival rate (flash-crowd; 0 = keep).
	RateFactor float64 `json:"rate_factor,omitempty"`
	// ZipfS, when positive, replaces the popularity exponent
	// (flash-crowd).
	ZipfS float64 `json:"zipf_s,omitempty"`

	// Files is the number of files affected by the content-dynamics kinds.
	Files int `json:"files,omitempty"`
	// Copies is the initial provider count per injected file (default 1).
	Copies int `json:"copies,omitempty"`
	// Hot promotes injected files to the head of the popularity ranking (a
	// new-release flash) instead of the tail.
	Hot bool `json:"hot,omitempty"`

	// Localities is how many of the most populous localities degrade.
	Localities int `json:"localities,omitempty"`
	// LatencyFactor inflates every RTT touching a degraded locality.
	LatencyFactor float64 `json:"latency_factor,omitempty"`
	// LinkDropFrac is the fraction of links touching a degraded locality
	// that are severed.
	LinkDropFrac float64 `json:"link_drop_frac,omitempty"`
}

// validKinds gates EventSpec validation.
var validKinds = map[string]bool{
	KindChurnWave: true, KindRejoin: true,
	KindFlashCrowd: true, KindCalm: true,
	KindInjectFiles: true, KindRemoveFiles: true, KindMigrateProviders: true,
	KindDegradeRegion: true, KindRestoreRegion: true,
}

// Validate checks the spec's internal consistency: a name, at least one
// phase, positive fractions, and well-formed events.
func (s *Spec) Validate() error {
	if s == nil {
		return fmt.Errorf("scenario: nil spec")
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %q: needs at least one phase", s.Name)
	}
	if s.ChurnIntervalS < 0 {
		return fmt.Errorf("scenario %q: negative churn interval", s.Name)
	}
	for i, p := range s.Phases {
		if p.Name == "" {
			return fmt.Errorf("scenario %q: phase %d needs a name", s.Name, i)
		}
		if p.Fraction <= 0 {
			return fmt.Errorf("scenario %q: phase %q needs a positive fraction", s.Name, p.Name)
		}
		if c := p.Churn; c != nil {
			if c.LeaveProb < 0 || c.LeaveProb > 1 || c.JoinProb < 0 || c.JoinProb > 1 {
				return fmt.Errorf("scenario %q: phase %q churn probabilities must be in [0,1]", s.Name, p.Name)
			}
		}
		for j, e := range p.Events {
			if !validKinds[e.Kind] {
				return fmt.Errorf("scenario %q: phase %q event %d has unknown kind %q", s.Name, p.Name, j, e.Kind)
			}
			switch e.Kind {
			case KindChurnWave, KindRejoin:
				if e.Frac <= 0 || e.Frac > 1 {
					return fmt.Errorf("scenario %q: phase %q %s needs frac in (0,1]", s.Name, p.Name, e.Kind)
				}
			case KindFlashCrowd:
				if e.HotFiles < 0 || e.RateFactor < 0 || e.ZipfS < 0 {
					return fmt.Errorf("scenario %q: phase %q flash-crowd parameters must be non-negative", s.Name, p.Name)
				}
				if e.HotFiles == 0 && e.RateFactor == 0 && e.ZipfS == 0 {
					return fmt.Errorf("scenario %q: phase %q flash-crowd changes nothing", s.Name, p.Name)
				}
			case KindInjectFiles, KindRemoveFiles, KindMigrateProviders:
				if e.Files <= 0 {
					return fmt.Errorf("scenario %q: phase %q %s needs files > 0", s.Name, p.Name, e.Kind)
				}
				if e.Copies < 0 {
					return fmt.Errorf("scenario %q: phase %q %s needs copies >= 0", s.Name, p.Name, e.Kind)
				}
			case KindDegradeRegion:
				if e.Localities <= 0 {
					return fmt.Errorf("scenario %q: phase %q degrade-region needs localities > 0", s.Name, p.Name)
				}
				if e.LatencyFactor < 1 && e.LinkDropFrac <= 0 {
					return fmt.Errorf("scenario %q: phase %q degrade-region degrades nothing", s.Name, p.Name)
				}
				if e.LinkDropFrac < 0 || e.LinkDropFrac > 1 {
					return fmt.Errorf("scenario %q: phase %q link_drop_frac must be in [0,1]", s.Name, p.Name)
				}
			}
		}
	}
	return nil
}

// Marks resolves the phase grid onto a run of `measured` queries: mark k
// closes phase k at its cumulative query count. Every phase is guaranteed
// at least one query, the last mark always equals measured, and the marks
// double as the metrics collector's phase grid, so the dynamics timeline
// and the per-phase measurement windows can never drift apart.
func (s *Spec) Marks(measured int) ([]metrics.PhaseMark, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := len(s.Phases)
	if measured < n {
		return nil, fmt.Errorf("scenario %q: %d phases need at least %d measured queries, got %d",
			s.Name, n, n, measured)
	}
	total := 0.0
	for _, p := range s.Phases {
		total += p.Fraction
	}
	marks := make([]metrics.PhaseMark, n)
	cum := 0.0
	prev := 0
	for i, p := range s.Phases {
		cum += p.Fraction
		end := int(cum/total*float64(measured) + 0.5)
		if end <= prev {
			end = prev + 1 // at least one query per phase
		}
		if limit := measured - (n - 1 - i); end > limit {
			end = limit // leave room for the remaining phases
		}
		marks[i] = metrics.PhaseMark{Name: p.Name, End: end}
		prev = end
	}
	marks[n-1].End = measured
	return marks, nil
}

// ChurnInterval returns the periodic-churn cadence as simulator time.
func (s *Spec) ChurnInterval() sim.Time {
	if s.churnInterval > 0 {
		return s.churnInterval
	}
	if s.ChurnIntervalS > 0 {
		return sim.FromSeconds(s.ChurnIntervalS)
	}
	return 60 * sim.Second
}

// HasChurn reports whether any phase runs the periodic churn process.
func (s *Spec) HasChurn() bool {
	for _, p := range s.Phases {
		if p.Churn != nil {
			return true
		}
	}
	return false
}

// ParseSpec decodes and validates a JSON scenario. Unknown fields are
// rejected so a typo in a hand-written spec fails loudly instead of
// silently running the wrong experiment.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// JSON renders the spec as indented JSON — the exact format ParseSpec
// accepts, so every built-in doubles as a template for custom scenarios.
func (s *Spec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
