package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/p2prepro/locaware/internal/netmodel"
	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/sim"
	"github.com/p2prepro/locaware/internal/trace"
	"github.com/p2prepro/locaware/internal/workload"
)

// World is the assembled simulation a scenario acts on. All pointers are
// owned by one simulation; the runtime mutates them only from the engine
// goroutine, between events, so no protocol code ever observes a
// half-applied phase.
type World struct {
	Engine  *sim.Engine
	Graph   *overlay.Graph
	Model   *netmodel.Model
	Locator *netmodel.Locator
	Catalog *workload.Catalog
	Gen     *workload.Generator
	Net     *protocol.Network
	// ChurnDefaults supplies the degree targets (AvgDegree, MaxDegree)
	// used whenever churn or a wave rewires peers, and the default
	// online-population floor.
	ChurnDefaults overlay.ChurnConfig
}

// Runtime executes one Spec against one World. It is created by Attach at
// simulation build time and driven by the experiment loop: BeginMeasured
// fixes the phase boundaries once the measured query count is known, and
// OnSubmit advances the timeline as measured queries are submitted.
type Runtime struct {
	spec *Spec
	w    World

	// churnRng drives the periodic churn process; it is a dedicated
	// stream so scenario events never perturb it (and the steady-churn
	// lowering of the legacy churn flag stays bit-identical). eventRng
	// drives everything else.
	churnRng *rand.Rand
	eventRng *rand.Rand

	// starts[k] is the 0-based measured query index at which phase k
	// enters; resolved by BeginMeasured. current indexes the active phase.
	starts  []int
	current int

	// activeChurn is the churn intensity of the current phase (nil = the
	// periodic process idles this phase).
	activeChurn *overlay.ChurnConfig

	// originalTargets and originalZipfS snapshot the popularity ranking
	// and exponent at attach so a calm event can restore the pre-crowd
	// world.
	originalTargets []workload.FileID
	originalZipfS   float64
}

// Attach validates the spec, wires the periodic churn control into the
// engine (when any phase uses churn), and applies phase 0 — whose dynamics
// are active from simulation start, warmup included. It must be called at
// simulation build time, before any events run.
func Attach(spec *Spec, w World, churnRng, eventRng *rand.Rand) (*Runtime, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rt := &Runtime{
		spec:            spec,
		w:               w,
		churnRng:        churnRng,
		eventRng:        eventRng,
		originalTargets: w.Gen.Targets(),
		originalZipfS:   w.Gen.ZipfS(),
	}
	if spec.HasChurn() {
		// The tick is always scheduled (fixed event cadence) and the
		// per-phase config decides whether it consumes churn randomness —
		// so phases that pause churn cannot shift the event sequence
		// numbers of phases that resume it. One typed event reschedules
		// itself for the whole run: the same timing and sequence-number
		// consumption as the closure control it replaces, without the
		// per-run closure.
		w.Engine.PostEvent(spec.ChurnInterval(),
			&churnTickEvent{rt: rt, period: spec.ChurnInterval()})
	}
	rt.enterPhase(0)
	return rt, nil
}

// churnTickEvent is the periodic churn process as a typed simulator event:
// it applies one churn step when the active phase enables churn, then
// reschedules itself — the allocation-free analogue of the Engine.Every
// closure it replaced. It is undestined: churn rewires the whole overlay,
// so the tick belongs to the control shard.
type churnTickEvent struct {
	rt     *Runtime
	period sim.Time
}

func (ev *churnTickEvent) EventName() string { return "churn-tick" }

func (ev *churnTickEvent) Fire(e *sim.Engine) {
	rt := ev.rt
	if rt.activeChurn != nil {
		overlay.ChurnStep(rt.w.Graph, *rt.activeChurn, rt.churnRng)
	}
	e.PostEvent(ev.period, ev)
}

// Spec returns the scenario being executed.
func (rt *Runtime) Spec() *Spec { return rt.spec }

// BeginMeasured resolves the phase boundaries for a run of `measured`
// measured queries. The experiment loop calls it once, before the first
// submission.
func (rt *Runtime) BeginMeasured(measured int) error {
	marks, err := rt.spec.Marks(measured)
	if err != nil {
		return err
	}
	rt.starts = make([]int, len(marks))
	for i := 1; i < len(marks); i++ {
		rt.starts[i] = marks[i-1].End
	}
	// Phase 0 entered at Attach, before any tracer could be installed;
	// announce it now so a traced run shows the full timeline.
	rt.tracePhase(rt.current)
	return nil
}

// OnSubmit advances the phase timeline; the experiment loop calls it with
// the 0-based measured query index just before submitting that query, from
// inside the submission event, so phase entry happens at a deterministic
// point of the event order.
func (rt *Runtime) OnSubmit(measuredIdx int) {
	for rt.current+1 < len(rt.starts) && measuredIdx >= rt.starts[rt.current+1] {
		rt.enterPhase(rt.current + 1)
	}
}

// tracePhase emits a phase-entry event when the simulation is being traced.
// The tracer is read at event time, not attach time: tracing harnesses
// install it on the network after the simulation is built.
func (rt *Runtime) tracePhase(k int) {
	if rt.w.Net == nil || !rt.w.Net.TraceEnabled() {
		return
	}
	p := rt.spec.Phases[k]
	detail := fmt.Sprintf("scenario=%s phase=%s (%d/%d)", rt.spec.Name, p.Name, k+1, len(rt.spec.Phases))
	if len(p.Events) > 0 {
		kinds := make([]string, len(p.Events))
		for i, e := range p.Events {
			kinds[i] = e.Kind
		}
		detail += " events=" + fmt.Sprint(kinds)
	}
	// Phase boundaries fire from submission events on the control shard, so
	// the emit routes through shard 0's trace cell rather than writing to
	// the sink directly — direct writes would race a parallel epoch drain.
	rt.w.Net.EmitControl(trace.PhaseEnter, detail)
}

// enterPhase activates phase k: its churn intensity, then its entry events
// in spec order.
func (rt *Runtime) enterPhase(k int) {
	rt.current = k
	rt.tracePhase(k)
	p := rt.spec.Phases[k]
	if p.Churn != nil {
		cfg := rt.w.ChurnDefaults
		cfg.LeaveProb = p.Churn.LeaveProb
		cfg.JoinProb = p.Churn.JoinProb
		if p.Churn.MinOnlineFraction > 0 {
			cfg.MinOnlineFraction = p.Churn.MinOnlineFraction
		}
		rt.activeChurn = &cfg
	} else {
		rt.activeChurn = nil
	}
	for _, e := range p.Events {
		rt.apply(e)
	}
}

// apply executes one typed dynamics event against the world.
func (rt *Runtime) apply(e EventSpec) {
	switch e.Kind {
	case KindChurnWave:
		overlay.BurstLeave(rt.w.Graph, e.Frac, rt.w.ChurnDefaults.MinOnlineFraction,
			rt.w.ChurnDefaults.MaxDegree, rt.eventRng)
	case KindRejoin:
		overlay.BurstJoin(rt.w.Graph, e.Frac, rt.w.ChurnDefaults.AvgDegree,
			rt.w.ChurnDefaults.MaxDegree, rt.eventRng)
	case KindFlashCrowd:
		rt.flashCrowd(e)
	case KindCalm:
		rt.w.Gen.SetTargets(rt.originalTargets)
		rt.w.Gen.SetZipfS(rt.originalZipfS)
		rt.w.Gen.SetRateFactor(1)
	case KindInjectFiles:
		rt.injectFiles(e)
	case KindRemoveFiles:
		rt.removeFiles(e)
	case KindMigrateProviders:
		rt.migrateProviders(e)
	case KindDegradeRegion:
		rt.degradeRegion(e)
	case KindRestoreRegion:
		rt.w.Model.ClearLatencyFactors()
	default:
		// Validate rejects unknown kinds before Attach; reaching here is a
		// programming error.
		panic(fmt.Sprintf("scenario: unhandled event kind %q", e.Kind))
	}
}

// flashCrowd promotes a random hot set to the head of the popularity
// ranking and applies the rate/exponent spike — the crowd rushes files
// that were not necessarily popular before, which is what re-ranks the
// world instead of merely amplifying it.
func (rt *Runtime) flashCrowd(e EventSpec) {
	if e.HotFiles > 0 {
		targets := rt.w.Gen.Targets()
		hot := e.HotFiles
		if hot > len(targets) {
			hot = len(targets)
		}
		// Partial Fisher–Yates: draw the hot set into the head positions.
		for i := 0; i < hot; i++ {
			j := i + rt.eventRng.Intn(len(targets)-i)
			targets[i], targets[j] = targets[j], targets[i]
		}
		rt.w.Gen.SetTargets(targets)
	}
	if e.ZipfS > 0 {
		rt.w.Gen.SetZipfS(e.ZipfS)
	}
	if e.RateFactor > 0 {
		rt.w.Gen.SetRateFactor(e.RateFactor)
	}
}

// injectFiles adds new catalogue files, seeds each at `Copies` random
// online providers, and makes them queryable.
func (rt *Runtime) injectFiles(e EventSpec) {
	copies := e.Copies
	if copies <= 0 {
		copies = 1
	}
	ids := rt.w.Catalog.NewFiles(e.Files, rt.eventRng)
	for _, id := range ids {
		f := rt.w.Catalog.File(id)
		excluded := make(map[overlay.PeerID]bool, copies)
		for c := 0; c < copies; c++ {
			p := rt.w.Graph.RandomOnlinePeer(rt.eventRng, excluded)
			if p < 0 {
				break
			}
			excluded[p] = true
			rt.w.Net.Node(p).AddFile(f)
		}
	}
	if e.Hot {
		// A new release the crowd wants: head of the ranking.
		rt.w.Gen.SetTargets(append(ids, rt.w.Gen.Targets()...))
	} else {
		rt.w.Gen.AddTargets(ids...)
	}
}

// removeFiles withdraws every copy of `Files` randomly chosen queryable
// files. The files stay in the ranking: queries keep asking for content
// that no longer exists, and cached indexes keep advertising providers
// that no longer have it — the staleness signature of content churn.
func (rt *Runtime) removeFiles(e EventSpec) {
	for _, id := range rt.pickTargets(e.Files) {
		f := rt.w.Catalog.File(id)
		for _, n := range rt.w.Net.Nodes() {
			n.RemoveFile(f)
		}
	}
}

// migrateProviders rehomes the copies of `Files` randomly chosen files:
// each existing copy is withdrawn and an equal number of random online
// peers become providers instead — content drifting across the overlay.
func (rt *Runtime) migrateProviders(e EventSpec) {
	for _, id := range rt.pickTargets(e.Files) {
		f := rt.w.Catalog.File(id)
		moved := 0
		excluded := make(map[overlay.PeerID]bool)
		for _, n := range rt.w.Net.Nodes() {
			if n.RemoveFile(f) {
				moved++
				excluded[n.ID] = true
			}
		}
		for c := 0; c < moved; c++ {
			p := rt.w.Graph.RandomOnlinePeer(rt.eventRng, excluded)
			if p < 0 {
				break
			}
			excluded[p] = true
			rt.w.Net.Node(p).AddFile(f)
		}
	}
}

// pickTargets draws up to n distinct files from the current queryable
// ranking, uniformly.
func (rt *Runtime) pickTargets(n int) []workload.FileID {
	targets := rt.w.Gen.Targets()
	if n > len(targets) {
		n = len(targets)
	}
	for i := 0; i < n; i++ {
		j := i + rt.eventRng.Intn(len(targets)-i)
		targets[i], targets[j] = targets[j], targets[i]
	}
	return targets[:n]
}

// degradeRegion inflates the RTT of every path touching the most populous
// `Localities` locIds and severs a fraction of their overlay links —
// regional congestion plus partition pressure.
func (rt *Runtime) degradeRegion(e EventSpec) {
	region := rt.topLocalities(e.Localities)
	inRegion := func(p overlay.PeerID) bool {
		_, ok := region[rt.w.Locator.LocID(int(p))]
		return ok
	}
	if e.LatencyFactor > 1 {
		for i := 0; i < rt.w.Graph.N(); i++ {
			if inRegion(overlay.PeerID(i)) {
				rt.w.Model.SetLatencyFactor(i, e.LatencyFactor)
			}
		}
	}
	if e.LinkDropFrac > 0 {
		// Collect the candidate links first: RemoveLink mutates the
		// neighbour lists Neighbors aliases.
		type link struct{ a, b overlay.PeerID }
		var candidates []link
		for i := 0; i < rt.w.Graph.N(); i++ {
			a := overlay.PeerID(i)
			for _, b := range rt.w.Graph.Neighbors(a) {
				if b > a && (inRegion(a) || inRegion(b)) {
					candidates = append(candidates, link{a, b})
				}
			}
		}
		for _, l := range candidates {
			if rt.eventRng.Float64() < e.LinkDropFrac {
				rt.w.Graph.RemoveLink(l.a, l.b)
			}
		}
	}
}

// topLocalities returns the `n` most populous locIds (ties to the lower
// id, for determinism).
func (rt *Runtime) topLocalities(n int) map[netmodel.LocID]struct{} {
	census := rt.w.Locator.Census()
	ids := make([]netmodel.LocID, 0, len(census))
	for id := range census {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if census[ids[i]] != census[ids[j]] {
			return census[ids[i]] > census[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if n > len(ids) {
		n = len(ids)
	}
	out := make(map[netmodel.LocID]struct{}, n)
	for _, id := range ids[:n] {
		out[id] = struct{}{}
	}
	return out
}
