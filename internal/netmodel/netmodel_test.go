package netmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testModel(t *testing.T, n int, seed int64) (*Model, *rand.Rand) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pts := Place(n, DefaultPlacement(), r)
	return NewModel(pts, 1000, DefaultLatency(), seed), r
}

func TestPointDist(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if d := a.Dist(b); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if a.Dist(a) != 0 {
		t.Fatal("self-distance not zero")
	}
	if s := b.String(); s != "(3.00,4.00)" {
		t.Fatalf("String = %q", s)
	}
}

func TestPlaceUniformBounds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := Place(500, PlacementConfig{Side: 100}, r)
	if len(pts) != 500 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
			t.Fatalf("point %v outside universe", p)
		}
	}
}

func TestPlaceClusteredBounds(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	cfg := PlacementConfig{Side: 1000, Clusters: 10, ClusterSpread: 0.05}
	pts := Place(1000, cfg, r)
	for _, p := range pts {
		if p.X < 0 || p.X > 1000 || p.Y < 0 || p.Y > 1000 {
			t.Fatalf("point %v outside universe", p)
		}
	}
}

func TestPlaceDefaultsOnZeroSide(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := Place(10, PlacementConfig{}, r)
	for _, p := range pts {
		if p.X > 1000 || p.Y > 1000 {
			t.Fatalf("default side not applied: %v", p)
		}
	}
}

func TestRTTProperties(t *testing.T) {
	m, _ := testModel(t, 200, 7)
	for i := 0; i < 200; i++ {
		if m.RTT(i, i) != 0 {
			t.Fatalf("self RTT non-zero for %d", i)
		}
	}
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		a, b := r.Intn(200), r.Intn(200)
		if a == b {
			continue
		}
		ab, ba := m.RTT(a, b), m.RTT(b, a)
		if ab != ba {
			t.Fatalf("RTT asymmetric: RTT(%d,%d)=%v RTT(%d,%d)=%v", a, b, ab, b, a, ba)
		}
		if ab < 10 {
			t.Fatalf("RTT(%d,%d)=%v below paper minimum 10ms", a, b, ab)
		}
		// Jitter can exceed MaxRTT slightly; allow 3 sigma.
		if ab > 500*1.4 {
			t.Fatalf("RTT(%d,%d)=%v implausibly above max", a, b, ab)
		}
		if ow := m.OneWay(a, b); ow != ab/2 {
			t.Fatalf("OneWay != RTT/2")
		}
	}
}

func TestRTTRangeNoJitter(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := Place(300, PlacementConfig{Side: 1000}, r)
	m := NewModel(pts, 1000, LatencyConfig{MinRTT: 10, MaxRTT: 500}, 5)
	for trial := 0; trial < 3000; trial++ {
		a, b := rand.Intn(300), rand.Intn(300)
		if a == b {
			continue
		}
		rtt := m.RTT(a, b)
		if rtt < 10 || rtt > 500 {
			t.Fatalf("RTT %v outside [10,500] without jitter", rtt)
		}
	}
}

func TestRTTDeterministic(t *testing.T) {
	m1, _ := testModel(t, 100, 13)
	m2, _ := testModel(t, 100, 13)
	for a := 0; a < 100; a++ {
		for b := a + 1; b < 100; b += 7 {
			if m1.RTT(a, b) != m2.RTT(a, b) {
				t.Fatalf("same-seed models disagree on RTT(%d,%d)", a, b)
			}
		}
	}
}

func TestRTTMonotoneInDistance(t *testing.T) {
	// Without jitter, RTT must strictly increase with plane distance.
	pts := []Point{{0, 0}, {100, 0}, {400, 0}, {900, 0}}
	m := NewModel(pts, 1000, LatencyConfig{MinRTT: 10, MaxRTT: 500}, 0)
	d1, d2, d3 := m.RTT(0, 1), m.RTT(0, 2), m.RTT(0, 3)
	if !(d1 < d2 && d2 < d3) {
		t.Fatalf("RTT not monotone: %v %v %v", d1, d2, d3)
	}
}

func TestPositionRange(t *testing.T) {
	m, _ := testModel(t, 10, 1)
	if _, err := m.Position(5); err != nil {
		t.Fatalf("valid position errored: %v", err)
	}
	if _, err := m.Position(-1); err != ErrPeerRange {
		t.Fatal("expected ErrPeerRange for -1")
	}
	if _, err := m.Position(10); err != ErrPeerRange {
		t.Fatal("expected ErrPeerRange for 10")
	}
	if m.N() != 10 {
		t.Fatalf("N = %d", m.N())
	}
}

func TestNewModelFallbacks(t *testing.T) {
	pts := []Point{{0, 0}, {10, 10}}
	m := NewModel(pts, -1, LatencyConfig{MinRTT: 5, MaxRTT: 5}, 0)
	// Invalid latency config falls back to defaults.
	if rtt := m.RTT(0, 1); rtt < 10 {
		t.Fatalf("fallback config not applied, RTT=%v", rtt)
	}
}

func TestLandmarkSpread(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	lm := NewLandmarks(4, 1000, r)
	if lm.K() != 4 {
		t.Fatalf("K = %d", lm.K())
	}
	pts := lm.Points()
	if len(pts) != 4 {
		t.Fatalf("Points len = %d", len(pts))
	}
	// Farthest-point placement should keep landmarks well apart.
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) < 100 {
				t.Fatalf("landmarks %d,%d too close: %v", i, j, pts[i].Dist(pts[j]))
			}
		}
	}
}

func TestLandmarksDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	lm := NewLandmarks(0, 0, r)
	if lm.K() != 1 {
		t.Fatalf("K = %d, want clamped 1", lm.K())
	}
}

func TestOrderingIsPermutationSortedByRTT(t *testing.T) {
	m, r := testModel(t, 50, 31)
	lm := NewLandmarks(4, 1000, r)
	for a := 0; a < 50; a++ {
		ord := lm.Ordering(m, a)
		seen := make(map[int]bool)
		for _, v := range ord {
			if v < 0 || v >= 4 || seen[v] {
				t.Fatalf("ordering %v is not a permutation", ord)
			}
			seen[v] = true
		}
		pts := lm.Points()
		for i := 1; i < len(ord); i++ {
			if m.RTTToPoint(a, pts[ord[i-1]]) > m.RTTToPoint(a, pts[ord[i]]) {
				t.Fatalf("ordering %v not sorted by RTT for peer %d", ord, a)
			}
		}
	}
}

func TestNumLocIDs(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 6, 4: 24, 5: 120}
	for k, want := range cases {
		if got := NumLocIDs(k); got != want {
			t.Errorf("NumLocIDs(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for k := 1; k <= 5; k++ {
		seen := make(map[LocID]bool)
		// Enumerate all permutations via decode and re-encode.
		for id := 0; id < NumLocIDs(k); id++ {
			perm := DecodeLocID(LocID(id), k)
			got := EncodeOrdering(perm)
			if got != LocID(id) {
				t.Fatalf("k=%d round trip %d -> %v -> %d", k, id, perm, got)
			}
			if seen[got] {
				t.Fatalf("duplicate locId %d at k=%d", got, k)
			}
			seen[got] = true
		}
	}
}

func TestEncodeOrderingKnownValues(t *testing.T) {
	// Lexicographic rank of permutations of {0,1,2}.
	cases := []struct {
		perm []int
		want LocID
	}{
		{[]int{0, 1, 2}, 0},
		{[]int{0, 2, 1}, 1},
		{[]int{1, 0, 2}, 2},
		{[]int{1, 2, 0}, 3},
		{[]int{2, 0, 1}, 4},
		{[]int{2, 1, 0}, 5},
	}
	for _, c := range cases {
		if got := EncodeOrdering(c.perm); got != c.want {
			t.Errorf("EncodeOrdering(%v) = %d, want %d", c.perm, got, c.want)
		}
	}
}

func TestEncodeOrderingPanicsOnBadInput(t *testing.T) {
	for _, bad := range [][]int{{0, 0}, {1, 2}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EncodeOrdering(%v) did not panic", bad)
				}
			}()
			EncodeOrdering(bad)
		}()
	}
}

func TestDecodePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DecodeLocID out of range did not panic")
		}
	}()
	DecodeLocID(24, 4)
}

func TestLocatorPaperScale(t *testing.T) {
	// Paper setup: 1000 peers, 4 landmarks -> 24 locIds. Close peers must
	// share locIds; the mean occupied-locality population should comfortably
	// exceed the 5-landmark case.
	r := rand.New(rand.NewSource(99))
	pts := Place(1000, DefaultPlacement(), r)
	m := NewModel(pts, 1000, DefaultLatency(), 99)
	lm4 := NewLandmarks(4, 1000, r)
	loc4 := NewLocator(m, lm4)
	if loc4.K() != 4 {
		t.Fatalf("K = %d", loc4.K())
	}
	for a := 0; a < 1000; a++ {
		if id := loc4.LocID(a); id < 0 || int(id) >= 24 {
			t.Fatalf("locId %d out of range", id)
		}
	}
	census := loc4.Census()
	total := 0
	for _, c := range census {
		total += c
	}
	if total != 1000 {
		t.Fatalf("census total = %d", total)
	}
	mean4 := loc4.MeanPeersPerOccupiedLocID()

	lm5 := NewLandmarks(5, 1000, r)
	loc5 := NewLocator(m, lm5)
	mean5 := loc5.MeanPeersPerOccupiedLocID()
	if mean5 >= mean4 {
		t.Fatalf("expected sparser localities with 5 landmarks: mean4=%v mean5=%v", mean4, mean5)
	}
}

func TestNearbyPeersShareLocID(t *testing.T) {
	// Two coincident peers must always share a locId.
	pts := []Point{{100, 100}, {100, 100}, {900, 900}}
	m := NewModel(pts, 1000, LatencyConfig{MinRTT: 10, MaxRTT: 500}, 0)
	lm := FixedLandmarks([]Point{{0, 0}, {1000, 0}, {0, 1000}, {1000, 1000}})
	loc := NewLocator(m, lm)
	if loc.LocID(0) != loc.LocID(1) {
		t.Fatal("coincident peers got different locIds")
	}
	if loc.LocID(0) == loc.LocID(2) {
		t.Fatal("opposite-corner peers share a locId under symmetric landmarks")
	}
}

func TestLocIDQuickProperty(t *testing.T) {
	// Property: for any peer position, EncodeOrdering(Ordering(peer)) is
	// stable and within range.
	lmPts := []Point{{0, 0}, {1000, 0}, {0, 1000}, {500, 500}}
	lm := FixedLandmarks(lmPts)
	prop := func(x, y uint16) bool {
		px := float64(x%1000) + 0.5 // avoid exact ties on the grid
		py := float64(y%1000) + 0.25
		m := NewModel([]Point{{px, py}}, 1000, LatencyConfig{MinRTT: 10, MaxRTT: 500}, 0)
		ord := lm.Ordering(m, 0)
		id := EncodeOrdering(ord)
		if id < 0 || int(id) >= 24 {
			return false
		}
		ord2 := lm.Ordering(m, 0)
		return EncodeOrdering(ord2) == id
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleLikeGeometry(t *testing.T) {
	// The geometric baseline (no jitter) satisfies a relaxed triangle
	// inequality: RTT(a,c) <= RTT(a,b)+RTT(b,c). (The +MinRTT offsets only
	// help the inequality.)
	r := rand.New(rand.NewSource(17))
	pts := Place(60, PlacementConfig{Side: 1000}, r)
	m := NewModel(pts, 1000, LatencyConfig{MinRTT: 10, MaxRTT: 500}, 0)
	for trial := 0; trial < 2000; trial++ {
		a, b, c := r.Intn(60), r.Intn(60), r.Intn(60)
		if a == b || b == c || a == c {
			continue
		}
		if m.RTT(a, c) > m.RTT(a, b)+m.RTT(b, c)+1e-9 {
			t.Fatalf("triangle violated for %d,%d,%d", a, b, c)
		}
	}
}

func TestMeanPeersEmptyLocator(t *testing.T) {
	m := NewModel(nil, 1000, DefaultLatency(), 0)
	lm := FixedLandmarks([]Point{{0, 0}})
	loc := NewLocator(m, lm)
	if got := loc.MeanPeersPerOccupiedLocID(); got != 0 {
		t.Fatalf("empty locator mean = %v", got)
	}
}

func TestClampHelper(t *testing.T) {
	if clamp(-5, 0, 10) != 0 || clamp(15, 0, 10) != 10 || clamp(5, 0, 10) != 5 {
		t.Fatal("clamp misbehaves")
	}
	if math.IsNaN(clamp(math.NaN(), 0, 10)) == false {
		t.Skip("NaN propagates; acceptable")
	}
}

func TestLatencyFactorsDegradeAndRestore(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := Place(20, DefaultPlacement(), r)
	m := NewModel(pts, DefaultPlacement().Side, DefaultLatency(), 3)

	healthy01 := m.RTT(0, 1)
	healthy23 := m.RTT(2, 3)
	m.SetLatencyFactor(0, 3)
	if got := m.RTT(0, 1); got != 3*healthy01 {
		t.Fatalf("degraded RTT(0,1) = %v, want %v", got, 3*healthy01)
	}
	if got := m.RTT(1, 0); got != 3*healthy01 {
		t.Fatalf("degradation must stay symmetric: %v", got)
	}
	if got := m.RTT(2, 3); got != healthy23 {
		t.Fatalf("unrelated pair inflated: %v vs %v", got, healthy23)
	}
	if m.LatencyFactor(0) != 3 || m.LatencyFactor(1) != 1 {
		t.Fatalf("factors = %v, %v", m.LatencyFactor(0), m.LatencyFactor(1))
	}
	// A path's factor is the max of its endpoints', and factors below 1
	// clamp to 1 (no acceleration).
	m.SetLatencyFactor(1, 0.25)
	if got := m.RTT(0, 1); got != 3*healthy01 {
		t.Fatalf("max-endpoint rule broken: %v", got)
	}
	if m.LatencyFactor(1) != 1 {
		t.Fatalf("sub-1 factor not clamped: %v", m.LatencyFactor(1))
	}
	if m.RTT(0, 0) != 0 {
		t.Fatal("self RTT must stay zero")
	}
	m.ClearLatencyFactors()
	if got := m.RTT(0, 1); got != healthy01 {
		t.Fatalf("restore drifted: %v vs healthy %v", got, healthy01)
	}
}

// TestMinOneWay locks the lower bound the sharded runner derives its epoch
// lookahead from: half the configured MinRTT, never exceeded downward by
// any sampled one-way latency between distinct peers — with jitter (which
// clamps at MinRTT), without it, and under regional degradation (which only
// inflates).
func TestMinOneWay(t *testing.T) {
	m, _ := testModel(t, 150, 11)
	if got := m.MinOneWay(); got != DefaultLatency().MinRTT/2 {
		t.Fatalf("MinOneWay = %v, want %v", got, DefaultLatency().MinRTT/2)
	}
	check := func(label string) {
		bound := m.MinOneWay()
		for a := 0; a < 150; a++ {
			for b := a + 1; b < 150; b++ {
				if ow := m.OneWay(a, b); ow < bound {
					t.Fatalf("%s: OneWay(%d,%d)=%v below MinOneWay %v", label, a, b, ow, bound)
				}
			}
		}
	}
	check("jittered")
	m.SetLatencyFactor(3, 4.5)
	check("degraded")
	m.ClearLatencyFactors()

	r := rand.New(rand.NewSource(12))
	pts := Place(100, PlacementConfig{Side: 1000}, r)
	nj := NewModel(pts, 1000, LatencyConfig{MinRTT: 24, MaxRTT: 300}, 12)
	if got := nj.MinOneWay(); got != 12 {
		t.Fatalf("MinOneWay = %v, want 12", got)
	}
	for a := 0; a < 100; a++ {
		for b := a + 1; b < 100; b++ {
			if ow := nj.OneWay(a, b); ow < nj.MinOneWay() {
				t.Fatalf("no-jitter: OneWay(%d,%d)=%v below MinOneWay %v", a, b, ow, nj.MinOneWay())
			}
		}
	}
}
