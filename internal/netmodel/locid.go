package netmodel

import "fmt"

// LocID identifies a physical locality: each distinct landmark-RTT ordering
// maps to one LocID in [0, K!). With the paper's 4 landmarks there are 24
// locIds; the paper argues 5 landmarks (120 locIds) scatters 1000 peers too
// thinly (≈8 peers per locId) to find same-locality providers.
type LocID int

// NumLocIDs returns k! — the number of possible locIds for k landmarks.
func NumLocIDs(k int) int {
	n := 1
	for i := 2; i <= k; i++ {
		n *= i
	}
	return n
}

// EncodeOrdering converts a landmark ordering (a permutation of 0..k-1) into
// its Lehmer-code rank, a canonical LocID. It panics if perm is not a
// permutation, since that indicates a programming error upstream.
func EncodeOrdering(perm []int) LocID {
	k := len(perm)
	seen := make([]bool, k)
	rank := 0
	fact := NumLocIDs(k)
	for i, v := range perm {
		if v < 0 || v >= k || seen[v] {
			panic(fmt.Sprintf("netmodel: invalid permutation %v", perm))
		}
		seen[v] = true
		fact /= k - i
		smaller := 0
		for u := 0; u < v; u++ {
			if !seen[u] {
				smaller++
			}
		}
		rank += smaller * fact
	}
	return LocID(rank)
}

// DecodeLocID inverts EncodeOrdering, returning the landmark ordering for a
// LocID with k landmarks. It panics on an out-of-range id.
func DecodeLocID(id LocID, k int) []int {
	if id < 0 || int(id) >= NumLocIDs(k) {
		panic(fmt.Sprintf("netmodel: locId %d out of range for %d landmarks", id, k))
	}
	avail := make([]int, k)
	for i := range avail {
		avail[i] = i
	}
	perm := make([]int, 0, k)
	rem := int(id)
	fact := NumLocIDs(k)
	for i := 0; i < k; i++ {
		fact /= k - i
		idx := rem / fact
		rem %= fact
		perm = append(perm, avail[idx])
		avail = append(avail[:idx], avail[idx+1:]...)
	}
	return perm
}

// Locator assigns locIds to peers: it bundles the model and landmark set and
// caches each peer's computed locId (peers compute it once at arrival,
// §4.1.1).
type Locator struct {
	model *Model
	lm    *Landmarks
	ids   []LocID
}

// NewLocator computes locIds for every peer in m against landmark set lm.
func NewLocator(m *Model, lm *Landmarks) *Locator {
	ids := make([]LocID, m.N())
	for i := range ids {
		ids[i] = EncodeOrdering(lm.Ordering(m, i))
	}
	return &Locator{model: m, lm: lm, ids: ids}
}

// LocID returns peer a's locality identifier.
func (l *Locator) LocID(a int) LocID { return l.ids[a] }

// K returns the number of landmarks behind this locator.
func (l *Locator) K() int { return l.lm.K() }

// Census returns, for each locId value in [0, K!), how many peers map to it.
func (l *Locator) Census() map[LocID]int {
	c := make(map[LocID]int)
	for _, id := range l.ids {
		c[id]++
	}
	return c
}

// MeanPeersPerOccupiedLocID returns the average population of non-empty
// localities — the statistic the paper uses to argue for 4 landmarks.
func (l *Locator) MeanPeersPerOccupiedLocID() float64 {
	c := l.Census()
	if len(c) == 0 {
		return 0
	}
	return float64(len(l.ids)) / float64(len(c))
}
