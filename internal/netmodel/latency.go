package netmodel

import (
	"errors"
	"math"
	"math/rand"
)

// LatencyConfig maps plane distances to round-trip times.
type LatencyConfig struct {
	// MinRTT and MaxRTT bound the pairwise RTT in milliseconds. The paper's
	// BRITE-inspired model assigns latencies between 10 and 500 ms.
	MinRTT, MaxRTT float64
	// Jitter is the coefficient of a multiplicative log-normal noise applied
	// per pair (deterministically, from the pair's identity), modelling
	// routing inflation over the geometric baseline. 0 disables it.
	Jitter float64
}

// DefaultLatency returns the paper's 10–500 ms range with mild jitter.
func DefaultLatency() LatencyConfig {
	return LatencyConfig{MinRTT: 10, MaxRTT: 500, Jitter: 0.1}
}

// Model is an immutable physical-network instance: peer coordinates plus the
// distance→RTT mapping. All methods are safe for concurrent readers.
type Model struct {
	cfg    LatencyConfig
	pts    []Point
	diag   float64 // plane diagonal used for normalisation
	jseed  int64
	maxDim float64
}

// ErrPeerRange reports an out-of-range peer id.
var ErrPeerRange = errors.New("netmodel: peer id out of range")

// NewModel builds a model over the given peer positions. side is the plane
// side length used for distance normalisation (pass the PlacementConfig.Side
// that produced pts). jitterSeed fixes the per-pair jitter stream.
func NewModel(pts []Point, side float64, cfg LatencyConfig, jitterSeed int64) *Model {
	if side <= 0 {
		side = 1000
	}
	if cfg.MaxRTT <= cfg.MinRTT {
		cfg = DefaultLatency()
	}
	return &Model{
		cfg:    cfg,
		pts:    pts,
		diag:   side * math.Sqrt2,
		jseed:  jitterSeed,
		maxDim: side,
	}
}

// N returns the number of peers in the model.
func (m *Model) N() int { return len(m.pts) }

// Position returns the coordinates of peer i.
func (m *Model) Position(i int) (Point, error) {
	if i < 0 || i >= len(m.pts) {
		return Point{}, ErrPeerRange
	}
	return m.pts[i], nil
}

// RTT returns the round-trip time in milliseconds between peers a and b.
// It is symmetric, zero on the diagonal, and always within
// [MinRTT, MaxRTT*(1+Jitter…)] for distinct peers.
func (m *Model) RTT(a, b int) float64 {
	if a == b {
		return 0
	}
	base := m.rttTo(m.pts[a], m.pts[b])
	if m.cfg.Jitter <= 0 {
		return base
	}
	// Deterministic symmetric jitter: seed from unordered pair identity.
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	r := rand.New(rand.NewSource(m.jseed ^ (int64(lo)<<20 | int64(hi))))
	factor := 1 + m.cfg.Jitter*r.NormFloat64()
	if factor < 0.5 {
		factor = 0.5
	}
	rtt := base * factor
	if rtt < m.cfg.MinRTT {
		rtt = m.cfg.MinRTT
	}
	return rtt
}

// RTTToPoint returns the RTT in milliseconds between peer a and an arbitrary
// point (used for landmark probes). No jitter is applied: landmark probes in
// the paper are averaged RTT estimates, and locIds depend only on ordering.
func (m *Model) RTTToPoint(a int, p Point) float64 {
	return m.rttTo(m.pts[a], p)
}

func (m *Model) rttTo(p, q Point) float64 {
	d := p.Dist(q) / m.diag // 0..1
	return m.cfg.MinRTT + d*(m.cfg.MaxRTT-m.cfg.MinRTT)
}

// OneWay returns the one-way link latency (half the RTT) in milliseconds;
// this is the delay the simulator applies to a single message hop.
func (m *Model) OneWay(a, b int) float64 { return m.RTT(a, b) / 2 }
