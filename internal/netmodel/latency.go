package netmodel

import (
	"errors"
	"math"
	"math/rand"
	"sync"
)

// LatencyConfig maps plane distances to round-trip times.
type LatencyConfig struct {
	// MinRTT and MaxRTT bound the pairwise RTT in milliseconds. The paper's
	// BRITE-inspired model assigns latencies between 10 and 500 ms.
	MinRTT, MaxRTT float64
	// Jitter is the coefficient of a multiplicative log-normal noise applied
	// per pair (deterministically, from the pair's identity), modelling
	// routing inflation over the geometric baseline. 0 disables it.
	Jitter float64
}

// DefaultLatency returns the paper's 10–500 ms range with mild jitter.
func DefaultLatency() LatencyConfig {
	return LatencyConfig{MinRTT: 10, MaxRTT: 500, Jitter: 0.1}
}

// Model is a physical-network instance: peer coordinates plus the
// distance→RTT mapping. The geometry is immutable and all read methods are
// safe for concurrent readers; the optional per-peer latency factors
// (regional-degradation dynamics) are written only between events on the
// owning simulation's engine goroutine.
type Model struct {
	cfg    LatencyConfig
	pts    []Point
	diag   float64 // plane diagonal used for normalisation
	jseed  int64
	maxDim float64

	// factors, when non-nil, holds a per-peer RTT inflation multiplier
	// (>= 1); a path's factor is the max of its endpoints'. nil means no
	// degradation anywhere and costs the hot path one pointer check.
	factors []float64

	// jmu/jcache memoise jittered pair RTTs: deriving the per-pair jitter
	// stream costs a rand.Rand allocation, which on the simulator's hot
	// path (one RTT per message hop) dominated the per-event allocation
	// budget. The cache holds only pairs actually used — overlay links and
	// download pairs — and is capped at maxJitterCacheEntries; once full,
	// further pairs are recomputed per call (identical values, no growth).
	// The mutex keeps the documented concurrent-reader safety; it is
	// uncontended in practice because each simulation owns its Model.
	jmu    sync.Mutex
	jcache map[uint64]float64
}

// maxJitterCacheEntries bounds the jitter memo (~16 bytes/entry plus map
// overhead, ≈100 MB at the cap) so a very long churn-heavy run cannot grow
// it without limit.
const maxJitterCacheEntries = 1 << 22

// ErrPeerRange reports an out-of-range peer id.
var ErrPeerRange = errors.New("netmodel: peer id out of range")

// NewModel builds a model over the given peer positions. side is the plane
// side length used for distance normalisation (pass the PlacementConfig.Side
// that produced pts). jitterSeed fixes the per-pair jitter stream.
func NewModel(pts []Point, side float64, cfg LatencyConfig, jitterSeed int64) *Model {
	if side <= 0 {
		side = 1000
	}
	if cfg.MaxRTT <= cfg.MinRTT {
		cfg = DefaultLatency()
	}
	return &Model{
		cfg:    cfg,
		pts:    pts,
		diag:   side * math.Sqrt2,
		jseed:  jitterSeed,
		maxDim: side,
	}
}

// N returns the number of peers in the model.
func (m *Model) N() int { return len(m.pts) }

// Position returns the coordinates of peer i.
func (m *Model) Position(i int) (Point, error) {
	if i < 0 || i >= len(m.pts) {
		return Point{}, ErrPeerRange
	}
	return m.pts[i], nil
}

// RTT returns the round-trip time in milliseconds between peers a and b.
// It is symmetric, zero on the diagonal, and always within
// [MinRTT, MaxRTT*(1+Jitter…)] for distinct peers.
func (m *Model) RTT(a, b int) float64 {
	if a == b {
		return 0
	}
	base := m.rttTo(m.pts[a], m.pts[b])
	if m.cfg.Jitter <= 0 {
		return m.degrade(a, b, base)
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	key := uint64(lo)<<32 | uint64(uint32(hi))
	m.jmu.Lock()
	if rtt, ok := m.jcache[key]; ok {
		m.jmu.Unlock()
		return m.degrade(a, b, rtt)
	}
	m.jmu.Unlock()
	// Deterministic symmetric jitter: seed from unordered pair identity.
	r := rand.New(rand.NewSource(m.jseed ^ (int64(lo)<<20 | int64(hi))))
	factor := 1 + m.cfg.Jitter*r.NormFloat64()
	if factor < 0.5 {
		factor = 0.5
	}
	rtt := base * factor
	if rtt < m.cfg.MinRTT {
		rtt = m.cfg.MinRTT
	}
	m.jmu.Lock()
	if m.jcache == nil {
		m.jcache = make(map[uint64]float64, 256)
	}
	if len(m.jcache) < maxJitterCacheEntries {
		m.jcache[key] = rtt
	}
	m.jmu.Unlock()
	return m.degrade(a, b, rtt)
}

// degrade applies the regional-degradation factor to a path's RTT: the
// jitter cache stores healthy values, so clearing the factors restores the
// exact pre-degradation latencies.
func (m *Model) degrade(a, b int, rtt float64) float64 {
	if m.factors == nil {
		return rtt
	}
	f := m.factors[a]
	if m.factors[b] > f {
		f = m.factors[b]
	}
	if f > 1 {
		rtt *= f
	}
	return rtt
}

// SetLatencyFactor inflates every path touching peer i by factor (regional
// degradation). Factors below 1 are clamped to 1: the model degrades
// regions, it never accelerates them. Unlike the read methods, it must not
// race concurrent RTT calls; scenario dynamics invoke it between simulator
// events on the engine goroutine.
func (m *Model) SetLatencyFactor(i int, factor float64) {
	if i < 0 || i >= len(m.pts) {
		return
	}
	if factor < 1 {
		factor = 1
	}
	if m.factors == nil {
		m.factors = make([]float64, len(m.pts))
		for j := range m.factors {
			m.factors[j] = 1
		}
	}
	m.factors[i] = factor
}

// LatencyFactor returns peer i's current RTT inflation (1 when healthy).
func (m *Model) LatencyFactor(i int) float64 {
	if m.factors == nil || i < 0 || i >= len(m.factors) {
		return 1
	}
	return m.factors[i]
}

// ClearLatencyFactors restores every path to its healthy latency.
func (m *Model) ClearLatencyFactors() { m.factors = nil }

// RTTToPoint returns the RTT in milliseconds between peer a and an arbitrary
// point (used for landmark probes). No jitter is applied: landmark probes in
// the paper are averaged RTT estimates, and locIds depend only on ordering.
func (m *Model) RTTToPoint(a int, p Point) float64 {
	return m.rttTo(m.pts[a], p)
}

func (m *Model) rttTo(p, q Point) float64 {
	d := p.Dist(q) / m.diag // 0..1
	return m.cfg.MinRTT + d*(m.cfg.MaxRTT-m.cfg.MinRTT)
}

// OneWay returns the one-way link latency (half the RTT) in milliseconds;
// this is the delay the simulator applies to a single message hop.
func (m *Model) OneWay(a, b int) float64 { return m.RTT(a, b) / 2 }

// MinOneWay returns a lower bound, in milliseconds, on the one-way latency
// between any two distinct peers: half the configured MinRTT. The bound
// holds across every code path — the geometric baseline starts at MinRTT,
// the jitter path clamps its result to MinRTT, and regional degradation
// only inflates — so it is a safe epoch lookahead for the sharded runner:
// no cross-peer (hence no cross-shard) message can travel faster.
func (m *Model) MinOneWay() float64 { return m.cfg.MinRTT / 2 }
