package netmodel

import (
	"math/rand"
	"sort"
)

// Landmarks is a set of well-known reference machines spread across the
// latency plane (§4.1.1). A peer orders the set by increasing RTT; the
// resulting permutation identifies its physical locality.
type Landmarks struct {
	pts []Point
}

// NewLandmarks places k landmarks to maximise spread: the first is uniform,
// each subsequent landmark is the best of a candidate batch by
// farthest-point distance. With the paper's k=4 this yields 24 possible
// orderings that partition the plane into contiguous localities.
func NewLandmarks(k int, side float64, r *rand.Rand) *Landmarks {
	if k < 1 {
		k = 1
	}
	if side <= 0 {
		side = 1000
	}
	pts := make([]Point, 0, k)
	pts = append(pts, Point{X: r.Float64() * side, Y: r.Float64() * side})
	const candidates = 64
	for len(pts) < k {
		var best Point
		bestScore := -1.0
		for c := 0; c < candidates; c++ {
			cand := Point{X: r.Float64() * side, Y: r.Float64() * side}
			score := minDist(cand, pts)
			if score > bestScore {
				bestScore, best = score, cand
			}
		}
		pts = append(pts, best)
	}
	return &Landmarks{pts: pts}
}

// FixedLandmarks builds a landmark set from explicit coordinates; used by
// tests and by experiments that need reproducible landmark geometry.
func FixedLandmarks(pts []Point) *Landmarks {
	cp := make([]Point, len(pts))
	copy(cp, pts)
	return &Landmarks{pts: cp}
}

// K returns the number of landmarks.
func (l *Landmarks) K() int { return len(l.pts) }

// Points returns a copy of the landmark coordinates.
func (l *Landmarks) Points() []Point {
	cp := make([]Point, len(l.pts))
	copy(cp, l.pts)
	return cp
}

// Ordering returns the landmark indices sorted by increasing RTT from peer a
// under model m — the peer's landmark ordering from §4.1.1.
func (l *Landmarks) Ordering(m *Model, a int) []int {
	type probe struct {
		idx int
		rtt float64
	}
	probes := make([]probe, len(l.pts))
	for i, p := range l.pts {
		probes[i] = probe{i, m.RTTToPoint(a, p)}
	}
	sort.SliceStable(probes, func(i, j int) bool { return probes[i].rtt < probes[j].rtt })
	out := make([]int, len(probes))
	for i, p := range probes {
		out[i] = p.idx
	}
	return out
}

func minDist(p Point, pts []Point) float64 {
	best := -1.0
	for _, q := range pts {
		d := p.Dist(q)
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}
