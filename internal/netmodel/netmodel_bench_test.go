package netmodel

import (
	"math/rand"
	"testing"
)

// BenchmarkRTT measures the pairwise latency computation (with jitter),
// the per-message hot path of the simulator.
func BenchmarkRTT(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := Place(1000, DefaultPlacement(), r)
	m := NewModel(pts, 1000, DefaultLatency(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.RTT(i%1000, (i*7+13)%1000)
	}
}

// BenchmarkLocatorBuild measures full locId assignment for the paper's
// 1000 peers against 4 landmarks.
func BenchmarkLocatorBuild(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	pts := Place(1000, DefaultPlacement(), r)
	m := NewModel(pts, 1000, DefaultLatency(), 2)
	lm := NewLandmarks(4, 1000, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewLocator(m, lm)
	}
}

// BenchmarkEncodeOrdering measures Lehmer-code ranking of a landmark
// permutation.
func BenchmarkEncodeOrdering(b *testing.B) {
	perm := []int{2, 0, 3, 1}
	for i := 0; i < b.N; i++ {
		_ = EncodeOrdering(perm)
	}
}
