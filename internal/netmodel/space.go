// Package netmodel models the underlying physical network of the Locaware
// evaluation: peer placement in a latency space, pairwise round-trip times in
// the 10–500 ms range (BRITE-inspired, §5.1 of the paper), a set of landmark
// machines, and landmark-ordering location identifiers (locIds).
//
// The paper uses BRITE only as a source of realistic link latencies; the
// essential properties the protocols depend on are (a) latencies spanning
// 10–500 ms and (b) a geometry in which physically close peers see similar
// RTTs to the landmarks and therefore share a locId. A 2-D Euclidean latency
// plane provides both, with the advantage of exact reproducibility.
package netmodel

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a position in the 2-D latency plane. Coordinates are unitless;
// the latency model maps distances to milliseconds.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// String renders the point with two decimals, for traces.
func (p Point) String() string { return fmt.Sprintf("(%.2f,%.2f)", p.X, p.Y) }

// PlacementConfig controls peer placement in the plane.
type PlacementConfig struct {
	// Side is the side length of the square universe. The default (1000)
	// combined with the default latency mapping spans the paper's 10–500 ms
	// latency range.
	Side float64
	// Clusters > 0 places peers around that many cluster centres (mimicking
	// BRITE's heavy-tailed AS-level clustering); 0 places them uniformly.
	Clusters int
	// ClusterSpread is the standard deviation of peer scatter around its
	// cluster centre, as a fraction of Side. Ignored when Clusters == 0.
	ClusterSpread float64
}

// DefaultPlacement mirrors the paper's setup: clustered placement so that
// landmark orderings induce meaningful localities.
func DefaultPlacement() PlacementConfig {
	return PlacementConfig{Side: 1000, Clusters: 24, ClusterSpread: 0.04}
}

// Place positions n peers in the plane according to cfg, using r for all
// randomness. It returns one point per peer.
func Place(n int, cfg PlacementConfig, r *rand.Rand) []Point {
	if cfg.Side <= 0 {
		cfg.Side = 1000
	}
	pts := make([]Point, n)
	if cfg.Clusters <= 0 {
		for i := range pts {
			pts[i] = Point{X: r.Float64() * cfg.Side, Y: r.Float64() * cfg.Side}
		}
		return pts
	}
	centres := make([]Point, cfg.Clusters)
	for i := range centres {
		centres[i] = Point{X: r.Float64() * cfg.Side, Y: r.Float64() * cfg.Side}
	}
	spread := cfg.ClusterSpread
	if spread <= 0 {
		spread = 0.04
	}
	sigma := spread * cfg.Side
	for i := range pts {
		c := centres[r.Intn(len(centres))]
		pts[i] = Point{
			X: clamp(c.X+r.NormFloat64()*sigma, 0, cfg.Side),
			Y: clamp(c.Y+r.NormFloat64()*sigma, 0, cfg.Side),
		}
	}
	return pts
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
