package trace

import (
	"strings"
	"testing"

	"github.com/p2prepro/locaware/internal/sim"
)

func TestKindStrings(t *testing.T) {
	kinds := []Kind{QuerySubmit, QueryForward, QueryDuplicate, StorageHit, CacheHit,
		ResponseHop, ResponseCached, DownloadComplete, QueryFailed, BloomGossip}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatal("unknown kind should fall back")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: sim.Second, Kind: QueryForward, Query: 7, Peer: 3, From: 2, Detail: "x"}
	s := e.String()
	if !strings.Contains(s, "forward") || !strings.Contains(s, "from=2") {
		t.Fatalf("event string %q", s)
	}
	e.From = -1
	if strings.Contains(e.String(), "from=") {
		t.Fatal("linkless event should omit from")
	}
}

func TestBufferRetainsAndDrops(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.Emit(Event{Query: uint64(i)})
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d", b.Len())
	}
	if b.Dropped() != 2 {
		t.Fatalf("dropped = %d", b.Dropped())
	}
	evs := b.Events()
	if len(evs) != 3 || evs[0].Query != 0 || evs[2].Query != 2 {
		t.Fatalf("events = %+v", evs)
	}
	evs[0].Query = 99
	if b.Events()[0].Query == 99 {
		t.Fatal("Events exposed internal storage")
	}
}

func TestBufferDefaultCapacity(t *testing.T) {
	b := NewBuffer(0)
	for i := 0; i < 5000; i++ {
		b.Emit(Event{})
	}
	if b.Len() != 4096 {
		t.Fatalf("default cap = %d", b.Len())
	}
}

func TestForQueryAndCountKind(t *testing.T) {
	b := NewBuffer(10)
	b.Emit(Event{Query: 1, Kind: QuerySubmit})
	b.Emit(Event{Query: 1, Kind: QueryForward})
	b.Emit(Event{Query: 2, Kind: QuerySubmit})
	if got := b.ForQuery(1); len(got) != 2 {
		t.Fatalf("ForQuery(1) = %d", len(got))
	}
	if b.CountKind(QuerySubmit) != 2 || b.CountKind(QueryFailed) != 0 {
		t.Fatal("CountKind wrong")
	}
}

type namedTestEvent struct{ dst int }

func (e namedTestEvent) Fire(*sim.Engine)  {}
func (e namedTestEvent) EventDst() int     { return e.dst }
func (e namedTestEvent) EventName() string { return "test-event" }

type unnamedTestEvent struct{}

func (unnamedTestEvent) Fire(*sim.Engine) {}

// TestEventObserver locks the engine-level rendering of typed events: the
// observer emits one EngineEvent per delivery, named by kind, destined
// events carrying their destination peer.
func TestEventObserver(t *testing.T) {
	eng := sim.NewEngine()
	buf := NewBuffer(16)
	eng.SetObserver(EventObserver(buf))
	eng.PostEvent(sim.Millisecond, namedTestEvent{dst: 7})
	eng.PostEvent(2*sim.Millisecond, unnamedTestEvent{})
	eng.Run(0)
	evs := buf.Events()
	if len(evs) != 2 {
		t.Fatalf("observed %d events, want 2", len(evs))
	}
	if evs[0].Kind != EngineEvent || evs[0].Detail != "test-event" || evs[0].Peer != 7 {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[1].Peer != -1 || evs[1].Detail != "trace.unnamedTestEvent" {
		t.Fatalf("second event = %+v", evs[1])
	}
	if evs[0].Kind.String() != "engine" {
		t.Fatalf("EngineEvent renders as %q", evs[0].Kind.String())
	}
}
