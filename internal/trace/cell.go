package trace

// Cell is a per-shard trace buffer, mirroring the internal/obs cell
// pattern: protocol code running on a shard's goroutine appends events to
// its own cell with no synchronisation, and the Collector merges all cells
// at the sequential epoch barrier. Because each shard's event sequence is
// identical whether the epoch drained in parallel or sequentially (the PR 6
// determinism lock), the merged stream — and therefore everything a sink
// sees — is byte-identical in both drain modes, so tracing no longer forces
// the sequential drain.
//
// The backing slice is retained across epochs, so steady-state emission is
// an append into reused capacity.
type Cell struct {
	buf []Event
}

// Emit appends an event to the cell. Safe only from the owning shard's
// goroutine (or any sequential section).
func (c *Cell) Emit(e Event) { c.buf = append(c.buf, e) }

// Collector owns one Cell per shard and flushes them, merged in ascending
// (time, QueryID, shard) order, into a single sink at sequential points.
type Collector struct {
	sink  Tracer
	cells []Cell
}

// NewCollector returns a collector with one cell per shard feeding sink.
func NewCollector(sink Tracer, shards int) *Collector {
	if shards < 1 {
		shards = 1
	}
	return &Collector{sink: sink, cells: make([]Cell, shards)}
}

// Cell returns the i-th shard's cell. The pointer is stable for the
// collector's lifetime.
func (c *Collector) Cell(i int) *Cell { return &c.cells[i] }

// Sink returns the tracer the collector merges into.
func (c *Collector) Sink() Tracer { return c.sink }

// eventLess orders the merged stream: ascending time, then QueryID, with
// the caller's shard order breaking exact ties.
func eventLess(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.Query < b.Query
}

// Flush drains every cell into the sink in ascending (time, QueryID,
// shard) order and resets the cells, retaining their capacity. Must be
// called from a sequential section (the epoch barrier or end of run).
//
// Each cell arrives nondecreasing in time (its shard's engine delivers in
// time order), so the per-cell ordering pass is a near-linear insertion
// sort that only reorders same-instant events, and the cross-cell pass is
// an allocation-free k-way merge.
func (c *Collector) Flush() {
	n := 0
	for i := range c.cells {
		sortEvents(c.cells[i].buf)
		n += len(c.cells[i].buf)
	}
	if n == 0 {
		return
	}
	// k-way merge over the cells' heads; lowest shard index wins ties.
	heads := make([]int, 0, 8) // small, stack-allocated for <= 8 shards
	for range c.cells {
		heads = append(heads, 0)
	}
	for emitted := 0; emitted < n; emitted++ {
		best := -1
		for i := range c.cells {
			if heads[i] >= len(c.cells[i].buf) {
				continue
			}
			if best < 0 || eventLess(c.cells[i].buf[heads[i]], c.cells[best].buf[heads[best]]) {
				best = i
			}
		}
		c.sink.Emit(c.cells[best].buf[heads[best]])
		heads[best]++
	}
	for i := range c.cells {
		c.cells[i].buf = c.cells[i].buf[:0]
	}
}

// sortEvents stable-sorts events by (At, Query) with insertion sort: the
// input is already nondecreasing in At, so this touches only same-instant
// runs and allocates nothing.
func sortEvents(evs []Event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && eventLess(evs[j], evs[j-1]); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}
