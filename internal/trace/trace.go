// Package trace provides structured event tracing for simulation runs:
// each significant protocol action (query submission, forwarding decision,
// hit, reverse-path caching, download completion, gossip) emits an Event.
// Traces power the locaware-trace CLI, debugging sessions, and tests that
// assert on protocol behaviour rather than aggregate metrics.
package trace

import (
	"fmt"

	"github.com/p2prepro/locaware/internal/sim"
)

// Kind classifies a trace event.
type Kind int

// Event kinds, in rough lifecycle order.
const (
	// QuerySubmit: a peer injected a query.
	QuerySubmit Kind = iota
	// QueryForward: a peer forwarded the query to a neighbour.
	QueryForward
	// QueryDuplicate: a peer dropped an already-seen query.
	QueryDuplicate
	// StorageHit: a peer satisfied the query from shared storage.
	StorageHit
	// CacheHit: a peer satisfied the query from its response index.
	CacheHit
	// ResponseHop: the response advanced one hop on the reverse path.
	ResponseHop
	// ResponseCached: a reverse-path peer cached the response.
	ResponseCached
	// DownloadComplete: the requester selected a provider.
	DownloadComplete
	// QueryFailed: the query was finalised without an answer.
	QueryFailed
	// BloomGossip: a peer announced a Bloom filter update to a neighbour.
	BloomGossip
	// PhaseEnter: a scenario phase entered (its dynamics events fired).
	// Phase events carry no peer (Peer = -1) and no query id.
	PhaseEnter
	// EngineEvent: a typed simulator event was delivered (engine-level
	// tracing via EventObserver). Detail carries the event's kind name;
	// Peer carries its destination when the event names one.
	EngineEvent
	// QueryFinalize: the query's bookkeeping was retired. Every query emits
	// exactly one, after its download or failure outcome, so it is the
	// end-of-life signal flight recorders key tail-sampling decisions on.
	QueryFinalize

	// KindCount bounds the kind space for bitmask-sized tables.
	KindCount
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case QuerySubmit:
		return "submit"
	case QueryForward:
		return "forward"
	case QueryDuplicate:
		return "duplicate"
	case StorageHit:
		return "storage-hit"
	case CacheHit:
		return "cache-hit"
	case ResponseHop:
		return "response-hop"
	case ResponseCached:
		return "cached"
	case DownloadComplete:
		return "download"
	case QueryFailed:
		return "failed"
	case BloomGossip:
		return "gossip"
	case PhaseEnter:
		return "phase"
	case EngineEvent:
		return "engine"
	case QueryFinalize:
		return "finalize"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// EventObserver adapts a Tracer into a sim.Engine observer: every
// delivered typed event is rendered as an EngineEvent carrying the event's
// kind name (sim.EventName), for destined events its destination peer, and
// for transfer-shaped events (sim.Sourced) the sending peer, so engine
// traces show links rather than bare destinations. Install it with
// Engine.SetObserver (or Sharded.SetObserver) to see the typed event core
// itself — query deliveries, response hops, gossip rounds, churn ticks —
// beneath the protocol-level trace.
func EventObserver(tr Tracer) func(at sim.Time, ev sim.Event) {
	return func(at sim.Time, ev sim.Event) {
		e := Event{At: at, Kind: EngineEvent, Peer: -1, From: -1, Detail: sim.EventName(ev)}
		if d, ok := ev.(sim.Destined); ok {
			e.Peer = d.EventDst()
		}
		if s, ok := ev.(sim.Sourced); ok {
			e.From = s.EventSrc()
		}
		tr.Emit(e)
	}
}

// Event is one traced protocol action.
type Event struct {
	// At is the virtual timestamp.
	At sim.Time
	// Kind classifies the action.
	Kind Kind
	// Query is the query id the action belongs to (0 for gossip).
	Query uint64
	// Peer is the acting peer; From the counterpart peer when the action
	// crosses a link (-1 otherwise).
	Peer, From int
	// Detail is a short human-readable annotation (filename, provider,
	// metric).
	Detail string
}

// String formats the event as one log line.
func (e Event) String() string {
	if e.From >= 0 {
		return fmt.Sprintf("%-10s q=%-4d %s peer=%d from=%d %s", e.At, e.Query, e.Kind, e.Peer, e.From, e.Detail)
	}
	return fmt.Sprintf("%-10s q=%-4d %s peer=%d %s", e.At, e.Query, e.Kind, e.Peer, e.Detail)
}

// Tracer consumes events. Implementations must be cheap: the simulator
// calls Emit on hot paths.
type Tracer interface {
	Emit(Event)
}

// KindFilter is an optional Tracer capability: a sink that discards some
// event kinds outright implements it so emitters can skip building those
// events — and their detail-string allocations — at the source. WantMask
// folds a sink's answers into a bitmask for branch-free hot-path checks.
type KindFilter interface {
	WantKind(Kind) bool
}

// WantMask returns tr's kind-interest bitmask (bit k set = kind k wanted).
// Sinks without the KindFilter capability want everything.
func WantMask(tr Tracer) uint32 {
	const all = 1<<KindCount - 1
	if tr == nil {
		return 0
	}
	kf, ok := tr.(KindFilter)
	if !ok {
		return all
	}
	var m uint32
	for k := Kind(0); k < KindCount; k++ {
		if kf.WantKind(k) {
			m |= 1 << k
		}
	}
	return m
}

// Buffer is a bounded in-memory tracer. When full it drops new events and
// counts the drops, so tracing long runs cannot exhaust memory.
type Buffer struct {
	cap     int
	events  []Event
	dropped uint64
	// byQuery indexes retained event positions by query id. Built lazily on
	// the first ForQuery after a mutation and invalidated on Emit, so span
	// reconstruction's repeated per-query lookups cost O(hits) instead of
	// O(all events).
	byQuery map[uint64][]int32
}

// NewBuffer returns a tracer retaining at most capacity events
// (capacity <= 0 means 4096).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Buffer{cap: capacity}
}

// Emit implements Tracer.
func (b *Buffer) Emit(e Event) {
	if len(b.events) >= b.cap {
		b.dropped++
		return
	}
	b.byQuery = nil
	b.events = append(b.events, e)
}

// Events returns the retained events in emission order.
func (b *Buffer) Events() []Event {
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// Dropped returns how many events were discarded after the buffer filled.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// Len returns the retained event count.
func (b *Buffer) Len() int { return len(b.events) }

// ForQuery filters the retained events to one query id, in emission order.
func (b *Buffer) ForQuery(q uint64) []Event {
	if b.byQuery == nil && len(b.events) > 0 {
		b.byQuery = make(map[uint64][]int32)
		for i, e := range b.events {
			b.byQuery[e.Query] = append(b.byQuery[e.Query], int32(i))
		}
	}
	idx := b.byQuery[q]
	if len(idx) == 0 {
		return nil
	}
	out := make([]Event, len(idx))
	for i, j := range idx {
		out[i] = b.events[j]
	}
	return out
}

// CountKind returns how many retained events have kind k.
func (b *Buffer) CountKind(k Kind) int {
	n := 0
	for _, e := range b.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}
