package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// pfArgs is a Perfetto event's args payload. Name is set only on
// thread_name metadata events, where the viewers read args.name as the
// track label.
type pfArgs struct {
	Name   string  `json:"name,omitempty"`
	Query  uint64  `json:"query,omitempty"`
	From   int     `json:"from,omitempty"`
	Detail string  `json:"detail,omitempty"`
	PropMs float64 `json:"prop_ms,omitempty"`
	ProcMs float64 `json:"proc_ms,omitempty"`
	Open   bool    `json:"open,omitempty"`
}

// pfEvent is one entry of the Chrome trace-event format (the JSON both
// chrome://tracing and ui.perfetto.dev load). ts/dur are microseconds —
// exactly the simulator's native tick.
type pfEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   int64   `json:"ts"`
	Dur  int64   `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"`
	Args *pfArgs `json:"args,omitempty"`
}

type pfFile struct {
	TraceEvents     []pfEvent `json:"traceEvents"`
	DisplayTimeUnit string    `json:"displayTimeUnit"`
}

// WritePerfetto exports span trees (plus optional scenario phase events) as
// a Chrome/Perfetto trace: one track (tid) per peer named "peer N", every
// span a complete ("X") event on its landing peer's track, phase entries as
// global instant ("i") events. Output order is deterministic: track
// metadata in ascending peer order, then the trees in the given order, each
// depth-first, then phases. Load the file at ui.perfetto.dev or
// chrome://tracing.
func WritePerfetto(w io.Writer, trees []*SpanTree, phases []Event) error {
	peers := map[int]bool{}
	for _, t := range trees {
		if t != nil {
			collectPeers(t.Root, peers)
		}
	}
	ids := make([]int, 0, len(peers))
	for p := range peers {
		ids = append(ids, p)
	}
	sort.Ints(ids)

	evs := make([]pfEvent, 0, 2*len(ids))
	for _, p := range ids {
		evs = append(evs, pfEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: p,
			Args: &pfArgs{Name: fmt.Sprintf("peer %d", p)},
		})
	}
	for _, t := range trees {
		if t != nil {
			evs = appendSpan(evs, t.Root, t.Query)
		}
	}
	for _, e := range phases {
		evs = append(evs, pfEvent{
			Name: e.Detail, Ph: "i", Ts: int64(e.At), Pid: 0, Tid: 0, S: "g",
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(pfFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

func collectPeers(s *Span, peers map[int]bool) {
	if s == nil {
		return
	}
	if s.Peer >= 0 {
		peers[s.Peer] = true
	}
	for _, c := range s.Children {
		collectPeers(c, peers)
	}
}

func appendSpan(evs []pfEvent, s *Span, query uint64) []pfEvent {
	if s == nil {
		return evs
	}
	if s.Peer >= 0 {
		dur := int64(s.End - s.Start)
		if dur < 1 {
			dur = 1 // zero-width events vanish in the UI
		}
		args := &pfArgs{Query: query, Detail: s.Detail, Open: s.Open,
			PropMs: s.Propagation.Milliseconds(), ProcMs: s.Processing.Milliseconds()}
		if s.From >= 0 {
			args.From = s.From
		}
		evs = append(evs, pfEvent{
			Name: s.label(), Ph: "X", Ts: int64(s.Start), Dur: dur,
			Pid: 0, Tid: s.Peer, Args: args,
		})
	}
	for _, c := range s.Children {
		evs = appendSpan(evs, c, query)
	}
	return evs
}
