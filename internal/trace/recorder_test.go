package trace

import (
	"strings"
	"testing"

	"github.com/p2prepro/locaware/internal/sim"
)

// query emits a minimal query lifecycle into r: submit at t0 on origin,
// depth forwards, then either a download at doneAt or a failure, and the
// finalize marker at finAt.
func emitQuery(r *FlightRecorder, q uint64, origin int, t0 sim.Time, depth int, doneAt, finAt sim.Time, failed bool) {
	r.Emit(Event{At: t0, Kind: QuerySubmit, Query: q, Peer: origin, From: -1})
	prev := origin
	for i := 0; i < depth; i++ {
		at := t0 + sim.Time(i+1)*sim.Millisecond
		r.Emit(Event{At: at, Kind: QueryForward, Query: q, Peer: prev + 100 + i, From: prev})
		prev = prev + 100 + i
	}
	if failed {
		r.Emit(Event{At: finAt, Kind: QueryFailed, Query: q, Peer: origin, From: -1})
	} else if doneAt > 0 {
		r.Emit(Event{At: doneAt, Kind: DownloadComplete, Query: q, Peer: origin, From: -1})
	}
	r.Emit(Event{At: finAt, Kind: QueryFinalize, Query: q, Peer: origin, From: -1})
}

func TestFlightRecorderKeepFailed(t *testing.T) {
	r := NewFlightRecorder(Policy{KeepFailed: true})
	emitQuery(r, 1, 5, sim.Second, 2, 0, sim.Second+30*sim.Second, true)
	emitQuery(r, 2, 6, 2*sim.Second, 2, 2*sim.Second+200*sim.Millisecond, 2*sim.Second+30*sim.Second, false)
	traces := r.Traces()
	if len(traces) != 1 {
		t.Fatalf("kept %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Query != 1 || !tr.Failed || tr.Why != "failed" {
		t.Fatalf("trace = %+v", tr)
	}
	// A failed query's latency is time-to-finalize.
	if tr.Latency != 30*sim.Second {
		t.Fatalf("failed latency = %v, want 30s", tr.Latency)
	}
	if r.InFlight() != 0 {
		t.Fatalf("in-flight = %d after finalize", r.InFlight())
	}
}

func TestFlightRecorderMinHops(t *testing.T) {
	r := NewFlightRecorder(Policy{MinHops: 3})
	emitQuery(r, 1, 5, sim.Second, 2, sim.Second+sim.Millisecond*50, sim.Second+30*sim.Second, false)
	emitQuery(r, 2, 6, 2*sim.Second, 4, 2*sim.Second+sim.Millisecond*50, 2*sim.Second+30*sim.Second, false)
	traces := r.Traces()
	if len(traces) != 1 || traces[0].Query != 2 || traces[0].Hops != 4 || traces[0].Why != "hops" {
		t.Fatalf("traces = %+v", traces)
	}
}

// TestFlightRecorderSlowestN locks the min-heap sampling: only the N
// highest-latency queries survive, with strictly-slower (or equally slow,
// smaller id) candidates displacing the minimum, and Traces() returning
// them slowest-first.
func TestFlightRecorderSlowestN(t *testing.T) {
	r := NewFlightRecorder(Policy{SlowestN: 3})
	lat := []sim.Time{ // per query 1..6, in ms
		40 * sim.Millisecond,
		90 * sim.Millisecond,
		10 * sim.Millisecond,
		70 * sim.Millisecond,
		50 * sim.Millisecond,
		40 * sim.Millisecond, // ties query 1: earlier query must win
	}
	for i, l := range lat {
		t0 := sim.Time(i+1) * sim.Second
		emitQuery(r, uint64(i+1), i, t0, 1, t0+l, t0+30*sim.Second, false)
	}
	traces := r.Traces()
	if len(traces) != 3 {
		t.Fatalf("kept %d traces, want 3", len(traces))
	}
	gotQ := [3]uint64{traces[0].Query, traces[1].Query, traces[2].Query}
	if gotQ != [3]uint64{2, 4, 5} {
		t.Fatalf("slowest-first order = %v, want [2 4 5]", gotQ)
	}
	for _, tr := range traces {
		if tr.Why != "slowest" {
			t.Fatalf("why = %q", tr.Why)
		}
	}
}

// TestFlightRecorderSlowestTie pins the eviction tie-break: an equally-slow
// later query must NOT displace an earlier one already in a full heap.
func TestFlightRecorderSlowestTie(t *testing.T) {
	r := NewFlightRecorder(Policy{SlowestN: 1})
	const l = 25 * sim.Millisecond
	emitQuery(r, 1, 0, sim.Second, 1, sim.Second+l, sim.Second+30*sim.Second, false)
	emitQuery(r, 2, 1, 2*sim.Second, 1, 2*sim.Second+l, 2*sim.Second+30*sim.Second, false)
	traces := r.Traces()
	if len(traces) != 1 || traces[0].Query != 1 {
		t.Fatalf("tie kept query %d, want 1", traces[0].Query)
	}
}

// TestFlightRecorderLocalStorageHit locks the local-answer completion rule:
// a hit on the submitter's own storage ends the query then and there, so
// its latency is ~0, not the 30s time-to-finalize — without this every
// locally answered query would rank as a slowest-N outlier. A storage hit
// at a *remote* peer must not complete the query (its download does).
func TestFlightRecorderLocalStorageHit(t *testing.T) {
	r := NewFlightRecorder(Policy{SlowestN: 2})
	// Query 1: local storage hit at submit time.
	r.Emit(Event{At: sim.Second, Kind: QuerySubmit, Query: 1, Peer: 5, From: -1})
	r.Emit(Event{At: sim.Second, Kind: StorageHit, Query: 1, Peer: 5, From: -1})
	r.Emit(Event{At: sim.Second + 30*sim.Second, Kind: QueryFinalize, Query: 1, Peer: 5, From: -1})
	// Query 2: remote storage hit, download completes 80ms in.
	t0 := 2 * sim.Second
	r.Emit(Event{At: t0, Kind: QuerySubmit, Query: 2, Peer: 6, From: -1})
	r.Emit(Event{At: t0 + 10*sim.Millisecond, Kind: QueryForward, Query: 2, Peer: 7, From: 6})
	r.Emit(Event{At: t0 + 30*sim.Millisecond, Kind: StorageHit, Query: 2, Peer: 7, From: -1})
	r.Emit(Event{At: t0 + 80*sim.Millisecond, Kind: DownloadComplete, Query: 2, Peer: 6, From: 7})
	r.Emit(Event{At: t0 + 30*sim.Second, Kind: QueryFinalize, Query: 2, Peer: 6, From: -1})
	traces := r.Traces()
	if len(traces) != 2 {
		t.Fatalf("kept %d traces, want 2", len(traces))
	}
	// Slowest first: query 2 (80ms) then query 1 (0).
	if traces[0].Query != 2 || traces[0].Latency != 80*sim.Millisecond {
		t.Fatalf("remote-hit trace = q%d latency=%v, want q2 80ms", traces[0].Query, traces[0].Latency)
	}
	if traces[1].Query != 1 || traces[1].Latency != 0 {
		t.Fatalf("local-hit trace = q%d latency=%v, want q1 0", traces[1].Query, traces[1].Latency)
	}
}

func TestFlightRecorderMaxKeepOverflow(t *testing.T) {
	r := NewFlightRecorder(Policy{KeepFailed: true, MaxKeep: 2})
	for q := uint64(1); q <= 5; q++ {
		t0 := sim.Time(q) * sim.Second
		emitQuery(r, q, int(q), t0, 1, 0, t0+30*sim.Second, true)
	}
	if got := len(r.Traces()); got != 2 {
		t.Fatalf("kept %d traces, want MaxKeep=2", got)
	}
	if r.KeptOverflow() != 3 {
		t.Fatalf("overflow = %d, want 3", r.KeptOverflow())
	}
}

func TestFlightRecorderEventCap(t *testing.T) {
	r := NewFlightRecorder(Policy{KeepFailed: true, MaxEventsPerQuery: 4})
	emitQuery(r, 1, 5, sim.Second, 10, 0, sim.Second+30*sim.Second, true)
	traces := r.Traces()
	if len(traces) != 1 {
		t.Fatalf("kept %d traces", len(traces))
	}
	tr := traces[0]
	if len(tr.Events) != 4 {
		t.Fatalf("retained %d events, want cap 4", len(tr.Events))
	}
	// 12 lifecycle events total (submit + 10 forwards + failed; finalize is
	// consumed, not buffered), 4 kept.
	if tr.Dropped != 8 {
		t.Fatalf("dropped = %d, want 8", tr.Dropped)
	}
	// Hops still tracked past the cap: depth bookkeeping is not buffered.
	if tr.Hops != 10 {
		t.Fatalf("hops = %d, want 10", tr.Hops)
	}
	// The QueryFailed event was truncated away, but the tree must still
	// carry the recorder's authoritative outcome, not reconstruct a bogus
	// "ok" from the surviving prefix.
	tree := tr.Tree(sim.Millisecond)
	if tree == nil || !tree.Failed {
		t.Fatalf("truncated failed query reconstructed as ok: %+v", tree)
	}
	if tree.Latency != tr.Latency {
		t.Fatalf("tree latency %s != recorder latency %s", tree.Latency, tr.Latency)
	}
}

// TestFlightRecorderWhyCombines checks a trace matching several criteria
// reports them all and is kept once.
func TestFlightRecorderWhyCombines(t *testing.T) {
	r := NewFlightRecorder(Policy{KeepFailed: true, MinHops: 2})
	emitQuery(r, 1, 5, sim.Second, 3, 0, sim.Second+30*sim.Second, true)
	traces := r.Traces()
	if len(traces) != 1 {
		t.Fatalf("kept %d traces, want 1", len(traces))
	}
	if traces[0].Why != "failed,hops" {
		t.Fatalf("why = %q", traces[0].Why)
	}
}

func TestFlightRecorderPhasesAndStragglers(t *testing.T) {
	r := NewFlightRecorder(Policy{KeepFailed: true})
	r.Emit(Event{At: sim.Second, Kind: PhaseEnter, Detail: "surge"})
	// Events for a query never submitted (e.g. in flight before attach).
	r.Emit(Event{At: sim.Second, Kind: QueryForward, Query: 9, Peer: 1, From: 0})
	r.Emit(Event{At: 2 * sim.Second, Kind: QueryFinalize, Query: 9, Peer: 0, From: -1})
	if ph := r.Phases(); len(ph) != 1 || ph[0].Detail != "surge" {
		t.Fatalf("phases = %+v", ph)
	}
	if len(r.Traces()) != 0 || r.InFlight() != 0 {
		t.Fatal("straggler events must be ignored")
	}
}

// TestCollectorMergeOrder locks the shard-cell merge contract: cells drain
// into the sink in ascending (time, query, shard) order, same-instant
// out-of-order events within one cell are reordered by query id, and a
// flush resets the cells.
func TestCollectorMergeOrder(t *testing.T) {
	sink := NewBuffer(64)
	c := NewCollector(sink, 3)
	// Shard 0: two events at t=2 emitted query-descending (same instant).
	c.Cell(0).Emit(Event{At: 2 * sim.Millisecond, Query: 5})
	c.Cell(0).Emit(Event{At: 2 * sim.Millisecond, Query: 3})
	// Shard 1: earliest event overall.
	c.Cell(1).Emit(Event{At: sim.Millisecond, Query: 9})
	// Shard 2: ties shard 0's (t=2, q=3) — higher shard index loses.
	c.Cell(2).Emit(Event{At: 2 * sim.Millisecond, Query: 3, Peer: 42})
	c.Flush()
	evs := sink.Events()
	if len(evs) != 4 {
		t.Fatalf("merged %d events, want 4", len(evs))
	}
	if evs[0].Query != 9 {
		t.Fatalf("first merged event = %+v, want shard 1's t=1ms", evs[0])
	}
	if evs[1].Query != 3 || evs[1].Peer == 42 {
		t.Fatalf("tie broke toward shard 2: %+v", evs[1])
	}
	if evs[2].Query != 3 || evs[2].Peer != 42 {
		t.Fatalf("shard 2's tie event misplaced: %+v", evs[2])
	}
	if evs[3].Query != 5 {
		t.Fatalf("last merged event = %+v", evs[3])
	}
	c.Flush() // empty flush is a no-op
	if sink.Len() != 4 {
		t.Fatalf("second flush re-emitted: len=%d", sink.Len())
	}
}

// TestSpanTreeAttribution locks the span builder's latency split: a closed
// forward span charges the processing constant and attributes the rest to
// propagation; spans that never close render as open.
func TestSpanTreeAttribution(t *testing.T) {
	const proc = sim.Millisecond
	t0 := sim.Second
	events := []Event{
		{At: t0, Kind: QuerySubmit, Query: 1, Peer: 0, From: -1, Detail: "q{a}"},
		{At: t0, Kind: QueryForward, Query: 1, Peer: 1, From: 0},
		// Peer 1 received + processed, forwards on at +10ms.
		{At: t0 + 10*sim.Millisecond, Kind: QueryForward, Query: 1, Peer: 2, From: 1},
		// Peer 2 hits at +25ms; peer 1→2 link therefore took 15ms.
		{At: t0 + 25*sim.Millisecond, Kind: StorageHit, Query: 1, Peer: 2, From: -1},
		{At: t0 + 30*sim.Millisecond, Kind: ResponseHop, Query: 1, Peer: 1, From: 2},
		{At: t0 + 40*sim.Millisecond, Kind: ResponseHop, Query: 1, Peer: 0, From: 1},
		{At: t0 + 55*sim.Millisecond, Kind: DownloadComplete, Query: 1, Peer: 0, From: 2},
		{At: t0 + 30*sim.Second, Kind: QueryFinalize, Query: 1, Peer: 0, From: -1},
	}
	tree := BuildSpanTree(1, events, proc)
	if tree == nil {
		t.Fatal("no tree built")
	}
	if tree.Failed || tree.Latency != 55*sim.Millisecond {
		t.Fatalf("tree latency=%v failed=%v", tree.Latency, tree.Failed)
	}
	if len(tree.Root.Children) != 1 {
		t.Fatalf("root fan-out = %d, want 1", len(tree.Root.Children))
	}
	fwd01 := tree.Root.Children[0]
	if fwd01.Kind != QueryForward || fwd01.Peer != 1 || fwd01.From != 0 {
		t.Fatalf("first hop = %+v", fwd01)
	}
	if fwd01.Open || fwd01.Processing != proc || fwd01.Propagation != 9*sim.Millisecond {
		t.Fatalf("hop 0→1 split prop=%v proc=%v open=%v", fwd01.Propagation, fwd01.Processing, fwd01.Open)
	}
	if len(fwd01.Children) != 1 {
		t.Fatalf("hop 0→1 children = %d", len(fwd01.Children))
	}
	fwd12 := fwd01.Children[0]
	if fwd12.Propagation != 14*sim.Millisecond || fwd12.Processing != proc {
		t.Fatalf("hop 1→2 split prop=%v proc=%v", fwd12.Propagation, fwd12.Processing)
	}
	out := tree.Render()
	for _, want := range []string{"fwd 0→1", "fwd 1→2", "storage-hit", "resp 2→1", "resp 1→0", "download"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered tree missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "open") {
		t.Fatalf("fully closed tree rendered an open span:\n%s", out)
	}
}

func TestSpanTreeOpenSpans(t *testing.T) {
	t0 := sim.Second
	events := []Event{
		{At: t0, Kind: QuerySubmit, Query: 1, Peer: 0, From: -1},
		{At: t0, Kind: QueryForward, Query: 1, Peer: 1, From: 0},
		{At: t0 + 30*sim.Second, Kind: QueryFailed, Query: 1, Peer: 0, From: -1},
		{At: t0 + 30*sim.Second, Kind: QueryFinalize, Query: 1, Peer: 0, From: -1},
	}
	tree := BuildSpanTree(1, events, sim.Millisecond)
	if tree == nil || !tree.Failed {
		t.Fatalf("tree = %+v", tree)
	}
	fwd := tree.Root.Children[0]
	if !fwd.Open {
		t.Fatalf("never-received forward should be open: %+v", fwd)
	}
	if !strings.Contains(tree.Render(), "open") {
		t.Fatalf("render missing open marker:\n%s", tree.Render())
	}
}

func TestSpanTreeNoSubmit(t *testing.T) {
	events := []Event{{At: sim.Second, Kind: QueryForward, Query: 1, Peer: 1, From: 0}}
	if tree := BuildSpanTree(1, events, sim.Millisecond); tree != nil {
		t.Fatalf("tree without submit = %+v", tree)
	}
}
