package trace

import (
	"fmt"
	"strings"

	"github.com/p2prepro/locaware/internal/sim"
)

// Span is one node of a query's causal tree: either a link span (a query
// forward or a response hop, with a real duration from send to receipt) or
// a point span (submit, hit, cached, duplicate, download, failed — an
// instant at one peer).
type Span struct {
	// Kind is the trace kind the span was built from.
	Kind Kind
	// Peer is the peer the span lands on (the link target, or the acting
	// peer for point spans); From is the link source (-1 for point spans).
	Peer, From int
	// Start and End bound the span. A link span starts when the message is
	// sent and ends when the target processes it; point spans have
	// Start == End.
	Start, End sim.Time
	// Open marks a link span that never closed: the message died in flight
	// (TTL exhausted at the target, target offline, or the run ended).
	Open bool
	// Propagation, Processing and Queueing split a closed link span's
	// latency: Processing is the per-hop protocol processing cost (clipped
	// to the span), Propagation the remaining wire time. Queueing is
	// reserved for a future bandwidth/queueing network model and is always
	// 0 today.
	Propagation, Processing, Queueing sim.Time
	// Detail is the source event's annotation.
	Detail string
	// Children are causally dependent spans, in event order.
	Children []*Span
}

// label renders the span's head: "fwd 3→7", "resp 7→3", or the point kind.
func (s *Span) label() string {
	switch s.Kind {
	case QueryForward:
		return fmt.Sprintf("fwd %d→%d", s.From, s.Peer)
	case ResponseHop:
		return fmt.Sprintf("resp %d→%d", s.From, s.Peer)
	default:
		return s.Kind.String()
	}
}

// SpanTree is one query's reconstructed causal tree.
type SpanTree struct {
	// Query is the query id.
	Query uint64
	// Root is the query's lifetime span (submit to download/finalize),
	// rooted at the origin peer.
	Root *Span
	// Spans counts every span in the tree, root included.
	Spans int
	// Failed reports the query finalised without an answer.
	Failed bool
	// Latency is the root span's duration.
	Latency sim.Time
}

// spanBuilder accumulates the per-peer open-span bookkeeping while the
// flat event stream replays.
type spanBuilder struct {
	processing sim.Time
	root       *Span
	nodeSpan   map[int]*Span   // query presence at a peer (inbound span)
	openFwd    map[int][]*Span // FIFO open forward spans by target peer
	openResp   map[int][]*Span // FIFO open response spans by target peer
	respAt     map[int]*Span   // response origin span (the hit) by peer
	lastFwd    map[int]sim.Time
	count      int
	doneAt     sim.Time
	hasDone    bool
	endAt      sim.Time
	failed     bool
}

// BuildSpanTree reconstructs query q's span tree from its flat events
// (merged-stream order, as stored by a FlightRecorder or returned by
// Buffer.ForQuery). processing is the protocol's per-hop processing delay,
// used to split each closed link span's latency into processing +
// propagation. Non-query events (gossip, phases, engine) in the slice are
// ignored. Returns nil when the events contain no QuerySubmit.
func BuildSpanTree(q uint64, events []Event, processing sim.Time) *SpanTree {
	b := &spanBuilder{
		processing: processing,
		nodeSpan:   make(map[int]*Span),
		openFwd:    make(map[int][]*Span),
		openResp:   make(map[int][]*Span),
		respAt:     make(map[int]*Span),
		lastFwd:    make(map[int]sim.Time),
	}
	for _, e := range events {
		if e.Query != q {
			continue
		}
		b.apply(e)
	}
	if b.root == nil {
		return nil
	}
	end := b.endAt
	if b.hasDone {
		end = b.doneAt
	}
	if end < b.root.Start {
		end = b.root.Start
	}
	b.root.End = end
	// Clip spans the run never closed to the tree's end.
	b.closeOpen(b.root, end)
	return &SpanTree{
		Query:   q,
		Root:    b.root,
		Spans:   b.count,
		Failed:  b.failed,
		Latency: b.root.End - b.root.Start,
	}
}

func (b *spanBuilder) newSpan(e Event) *Span {
	b.count++
	return &Span{Kind: e.Kind, Peer: e.Peer, From: e.From, Start: e.At, End: e.At, Detail: e.Detail}
}

// attach adds child under parent, falling back to the root.
func (b *spanBuilder) attach(parent, child *Span) {
	if parent == nil {
		parent = b.root
	}
	if parent == nil || parent == child {
		return
	}
	parent.Children = append(parent.Children, child)
}

// closeHead pops the earliest open span targeting peer from queue, closing
// it at 'at' with latency attribution.
func closeHead(queues map[int][]*Span, peer int, at sim.Time, processing sim.Time) *Span {
	q := queues[peer]
	if len(q) == 0 {
		return nil
	}
	s := q[0]
	queues[peer] = q[1:]
	s.End = at
	total := s.End - s.Start
	proc := processing
	if proc > total {
		proc = total
	}
	s.Processing = proc
	s.Propagation = total - proc
	return s
}

func (b *spanBuilder) apply(e Event) {
	if e.At > b.endAt {
		b.endAt = e.At
	}
	switch e.Kind {
	case QuerySubmit:
		if b.root != nil {
			return
		}
		r := b.newSpan(e)
		r.From = -1
		b.root = r
		b.nodeSpan[e.Peer] = r
	case QueryForward:
		// The sender forwarding is the first proof it received the query:
		// close its inbound span once per instant (a multi-branch fan-out
		// emits several forwards at the same time).
		if b.root == nil {
			return
		}
		if last, ok := b.lastFwd[e.From]; !ok || last != e.At {
			if s := closeHead(b.openFwd, e.From, e.At, b.processing); s != nil {
				if _, have := b.nodeSpan[e.From]; !have {
					b.nodeSpan[e.From] = s
				}
			}
			b.lastFwd[e.From] = e.At
		}
		s := b.newSpan(e)
		b.attach(b.nodeSpan[e.From], s)
		b.openFwd[e.Peer] = append(b.openFwd[e.Peer], s)
	case QueryDuplicate:
		in := closeHead(b.openFwd, e.Peer, e.At, b.processing)
		b.attach(in, b.newSpan(e))
	case StorageHit, CacheHit:
		in := closeHead(b.openFwd, e.Peer, e.At, b.processing)
		if in != nil {
			if _, have := b.nodeSpan[e.Peer]; !have {
				b.nodeSpan[e.Peer] = in
			}
		}
		hit := b.newSpan(e)
		if in == nil {
			in = b.nodeSpan[e.Peer]
		}
		b.attach(in, hit)
		b.respAt[e.Peer] = hit
	case ResponseHop:
		in := closeHead(b.openResp, e.From, e.At, b.processing)
		parent := in
		if parent == nil {
			parent = b.respAt[e.From]
		}
		s := b.newSpan(e)
		b.attach(parent, s)
		b.openResp[e.Peer] = append(b.openResp[e.Peer], s)
	case ResponseCached:
		var parent *Span
		if q := b.openResp[e.Peer]; len(q) > 0 {
			parent = q[0]
		}
		b.attach(parent, b.newSpan(e))
	case DownloadComplete:
		in := closeHead(b.openResp, e.Peer, e.At, b.processing)
		if in == nil {
			in = b.respAt[e.Peer]
		}
		b.attach(in, b.newSpan(e))
		b.doneAt, b.hasDone = e.At, true
	case QueryFailed:
		b.failed = true
		b.attach(b.root, b.newSpan(e))
	case QueryFinalize:
		// End-of-life marker: bounds the tree but adds no span.
	}
}

// closeOpen walks the tree marking never-closed link spans Open and
// clipping their End to the tree's end.
func (b *spanBuilder) closeOpen(s *Span, end sim.Time) {
	if (s.Kind == QueryForward || s.Kind == ResponseHop) && s.End == s.Start && s.Processing == 0 {
		// Still at its creation timestamp with no attribution: check it is
		// genuinely unclosed (a closed zero-length span would have
		// Processing == total == 0 too, but such hops cannot exist — every
		// link has positive latency).
		s.Open = true
		if end > s.End {
			s.End = end
		}
	}
	for _, c := range s.Children {
		b.closeOpen(c, end)
	}
}

// Render formats the tree as an indented text timeline: one line per span
// with offsets relative to submission, durations, and the
// propagation/processing split for closed link spans.
func (t *SpanTree) Render() string {
	var sb strings.Builder
	status := "ok"
	if t.Failed {
		status = "FAILED"
	}
	fmt.Fprintf(&sb, "q=%d peer=%d submit@%s latency=%s spans=%d %s\n",
		t.Query, t.Root.Peer, t.Root.Start, t.Latency, t.Spans, status)
	if t.Root.Detail != "" {
		fmt.Fprintf(&sb, "  %s\n", t.Root.Detail)
	}
	for _, c := range t.Root.Children {
		renderSpan(&sb, c, t.Root.Start, 1)
	}
	return sb.String()
}

func renderSpan(sb *strings.Builder, s *Span, t0 sim.Time, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	switch {
	case s.Open:
		fmt.Fprintf(sb, "%s [+%s …] open", s.label(), s.Start-t0)
	case s.Kind == QueryForward || s.Kind == ResponseHop:
		fmt.Fprintf(sb, "%s [+%s %s] prop=%s proc=%s",
			s.label(), s.Start-t0, s.End-s.Start, s.Propagation, s.Processing)
	default:
		fmt.Fprintf(sb, "%s @+%s peer=%d", s.label(), s.Start-t0, s.Peer)
	}
	if s.Detail != "" {
		fmt.Fprintf(sb, " %s", s.Detail)
	}
	sb.WriteByte('\n')
	for _, c := range s.Children {
		renderSpan(sb, c, t0, depth+1)
	}
}
