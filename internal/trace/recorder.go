package trace

import (
	"sort"

	"github.com/p2prepro/locaware/internal/sim"
)

// Policy selects which query traces a FlightRecorder retains after
// finalize. The zero value keeps nothing; enable at least one criterion.
type Policy struct {
	// KeepFailed retains every query finalised without an answer.
	KeepFailed bool
	// MinHops retains queries whose flood reached at least this depth
	// (maximum forward-chain length observed). 0 disables the criterion.
	MinHops int
	// SlowestN retains the N answered-or-failed queries with the highest
	// completion latency, maintained in a min-heap so a million-query run
	// costs O(N) memory. 0 disables the criterion.
	SlowestN int
	// MaxEventsPerQuery bounds the in-flight buffer per query; beyond it
	// the earliest events are kept and the overflow counted in
	// QueryTrace.Dropped. <= 0 means 256.
	MaxEventsPerQuery int
	// MaxKeep caps the unconditional retentions (KeepFailed / MinHops) so
	// a pathological run cannot grow without bound. <= 0 means 64.
	MaxKeep int
}

// enabled reports whether any retention criterion is active.
func (p Policy) enabled() bool { return p.KeepFailed || p.MinHops > 0 || p.SlowestN > 0 }

// maxEvents returns the effective per-query event cap.
func (p Policy) maxEvents() int {
	if p.MaxEventsPerQuery > 0 {
		return p.MaxEventsPerQuery
	}
	return 256
}

// maxKeep returns the effective unconditional-retention cap.
func (p Policy) maxKeep() int {
	if p.MaxKeep > 0 {
		return p.MaxKeep
	}
	return 64
}

// QueryTrace is one retained query's causal record.
type QueryTrace struct {
	// Query is the query id.
	Query uint64
	// Submit is the submission timestamp.
	Submit sim.Time
	// Latency is completion latency: download time minus submit for
	// answered queries, finalize time minus submit for failed ones.
	Latency sim.Time
	// Hops is the deepest forward chain the query reached.
	Hops int
	// Failed reports the query finalised without an answer.
	Failed bool
	// Why names the retention criteria that kept the trace
	// ("failed", "hops", "slowest", comma-joined).
	Why string
	// Events are the query's trace events in merged stream order.
	Events []Event
	// Dropped counts events discarded by the per-query buffer cap.
	Dropped int
}

// Tree reconstructs the trace's span tree. processing is the per-hop
// protocol processing delay used for latency attribution. The recorder's
// outcome fields overlay the reconstruction: they are computed from the
// full event stream, while Events may have lost its tail to the
// per-query buffer cap (a truncated failed query would otherwise render
// as "ok" with the latency of its last retained event).
func (t *QueryTrace) Tree(processing sim.Time) *SpanTree {
	tree := BuildSpanTree(t.Query, t.Events, processing)
	if tree == nil {
		return nil
	}
	tree.Failed = t.Failed
	tree.Latency = t.Latency
	return tree
}

// depthEntry records one peer's forward depth from the origin. A linear
// slice beats a map here: a query touches a few dozen peers, scans stay in
// cache, and — unlike a map — the backing array recycles with the buffer.
type depthEntry struct {
	peer  int
	depth int
}

// queryBuf holds one in-flight query's events until finalize.
type queryBuf struct {
	events   []Event
	depth    []depthEntry
	maxDepth int
	origin   int // submitting peer
	submit   sim.Time
	doneAt   sim.Time
	hasDone  bool
	failed   bool
	dropped  int
}

// depthOf returns peer's recorded forward depth (0 if unseen).
func (b *queryBuf) depthOf(peer int) int {
	for _, d := range b.depth {
		if d.peer == peer {
			return d.depth
		}
	}
	return 0
}

// noteDepth records depth d for peer, keeping the minimum on revisits.
func (b *queryBuf) noteDepth(peer, d int) {
	for i := range b.depth {
		if b.depth[i].peer == peer {
			if d < b.depth[i].depth {
				b.depth[i].depth = d
			}
			return
		}
	}
	b.depth = append(b.depth, depthEntry{peer: peer, depth: d})
}

func (b *queryBuf) reset() {
	b.events = b.events[:0]
	b.depth = b.depth[:0]
	b.maxDepth, b.dropped = 0, 0
	b.origin = -1
	b.submit, b.doneAt = 0, 0
	b.hasDone, b.failed = false, false
}

// FlightRecorder is a tail-sampling Tracer: it buffers each query's events
// only while the query is in flight, and on QueryFinalize keeps the trace
// iff it matches the retention policy — so the p99.9 outliers of a huge run
// are caught in constant memory. It sits behind the shard-cell Collector
// (or a single-queue Network directly), so Emit only ever runs on
// sequential sections and needs no locking.
//
// Buffers are pooled: a finalized query's buffer (and, when a slowest-N
// heap entry is evicted, its event slice) returns to a free list, so
// steady-state recording allocates only retained data.
type FlightRecorder struct {
	pol    Policy
	active map[uint64]*queryBuf
	free   []*queryBuf
	// block batch-allocates queryBuf structs: with a long finalize horizon
	// every in-flight query holds a buffer, so fresh buffers are the common
	// case and chunking divides their allocation count by blockSize. evSlab
	// and dpSlab batch the buffers' initial event/depth windows the same way
	// (capacity-capped three-index carves, so append past a window
	// reallocates independently instead of clobbering a neighbour).
	block  []queryBuf
	evSlab []Event
	dpSlab []depthEntry
	spare  [][]Event // event slices recovered from evicted heap entries
	kept   []*QueryTrace
	slow   slowHeap
	phases []Event
	// keptOverflow counts unconditional retentions discarded by MaxKeep.
	keptOverflow uint64
}

// NewFlightRecorder returns a recorder with the given retention policy.
func NewFlightRecorder(pol Policy) *FlightRecorder {
	return &FlightRecorder{pol: pol, active: make(map[uint64]*queryBuf)}
}

// Policy returns the recorder's retention policy.
func (r *FlightRecorder) Policy() Policy { return r.pol }

// WantKind implements KindFilter: the recorder tails queries (plus scenario
// phase markers), so gossip and engine-level events can be skipped at the
// source — on a gossiping overlay those are the bulk of the stream, and
// each would otherwise cost a detail-string allocation just to be dropped
// in Emit.
func (r *FlightRecorder) WantKind(k Kind) bool {
	return k != BloomGossip && k != EngineEvent
}

// Emit implements Tracer.
func (r *FlightRecorder) Emit(e Event) {
	switch e.Kind {
	case PhaseEnter:
		if len(r.phases) < 4096 {
			r.phases = append(r.phases, e)
		}
		return
	case BloomGossip, EngineEvent:
		// Not query-scoped; the recorder only tails queries.
		return
	case QuerySubmit:
		b := r.acquire()
		b.submit = e.At
		b.origin = e.Peer
		b.events = append(b.events, e)
		r.active[e.Query] = b
		return
	case QueryFinalize:
		b := r.active[e.Query]
		if b == nil {
			return
		}
		delete(r.active, e.Query)
		r.finish(e, b)
		return
	}
	b := r.active[e.Query]
	if b == nil {
		// Straggler for a query submitted before the recorder attached or
		// already finalized; ignore.
		return
	}
	switch e.Kind {
	case QueryForward:
		d := b.depthOf(e.From) + 1
		b.noteDepth(e.Peer, d)
		if d > b.maxDepth {
			b.maxDepth = d
		}
	case DownloadComplete:
		b.doneAt, b.hasDone = e.At, true
	case StorageHit:
		// A hit on the submitter's own storage answers the query with no
		// download; without this the trace would fall back to time-to-finalize
		// and an instantly-answered query would rank as a slowest-N outlier.
		// Remote storage hits complete via DownloadComplete instead.
		if e.Peer == b.origin {
			b.doneAt, b.hasDone = e.At, true
		}
	case QueryFailed:
		b.failed = true
	}
	if len(b.events) >= r.pol.maxEvents() {
		b.dropped++
		return
	}
	b.events = append(b.events, e)
}

// finish applies the retention policy to a finalized query.
func (r *FlightRecorder) finish(fin Event, b *queryBuf) {
	lat := fin.At - b.submit
	if b.hasDone {
		lat = b.doneAt - b.submit
	}
	why := ""
	if b.failed && r.pol.KeepFailed {
		why = "failed"
	}
	if r.pol.MinHops > 0 && b.maxDepth >= r.pol.MinHops {
		if why != "" {
			why += ",hops"
		} else {
			why = "hops"
		}
	}
	if why != "" {
		if len(r.kept) >= r.pol.maxKeep() {
			r.keptOverflow++
			r.release(b)
			return
		}
		r.kept = append(r.kept, r.seal(b, lat, why))
		return
	}
	if r.pol.SlowestN > 0 {
		if len(r.slow) < r.pol.SlowestN {
			r.slow.push(r.seal(b, lat, "slowest"))
			return
		}
		if slowLess(r.slow[0].Latency, r.slow[0].Query, lat, fin.Query) {
			evicted := r.slow.replaceMin(r.seal(b, lat, "slowest"))
			r.spare = append(r.spare, evicted.Events[:0])
			return
		}
	}
	r.release(b)
}

// seal converts a finalized buffer into a retained QueryTrace, handing the
// event slice's ownership to the trace and recycling the rest of the
// buffer.
func (r *FlightRecorder) seal(b *queryBuf, lat sim.Time, why string) *QueryTrace {
	q := b.events[0].Query
	t := &QueryTrace{
		Query:   q,
		Submit:  b.submit,
		Latency: lat,
		Hops:    b.maxDepth,
		Failed:  b.failed,
		Why:     why,
		Events:  b.events,
		Dropped: b.dropped,
	}
	b.events = nil
	r.release(b)
	return t
}

func (r *FlightRecorder) acquire() *queryBuf {
	if n := len(r.free); n > 0 {
		b := r.free[n-1]
		r.free = r.free[:n-1]
		return b
	}
	if len(r.block) == 0 {
		r.block = make([]queryBuf, 64)
	}
	b := &r.block[0]
	r.block = r.block[1:]
	if n := len(r.spare); n > 0 {
		b.events = r.spare[n-1]
		r.spare = r.spare[:n-1]
	} else {
		// Pre-sized for a typical flood: growth chains per in-flight query
		// would dominate (buffers recycle only after finalize, 30 virtual
		// seconds out, so most queries pay the initial window).
		if len(r.evSlab) < 64 {
			r.evSlab = make([]Event, 64*64)
		}
		b.events = r.evSlab[0:0:64]
		r.evSlab = r.evSlab[64:]
	}
	if b.depth == nil {
		if len(r.dpSlab) < 64 {
			r.dpSlab = make([]depthEntry, 64*64)
		}
		b.depth = r.dpSlab[0:0:64]
		r.dpSlab = r.dpSlab[64:]
	}
	return b
}

func (r *FlightRecorder) release(b *queryBuf) {
	if b.events == nil {
		if n := len(r.spare); n > 0 {
			b.events = r.spare[n-1]
			r.spare = r.spare[:n-1]
		}
	}
	b.reset()
	r.free = append(r.free, b)
}

// Traces returns the retained traces, slowest first (ties broken by
// ascending query id). The order is deterministic.
func (r *FlightRecorder) Traces() []*QueryTrace {
	out := make([]*QueryTrace, 0, len(r.kept)+len(r.slow))
	out = append(out, r.kept...)
	out = append(out, r.slow...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Latency != out[j].Latency {
			return out[i].Latency > out[j].Latency
		}
		return out[i].Query < out[j].Query
	})
	return out
}

// Phases returns the scenario phase-entry events observed during the run.
func (r *FlightRecorder) Phases() []Event {
	out := make([]Event, len(r.phases))
	copy(out, r.phases)
	return out
}

// InFlight returns how many queries are currently buffered.
func (r *FlightRecorder) InFlight() int { return len(r.active) }

// KeptOverflow counts unconditional retentions discarded by Policy.MaxKeep.
func (r *FlightRecorder) KeptOverflow() uint64 { return r.keptOverflow }

// slowLess reports whether heap entry (aLat, aQ) ranks strictly below a
// candidate (lat, q): the candidate displaces the minimum iff it is
// strictly slower, or equally slow with a smaller query id (earlier
// queries win exact ties, keeping the selection deterministic).
func slowLess(aLat sim.Time, aQ uint64, lat sim.Time, q uint64) bool {
	if aLat != lat {
		return aLat < lat
	}
	return q < aQ
}

// slowHeap is a min-heap of retained traces keyed by (Latency, then
// descending Query), so the root is always the entry the next slower
// candidate evicts.
type slowHeap []*QueryTrace

func (h slowHeap) less(i, j int) bool {
	if h[i].Latency != h[j].Latency {
		return h[i].Latency < h[j].Latency
	}
	return h[i].Query > h[j].Query
}

func (h *slowHeap) push(t *QueryTrace) {
	*h = append(*h, t)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

// replaceMin swaps the heap minimum for t and returns the evicted entry.
func (h *slowHeap) replaceMin(t *QueryTrace) *QueryTrace {
	old := (*h)[0]
	(*h)[0] = t
	i, n := 0, len(*h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return old
}
