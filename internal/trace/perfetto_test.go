package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/p2prepro/locaware/internal/sim"
)

// TestWritePerfettoShape locks the Chrome trace-event export: the document
// parses, every participating peer gets a thread_name metadata event whose
// args.name labels the track (the field viewers actually read), every span
// is a complete ("X") event with a non-zero duration on its landing peer's
// track, and phase entries become global instants.
func TestWritePerfettoShape(t *testing.T) {
	t0 := sim.Second
	events := []Event{
		{At: t0, Kind: QuerySubmit, Query: 1, Peer: 0, From: -1, Detail: "q{a}"},
		{At: t0, Kind: QueryForward, Query: 1, Peer: 1, From: 0},
		{At: t0 + 10*sim.Millisecond, Kind: QueryForward, Query: 1, Peer: 2, From: 1},
		{At: t0 + 25*sim.Millisecond, Kind: StorageHit, Query: 1, Peer: 2, From: -1},
		{At: t0 + 40*sim.Millisecond, Kind: DownloadComplete, Query: 1, Peer: 0, From: 2},
	}
	tree := BuildSpanTree(1, events, sim.Millisecond)
	if tree == nil {
		t.Fatal("no tree")
	}
	phases := []Event{{At: t0 + 5*sim.Millisecond, Kind: PhaseEnter, Detail: "surge"}}

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, []*SpanTree{tree}, phases); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Tid  int    `json:"tid"`
			S    string `json:"s"`
			Args *struct {
				Name  string `json:"name"`
				Query uint64 `json:"query"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, complete, instants int
	namedTracks := map[int]string{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if e.Name != "thread_name" || e.Args == nil || e.Args.Name == "" {
				t.Fatalf("metadata event without args.name: %+v", e)
			}
			namedTracks[e.Tid] = e.Args.Name
		case "X":
			complete++
			if e.Dur < 1 {
				t.Fatalf("zero-width complete event: %+v", e)
			}
			if e.Args == nil || e.Args.Query != 1 {
				t.Fatalf("span without query annotation: %+v", e)
			}
		case "i":
			instants++
			if e.Name != "surge" || e.S != "g" {
				t.Fatalf("phase instant = %+v", e)
			}
		}
	}
	// Peers 0, 1, 2 participate.
	if meta != 3 {
		t.Fatalf("thread_name tracks = %d, want 3", meta)
	}
	// Every X event must land on a named track.
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			if _, ok := namedTracks[e.Tid]; !ok {
				t.Fatalf("span on unnamed track %d", e.Tid)
			}
		}
	}
	if complete != tree.Spans {
		t.Fatalf("complete events = %d, want one per span = %d", complete, tree.Spans)
	}
	if instants != 1 {
		t.Fatalf("instants = %d, want 1", instants)
	}
}

// TestWritePerfettoDeterministic locks byte-stability: the same trees
// export to the same bytes, so a golden file can pin the format.
func TestWritePerfettoDeterministic(t *testing.T) {
	mk := func() *bytes.Buffer {
		t0 := sim.Second
		events := []Event{
			{At: t0, Kind: QuerySubmit, Query: 3, Peer: 4, From: -1},
			{At: t0, Kind: QueryForward, Query: 3, Peer: 9, From: 4},
			{At: t0 + 20*sim.Millisecond, Kind: QueryFailed, Query: 3, Peer: 4, From: -1},
		}
		tree := BuildSpanTree(3, events, sim.Millisecond)
		var buf bytes.Buffer
		if err := WritePerfetto(&buf, []*SpanTree{tree}, nil); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	a, b := mk(), mk()
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("export not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestWritePerfettoEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v", err)
	}
}
