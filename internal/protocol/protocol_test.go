package protocol

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/p2prepro/locaware/internal/cache"
	"github.com/p2prepro/locaware/internal/keywords"
	"github.com/p2prepro/locaware/internal/metrics"
	"github.com/p2prepro/locaware/internal/netmodel"
	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/sim"
	"github.com/p2prepro/locaware/internal/trace"
)

// testNet builds a deterministic network: explicit positions, explicit
// edges, corner landmarks, configurable behaviour.
func testNet(t *testing.T, b Behavior, pts []netmodel.Point, edges [][2]int, cfg Config) *Network {
	t.Helper()
	// Unit tests assert on individual query records, so run the collector
	// in full-fidelity mode.
	cfg.Collector.RetainRecords = true
	eng := sim.NewEngine()
	model := netmodel.NewModel(pts, 1000, netmodel.LatencyConfig{MinRTT: 10, MaxRTT: 500}, 0)
	lm := netmodel.FixedLandmarks([]netmodel.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}, {X: 0, Y: 1000}, {X: 1000, Y: 1000}})
	loc := netmodel.NewLocator(model, lm)
	g := overlay.NewGraph(len(pts))
	for _, e := range edges {
		if err := g.AddLink(overlay.PeerID(e[0]), overlay.PeerID(e[1])); err != nil {
			t.Fatalf("link %v: %v", e, err)
		}
	}
	gidRng := rand.New(rand.NewSource(1))
	protoRng := rand.New(rand.NewSource(2))
	return NewNetwork(eng, g, model, loc, b, cfg, gidRng, protoRng)
}

// linePoints lays n peers on a horizontal line, spaced apart.
func linePoints(n int) []netmodel.Point {
	pts := make([]netmodel.Point, n)
	for i := range pts {
		pts[i] = netmodel.Point{X: float64(i) * 900 / float64(n), Y: 100}
	}
	return pts
}

// lineEdges connects 0-1-2-...-n-1.
func lineEdges(n int) [][2]int {
	var es [][2]int
	for i := 0; i+1 < n; i++ {
		es = append(es, [2]int{i, i + 1})
	}
	return es
}

func fname(kws ...keywords.Keyword) keywords.Filename { return keywords.NewFilename(kws...) }

func runAll(net *Network) {
	net.Engine.Run(0)
}

func TestFloodingFindsStorageHit(t *testing.T) {
	cfg := DefaultConfig()
	net := testNet(t, Flooding{}, linePoints(5), lineEdges(5), cfg)
	f := fname("needle", "in", "stack")
	net.Node(4).AddFile(f)

	net.SubmitQuery(0, keywords.NewQuery("needle"))
	runAll(net)
	net.FlushPending()

	c := net.Collector
	if c.Submitted() != 1 {
		t.Fatalf("submitted = %d", c.Submitted())
	}
	if c.SuccessRate() != 1 {
		t.Fatal("query should succeed over a 4-hop line within TTL 7")
	}
	recs := c.Records()
	if recs[0].Hops != 4 {
		t.Fatalf("hops = %d, want 4", recs[0].Hops)
	}
	// Line of 5: 4 query forwards + 4 response hops = 8 messages.
	if recs[0].Messages != 8 {
		t.Fatalf("messages = %d, want 8", recs[0].Messages)
	}
	// The requester became a provider (natural replication, §3.1).
	if !net.Node(0).HasFile(f) {
		t.Fatal("requester did not become a provider")
	}
}

func TestFloodingTTLBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TTL = 3
	net := testNet(t, Flooding{}, linePoints(6), lineEdges(6), cfg)
	net.Node(5).AddFile(fname("far"))
	net.SubmitQuery(0, keywords.NewQuery("far"))
	runAll(net)
	net.FlushPending()
	if net.Collector.SuccessRate() != 0 {
		t.Fatal("TTL 3 must not reach 5 hops away")
	}
	// Messages: exactly TTL forwards down the line.
	if got := net.Collector.Records()[0].Messages; got != 3 {
		t.Fatalf("messages = %d, want 3", got)
	}
}

func TestFloodingDuplicateSuppression(t *testing.T) {
	// Diamond: 0-1, 0-2, 1-3, 2-3. Node 3 receives the query twice but
	// must process it once; total sends still counted.
	cfg := DefaultConfig()
	net := testNet(t, Flooding{}, []netmodel.Point{{X: 100, Y: 100}, {X: 200, Y: 50}, {X: 200, Y: 150}, {X: 300, Y: 100}},
		[][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, cfg)
	net.Node(3).AddFile(fname("dup"))
	net.SubmitQuery(0, keywords.NewQuery("dup"))
	runAll(net)
	net.FlushPending()
	recs := net.Collector.Records()
	if !recs[0].Success {
		t.Fatal("diamond search failed")
	}
	// 0→1, 0→2 (2 msgs); 1→3, 2→3 (2 msgs); node 3 answers once; response
	// 2 hops. Second arrival at 3 is suppressed (no further traffic).
	// Also 1→... and 2→... only have neighbor 3 beyond sender. Total = 4
	// query + 2 response = 6.
	if recs[0].Messages != 6 {
		t.Fatalf("messages = %d, want 6", recs[0].Messages)
	}
}

func TestLocalStorageHitIsFree(t *testing.T) {
	cfg := DefaultConfig()
	net := testNet(t, Flooding{}, linePoints(3), lineEdges(3), cfg)
	f := fname("mine")
	net.Node(0).AddFile(f)
	net.SubmitQuery(0, keywords.NewQuery("mine"))
	runAll(net)
	net.FlushPending()
	rec := net.Collector.Records()[0]
	if !rec.Success || rec.Messages != 0 || rec.DownloadRTT != 0 {
		t.Fatalf("local hit: %+v", rec)
	}
}

func TestQueryFailureRecorded(t *testing.T) {
	cfg := DefaultConfig()
	net := testNet(t, Flooding{}, linePoints(3), lineEdges(3), cfg)
	net.SubmitQuery(0, keywords.NewQuery("absent"))
	runAll(net)
	net.FlushPending()
	rec := net.Collector.Records()[0]
	if rec.Success {
		t.Fatal("phantom success")
	}
	if rec.Messages != 2 {
		t.Fatalf("messages = %d, want 2 (line flood)", rec.Messages)
	}
}

func TestDicasCachingGidPlacement(t *testing.T) {
	cfg := DefaultConfig()
	net := testNet(t, Dicas{}, linePoints(5), lineEdges(5), cfg)
	f := fname("dicas", "file")
	net.Node(4).AddFile(f)
	want := gidOfName(f.String(), cfg.GroupCount)
	// Arrange Gids: nodes 1 and 3 match, 2 does not.
	net.Node(0).Gid = (want + 1) % cfg.GroupCount
	net.Node(1).Gid = want
	net.Node(2).Gid = (want + 1) % cfg.GroupCount
	net.Node(3).Gid = want
	net.Node(4).Gid = (want + 1) % cfg.GroupCount

	// Full-filename query (Dicas's intended mode) so routing is correct.
	net.SubmitQuery(0, keywords.NewQuery(f.Keywords()...))
	runAll(net)
	net.FlushPending()
	if net.Collector.SuccessRate() != 1 {
		t.Fatal("dicas full-filename query failed on a line")
	}
	now := net.Engine.Now()
	if ps := net.Node(1).RI.Providers(f, now); len(ps) != 1 || ps[0].Peer != 4 {
		t.Fatalf("node1 (matching gid) cache = %+v", ps)
	}
	if ps := net.Node(3).RI.Providers(f, now); len(ps) != 1 {
		t.Fatalf("node3 (matching gid) cache = %+v", ps)
	}
	if ps := net.Node(2).RI.Providers(f, now); ps != nil {
		t.Fatalf("node2 (non-matching gid) cached: %+v", ps)
	}
}

func TestDicasSingleProviderPerFile(t *testing.T) {
	cfg := DefaultConfig()
	net := testNet(t, Dicas{}, linePoints(3), lineEdges(3), cfg)
	f := fname("single")
	n1 := net.Node(1)
	n1.Gid = gidOfName(f.String(), cfg.GroupCount)
	rsp := &ResponseMsg{
		File: f,
		Providers: []cache.Provider{
			{Peer: 2, LocID: 1}, {Peer: 0, LocID: 2},
		},
		Origin: 0,
	}
	Dicas{}.CacheResponse(net, n1, rsp)
	ps := n1.RI.Providers(f, net.Engine.Now())
	if len(ps) != 1 {
		t.Fatalf("dicas cached %d providers, want 1", len(ps))
	}
}

func TestDicasRoutingMisledByPartialQuery(t *testing.T) {
	// gidOfQuery equals gidOfName only when the query carries all keywords.
	f := fname("aaa", "bbb", "ccc")
	m := 64 // large M to make accidental collisions unlikely
	full := keywords.NewQuery(f.Keywords()...)
	if gidOfQuery(full, m) != gidOfName(f.String(), m) {
		t.Fatal("full-filename query must hash like the filename")
	}
	partial := keywords.NewQuery("aaa")
	if gidOfQuery(partial, m) == gidOfName(f.String(), m) {
		t.Fatal("partial query accidentally matches (improbable with M=64); mechanism broken")
	}
}

func TestDicasKeysCachesPerQueryKeyword(t *testing.T) {
	cfg := DefaultConfig()
	net := testNet(t, DicasKeys{}, linePoints(4), lineEdges(4), cfg)
	f := fname("kx", "ky", "kz")
	q := keywords.NewQuery("kx", "ky")
	n1, n2 := net.Node(1), net.Node(2)
	n1.Gid = gidOfKeyword("kx", cfg.GroupCount)
	// Give node2 a gid matching neither query keyword.
	g2 := 0
	for g2 == gidOfKeyword("kx", cfg.GroupCount) || g2 == gidOfKeyword("ky", cfg.GroupCount) {
		g2++
	}
	n2.Gid = g2

	rsp := &ResponseMsg{File: f, QueryKws: q, Providers: []cache.Provider{{Peer: 3, LocID: 0}}}
	DicasKeys{}.CacheResponse(net, n1, rsp)
	DicasKeys{}.CacheResponse(net, n2, rsp)
	now := net.Engine.Now()
	if n1.RI.Providers(f, now) == nil {
		t.Fatal("keyword-group node did not cache")
	}
	if n2.RI.Providers(f, now) != nil {
		t.Fatal("non-matching node cached")
	}
}

func TestLocawareCachesProvidersAndRequester(t *testing.T) {
	cfg := DefaultConfig()
	net := testNet(t, Locaware{}, linePoints(5), lineEdges(5), cfg)
	f := fname("loc", "aware")
	n2 := net.Node(2)
	n2.Gid = gidOfName(f.String(), cfg.GroupCount)
	rsp := &ResponseMsg{
		File:      f,
		Providers: []cache.Provider{{Peer: 4, LocID: 7}},
		Origin:    0,
		OriginLoc: 3,
	}
	Locaware{}.CacheResponse(net, n2, rsp)
	ps := n2.RI.Providers(f, net.Engine.Now())
	if len(ps) != 2 {
		t.Fatalf("cached %d providers, want provider+requester: %+v", len(ps), ps)
	}
	foundOrigin := false
	for _, p := range ps {
		if p.Peer == 0 && p.LocID == 3 {
			foundOrigin = true
		}
	}
	if !foundOrigin {
		t.Fatal("requester not cached as new provider (§4.1.2)")
	}
}

func TestLocawareOnAnswerAddsRequester(t *testing.T) {
	cfg := DefaultConfig()
	net := testNet(t, Locaware{}, linePoints(3), lineEdges(3), cfg)
	f := fname("ans")
	n1 := net.Node(1)
	n1.Gid = gidOfName(f.String(), cfg.GroupCount)
	q := &QueryMsg{Origin: 2, OriginLoc: 9, Q: keywords.NewQuery("ans")}
	Locaware{}.OnAnswer(net, n1, q, f)
	ps := n1.RI.Providers(f, net.Engine.Now())
	if len(ps) != 1 || ps[0].Peer != 2 || ps[0].LocID != 9 {
		t.Fatalf("OnAnswer cache = %+v", ps)
	}
	// Non-matching gid: no insertion.
	n0 := net.Node(0)
	n0.Gid = (n1.Gid + 1) % cfg.GroupCount
	Locaware{}.OnAnswer(net, n0, q, f)
	if n0.RI.Providers(f, net.Engine.Now()) != nil {
		t.Fatal("non-matching gid node cached on answer")
	}
}

func TestLocawareSelectProviderPrefersLocality(t *testing.T) {
	cfg := DefaultConfig()
	// Requester at origin corner; two providers: same locId far away in
	// list, different locId first.
	pts := []netmodel.Point{{X: 50, Y: 50}, {X: 900, Y: 900}, {X: 60, Y: 60}}
	net := testNet(t, Locaware{}, pts, [][2]int{{0, 1}, {1, 2}}, cfg)
	req := net.Node(0)
	provs := []cache.Provider{
		{Peer: 1, LocID: req.Loc + 1},
		{Peer: 2, LocID: req.Loc},
	}
	got, ok := Locaware{}.SelectProvider(net, req, provs)
	if !ok || got.Peer != 2 {
		t.Fatalf("locality preference failed: %+v", got)
	}
}

func TestLocawareSelectProviderMinRTTFallback(t *testing.T) {
	cfg := DefaultConfig()
	pts := []netmodel.Point{{X: 50, Y: 50}, {X: 900, Y: 900}, {X: 100, Y: 100}}
	net := testNet(t, Locaware{}, pts, [][2]int{{0, 1}, {1, 2}}, cfg)
	req := net.Node(0)
	// Neither provider shares the requester's locId; peer 2 is closer.
	provs := []cache.Provider{
		{Peer: 1, LocID: req.Loc + 1},
		{Peer: 2, LocID: req.Loc + 2},
	}
	got, ok := Locaware{}.SelectProvider(net, req, provs)
	if !ok || got.Peer != 2 {
		t.Fatalf("min-RTT fallback failed: got peer %d", got.Peer)
	}
	if _, ok := (Locaware{}).SelectProvider(net, req, nil); ok {
		t.Fatal("empty provider list should fail")
	}
}

func TestBloomGossipAndRouting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BloomGossipPeriod = 5 * sim.Second
	net := testNet(t, Locaware{}, linePoints(4), lineEdges(4), cfg)
	f := fname("bloomy", "file")
	n2 := net.Node(2)
	n2.Gid = gidOfName(f.String(), cfg.GroupCount)
	n2.RI.Put(f, 3, 0, 0)

	// Before gossip, node 2's published BF is empty -> no match.
	q := &QueryMsg{Origin: 0, Q: keywords.NewQuery("bloomy"), TTL: 7, Path: []overlay.PeerID{0, 1}}
	n1 := net.Node(1)
	targets := Locaware{}.Forward(net, n1, q, 0)
	for _, tgt := range targets {
		if tgt == 2 {
			if bf := n2.PublishedBloom(); bf.TestAll([]string{"bloomy"}) {
				t.Fatal("published BF should be empty before gossip")
			}
		}
	}
	// Run past one gossip period; now BF matches and routing prefers 2.
	net.Engine.RunUntil(6*sim.Second, 0)
	targets = Locaware{}.Forward(net, n1, q, 0)
	if len(targets) != 1 || targets[0] != 2 {
		t.Fatalf("BF routing targets = %v, want [2]", targets)
	}
	if net.ControlMessages() == 0 {
		t.Fatal("gossip produced no control messages")
	}
	if net.ControlBits() == 0 {
		t.Fatal("gossip accounted no delta bits")
	}
}

func TestLocawareEndToEndCacheHit(t *testing.T) {
	// First query populates caches, second query (from a different peer)
	// must hit a cached index before reaching storage.
	cfg := DefaultConfig()
	cfg.BloomGossipPeriod = time1s()
	net := testNet(t, Locaware{}, linePoints(6), lineEdges(6), cfg)
	f := fname("pop", "song")
	net.Node(5).AddFile(f)
	// Make middle nodes cache-eligible.
	want := gidOfName(f.String(), cfg.GroupCount)
	for i := overlay.PeerID(1); i <= 4; i++ {
		net.Node(i).Gid = want
	}
	net.SubmitQuery(0, keywords.NewQuery("pop"))
	net.Engine.RunUntil(40*sim.Second, 0)
	// Caches along the path now hold f with providers {5, 0}.
	cached := 0
	for i := overlay.PeerID(1); i <= 4; i++ {
		if net.Node(i).RI.Providers(f, net.Engine.Now()) != nil {
			cached++
		}
	}
	if cached == 0 {
		t.Fatal("no reverse-path node cached the response")
	}
	before := net.Collector.Submitted()
	_ = before
	net.SubmitQuery(1, keywords.NewQuery("song"))
	net.Engine.RunUntil(80*sim.Second, 0)
	net.FlushPending()
	recs := net.Collector.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if !recs[1].Success {
		t.Fatal("second query failed despite cached indexes")
	}
	if recs[1].Messages >= recs[0].Messages+3 {
		t.Fatalf("cached query not cheaper: first=%d second=%d", recs[0].Messages, recs[1].Messages)
	}
}

func time1s() sim.Time { return sim.Second }

func TestChurnOfflineProvidersFiltered(t *testing.T) {
	cfg := DefaultConfig()
	net := testNet(t, Locaware{}, linePoints(4), lineEdges(4), cfg)
	req := net.Node(0)
	provs := []cache.Provider{{Peer: 3, LocID: req.Loc}}
	net.Graph.Leave(3)
	if live := net.liveProviders(net.states[0], provs); len(live) != 0 {
		t.Fatal("offline provider not filtered")
	}
	if _, ok := (Locaware{}).SelectProvider(net, req, net.liveProviders(net.states[0], provs)); ok {
		t.Fatal("selection should fail with all providers offline")
	}
}

func TestOfflineOriginDropsQuery(t *testing.T) {
	cfg := DefaultConfig()
	net := testNet(t, Flooding{}, linePoints(3), lineEdges(3), cfg)
	net.Graph.Leave(0)
	net.SubmitQuery(0, keywords.NewQuery("x"))
	runAll(net)
	net.FlushPending()
	rec := net.Collector.Records()[0]
	if rec.Success || rec.Messages != 0 {
		t.Fatalf("offline origin should produce a dead query: %+v", rec)
	}
}

func TestFinalizeSealsRecordOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FinalizeAfter = 5 * sim.Second
	net := testNet(t, Flooding{}, linePoints(3), lineEdges(3), cfg)
	net.Node(2).AddFile(fname("seal"))
	id := net.SubmitQuery(0, keywords.NewQuery("seal"))
	runAll(net)
	if net.Collector.Submitted() != 1 {
		t.Fatalf("submitted = %d", net.Collector.Submitted())
	}
	net.finalize(net.states[0], id) // idempotent
	net.FlushPending()
	if net.Collector.Submitted() != 1 {
		t.Fatal("double finalisation")
	}
}

func TestHighestDegreeNeighborFallback(t *testing.T) {
	// Star: 1 is the hub (degree 3); from node 0, fallback must pick 1.
	cfg := DefaultConfig()
	pts := []netmodel.Point{{X: 100, Y: 100}, {X: 200, Y: 100}, {X: 300, Y: 100}, {X: 200, Y: 200}, {X: 50, Y: 50}}
	edges := [][2]int{{0, 1}, {1, 2}, {1, 3}, {0, 4}}
	net := testNet(t, Dicas{}, pts, edges, cfg)
	n0 := net.Node(0)
	q := &QueryMsg{Origin: 0, Q: keywords.NewQuery("zzz"), TTL: 7, Path: []overlay.PeerID{0}}
	nb, ok := net.highestDegreeNeighbor(n0, q, -1)
	if !ok || nb != 1 {
		t.Fatalf("fallback = %d,%v, want 1", nb, ok)
	}
	// Exclude the hub via path; falls to 4.
	q2 := &QueryMsg{Origin: 0, Q: keywords.NewQuery("zzz"), TTL: 7, Path: []overlay.PeerID{0, 1}}
	nb, ok = net.highestDegreeNeighbor(n0, q2, -1)
	if !ok || nb != 4 {
		t.Fatalf("fallback with exclusion = %d,%v, want 4", nb, ok)
	}
}

func TestOrderProvidersForOrigin(t *testing.T) {
	cfg := DefaultConfig()
	net := testNet(t, Locaware{}, linePoints(2), lineEdges(2), cfg)
	ps := []cache.Provider{
		{Peer: 1, LocID: 5},
		{Peer: 2, LocID: 3},
		{Peer: 3, LocID: 5},
		{Peer: 4, LocID: 1},
	}
	got := net.orderProvidersForOrigin(nil, ps, 5)
	if got[0].LocID != 5 || got[1].LocID != 5 {
		t.Fatalf("locality entries not first: %+v", got)
	}
	if len(got) != 4 {
		t.Fatalf("providers lost: %d", len(got))
	}
}

func TestSelectIndexMatchPrefersOriginLocality(t *testing.T) {
	cfg := DefaultConfig()
	net := testNet(t, Locaware{}, linePoints(2), lineEdges(2), cfg)
	q := &QueryMsg{OriginLoc: 7}
	ms := []cache.Match{
		{File: fname("many"), Providers: []cache.Provider{{Peer: 1, LocID: 1}, {Peer: 2, LocID: 2}, {Peer: 3, LocID: 3}}},
		{File: fname("right"), Providers: []cache.Provider{{Peer: 4, LocID: 7}}},
	}
	got := net.selectIndexMatch(ms, q)
	if got.File.String() != "right" {
		t.Fatalf("selected %q, want locality match", got.File.String())
	}
}

func TestBehaviorNamesAndBloomFlags(t *testing.T) {
	cases := []struct {
		b     Behavior
		name  string
		bloom bool
	}{
		{Flooding{}, "Flooding", false},
		{Dicas{}, "Dicas", false},
		{DicasKeys{}, "Dicas-Keys", false},
		{Locaware{}, "Locaware", true},
		{LocawareLR{}, "Locaware-LR", true},
	}
	for _, c := range cases {
		if c.b.Name() != c.name {
			t.Errorf("Name = %q, want %q", c.b.Name(), c.name)
		}
		if c.b.UsesBloom() != c.bloom {
			t.Errorf("%s UsesBloom = %v", c.name, c.b.UsesBloom())
		}
	}
}

func TestCacheConfigAdaptation(t *testing.T) {
	base := cache.DefaultConfig()
	if got := (Dicas{}).CacheConfig(base); got.MaxProvidersPerFile != 1 {
		t.Fatal("dicas should keep one provider per file")
	}
	if got := (DicasKeys{}).CacheConfig(base); got.MaxProvidersPerFile != 1 {
		t.Fatal("dicas-keys should keep one provider per file")
	}
	if got := (Locaware{}).CacheConfig(base); got.MaxProvidersPerFile != base.MaxProvidersPerFile {
		t.Fatal("locaware should keep multi-provider bound")
	}
	if got := (Flooding{}).CacheConfig(base); got.MaxFilenames != 1 {
		t.Fatal("flooding cache should be degenerate")
	}
}

func TestLocawareLRPrefersSameLocality(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BloomGossipPeriod = sim.Second
	// Peers 1 and 2 both neighbours of 0; 2 shares origin's locality.
	pts := []netmodel.Point{{X: 50, Y: 50}, {X: 900, Y: 900}, {X: 60, Y: 60}}
	net := testNet(t, LocawareLR{}, pts, [][2]int{{0, 1}, {0, 2}}, cfg)
	f := fname("lr", "test")
	for _, i := range []overlay.PeerID{1, 2} {
		n := net.Node(i)
		n.Gid = gidOfName(f.String(), cfg.GroupCount)
		n.RI.Put(f, overlay.PeerID(i), n.Loc, 0)
	}
	net.Engine.RunUntil(2*sim.Second, 0) // publish blooms
	q := &QueryMsg{Origin: 0, OriginLoc: net.Node(0).Loc, Q: keywords.NewQuery("lr"), TTL: 7, Path: []overlay.PeerID{0}}
	targets := LocawareLR{}.Forward(net, net.Node(0), q, 0)
	if len(targets) != 1 || targets[0] != 2 {
		t.Fatalf("LR targets = %v, want same-locality [2]", targets)
	}
}

func TestGidHelpers(t *testing.T) {
	m := 8
	f := fname("k1", "k2", "k3")
	g := gidOfName(f.String(), m)
	if g < 0 || g >= m {
		t.Fatalf("gid %d out of range", g)
	}
	if gidOfName(f.String(), m) != g {
		t.Fatal("gid not deterministic")
	}
	if gidOfKeyword("k1", m) < 0 || gidOfKeyword("k1", m) >= m {
		t.Fatal("keyword gid out of range")
	}
}

func TestNetworkStringAndAccessors(t *testing.T) {
	cfg := DefaultConfig()
	net := testNet(t, Locaware{}, linePoints(3), lineEdges(3), cfg)
	if net.String() == "" {
		t.Fatal("empty String")
	}
	if len(net.Nodes()) != 3 {
		t.Fatal("Nodes accessor broken")
	}
	if net.Node(1).ID != 1 {
		t.Fatal("Node accessor broken")
	}
	if net.Node(0).NumFiles() != 0 {
		t.Fatal("fresh node has files")
	}
}

func TestTracingLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	net := testNet(t, Flooding{}, linePoints(4), lineEdges(4), cfg)
	buf := trace.NewBuffer(1000)
	net.SetTracer(buf)
	f := fname("traced", "file")
	net.Node(3).AddFile(f)
	net.SubmitQuery(0, keywords.NewQuery("traced"))
	runAll(net)
	net.FlushPending()

	if buf.CountKind(trace.QuerySubmit) != 1 {
		t.Fatalf("submits = %d", buf.CountKind(trace.QuerySubmit))
	}
	if buf.CountKind(trace.QueryForward) != 3 {
		t.Fatalf("forwards = %d, want 3 (line)", buf.CountKind(trace.QueryForward))
	}
	if buf.CountKind(trace.StorageHit) != 1 {
		t.Fatalf("storage hits = %d", buf.CountKind(trace.StorageHit))
	}
	if buf.CountKind(trace.ResponseHop) != 3 {
		t.Fatalf("response hops = %d", buf.CountKind(trace.ResponseHop))
	}
	if buf.CountKind(trace.DownloadComplete) != 1 {
		t.Fatalf("downloads = %d", buf.CountKind(trace.DownloadComplete))
	}
	if buf.CountKind(trace.QueryFailed) != 0 {
		t.Fatal("successful query traced as failed")
	}
	// Events for query 1 are a coherent story in time order.
	evs := buf.ForQuery(1)
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("trace not in time order")
		}
	}
}

func TestTracingFailureAndDuplicate(t *testing.T) {
	cfg := DefaultConfig()
	// Diamond so node 3 sees a duplicate.
	net := testNet(t, Flooding{}, []netmodel.Point{{X: 100, Y: 100}, {X: 200, Y: 50}, {X: 200, Y: 150}, {X: 300, Y: 100}},
		[][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, cfg)
	buf := trace.NewBuffer(1000)
	net.SetTracer(buf)
	net.SubmitQuery(0, keywords.NewQuery("absent"))
	runAll(net)
	net.FlushPending()
	if buf.CountKind(trace.QueryFailed) != 1 {
		t.Fatalf("failed = %d", buf.CountKind(trace.QueryFailed))
	}
	if buf.CountKind(trace.QueryDuplicate) == 0 {
		t.Fatal("diamond should produce a duplicate delivery")
	}
}

func TestTracingGossip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BloomGossipPeriod = 2 * sim.Second
	net := testNet(t, Locaware{}, linePoints(3), lineEdges(3), cfg)
	buf := trace.NewBuffer(1000)
	net.SetTracer(buf)
	f := fname("gossiped")
	n1 := net.Node(1)
	n1.Gid = gidOfName(f.String(), cfg.GroupCount)
	n1.RI.Put(f, 2, 0, 0)
	net.Engine.RunUntil(3*sim.Second, 0)
	if buf.CountKind(trace.BloomGossip) == 0 {
		t.Fatal("no gossip events traced")
	}
	// Neighbour copies installed after delivery.
	if net.Node(0).NeighborBloom(1) == nil {
		t.Fatal("neighbour BF copy not installed")
	}
	if net.Node(0).NeighborBloom(2) != nil {
		t.Fatal("non-neighbour BF copy installed")
	}
}

func TestResetCollectorIsolatesInFlightQueries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FinalizeAfter = 10 * sim.Second
	net := testNet(t, Flooding{}, linePoints(4), lineEdges(4), cfg)
	net.Node(3).AddFile(fname("late"))
	net.SubmitQuery(0, keywords.NewQuery("late"))
	// Swap collectors while the query is still in flight.
	old := net.ResetCollector()
	runAll(net)
	net.FlushPending()
	if old.Submitted() != 1 {
		t.Fatalf("in-flight query leaked out of its collector: old=%d", old.Submitted())
	}
	if net.Collector.Submitted() != 0 {
		t.Fatalf("new collector contaminated: %d", net.Collector.Submitted())
	}
}

func TestFallbackFanoutRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FallbackFanout = 3
	// Star: node 0 has 4 neighbours, none matching any predicate for an
	// absent keyword, so fallback fires.
	pts := []netmodel.Point{{X: 100, Y: 100}, {X: 200, Y: 100}, {X: 150, Y: 200}, {X: 50, Y: 200}, {X: 100, Y: 20}}
	edges := [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}
	net := testNet(t, Dicas{}, pts, edges, cfg)
	// Force all neighbours to a non-matching Gid.
	q := &QueryMsg{Origin: 0, Q: keywords.NewQuery("zzz"), TTL: 7, Path: []overlay.PeerID{0}}
	want := gidOfQuery(q.Q, cfg.GroupCount)
	for i := 1; i <= 4; i++ {
		net.Node(overlay.PeerID(i)).Gid = (want + 1) % cfg.GroupCount
	}
	targets := Dicas{}.Forward(net, net.Node(0), q, -1)
	if len(targets) != 3 {
		t.Fatalf("fallback fanout produced %d targets, want 3", len(targets))
	}
	seen := map[overlay.PeerID]bool{}
	for _, tg := range targets {
		if seen[tg] {
			t.Fatal("duplicate fallback target")
		}
		seen[tg] = true
	}
}

func TestDicasKeysRoutingKeyword(t *testing.T) {
	q := keywords.NewQuery("zeta", "alpha")
	if routingKeyword(q) != "alpha" {
		t.Fatalf("routing keyword = %q, want canonical first", routingKeyword(q))
	}
	if routingKeyword(keywords.Query{}) != "" {
		t.Fatal("empty query routing keyword should be empty")
	}
}

func TestConfigFallbacks(t *testing.T) {
	eng := sim.NewEngine()
	pts := linePoints(2)
	model := netmodel.NewModel(pts, 1000, netmodel.LatencyConfig{MinRTT: 10, MaxRTT: 500}, 0)
	lm := netmodel.FixedLandmarks([]netmodel.Point{{X: 0, Y: 0}, {X: 1000, Y: 1000}})
	loc := netmodel.NewLocator(model, lm)
	g := overlay.NewGraph(2)
	_ = g.AddLink(0, 1)
	net := NewNetwork(eng, g, model, loc, Flooding{}, Config{}, rand.New(rand.NewSource(1)), rand.New(rand.NewSource(2)))
	if net.Config.TTL != 7 || net.Config.GroupCount != 4 {
		t.Fatalf("fallbacks not applied: %+v", net.Config)
	}
}

// TestStaleBloomInstallFallsBack locks the announce-buffer generation
// guard: an install event that outlives two gossip rounds (its buffer was
// reused in flight) never applies the torn buffer — it installs a copy of
// the sender's current published filter instead and is counted, so the
// neighbour's view stays a valid snapshot and gossip stays convergent.
func TestStaleBloomInstallFallsBack(t *testing.T) {
	net := testNet(t, Locaware{}, linePoints(2), lineEdges(2), Config{BloomGossipPeriod: 0})
	n := net.Node(0)
	n.cbf.Add("alpha")
	if _, err := n.PublishBloom(); err != nil {
		t.Fatal(err)
	}
	snap, gen := n.announceSnapshot()
	ev := net.states[0].acquireBloomInstall(net, 1, 0, snap, gen)
	// Two more rounds reuse both buffers before the event fires; the
	// second also publishes newer content ("beta").
	n.announceSnapshot()
	n.cbf.Add("beta")
	if _, err := n.PublishBloom(); err != nil {
		t.Fatal(err)
	}
	n.announceSnapshot()
	ev.Fire(net.Engine)
	if got := net.StaleBloomFallbacks(); got != 1 {
		t.Fatalf("StaleBloomFallbacks = %d, want 1", got)
	}
	got := net.Node(1).NeighborBloom(0)
	if got == nil {
		t.Fatal("stale install dropped entirely; want fallback to published")
	}
	if !got.Equal(n.PublishedBloom()) {
		t.Fatal("fallback install does not match the sender's published filter")
	}
	// A fresh install still lands without the fallback counter moving.
	snap, gen = n.announceSnapshot()
	net.states[0].acquireBloomInstall(net, 1, 0, snap, gen).Fire(net.Engine)
	if net.StaleBloomFallbacks() != 1 {
		t.Fatal("fresh install miscounted as stale")
	}
}

// TestFlushPendingDeterministicOrder is the regression lock for the
// end-of-run flush: queries still in flight when a bounded run is cut off
// finalise in ascending QueryID order — not Go's randomised map order — so
// two identical truncated runs produce byte-identical trace output and
// retained records. Before the fix this test was flaky by construction:
// twelve pending queries in one map gave the flush 12! possible orders.
func TestFlushPendingDeterministicOrder(t *testing.T) {
	const queries = 12
	run := func() ([]trace.Event, []metrics.QueryRecord) {
		cfg := DefaultConfig()
		// Finalisation far beyond the cutoff: every query is still in
		// flight when the run stops, so FlushPending seals all of them.
		cfg.FinalizeAfter = 10 * sim.Minute
		net := testNet(t, Flooding{}, linePoints(8), lineEdges(8), cfg)
		buf := trace.NewBuffer(1 << 14)
		net.SetTracer(buf)
		for i := 0; i < queries; i++ {
			net.SubmitQuery(overlay.PeerID(i%8), keywords.NewQuery("no-such-file"))
		}
		net.Engine.RunUntil(5*sim.Second, 0)
		net.FlushPending()
		return buf.Events(), net.Collector.Records()
	}
	ev1, rec1 := run()
	ev2, rec2 := run()
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatal("two identical truncated runs produced different traces")
	}
	if !reflect.DeepEqual(rec1, rec2) {
		t.Fatal("two identical truncated runs produced different records")
	}
	if len(rec1) != queries {
		t.Fatalf("flush sealed %d records, want %d", len(rec1), queries)
	}
	var failed []uint64
	for _, e := range ev1 {
		if e.Kind == trace.QueryFailed {
			failed = append(failed, e.Query)
		}
	}
	if len(failed) != queries {
		t.Fatalf("flush emitted %d failure traces, want %d", len(failed), queries)
	}
	for i := 1; i < len(failed); i++ {
		if failed[i] <= failed[i-1] {
			t.Fatalf("flush finalisation order not ascending by id: %v", failed)
		}
	}
}
