package protocol

import (
	"fmt"
	"math/rand"

	"github.com/p2prepro/locaware/internal/cache"
	"github.com/p2prepro/locaware/internal/keywords"
	"github.com/p2prepro/locaware/internal/metrics"
	"github.com/p2prepro/locaware/internal/netmodel"
	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/sim"
	"github.com/p2prepro/locaware/internal/trace"
)

// Config holds the protocol-plane parameters of §5.1.
type Config struct {
	// TTL bounds query propagation; paper: 7.
	TTL int
	// GroupCount is M, the number of Gid groups (Eq. 1).
	GroupCount int
	// Cache bounds each peer's response index.
	Cache cache.Config
	// BloomBits / BloomK size the keyword Bloom filter; paper: 1200 bits.
	// BloomK values above 16 are clamped (the filter computes its bit
	// positions in a fixed-size stack array; OptimalK never exceeds 16).
	BloomBits, BloomK int
	// BloomGossipPeriod is how often peers push BF updates to neighbours.
	BloomGossipPeriod sim.Time
	// FinalizeAfter is how long after submission a query's record is
	// sealed. It must exceed TTL × max one-way latency + the response trip.
	FinalizeAfter sim.Time
	// ProcessingDelay models per-hop forwarding cost added to link latency.
	ProcessingDelay sim.Time
	// FallbackFanout is how many neighbours a selective protocol falls
	// back to when no neighbour matches its routing predicate (the
	// highest-degree neighbour plus FallbackFanout-1 random others). 1
	// reproduces a pure "highly connected neighbour as a last resort"
	// walk; the default 2 keeps enough branching for the walk to cover a
	// useful fraction of the overlay within TTL.
	FallbackFanout int
	// Collector configures the measurement plane: the streaming checkpoint
	// grid for figure windows and whether full per-query records are
	// retained (see metrics.CollectorConfig). The zero value is a pure
	// streaming collector: O(1) state, scalar metrics only.
	Collector metrics.CollectorConfig
}

// DefaultConfig returns the paper's §5.1 parameters.
func DefaultConfig() Config {
	return Config{
		TTL:               7,
		GroupCount:        4,
		Cache:             cache.DefaultConfig(),
		BloomBits:         1200,
		BloomK:            6,
		BloomGossipPeriod: 30 * sim.Second,
		FinalizeAfter:     30 * sim.Second,
		ProcessingDelay:   sim.Millisecond,
		FallbackFanout:    2,
	}
}

// Behavior is a protocol's decision logic. One Network instance runs one
// behaviour; the figure harness runs a Network per curve.
type Behavior interface {
	// Name identifies the protocol in results.
	Name() string
	// UsesBloom reports whether nodes maintain and gossip Bloom filters.
	UsesBloom() bool
	// CacheConfig adapts the base cache bounds for this protocol (e.g. the
	// Dicas baselines keep a single provider per filename, §5.2: "the
	// response index in Locaware has for each file more possibilities of
	// providers than in Dicas").
	CacheConfig(base cache.Config) cache.Config
	// Forward selects the neighbours of n to forward q to; from is the
	// peer the query arrived from (the origin itself on first hop). The
	// returned slice is consumed before the next Forward call, so
	// implementations may return the network's shared target buffer
	// (Network.targetBuf).
	Forward(net *Network, n *Node, q *QueryMsg, from overlay.PeerID) []overlay.PeerID
	// CacheResponse lets reverse-path node n cache the response per the
	// protocol's placement rule.
	CacheResponse(net *Network, n *Node, rsp *ResponseMsg)
	// OnAnswer runs at the answering node; Locaware inserts the requester
	// as a new provider here (§4.1.2).
	OnAnswer(net *Network, n *Node, q *QueryMsg, f keywords.Filename)
	// SelectProvider picks the download source among the response's
	// providers at the requester. The provs slice is scratch owned by the
	// network; implementations must not retain it.
	SelectProvider(net *Network, requester *Node, provs []cache.Provider) (cache.Provider, bool)
}

// pendingQuery is requester-side bookkeeping for one in-flight query.
// Instances are pooled: finalize returns them to the network's free list.
type pendingQuery struct {
	origin overlay.PeerID
	// col is the collector the query will finalise into; captured at
	// submission so a mid-run collector reset (warmup) does not leak
	// in-flight queries into the measured phase.
	col       *metrics.Collector
	messages  int
	answered  bool
	rtt       float64
	sameLoc   bool
	fromCache bool
	hops      int
	finalized bool
	// visited lists the peers whose duplicate-suppression set holds this
	// query, so finalisation can erase the entries and keep per-node seen
	// state bounded by the in-flight query count instead of the run length.
	visited []overlay.PeerID
}

// ForwardStats counts routing decisions, for diagnosis and the routing
// ablations: how often each selection tier fired.
type ForwardStats struct {
	// BloomMatched counts forwards chosen by a Bloom-filter match.
	BloomMatched uint64
	// GidMatched counts forwards chosen by group-Id match.
	GidMatched uint64
	// Fallback counts last-resort forwards (highest-degree + random).
	Fallback uint64
	// FloodAll counts blind forwards (Flooding only).
	FloodAll uint64
}

// Network binds the substrates and one protocol behaviour into a runnable
// system. It is single-threaded on top of the sim engine.
type Network struct {
	Engine    *sim.Engine
	Graph     *overlay.Graph
	Model     *netmodel.Model
	Locator   *netmodel.Locator
	Behavior  Behavior
	Collector *metrics.Collector
	Config    Config

	// nodes is the flat per-peer state table, allocated in one block at
	// network build (the tendermint-simulator layout: contiguous state,
	// pointer-stable because the slice never grows).
	nodes    []*Node
	nodeArr  []Node
	rng      *rand.Rand
	nextID   QueryID
	pending  map[QueryID]*pendingQuery
	pqFree   []*pendingQuery
	msgFree  []*QueryMsg
	respFree []*ResponseMsg

	// Typed-event pools (see events.go): recycled delivery/finalize/gossip
	// events keep steady-state scheduling allocation-free.
	qdFree  []*queryDeliverEvent
	rdFree  []*responseDeliverEvent
	finFree []*finalizeEvent
	biFree  []*bloomInstallEvent

	// Reusable scratch buffers for the per-event selection loops. Each is
	// filled and fully consumed within one event delivery, so a single
	// instance per network suffices on the single-threaded engine.
	fwdBuf  []overlay.PeerID
	fwdBuf2 []overlay.PeerID
	eligBuf []overlay.PeerID
	restBuf []overlay.PeerID
	fbBuf   []overlay.PeerID
	provBuf []cache.Provider

	// Forwarding tallies routing decisions across the run.
	Forwarding ForwardStats

	// Tracer, when non-nil, receives a structured event for every
	// significant protocol action. Tracing a paper-scale run is cheap
	// with a bounded trace.Buffer.
	Tracer trace.Tracer

	// controlMessages counts Bloom gossip messages; controlBits their
	// encoded payload size (footnote 1 accounting). Kept separate from
	// search traffic, as the paper does.
	controlMessages uint64
	controlBits     uint64
	// staleBloomFallbacks counts gossip installs whose announce buffer was
	// reused before delivery, which fell back to the sender's current
	// published snapshot — zero under any sane configuration (gossip
	// period > 2× link delay).
	staleBloomFallbacks uint64
}

// NewNetwork assembles a network. gidRng draws each node's random Gid;
// protoRng drives protocol tie-breaking.
func NewNetwork(eng *sim.Engine, g *overlay.Graph, m *netmodel.Model, loc *netmodel.Locator,
	b Behavior, cfg Config, gidRng, protoRng *rand.Rand) *Network {
	if cfg.TTL <= 0 {
		cfg.TTL = 7
	}
	if cfg.GroupCount <= 0 {
		cfg.GroupCount = 4
	}
	if cfg.FinalizeAfter <= 0 {
		cfg.FinalizeAfter = 30 * sim.Second
	}
	if cfg.FallbackFanout <= 0 {
		cfg.FallbackFanout = 2
	}
	net := &Network{
		Engine:    eng,
		Graph:     g,
		Model:     m,
		Locator:   loc,
		Behavior:  b,
		Collector: metrics.NewCollectorWith(cfg.Collector),
		Config:    cfg,
		rng:       protoRng,
		pending:   make(map[QueryID]*pendingQuery),
		// Selection scratch: sized past the default MaxDegree (12) so the
		// per-event loops run allocation-free; pathological degrees merely
		// cost a transient grow.
		fwdBuf:  make([]overlay.PeerID, 0, 64),
		fwdBuf2: make([]overlay.PeerID, 0, 64),
		eligBuf: make([]overlay.PeerID, 0, 64),
		restBuf: make([]overlay.PeerID, 0, 64),
		fbBuf:   make([]overlay.PeerID, 0, 64),
		provBuf: make([]cache.Provider, 0, 16),
	}
	cacheCfg := b.CacheConfig(cfg.Cache)
	net.nodeArr = make([]Node, g.N())
	net.nodes = make([]*Node, g.N())
	for i := range net.nodeArr {
		n := &net.nodeArr[i]
		initNode(n, overlay.PeerID(i), gidRng.Intn(cfg.GroupCount),
			loc.LocID(i), cacheCfg, b.UsesBloom(), cfg.BloomBits, cfg.BloomK)
		net.nodes[i] = n
	}
	if b.UsesBloom() && cfg.BloomGossipPeriod > 0 {
		eng.PostEvent(cfg.BloomGossipPeriod,
			&gossipRoundEvent{net: net, period: cfg.BloomGossipPeriod})
	}
	return net
}

// emit sends a trace event when tracing is enabled. detail is built lazily
// so disabled tracing costs one nil check.
func (net *Network) emit(k trace.Kind, query QueryID, peer, from overlay.PeerID, detail func() string) {
	if net.Tracer == nil {
		return
	}
	var d string
	if detail != nil {
		d = detail()
	}
	net.Tracer.Emit(trace.Event{
		At:     net.Engine.Now(),
		Kind:   k,
		Query:  uint64(query),
		Peer:   int(peer),
		From:   int(from),
		Detail: d,
	})
}

// Node returns peer p's protocol state.
func (net *Network) Node(p overlay.PeerID) *Node { return net.nodes[p] }

// Nodes returns the node table (shared slice; callers must not mutate).
func (net *Network) Nodes() []*Node { return net.nodes }

// ControlMessages returns the number of Bloom gossip messages sent.
func (net *Network) ControlMessages() uint64 { return net.controlMessages }

// ControlBits returns the total gossiped delta payload in bits.
func (net *Network) ControlBits() uint64 { return net.controlBits }

// StaleBloomFallbacks returns how many gossip installs outlived their
// announce buffer and fell back to the sender's current published
// snapshot (see bloomInstallEvent).
func (net *Network) StaleBloomFallbacks() uint64 { return net.staleBloomFallbacks }

// targetBuf returns the shared empty buffer Behavior.Forward
// implementations accumulate their target list into. The buffer is valid
// until the next Forward call; the network consumes it immediately.
func (net *Network) targetBuf() []overlay.PeerID { return net.fwdBuf[:0] }

// targetBuf2 is a second target buffer for behaviours that partition
// neighbours into two candidate lists (e.g. LocawareLR's same-locality
// split).
func (net *Network) targetBuf2() []overlay.PeerID { return net.fwdBuf2[:0] }

// acquirePending takes a pendingQuery from the pool.
func (net *Network) acquirePending(origin overlay.PeerID) *pendingQuery {
	if n := len(net.pqFree); n > 0 {
		pq := net.pqFree[n-1]
		net.pqFree = net.pqFree[:n-1]
		*pq = pendingQuery{origin: origin, col: net.Collector, visited: pq.visited[:0]}
		return pq
	}
	return &pendingQuery{origin: origin, col: net.Collector}
}

// acquireMsg takes a QueryMsg from the pool. The caller owns it until it is
// released by the delivery wrapper in forward (or never, for dropped
// events, in which case the GC reclaims it).
func (net *Network) acquireMsg() *QueryMsg {
	if n := len(net.msgFree); n > 0 {
		m := net.msgFree[n-1]
		net.msgFree = net.msgFree[:n-1]
		return m
	}
	return &QueryMsg{}
}

// releaseMsg returns a fully processed query message to the pool. KwStrs is
// cleared rather than reused: responses created during processing may still
// alias the keyword-string slice (it is shared per query, not per branch).
func (net *Network) releaseMsg(m *QueryMsg) {
	m.Path = m.Path[:0]
	m.KwStrs = nil
	net.msgFree = append(net.msgFree, m)
}

// gossipBlooms runs one gossip round: every online node whose filter
// changed since its last announcement sends the update to each neighbour
// as a real message, delivered after link latency (§4.2: neighbours hold
// possibly stale copies). Traffic is charged per neighbour at the delta's
// encoded size (footnote 1) even though the delivered payload installs the
// full snapshot — the delta is what the wire would carry.
func (net *Network) gossipBlooms(eng *sim.Engine) {
	for _, n := range net.nodes {
		if !net.Graph.Online(n.ID) {
			continue
		}
		d, err := n.PublishBloom()
		if err != nil || d.Empty() {
			continue
		}
		// The announced snapshot is a frozen per-node double buffer:
		// installs copy it on arrival (setNeighborBloom), and the buffer
		// next mutates two gossip periods from now — a wide margin over
		// any link latency — so the round is allocation-free with exact
		// announce-time semantics.
		snapshot, snapGen := n.announceSnapshot()
		from := n.ID
		sizeBits := d.SizeBits()
		for _, nb := range net.Graph.Neighbors(n.ID) {
			if !net.Graph.Online(nb) {
				continue
			}
			net.controlMessages++
			net.controlBits += uint64(sizeBits)
			if net.Tracer != nil {
				net.emit(trace.BloomGossip, 0, nb, from, func() string {
					return fmt.Sprintf("delta=%dbits", sizeBits)
				})
			}
			net.send(eng, from, nb, net.acquireBloomInstall(nb, from, snapshot, snapGen))
		}
	}
}

// SubmitQuery injects a query at peer origin for query q at the current
// virtual time, and schedules its finalisation. It returns the QueryID.
func (net *Network) SubmitQuery(origin overlay.PeerID, q keywords.Query) QueryID {
	net.nextID++
	id := net.nextID
	pq := net.acquirePending(origin)
	net.pending[id] = pq

	net.Engine.PostEvent(net.Config.FinalizeAfter, net.acquireFinalize(id, origin))
	net.emit(trace.QuerySubmit, id, origin, -1, q.String)
	if !net.Graph.Online(origin) {
		return id
	}
	n := net.nodes[origin]
	net.markSeen(n, id, pq)
	// Local check first: the requester may already hold a matching file or
	// index.
	if f, ok := n.storageMatch(q); ok {
		pq.answered = true
		pq.rtt = 0
		pq.sameLoc = true
		pq.hops = 0
		net.emit(trace.StorageHit, id, origin, -1, f.String)
		return id
	}
	if ms := n.RI.Lookup(q, net.Engine.Now()); len(ms) != 0 {
		if prov, ok := net.Behavior.SelectProvider(net, n, net.liveProviders(ms[0].Providers)); ok {
			pq.fromCache = true
			net.emit(trace.CacheHit, id, origin, -1, ms[0].File.String)
			net.completeDownload(id, pq, n, ms[0].File, prov, 0)
			return id
		}
	}
	msg := net.acquireMsg()
	msg.ID = id
	msg.Q = q
	if net.Behavior.UsesBloom() {
		// Computed once per query and shared by every branch: Bloom routing
		// tests the same keyword strings at each hop.
		msg.KwStrs = q.Strings()
	}
	// Cached once per query: every Gid-routing hop consults the same value.
	msg.QGid = gidOfQuery(q, net.Config.GroupCount)
	msg.Origin = origin
	msg.OriginLoc = n.Loc
	msg.TTL = net.Config.TTL
	msg.Path = append(msg.Path[:0], origin)
	net.forward(net.Engine, n, msg, origin)
	net.releaseMsg(msg)
	return id
}

// markSeen adds the query to n's duplicate-suppression set and registers
// the entry for erasure at finalisation.
func (net *Network) markSeen(n *Node, id QueryID, pq *pendingQuery) {
	n.seen[id] = true
	pq.visited = append(pq.visited, n.ID)
}

// forward runs the behaviour's neighbour selection and ships the query.
// eng is the engine the triggering event fired on.
func (net *Network) forward(eng *sim.Engine, n *Node, q *QueryMsg, from overlay.PeerID) {
	if q.TTL <= 0 {
		return
	}
	targets := net.Behavior.Forward(net, n, q, from)
	for _, t := range targets {
		if t == n.ID || !net.Graph.Online(t) || !net.Graph.Linked(n.ID, t) {
			continue
		}
		branch := net.acquireMsg()
		branch.ID = q.ID
		branch.Q = q.Q
		branch.KwStrs = q.KwStrs
		branch.QGid = q.QGid
		branch.Origin = q.Origin
		branch.OriginLoc = q.OriginLoc
		branch.TTL = q.TTL - 1
		branch.Path = append(append(branch.Path[:0], q.Path...), t)
		net.send(eng, n.ID, t, net.acquireQueryDeliver(t, branch))
		net.countMessage(q.ID)
		net.emit(trace.QueryForward, q.ID, t, n.ID, nil)
	}
}

// send schedules delivery of a typed message event over link a->b with the
// physical one-way latency plus processing delay. It posts on eng — the
// engine the current event fired on — so that under the sharded runner an
// intra-shard hop stays in its own queue and only genuinely cross-locality
// deliveries pay the mailbox (on the single-queue engine, eng is always
// net.Engine).
func (net *Network) send(eng *sim.Engine, a, b overlay.PeerID, ev sim.Event) {
	delay := sim.FromMillis(net.Model.OneWay(int(a), int(b))) + net.Config.ProcessingDelay
	eng.PostEvent(delay, ev)
}

// countMessage attributes one overlay message to query id.
func (net *Network) countMessage(id QueryID) {
	if pq, ok := net.pending[id]; ok && !pq.finalized {
		pq.messages++
	}
}

// receiveQuery processes an arriving query at peer p. The caller retains
// ownership of q (it is released to the pool after this returns), so any
// state that outlives the call — notably response reverse paths — is
// copied, never aliased.
func (net *Network) receiveQuery(eng *sim.Engine, p overlay.PeerID, q *QueryMsg) {
	if !net.Graph.Online(p) {
		return
	}
	pq := net.pending[q.ID]
	if pq == nil {
		// The query was already finalised: its seen entries are erased and
		// its record sealed, so processing a straggler would mutate caches
		// the sealed record never saw. Under the documented FinalizeAfter
		// contract (longer than any in-flight message) this cannot happen;
		// with a misconfigured shorter deadline, dropping here keeps the
		// run consistent and the seen sets bounded.
		return
	}
	n := net.nodes[p]
	if n.seen[q.ID] {
		net.emit(trace.QueryDuplicate, q.ID, p, -1, nil)
		return // duplicate: already counted at send time
	}
	net.markSeen(n, q.ID, pq)

	// Storage hit?
	if f, ok := n.storageMatch(q.Q); ok {
		net.emit(trace.StorageHit, q.ID, p, -1, f.String)
		rsp := net.acquireResponse()
		rsp.ID = q.ID
		rsp.File = f
		rsp.Providers = append(rsp.Providers[:0], cache.Provider{Peer: p, LocID: n.Loc, LastSeen: net.Engine.Now()})
		rsp.QueryKws = q.Q
		rsp.Origin = q.Origin
		rsp.OriginLoc = q.OriginLoc
		rsp.Path = append(rsp.Path[:0], q.Path[:len(q.Path)-1]...)
		rsp.HitHops = len(q.Path) - 1
		rsp.FromStorage = true
		net.Behavior.OnAnswer(net, n, q, f)
		net.sendResponse(eng, p, rsp)
		return
	}
	// Response-index hit?
	if ms := n.RI.Lookup(q.Q, net.Engine.Now()); len(ms) != 0 {
		m := net.selectIndexMatch(ms, q)
		net.emit(trace.CacheHit, q.ID, p, -1, m.File.String)
		rsp := net.acquireResponse()
		rsp.ID = q.ID
		rsp.File = m.File
		rsp.Providers = net.orderProvidersForOrigin(rsp.Providers[:0], m.Providers, q.OriginLoc)
		rsp.QueryKws = q.Q
		rsp.Origin = q.Origin
		rsp.OriginLoc = q.OriginLoc
		rsp.Path = append(rsp.Path[:0], q.Path[:len(q.Path)-1]...)
		rsp.HitHops = len(q.Path) - 1
		rsp.FromStorage = false
		net.Behavior.OnAnswer(net, n, q, m.File)
		net.sendResponse(eng, p, rsp)
		return
	}
	net.forward(eng, n, q, q.Path[len(q.Path)-2])
}

// acquireResponse takes a ResponseMsg from the pool; it is released when
// the response completes, is dropped by churn, or is superseded.
func (net *Network) acquireResponse() *ResponseMsg {
	if n := len(net.respFree); n > 0 {
		r := net.respFree[n-1]
		net.respFree = net.respFree[:n-1]
		return r
	}
	return &ResponseMsg{}
}

// releaseResponse returns a finished response to the pool.
func (net *Network) releaseResponse(rsp *ResponseMsg) {
	rsp.Providers = rsp.Providers[:0]
	rsp.Path = rsp.Path[:0]
	rsp.QueryKws = keywords.Query{}
	net.respFree = append(net.respFree, rsp)
}

// selectIndexMatch picks among multiple matching cached filenames: prefer
// the one with a provider in the origin's locality, then the one with most
// providers.
func (net *Network) selectIndexMatch(ms []cache.Match, q *QueryMsg) cache.Match {
	best := ms[0]
	bestScore := -1
	for _, m := range ms {
		score := len(m.Providers)
		for _, pr := range m.Providers {
			if pr.LocID == q.OriginLoc {
				score += 1000
				break
			}
		}
		if score > bestScore {
			best, bestScore = m, score
		}
	}
	return best
}

// orderProvidersForOrigin appends ps to dst so providers matching the
// origin's locality come first (the §4.1.2 answer-construction rule: the
// response contains the entry corresponding to the originator's locId plus
// other providers as alternatives).
func (net *Network) orderProvidersForOrigin(dst []cache.Provider, ps []cache.Provider, origin netmodel.LocID) []cache.Provider {
	for _, p := range ps {
		if p.LocID == origin {
			dst = append(dst, p)
		}
	}
	for _, p := range ps {
		if p.LocID != origin {
			dst = append(dst, p)
		}
	}
	return dst
}

// sendResponse walks the response one hop back along the reverse path,
// letting each traversed node apply the protocol's caching rule, and
// completes the query at the origin. The response is mutated in place as it
// walks: exactly one scheduled event owns it at any instant.
func (net *Network) sendResponse(eng *sim.Engine, from overlay.PeerID, rsp *ResponseMsg) {
	if len(rsp.Path) == 0 {
		// The answering node is the origin's neighbourless case; deliver
		// locally (should not happen: origin handles local hits).
		net.deliverResponse(eng, rsp.Origin, rsp)
		return
	}
	next := rsp.Path[len(rsp.Path)-1]
	rsp.Path = rsp.Path[:len(rsp.Path)-1]
	net.countMessage(rsp.ID)
	net.emit(trace.ResponseHop, rsp.ID, next, from, nil)
	net.send(eng, from, next, net.acquireResponseDeliver(next, rsp))
}

// deliverResponse processes the response at peer p: caching, then either
// completion (p is the origin) or the next reverse hop.
func (net *Network) deliverResponse(eng *sim.Engine, p overlay.PeerID, rsp *ResponseMsg) {
	if !net.Graph.Online(p) {
		net.releaseResponse(rsp)
		return // reverse path broken by churn; response is lost
	}
	n := net.nodes[p]
	before := n.RI.Inserts() + n.RI.Refreshes()
	net.Behavior.CacheResponse(net, n, rsp)
	if n.RI.Inserts()+n.RI.Refreshes() != before {
		net.emit(trace.ResponseCached, rsp.ID, p, -1, rsp.File.String)
	}
	if p == rsp.Origin {
		net.completeQuery(n, rsp)
		net.releaseResponse(rsp)
		return
	}
	net.sendResponse(eng, p, rsp)
}

// completeQuery runs requester-side provider selection and download
// accounting for the first arriving response; later responses are ignored.
func (net *Network) completeQuery(n *Node, rsp *ResponseMsg) {
	pq, ok := net.pending[rsp.ID]
	if !ok || pq.finalized || pq.answered {
		return
	}
	prov, ok := net.Behavior.SelectProvider(net, n, net.liveProviders(rsp.Providers))
	if !ok {
		return // all advertised providers are gone; await another response
	}
	pq.fromCache = !rsp.FromStorage
	net.completeDownload(rsp.ID, pq, n, rsp.File, prov, rsp.HitHops)
}

// completeDownload finalises the download bookkeeping: distance metric and
// natural replication (the requester becomes a provider, §3.1).
func (net *Network) completeDownload(id QueryID, pq *pendingQuery, n *Node, f keywords.Filename, prov cache.Provider, hops int) {
	pq.answered = true
	pq.rtt = net.Model.RTT(int(n.ID), int(prov.Peer))
	pq.sameLoc = prov.LocID == n.Loc
	pq.hops = hops
	n.AddFile(f)
	net.emit(trace.DownloadComplete, id, n.ID, prov.Peer, func() string {
		return fmt.Sprintf("%s rtt=%.1fms sameLoc=%v", f.String(), pq.rtt, pq.sameLoc)
	})
}

// liveProviders filters out offline providers (stale indexes under churn)
// into the network's provider scratch buffer, consumed synchronously by
// SelectProvider.
func (net *Network) liveProviders(ps []cache.Provider) []cache.Provider {
	out := net.provBuf[:0]
	for _, p := range ps {
		if net.Graph.Online(p.Peer) {
			out = append(out, p)
		}
	}
	net.provBuf = out[:0]
	return out
}

// finalize seals a query's record into the collector, erases the query's
// duplicate-suppression entries, and recycles the bookkeeping.
func (net *Network) finalize(id QueryID) {
	pq, ok := net.pending[id]
	if !ok || pq.finalized {
		return
	}
	pq.finalized = true
	if !pq.answered {
		net.emit(trace.QueryFailed, id, pq.origin, -1, nil)
	}
	pq.col.Record(metrics.QueryRecord{
		Messages:     pq.messages,
		Success:      pq.answered,
		DownloadRTT:  pq.rtt,
		SameLocality: pq.sameLoc,
		FromCache:    pq.fromCache,
		Hops:         pq.hops,
	})
	for _, p := range pq.visited {
		delete(net.nodes[p].seen, id)
	}
	delete(net.pending, id)
	net.pqFree = append(net.pqFree, pq)
}

// FlushPending finalises all still-pending queries immediately (used at
// the end of a bounded run).
func (net *Network) FlushPending() {
	for id := range net.pending {
		net.finalize(id)
	}
}

// ResetCollector swaps in a fresh metrics collector (same configuration)
// and returns the old one. Queries already in flight keep finalising into
// the collector that was active when they were submitted, so a warmup phase
// cannot contaminate the measured phase.
func (net *Network) ResetCollector() *metrics.Collector {
	old := net.Collector
	net.Collector = metrics.NewCollectorWith(net.Config.Collector)
	return old
}

// fallbackNeighbors implements the last-resort forwarding set shared by the
// selective protocols: the highest-degree eligible neighbour (§4.2's
// "highly connected neighbor") plus up to FallbackFanout-1 random other
// eligible neighbours to keep the walk from degenerating into a single
// path.
func (net *Network) fallbackNeighbors(n *Node, q *QueryMsg, from overlay.PeerID) []overlay.PeerID {
	best, ok := net.highestDegreeNeighbor(n, q, from)
	if !ok {
		return nil
	}
	eligible := net.eligBuf[:0]
	for _, nb := range net.Graph.Neighbors(n.ID) {
		if nb == from || q.onPath(nb) || !net.Graph.Online(nb) {
			continue
		}
		eligible = append(eligible, nb)
	}
	net.eligBuf = eligible[:0]
	out := append(net.fbBuf[:0], best)
	net.fbBuf = out[:0]
	if net.Config.FallbackFanout <= 1 || len(eligible) == 1 {
		net.Forwarding.Fallback++
		return out
	}
	// Random extras among the remaining eligible neighbours.
	rest := net.restBuf[:0]
	for _, nb := range eligible {
		if nb != best {
			rest = append(rest, nb)
		}
	}
	net.restBuf = rest[:0]
	net.rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	extra := net.Config.FallbackFanout - 1
	if extra > len(rest) {
		extra = len(rest)
	}
	out = append(out, rest[:extra]...)
	net.Forwarding.Fallback += uint64(len(out))
	return out
}

// highestDegreeNeighbor returns n's highest-degree neighbour not on the
// query path and not the sender — the "highly connected neighbor as a last
// resort" rule of §4.2. Ties break towards the lower peer id for
// determinism. ok is false when every neighbour is excluded.
func (net *Network) highestDegreeNeighbor(n *Node, q *QueryMsg, from overlay.PeerID) (overlay.PeerID, bool) {
	best := overlay.PeerID(-1)
	bestDeg := -1
	for _, nb := range net.Graph.Neighbors(n.ID) {
		if nb == from || q.onPath(nb) || !net.Graph.Online(nb) {
			continue
		}
		if d := net.Graph.Degree(nb); d > bestDeg {
			best, bestDeg = nb, d
		}
	}
	return best, best >= 0
}

// String describes the network.
func (net *Network) String() string {
	return fmt.Sprintf("network{%s n=%d}", net.Behavior.Name(), len(net.nodes))
}
