package protocol

import (
	"fmt"
	"math/rand"
	"slices"
	"strconv"

	"github.com/p2prepro/locaware/internal/bloom"
	"github.com/p2prepro/locaware/internal/cache"
	"github.com/p2prepro/locaware/internal/keywords"
	"github.com/p2prepro/locaware/internal/metrics"
	"github.com/p2prepro/locaware/internal/netmodel"
	"github.com/p2prepro/locaware/internal/obs"
	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/sim"
	"github.com/p2prepro/locaware/internal/trace"
)

// Config holds the protocol-plane parameters of §5.1.
type Config struct {
	// TTL bounds query propagation; paper: 7.
	TTL int
	// GroupCount is M, the number of Gid groups (Eq. 1).
	GroupCount int
	// Cache bounds each peer's response index.
	Cache cache.Config
	// BloomBits / BloomK size the keyword Bloom filter; paper: 1200 bits.
	// BloomK values above 16 are clamped (the filter computes its bit
	// positions in a fixed-size stack array; OptimalK never exceeds 16).
	BloomBits, BloomK int
	// BloomGossipPeriod is how often peers push BF updates to neighbours.
	BloomGossipPeriod sim.Time
	// FinalizeAfter is how long after submission a query's record is
	// sealed. It must exceed TTL × max one-way latency + the response trip.
	FinalizeAfter sim.Time
	// ProcessingDelay models per-hop forwarding cost added to link latency.
	ProcessingDelay sim.Time
	// FallbackFanout is how many neighbours a selective protocol falls
	// back to when no neighbour matches its routing predicate (the
	// highest-degree neighbour plus FallbackFanout-1 random others). 1
	// reproduces a pure "highly connected neighbour as a last resort"
	// walk; the default 2 keeps enough branching for the walk to cover a
	// useful fraction of the overlay within TTL.
	FallbackFanout int
	// Collector configures the measurement plane: the streaming checkpoint
	// grid for figure windows and whether full per-query records are
	// retained (see metrics.CollectorConfig). The zero value is a pure
	// streaming collector: O(1) state, scalar metrics only.
	Collector metrics.CollectorConfig
}

// DefaultConfig returns the paper's §5.1 parameters.
func DefaultConfig() Config {
	return Config{
		TTL:               7,
		GroupCount:        4,
		Cache:             cache.DefaultConfig(),
		BloomBits:         1200,
		BloomK:            6,
		BloomGossipPeriod: 30 * sim.Second,
		FinalizeAfter:     30 * sim.Second,
		ProcessingDelay:   sim.Millisecond,
		FallbackFanout:    2,
	}
}

// Behavior is a protocol's decision logic. One Network instance runs one
// behaviour; the figure harness runs a Network per curve.
type Behavior interface {
	// Name identifies the protocol in results.
	Name() string
	// UsesBloom reports whether nodes maintain and gossip Bloom filters.
	UsesBloom() bool
	// CacheConfig adapts the base cache bounds for this protocol (e.g. the
	// Dicas baselines keep a single provider per filename, §5.2: "the
	// response index in Locaware has for each file more possibilities of
	// providers than in Dicas").
	CacheConfig(base cache.Config) cache.Config
	// Forward selects the neighbours of n to forward q to; from is the
	// peer the query arrived from (the origin itself on first hop). The
	// returned slice is consumed before the next Forward call, so
	// implementations may return the shard-local target buffer
	// (Network.targetBuf(n)).
	Forward(net *Network, n *Node, q *QueryMsg, from overlay.PeerID) []overlay.PeerID
	// CacheResponse lets reverse-path node n cache the response per the
	// protocol's placement rule.
	CacheResponse(net *Network, n *Node, rsp *ResponseMsg)
	// OnAnswer runs at the answering node; Locaware inserts the requester
	// as a new provider here (§4.1.2).
	OnAnswer(net *Network, n *Node, q *QueryMsg, f keywords.Filename)
	// SelectProvider picks the download source among the response's
	// providers at the requester. The provs slice is scratch owned by the
	// network; implementations must not retain it.
	SelectProvider(net *Network, requester *Node, provs []cache.Provider) (cache.Provider, bool)
}

// pendingQuery is requester-side bookkeeping for one in-flight query.
// Instances are pooled: finalize returns them to the owning shard's free
// list.
type pendingQuery struct {
	origin overlay.PeerID
	// col is the collector the query will finalise into; captured at
	// submission so a mid-run collector reset (warmup) does not leak
	// in-flight queries into the measured phase. Sharded networks leave it
	// nil and route by query id at the epoch flush instead.
	col       *metrics.Collector
	messages  int
	answered  bool
	rtt       float64
	sameLoc   bool
	fromCache bool
	hops      int
	finalized bool
	// visited lists the peers whose duplicate-suppression set holds this
	// query, so finalisation can erase the entries and keep per-node seen
	// state bounded by the in-flight query count instead of the run length.
	// Only maintained on the single-queue path; sharded networks track
	// visits per shard (shardState.visited) so marking never crosses a
	// shard boundary.
	visited []overlay.PeerID
}

// ForwardStats counts routing decisions, for diagnosis and the routing
// ablations: how often each selection tier fired.
type ForwardStats struct {
	// BloomMatched counts forwards chosen by a Bloom-filter match.
	BloomMatched uint64
	// GidMatched counts forwards chosen by group-Id match.
	GidMatched uint64
	// Fallback counts last-resort forwards (highest-degree + random).
	Fallback uint64
	// FloodAll counts blind forwards (Flooding only).
	FloodAll uint64
}

// add accumulates o into s.
func (s *ForwardStats) add(o ForwardStats) {
	s.BloomMatched += o.BloomMatched
	s.GidMatched += o.GidMatched
	s.Fallback += o.Fallback
	s.FloodAll += o.FloodAll
}

// shardState is the mutable hot-path state of one shard: pending queries
// owned by the shard's peers, every object pool, the selection scratch, the
// tie-breaking RNG and the traffic counters. A single-queue network has
// exactly one; a sharded network has one per shard, and each is touched
// only by events delivered on its own engine — which is what lets the
// sharded runner drain the shards of an epoch on separate goroutines.
// Cross-shard bookkeeping (message counts for queries owned elsewhere,
// queries finalised this epoch) accumulates locally and merges at the
// sequential epoch flush.
type shardState struct {
	idx int
	// eng is the shard's engine; reading its clock from the shard's own
	// events is race-free, unlike reading another shard's.
	eng *sim.Engine
	rng *rand.Rand

	pending  map[QueryID]*pendingQuery
	pqFree   []*pendingQuery
	msgFree  []*QueryMsg
	respFree []*ResponseMsg

	// Typed-event pools (see events.go): recycled delivery/finalize/gossip
	// events keep steady-state scheduling allocation-free. An event
	// acquired on the sending shard is released to the pool of the shard
	// it fires on; traffic symmetry keeps the pools balanced.
	qdFree   []*queryDeliverEvent
	rdFree   []*responseDeliverEvent
	finFree  []*finalizeEvent
	biFree   []*bloomInstallEvent
	qsFree   []*querySubmitEvent
	snapFree []*bloom.Filter

	// Slab allocators back every pool's cold path: growth carves values
	// from 64-value blocks (one allocation, contiguous storage, one
	// GC-scanned object) instead of a heap object per value. Recycling is
	// unchanged — slabs only replace the `new(T)` fallbacks above.
	pqSlab   sim.Slab[pendingQuery]
	msgSlab  sim.Slab[QueryMsg]
	respSlab sim.Slab[ResponseMsg]
	qdSlab   sim.Slab[queryDeliverEvent]
	rdSlab   sim.Slab[responseDeliverEvent]
	finSlab  sim.Slab[finalizeEvent]
	biSlab   sim.Slab[bloomInstallEvent]
	qsSlab   sim.Slab[querySubmitEvent]

	// Reusable scratch buffers for the per-event selection loops. Each is
	// filled and fully consumed within one event delivery on this shard's
	// engine, so one instance per shard suffices.
	fwdBuf  []overlay.PeerID
	fwdBuf2 []overlay.PeerID
	eligBuf []overlay.PeerID
	restBuf []overlay.PeerID
	fbBuf   []overlay.PeerID
	provBuf []cache.Provider

	// forwarding / control counters tally this shard's share of the run's
	// traffic; Network's accessors sum across shards.
	forwarding          ForwardStats
	controlMessages     uint64
	controlBits         uint64
	staleBloomFallbacks uint64

	// peers lists the shard's own peers in ascending id order (the gossip
	// scan's deterministic walk). The single-queue state holds all peers.
	peers []overlay.PeerID

	// msgDelta counts overlay messages this shard attributed to queries
	// owned by other shards; merged into the owning pendingQuery at the
	// epoch flush. Empty on the single-queue path.
	msgDelta map[QueryID]int

	// visited records, per query, the peers of this shard whose seen set
	// holds the query; erased across all shards when the query's record is
	// sealed at the epoch flush. visFree recycles the slices. Sharded mode
	// only — the single-queue path keeps pendingQuery.visited.
	visited map[QueryID][]overlay.PeerID
	visFree [][]overlay.PeerID

	// finished queues the ids of queries this shard finalised during the
	// current epoch; records seal in ascending id order at the flush.
	finished []QueryID

	// instr, when non-nil, is the shard's observability cell (see obs.go):
	// plain local counters folded into the shared registry at sequential
	// epoch boundaries, so the hot path stays uncontended and alloc-free.
	instr *shardInstr

	// tr, when non-nil, receives this shard's trace events: the shard's
	// trace.Cell under the sharded runner (merged into the sink at the
	// sequential epoch flush, so tracing does not force the sequential
	// drain), or the sink itself on the single-queue path.
	tr trace.Tracer
	// traceWant is the sink's kind-interest bitmask (trace.WantMask): emits
	// of kinds the sink discards — gossip under a flight recorder — are
	// skipped before the event (or its detail string) is built.
	traceWant uint32
	// detailBuf is the reusable scratch trace-detail strings are built in,
	// so a traced hot path pays one string copy per annotated event instead
	// of a fmt.Sprintf.
	detailBuf []byte
}

// traces reports whether kind k should be emitted on this shard.
func (st *shardState) traces(k trace.Kind) bool {
	return st.tr != nil && st.traceWant&(1<<k) != 0
}

func newShardState(idx int, eng *sim.Engine, rng *rand.Rand, sharded bool) *shardState {
	st := &shardState{
		idx:     idx,
		eng:     eng,
		rng:     rng,
		pending: make(map[QueryID]*pendingQuery),
		// Selection scratch: sized past the default MaxDegree (12) so the
		// per-event loops run allocation-free; pathological degrees merely
		// cost a transient grow.
		fwdBuf:  make([]overlay.PeerID, 0, 64),
		fwdBuf2: make([]overlay.PeerID, 0, 64),
		eligBuf: make([]overlay.PeerID, 0, 64),
		restBuf: make([]overlay.PeerID, 0, 64),
		fbBuf:   make([]overlay.PeerID, 0, 64),
		provBuf: make([]cache.Provider, 0, 16),
	}
	if sharded {
		st.msgDelta = make(map[QueryID]int)
		st.visited = make(map[QueryID][]overlay.PeerID)
	}
	return st
}

// noteVisited records that peer p's seen set holds query id (sharded mode).
func (st *shardState) noteVisited(id QueryID, p overlay.PeerID) {
	vs, ok := st.visited[id]
	if !ok {
		if n := len(st.visFree); n > 0 {
			vs = st.visFree[n-1][:0]
			st.visFree = st.visFree[:n-1]
		}
	}
	st.visited[id] = append(vs, p)
}

// Network binds the substrates and one protocol behaviour into a runnable
// system. On the single-queue engine it is single-threaded; under the
// sharded runner every piece of mutable hot-path state lives in a per-shard
// shardState, so the shards of an epoch may drain on separate goroutines.
type Network struct {
	Engine    *sim.Engine
	Graph     *overlay.Graph
	Model     *netmodel.Model
	Locator   *netmodel.Locator
	Behavior  Behavior
	Collector *metrics.Collector
	Config    Config

	// nodes is the flat per-peer state table, allocated in one block at
	// network build (the tendermint-simulator layout: contiguous state,
	// pointer-stable because the slice never grows). Each node's state is
	// only touched by events delivered on its own shard.
	nodes   []*Node
	nodeArr []Node

	// states holds one shardState per shard (exactly one on the
	// single-queue path).
	states  []*shardState
	sharded bool
	// shardOf maps a peer to its shard index, normalised exactly as the
	// sharded runner normalises it; nil on the single-queue path.
	shardOf func(peer int) int
	// injectDelay is the lead a sharded submission travels with from the
	// control shard to the origin's shard: the epoch lookahead, which makes
	// the hand-off barrier-safe by construction.
	injectDelay sim.Time

	// nextID assigns query ids; only the submission chain (control shard)
	// touches it.
	nextID QueryID

	// finalizedWatermark is the highest query id whose record has been
	// sealed. Finalisations occur in ascending id order (finalize time is
	// submission time plus the constant FinalizeAfter), so id <= watermark
	// identifies a dead query. Written only at the sequential epoch flush;
	// read by shard drains — making it the race-free sharded replacement
	// for the cross-shard pending-map straggler probe.
	finalizedWatermark QueryID

	// warmupIDs / warmCol route the first warmupIDs query records into a
	// discarded side collector (sharded mode's equivalent of the
	// single-queue collector reset, which would race the shard drains).
	warmupIDs QueryID
	warmCol   *metrics.Collector

	// flushIDs is the epoch flush's reusable sort scratch.
	flushIDs []QueryID

	// traceSink, when non-nil, receives a structured event for every
	// significant protocol action (set via SetTracer). Tracing a
	// paper-scale run is cheap with a bounded trace.Buffer or a sampling
	// trace.FlightRecorder. On the single-queue path events pass straight
	// through; under the sharded runner each shard buffers into its own
	// traceCol cell and the collector merges them — in ascending
	// (time, QueryID, shard) order — at the sequential epoch flush, so the
	// sink sees one deterministic stream whichever way the epoch drained
	// and tracing no longer forces the sequential drain.
	traceSink trace.Tracer
	traceCol  *trace.Collector

	// obsReg / obsLag / obsLagHW back the observability layer (obs.go):
	// the shared registry, the watermark-lag gauge, and the run-local lag
	// high-water. Unlike the Tracer, instrumentation is shard-confined
	// (each shardState owns its cell) so it never forces the sequential
	// drain.
	obsReg   *obs.Registry
	obsLag   *obs.Gauge
	obsLagHW uint64
}

// NewNetwork assembles a single-queue network. gidRng draws each node's
// random Gid; protoRng drives protocol tie-breaking.
func NewNetwork(eng *sim.Engine, g *overlay.Graph, m *netmodel.Model, loc *netmodel.Locator,
	b Behavior, cfg Config, gidRng, protoRng *rand.Rand) *Network {
	return buildNetwork([]*sim.Engine{eng}, nil, []*rand.Rand{protoRng}, 0, g, m, loc, b, cfg, gidRng)
}

// NewShardedNetwork assembles a network over the sharded runner: one
// shardState per shard, submissions injected from the control shard with
// the epoch lookahead as lead time, and the per-shard bookkeeping merged
// through loop's epoch hook. shardOf must be the same map given to the
// runner; shardRngs supplies one tie-breaking stream per shard (stream 0
// is the single-queue protocol stream, so a 1-shard layout would be
// byte-identical); injectDelay is the runner's Lookahead.
func NewShardedNetwork(loop *sim.Sharded, shardOf sim.ShardMap, shardRngs []*rand.Rand,
	injectDelay sim.Time, g *overlay.Graph, m *netmodel.Model, loc *netmodel.Locator,
	b Behavior, cfg Config, gidRng *rand.Rand) *Network {
	n := loop.Shards()
	if n < 2 {
		panic("protocol: NewShardedNetwork needs a loop with at least 2 shards")
	}
	if shardOf == nil {
		panic("protocol: NewShardedNetwork needs the runner's ShardOf map")
	}
	if len(shardRngs) != n {
		panic("protocol: NewShardedNetwork needs one RNG per shard")
	}
	engines := make([]*sim.Engine, n)
	for i := range engines {
		engines[i] = loop.Engine(i)
	}
	net := buildNetwork(engines, shardOf, shardRngs, injectDelay, g, m, loc, b, cfg, gidRng)
	loop.SetEpochHook(net.EpochFlush)
	return net
}

func buildNetwork(engines []*sim.Engine, rawShardOf sim.ShardMap, rngs []*rand.Rand,
	injectDelay sim.Time, g *overlay.Graph, m *netmodel.Model, loc *netmodel.Locator,
	b Behavior, cfg Config, gidRng *rand.Rand) *Network {
	if cfg.TTL <= 0 {
		cfg.TTL = 7
	}
	if cfg.GroupCount <= 0 {
		cfg.GroupCount = 4
	}
	if cfg.FinalizeAfter <= 0 {
		cfg.FinalizeAfter = 30 * sim.Second
	}
	if cfg.FallbackFanout <= 0 {
		cfg.FallbackFanout = 2
	}
	nShards := len(engines)
	net := &Network{
		Engine:      engines[0],
		Graph:       g,
		Model:       m,
		Locator:     loc,
		Behavior:    b,
		Collector:   metrics.NewCollectorWith(cfg.Collector),
		Config:      cfg,
		states:      make([]*shardState, nShards),
		sharded:     nShards > 1,
		injectDelay: injectDelay,
	}
	if net.sharded {
		// Normalise exactly as sim.Sharded does, so an event delivered on
		// engine i always resolves states[i].
		net.shardOf = func(peer int) int {
			k := rawShardOf(peer) % nShards
			if k < 0 {
				k += nShards
			}
			return k
		}
	}
	for i := range net.states {
		net.states[i] = newShardState(i, engines[i], rngs[i], net.sharded)
	}
	cacheCfg := b.CacheConfig(cfg.Cache)
	net.nodeArr = make([]Node, g.N())
	net.nodes = make([]*Node, g.N())
	for i := range net.nodeArr {
		n := &net.nodeArr[i]
		initNode(n, overlay.PeerID(i), gidRng.Intn(cfg.GroupCount),
			loc.LocID(i), cacheCfg, b.UsesBloom(), cfg.BloomBits, cfg.BloomK)
		net.nodes[i] = n
		net.states[net.shardIdx(i)].peers = append(net.states[net.shardIdx(i)].peers, overlay.PeerID(i))
	}
	if b.UsesBloom() && cfg.BloomGossipPeriod > 0 {
		// One gossip scan per shard over its own peers (a single scan over
		// everything on the single-queue path), each on its shard's engine.
		for i, st := range net.states {
			if len(st.peers) == 0 {
				continue
			}
			engines[i].PostEvent(cfg.BloomGossipPeriod,
				&gossipRoundEvent{net: net, st: st, period: cfg.BloomGossipPeriod})
		}
	}
	return net
}

// shardIdx maps a peer to its shard index (0 on the single-queue path).
func (net *Network) shardIdx(peer int) int {
	if !net.sharded {
		return 0
	}
	return net.shardOf(peer)
}

// stateFor returns the shard state owning node n.
func (net *Network) stateFor(n *Node) *shardState { return net.states[net.shardIdx(int(n.ID))] }

// stateOn returns the shard state of the engine an event is firing on.
func (net *Network) stateOn(eng *sim.Engine) *shardState { return net.states[eng.Shard()] }

// nowFor returns the current virtual time on the shard that owns n.
// Behaviours use it instead of Network.Engine.Now(): reading another
// shard's clock mid-epoch would race with that shard's drain goroutine.
func (net *Network) nowFor(n *Node) sim.Time { return net.stateFor(n).eng.Now() }

// SetTracer attaches (or, with nil, detaches) a tracer. On the
// single-queue path every shard emit goes straight to tr; under the
// sharded runner a per-shard cell collector is wired so emits stay
// shard-confined and merge deterministically at the epoch flush. Call
// before the run starts.
func (net *Network) SetTracer(tr trace.Tracer) {
	net.traceSink = tr
	net.traceCol = nil
	if tr == nil {
		for _, st := range net.states {
			st.tr, st.traceWant = nil, 0
		}
		return
	}
	// Interest is the sink's even under sharding, where st.tr is a merge
	// cell: a kind the sink discards need not transit the cells either.
	want := trace.WantMask(tr)
	if !net.sharded {
		net.states[0].tr, net.states[0].traceWant = tr, want
		return
	}
	net.traceCol = trace.NewCollector(tr, len(net.states))
	for i, st := range net.states {
		st.tr, st.traceWant = net.traceCol.Cell(i), want
	}
}

// TracerSink returns the tracer attached with SetTracer (nil when
// untraced).
func (net *Network) TracerSink() trace.Tracer { return net.traceSink }

// TraceEnabled reports whether a tracer is attached; callers use it to
// skip building detail strings on untraced runs.
func (net *Network) TraceEnabled() bool { return net.traceSink != nil }

// EmitControl emits a control-plane trace event (no peer, no query) at the
// control shard's current time. It must be called from an event firing on
// the control shard — scenario phase boundaries do — so the event lands in
// shard 0's cell rather than racing the parallel drain.
func (net *Network) EmitControl(k trace.Kind, detail string) {
	st := net.states[0]
	if !st.traces(k) {
		return
	}
	st.tr.Emit(trace.Event{At: st.eng.Now(), Kind: k, Peer: -1, From: -1, Detail: detail})
}

// emit sends a trace event on st's shard when tracing is enabled; detail
// annotations that cost an allocation are built by the call sites behind
// their own st.tr check. The timestamp is st's own engine clock, which the
// firing event's goroutine may always read.
func (net *Network) emit(st *shardState, k trace.Kind, query QueryID, peer, from overlay.PeerID, detail string) {
	if !st.traces(k) {
		return
	}
	st.tr.Emit(trace.Event{
		At:     st.eng.Now(),
		Kind:   k,
		Query:  uint64(query),
		Peer:   int(peer),
		From:   int(from),
		Detail: detail,
	})
}

// Node returns peer p's protocol state.
func (net *Network) Node(p overlay.PeerID) *Node { return net.nodes[p] }

// Nodes returns the node table (shared slice; callers must not mutate).
func (net *Network) Nodes() []*Node { return net.nodes }

// ControlMessages returns the number of Bloom gossip messages sent.
func (net *Network) ControlMessages() uint64 {
	var n uint64
	for _, st := range net.states {
		n += st.controlMessages
	}
	return n
}

// ControlBits returns the total gossiped delta payload in bits.
func (net *Network) ControlBits() uint64 {
	var n uint64
	for _, st := range net.states {
		n += st.controlBits
	}
	return n
}

// StaleBloomFallbacks returns how many gossip installs outlived their
// announce buffer and fell back to the sender's current published
// snapshot (see bloomInstallEvent).
func (net *Network) StaleBloomFallbacks() uint64 {
	var n uint64
	for _, st := range net.states {
		n += st.staleBloomFallbacks
	}
	return n
}

// Forwarding returns the run's routing-tier tallies, summed across shards.
func (net *Network) Forwarding() ForwardStats {
	var s ForwardStats
	for _, st := range net.states {
		s.add(st.forwarding)
	}
	return s
}

// stats returns the forwarding tallies of the shard owning n; behaviours
// bump their routing-tier counters through it.
func (net *Network) stats(n *Node) *ForwardStats { return &net.stateFor(n).forwarding }

// targetBuf returns the empty per-shard buffer Behavior.Forward
// implementations accumulate their target list into. The buffer is valid
// until the next Forward call on n's shard; the network consumes it
// immediately.
func (net *Network) targetBuf(n *Node) []overlay.PeerID { return net.stateFor(n).fwdBuf[:0] }

// targetBuf2 is a second target buffer for behaviours that partition
// neighbours into two candidate lists (e.g. LocawareLR's same-locality
// split).
func (net *Network) targetBuf2(n *Node) []overlay.PeerID { return net.stateFor(n).fwdBuf2[:0] }

// acquirePending takes a pendingQuery from the shard's pool.
func (net *Network) acquirePending(st *shardState, origin overlay.PeerID) *pendingQuery {
	var col *metrics.Collector
	if !net.sharded {
		col = net.Collector
	}
	if n := len(st.pqFree); n > 0 {
		pq := st.pqFree[n-1]
		st.pqFree = st.pqFree[:n-1]
		*pq = pendingQuery{origin: origin, col: col, visited: pq.visited[:0]}
		return pq
	}
	pq := st.pqSlab.New()
	pq.origin, pq.col = origin, col
	return pq
}

// acquireMsg takes a QueryMsg from the shard's pool. The caller owns it
// until it is released by the delivery wrapper in forward (or never, for
// dropped events, in which case the GC reclaims it).
func (st *shardState) acquireMsg() *QueryMsg {
	if n := len(st.msgFree); n > 0 {
		m := st.msgFree[n-1]
		st.msgFree = st.msgFree[:n-1]
		return m
	}
	return st.msgSlab.New()
}

// releaseMsg returns a fully processed query message to the shard's pool.
// KwStrs is cleared rather than reused: responses created during processing
// may still alias the keyword-string slice (it is shared per query, not per
// branch).
func (st *shardState) releaseMsg(m *QueryMsg) {
	m.Path = m.Path[:0]
	m.KwStrs = nil
	st.msgFree = append(st.msgFree, m)
}

// gossipBlooms runs one gossip round over st's peers: every online one
// whose filter changed since its last announcement sends the update to each
// neighbour as a real message, delivered after link latency (§4.2:
// neighbours hold possibly stale copies). Traffic is charged per neighbour
// at the delta's encoded size (footnote 1) even though the delivered
// payload installs the full snapshot — the delta is what the wire would
// carry.
func (net *Network) gossipBlooms(eng *sim.Engine, st *shardState) {
	for _, pid := range st.peers {
		n := net.nodes[pid]
		if !net.Graph.Online(n.ID) {
			continue
		}
		d, err := n.PublishBloom()
		if err != nil || d.Empty() {
			continue
		}
		// The announced snapshot is a frozen per-node double buffer:
		// installs copy it on arrival (setNeighborBloom), and the buffer
		// next mutates two gossip periods from now — a wide margin over
		// any link latency — so the round is allocation-free with exact
		// announce-time semantics.
		snapshot, snapGen := n.announceSnapshot()
		from := n.ID
		sizeBits := d.SizeBits()
		for _, nb := range net.Graph.Neighbors(n.ID) {
			if !net.Graph.Online(nb) {
				continue
			}
			st.controlMessages++
			st.controlBits += uint64(sizeBits)
			if st.traces(trace.BloomGossip) {
				d := append(st.detailBuf[:0], "delta="...)
				d = strconv.AppendInt(d, int64(sizeBits), 10)
				d = append(d, "bits"...)
				st.detailBuf = d
				net.emit(st, trace.BloomGossip, 0, nb, from, string(d))
			}
			if net.sharded && net.shardIdx(int(nb)) != st.idx {
				// Cross-shard installs carry an owned copy taken now: the
				// install must not read the sender's live announce buffers
				// from another shard's goroutine. Copy-on-send also means
				// the neighbour sees the exact announce-time content — the
				// stale-buffer fallback cannot arise.
				net.send(eng, from, nb, st.acquireBloomInstallOwned(net, nb, from, snapshot))
				continue
			}
			net.send(eng, from, nb, st.acquireBloomInstall(net, nb, from, snapshot, snapGen))
		}
	}
}

// Submit injects a query at peer origin at the current virtual time. On
// the single-queue engine it submits synchronously; under the sharded
// runner it assigns the id on the control shard and hands the submission to
// the origin's shard as a destined event with the epoch lookahead as lead
// time — a delay every epoch barrier admits by construction, so the
// hand-off can never violate the barrier. It returns the QueryID.
func (net *Network) Submit(origin overlay.PeerID, q keywords.Query) QueryID {
	if !net.sharded {
		return net.SubmitQuery(origin, q)
	}
	net.nextID++
	id := net.nextID
	st0 := net.states[0]
	net.Engine.PostEvent(net.injectDelay, st0.acquireSubmit(net, id, origin, q))
	return id
}

// SubmitQuery injects a query at peer origin at the current virtual time,
// synchronously on the control engine, and schedules its finalisation. It
// returns the QueryID. Sharded callers use Submit, which routes the work to
// the origin's shard.
func (net *Network) SubmitQuery(origin overlay.PeerID, q keywords.Query) QueryID {
	net.nextID++
	id := net.nextID
	net.runSubmit(net.Engine, net.states[0], id, origin, q)
	return id
}

// runSubmit performs the submission work on the shard owning origin:
// pending-query creation, finalisation scheduling, the origin's local
// storage and index checks, and the first forwarding fan-out.
func (net *Network) runSubmit(eng *sim.Engine, st *shardState, id QueryID, origin overlay.PeerID, q keywords.Query) {
	pq := net.acquirePending(st, origin)
	st.pending[id] = pq

	if in := st.instr; in != nil {
		in.submitted.Inc()
		in.pendingHW.Observe(uint64(len(st.pending)))
	}
	eng.PostEvent(net.Config.FinalizeAfter, st.acquireFinalize(net, id, origin))
	if st.traces(trace.QuerySubmit) {
		d := q.AppendString(st.detailBuf[:0])
		st.detailBuf = d
		net.emit(st, trace.QuerySubmit, id, origin, -1, string(d))
	}
	if !net.Graph.Online(origin) {
		return
	}
	n := net.nodes[origin]
	net.markSeen(st, n, id, pq)
	// Local check first: the requester may already hold a matching file or
	// index.
	if f, ok := n.storageMatch(q); ok {
		pq.answered = true
		pq.rtt = 0
		pq.sameLoc = true
		pq.hops = 0
		if in := st.instr; in != nil {
			in.storageHits.Inc()
		}
		net.emit(st, trace.StorageHit, id, origin, -1, f.String())
		return
	}
	if ms := n.RI.Lookup(q, eng.Now()); len(ms) != 0 {
		if prov, ok := net.Behavior.SelectProvider(net, n, net.liveProviders(st, ms[0].Providers)); ok {
			pq.fromCache = true
			if in := st.instr; in != nil {
				in.cacheHits.Inc()
			}
			net.emit(st, trace.CacheHit, id, origin, -1, ms[0].File.String())
			net.completeDownload(st, id, pq, n, ms[0].File, prov, 0)
			return
		}
	}
	if in := st.instr; in != nil {
		in.cacheMisses.Inc()
	}
	msg := st.acquireMsg()
	msg.ID = id
	msg.Q = q
	if net.Behavior.UsesBloom() {
		// Computed once per query and shared by every branch: Bloom routing
		// tests the same keyword strings at each hop.
		msg.KwStrs = q.Strings()
	}
	// Cached once per query: every Gid-routing hop consults the same value.
	msg.QGid = gidOfQuery(q, net.Config.GroupCount)
	msg.Origin = origin
	msg.OriginLoc = n.Loc
	msg.TTL = net.Config.TTL
	msg.Path = append(msg.Path[:0], origin)
	net.forward(eng, st, n, msg, origin)
	st.releaseMsg(msg)
}

// markSeen adds the query to n's duplicate-suppression set and registers
// the entry for erasure at finalisation — on the pending query itself on
// the single-queue path, in n's shard's visit log under the sharded runner
// (where the pending query may live on another shard).
func (net *Network) markSeen(st *shardState, n *Node, id QueryID, pq *pendingQuery) {
	n.seen[id] = true
	if !net.sharded {
		pq.visited = append(pq.visited, n.ID)
		return
	}
	st.noteVisited(id, n.ID)
}

// forward runs the behaviour's neighbour selection and ships the query.
// eng is the engine the triggering event fired on; st its shard state.
func (net *Network) forward(eng *sim.Engine, st *shardState, n *Node, q *QueryMsg, from overlay.PeerID) {
	if q.TTL <= 0 {
		return
	}
	targets := net.Behavior.Forward(net, n, q, from)
	for _, t := range targets {
		if t == n.ID || !net.Graph.Online(t) || !net.Graph.Linked(n.ID, t) {
			continue
		}
		branch := st.acquireMsg()
		branch.ID = q.ID
		branch.Q = q.Q
		branch.KwStrs = q.KwStrs
		branch.QGid = q.QGid
		branch.Origin = q.Origin
		branch.OriginLoc = q.OriginLoc
		branch.TTL = q.TTL - 1
		branch.Path = append(append(branch.Path[:0], q.Path...), t)
		net.send(eng, n.ID, t, st.acquireQueryDeliver(net, n.ID, t, branch))
		net.countMessage(st, q.ID)
		net.emit(st, trace.QueryForward, q.ID, t, n.ID, "")
	}
}

// send schedules delivery of a typed message event over link a->b with the
// physical one-way latency plus processing delay. It posts on eng — the
// engine the current event fired on — so that under the sharded runner an
// intra-shard hop stays in its own queue and only genuinely cross-locality
// deliveries pay the mailbox (on the single-queue engine, eng is always
// net.Engine). Every such delay is at least Model.MinOneWay plus the
// processing delay, which is exactly the epoch lookahead the harness
// derives — so cross-shard sends are always barrier-safe.
func (net *Network) send(eng *sim.Engine, a, b overlay.PeerID, ev sim.Event) {
	delay := sim.FromMillis(net.Model.OneWay(int(a), int(b))) + net.Config.ProcessingDelay
	eng.PostEvent(delay, ev)
}

// countMessage attributes one overlay message to query id: directly when
// st owns the query, into the shard's cross-shard delta otherwise (merged
// at the epoch flush; dead queries — id at or below the watermark — are
// dropped, matching the single-queue "finalised queries stop counting"
// rule).
func (net *Network) countMessage(st *shardState, id QueryID) {
	if pq, ok := st.pending[id]; ok {
		if !pq.finalized {
			pq.messages++
		}
		return
	}
	if !net.sharded {
		return
	}
	if id > net.finalizedWatermark {
		st.msgDelta[id]++
	}
}

// receiveQuery processes an arriving query at peer p. The caller retains
// ownership of q (it is released to the pool after this returns), so any
// state that outlives the call — notably response reverse paths — is
// copied, never aliased.
func (net *Network) receiveQuery(eng *sim.Engine, st *shardState, p overlay.PeerID, q *QueryMsg) {
	if !net.Graph.Online(p) {
		return
	}
	var pq *pendingQuery
	if !net.sharded {
		pq = st.pending[q.ID]
		if pq == nil {
			// The query was already finalised: its seen entries are erased
			// and its record sealed, so processing a straggler would mutate
			// caches the sealed record never saw. Under the documented
			// FinalizeAfter contract (longer than any in-flight message)
			// this cannot happen; with a misconfigured shorter deadline,
			// dropping here keeps the run consistent and the seen sets
			// bounded.
			return
		}
	} else if own, ok := st.pending[q.ID]; ok {
		if own.finalized {
			return
		}
	} else if q.ID <= net.finalizedWatermark {
		// Sealed on another shard: same straggler rule, decided through the
		// watermark instead of a cross-shard map probe. Finalisations occur
		// in ascending id order, so the comparison is exact up to the last
		// epoch flush.
		return
	}
	n := net.nodes[p]
	if n.seen[q.ID] {
		net.emit(st, trace.QueryDuplicate, q.ID, p, -1, "")
		return // duplicate: already counted at send time
	}
	net.markSeen(st, n, q.ID, pq)

	// Storage hit?
	if f, ok := n.storageMatch(q.Q); ok {
		if in := st.instr; in != nil {
			in.storageHits.Inc()
		}
		net.emit(st, trace.StorageHit, q.ID, p, -1, f.String())
		rsp := st.acquireResponse()
		rsp.ID = q.ID
		rsp.File = f
		rsp.Providers = append(rsp.Providers[:0], cache.Provider{Peer: p, LocID: n.Loc, LastSeen: eng.Now()})
		rsp.QueryKws = q.Q
		rsp.Origin = q.Origin
		rsp.OriginLoc = q.OriginLoc
		rsp.Path = append(rsp.Path[:0], q.Path[:len(q.Path)-1]...)
		rsp.HitHops = len(q.Path) - 1
		rsp.FromStorage = true
		net.Behavior.OnAnswer(net, n, q, f)
		net.sendResponse(eng, st, p, rsp)
		return
	}
	// Response-index hit?
	if ms := n.RI.Lookup(q.Q, eng.Now()); len(ms) != 0 {
		m := net.selectIndexMatch(ms, q)
		if in := st.instr; in != nil {
			in.cacheHits.Inc()
		}
		net.emit(st, trace.CacheHit, q.ID, p, -1, m.File.String())
		rsp := st.acquireResponse()
		rsp.ID = q.ID
		rsp.File = m.File
		rsp.Providers = net.orderProvidersForOrigin(rsp.Providers[:0], m.Providers, q.OriginLoc)
		rsp.QueryKws = q.Q
		rsp.Origin = q.Origin
		rsp.OriginLoc = q.OriginLoc
		rsp.Path = append(rsp.Path[:0], q.Path[:len(q.Path)-1]...)
		rsp.HitHops = len(q.Path) - 1
		rsp.FromStorage = false
		net.Behavior.OnAnswer(net, n, q, m.File)
		net.sendResponse(eng, st, p, rsp)
		return
	}
	if in := st.instr; in != nil {
		in.cacheMisses.Inc()
	}
	net.forward(eng, st, n, q, q.Path[len(q.Path)-2])
}

// acquireResponse takes a ResponseMsg from the shard's pool; it is released
// when the response completes, is dropped by churn, or is superseded.
func (st *shardState) acquireResponse() *ResponseMsg {
	if n := len(st.respFree); n > 0 {
		r := st.respFree[n-1]
		st.respFree = st.respFree[:n-1]
		return r
	}
	return st.respSlab.New()
}

// releaseResponse returns a finished response to the shard's pool.
func (st *shardState) releaseResponse(rsp *ResponseMsg) {
	rsp.Providers = rsp.Providers[:0]
	rsp.Path = rsp.Path[:0]
	rsp.QueryKws = keywords.Query{}
	st.respFree = append(st.respFree, rsp)
}

// selectIndexMatch picks among multiple matching cached filenames: prefer
// the one with a provider in the origin's locality, then the one with most
// providers.
func (net *Network) selectIndexMatch(ms []cache.Match, q *QueryMsg) cache.Match {
	best := ms[0]
	bestScore := -1
	for _, m := range ms {
		score := len(m.Providers)
		for _, pr := range m.Providers {
			if pr.LocID == q.OriginLoc {
				score += 1000
				break
			}
		}
		if score > bestScore {
			best, bestScore = m, score
		}
	}
	return best
}

// orderProvidersForOrigin appends ps to dst so providers matching the
// origin's locality come first (the §4.1.2 answer-construction rule: the
// response contains the entry corresponding to the originator's locId plus
// other providers as alternatives).
func (net *Network) orderProvidersForOrigin(dst []cache.Provider, ps []cache.Provider, origin netmodel.LocID) []cache.Provider {
	for _, p := range ps {
		if p.LocID == origin {
			dst = append(dst, p)
		}
	}
	for _, p := range ps {
		if p.LocID != origin {
			dst = append(dst, p)
		}
	}
	return dst
}

// sendResponse walks the response one hop back along the reverse path,
// letting each traversed node apply the protocol's caching rule, and
// completes the query at the origin. The response is mutated in place as it
// walks: exactly one scheduled event owns it at any instant.
func (net *Network) sendResponse(eng *sim.Engine, st *shardState, from overlay.PeerID, rsp *ResponseMsg) {
	if len(rsp.Path) == 0 {
		// The answering node is the origin's neighbourless case; deliver
		// locally (should not happen: origin handles local hits).
		net.deliverResponse(eng, st, rsp.Origin, rsp)
		return
	}
	next := rsp.Path[len(rsp.Path)-1]
	rsp.Path = rsp.Path[:len(rsp.Path)-1]
	net.countMessage(st, rsp.ID)
	net.emit(st, trace.ResponseHop, rsp.ID, next, from, "")
	net.send(eng, from, next, st.acquireResponseDeliver(net, from, next, rsp))
}

// deliverResponse processes the response at peer p: caching, then either
// completion (p is the origin) or the next reverse hop.
func (net *Network) deliverResponse(eng *sim.Engine, st *shardState, p overlay.PeerID, rsp *ResponseMsg) {
	if !net.Graph.Online(p) {
		st.releaseResponse(rsp)
		return // reverse path broken by churn; response is lost
	}
	n := net.nodes[p]
	before := n.RI.Inserts() + n.RI.Refreshes()
	net.Behavior.CacheResponse(net, n, rsp)
	if n.RI.Inserts()+n.RI.Refreshes() != before {
		net.emit(st, trace.ResponseCached, rsp.ID, p, -1, rsp.File.String())
	}
	if p == rsp.Origin {
		net.completeQuery(st, n, rsp)
		st.releaseResponse(rsp)
		return
	}
	net.sendResponse(eng, st, p, rsp)
}

// completeQuery runs requester-side provider selection and download
// accounting for the first arriving response; later responses are ignored.
// It runs at the origin, so st is the shard owning the pending query.
func (net *Network) completeQuery(st *shardState, n *Node, rsp *ResponseMsg) {
	pq, ok := st.pending[rsp.ID]
	if !ok || pq.finalized || pq.answered {
		return
	}
	prov, ok := net.Behavior.SelectProvider(net, n, net.liveProviders(st, rsp.Providers))
	if !ok {
		return // all advertised providers are gone; await another response
	}
	pq.fromCache = !rsp.FromStorage
	net.completeDownload(st, rsp.ID, pq, n, rsp.File, prov, rsp.HitHops)
}

// completeDownload finalises the download bookkeeping: distance metric and
// natural replication (the requester becomes a provider, §3.1). st is the
// shard owning n (the origin).
func (net *Network) completeDownload(st *shardState, id QueryID, pq *pendingQuery, n *Node, f keywords.Filename, prov cache.Provider, hops int) {
	pq.answered = true
	pq.rtt = net.Model.RTT(int(n.ID), int(prov.Peer))
	pq.sameLoc = prov.LocID == n.Loc
	pq.hops = hops
	n.AddFile(f)
	if st.tr != nil {
		d := append(st.detailBuf[:0], f.String()...)
		d = append(d, " rtt="...)
		d = strconv.AppendFloat(d, pq.rtt, 'f', 1, 64)
		d = append(d, "ms sameLoc="...)
		d = strconv.AppendBool(d, pq.sameLoc)
		st.detailBuf = d
		net.emit(st, trace.DownloadComplete, id, n.ID, prov.Peer, string(d))
	}
}

// liveProviders filters out offline providers (stale indexes under churn)
// into the shard's provider scratch buffer, consumed synchronously by
// SelectProvider.
func (net *Network) liveProviders(st *shardState, ps []cache.Provider) []cache.Provider {
	out := st.provBuf[:0]
	for _, p := range ps {
		if net.Graph.Online(p.Peer) {
			out = append(out, p)
		}
	}
	st.provBuf = out[:0]
	return out
}

// queryRecord builds the metrics record for a resolved pending query.
func queryRecord(pq *pendingQuery) metrics.QueryRecord {
	return metrics.QueryRecord{
		Messages:     pq.messages,
		Success:      pq.answered,
		DownloadRTT:  pq.rtt,
		SameLocality: pq.sameLoc,
		FromCache:    pq.fromCache,
		Hops:         pq.hops,
	}
}

// finalize resolves query id on its owning shard. On the single-queue path
// it seals the record, erases the query's duplicate-suppression entries and
// recycles the bookkeeping immediately; under the sharded runner it only
// marks the query finalised and queues it for the epoch flush, where
// records from all shards seal in ascending id order.
func (net *Network) finalize(st *shardState, id QueryID) {
	pq, ok := st.pending[id]
	if !ok || pq.finalized {
		return
	}
	pq.finalized = true
	if in := st.instr; in != nil {
		in.finalized.Inc()
	}
	if !pq.answered {
		net.emit(st, trace.QueryFailed, id, pq.origin, -1, "")
	}
	net.emit(st, trace.QueryFinalize, id, pq.origin, -1, "")
	if net.sharded {
		st.finished = append(st.finished, id)
		return
	}
	pq.col.Record(queryRecord(pq))
	for _, p := range pq.visited {
		delete(net.nodes[p].seen, id)
	}
	delete(st.pending, id)
	st.pqFree = append(st.pqFree, pq)
}

// lookupPending finds a pending query across shards (the owner is the
// origin's shard; the scan is over the handful of shard states, not peers).
func (net *Network) lookupPending(id QueryID) (*pendingQuery, *shardState) {
	for _, st := range net.states {
		if pq, ok := st.pending[id]; ok {
			return pq, st
		}
	}
	return nil, nil
}

// EpochFlush merges the shards' cross-epoch bookkeeping. The sharded
// runner calls it at every epoch boundary (sequentially, with all shard
// goroutines joined): first every shard's cross-shard message deltas land
// on their owning pending queries, then the epoch's finalised queries seal
// their records in ascending QueryID order — one deterministic global
// record stream, independent of how the shards were drained — their seen
// entries erase across all shards, and the finalised watermark advances.
// A no-op on the single-queue path.
func (net *Network) EpochFlush() {
	if !net.sharded {
		return
	}
	if net.traceCol != nil {
		// Merge the epoch's per-shard trace cells into the sink first —
		// unconditionally, because cells may hold events (gossip,
		// duplicates) even when no query finalised this epoch.
		net.traceCol.Flush()
	}
	for _, st := range net.states {
		if len(st.msgDelta) == 0 {
			continue
		}
		// Iteration order is irrelevant: integer adds on distinct queries
		// commute.
		for id, d := range st.msgDelta {
			if pq, _ := net.lookupPending(id); pq != nil {
				pq.messages += d
			}
		}
		clear(st.msgDelta)
	}
	ids := net.flushIDs[:0]
	for _, st := range net.states {
		ids = append(ids, st.finished...)
		st.finished = st.finished[:0]
	}
	if len(ids) == 0 {
		net.flushIDs = ids
		return
	}
	slices.Sort(ids)
	for _, id := range ids {
		pq, owner := net.lookupPending(id)
		if pq == nil {
			continue
		}
		col := net.Collector
		if id <= net.warmupIDs {
			col = net.warmCol
		}
		col.Record(queryRecord(pq))
		for _, st := range net.states {
			if vs, ok := st.visited[id]; ok {
				for _, p := range vs {
					delete(net.nodes[p].seen, id)
				}
				delete(st.visited, id)
				st.visFree = append(st.visFree, vs[:0])
			}
		}
		delete(owner.pending, id)
		owner.pqFree = append(owner.pqFree, pq)
		if id > net.finalizedWatermark {
			net.finalizedWatermark = id
		}
	}
	net.flushIDs = ids[:0]
	if net.obsReg != nil {
		// Sequential barrier context: fold every shard's cell into the
		// registry and refresh the watermark lag, so a worker's /metrics
		// tracks long runs live instead of jumping at the end.
		net.drainObsLocked()
	}
}

// FlushPending finalises all still-pending queries immediately (used at
// the end of a bounded run), in ascending QueryID order — so trace output
// and retained records at an early cutoff are identical run to run instead
// of following Go's randomised map iteration.
func (net *Network) FlushPending() {
	if net.sharded {
		// Merge whatever the final (possibly partial) epoch left queued,
		// then finalise the survivors in id order and seal them through the
		// same flush path.
		net.EpochFlush()
		ids := make([]QueryID, 0, 16)
		for _, st := range net.states {
			for id := range st.pending {
				ids = append(ids, id)
			}
		}
		slices.Sort(ids)
		for _, id := range ids {
			if _, st := net.lookupPending(id); st != nil {
				net.finalize(st, id)
			}
		}
		net.EpochFlush()
		return
	}
	st := net.states[0]
	if len(st.pending) == 0 {
		return
	}
	ids := make([]QueryID, 0, len(st.pending))
	for id := range st.pending {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		net.finalize(st, id)
	}
}

// ResetCollector swaps in a fresh metrics collector (same configuration)
// and returns the old one. Queries already in flight keep finalising into
// the collector that was active when they were submitted, so a warmup phase
// cannot contaminate the measured phase. Single-queue path only: a sharded
// network routes warmup records by query id (SetWarmupQueries) because a
// mid-run swap would race the shard drains.
func (net *Network) ResetCollector() *metrics.Collector {
	if net.sharded {
		panic("protocol: ResetCollector on a sharded network; use SetWarmupQueries")
	}
	old := net.Collector
	net.Collector = metrics.NewCollectorWith(net.Config.Collector)
	return old
}

// SetWarmupQueries tells a sharded network that the first n submitted
// queries are warmup: their records seal into a discarded side collector,
// and Collector receives exactly the measured stream. Call before the run
// starts. A no-op on the single-queue path (which swaps collectors mid-run
// instead) and for n <= 0.
func (net *Network) SetWarmupQueries(n int) {
	if !net.sharded || n <= 0 {
		return
	}
	net.warmupIDs = QueryID(n)
	net.warmCol = metrics.NewCollectorWith(net.Config.Collector)
}

// Sharded reports whether the network runs on per-shard state under the
// sharded event loop.
func (net *Network) Sharded() bool { return net.sharded }

// fallbackNeighbors implements the last-resort forwarding set shared by the
// selective protocols: the highest-degree eligible neighbour (§4.2's
// "highly connected neighbor") plus up to FallbackFanout-1 random other
// eligible neighbours to keep the walk from degenerating into a single
// path.
func (net *Network) fallbackNeighbors(n *Node, q *QueryMsg, from overlay.PeerID) []overlay.PeerID {
	st := net.stateFor(n)
	best, ok := net.highestDegreeNeighbor(n, q, from)
	if !ok {
		return nil
	}
	eligible := st.eligBuf[:0]
	for _, nb := range net.Graph.Neighbors(n.ID) {
		if nb == from || q.onPath(nb) || !net.Graph.Online(nb) {
			continue
		}
		eligible = append(eligible, nb)
	}
	st.eligBuf = eligible[:0]
	out := append(st.fbBuf[:0], best)
	st.fbBuf = out[:0]
	if net.Config.FallbackFanout <= 1 || len(eligible) == 1 {
		st.forwarding.Fallback++
		return out
	}
	// Random extras among the remaining eligible neighbours.
	rest := st.restBuf[:0]
	for _, nb := range eligible {
		if nb != best {
			rest = append(rest, nb)
		}
	}
	st.restBuf = rest[:0]
	st.rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	extra := net.Config.FallbackFanout - 1
	if extra > len(rest) {
		extra = len(rest)
	}
	out = append(out, rest[:extra]...)
	st.forwarding.Fallback += uint64(len(out))
	return out
}

// highestDegreeNeighbor returns n's highest-degree neighbour not on the
// query path and not the sender — the "highly connected neighbor as a last
// resort" rule of §4.2. Ties break towards the lower peer id for
// determinism. ok is false when every neighbour is excluded.
func (net *Network) highestDegreeNeighbor(n *Node, q *QueryMsg, from overlay.PeerID) (overlay.PeerID, bool) {
	best := overlay.PeerID(-1)
	bestDeg := -1
	for _, nb := range net.Graph.Neighbors(n.ID) {
		if nb == from || q.onPath(nb) || !net.Graph.Online(nb) {
			continue
		}
		if d := net.Graph.Degree(nb); d > bestDeg {
			best, bestDeg = nb, d
		}
	}
	return best, best >= 0
}

// String describes the network.
func (net *Network) String() string {
	return fmt.Sprintf("network{%s n=%d}", net.Behavior.Name(), len(net.nodes))
}
