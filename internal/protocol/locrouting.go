package protocol

import (
	"github.com/p2prepro/locaware/internal/overlay"
)

// LocawareLR extends Locaware with the location-aware query routing the
// paper's conclusion proposes as future work ("one way is to investigate
// location-aware query routing in unstructured systems"): among
// Bloom-matched neighbours, those in the requester's locality are tried
// exclusively when available, steering the search towards regions where a
// same-locality provider is more likely to be cached.
type LocawareLR struct {
	Locaware
}

var _ Behavior = LocawareLR{}

// Name implements Behavior.
func (LocawareLR) Name() string { return "Locaware-LR" }

// Forward implements Behavior: Bloom-matched neighbours in the origin's
// locality first; then the plain Locaware preference chain.
func (l LocawareLR) Forward(net *Network, n *Node, q *QueryMsg, from overlay.PeerID) []overlay.PeerID {
	kws := q.kwStrings()
	sameLoc, other := net.targetBuf(n), net.targetBuf2(n)
	for _, nb := range net.Graph.Neighbors(n.ID) {
		if nb == from || q.onPath(nb) {
			continue
		}
		node := net.nodes[nb]
		if bf := n.NeighborBloom(nb); bf != nil && bf.TestAll(kws) {
			if node.Loc == q.OriginLoc {
				sameLoc = append(sameLoc, nb)
			} else {
				other = append(other, nb)
			}
		}
	}
	if len(sameLoc) > 0 {
		net.stats(n).BloomMatched += uint64(len(sameLoc))
		return sameLoc
	}
	if len(other) > 0 {
		net.stats(n).BloomMatched += uint64(len(other))
		return other
	}
	return l.Locaware.Forward(net, n, q, from)
}
