package protocol

import (
	"github.com/p2prepro/locaware/internal/bloom"
	"github.com/p2prepro/locaware/internal/cache"
	"github.com/p2prepro/locaware/internal/keywords"
	"github.com/p2prepro/locaware/internal/netmodel"
	"github.com/p2prepro/locaware/internal/overlay"
)

// Node is one peer's protocol state.
type Node struct {
	ID overlay.PeerID
	// Gid is the node's randomly chosen group id in [0, M) (§3.2).
	Gid int
	// Loc is the node's physical locality.
	Loc netmodel.LocID
	// files is the shared storage: canonical name -> filename. Peers that
	// download a file become providers (§3.1), so this grows during a run.
	files map[string]keywords.Filename
	// RI is the response index (§3.2).
	RI *cache.Index

	// cbf is the local counting Bloom filter over keywords of cached
	// filenames; published is the snapshot most recently announced to
	// neighbours. Only maintained when the behaviour uses Bloom routing.
	cbf       *bloom.Counting
	published *bloom.Filter
	// snapScratch and deltaBuf are reusable gossip-round scratch: the
	// freshly exported bit vector and the changed-position buffer of the
	// announcement delta. Persisting them makes PublishBloom allocation-
	// free in steady state (the remaining per-round allocator after the
	// PR 2 hot-path refactor).
	snapScratch *bloom.Filter
	deltaBuf    []uint32
	// announceBufs double-buffer the snapshot handed to in-flight install
	// events: round r announces one buffer while round r-1's buffer stays
	// frozen, so installs remain correct as long as deliveries land within
	// two gossip periods — a wide margin over the documented
	// period-exceeds-link-latency assumption, without cloning per round.
	// announceGens stamp each buffer's content generation; an install that
	// outlives its generation is dropped rather than applied (see
	// bloomInstallEvent).
	announceBufs [2]*bloom.Filter
	announceGens [2]uint64
	announceFlip int
	// neighborBF holds this node's copies of its neighbours' announced
	// filters (§4.2: "peer n stores its direct neighbors' Gid and BF"),
	// updated by gossip messages after link latency — so routing decisions
	// run on possibly stale local knowledge, exactly as deployed peers
	// would.
	neighborBF map[overlay.PeerID]*bloom.Filter

	// seen suppresses duplicate query deliveries (Gnutella semantics).
	seen map[QueryID]bool
}

// bloomSync wires cache events into the node's counting filter, keeping
// BF_n consistent with RI_n as §4.2 requires ("whenever n overhears a
// response qrf such that f matches Gid_n, n caches qrf in RI_n, and then
// inserts each keyword of f as an element of BF_n"; discarded filenames
// remove their keywords).
type bloomSync struct{ n *Node }

func (b bloomSync) FilenameAdded(f keywords.Filename) {
	if b.n.cbf == nil {
		return
	}
	for i := 0; i < f.K(); i++ {
		b.n.cbf.Add(string(f.KeywordAt(i)))
	}
}

func (b bloomSync) FilenameEvicted(f keywords.Filename) {
	if b.n.cbf == nil {
		return
	}
	for i := 0; i < f.K(); i++ {
		b.n.cbf.Remove(string(f.KeywordAt(i)))
	}
}

// initNode initialises a node in place (nodes live in the network's flat
// state table); useBloom enables the Bloom filter machinery (Locaware
// variants only). The seen set is sized for the steady-state in-flight
// query count — finalisation erases entries, so it does not grow with the
// run length.
func initNode(n *Node, id overlay.PeerID, gid int, loc netmodel.LocID, cacheCfg cache.Config, useBloom bool, bloomBits, bloomK int) {
	n.ID = id
	n.Gid = gid
	n.Loc = loc
	n.files = make(map[string]keywords.Filename, 8)
	n.seen = make(map[QueryID]bool, 8)
	n.RI = cache.New(cacheCfg, bloomSync{n})
	if useBloom {
		n.cbf = bloom.NewCounting(bloomBits, bloomK)
		n.published = bloom.New(bloomBits, bloomK)
		n.snapScratch = bloom.New(bloomBits, bloomK)
		n.neighborBF = make(map[overlay.PeerID]*bloom.Filter)
	}
}

// NeighborBloom returns this node's copy of neighbour nb's announced
// filter, or nil when none has been received yet (new link, pre-gossip, or
// Bloom routing disabled).
func (n *Node) NeighborBloom(nb overlay.PeerID) *bloom.Filter {
	if n.neighborBF == nil {
		return nil
	}
	return n.neighborBF[nb]
}

// setNeighborBloom installs a received announcement by copying it into
// this node's own per-neighbour filter (allocated once per link, reused
// for every later update). Copy-on-install means the sender's announced
// buffer is never retained across rounds, so gossip reuses one buffer per
// peer instead of cloning a snapshot per round — and a neighbour's view
// only ever changes when a gossip message actually arrives, exactly the
// stale-copy semantics of §4.2.
func (n *Node) setNeighborBloom(nb overlay.PeerID, f *bloom.Filter) {
	if n.neighborBF == nil {
		return
	}
	dst := n.neighborBF[nb]
	if dst == nil || dst.CopyFrom(f) != nil {
		n.neighborBF[nb] = f.Clone()
	}
}

// AddFile inserts f into the node's shared storage.
func (n *Node) AddFile(f keywords.Filename) { n.files[f.String()] = f }

// RemoveFile withdraws filename f from the node's shared storage (content
// dynamics: providers deleting files mid-run). It reports whether the file
// was present. Response indexes elsewhere keep advertising the peer until
// their entries age out — exactly the staleness a real withdrawal causes.
func (n *Node) RemoveFile(f keywords.Filename) bool {
	name := f.String()
	if _, ok := n.files[name]; !ok {
		return false
	}
	delete(n.files, name)
	return true
}

// HasFile reports whether the node shares filename f.
func (n *Node) HasFile(f keywords.Filename) bool {
	_, ok := n.files[f.String()]
	return ok
}

// NumFiles returns the size of the node's shared storage.
func (n *Node) NumFiles() int { return len(n.files) }

// storageMatch returns a filename in storage satisfying q, if any. With
// the small per-peer stores of the evaluation a linear scan is the right
// tool; deterministic order comes from scanning for the smallest matching
// name.
func (n *Node) storageMatch(q keywords.Query) (keywords.Filename, bool) {
	var best keywords.Filename
	found := false
	for name, f := range n.files {
		if !f.Matches(q) {
			continue
		}
		if !found || name < best.String() {
			best = f
			found = true
		}
	}
	return best, found
}

// PublishBloom refreshes the node's published Bloom snapshot from its
// counting filter and returns the delta against the previous snapshot
// (what the node would gossip to neighbours, footnote 1). The returned
// delta aliases the node's scratch buffer and is valid until the next
// call; in steady state the whole refresh allocates nothing.
func (n *Node) PublishBloom() (bloom.Delta, error) {
	if n.cbf == nil {
		return bloom.Delta{}, nil
	}
	if err := n.cbf.Export(n.snapScratch); err != nil {
		return bloom.Delta{}, err
	}
	d, err := bloom.DiffFiltersInto(n.published, n.snapScratch, n.deltaBuf)
	if err != nil {
		return bloom.Delta{}, err
	}
	n.deltaBuf = d.Flipped[:0]
	if err := n.published.CopyFrom(n.snapScratch); err != nil {
		return bloom.Delta{}, err
	}
	return d, nil
}

// PublishedBloom returns the snapshot neighbours read, or nil when Bloom
// routing is disabled.
func (n *Node) PublishedBloom() *bloom.Filter { return n.published }

// announceSnapshot returns a frozen copy of the published filter to carry
// in this round's install events, plus its content generation. The two
// per-node buffers alternate between rounds (allocated lazily, reused
// forever), so a round's announcement stays intact while the next round's
// is being built and the gossip plane still allocates nothing in steady
// state.
func (n *Node) announceSnapshot() (*bloom.Filter, uint64) {
	i := n.announceFlip
	buf := n.announceBufs[i]
	if buf == nil {
		buf = bloom.New(n.published.M(), n.published.K())
		n.announceBufs[i] = buf
	}
	n.announceFlip = i ^ 1
	n.announceGens[i]++
	// Geometry matches by construction.
	_ = buf.CopyFrom(n.published)
	return buf, n.announceGens[i]
}

// announceGenOf returns the current content generation of one of this
// node's announce buffers (0 for an unknown filter).
func (n *Node) announceGenOf(f *bloom.Filter) uint64 {
	switch f {
	case n.announceBufs[0]:
		return n.announceGens[0]
	case n.announceBufs[1]:
		return n.announceGens[1]
	default:
		return 0
	}
}

// gidOfName maps a canonical filename string to its group id:
// hash(f) mod M (Eq. 1). The FNV-1a hash is inlined (bit-identical to
// hash/fnv's 32-bit variant) so the per-hop routing and caching decisions
// hash without allocating a hasher or a byte-slice copy.
func gidOfName(name string, m int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime32
	}
	return int(h % uint32(m))
}

// gidOfKeyword maps a single keyword to a group id (Dicas-Keys).
func gidOfKeyword(kw keywords.Keyword, m int) int {
	return gidOfName(string(kw), m)
}

// gidOfQuery treats the query's canonical keyword string as if it were the
// filename — the only Gid a requester can compute without knowing the full
// filename. This is exactly the mismatch that "misleads keyword queries"
// in Dicas (§5.2): it equals gidOfName(f) only when the query contains all
// of f's keywords.
func gidOfQuery(q keywords.Query, m int) int {
	return gidOfName(keywords.NewFilename(q.Kws...).String(), m)
}
