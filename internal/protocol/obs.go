package protocol

import (
	"github.com/p2prepro/locaware/internal/obs"
)

// Metric families owned by the protocol layer.
const (
	MetricSubmitted    = "protocol_queries_submitted_total"
	MetricFinalized    = "protocol_queries_finalized_total"
	MetricCacheHits    = "protocol_cache_hits_total"
	MetricCacheMisses  = "protocol_cache_misses_total"
	MetricStorageHits  = "protocol_storage_hits_total"
	MetricBloomCopies  = "protocol_bloom_install_copies_total"
	MetricPendingHW    = "protocol_pending_queries_high_water"
	MetricWatermarkLag = "protocol_finalize_watermark_lag_high_water"
	MetricForwards     = "protocol_forwards_total"
	MetricControlMsgs  = "protocol_control_messages_total"
	MetricControlBits  = "protocol_control_bits_total"
	MetricStaleBlooms  = "protocol_stale_bloom_fallbacks_total"
	MetricPoolFree     = "protocol_pool_free"
)

// RegisterMetrics pre-registers every protocol metric family so scrape
// surfaces advertise the catalog before the first instrumented run.
func RegisterMetrics(reg *obs.Registry) {
	reg.Counter(MetricSubmitted, "Queries submitted.")
	reg.Counter(MetricFinalized, "Queries finalized.")
	reg.Counter(MetricCacheHits, "Response-index (cache) lookup hits.")
	reg.Counter(MetricCacheMisses, "Response-index lookups that missed and forwarded.")
	reg.Counter(MetricStorageHits, "Local storage matches.")
	reg.Counter(MetricBloomCopies, "Cross-shard bloom installs that copied the announce snapshot.")
	reg.Gauge(MetricPendingHW, "Highest in-flight pending-query count on any shard.")
	reg.Gauge(MetricWatermarkLag, "Highest issued-minus-finalized QueryID lag at an epoch flush.")
	reg.CounterVec(MetricForwards, "Forwarding decisions by selection tier.", "tier")
	reg.Counter(MetricControlMsgs, "Gossip-plane control messages.")
	reg.Counter(MetricControlBits, "Gossip-plane control traffic in bits.")
	reg.Counter(MetricStaleBlooms, "Bloom installs that fell back to the published filter.")
	reg.GaugeVec(MetricPoolFree, "Pooled objects on free lists at end of run, by pool.", "pool")
}

// shardInstr is one shard's observability cell: plain increments on the
// hot path, folded into the shared registry at the sequential epoch
// flush (or end of run). Nil when instrumentation is disabled — every
// hook is a single pointer check.
type shardInstr struct {
	cell        obs.Cell
	submitted   *obs.LocalCounter
	finalized   *obs.LocalCounter
	cacheHits   *obs.LocalCounter
	cacheMisses *obs.LocalCounter
	storageHits *obs.LocalCounter
	bloomCopies *obs.LocalCounter
	pendingHW   *obs.LocalMax
}

// EnableObs attaches per-shard instrumentation feeding reg. Call before
// the run starts; the registry may be shared across concurrent runs
// (totals accumulate), while each network keeps its own cells for
// per-run snapshots. Instrumentation never touches RNG streams or event
// order: runs stay bit-identical with it enabled.
func (net *Network) EnableObs(reg *obs.Registry) {
	net.obsReg = reg
	net.obsLag = reg.Gauge(MetricWatermarkLag, "Highest issued-minus-finalized QueryID lag at an epoch flush.")
	submitted := reg.Counter(MetricSubmitted, "Queries submitted.")
	finalized := reg.Counter(MetricFinalized, "Queries finalized.")
	cacheHits := reg.Counter(MetricCacheHits, "Response-index (cache) lookup hits.")
	cacheMisses := reg.Counter(MetricCacheMisses, "Response-index lookups that missed and forwarded.")
	storageHits := reg.Counter(MetricStorageHits, "Local storage matches.")
	bloomCopies := reg.Counter(MetricBloomCopies, "Cross-shard bloom installs that copied the announce snapshot.")
	pendingHW := reg.Gauge(MetricPendingHW, "Highest in-flight pending-query count on any shard.")
	for _, st := range net.states {
		in := &shardInstr{}
		in.submitted = in.cell.Counter(submitted)
		in.finalized = in.cell.Counter(finalized)
		in.cacheHits = in.cell.Counter(cacheHits)
		in.cacheMisses = in.cell.Counter(cacheMisses)
		in.storageHits = in.cell.Counter(storageHits)
		in.bloomCopies = in.cell.Counter(bloomCopies)
		in.pendingHW = in.cell.Max(pendingHW)
		st.instr = in
	}
}

// drainObsLocked folds every shard's cell into the registry and refreshes
// the watermark-lag gauge. Sequential contexts only (epoch flush, end of
// run).
func (net *Network) drainObsLocked() {
	for _, st := range net.states {
		st.instr.cell.Drain()
	}
	if net.sharded {
		if lag := uint64(net.nextID - net.finalizedWatermark); lag > net.obsLagHW {
			net.obsLagHW = lag
		}
		net.obsLag.SetMax(int64(net.obsLagHW))
	}
}

// DrainObs folds pending instrumentation into the registry; a no-op when
// EnableObs was never called.
func (net *Network) DrainObs() {
	if net.obsReg == nil {
		return
	}
	net.drainObsLocked()
}

// ObsSnapshot is a per-run summary of the protocol-layer instrumentation,
// assembled from this network's own cells (the registry may be shared).
type ObsSnapshot struct {
	Submitted           uint64
	Finalized           uint64
	CacheHits           uint64
	CacheMisses         uint64
	StorageHits         uint64
	BloomInstallCopies  uint64
	PendingHighWater    uint64
	WatermarkLagHighWtr uint64
}

// ObsStats sums this run's protocol instrumentation across shards. Zero
// value when EnableObs was never called.
func (net *Network) ObsStats() ObsSnapshot {
	var s ObsSnapshot
	if net.obsReg == nil {
		return s
	}
	for _, st := range net.states {
		in := st.instr
		s.Submitted += in.submitted.Total()
		s.Finalized += in.finalized.Total()
		s.CacheHits += in.cacheHits.Total()
		s.CacheMisses += in.cacheMisses.Total()
		s.StorageHits += in.storageHits.Total()
		s.BloomInstallCopies += in.bloomCopies.Total()
		if hw := in.pendingHW.Max(); hw > s.PendingHighWater {
			s.PendingHighWater = hw
		}
	}
	s.WatermarkLagHighWtr = net.obsLagHW
	return s
}

// PoolSizes reports the free-list length of every pooled object type,
// summed across shards — the end-of-run pool occupancy folded into
// protocol_pool_free. It allocates; snapshot paths only.
func (net *Network) PoolSizes() map[string]int {
	out := make(map[string]int, 8)
	for _, st := range net.states {
		out["pending"] += len(st.pqFree)
		out["query-msg"] += len(st.msgFree)
		out["response-msg"] += len(st.respFree)
		out["query-deliver"] += len(st.qdFree)
		out["response-deliver"] += len(st.rdFree)
		out["finalize"] += len(st.finFree)
		out["bloom-install"] += len(st.biFree)
		out["query-submit"] += len(st.qsFree)
		out["bloom-snapshot"] += len(st.snapFree)
	}
	return out
}
