package protocol

import (
	"math/rand"
	"testing"

	"github.com/p2prepro/locaware/internal/netmodel"
	"github.com/p2prepro/locaware/internal/obs"
	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/sim"
)

// gossipWorld builds a small fully-wired Locaware network for gossip-plane
// measurements: a ring of peers so every node has neighbours to announce
// to.
func gossipWorld(peers int) *Network {
	pts := make([]netmodel.Point, peers)
	for i := range pts {
		pts[i] = netmodel.Point{X: float64(i) * 900 / float64(peers), Y: 100}
	}
	eng := sim.NewEngine()
	model := netmodel.NewModel(pts, 1000, netmodel.LatencyConfig{MinRTT: 10, MaxRTT: 500}, 0)
	lm := netmodel.FixedLandmarks([]netmodel.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}, {X: 0, Y: 1000}, {X: 1000, Y: 1000}})
	loc := netmodel.NewLocator(model, lm)
	g := overlay.NewGraph(peers)
	for i := 0; i < peers; i++ {
		if err := g.AddLink(overlay.PeerID(i), overlay.PeerID((i+1)%peers)); err != nil {
			panic(err)
		}
	}
	cfg := DefaultConfig()
	cfg.BloomGossipPeriod = 0 // rounds driven by hand
	return NewNetwork(eng, g, model, loc, Locaware{}, cfg,
		rand.New(rand.NewSource(1)), rand.New(rand.NewSource(2)))
}

// churnFilters flips every node's counting filter so the next round has a
// non-empty delta to announce — the steady-state "response index changed
// since last announcement" condition.
func churnFilters(net *Network, round int) {
	for _, n := range net.nodes {
		if round%2 == 0 {
			n.cbf.Add("kw-toggle")
		} else {
			n.cbf.Remove("kw-toggle")
		}
	}
}

// gossipRound runs one full round: publish+announce at every node, then
// deliver the install events.
func gossipRound(net *Network, round int) {
	churnFilters(net, round)
	net.gossipBlooms(net.Engine, net.states[0])
	net.Engine.Run(0)
}

// TestGossipRoundZeroAlloc locks the gossip-plane satellite of the typed-
// event refactor: a steady-state gossip round — export, diff, announce to
// every neighbour, deliver and install every update — allocates nothing.
// Before the refactor each round cloned a snapshot per node, allocated a
// fresh delta, and scheduled a closure per neighbour.
func TestGossipRoundZeroAlloc(t *testing.T) {
	net := gossipWorld(64)
	// Warm pools: first rounds allocate per-link install filters, event
	// pool entries and scratch capacity.
	for r := 0; r < 4; r++ {
		gossipRound(net, r)
	}
	round := 4
	if n := testing.AllocsPerRun(50, func() {
		gossipRound(net, round)
		round++
	}); n != 0 {
		t.Fatalf("gossip round allocates %.1f/op, want 0", n)
	}
	if net.ControlMessages() == 0 {
		t.Fatal("no gossip traffic generated; the zero-alloc assertion is vacuous")
	}
}

// TestGossipRoundZeroAllocInstrumented re-proves the gossip-plane
// zero-alloc contract with full instrumentation attached — engine event
// accounting and protocol counters both active. The cells allocate only
// on first-seen event kinds, all of which the warm rounds touch, so the
// steady state stays at zero.
func TestGossipRoundZeroAllocInstrumented(t *testing.T) {
	net := gossipWorld(64)
	reg := obs.NewRegistry()
	ei := net.Engine.EnableObs(reg)
	net.EnableObs(reg)
	for r := 0; r < 4; r++ {
		gossipRound(net, r)
	}
	round := 4
	if n := testing.AllocsPerRun(50, func() {
		gossipRound(net, round)
		round++
	}); n != 0 {
		t.Fatalf("instrumented gossip round allocates %.1f/op, want 0", n)
	}
	ei.Drain()
	net.DrainObs()
	if got := reg.Counter(MetricBloomCopies, "").Value(); got != 0 {
		t.Fatalf("single-queue gossip made %d owned bloom copies, want 0", got)
	}
	evs := reg.CounterSamples()
	var installs uint64
	for _, s := range evs {
		if s.Name == sim.MetricEvents && s.Label == "bloom-install" {
			installs = s.Value
		}
	}
	if installs == 0 {
		t.Fatal("engine instrumentation counted no bloom-install events")
	}
}

// BenchmarkGossipRound measures the per-round cost of the gossip plane at
// a paper-scale neighbourhood: publish, announce, deliver, install.
func BenchmarkGossipRound(b *testing.B) {
	net := gossipWorld(256)
	for r := 0; r < 4; r++ {
		gossipRound(net, r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gossipRound(net, i+4)
	}
}
