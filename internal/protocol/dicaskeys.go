package protocol

import (
	"github.com/p2prepro/locaware/internal/cache"
	"github.com/p2prepro/locaware/internal/keywords"
	"github.com/p2prepro/locaware/internal/overlay"
)

// DicasKeys is the Dicas strategy adapted for keyword search (§2): indexes
// are cached based on hashes of the *query keywords* rather than the whole
// filename, and queries route towards groups of their own keywords. This
// supports keyword routing but "causes a large amount of duplicated cached
// indexes": the same filename is cached once per query keyword group,
// displacing other entries from the bounded response index — the storage
// cost Fig. 4 quantifies as the lowest success rate of the caching
// protocols.
type DicasKeys struct{}

var _ Behavior = DicasKeys{}

// Name implements Behavior.
func (DicasKeys) Name() string { return "Dicas-Keys" }

// UsesBloom implements Behavior.
func (DicasKeys) UsesBloom() bool { return false }

// CacheConfig implements Behavior: like Dicas, one provider per filename.
func (DicasKeys) CacheConfig(base cache.Config) cache.Config {
	base.MaxProvidersPerFile = 1
	return base
}

// Forward implements Behavior: the query routes towards the group of its
// routing keyword — the first keyword in canonical order, fixed for the
// query's lifetime so every hop steers consistently. Matching on a single
// group keeps Dicas-Keys' traffic in the same selective regime as Dicas
// (the paper's Fig. 3 shows all caching approaches ≈98% below flooding);
// matching any keyword's group would branch on most neighbours and
// degenerate towards flooding.
func (DicasKeys) Forward(net *Network, n *Node, q *QueryMsg, from overlay.PeerID) []overlay.PeerID {
	want := gidOfKeyword(routingKeyword(q.Q), net.Config.GroupCount)
	out := net.targetBuf(n)
	for _, nb := range net.Graph.Neighbors(n.ID) {
		if nb == from || q.onPath(nb) {
			continue
		}
		if net.nodes[nb].Gid == want {
			out = append(out, nb)
		}
	}
	if len(out) == 0 {
		return net.fallbackNeighbors(n, q, from)
	}
	net.stats(n).GidMatched += uint64(len(out))
	return out
}

// routingKeyword returns the query's designated routing keyword (first in
// canonical order; queries are deduplicated and sorted on construction).
func routingKeyword(q keywords.Query) keywords.Keyword {
	if len(q.Kws) == 0 {
		return ""
	}
	return q.Kws[0]
}

// CacheResponse implements Behavior: cache wherever the node's Gid matches
// the hash of any keyword of the originating query — the keyword-hash
// placement that duplicates indexes across groups.
func (DicasKeys) CacheResponse(net *Network, n *Node, rsp *ResponseMsg) {
	m := net.Config.GroupCount
	matched := false
	for _, kw := range rsp.QueryKws.Kws {
		if gidOfKeyword(kw, m) == n.Gid {
			matched = true
			break
		}
	}
	if !matched {
		return
	}
	now := net.nowFor(n)
	for _, p := range rsp.Providers {
		n.RI.Put(rsp.File, p.Peer, p.LocID, now)
	}
}

// OnAnswer implements Behavior: no answering-side state.
func (DicasKeys) OnAnswer(*Network, *Node, *QueryMsg, keywords.Filename) {}

// SelectProvider implements Behavior: first provider.
func (DicasKeys) SelectProvider(_ *Network, _ *Node, provs []cache.Provider) (cache.Provider, bool) {
	if len(provs) == 0 {
		return cache.Provider{}, false
	}
	return provs[0], true
}
