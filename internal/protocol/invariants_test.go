package protocol

import (
	"math/rand"
	"testing"

	"github.com/p2prepro/locaware/internal/keywords"
	"github.com/p2prepro/locaware/internal/metrics"
	"github.com/p2prepro/locaware/internal/netmodel"
	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/sim"
)

// randomNet builds a random small world with a connected overlay, shared
// files, and the given behaviour — the fixture for randomized invariant
// checking across all protocols.
func randomNet(t *testing.T, b Behavior, seed int64, peers int) (*Network, []keywords.Filename) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pts := netmodel.Place(peers, netmodel.DefaultPlacement(), r)
	model := netmodel.NewModel(pts, 1000, netmodel.DefaultLatency(), seed)
	lm := netmodel.NewLandmarks(4, 1000, r)
	loc := netmodel.NewLocator(model, lm)
	g := overlay.BuildRandom(peers, overlay.DefaultBuild(), r)
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Collector.RetainRecords = true // invariants inspect per-query records
	net := NewNetwork(eng, g, model, loc, b, cfg,
		rand.New(rand.NewSource(seed+1)), rand.New(rand.NewSource(seed+2)))

	// Seed files: a pool of filenames, three per peer.
	pool := keywords.NewPool(300)
	files := make([]keywords.Filename, 100)
	for i := range files {
		files[i] = pool.RandomFilename(3, r)
	}
	for p := 0; p < peers; p++ {
		for j := 0; j < 3; j++ {
			net.Node(overlay.PeerID(p)).AddFile(files[r.Intn(len(files))])
		}
	}
	return net, files
}

// TestProtocolInvariantsRandomized drives every protocol over random
// worlds and checks cross-cutting invariants the aggregate figures rely
// on:
//
//  1. every submitted query produces exactly one record;
//  2. message counts are non-negative and bounded by flooding's upper
//     bound (every peer forwards once to each neighbour);
//  3. successful queries report an RTT within the physical model's range;
//  4. same-locality downloads report zero-or-plausible RTTs;
//  5. the engine fully drains (no event leaks).
func TestProtocolInvariantsRandomized(t *testing.T) {
	behaviors := []Behavior{Flooding{}, Dicas{}, DicasKeys{}, Locaware{}, LocawareLR{}}
	for _, b := range behaviors {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				net, files := randomNet(t, b, seed, 120)
				r := rand.New(rand.NewSource(seed * 97))
				const queries = 60
				for i := 0; i < queries; i++ {
					f := files[r.Intn(len(files))]
					q := keywords.ExtractQuery(f, r)
					origin := overlay.PeerID(r.Intn(120))
					net.Engine.MustSchedule(sim.Time(i)*sim.Second, func(*sim.Engine) {
						net.SubmitQuery(origin, q)
					})
				}
				// Bounded run: the Bloom gossip control reschedules
				// itself forever, so an unbounded Run would never drain.
				net.Engine.RunUntil(sim.Time(queries)*sim.Second+net.Config.FinalizeAfter+sim.Minute, 0)
				net.FlushPending()

				recs := net.Collector.Records()
				if len(recs) != queries {
					t.Fatalf("seed %d: %d records for %d queries", seed, len(recs), queries)
				}
				// Flooding upper bound: 2×edges messages for the query
				// wave plus a response per hop (<= TTL) — generous cap.
				cap := 2*net.Graph.Edges() + net.Config.TTL + 1
				for _, rec := range recs {
					if rec.Messages < 0 || rec.Messages > cap {
						t.Fatalf("seed %d: messages %d outside [0,%d]", seed, rec.Messages, cap)
					}
					if rec.Success {
						if rec.DownloadRTT < 0 || rec.DownloadRTT > 500*1.5 {
							t.Fatalf("seed %d: rtt %v outside model range", seed, rec.DownloadRTT)
						}
						if rec.Hops < 0 || rec.Hops > net.Config.TTL {
							t.Fatalf("seed %d: hops %d outside [0,TTL]", seed, rec.Hops)
						}
					} else {
						if rec.DownloadRTT != 0 || rec.Hops != 0 {
							t.Fatalf("seed %d: failed query carries outcome data: %+v", seed, rec)
						}
					}
				}
				// Non-gossiping protocols must fully drain; gossiping
				// protocols legitimately keep their periodic control
				// pending.
				if !b.UsesBloom() && net.Engine.Len() != 0 {
					t.Fatalf("seed %d: %d events leaked", seed, net.Engine.Len())
				}
			}
		})
	}
}

// TestPairedWorkloadIdenticalAcrossProtocols verifies the paired-run
// property the comparisons depend on: with equal seeds, every protocol
// answers the exact same query sequence (only outcomes differ).
func TestPairedWorkloadIdenticalAcrossProtocols(t *testing.T) {
	collect := func(b Behavior) []metrics.QueryRecord {
		net, files := randomNet(t, b, 42, 100)
		r := rand.New(rand.NewSource(4242))
		for i := 0; i < 40; i++ {
			f := files[r.Intn(len(files))]
			q := keywords.ExtractQuery(f, r)
			origin := overlay.PeerID(r.Intn(100))
			net.Engine.MustSchedule(sim.Time(i)*sim.Second, func(*sim.Engine) {
				net.SubmitQuery(origin, q)
			})
		}
		net.Engine.RunUntil(40*sim.Second+net.Config.FinalizeAfter+sim.Minute, 0)
		net.FlushPending()
		return net.Collector.Records()
	}
	a := collect(Flooding{})
	c := collect(Locaware{})
	if len(a) != len(c) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(c))
	}
	// IDs align; flooding must succeed wherever any protocol can, because
	// it explores a superset of every selective protocol's search space
	// is NOT guaranteed per-query (TTL bounds both), so we only assert
	// the aggregate: flooding's success count dominates.
	succA, succC := 0, 0
	for i := range a {
		if a[i].Success {
			succA++
		}
		if c[i].Success {
			succC++
		}
	}
	if succA < succC {
		t.Fatalf("flooding (%d) should not trail locaware (%d) on an identical workload", succA, succC)
	}
}
