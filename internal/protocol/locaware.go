package protocol

import (
	"math"

	"github.com/p2prepro/locaware/internal/cache"
	"github.com/p2prepro/locaware/internal/keywords"
	"github.com/p2prepro/locaware/internal/overlay"
)

// Locaware is the paper's contribution (§4):
//
//   - caching placement inherited from Dicas (Gid on the filename hash),
//     avoiding redundant indexes among neighbours;
//   - location-aware indexes: several providers per cached filename, each
//     tagged with its locId (§4.1.1);
//   - natural-replication learning: the requester rides the response as a
//     new provider and is inserted by every caching peer on the reverse
//     path, and by the answering peer (§4.1.2);
//   - Bloom-filter keyword routing: forward to neighbours whose gossiped
//     filter matches every query keyword; fall back to Gid-matched
//     neighbours, then to the highest-degree neighbour (§4.2);
//   - location-aware provider selection at the requester: same locId if
//     possible, else the measured-RTT minimum (§5.1).
type Locaware struct{}

var _ Behavior = Locaware{}

// Name implements Behavior.
func (Locaware) Name() string { return "Locaware" }

// UsesBloom implements Behavior.
func (Locaware) UsesBloom() bool { return true }

// CacheConfig implements Behavior: keep the multi-provider bounds.
func (Locaware) CacheConfig(base cache.Config) cache.Config { return base }

// Forward implements Behavior. Neighbour preference order per §4.2: Bloom
// match on all keywords → Gid match → highest-degree last resort.
func (Locaware) Forward(net *Network, n *Node, q *QueryMsg, from overlay.PeerID) []overlay.PeerID {
	kws := q.kwStrings()
	bfMatched := net.targetBuf(n)
	for _, nb := range net.Graph.Neighbors(n.ID) {
		if nb == from || q.onPath(nb) {
			continue
		}
		if bf := n.NeighborBloom(nb); bf != nil && bf.TestAll(kws) {
			bfMatched = append(bfMatched, nb)
		}
	}
	if len(bfMatched) > 0 {
		net.stats(n).BloomMatched += uint64(len(bfMatched))
		return bfMatched
	}
	want := q.QGid
	gidMatched := net.targetBuf(n) // bfMatched is empty, so reuse is safe
	for _, nb := range net.Graph.Neighbors(n.ID) {
		if nb == from || q.onPath(nb) {
			continue
		}
		if net.nodes[nb].Gid == want {
			gidMatched = append(gidMatched, nb)
		}
	}
	if len(gidMatched) > 0 {
		net.stats(n).GidMatched += uint64(len(gidMatched))
		return gidMatched
	}
	return net.fallbackNeighbors(n, q, from)
}

// CacheResponse implements Behavior: matching-Gid peers cache every
// provider in the response plus the requester as a new provider (§4.1.2's
// worked example: B caches (D,1) and (A,3)).
func (Locaware) CacheResponse(net *Network, n *Node, rsp *ResponseMsg) {
	if gidOfName(rsp.File.String(), net.Config.GroupCount) != n.Gid {
		return
	}
	now := net.nowFor(n)
	for _, p := range rsp.Providers {
		n.RI.Put(rsp.File, p.Peer, p.LocID, now)
	}
	if rsp.Origin != n.ID {
		n.RI.Put(rsp.File, rsp.Origin, rsp.OriginLoc, now)
	}
}

// OnAnswer implements Behavior: the answering peer records the requester
// as a new provider when its Gid matches the filename ("peer B then adds
// in its RI the entry (E,1) as a new provider of f", §4.1.2).
func (Locaware) OnAnswer(net *Network, n *Node, q *QueryMsg, f keywords.Filename) {
	if gidOfName(f.String(), net.Config.GroupCount) != n.Gid {
		return
	}
	if q.Origin == n.ID {
		return
	}
	n.RI.Put(f, q.Origin, q.OriginLoc, net.nowFor(n))
}

// SelectProvider implements Behavior, the §5.1 rule: prefer a provider in
// the requester's locality; otherwise measure RTT to every advertised
// provider and take the minimum.
func (Locaware) SelectProvider(net *Network, requester *Node, provs []cache.Provider) (cache.Provider, bool) {
	if len(provs) == 0 {
		return cache.Provider{}, false
	}
	for _, p := range provs {
		if p.LocID == requester.Loc {
			return p, true
		}
	}
	best := provs[0]
	bestRTT := math.Inf(1)
	for _, p := range provs {
		if rtt := net.Model.RTT(int(requester.ID), int(p.Peer)); rtt < bestRTT {
			best, bestRTT = p, rtt
		}
	}
	return best, true
}
