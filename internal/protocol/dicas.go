package protocol

import (
	"github.com/p2prepro/locaware/internal/cache"
	"github.com/p2prepro/locaware/internal/keywords"
	"github.com/p2prepro/locaware/internal/overlay"
)

// Dicas is the filename-search baseline (Wang et al., TPDS 2006) as
// described in §2/§3.2: query responses for file f are cached only at peers
// whose Gid equals hash(f) mod M, and queries route towards neighbours in
// the matching group. It keeps a single provider per cached filename and
// ignores physical location. Under the keyword workload its routing is
// misled: a requester can only hash the keywords it has, which matches
// hash(f) only for full-filename queries (§5.2).
type Dicas struct{}

var _ Behavior = Dicas{}

// Name implements Behavior.
func (Dicas) Name() string { return "Dicas" }

// UsesBloom implements Behavior.
func (Dicas) UsesBloom() bool { return false }

// CacheConfig implements Behavior: one provider per filename — Locaware's
// multi-provider index is one of its two advantages over Dicas (§5.2).
func (Dicas) CacheConfig(base cache.Config) cache.Config {
	base.MaxProvidersPerFile = 1
	return base
}

// Forward implements Behavior: neighbours whose Gid matches the query's
// filename hash; if none, the highest-degree neighbour keeps the query
// alive.
func (Dicas) Forward(net *Network, n *Node, q *QueryMsg, from overlay.PeerID) []overlay.PeerID {
	want := q.QGid
	out := net.targetBuf(n)
	for _, nb := range net.Graph.Neighbors(n.ID) {
		if nb == from || q.onPath(nb) {
			continue
		}
		if net.nodes[nb].Gid == want {
			out = append(out, nb)
		}
	}
	if len(out) == 0 {
		return net.fallbackNeighbors(n, q, from)
	}
	net.stats(n).GidMatched += uint64(len(out))
	return out
}

// CacheResponse implements Behavior: cache at matching-Gid peers on the
// reverse path (Eq. 1), storing the responding provider only.
func (Dicas) CacheResponse(net *Network, n *Node, rsp *ResponseMsg) {
	if gidOfName(rsp.File.String(), net.Config.GroupCount) != n.Gid {
		return
	}
	now := net.nowFor(n)
	for _, p := range rsp.Providers {
		n.RI.Put(rsp.File, p.Peer, p.LocID, now)
	}
}

// OnAnswer implements Behavior: Dicas does not learn from requesters.
func (Dicas) OnAnswer(*Network, *Node, *QueryMsg, keywords.Filename) {}

// SelectProvider implements Behavior: first provider, no location
// awareness.
func (Dicas) SelectProvider(_ *Network, _ *Node, provs []cache.Provider) (cache.Provider, bool) {
	if len(provs) == 0 {
		return cache.Provider{}, false
	}
	return provs[0], true
}
