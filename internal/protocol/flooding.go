package protocol

import (
	"github.com/p2prepro/locaware/internal/cache"
	"github.com/p2prepro/locaware/internal/keywords"
	"github.com/p2prepro/locaware/internal/overlay"
)

// Flooding is the blind Gnutella baseline: every query is forwarded to all
// neighbours (except the sender) until TTL expires, with no index caching
// and no location awareness. It anchors the traffic comparison of Fig. 3
// and the success-rate ceiling of Fig. 4.
type Flooding struct{}

var _ Behavior = Flooding{}

// Name implements Behavior.
func (Flooding) Name() string { return "Flooding" }

// UsesBloom implements Behavior.
func (Flooding) UsesBloom() bool { return false }

// CacheConfig implements Behavior. Flooding performs no index caching; the
// cache is kept at minimum size and never written.
func (Flooding) CacheConfig(base cache.Config) cache.Config {
	base.MaxFilenames = 1
	base.MaxProvidersPerFile = 1
	return base
}

// Forward implements Behavior: all neighbours except the sender and peers
// already on the path.
func (Flooding) Forward(net *Network, n *Node, q *QueryMsg, from overlay.PeerID) []overlay.PeerID {
	out := net.targetBuf(n)
	for _, nb := range net.Graph.Neighbors(n.ID) {
		if nb == from || q.onPath(nb) {
			continue
		}
		out = append(out, nb)
	}
	net.stats(n).FloodAll += uint64(len(out))
	return out
}

// CacheResponse implements Behavior: flooding caches nothing.
func (Flooding) CacheResponse(*Network, *Node, *ResponseMsg) {}

// OnAnswer implements Behavior: no answering-side state.
func (Flooding) OnAnswer(*Network, *Node, *QueryMsg, keywords.Filename) {}

// SelectProvider implements Behavior: take the first advertised provider —
// blind search has no basis for preferring one copy over another.
func (Flooding) SelectProvider(_ *Network, _ *Node, provs []cache.Provider) (cache.Provider, bool) {
	if len(provs) == 0 {
		return cache.Provider{}, false
	}
	return provs[0], true
}
