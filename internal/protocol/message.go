// Package protocol implements the search protocols compared in §5 of the
// Locaware paper on top of the simulation substrates:
//
//   - Flooding — blind Gnutella flooding bounded by TTL;
//   - Dicas — group-Id (Gid) restricted index caching with filename-hash
//     routing (Wang et al., TPDS 2006), the paper's first baseline;
//   - Dicas-Keys — the Dicas variant for keyword search that caches and
//     routes on hashed query keywords, the paper's second baseline;
//   - Locaware — Gid-restricted caching with location-aware provider
//     entries, requester-as-new-provider insertion, and Bloom-filter
//     keyword routing (§4);
//   - Locaware-LR — the §6 future-work extension that also biases routing
//     towards the requester's locality.
//
// All protocols share one message plane (query forwarding with TTL 7 and
// reverse-path responses) so their traffic is counted identically.
package protocol

import (
	"github.com/p2prepro/locaware/internal/cache"
	"github.com/p2prepro/locaware/internal/keywords"
	"github.com/p2prepro/locaware/internal/netmodel"
	"github.com/p2prepro/locaware/internal/overlay"
)

// QueryID identifies a query across the network.
type QueryID uint64

// QueryMsg is a keyword query in flight (§3.1: a query is expressed by some
// keywords related to the queried filename). Instances are pooled by the
// network: a message is valid only during its delivery event, and state
// that outlives the event (response paths) must be copied out.
type QueryMsg struct {
	ID QueryID
	// Q is the keyword set.
	Q keywords.Query
	// KwStrs caches Q's keywords as strings for Bloom membership tests;
	// computed once at submission (Bloom-routing behaviours only) and
	// shared read-only by every branch of the query.
	KwStrs []string
	// QGid caches gidOfQuery(Q, M): the group id every Gid-routing hop
	// would otherwise recompute by rebuilding the query's canonical
	// filename string.
	QGid int
	// Origin is the requesting peer; OriginLoc its locality (§4.1.2: the
	// answering peer selects providers according to the locId of the
	// querying peer, so the query carries it).
	Origin    overlay.PeerID
	OriginLoc netmodel.LocID
	// TTL is the remaining hop budget; the paper bounds searches at 7.
	TTL int
	// Path is the peers traversed so far, Origin first. Responses follow
	// the reverse of this path (§3.1).
	Path []overlay.PeerID
}

// kwStrings returns the query's keywords as strings, preferring the
// per-query cached slice (set at submission for Bloom-routing behaviours).
func (q *QueryMsg) kwStrings() []string {
	if q.KwStrs != nil {
		return q.KwStrs
	}
	return q.Q.Strings()
}

// onPath reports whether p already appears on the query's path.
func (q *QueryMsg) onPath(p overlay.PeerID) bool {
	for _, x := range q.Path {
		if x == p {
			return true
		}
	}
	return false
}

// ResponseMsg is a query response travelling the reverse path (§3.1: "query
// responses follow the reverse path of their corresponding q"). Instances
// are pooled and mutated in place as they walk the reverse path: exactly
// one scheduled delivery owns a response at any instant.
type ResponseMsg struct {
	ID QueryID
	// File is the satisfying filename.
	File keywords.Filename
	// Providers lists known providers of File, most preferred first. A
	// Locaware response carries several, each tagged with its locId
	// (§4.1.1); baselines carry one.
	Providers []cache.Provider
	// QueryKws preserves the originating query's keywords; Dicas-Keys
	// caches by hashed query keywords, so the response must carry them.
	QueryKws keywords.Query
	// Origin / OriginLoc identify the requester, which reverse-path peers
	// treat as a new provider of File in Locaware (§4.1.2).
	Origin    overlay.PeerID
	OriginLoc netmodel.LocID
	// Path is the remaining reverse path to walk; Path[len-1] is the next
	// hop already consumed by the network layer as it advances.
	Path []overlay.PeerID
	// HitHops is the overlay distance from origin to the answering peer.
	HitHops int
	// FromStorage reports whether the hit came from shared storage (true)
	// or a response index (false).
	FromStorage bool
}
