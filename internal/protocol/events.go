package protocol

import (
	"github.com/p2prepro/locaware/internal/bloom"
	"github.com/p2prepro/locaware/internal/keywords"
	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/sim"
)

// This file defines the network's typed simulator events. Every hot-path
// action that used to schedule a closure — query forwards, response hops,
// query finalisation, Bloom gossip installs, the gossip round timer — is a
// pooled concrete type here, so steady-state scheduling allocates nothing
// and every message-carrying event names its destination peer
// (sim.Destined), which is what the sharded runner routes on.
//
// Pooling protocol: the sending shard acquires an event, fills it, posts
// it; the event releases itself to the pool of the shard it fires on (its
// destination's shard), resolved through the engine's shard index. Traffic
// symmetry keeps per-shard pools balanced, and no pool is ever touched by
// two shards within an epoch. An event dropped by the engine's horizon is
// never fired and is reclaimed by the GC, exactly like a dropped message
// buffer.

// queryDeliverEvent delivers a forwarded query branch from src to dst.
type queryDeliverEvent struct {
	net *Network
	src overlay.PeerID
	dst overlay.PeerID
	msg *QueryMsg
}

func (ev *queryDeliverEvent) EventDst() int     { return int(ev.dst) }
func (ev *queryDeliverEvent) EventSrc() int     { return int(ev.src) }
func (ev *queryDeliverEvent) EventName() string { return "query-deliver" }

func (ev *queryDeliverEvent) Fire(e *sim.Engine) {
	net := ev.net
	st := net.stateOn(e)
	net.receiveQuery(e, st, ev.dst, ev.msg)
	st.releaseMsg(ev.msg)
	ev.msg = nil
	st.qdFree = append(st.qdFree, ev)
}

func (st *shardState) acquireQueryDeliver(net *Network, src, dst overlay.PeerID, msg *QueryMsg) *queryDeliverEvent {
	if n := len(st.qdFree); n > 0 {
		ev := st.qdFree[n-1]
		st.qdFree = st.qdFree[:n-1]
		ev.src, ev.dst, ev.msg = src, dst, msg
		return ev
	}
	ev := st.qdSlab.New()
	ev.net, ev.src, ev.dst, ev.msg = net, src, dst, msg
	return ev
}

// responseDeliverEvent advances a response one hop to dst on the reverse
// path. Ownership of the ResponseMsg stays with the delivery chain:
// deliverResponse either completes and releases it or re-posts the next
// hop.
type responseDeliverEvent struct {
	net *Network
	src overlay.PeerID
	dst overlay.PeerID
	rsp *ResponseMsg
}

func (ev *responseDeliverEvent) EventDst() int     { return int(ev.dst) }
func (ev *responseDeliverEvent) EventSrc() int     { return int(ev.src) }
func (ev *responseDeliverEvent) EventName() string { return "response-deliver" }

func (ev *responseDeliverEvent) Fire(e *sim.Engine) {
	net := ev.net
	st := net.stateOn(e)
	net.deliverResponse(e, st, ev.dst, ev.rsp)
	ev.rsp = nil
	st.rdFree = append(st.rdFree, ev)
}

func (st *shardState) acquireResponseDeliver(net *Network, src, dst overlay.PeerID, rsp *ResponseMsg) *responseDeliverEvent {
	if n := len(st.rdFree); n > 0 {
		ev := st.rdFree[n-1]
		st.rdFree = st.rdFree[:n-1]
		ev.src, ev.dst, ev.rsp = src, dst, rsp
		return ev
	}
	ev := st.rdSlab.New()
	ev.net, ev.src, ev.dst, ev.rsp = net, src, dst, rsp
	return ev
}

// finalizeEvent seals query id's record FinalizeAfter after submission. It
// is destined to the query's origin: under the sharded runner the seal
// fires on the shard that owns the requester — which is the shard holding
// the query's pendingQuery.
type finalizeEvent struct {
	net *Network
	id  QueryID
	dst overlay.PeerID
}

func (ev *finalizeEvent) EventDst() int     { return int(ev.dst) }
func (ev *finalizeEvent) EventName() string { return "query-finalize" }

func (ev *finalizeEvent) Fire(e *sim.Engine) {
	net := ev.net
	st := net.stateOn(e)
	net.finalize(st, ev.id)
	st.finFree = append(st.finFree, ev)
}

func (st *shardState) acquireFinalize(net *Network, id QueryID, dst overlay.PeerID) *finalizeEvent {
	if n := len(st.finFree); n > 0 {
		ev := st.finFree[n-1]
		st.finFree = st.finFree[:n-1]
		ev.id, ev.dst = id, dst
		return ev
	}
	ev := st.finSlab.New()
	ev.net, ev.id, ev.dst = net, id, dst
	return ev
}

// querySubmitEvent carries a sharded submission from the control shard to
// the origin's shard, where the actual submission work (pending-query
// creation, finalisation scheduling, first fan-out) runs with that shard's
// state. The injection lead time equals the epoch lookahead, so posting it
// across the shard boundary is barrier-safe by construction.
type querySubmitEvent struct {
	net *Network
	dst overlay.PeerID
	id  QueryID
	q   keywords.Query
}

func (ev *querySubmitEvent) EventDst() int     { return int(ev.dst) }
func (ev *querySubmitEvent) EventName() string { return "query-submit" }

func (ev *querySubmitEvent) Fire(e *sim.Engine) {
	net := ev.net
	st := net.stateOn(e)
	net.runSubmit(e, st, ev.id, ev.dst, ev.q)
	ev.q = keywords.Query{}
	st.qsFree = append(st.qsFree, ev)
}

func (st *shardState) acquireSubmit(net *Network, id QueryID, dst overlay.PeerID, q keywords.Query) *querySubmitEvent {
	if n := len(st.qsFree); n > 0 {
		ev := st.qsFree[n-1]
		st.qsFree = st.qsFree[:n-1]
		ev.dst, ev.id, ev.q = dst, id, q
		return ev
	}
	ev := st.qsSlab.New()
	ev.net, ev.dst, ev.id, ev.q = net, dst, id, q
	return ev
}

// bloomInstallEvent delivers one Bloom gossip announcement: dst installs
// (copies) from's announced filter after link latency.
//
// Intra-shard (and single-queue) installs carry one of from's two
// alternating announce buffers, frozen until from's next-but-one gossip
// round — the install copies rather than retains it. gen is the buffer
// generation at announce time: if the buffer has been reused before the
// event lands (a gossip period shorter than twice the link delay — a
// misconfiguration, but a reachable one under extreme degrade-region
// scenarios), the install falls back to a copy of the sender's current
// published filter and is counted. The fallback keeps gossip convergent —
// the neighbour receives a valid (fresher) snapshot instead of silently
// keeping round-r's content forever when later deltas are empty — without
// ever installing torn buffer contents.
//
// Cross-shard installs (owned=true) instead carry a pooled copy taken at
// announce time: the destination shard must not read the sender's live
// announce buffers mid-epoch. The copy is exact announce-time content, so
// neither the generation check nor the stale fallback applies; the filter
// returns to the firing shard's snapshot pool after the install.
type bloomInstallEvent struct {
	net   *Network
	dst   overlay.PeerID
	from  overlay.PeerID
	snap  *bloom.Filter
	gen   uint64
	owned bool
}

func (ev *bloomInstallEvent) EventDst() int     { return int(ev.dst) }
func (ev *bloomInstallEvent) EventSrc() int     { return int(ev.from) }
func (ev *bloomInstallEvent) EventName() string { return "bloom-install" }

func (ev *bloomInstallEvent) Fire(e *sim.Engine) {
	net := ev.net
	st := net.stateOn(e)
	snap := ev.snap
	if ev.owned {
		net.nodes[ev.dst].setNeighborBloom(ev.from, snap)
		st.snapFree = append(st.snapFree, snap)
	} else {
		if net.nodes[ev.from].announceGenOf(snap) != ev.gen {
			st.staleBloomFallbacks++
			snap = net.nodes[ev.from].PublishedBloom()
		}
		net.nodes[ev.dst].setNeighborBloom(ev.from, snap)
	}
	ev.snap = nil
	st.biFree = append(st.biFree, ev)
}

func (st *shardState) acquireBloomInstall(net *Network, dst, from overlay.PeerID, snap *bloom.Filter, gen uint64) *bloomInstallEvent {
	if n := len(st.biFree); n > 0 {
		ev := st.biFree[n-1]
		st.biFree = st.biFree[:n-1]
		ev.dst, ev.from, ev.snap, ev.gen, ev.owned = dst, from, snap, gen, false
		return ev
	}
	ev := st.biSlab.New()
	ev.net, ev.dst, ev.from, ev.snap, ev.gen = net, dst, from, snap, gen
	return ev
}

// acquireBloomInstallOwned builds a cross-shard install carrying a pooled
// copy of src (the sender's announce-time snapshot).
func (st *shardState) acquireBloomInstallOwned(net *Network, dst, from overlay.PeerID, src *bloom.Filter) *bloomInstallEvent {
	var snap *bloom.Filter
	if n := len(st.snapFree); n > 0 {
		snap = st.snapFree[n-1]
		st.snapFree = st.snapFree[:n-1]
	} else {
		snap = bloom.New(src.M(), src.K())
	}
	// Geometry matches by construction: all filters in one network share
	// the configured bits/hashes.
	_ = snap.CopyFrom(src)
	if in := st.instr; in != nil {
		in.bloomCopies.Inc()
	}
	ev := st.acquireBloomInstall(net, dst, from, snap, 0)
	ev.owned = true
	return ev
}

// gossipRoundEvent is the periodic gossip control: one instance per shard,
// rescheduling itself on its own engine after each round — the typed,
// allocation-free analogue of Engine.Every. It is undestined on purpose:
// posted on its shard's engine at build time, it stays there, and its scan
// walks only that shard's peers.
type gossipRoundEvent struct {
	net    *Network
	st     *shardState
	period sim.Time
}

func (ev *gossipRoundEvent) EventName() string { return "gossip-round" }

func (ev *gossipRoundEvent) Fire(e *sim.Engine) {
	ev.net.gossipBlooms(e, ev.st)
	e.PostEvent(ev.period, ev)
}
