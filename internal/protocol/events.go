package protocol

import (
	"github.com/p2prepro/locaware/internal/bloom"
	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/sim"
)

// This file defines the network's typed simulator events. Every hot-path
// action that used to schedule a closure — query forwards, response hops,
// query finalisation, Bloom gossip installs, the gossip round timer — is a
// pooled concrete type here, so steady-state scheduling allocates nothing
// and every message-carrying event names its destination peer
// (sim.Destined), which is what the sharded runner routes on.
//
// Pooling protocol: the network acquires an event, fills it, posts it; the
// event releases itself back to the pool at the end of Fire. An event
// dropped by the engine's horizon is never fired and is reclaimed by the
// GC, exactly like a dropped message buffer.

// queryDeliverEvent delivers a forwarded query branch to dst.
type queryDeliverEvent struct {
	net *Network
	dst overlay.PeerID
	msg *QueryMsg
}

func (ev *queryDeliverEvent) EventDst() int     { return int(ev.dst) }
func (ev *queryDeliverEvent) EventName() string { return "query-deliver" }

func (ev *queryDeliverEvent) Fire(e *sim.Engine) {
	net := ev.net
	net.receiveQuery(e, ev.dst, ev.msg)
	net.releaseMsg(ev.msg)
	ev.msg = nil
	net.qdFree = append(net.qdFree, ev)
}

func (net *Network) acquireQueryDeliver(dst overlay.PeerID, msg *QueryMsg) *queryDeliverEvent {
	if n := len(net.qdFree); n > 0 {
		ev := net.qdFree[n-1]
		net.qdFree = net.qdFree[:n-1]
		ev.dst, ev.msg = dst, msg
		return ev
	}
	return &queryDeliverEvent{net: net, dst: dst, msg: msg}
}

// responseDeliverEvent advances a response one hop to dst on the reverse
// path. Ownership of the ResponseMsg stays with the delivery chain:
// deliverResponse either completes and releases it or re-posts the next
// hop.
type responseDeliverEvent struct {
	net *Network
	dst overlay.PeerID
	rsp *ResponseMsg
}

func (ev *responseDeliverEvent) EventDst() int     { return int(ev.dst) }
func (ev *responseDeliverEvent) EventName() string { return "response-deliver" }

func (ev *responseDeliverEvent) Fire(e *sim.Engine) {
	net := ev.net
	net.deliverResponse(e, ev.dst, ev.rsp)
	ev.rsp = nil
	net.rdFree = append(net.rdFree, ev)
}

func (net *Network) acquireResponseDeliver(dst overlay.PeerID, rsp *ResponseMsg) *responseDeliverEvent {
	if n := len(net.rdFree); n > 0 {
		ev := net.rdFree[n-1]
		net.rdFree = net.rdFree[:n-1]
		ev.dst, ev.rsp = dst, rsp
		return ev
	}
	return &responseDeliverEvent{net: net, dst: dst, rsp: rsp}
}

// finalizeEvent seals query id's record FinalizeAfter after submission. It
// is destined to the query's origin: under the sharded runner the seal
// fires on the shard that owns the requester.
type finalizeEvent struct {
	net *Network
	id  QueryID
	dst overlay.PeerID
}

func (ev *finalizeEvent) EventDst() int     { return int(ev.dst) }
func (ev *finalizeEvent) EventName() string { return "query-finalize" }

func (ev *finalizeEvent) Fire(*sim.Engine) {
	net := ev.net
	net.finalize(ev.id)
	net.finFree = append(net.finFree, ev)
}

func (net *Network) acquireFinalize(id QueryID, dst overlay.PeerID) *finalizeEvent {
	if n := len(net.finFree); n > 0 {
		ev := net.finFree[n-1]
		net.finFree = net.finFree[:n-1]
		ev.id, ev.dst = id, dst
		return ev
	}
	return &finalizeEvent{net: net, id: id, dst: dst}
}

// bloomInstallEvent delivers one Bloom gossip announcement: dst installs
// (copies) from's announced filter after link latency. The carried filter
// is one of from's two alternating announce buffers, frozen until from's
// next-but-one gossip round — the install copies rather than retains it.
// gen is the buffer generation at announce time: if the buffer has been
// reused before the event lands (a gossip period shorter than twice the
// link delay — a misconfiguration, but a reachable one under extreme
// degrade-region scenarios), the install falls back to a copy of the
// sender's current published filter and is counted. The fallback keeps
// gossip convergent — the neighbour receives a valid (fresher) snapshot
// instead of silently keeping round-r's content forever when later deltas
// are empty — without ever installing torn buffer contents.
type bloomInstallEvent struct {
	net  *Network
	dst  overlay.PeerID
	from overlay.PeerID
	snap *bloom.Filter
	gen  uint64
}

func (ev *bloomInstallEvent) EventDst() int     { return int(ev.dst) }
func (ev *bloomInstallEvent) EventName() string { return "bloom-install" }

func (ev *bloomInstallEvent) Fire(*sim.Engine) {
	net := ev.net
	snap := ev.snap
	if net.nodes[ev.from].announceGenOf(snap) != ev.gen {
		net.staleBloomFallbacks++
		snap = net.nodes[ev.from].PublishedBloom()
	}
	net.nodes[ev.dst].setNeighborBloom(ev.from, snap)
	ev.snap = nil
	net.biFree = append(net.biFree, ev)
}

func (net *Network) acquireBloomInstall(dst, from overlay.PeerID, snap *bloom.Filter, gen uint64) *bloomInstallEvent {
	if n := len(net.biFree); n > 0 {
		ev := net.biFree[n-1]
		net.biFree = net.biFree[:n-1]
		ev.dst, ev.from, ev.snap, ev.gen = dst, from, snap, gen
		return ev
	}
	return &bloomInstallEvent{net: net, dst: dst, from: from, snap: snap, gen: gen}
}

// gossipRoundEvent is the periodic gossip control: one instance per
// network, rescheduling itself after each round — the typed, allocation-
// free analogue of Engine.Every. It is undestined on purpose: the gossip
// scan walks every node, so it belongs to the control shard.
type gossipRoundEvent struct {
	net    *Network
	period sim.Time
}

func (ev *gossipRoundEvent) EventName() string { return "gossip-round" }

func (ev *gossipRoundEvent) Fire(e *sim.Engine) {
	ev.net.gossipBlooms(e)
	e.PostEvent(ev.period, ev)
}
