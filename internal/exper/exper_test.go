package exper

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersClamping(t *testing.T) {
	want := runtime.NumCPU()
	if want > 100 {
		want = 100
	}
	if got := Workers(0, 100); got != want {
		t.Fatalf("Workers(0, 100) = %d, want %d", got, want)
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8, 3) = %d, want clamp to jobs", got)
	}
	if got := Workers(-2, 1); got != 1 {
		t.Fatalf("Workers(-2, 1) = %d", got)
	}
	if got := Workers(5, 100); got != 5 {
		t.Fatalf("Workers(5, 100) = %d", got)
	}
}

func TestMapIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		got := Map(50, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("Map(0) = %v", got)
	}
	if got := Map(-3, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("Map(-3) = %v", got)
	}
}

func TestMapRunsEveryJobExactlyOnce(t *testing.T) {
	var calls [256]int32
	Map(len(calls), 8, func(i int) struct{} {
		atomic.AddInt32(&calls[i], 1)
		return struct{}{}
	})
	for i, c := range calls {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

// TestMapHammer floods the pool with many tiny jobs; under -race this
// catches slot aliasing or unsynchronised completion.
func TestMapHammer(t *testing.T) {
	var total int64
	out := Map(2000, 16, func(i int) int {
		atomic.AddInt64(&total, 1)
		return i
	})
	if total != 2000 || len(out) != 2000 {
		t.Fatalf("ran %d jobs, got %d results", total, len(out))
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapMoreWorkersThanJobs(t *testing.T) {
	got := Map(2, 64, func(i int) int { return i + 1 })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v", got)
	}
}
