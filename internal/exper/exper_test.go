package exper

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersClamping(t *testing.T) {
	want := runtime.NumCPU()
	if want > 100 {
		want = 100
	}
	if got := Workers(0, 100); got != want {
		t.Fatalf("Workers(0, 100) = %d, want %d", got, want)
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8, 3) = %d, want clamp to jobs", got)
	}
	if got := Workers(-2, 1); got != 1 {
		t.Fatalf("Workers(-2, 1) = %d", got)
	}
	if got := Workers(5, 100); got != 5 {
		t.Fatalf("Workers(5, 100) = %d", got)
	}
}

func TestMapIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		got := Map(50, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("Map(0) = %v", got)
	}
	if got := Map(-3, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("Map(-3) = %v", got)
	}
}

func TestMapRunsEveryJobExactlyOnce(t *testing.T) {
	var calls [256]int32
	Map(len(calls), 8, func(i int) struct{} {
		atomic.AddInt32(&calls[i], 1)
		return struct{}{}
	})
	for i, c := range calls {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

// TestMapHammer floods the pool with many tiny jobs; under -race this
// catches slot aliasing or unsynchronised completion.
func TestMapHammer(t *testing.T) {
	var total int64
	out := Map(2000, 16, func(i int) int {
		atomic.AddInt64(&total, 1)
		return i
	})
	if total != 2000 || len(out) != 2000 {
		t.Fatalf("ran %d jobs, got %d results", total, len(out))
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapMoreWorkersThanJobs(t *testing.T) {
	got := Map(2, 64, func(i int) int { return i + 1 })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestStreamDeliversInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		var seen []int
		Stream(200, workers, func(i int) int { return i * 3 }, func(i, v int) {
			if v != i*3 {
				t.Fatalf("workers=%d: consume(%d, %d)", workers, i, v)
			}
			seen = append(seen, i)
		})
		if len(seen) != 200 {
			t.Fatalf("workers=%d: consumed %d of 200", workers, len(seen))
		}
		for i, idx := range seen {
			if idx != i {
				t.Fatalf("workers=%d: delivery %d carried index %d, want strict index order", workers, i, idx)
			}
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	called := false
	Stream(0, 4, func(i int) int { return i }, func(int, int) { called = true })
	Stream(-1, 4, func(i int) int { return i }, func(int, int) { called = true })
	if called {
		t.Fatal("consume called for empty job set")
	}
}

func TestStreamRunsEveryJobExactlyOnce(t *testing.T) {
	var calls [512]int32
	delivered := 0
	Stream(len(calls), 8, func(i int) struct{} {
		atomic.AddInt32(&calls[i], 1)
		return struct{}{}
	}, func(int, struct{}) { delivered++ })
	if delivered != len(calls) {
		t.Fatalf("delivered %d of %d", delivered, len(calls))
	}
	for i, c := range calls {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

// TestStreamSlowHead makes job 0 the slowest of the batch; the dispatch
// window must bound the reorder buffer without deadlocking, and delivery
// must still start at index 0.
func TestStreamSlowHead(t *testing.T) {
	var done int32
	next := 0
	Stream(100, 8, func(i int) int {
		if i == 0 {
			// Busy-wait until later jobs have finished, forcing reordering
			// pressure. The threshold must stay below the dispatch window
			// (2×8 outstanding jobs): while job 0 blocks delivery, only the
			// other 15 windowed jobs can complete.
			for atomic.LoadInt32(&done) < 10 {
				runtime.Gosched()
			}
		}
		atomic.AddInt32(&done, 1)
		return i
	}, func(i, v int) {
		if i != next || v != i {
			t.Fatalf("delivery %d carried (%d, %d)", next, i, v)
		}
		next++
	})
	if next != 100 {
		t.Fatalf("consumed %d of 100", next)
	}
}

// TestStreamLastJobFinishesFirst forces the completion order to be the
// exact reverse of the index order — the last job finishes first, the
// first job finishes last — and asserts delivery is still strictly
// index-ordered: the reorder buffer parks every early finisher until its
// index is next.
func TestStreamLastJobFinishesFirst(t *testing.T) {
	const n = 8
	// finished[i] closes when job i completes; job i waits for job i+1, so
	// completion order is n-1, n-2, ..., 0. All n jobs fit inside the
	// 2×workers dispatch window, so every job is running concurrently and
	// the chain cannot deadlock.
	finished := make([]chan struct{}, n+1)
	for i := range finished {
		finished[i] = make(chan struct{})
	}
	close(finished[n])
	var completionOrder []int32
	var mu sync.Mutex
	next := 0
	Stream(n, n, func(i int) int {
		<-finished[i+1]
		mu.Lock()
		completionOrder = append(completionOrder, int32(i))
		mu.Unlock()
		close(finished[i])
		return i * 7
	}, func(i, v int) {
		if i != next || v != i*7 {
			t.Fatalf("delivery %d carried (%d, %d)", next, i, v)
		}
		next++
	})
	if next != n {
		t.Fatalf("consumed %d of %d", next, n)
	}
	for k, idx := range completionOrder {
		if int(idx) != n-1-k {
			t.Fatalf("completion order %v; the test meant to reverse it", completionOrder)
		}
	}
}
