// Package exper is the deterministic parallel-execution substrate of the
// experiment harness. Replicated simulation trials are embarrassingly
// parallel — every trial owns an isolated engine, world and RNG streams —
// so the only job of this package is to fan index-addressed work out across
// a bounded worker pool while keeping results bit-for-bit independent of
// scheduling: results are written into a slot per index, never appended, so
// the output order is the input order no matter which worker finishes
// first.
//
// # The Stream dispatch-window contract
//
// Stream delivers results in strict index order for any worker count and
// any completion order — including the pathological one where the last
// dispatched job finishes first. Its memory bound comes from a dispatch
// window of 2×workers outstanding jobs: a job is dispatched only while
// fewer than 2×workers jobs are dispatched-but-unconsumed, and a slot is
// released only when a result is delivered. Because dispatch is in index
// order, the lowest undelivered index is always among the dispatched jobs,
// so the pipeline cannot deadlock, and at most 2×workers results exist at
// once (in flight plus parked in the reorder buffer). Workloads whose jobs
// block on one another are outside the contract unless every dependency
// chain fits inside one window (see TestStreamLastJobFinishesFirst).
package exper

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count against a job count:
// requested <= 0 means one worker per CPU, and the result is clamped to
// [1, jobs] so no goroutine ever sits idle.
func Workers(requested, jobs int) int {
	w := requested
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if jobs > 0 && w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines
// and returns the results indexed by i. The result slice is identical for
// any worker count: parallelism changes wall-clock time, never output.
// workers <= 0 selects runtime.NumCPU(). With one worker the jobs run
// inline on the calling goroutine in index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	w := Workers(workers, n)
	if w == 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// Stream runs fn(i) for every i in [0, n) across at most workers goroutines
// and delivers each result to consume(i, v) on the calling goroutine in
// strict index order — the same order a sequential loop would produce, for
// any worker count. Unlike Map it never materialises the full result slice:
// a consumed result can be folded into an aggregate and dropped, so a
// campaign of thousands of jobs holds O(workers) results in memory instead
// of O(n). Dispatch is windowed to 2×workers outstanding jobs, which bounds
// the reorder buffer even when job 0 is the slowest of the batch.
// workers <= 0 selects runtime.NumCPU(). With one worker the jobs run
// inline in index order.
func Stream[T any](n, workers int, fn func(i int) T, consume func(i int, v T)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			consume(i, fn(i))
		}
		return
	}
	type item struct {
		i int
		v T
	}
	var (
		jobs    = make(chan int)
		results = make(chan item, w)
		// window caps dispatched-but-unconsumed jobs. The consumer releases
		// a slot only after delivering a result, and jobs are dispatched in
		// index order, so the lowest undelivered index is always in flight:
		// the pipeline can never deadlock, and at most 2w results exist at
		// once (in flight + parked in the reorder buffer).
		window = make(chan struct{}, 2*w)
		wg     sync.WaitGroup
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results <- item{i, fn(i)}
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			window <- struct{}{}
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	// Reorder buffer: park early finishers until their index is next.
	pending := make(map[int]T, 2*w)
	next := 0
	for it := range results {
		pending[it.i] = it.v
		for {
			v, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			consume(next, v)
			next++
			<-window
		}
	}
}
