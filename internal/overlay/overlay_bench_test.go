package overlay

import (
	"math/rand"
	"testing"
)

// BenchmarkBuildRandom measures paper-scale overlay construction.
func BenchmarkBuildRandom(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		_ = BuildRandom(1000, DefaultBuild(), r)
	}
}

// BenchmarkNeighbors measures sorted neighbour-list extraction, the
// per-hop operation of every forwarding decision.
func BenchmarkNeighbors(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	g := BuildRandom(1000, DefaultBuild(), r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Neighbors(PeerID(i % 1000))
	}
}

// BenchmarkChurnStep measures one full churn round over 1000 peers.
func BenchmarkChurnStep(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	g := BuildRandom(1000, DefaultBuild(), r)
	cfg := DefaultChurn()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ChurnStep(g, cfg, r)
	}
}

// BenchmarkConnectedComponents measures the connectivity check used by
// builders and tests.
func BenchmarkConnectedComponents(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	g := BuildRandom(1000, DefaultBuild(), r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.ConnectedComponents()
	}
}
