package overlay

import "math/rand"

// BuildConfig parameterises random overlay construction.
type BuildConfig struct {
	// AvgDegree is the target average connectivity degree; the paper uses 3.
	AvgDegree float64
	// MaxDegree caps any single peer's degree (0 = uncapped). Gnutella
	// clients typically cap neighbour lists; a loose cap also prevents
	// degenerate hubs in small graphs.
	MaxDegree int
}

// DefaultBuild matches the paper's topology: average degree 3.
func DefaultBuild() BuildConfig { return BuildConfig{AvgDegree: 3, MaxDegree: 12} }

// BuildRandom constructs a connected random overlay of n peers with the
// requested average degree, using r for all choices. The construction mimics
// Gnutella bootstrap: each arriving peer links to a uniformly random peer
// already in the overlay (guaranteeing connectivity, like an arrival
// spanning tree), after which extra random links are added until the edge
// budget n*AvgDegree/2 is met.
func BuildRandom(n int, cfg BuildConfig, r *rand.Rand) *Graph {
	g := NewGraph(n)
	if n <= 1 {
		return g
	}
	if cfg.AvgDegree < 1 {
		cfg.AvgDegree = 3
	}
	// Arrival spanning tree.
	for i := 1; i < n; i++ {
		target := PeerID(r.Intn(i))
		if cfg.MaxDegree > 0 {
			for tries := 0; g.Degree(target) >= cfg.MaxDegree && tries < 16; tries++ {
				target = PeerID(r.Intn(i))
			}
		}
		_ = g.AddLink(PeerID(i), target)
	}
	// Extra random links up to the edge budget.
	budget := int(float64(n)*cfg.AvgDegree/2 + 0.5)
	for tries := 0; g.Edges() < budget && tries < budget*64; tries++ {
		a := PeerID(r.Intn(n))
		b := PeerID(r.Intn(n))
		if a == b || g.Linked(a, b) {
			continue
		}
		if cfg.MaxDegree > 0 && (g.Degree(a) >= cfg.MaxDegree || g.Degree(b) >= cfg.MaxDegree) {
			continue
		}
		_ = g.AddLink(a, b)
	}
	return g
}

// RewireJoin wires a (re)joining peer p into g with approximately avgDegree
// links to random online peers, respecting maxDegree. It is the repair step
// used after churn joins.
func RewireJoin(g *Graph, p PeerID, avgDegree float64, maxDegree int, r *rand.Rand) {
	want := int(avgDegree + 0.5)
	if want < 1 {
		want = 1
	}
	excluded := map[PeerID]bool{p: true}
	for g.Degree(p) < want {
		q := g.RandomOnlinePeer(r, excluded)
		if q < 0 {
			return
		}
		excluded[q] = true
		if maxDegree > 0 && g.Degree(q) >= maxDegree {
			continue
		}
		_ = g.AddLink(p, q)
	}
}

// RepairAfterLeave reconnects the former neighbours of a departed peer
// among themselves, the standard Gnutella-style patching that keeps the
// overlay connected under churn. Each consecutive pair in the
// former-neighbour list gets a link only when one endpoint dropped below
// the target degree: unconditional patching adds ~deg-1 links per
// departure while the departed peer's eventual rejoin adds another ~deg,
// silently densifying the overlay over time (and with it every coverage
// metric).
func RepairAfterLeave(g *Graph, former []PeerID, avgDegree float64, maxDegree int) {
	target := int(avgDegree + 0.5)
	if target < 1 {
		target = 1
	}
	for i := 1; i < len(former); i++ {
		a, b := former[i-1], former[i]
		if !g.Online(a) || !g.Online(b) || g.Linked(a, b) {
			continue
		}
		if g.Degree(a) >= target && g.Degree(b) >= target {
			continue
		}
		if maxDegree > 0 && (g.Degree(a) >= maxDegree || g.Degree(b) >= maxDegree) {
			continue
		}
		_ = g.AddLink(a, b)
	}
}
