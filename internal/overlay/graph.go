// Package overlay implements the unstructured (Gnutella-like) P2P overlay of
// §3.1: peers join by establishing logical links to randomly chosen
// neighbours, without knowledge of the underlying topology. The package
// provides the random-graph builder used in the paper's evaluation (1000
// peers, average connectivity degree 3), neighbour tables, and churn
// (leave/rejoin) dynamics with connectivity repair.
package overlay

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// PeerID identifies a peer; it doubles as the peer's index into the physical
// network model, so overlay identity and physical identity stay aligned.
type PeerID int

// Graph is an undirected overlay graph over peers 0..n-1. Peers may be
// marked offline (churn); offline peers keep their identity but have no
// links.
//
// Adjacency is kept twice: a map per peer for O(1) Linked checks and a
// sorted slice per peer so the hot Neighbors call returns without
// allocating or sorting. Mutations (build, churn) pay the small insertion
// cost; the simulator's per-event reads are free.
type Graph struct {
	n      int
	adj    []map[PeerID]struct{}
	nbrs   [][]PeerID
	online []bool
	edges  int
}

// Errors returned by graph mutations.
var (
	ErrBadPeer  = errors.New("overlay: peer id out of range")
	ErrOffline  = errors.New("overlay: peer is offline")
	ErrSelfLink = errors.New("overlay: self link")
)

// NewGraph returns an edgeless graph of n online peers.
func NewGraph(n int) *Graph {
	g := &Graph{
		n:      n,
		adj:    make([]map[PeerID]struct{}, n),
		nbrs:   make([][]PeerID, n),
		online: make([]bool, n),
	}
	for i := range g.adj {
		g.adj[i] = make(map[PeerID]struct{})
		g.online[i] = true
	}
	return g
}

// insertSorted adds x to the ascending slice s, keeping order.
func insertSorted(s []PeerID, x PeerID) []PeerID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// removeSorted deletes x from the ascending slice s, keeping order.
func removeSorted(s []PeerID, x PeerID) []PeerID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		copy(s[i:], s[i+1:])
		s = s[:len(s)-1]
	}
	return s
}

// N returns the total number of peer slots (online and offline).
func (g *Graph) N() int { return g.n }

// Edges returns the number of undirected links.
func (g *Graph) Edges() int { return g.edges }

// Online reports whether p participates in the overlay.
func (g *Graph) Online(p PeerID) bool {
	return g.valid(p) && g.online[p]
}

// OnlineCount returns the number of online peers.
func (g *Graph) OnlineCount() int {
	c := 0
	for _, on := range g.online {
		if on {
			c++
		}
	}
	return c
}

func (g *Graph) valid(p PeerID) bool { return p >= 0 && int(p) < g.n }

// AddLink inserts an undirected link a—b. Adding an existing link is a
// no-op.
func (g *Graph) AddLink(a, b PeerID) error {
	if !g.valid(a) || !g.valid(b) {
		return ErrBadPeer
	}
	if a == b {
		return ErrSelfLink
	}
	if !g.online[a] || !g.online[b] {
		return ErrOffline
	}
	if _, ok := g.adj[a][b]; ok {
		return nil
	}
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
	g.nbrs[a] = insertSorted(g.nbrs[a], b)
	g.nbrs[b] = insertSorted(g.nbrs[b], a)
	g.edges++
	return nil
}

// RemoveLink deletes the undirected link a—b if present.
func (g *Graph) RemoveLink(a, b PeerID) {
	if !g.valid(a) || !g.valid(b) {
		return
	}
	if _, ok := g.adj[a][b]; !ok {
		return
	}
	delete(g.adj[a], b)
	delete(g.adj[b], a)
	g.nbrs[a] = removeSorted(g.nbrs[a], b)
	g.nbrs[b] = removeSorted(g.nbrs[b], a)
	g.edges--
}

// Linked reports whether a and b are neighbours.
func (g *Graph) Linked(a, b PeerID) bool {
	if !g.valid(a) || !g.valid(b) {
		return false
	}
	_, ok := g.adj[a][b]
	return ok
}

// Degree returns the number of neighbours of p (0 if offline or invalid).
func (g *Graph) Degree(p PeerID) int {
	if !g.valid(p) {
		return 0
	}
	return len(g.adj[p])
}

// Neighbors returns p's neighbour list in ascending order — deterministic
// iteration, which the simulator relies on for reproducible runs. The
// returned slice is the graph's internal table: callers must not mutate or
// retain it across graph mutations.
func (g *Graph) Neighbors(p PeerID) []PeerID {
	if !g.valid(p) {
		return nil
	}
	return g.nbrs[p]
}

// AvgDegree returns the mean degree over online peers.
func (g *Graph) AvgDegree() float64 {
	online := g.OnlineCount()
	if online == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(online)
}

// Leave takes p offline, removing all its links. It returns the former
// neighbour set so churn logic can repair connectivity.
func (g *Graph) Leave(p PeerID) []PeerID {
	if !g.valid(p) || !g.online[p] {
		return nil
	}
	// Copy before unlinking: RemoveLink mutates the internal list that
	// Neighbors aliases.
	former := append([]PeerID(nil), g.nbrs[p]...)
	for _, q := range former {
		g.RemoveLink(p, q)
	}
	g.online[p] = false
	return former
}

// Join brings p back online with no links; the caller wires it to new
// neighbours.
func (g *Graph) Join(p PeerID) error {
	if !g.valid(p) {
		return ErrBadPeer
	}
	g.online[p] = true
	return nil
}

// ConnectedComponents returns the sizes of connected components among online
// peers, largest first.
func (g *Graph) ConnectedComponents() []int {
	seen := make([]bool, g.n)
	var sizes []int
	for start := 0; start < g.n; start++ {
		if seen[start] || !g.online[start] {
			continue
		}
		size := 0
		stack := []PeerID{PeerID(start)}
		seen[start] = true
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for q := range g.adj[p] {
				if !seen[q] {
					seen[q] = true
					stack = append(stack, q)
				}
			}
		}
		sizes = append(sizes, size)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// IsConnected reports whether all online peers form one component.
func (g *Graph) IsConnected() bool {
	cc := g.ConnectedComponents()
	return len(cc) <= 1
}

// RandomOnlinePeer returns a uniformly random online peer, excluding those
// in the excluded set. It returns -1 if none is available.
func (g *Graph) RandomOnlinePeer(r *rand.Rand, excluded map[PeerID]bool) PeerID {
	candidates := make([]PeerID, 0, g.n)
	for i := 0; i < g.n; i++ {
		p := PeerID(i)
		if g.online[i] && !excluded[p] {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[r.Intn(len(candidates))]
}

// String summarises the graph for traces.
func (g *Graph) String() string {
	return fmt.Sprintf("overlay{n=%d online=%d edges=%d avgDeg=%.2f}",
		g.n, g.OnlineCount(), g.edges, g.AvgDegree())
}
