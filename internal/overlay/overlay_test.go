package overlay

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(5)
	if g.N() != 5 || g.Edges() != 0 || g.OnlineCount() != 5 {
		t.Fatalf("fresh graph: %v", g)
	}
	if err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(1, 0); err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 1 {
		t.Fatalf("duplicate link counted: edges=%d", g.Edges())
	}
	if !g.Linked(0, 1) || !g.Linked(1, 0) {
		t.Fatal("link not symmetric")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatal("degree wrong")
	}
	g.RemoveLink(0, 1)
	if g.Edges() != 0 || g.Linked(0, 1) {
		t.Fatal("remove failed")
	}
	g.RemoveLink(0, 1) // no-op
}

func TestGraphErrors(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddLink(0, 0); err != ErrSelfLink {
		t.Fatalf("self link: %v", err)
	}
	if err := g.AddLink(-1, 0); err != ErrBadPeer {
		t.Fatalf("bad peer: %v", err)
	}
	if err := g.AddLink(0, 3); err != ErrBadPeer {
		t.Fatalf("bad peer high: %v", err)
	}
	g.Leave(1)
	if err := g.AddLink(0, 1); err != ErrOffline {
		t.Fatalf("offline link: %v", err)
	}
	if err := g.Join(3); err != ErrBadPeer {
		t.Fatalf("join bad peer: %v", err)
	}
	if g.Linked(-1, 0) || g.Degree(-5) != 0 || g.Neighbors(-1) != nil {
		t.Fatal("invalid ids should be inert")
	}
	if g.Online(-1) {
		t.Fatal("invalid id online")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := NewGraph(10)
	for _, q := range []PeerID{7, 3, 9, 1} {
		if err := g.AddLink(5, q); err != nil {
			t.Fatal(err)
		}
	}
	ns := g.Neighbors(5)
	want := []PeerID{1, 3, 7, 9}
	if len(ns) != len(want) {
		t.Fatalf("neighbors = %v", ns)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", ns, want)
		}
	}
}

func TestLeaveJoin(t *testing.T) {
	g := NewGraph(4)
	mustLink(t, g, 0, 1)
	mustLink(t, g, 1, 2)
	mustLink(t, g, 1, 3)
	former := g.Leave(1)
	if len(former) != 3 {
		t.Fatalf("former = %v", former)
	}
	if g.Online(1) || g.Degree(1) != 0 || g.Edges() != 0 {
		t.Fatal("leave did not clear links")
	}
	if g.Leave(1) != nil {
		t.Fatal("second leave should return nil")
	}
	if err := g.Join(1); err != nil {
		t.Fatal(err)
	}
	if !g.Online(1) {
		t.Fatal("join failed")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewGraph(6)
	mustLink(t, g, 0, 1)
	mustLink(t, g, 1, 2)
	mustLink(t, g, 3, 4)
	cc := g.ConnectedComponents()
	if len(cc) != 3 || cc[0] != 3 || cc[1] != 2 || cc[2] != 1 {
		t.Fatalf("components = %v", cc)
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	mustLink(t, g, 2, 3)
	mustLink(t, g, 4, 5)
	if !g.IsConnected() {
		t.Fatal("connected graph reported disconnected")
	}
}

func TestBuildRandomPaperScale(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := BuildRandom(1000, DefaultBuild(), r)
	if !g.IsConnected() {
		t.Fatal("built overlay disconnected")
	}
	avg := g.AvgDegree()
	if avg < 2.5 || avg > 3.5 {
		t.Fatalf("avg degree %.2f, want ~3 (paper)", avg)
	}
	for i := 0; i < 1000; i++ {
		if d := g.Degree(PeerID(i)); d > 12 {
			t.Fatalf("degree cap violated: peer %d has degree %d", i, d)
		}
		if g.Degree(PeerID(i)) == 0 {
			t.Fatalf("peer %d isolated", i)
		}
	}
}

func TestBuildRandomSmall(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	if g := BuildRandom(0, DefaultBuild(), r); g.N() != 0 {
		t.Fatal("empty build broken")
	}
	if g := BuildRandom(1, DefaultBuild(), r); g.Edges() != 0 {
		t.Fatal("single-node build has edges")
	}
	g := BuildRandom(2, DefaultBuild(), r)
	if !g.Linked(0, 1) {
		t.Fatal("two-node build should link the pair")
	}
	// Degenerate config falls back.
	g = BuildRandom(50, BuildConfig{AvgDegree: 0}, r)
	if !g.IsConnected() {
		t.Fatal("fallback config disconnected")
	}
}

func TestBuildRandomDeterministic(t *testing.T) {
	g1 := BuildRandom(300, DefaultBuild(), rand.New(rand.NewSource(5)))
	g2 := BuildRandom(300, DefaultBuild(), rand.New(rand.NewSource(5)))
	if g1.Edges() != g2.Edges() {
		t.Fatal("same-seed builds differ in edge count")
	}
	for i := 0; i < 300; i++ {
		n1, n2 := g1.Neighbors(PeerID(i)), g2.Neighbors(PeerID(i))
		if len(n1) != len(n2) {
			t.Fatalf("peer %d neighbor sets differ", i)
		}
		for j := range n1 {
			if n1[j] != n2[j] {
				t.Fatalf("peer %d neighbor sets differ", i)
			}
		}
	}
}

func TestRandomOnlinePeer(t *testing.T) {
	g := NewGraph(4)
	g.Leave(0)
	g.Leave(1)
	r := rand.New(rand.NewSource(3))
	excl := map[PeerID]bool{2: true}
	for i := 0; i < 20; i++ {
		if p := g.RandomOnlinePeer(r, excl); p != 3 {
			t.Fatalf("got %d, want 3", p)
		}
	}
	excl[3] = true
	if p := g.RandomOnlinePeer(r, excl); p != -1 {
		t.Fatalf("expected -1 with all excluded, got %d", p)
	}
}

func TestRewireJoin(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := BuildRandom(100, DefaultBuild(), r)
	former := g.Leave(42)
	RepairAfterLeave(g, former, 3, 12)
	if err := g.Join(42); err != nil {
		t.Fatal(err)
	}
	RewireJoin(g, 42, 3, 12, r)
	if g.Degree(42) < 1 {
		t.Fatal("rejoined peer has no links")
	}
	if !g.IsConnected() {
		t.Fatal("graph disconnected after leave/repair/join cycle")
	}
}

func TestRepairAfterLeaveKeepsConnectivity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := BuildRandom(200, DefaultBuild(), r)
	for i := 0; i < 30; i++ {
		p := g.RandomOnlinePeer(r, nil)
		former := g.Leave(p)
		RepairAfterLeave(g, former, 3, 12)
	}
	cc := g.ConnectedComponents()
	if len(cc) == 0 {
		t.Fatal("no components")
	}
	// Repair keeps the giant component overwhelmingly dominant.
	if float64(cc[0]) < 0.95*float64(g.OnlineCount()) {
		t.Fatalf("giant component %d of %d online after churn", cc[0], g.OnlineCount())
	}
}

func TestChurnStep(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	g := BuildRandom(300, DefaultBuild(), r)
	cfg := DefaultChurn()
	var totalLeft, totalJoined int
	for round := 0; round < 50; round++ {
		left, joined := ChurnStep(g, cfg, r)
		totalLeft += len(left)
		totalJoined += len(joined)
	}
	if totalLeft == 0 {
		t.Fatal("no peer ever left under churn")
	}
	if totalJoined == 0 {
		t.Fatal("no peer ever rejoined under churn")
	}
	if frac := float64(g.OnlineCount()) / 300; frac < cfg.MinOnlineFraction {
		t.Fatalf("online fraction %.2f below floor", frac)
	}
}

func TestChurnPreservesDensity(t *testing.T) {
	// The overlay's average degree must not drift upward under sustained
	// churn: leave-repair plus rejoin-rewiring must roughly balance the
	// links each departure removes.
	r := rand.New(rand.NewSource(19))
	g := BuildRandom(400, DefaultBuild(), r)
	before := g.AvgDegree()
	cfg := DefaultChurn()
	for round := 0; round < 200; round++ {
		ChurnStep(g, cfg, r)
	}
	after := g.AvgDegree()
	if after > before*1.25 {
		t.Fatalf("density inflated under churn: %.2f -> %.2f", before, after)
	}
	if after < before*0.5 {
		t.Fatalf("density collapsed under churn: %.2f -> %.2f", before, after)
	}
	// The giant component must still dominate.
	cc := g.ConnectedComponents()
	if float64(cc[0]) < 0.85*float64(g.OnlineCount()) {
		t.Fatalf("giant component %d of %d online", cc[0], g.OnlineCount())
	}
}

func TestChurnFloorEnforced(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g := BuildRandom(100, DefaultBuild(), r)
	cfg := ChurnConfig{LeaveProb: 1.0, JoinProb: 0, AvgDegree: 3, MaxDegree: 12, MinOnlineFraction: 0.7}
	for i := 0; i < 10; i++ {
		ChurnStep(g, cfg, r)
	}
	if g.OnlineCount() < 70 {
		t.Fatalf("floor violated: %d online", g.OnlineCount())
	}
}

// Property: BuildRandom always yields a connected graph whose average degree
// is within 25%% of the target, for any size and reasonable degree.
func TestBuildRandomQuick(t *testing.T) {
	prop := func(nRaw, degRaw, seed uint8) bool {
		n := 10 + int(nRaw)%490
		deg := 2 + float64(degRaw%4)
		r := rand.New(rand.NewSource(int64(seed)))
		g := BuildRandom(n, BuildConfig{AvgDegree: deg, MaxDegree: 16}, r)
		if !g.IsConnected() {
			return false
		}
		avg := g.AvgDegree()
		return avg >= deg*0.72 && avg <= deg*1.28
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphString(t *testing.T) {
	g := NewGraph(2)
	mustLink(t, g, 0, 1)
	if s := g.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func mustLink(t *testing.T, g *Graph, a, b PeerID) {
	t.Helper()
	if err := g.AddLink(a, b); err != nil {
		t.Fatalf("AddLink(%d,%d): %v", a, b, err)
	}
}

func TestBurstLeaveAndJoin(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	g := BuildRandom(200, DefaultBuild(), r)

	left := BurstLeave(g, 0.25, 0.5, 12, r)
	if len(left) != 50 {
		t.Fatalf("wave departed %d peers, want 50", len(left))
	}
	if g.OnlineCount() != 150 {
		t.Fatalf("online after wave = %d", g.OnlineCount())
	}
	for _, p := range left {
		if g.Online(p) || g.Degree(p) != 0 {
			t.Fatalf("departed peer %d still wired", p)
		}
	}

	// The floor caps a wave that would collapse the overlay.
	left = BurstLeave(g, 1.0, 0.5, 12, r)
	if g.OnlineCount() != 100 {
		t.Fatalf("floor breached: %d online", g.OnlineCount())
	}
	_ = left

	joined := BurstJoin(g, 1.0, 3, 12, r)
	if len(joined) != 100 || g.OnlineCount() != 200 {
		t.Fatalf("rejoin brought back %d, online %d", len(joined), g.OnlineCount())
	}
	for _, p := range joined {
		if !g.Online(p) || g.Degree(p) == 0 {
			t.Fatalf("rejoined peer %d not rewired", p)
		}
	}

	if got := BurstLeave(g, 0, 0.5, 12, r); got != nil {
		t.Fatalf("zero-intensity wave departed %v", got)
	}
	if got := BurstJoin(g, 0.5, 3, 12, r); got != nil {
		t.Fatalf("join with nobody offline returned %v", got)
	}
}

func TestBurstLeaveDeterministic(t *testing.T) {
	build := func() (*Graph, []PeerID) {
		g := BuildRandom(120, DefaultBuild(), rand.New(rand.NewSource(5)))
		return g, BurstLeave(g, 0.3, 0.2, 12, rand.New(rand.NewSource(6)))
	}
	g1, l1 := build()
	g2, l2 := build()
	if len(l1) != len(l2) {
		t.Fatalf("wave sizes differ: %d vs %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("departure order differs at %d: %v vs %v", i, l1[i], l2[i])
		}
	}
	if g1.Edges() != g2.Edges() || g1.OnlineCount() != g2.OnlineCount() {
		t.Fatal("post-wave graphs differ")
	}
}
