package overlay

import "math/rand"

// ChurnConfig describes a simple on/off churn process: every interval, each
// online peer leaves with probability LeaveProb and each offline peer
// rejoins with probability JoinProb. Participant peers in unstructured
// systems are "highly dynamic and autonomous, failing or leaving the network
// at any moment" (§3.1); this process exercises exactly that behaviour.
type ChurnConfig struct {
	LeaveProb float64
	JoinProb  float64
	AvgDegree float64
	MaxDegree int
	// MinOnlineFraction guards against the overlay collapsing in extreme
	// configurations; churn steps never take the online fraction below it.
	MinOnlineFraction float64
}

// DefaultChurn returns a mild churn setting suitable for the churn
// extension experiment.
func DefaultChurn() ChurnConfig {
	return ChurnConfig{
		LeaveProb:         0.02,
		JoinProb:          0.2,
		AvgDegree:         3,
		MaxDegree:         12,
		MinOnlineFraction: 0.5,
	}
}

// BurstLeave takes approximately frac of the online peers offline in one
// wave — the correlated mass departure of a churn-wave scenario, as opposed
// to ChurnStep's independent per-peer process. Connectivity is patched the
// same way churn departures are. minOnlineFrac floors the surviving online
// population (of g.N()); the wave never shrinks below it. The departed
// peers are returned in departure order.
func BurstLeave(g *Graph, frac, minOnlineFrac float64, maxDegree int, r *rand.Rand) []PeerID {
	if frac <= 0 {
		return nil
	}
	online := make([]PeerID, 0, g.N())
	for i := 0; i < g.N(); i++ {
		if g.Online(PeerID(i)) {
			online = append(online, PeerID(i))
		}
	}
	count := int(frac*float64(len(online)) + 0.5)
	if floor := int(minOnlineFrac * float64(g.N())); len(online)-count < floor {
		count = len(online) - floor
	}
	if count <= 0 {
		return nil
	}
	r.Shuffle(len(online), func(i, j int) { online[i], online[j] = online[j], online[i] })
	left := make([]PeerID, 0, count)
	for _, p := range online[:count] {
		former := g.Leave(p)
		RepairAfterLeave(g, former, 1, maxDegree)
		left = append(left, p)
	}
	return left
}

// BurstJoin brings approximately frac of the offline peers back online in
// one wave, rewiring each to ~avgDegree random online neighbours. It
// returns the joined peers in join order.
func BurstJoin(g *Graph, frac, avgDegree float64, maxDegree int, r *rand.Rand) []PeerID {
	if frac <= 0 {
		return nil
	}
	offline := make([]PeerID, 0, g.N())
	for i := 0; i < g.N(); i++ {
		if p := PeerID(i); !g.Online(p) {
			offline = append(offline, p)
		}
	}
	count := int(frac*float64(len(offline)) + 0.5)
	if count > len(offline) {
		count = len(offline)
	}
	if count <= 0 {
		return nil
	}
	r.Shuffle(len(offline), func(i, j int) { offline[i], offline[j] = offline[j], offline[i] })
	joined := make([]PeerID, 0, count)
	for _, p := range offline[:count] {
		_ = g.Join(p)
		RewireJoin(g, p, avgDegree, maxDegree, r)
		joined = append(joined, p)
	}
	return joined
}

// ChurnStep applies one round of the churn process to g and returns the
// peers that left and those that joined during this round.
func ChurnStep(g *Graph, cfg ChurnConfig, r *rand.Rand) (left, joined []PeerID) {
	minOnline := int(cfg.MinOnlineFraction * float64(g.N()))
	for i := 0; i < g.N(); i++ {
		p := PeerID(i)
		if g.Online(p) {
			if g.OnlineCount() > minOnline && r.Float64() < cfg.LeaveProb {
				former := g.Leave(p)
				// Rescue only isolated former neighbours (target degree
				// 1): each eventual rejoin already adds ~AvgDegree links,
				// so any additional unconditional patching inflates
				// overlay density round over round and with it every
				// coverage-dependent metric.
				RepairAfterLeave(g, former, 1, cfg.MaxDegree)
				left = append(left, p)
			}
		} else if r.Float64() < cfg.JoinProb {
			_ = g.Join(p)
			RewireJoin(g, p, cfg.AvgDegree, cfg.MaxDegree, r)
			joined = append(joined, p)
		}
	}
	return left, joined
}
