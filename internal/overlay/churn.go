package overlay

import "math/rand"

// ChurnConfig describes a simple on/off churn process: every interval, each
// online peer leaves with probability LeaveProb and each offline peer
// rejoins with probability JoinProb. Participant peers in unstructured
// systems are "highly dynamic and autonomous, failing or leaving the network
// at any moment" (§3.1); this process exercises exactly that behaviour.
type ChurnConfig struct {
	LeaveProb float64
	JoinProb  float64
	AvgDegree float64
	MaxDegree int
	// MinOnlineFraction guards against the overlay collapsing in extreme
	// configurations; churn steps never take the online fraction below it.
	MinOnlineFraction float64
}

// DefaultChurn returns a mild churn setting suitable for the churn
// extension experiment.
func DefaultChurn() ChurnConfig {
	return ChurnConfig{
		LeaveProb:         0.02,
		JoinProb:          0.2,
		AvgDegree:         3,
		MaxDegree:         12,
		MinOnlineFraction: 0.5,
	}
}

// ChurnStep applies one round of the churn process to g and returns the
// peers that left and those that joined during this round.
func ChurnStep(g *Graph, cfg ChurnConfig, r *rand.Rand) (left, joined []PeerID) {
	minOnline := int(cfg.MinOnlineFraction * float64(g.N()))
	for i := 0; i < g.N(); i++ {
		p := PeerID(i)
		if g.Online(p) {
			if g.OnlineCount() > minOnline && r.Float64() < cfg.LeaveProb {
				former := g.Leave(p)
				// Rescue only isolated former neighbours (target degree
				// 1): each eventual rejoin already adds ~AvgDegree links,
				// so any additional unconditional patching inflates
				// overlay density round over round and with it every
				// coverage-dependent metric.
				RepairAfterLeave(g, former, 1, cfg.MaxDegree)
				left = append(left, p)
			}
		} else if r.Float64() < cfg.JoinProb {
			_ = g.Join(p)
			RewireJoin(g, p, cfg.AvgDegree, cfg.MaxDegree, r)
			joined = append(joined, p)
		}
	}
	return left, joined
}
