// Quickstart: run the paper's four protocols over a small shared world and
// print the headline comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	locaware "github.com/p2prepro/locaware"
)

func main() {
	opts := locaware.DefaultOptions()
	opts.Peers = 400       // shrink from the paper's 1000 so this runs in seconds
	opts.QueryRate = 0.005 // accelerate arrivals (metrics are rate-independent)

	fmt.Println("locaware quickstart: 400 peers, 500 warmup + 1000 measured queries")
	cmp, err := locaware.Compare(opts, locaware.Baselines(), 500, 1000, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("%-12s %10s %12s %12s %10s\n", "protocol", "success", "msgs/query", "rtt (ms)", "same-loc")
	for _, r := range cmp.Results {
		fmt.Printf("%-12s %10.3f %12.1f %12.1f %10.3f\n",
			r.Protocol, r.SuccessRate, r.AvgMessagesPerQuery, r.AvgDownloadRTTMs, r.SameLocalityRate)
	}

	h := cmp.Headlines()
	fmt.Println()
	fmt.Println("headline claims (paper: -14% distance, -98% traffic, +23%/+33% hits):")
	fmt.Printf("  download distance vs others:  %+.1f%%\n", 100*h.DistanceReduction)
	fmt.Printf("  search traffic vs flooding:   %+.1f%%\n", 100*h.TrafficReductionVsFlooding)
	fmt.Printf("  success rate vs Dicas:        %+.1f%%\n", 100*h.HitGainVsDicas)
	fmt.Printf("  success rate vs Dicas-Keys:   %+.1f%%\n", 100*h.HitGainVsDicasKeys)

	fmt.Println()
	fmt.Println("Figure 4 (success rate vs number of queries):")
	fmt.Print(cmp.FigureTable(locaware.FigureSuccessRate))
}
