// Scenarios: the paper evaluates its protocols on one static workload,
// but motivates the setting with peers that are "highly dynamic and
// autonomous, failing or leaving the network at any moment" (§3.1). The
// scenario engine makes that world runnable as data: a run is a timeline
// of phases, each carrying typed dynamics events — churn waves, flash
// crowds, content injection/removal, regional degradation — and every
// metric is reported per phase by the streaming collector.
//
// This example drives two built-in scenarios (churn-waves and flashcrowd)
// through a paired Locaware-vs-Dicas comparison, then shows the no-code
// path: a custom scenario defined as JSON.
//
//	go run ./examples/scenarios
package main

import (
	"fmt"
	"log"

	locaware "github.com/p2prepro/locaware"
)

func main() {
	base := locaware.DefaultOptions()
	base.Peers = 400
	base.QueryRate = 0.005

	for _, name := range []string{"churn-waves", "flashcrowd"} {
		sc, err := locaware.ScenarioByName(name)
		if err != nil {
			log.Fatal(err)
		}
		opts := base
		opts.Scenario = sc
		fmt.Printf("== scenario %q: %s\n", sc.Name(), sc.Description())
		cmp, err := locaware.Compare(opts,
			[]locaware.Protocol{locaware.ProtocolDicas, locaware.ProtocolLocaware},
			500, 2000, nil)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range cmp.Results {
			fmt.Printf("\n%s (whole run: success=%.3f rtt=%.1fms msgs/q=%.1f)\n",
				r.Protocol, r.SuccessRate, r.AvgDownloadRTTMs, r.AvgMessagesPerQuery)
			fmt.Print(locaware.PhaseTable(r.Phases))
		}
		fmt.Println()
	}

	// The no-code path: a custom scenario as JSON. A mass departure wave
	// hits while a flash crowd is still raging, then everything heals.
	custom, err := locaware.ParseScenario([]byte(`{
	  "name": "crowded-collapse",
	  "description": "flash crowd, then a 30% departure wave mid-crowd, then recovery",
	  "phases": [
	    {"name": "warm", "fraction": 1},
	    {"name": "crowd", "fraction": 1,
	     "events": [{"kind": "flash-crowd", "hot_files": 6, "rate_factor": 3, "zipf_s": 1.4}]},
	    {"name": "collapse", "fraction": 1,
	     "churn": {"leave_prob": 0.05, "join_prob": 0.05},
	     "events": [{"kind": "churn-wave", "frac": 0.3}]},
	    {"name": "recovery", "fraction": 1,
	     "events": [{"kind": "rejoin", "frac": 1}, {"kind": "calm"}]}
	  ]
	}`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== custom JSON scenario %q\n", custom.Name())
	res, err := locaware.RunScenario(base, locaware.ProtocolLocaware, custom, 500, 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.PhaseTable())
	fmt.Printf("\nwhole run: success=%.3f rtt=%.1fms msgs/q=%.1f (events=%d, %0.fs simulated)\n",
		res.SuccessRate, res.AvgDownloadRTTMs, res.AvgMessagesPerQuery, res.Events, res.SimulatedSeconds)
}
