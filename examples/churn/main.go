// Churn: unstructured P2P peers are "highly dynamic and autonomous, failing
// or leaving the network at any moment" (§3.1). This example measures how
// peer churn degrades each caching protocol: cached indexes naming departed
// providers go stale and reverse paths break. Locaware stays the best
// caching protocol under churn (its success and distance leads persist),
// though both protocols lose a similar modest fraction of their hits.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	locaware "github.com/p2prepro/locaware"
)

func main() {
	base := locaware.DefaultOptions()
	base.Peers = 400
	base.QueryRate = 0.005

	fmt.Println("churn resilience: 400 peers, 500 warmup + 1500 measured queries")
	fmt.Println()
	fmt.Printf("%-12s %8s %12s %14s %12s\n", "protocol", "churn", "success", "rtt (ms)", "msgs/query")

	type cell struct {
		p     locaware.Protocol
		churn bool
	}
	results := map[cell]*locaware.Result{}
	for _, p := range []locaware.Protocol{locaware.ProtocolDicas, locaware.ProtocolLocaware} {
		for _, churn := range []bool{false, true} {
			opts := base
			opts.Churn = churn
			r, err := locaware.Run(opts, p, 500, 1500)
			if err != nil {
				log.Fatal(err)
			}
			results[cell{p, churn}] = r
			fmt.Printf("%-12s %8v %12.3f %14.1f %12.1f\n",
				r.Protocol, churn, r.SuccessRate, r.AvgDownloadRTTMs, r.AvgMessagesPerQuery)
		}
	}

	fmt.Println()
	dDicas := drop(results[cell{locaware.ProtocolDicas, false}], results[cell{locaware.ProtocolDicas, true}])
	dLoc := drop(results[cell{locaware.ProtocolLocaware, false}], results[cell{locaware.ProtocolLocaware, true}])
	fmt.Printf("success-rate change under churn: Dicas %+.1f%%, Locaware %+.1f%%\n", 100*dDicas, 100*dLoc)
	churnDicas := results[cell{locaware.ProtocolDicas, true}]
	churnLoc := results[cell{locaware.ProtocolLocaware, true}]
	fmt.Printf("under churn Locaware still leads Dicas: success %.3f vs %.3f, distance %.1f ms vs %.1f ms\n",
		churnLoc.SuccessRate, churnDicas.SuccessRate, churnLoc.AvgDownloadRTTMs, churnDicas.AvgDownloadRTTMs)
	fmt.Println("(stale providers are filtered at selection time; broken reverse paths cost both protocols alike)")
}

func drop(stable, churned *locaware.Result) float64 {
	if stable.SuccessRate == 0 {
		return 0
	}
	return (churned.SuccessRate - stable.SuccessRate) / stable.SuccessRate
}
