// Flashcrowd: the motivating scenario of the paper's introduction — a few
// files become wildly popular, and Locaware's exploitation of natural
// replication ("a peer that requested and downloaded a file can provide its
// copy for subsequent queries") turns the crowd itself into nearby supply.
//
// The example drives an extremely skewed workload (Zipf s=1.4, so the top
// handful of files dominate) and reports, in query-count windows, how the
// download distance and same-locality rate evolve for Locaware versus
// Flooding: flooding stays flat, Locaware's distance falls as providers
// multiply across localities.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"

	locaware "github.com/p2prepro/locaware"
)

func main() {
	opts := locaware.DefaultOptions()
	opts.Peers = 400
	opts.QueryRate = 0.005
	opts.ZipfS = 1.4 // flash crowd: queries concentrate on a few files

	fmt.Println("flash crowd: 400 peers, Zipf s=1.4, 2000 measured queries")
	cmp, err := locaware.Compare(opts,
		[]locaware.Protocol{locaware.ProtocolFlooding, locaware.ProtocolLocaware},
		400, 2000, []int{250, 500, 750, 1000, 1250, 1500, 1750, 2000})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("download distance by window (Fig. 2's trend — Locaware improves, Flooding is flat):")
	fmt.Print(cmp.FigureTable(locaware.FigureDownloadDistance))

	fl := cmp.Result(locaware.ProtocolFlooding)
	la := cmp.Result(locaware.ProtocolLocaware)
	fmt.Println()
	fmt.Printf("same-locality downloads: flooding %.1f%%, locaware %.1f%%\n",
		100*fl.SameLocalityRate, 100*la.SameLocalityRate)
	fmt.Printf("search traffic:          flooding %.0f msgs/query, locaware %.0f msgs/query (%+.1f%%)\n",
		fl.AvgMessagesPerQuery, la.AvgMessagesPerQuery,
		100*(la.AvgMessagesPerQuery-fl.AvgMessagesPerQuery)/fl.AvgMessagesPerQuery)
	fmt.Printf("provider entries cached by locaware: %d across %d filenames\n",
		la.CachedProviderEntries, la.CachedFilenames)
}
