// Sweeps: every figure in the paper is a sweep — a metric plotted against
// a varied parameter for the four protocols, averaged over repeated runs.
// The sweep campaign engine makes that whole experiment one declarative
// object: axes over any simulation parameter, a protocol set and a
// trials-per-cell count expand into a grid of cells, scheduled across the
// worker pool and streamed into cross-trial aggregates with mean ± 95% CI
// error bars.
//
// This example runs a shrunken built-in campaign (the TTL sweep), prints
// its figure table and tidy CSV, then shows the no-code path: a custom
// two-axis campaign defined as JSON, including a scenario-intensity axis
// that dials churn pressure from "off" to "double".
//
//	go run ./examples/sweeps
package main

import (
	"fmt"
	"log"

	locaware "github.com/p2prepro/locaware"
)

func main() {
	base := locaware.DefaultOptions()
	base.QueryRate = 0.005 // accelerate arrivals so the example runs in seconds

	// A built-in campaign, shrunk to example size. Cell values are
	// byte-identical at any Workers count, and each cell can be reproduced
	// standalone: RunTrials with the cell's configuration and derived seed
	// (SweepResult.CellSeed) gives the same numbers bit for bit.
	sw, err := locaware.SweepByName("ttl-sweep")
	if err != nil {
		log.Fatal(err)
	}
	sw = sw.WithTrials(2).WithBudget(200, 600)
	res, err := locaware.RunSweep(base, sw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== campaign %q: %s\n", sw.Name(), sw.Description())
	fmt.Printf("%d cells × %d protocols × %d trials = %d runs, %.1f cells/sec\n\n",
		res.NumCells(), len(sw.Protocols()), res.Trials(), res.Runs(), res.CellsPerSecond())
	table, err := res.FigureTable("success", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("success rate vs TTL (mean±95%%CI)\n%s\n", table)

	// The no-code path: a custom campaign as JSON — cache capacity crossed
	// with churn intensity, over the two caching protocols that matter for
	// the comparison.
	spec := []byte(`{
	  "name": "cache-under-churn",
	  "description": "does index caching survive rising churn?",
	  "protocols": ["Dicas", "Locaware"],
	  "warmup": 200,
	  "queries": 600,
	  "trials": 2,
	  "scenario": "steady-churn",
	  "base": {"peers": 300},
	  "axes": [
	    {"param": "cache-filenames", "values": [10, 50]},
	    {"param": "scenario-intensity", "values": [0, 1, 2]}
	  ]
	}`)
	custom, err := locaware.ParseSweep(spec)
	if err != nil {
		log.Fatal(err)
	}
	cres, err := locaware.RunSweep(base, custom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== campaign %q: %d cells\n\n", custom.Name(), cres.NumCells())
	table, err = cres.FigureTable("success", "scenario-intensity")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("success rate vs churn intensity, per cache capacity\n%s\n", table)
	fmt.Println("tidy CSV (cell × protocol):")
	fmt.Print(cres.CSV())
}
