// Locality: reproduce the §5.1 landmark analysis. The paper implements
// physical locations with 4 landmarks (24 possible orderings / locIds) and
// argues that 5 landmarks (120 locIds) "scatter the peers into many
// different localities": with 1000 peers the average locality holds only ≈8
// peers, so a requestor rarely finds a provider sharing its locId.
//
// This example prints the locality census for 3, 4 and 5 landmarks over the
// paper's 1000 peers, then shows the end-to-end consequence on Locaware's
// same-locality download rate.
//
//	go run ./examples/locality
package main

import (
	"fmt"
	"log"

	locaware "github.com/p2prepro/locaware"
)

func main() {
	fmt.Println("landmark / locality analysis over 1000 peers (paper §5.1)")
	fmt.Println()
	fmt.Printf("%-10s %10s %10s %14s %10s\n", "landmarks", "possible", "occupied", "mean peers", "largest")
	for _, k := range []int{3, 4, 5} {
		opts := locaware.DefaultOptions()
		opts.Landmarks = k
		rep := locaware.Localities(opts)
		fmt.Printf("%-10d %10d %10d %14.1f %10d\n",
			rep.Landmarks, rep.PossibleLocIDs, rep.OccupiedLocIDs,
			rep.MeanPeersPerLocality, rep.LargestLocality)
	}

	fmt.Println()
	fmt.Println("consequence for Locaware (400 peers, 500 warmup + 1000 measured queries):")
	fmt.Printf("%-10s %12s %14s %12s\n", "landmarks", "success", "rtt (ms)", "same-loc")
	for _, k := range []int{3, 4, 5} {
		opts := locaware.DefaultOptions()
		opts.Peers = 400
		opts.QueryRate = 0.005
		opts.Landmarks = k
		r, err := locaware.Run(opts, locaware.ProtocolLocaware, 500, 1000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %12.3f %14.1f %12.3f\n", k, r.SuccessRate, r.AvgDownloadRTTMs, r.SameLocalityRate)
	}
	fmt.Println()
	fmt.Println("fewer landmarks -> larger localities -> same-locality providers easier to find;")
	fmt.Println("but too few landmarks blur distance (a 'locality' spans a bigger region).")
}
