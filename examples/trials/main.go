// Example trials: replicated, parallel experiments.
//
// The paper's figure points are averages over repeated PeerSim runs. This
// example reproduces that methodology with the trials API: every protocol
// cell is replicated over independently seeded worlds fanned out across
// the CPUs, and each metric arrives as mean±95%CI. It then uses the same
// machinery for a parameter sweep over overlay size — the kind of grid
// that is only practical once trials run in parallel.
//
// Determinism contract: same seed, same numbers, at any -style worker
// count; run it twice and the output is byte-identical.
package main

import (
	"fmt"
	"log"

	locaware "github.com/p2prepro/locaware"
)

func main() {
	opts := locaware.DefaultOptions()
	opts.Peers = 150
	opts.QueryRate = 0.01 // accelerate virtual time for the example
	opts.Trials = 4       // replicated worlds per protocol cell
	opts.Workers = 0      // one simulation per CPU

	fmt.Println("== Replicated comparison (4 trials, paired worlds)")
	cmp, err := locaware.CompareTrials(opts,
		[]locaware.Protocol{locaware.ProtocolFlooding, locaware.ProtocolDicas, locaware.ProtocolLocaware},
		100, 200, []int{100, 200})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %14s %16s %14s\n", "protocol", "success", "msgs/query", "rtt(ms)")
	for _, set := range cmp.Sets {
		fmt.Printf("%-12s %14s %16s %14s\n",
			set.Protocol, set.SuccessRate, set.AvgMessagesPerQuery, set.AvgDownloadRTTMs)
	}
	fmt.Println()
	fmt.Println(cmp.FigureTable(locaware.FigureSuccessRate))

	fmt.Println("== Overlay-size sweep (Locaware, 3 trials per point)")
	fmt.Printf("%-8s %14s %16s\n", "peers", "success", "msgs/query")
	for _, peers := range []int{100, 150, 200} {
		o := opts
		o.Peers = peers
		o.Trials = 3
		res, err := locaware.RunTrials(o, locaware.ProtocolLocaware, 100, 200)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %14s %16s\n", peers, res.SuccessRate, res.AvgMessagesPerQuery)
	}
}
