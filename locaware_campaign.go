package locaware

import (
	"context"
	"errors"
	"time"

	"github.com/p2prepro/locaware/internal/campaign"
	"github.com/p2prepro/locaware/internal/sweep"
)

// CampaignOptions configures distributed / resumable sweep execution:
// checkpointing and resume for every mode, lease handling for the
// coordinator, polling for workers.
type CampaignOptions struct {
	// Checkpoint is a directory receiving one content-addressed file per
	// finished cell; "" disables checkpointing. Checkpoints are bound to
	// the campaign's content hash (SweepFingerprint) — files from a
	// different spec, seed, trial count or base configuration are
	// detected and skipped.
	Checkpoint string
	// Resume, with Checkpoint set, loads existing checkpoints and
	// executes only the missing cells; false re-runs everything (still
	// writing fresh checkpoints). Corrupted, truncated or foreign files
	// are reported in CampaignStats.Warnings and their cells re-run.
	Resume bool
	// LeaseTimeout is how long the coordinator waits for a leased cell
	// before reissuing it to another worker (<= 0: 2 minutes).
	LeaseTimeout time.Duration
	// Poll is the worker's idle retry interval (<= 0: 200ms).
	Poll time.Duration
	// Logf receives progress lines (resume counts, lease reissues,
	// per-cell completions); nil discards them.
	Logf func(format string, args ...any)
	// Observer, when non-nil, attaches campaign observability: cell runs
	// are instrumented with it, the coordinator serves it on /metrics
	// (plus /debug/pprof/) alongside the lease protocol and absorbs
	// worker-posted counter deltas, and workers post their per-cell
	// deltas. Inert: campaign bytes and the content hash are unchanged.
	Observer *Observer
	// Progress, when > 0, replaces per-cell Logf lines with one summary
	// line per interval: done/leased/resumed/reissued counts, the EWMA
	// completion rate and an ETA.
	Progress time.Duration
	// FlightRecorder, when non-nil, attaches tail-sampling tracing to every
	// cell run; each completed cell then carries its worst-case query trace
	// as an exemplar (SweepResult.CellExemplar), workers ship exemplars to
	// the coordinator with their results, and the coordinator serves the
	// collection on /traces (and /traces?cell=N for one rendered timeline).
	// Like Observer, recording never changes campaign bytes or the content
	// hash, so traced and untraced processes interoperate.
	FlightRecorder *FlightRecorder
}

// CampaignStats reports how a campaign's cells were obtained.
type CampaignStats struct {
	// Cells is the grid size.
	Cells int
	// Resumed counts cells restored from the checkpoint store.
	Resumed int
	// Executed counts cells computed this run (locally, or — for the
	// coordinator — received from workers).
	Executed int
	// Reissued counts worker leases that expired and were handed out
	// again (coordinator only).
	Reissued int
	// Duplicates counts discarded double results (coordinator only).
	Duplicates int
	// Warnings collects non-fatal anomalies: skipped checkpoint files,
	// rejected worker results, checkpoint write failures.
	Warnings []string
}

func (c CampaignOptions) lower() campaign.Options {
	opt := campaign.Options{
		Checkpoint:   c.Checkpoint,
		Resume:       c.Resume,
		LeaseTimeout: c.LeaseTimeout,
		Poll:         c.Poll,
		Logf:         c.Logf,
		Progress:     c.Progress,
	}
	if c.Observer != nil {
		opt.Obs = c.Observer.reg
	}
	if c.FlightRecorder != nil {
		opt.TracePolicy = c.FlightRecorder.policy()
	}
	return opt
}

func liftStats(s campaign.RunStats) CampaignStats {
	return CampaignStats{
		Cells:      s.Cells,
		Resumed:    s.Resumed,
		Executed:   s.Executed,
		Reissued:   s.Reissued,
		Duplicates: s.Duplicates,
		Warnings:   s.Warnings,
	}
}

// campaignSpec resolves the effective spec the campaign layer runs: the
// same Options fallbacks RunSweep applies, so every execution mode —
// in-process, checkpointed, coordinator, worker — agrees on the campaign
// identity (and therefore the content hash) given identical flags.
func campaignSpec(o Options, sw *Sweep) (*sweep.Spec, error) {
	if sw == nil {
		sw = o.Sweep
	}
	if sw == nil {
		return nil, errors.New("locaware: campaign execution needs a sweep (argument or Options.Sweep)")
	}
	spec := *sw.spec
	if spec.Trials <= 0 && o.Trials > 0 {
		spec.Trials = o.Trials
	}
	return &spec, nil
}

// SweepFingerprint returns the campaign content hash of (o, sw): a
// SHA-256 over the spec, the resolved seed/trials/protocol identity and
// the base configuration. Two processes exchange campaign work only when
// their fingerprints match, and checkpoint files bind to it.
func SweepFingerprint(o Options, sw *Sweep) (string, error) {
	spec, err := campaignSpec(o, sw)
	if err != nil {
		return "", err
	}
	plan, err := sweep.NewPlan(o.coreConfig(), spec)
	if err != nil {
		return "", err
	}
	return plan.Hash(), nil
}

// RunSweepCheckpointed executes the campaign in-process like RunSweep,
// additionally checkpointing every finished cell into copt.Checkpoint
// and — with copt.Resume — skipping cells already present there, so an
// interrupted campaign recomputes only the missing subset. Output is
// byte-identical to an uninterrupted RunSweep of the same options; the
// returned stats carry the resumed/executed split.
func RunSweepCheckpointed(o Options, sw *Sweep, copt CampaignOptions) (*SweepResult, CampaignStats, error) {
	spec, err := campaignSpec(o, sw)
	if err != nil {
		return nil, CampaignStats{}, err
	}
	camp, stats, err := campaign.Run(o.coreConfig(), spec, o.Workers, copt.lower())
	if err != nil {
		return nil, liftStats(stats), err
	}
	return &SweepResult{campaign: camp}, liftStats(stats), nil
}

// ServeSweep runs a campaign coordinator: it binds addr, expands the
// sweep into leasable cells, serves them to workers over the HTTP lease
// protocol (/lease, /result, /status), reissues leases whose workers
// miss the deadline, deduplicates double results (first complete wins),
// checkpoints finished cells when copt.Checkpoint is set, and returns
// the folded result once every cell is in — byte-identical to an
// in-process RunSweep of the same options. It blocks until the campaign
// completes.
func ServeSweep(o Options, sw *Sweep, addr string, copt CampaignOptions) (*SweepResult, CampaignStats, error) {
	spec, err := campaignSpec(o, sw)
	if err != nil {
		return nil, CampaignStats{}, err
	}
	coord, err := campaign.NewCoordinator(o.coreConfig(), spec, copt.lower())
	if err != nil {
		return nil, CampaignStats{}, err
	}
	camp, stats, err := coord.Serve(addr)
	if err != nil {
		return nil, liftStats(stats), err
	}
	return &SweepResult{campaign: camp}, liftStats(stats), nil
}

// WorkSweep runs a campaign worker against the coordinator at url: it
// resolves the identical sweep locally, refuses to execute jobs whose
// campaign fingerprint differs from its own (stale worker protection),
// and loops lease → execute cell at its cell-local seed → post result
// until the coordinator reports completion. o.Workers bounds the
// simulation pool used per cell. It returns the number of cells this
// worker computed.
func WorkSweep(o Options, sw *Sweep, url string, copt CampaignOptions) (int, error) {
	spec, err := campaignSpec(o, sw)
	if err != nil {
		return 0, err
	}
	w, err := campaign.NewWorker(o.coreConfig(), spec, url, o.Workers, copt.lower())
	if err != nil {
		return 0, err
	}
	return w.Run(context.Background())
}
