// Command locaware-sim runs a single protocol simulation and prints its
// summary metrics.
//
// Usage:
//
//	locaware-sim -protocol Locaware -peers 1000 -warmup 1000 -queries 2000
//
// Protocols: Flooding, Dicas, Dicas-Keys, Locaware, Locaware-LR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	locaware "github.com/p2prepro/locaware"
)

func main() {
	var (
		protoName = flag.String("protocol", "Locaware", "protocol: Flooding|Dicas|Dicas-Keys|Locaware|Locaware-LR")
		peers     = flag.Int("peers", 1000, "number of peers (paper: 1000)")
		degree    = flag.Float64("degree", 3, "average overlay degree (paper: 3)")
		landmarks = flag.Int("landmarks", 4, "number of landmarks (paper: 4)")
		files     = flag.Int("files", 3000, "catalogue size (paper: 3000)")
		ttl       = flag.Int("ttl", 7, "query TTL (paper: 7)")
		groups    = flag.Int("groups", 4, "Dicas group count M")
		cacheCap  = flag.Int("cache", 50, "response-index capacity in filenames (paper: 50)")
		bloomBits = flag.Int("bloombits", 1200, "Bloom filter size in bits (paper: 1200)")
		rate      = flag.Float64("rate", 0.00083, "queries/second/peer (paper: 0.00083)")
		zipf      = flag.Float64("zipf", 1.0, "Zipf popularity exponent")
		warmup    = flag.Int("warmup", 1000, "warmup queries (records discarded)")
		queries   = flag.Int("queries", 2000, "measured queries")
		seed      = flag.Int64("seed", 1, "random seed")
		churn     = flag.Bool("churn", false, "enable peer churn")
		asJSON    = flag.Bool("json", false, "emit the result as JSON")
	)
	flag.Parse()

	opts := locaware.DefaultOptions()
	opts.Seed = *seed
	opts.Peers = *peers
	opts.AvgDegree = *degree
	opts.Landmarks = *landmarks
	opts.Files = *files
	opts.TTL = *ttl
	opts.Groups = *groups
	opts.CacheFilenames = *cacheCap
	opts.BloomBits = *bloomBits
	opts.QueryRate = *rate
	opts.ZipfS = *zipf
	opts.Churn = *churn

	res, err := locaware.Run(opts, locaware.Protocol(*protoName), *warmup, *queries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locaware-sim:", err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "locaware-sim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("protocol            %s\n", res.Protocol)
	fmt.Printf("peers               %d\n", *peers)
	fmt.Printf("measured queries    %d (after %d warmup)\n", res.Queries, *warmup)
	fmt.Printf("simulated time      %.1f s\n", res.SimulatedSeconds)
	fmt.Printf("events processed    %d\n", res.Events)
	fmt.Println()
	fmt.Printf("success rate        %.4f\n", res.SuccessRate)
	fmt.Printf("messages/query      %.2f\n", res.AvgMessagesPerQuery)
	fmt.Printf("download RTT        %.2f ms\n", res.AvgDownloadRTTMs)
	fmt.Printf("same-locality rate  %.4f\n", res.SameLocalityRate)
	fmt.Printf("avg hops to hit     %.2f\n", res.AvgHops)
	fmt.Println()
	fmt.Printf("bloom gossip        %d messages, %.2f kbit\n", res.ControlMessages, res.ControlKbits)
	fmt.Printf("cached filenames    %d (%.2f per peer)\n", res.CachedFilenames, float64(res.CachedFilenames)/float64(*peers))
	fmt.Printf("provider entries    %d\n", res.CachedProviderEntries)
}
