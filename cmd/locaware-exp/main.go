// Command locaware-exp regenerates the Locaware paper's evaluation figures
// and the ablation/extension experiments documented in DESIGN.md.
//
// Figures (paper §5.2):
//
//	locaware-exp -fig 2      # download distance vs #queries (Fig. 2)
//	locaware-exp -fig 3      # search traffic vs #queries   (Fig. 3)
//	locaware-exp -fig 4      # success rate vs #queries     (Fig. 4)
//	locaware-exp -fig all    # everything + headline claims
//
// Replication and parallelism: every experiment accepts -trials N to
// average over N independently seeded worlds (figure cells become
// mean±95%CI, as the paper's averaged PeerSim runs) and -workers W to bound
// the simulation worker pool (0 = one per CPU). Results are identical for
// any -workers value.
//
//	locaware-exp -fig all -trials 8             # error-barred figures
//	locaware-exp -ablation cachesize -trials 4  # replicated sweep
//
// Ablations/extensions:
//
//	locaware-exp -ablation landmarks   # 3/4/5 landmarks (§5.1 discussion)
//	locaware-exp -ablation cachesize   # RI capacity sweep
//	locaware-exp -ablation bloom       # Bloom filter size sweep
//	locaware-exp -ablation groups      # Dicas group count M sweep
//	locaware-exp -extension lr         # location-aware routing (§6)
//	locaware-exp -extension churn      # churn resilience
//
// Scenarios (phased network dynamics with per-phase metrics):
//
//	locaware-exp -scenario list                  # built-in registry
//	locaware-exp -scenario flashcrowd            # run a built-in scenario
//	locaware-exp -scenario flashcrowd -trials 8  # per-phase mean±95%CI tables
//	locaware-exp -scenario my.json               # run a custom JSON spec
//
// Sweep campaigns (declarative parameter grids with streamed cross-trial
// aggregation and figure export):
//
//	locaware-exp -sweep list          # built-in campaign registry
//	locaware-exp -sweep size-sweep    # run a built-in campaign
//	locaware-exp -sweep my.json       # run a custom JSON campaign
//	locaware-exp -sweep ttl-sweep -out results/   # also write CSV files
//
// A campaign prints its figure tables (mean±95%CI per cell) and its tidy
// CSV; -out additionally writes cells.csv, phases.csv (under scenarios)
// and one fig_<metric>.csv per headline metric into a directory. The
// -trials/-seed/-warmup/-queries flags override the campaign spec only
// when set explicitly on the command line.
//
// Distributed, resumable campaigns (see README "Distributed campaigns"):
//
//	locaware-exp -sweep ttl-sweep -checkpoint ckpt/     # checkpoint per cell; re-run resumes
//	locaware-exp -sweep ttl-sweep -serve :8080 ...      # coordinator: lease cells to workers
//	locaware-exp -sweep ttl-sweep -worker http://host:8080  # worker: lease, run, report
//
// Checkpoints are bound to the campaign's content hash (spec + seed +
// trials + protocols + base flags), so stale files are detected and
// their cells re-run; -resume=false ignores existing checkpoints.
// Coordinator and workers must be launched with the identical spec and
// base flags — a fingerprint mismatch refuses work instead of silently
// computing a different campaign.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	locaware "github.com/p2prepro/locaware"
)

func main() {
	var (
		fig        = flag.String("fig", "", "figure to regenerate: 2|3|4|all")
		ablation   = flag.String("ablation", "", "ablation: landmarks|cachesize|bloom|groups")
		ext        = flag.String("extension", "", "extension: lr|churn")
		scen       = flag.String("scenario", "", "phased-dynamics scenario: a built-in name, a JSON spec path, or 'list'")
		sweepArg   = flag.String("sweep", "", "sweep campaign: a built-in name, a JSON spec path, or 'list'")
		out        = flag.String("out", "", "directory to write sweep CSV exports into")
		serve      = flag.String("serve", "", "with -sweep: run a campaign coordinator on this address (host:port) leasing cells to -worker processes")
		workerURL  = flag.String("worker", "", "with -sweep: run a campaign worker against this coordinator URL (launch with the coordinator's exact spec and flags)")
		checkpoint = flag.String("checkpoint", "", "with -sweep: checkpoint finished cells into this directory (one content-addressed file per cell)")
		resume     = flag.Bool("resume", true, "with -checkpoint: load existing checkpoints and execute only the missing cells (-resume=false re-runs everything)")
		leaseT     = flag.Duration("lease-timeout", 2*time.Minute, "with -serve: reissue a leased cell if its worker has not reported within this deadline")
		peers      = flag.Int("peers", 1000, "number of peers")
		warmup     = flag.Int("warmup", 1000, "warmup queries")
		queries    = flag.Int("queries", 2000, "measured queries")
		seed       = flag.Int64("seed", 1, "random seed")
		trials     = flag.Int("trials", 1, "independent replications per experiment cell")
		workers    = flag.Int("workers", 0, "max concurrent simulations (0 = one per CPU)")
		shards     = flag.Int("shards", 0, "per-locality event-loop shards per simulation, each drained on its own goroutine (<=1 = single queue; clamped to the occupied locality count)")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		stats      = flag.Bool("stats", false, "print a runtime observability report (event loop, protocol, pools) after the experiment")
		progress   = flag.Duration("progress", 0, "with -sweep campaigns: print one progress summary per interval (done/leased/ETA) instead of per-cell lines, e.g. -progress 5s")
		obsAddr    = flag.String("obs-addr", "", "serve /metrics and /debug/pprof/ on this address (host:port) for the lifetime of the process; the -serve coordinator exposes them on its own address automatically")
		flightRec  = flag.Int("flight-recorder", 0, "attach a tail-sampling flight recorder keeping the N slowest plus all failed queries; figures/scenarios print trial-0 span trees, sweeps ship a worst-case exemplar per cell (coordinator serves them on /traces)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuProfileFile = f
		defer stopProfiles()
	}
	if *memprofile != "" {
		memProfilePath = *memprofile
		defer stopProfiles()
	}

	opts := locaware.DefaultOptions()
	opts.Seed = *seed
	opts.Peers = *peers
	opts.Trials = *trials
	opts.Workers = *workers
	opts.Shards = *shards

	// Observability is inert, so attach it whenever any sink wants it:
	// the -stats report, a standalone -obs-addr scrape surface, or the
	// campaign endpoints (coordinator /metrics, worker delta posts).
	if *stats || *obsAddr != "" || *serve != "" || *workerURL != "" {
		observer = locaware.NewObserver()
		statsMode = *stats
		opts.Observer = observer
	}
	// The flight recorder is likewise inert: attach it to single-run
	// experiments through Options (trial-0 traces print after the tables)
	// and to campaigns through CampaignOptions (cells ship exemplars).
	if *flightRec > 0 {
		recorder = &locaware.FlightRecorder{SlowestN: *flightRec, KeepFailed: true}
		opts.FlightRecorder = recorder
	}
	if *obsAddr != "" {
		go func() {
			fmt.Fprintln(os.Stderr, "locaware-exp: serving /metrics and /debug/pprof/ on", *obsAddr)
			if err := http.ListenAndServe(*obsAddr, observer.Handler()); err != nil {
				fmt.Fprintln(os.Stderr, "locaware-exp: obs server:", err)
			}
		}()
	}

	switch {
	case *fig != "":
		runFigures(opts, *fig, *warmup, *queries, *csv)
	case *ablation != "":
		runAblation(opts, *ablation, *warmup, *queries)
	case *ext != "":
		runExtension(opts, *ext, *warmup, *queries)
	case *scen != "":
		runScenario(opts, *scen, *warmup, *queries)
	case *sweepArg != "":
		dist := distOpts{
			serve: *serve, worker: *workerURL,
			checkpoint: *checkpoint, resume: *resume, lease: *leaseT,
			progress: *progress,
		}
		runSweep(opts, *sweepArg, *out, setFlags(), *warmup, *queries, dist)
	case *serve != "" || *workerURL != "" || *checkpoint != "":
		fatal(fmt.Errorf("-serve/-worker/-checkpoint need -sweep to name the campaign"))
	default:
		flag.Usage()
		os.Exit(2)
	}
	if statsMode {
		fmt.Println("\n== Runtime metrics (Prometheus text exposition)")
		if err := observer.WriteMetrics(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// observer / statsMode hold the process-wide observability surface when
// any of -stats, -obs-addr, -serve or -worker enables it; recorder holds
// the -flight-recorder tail-sampling policy.
var (
	observer  *locaware.Observer
	statsMode bool
	recorder  *locaware.FlightRecorder
)

// printTraces prints one run's flight-recorder retentions: a summary line
// per kept query plus the slowest one's full span tree.
func printTraces(label string, r *locaware.Result) {
	if r == nil || len(r.Traces) == 0 {
		return
	}
	fmt.Printf("\n== Flight recorder: %s — %d trace(s) retained\n", label, len(r.Traces))
	for _, t := range r.Traces {
		status := "ok"
		if t.Failed {
			status = "FAILED"
		}
		fmt.Printf("kept=%-16s q=%-6d latency=%8.3fs hops=%-3d %s\n",
			t.Why, t.Query, t.LatencySeconds, t.Hops, status)
	}
	fmt.Printf("slowest query (q=%d):\n%s", r.Traces[0].Query, r.Traces[0].Render())
}

// setFlags reports which flags were given explicitly on the command line —
// sweep specs carry their own trials/seed/warmup/queries, so flag defaults
// must not silently override them.
func setFlags() map[string]bool {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

func runScenario(opts locaware.Options, arg string, warmup, queries int) {
	if arg == "list" {
		fmt.Println("== Built-in scenarios")
		for _, name := range locaware.ScenarioNames() {
			sc, err := locaware.ScenarioByName(name)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-16s %-10s %s\n", sc.Name(),
				fmt.Sprintf("%d phases", len(sc.PhaseNames())), sc.Description())
		}
		return
	}
	sc, err := locaware.LoadScenario(arg)
	if err != nil {
		fatal(err)
	}
	opts.Scenario = sc
	fmt.Printf("== Scenario %q: %s\n", sc.Name(), sc.Description())
	fmt.Printf("phases: %s over %d measured queries\n\n", strings.Join(sc.PhaseNames(), " → "), queries)
	if opts.Trials > 1 {
		// Replicated: per-phase cells become mean±95%CI over the trials.
		cmp, err := locaware.CompareTrials(opts, locaware.Baselines(), warmup, queries, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("(per-phase cells are mean±95%%CI over %d trials)\n\n", opts.Trials)
		for _, r := range cmp.Sets {
			fmt.Printf("-- %s (whole run: success=%s msgs/q=%s rtt=%sms)\n",
				r.Protocol, r.SuccessRate, r.AvgMessagesPerQuery, r.AvgDownloadRTTMs)
			fmt.Print(r.PhaseTable())
			fmt.Println()
		}
		if recorder != nil {
			for _, r := range cmp.Sets {
				if len(r.Trials) > 0 {
					printTraces(fmt.Sprintf("%s (trial 0)", r.Protocol), r.Trials[0])
				}
			}
		}
		return
	}
	cmp, err := locaware.Compare(opts, locaware.Baselines(), warmup, queries, nil)
	if err != nil {
		fatal(err)
	}
	for _, r := range cmp.Results {
		fmt.Printf("-- %s (whole run: success=%.3f msgs/q=%.1f rtt=%.1fms)\n",
			r.Protocol, r.SuccessRate, r.AvgMessagesPerQuery, r.AvgDownloadRTTMs)
		fmt.Print(locaware.PhaseTable(r.Phases))
		fmt.Println()
	}
	if recorder != nil {
		for _, r := range cmp.Results {
			printTraces(string(r.Protocol), r)
		}
	}
}

// distOpts carries the distributed/resumable campaign flags.
type distOpts struct {
	serve      string
	worker     string
	checkpoint string
	resume     bool
	lease      time.Duration
	progress   time.Duration
}

func (d distOpts) enabled() bool { return d.serve != "" || d.worker != "" || d.checkpoint != "" }

func runSweep(opts locaware.Options, arg, outDir string, set map[string]bool, warmup, queries int, dist distOpts) {
	if arg == "list" {
		fmt.Println("== Built-in sweep campaigns")
		for _, name := range locaware.SweepNames() {
			sw, err := locaware.SweepByName(name)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-18s %-9s %s\n", sw.Name(),
				fmt.Sprintf("%d cells", sw.NumCells()), sw.Description())
		}
		return
	}
	sw, err := locaware.LoadSweep(arg)
	if err != nil {
		fatal(err)
	}
	// Explicit flags override the campaign spec; defaults never do. An
	// explicit -peers must go through the spec's base overrides — specs
	// like cache-sweep pin their own overlay size there, which would
	// silently win over the flag-derived base configuration otherwise.
	if set["peers"] {
		sw, err = sw.WithBase("peers", float64(opts.Peers))
		if err != nil {
			fatal(err)
		}
	}
	if set["trials"] {
		sw = sw.WithTrials(opts.Trials)
	}
	if set["seed"] {
		sw = sw.WithSeed(opts.Seed)
	}
	if set["warmup"] || set["queries"] {
		w, q := sw.Warmup(), sw.Queries()
		if set["warmup"] {
			w = warmup
		}
		if set["queries"] {
			q = queries
		}
		sw = sw.WithBudget(w, q)
	}
	if dist.serve != "" && dist.worker != "" {
		fatal(fmt.Errorf("-serve and -worker are mutually exclusive: a process is a coordinator or a worker, not both"))
	}
	copt := locaware.CampaignOptions{
		Checkpoint:     dist.checkpoint,
		Resume:         dist.resume,
		LeaseTimeout:   dist.lease,
		Observer:       observer,
		FlightRecorder: recorder,
		Progress:       dist.progress,
		Logf: func(format string, args ...any) {
			fmt.Printf("campaign: "+format+"\n", args...)
		},
	}
	var (
		res   *locaware.SweepResult
		stats locaware.CampaignStats
		err2  error
	)
	switch {
	case dist.worker != "":
		// Worker mode: execute cells for a remote coordinator; the
		// coordinator prints the campaign tables.
		n, err := locaware.WorkSweep(opts, sw, dist.worker, copt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("worker done: executed %d cells\n", n)
		return
	case dist.serve != "":
		res, stats, err2 = locaware.ServeSweep(opts, sw, dist.serve, copt)
	case dist.checkpoint != "":
		res, stats, err2 = locaware.RunSweepCheckpointed(opts, sw, copt)
	default:
		res, err2 = locaware.RunSweep(opts, sw)
	}
	if err2 != nil {
		fatal(err2)
	}
	fmt.Printf("== Sweep campaign %q: %s\n", sw.Name(), sw.Description())
	fmt.Printf("axes: %s | %d cells × %d protocols × %d trials = %d runs (seed %d)\n\n",
		strings.Join(sw.Axes(), ", "), res.NumCells(), len(sw.Protocols()), res.Trials(), res.Runs(), res.Seed())
	figures := []struct{ metric, title string }{
		{"success", "success rate"},
		{"msgs", "search traffic (messages/query)"},
		{"rtt", "download distance (ms)"},
	}
	for _, f := range figures {
		table, err := res.FigureTable(f.metric, "")
		if err != nil {
			fatal(err)
		}
		if res.Trials() > 1 {
			fmt.Printf("-- %s (mean±95%%CI over %d trials)\n%s\n", f.title, res.Trials(), table)
		} else {
			fmt.Printf("-- %s\n%s\n", f.title, table)
		}
	}
	fmt.Println("== Tidy CSV (cell × protocol)")
	fmt.Print(res.CSV())
	if phases := res.PhaseCSV(); phases != "" {
		fmt.Println("\n== Per-phase CSV (cell × protocol × phase)")
		fmt.Print(phases)
	}
	fmt.Printf("\ncompleted %d cells (%d runs) in %.1fs — %.2f cells/sec\n",
		res.NumCells(), res.Runs(), res.Elapsed().Seconds(), res.CellsPerSecond())
	if dist.enabled() {
		fmt.Printf("campaign: %d/%d cells resumed from checkpoints, %d executed", stats.Resumed, stats.Cells, stats.Executed)
		if stats.Reissued > 0 || stats.Duplicates > 0 {
			fmt.Printf(", %d leases reissued, %d duplicate results discarded", stats.Reissued, stats.Duplicates)
		}
		fmt.Println()
		for _, w := range stats.Warnings {
			fmt.Println("campaign warning:", w)
		}
	}
	if recorder != nil {
		printExemplars(res)
	}
	if outDir != "" {
		writeSweepExports(res, outDir)
	}
}

// printExemplars prints each cell's worst-case query trace summary plus the
// campaign-wide slowest one's full span tree. A -serve coordinator exposes
// the same collection on /traces while the campaign runs.
func printExemplars(res *locaware.SweepResult) {
	fmt.Println("\n== Exemplar traces (worst query per cell)")
	var worst *locaware.SweepExemplar
	worstCell := 0
	for i := 0; i < res.NumCells(); i++ {
		ex, err := res.CellExemplar(i)
		if err != nil {
			fatal(err)
		}
		if ex == nil {
			continue
		}
		status := "ok"
		if ex.Failed {
			status = "FAILED"
		}
		fmt.Printf("cell %-4d %-14s trial=%-3d q=%-6d latency=%8.3fs hops=%-3d %s\n",
			i, ex.Protocol, ex.Trial, ex.Query, ex.LatencySeconds, ex.Hops, status)
		if worst == nil || ex.LatencySeconds > worst.LatencySeconds {
			worst, worstCell = ex, i
		}
	}
	if worst == nil {
		fmt.Println("(none retained — no query matched the retention policy)")
		return
	}
	fmt.Printf("\nslowest overall (cell %d, q=%d):\n%s", worstCell, worst.Query, worst.Rendered)
}

// writeSweepExports writes the campaign's CSV artefacts into a directory:
// cells.csv, phases.csv (scenario campaigns only) and one figure-shaped
// fig_<metric>.csv per headline metric.
func writeSweepExports(res *locaware.SweepResult, dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name, content string) {
		if content == "" {
			return
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
	write("cells.csv", res.CSV())
	write("phases.csv", res.PhaseCSV())
	for _, metric := range []string{"success", "msgs", "rtt"} {
		csv, err := res.FigureCSV(metric, "")
		if err != nil {
			fatal(err)
		}
		write("fig_"+metric+".csv", csv)
	}
}

func figureOf(name string) (locaware.Figure, string) {
	switch name {
	case "2":
		return locaware.FigureDownloadDistance, "Figure 2: download distance (ms) vs number of queries"
	case "3":
		return locaware.FigureSearchTraffic, "Figure 3: search traffic (messages/query) vs number of queries"
	case "4":
		return locaware.FigureSuccessRate, "Figure 4: success rate vs number of queries"
	}
	return "", ""
}

func runFigures(opts locaware.Options, which string, warmup, queries int, csv bool) {
	cmp, err := locaware.CompareTrials(opts, locaware.Baselines(), warmup, queries, nil)
	if err != nil {
		fatal(err)
	}
	names := []string{which}
	if which == "all" {
		names = []string{"2", "3", "4"}
	}
	for _, name := range names {
		f, title := figureOf(name)
		if f == "" {
			fatal(fmt.Errorf("unknown figure %q", name))
		}
		if opts.Trials > 1 {
			title += fmt.Sprintf(" (mean±95%%CI over %d trials)", opts.Trials)
		}
		fmt.Println("==", title)
		if csv {
			fmt.Print(cmp.FigureCSV(f))
		} else {
			fmt.Print(cmp.FigureTable(f))
		}
		fmt.Println()
	}
	if which == "all" {
		h := cmp.Headlines()
		fmt.Println("== Headline claims (paper: -14% distance, -98% traffic, +23%/+33% hit ratio)")
		fmt.Printf("download distance vs others   %+.1f%%\n", 100*h.DistanceReduction)
		fmt.Printf("search traffic vs flooding    %+.1f%%\n", 100*h.TrafficReductionVsFlooding)
		fmt.Printf("success rate vs Dicas         %+.1f%%\n", 100*h.HitGainVsDicas)
		fmt.Printf("success rate vs Dicas-Keys    %+.1f%%\n", 100*h.HitGainVsDicasKeys)
		fmt.Println()
		fmt.Println("== Per-protocol summary")
		for _, r := range cmp.Sets {
			fmt.Printf("%-12s success=%s msgs/q=%s rtt=%sms sameLoc=%s gossip=%.0f msgs\n",
				r.Protocol, r.SuccessRate, r.AvgMessagesPerQuery, r.AvgDownloadRTTMs,
				r.SameLocalityRate, r.ControlMessages.Mean)
		}
	}
	if statsMode {
		for _, r := range cmp.Sets {
			if len(r.Trials) > 0 && r.Trials[0].Runtime != nil {
				fmt.Printf("\n== %s (trial 0) ", r.Protocol)
				fmt.Print(r.Trials[0].Runtime.Report())
			}
		}
	}
	if recorder != nil {
		for _, r := range cmp.Sets {
			if len(r.Trials) > 0 {
				printTraces(fmt.Sprintf("%s (trial 0)", r.Protocol), r.Trials[0])
			}
		}
	}
}

func runAblation(opts locaware.Options, which string, warmup, queries int) {
	trialNote(opts)
	switch which {
	case "landmarks":
		fmt.Println("== Ablation: landmark count (paper §5.1: 4 landmarks → 24 locIds; 5 scatter peers too thinly)")
		fmt.Printf("%-10s %14s %16s %14s\n", "landmarks", "success", "rtt(ms)", "sameLoc")
		for _, k := range []int{3, 4, 5} {
			o := opts
			o.Landmarks = k
			r := mustTrials(o, locaware.ProtocolLocaware, warmup, queries)
			fmt.Printf("%-10d %14s %16s %14s\n", k, r.SuccessRate, r.AvgDownloadRTTMs, r.SameLocalityRate)
		}
	case "cachesize":
		fmt.Println("== Ablation: response-index capacity (paper: 50 filenames)")
		fmt.Printf("%-10s %14s %16s %14s\n", "capacity", "success", "rtt(ms)", "msgs/q")
		for _, c := range []int{10, 25, 50, 100, 200} {
			o := opts
			o.CacheFilenames = c
			r := mustTrials(o, locaware.ProtocolLocaware, warmup, queries)
			fmt.Printf("%-10d %14s %16s %14s\n", c, r.SuccessRate, r.AvgDownloadRTTMs, r.AvgMessagesPerQuery)
		}
	case "bloom":
		fmt.Println("== Ablation: Bloom filter size (paper: 1200 bits for 50 filenames × 3 keywords)")
		fmt.Printf("%-10s %14s %14s %18s\n", "bits", "success", "msgs/q", "gossip kbit")
		for _, bits := range []int{300, 600, 1200, 2400} {
			o := opts
			o.BloomBits = bits
			r := mustTrials(o, locaware.ProtocolLocaware, warmup, queries)
			fmt.Printf("%-10d %14s %14s %18s\n", bits, r.SuccessRate, r.AvgMessagesPerQuery, r.ControlKbits)
		}
	case "groups":
		fmt.Println("== Ablation: Dicas group count M (caching density vs routing selectivity)")
		fmt.Printf("%-10s %14s %14s %14s\n", "M", "success", "msgs/q", "cached")
		for _, m := range []int{2, 4, 8, 16} {
			o := opts
			o.Groups = m
			r := mustTrials(o, locaware.ProtocolLocaware, warmup, queries)
			fmt.Printf("%-10d %14s %14s %14s\n", m, r.SuccessRate, r.AvgMessagesPerQuery, r.CachedFilenames)
		}
	default:
		fatal(fmt.Errorf("unknown ablation %q", which))
	}
}

func runExtension(opts locaware.Options, which string, warmup, queries int) {
	trialNote(opts)
	switch which {
	case "lr":
		fmt.Println("== Extension: location-aware routing (paper §6 future work)")
		fmt.Printf("%-14s %14s %16s %14s %14s\n", "protocol", "success", "rtt(ms)", "sameLoc", "msgs/q")
		for _, p := range []locaware.Protocol{locaware.ProtocolLocaware, locaware.ProtocolLocawareLR} {
			r := mustTrials(opts, p, warmup, queries)
			fmt.Printf("%-14s %14s %16s %14s %14s\n", r.Protocol, r.SuccessRate, r.AvgDownloadRTTMs, r.SameLocalityRate, r.AvgMessagesPerQuery)
		}
	case "churn":
		fmt.Println("== Extension: churn resilience (stale indexes filtered at selection)")
		fmt.Printf("%-14s %10s %14s %16s\n", "protocol", "churn", "success", "rtt(ms)")
		for _, p := range []locaware.Protocol{locaware.ProtocolDicas, locaware.ProtocolLocaware} {
			for _, churn := range []bool{false, true} {
				o := opts
				o.Churn = churn
				r := mustTrials(o, p, warmup, queries)
				fmt.Printf("%-14s %10v %14s %16s\n", r.Protocol, churn, r.SuccessRate, r.AvgDownloadRTTMs)
			}
		}
	default:
		fatal(fmt.Errorf("unknown extension %q", which))
	}
}

func trialNote(opts locaware.Options) {
	if opts.Trials > 1 {
		fmt.Printf("(cells are mean±95%%CI over %d trials)\n", opts.Trials)
	}
}

// mustTrials runs the replicated experiment for one cell; with -trials 1
// the estimates collapse to the single sequential run's exact values.
func mustTrials(o locaware.Options, p locaware.Protocol, warmup, queries int) *locaware.TrialsResult {
	r, err := locaware.RunTrials(o, p, warmup, queries)
	if err != nil {
		fatal(err)
	}
	return r
}

// cpuProfileFile / memProfilePath hold the active profiling state so
// stopProfiles can finish both profiles exactly once — on the normal defer
// path and in fatal, which would otherwise os.Exit past the defers and
// leave a truncated CPU profile and no heap profile.
var (
	cpuProfileFile *os.File
	memProfilePath string
)

func stopProfiles() {
	if cpuProfileFile != nil {
		pprof.StopCPUProfile()
		cpuProfileFile.Close()
		cpuProfileFile = nil
	}
	if memProfilePath != "" {
		path := memProfilePath
		memProfilePath = ""
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "locaware-exp: heap profile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle allocations so the profile shows live heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "locaware-exp: heap profile:", err)
		}
	}
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "locaware-exp:", err)
	os.Exit(1)
}
