// Command locaware-trace runs a small simulation with event tracing and
// prints the protocol's story: query submissions, forwarding decisions,
// storage/cache hits, reverse-path caching, downloads and Bloom gossip.
//
//	locaware-trace -protocol Locaware -peers 100 -queries 10
//	locaware-trace -protocol Locaware -query 3        # one query's lifecycle
package main

import (
	"flag"
	"fmt"
	"os"

	locaware "github.com/p2prepro/locaware"
)

func main() {
	var (
		protoName = flag.String("protocol", "Locaware", "protocol: Flooding|Dicas|Dicas-Keys|Locaware|Locaware-LR")
		peers     = flag.Int("peers", 100, "number of peers")
		warmup    = flag.Int("warmup", 0, "warmup queries before the traced phase")
		queries   = flag.Int("queries", 10, "traced queries")
		query     = flag.Uint64("query", 0, "print only this query id (0 = all)")
		maxEvents = flag.Int("max-events", 20000, "trace buffer capacity")
		gossip    = flag.Bool("gossip", false, "include Bloom gossip events")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	opts := locaware.DefaultOptions()
	opts.Seed = *seed
	opts.Peers = *peers
	opts.QueryRate = 0.01 // accelerate so traces cover little virtual time

	res, events, err := locaware.RunTraced(opts, locaware.Protocol(*protoName), *warmup, *queries, *maxEvents)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locaware-trace:", err)
		os.Exit(1)
	}

	printed := 0
	for _, e := range events {
		if *query != 0 && e.Query != *query {
			continue
		}
		if !*gossip && e.Kind == "gossip" {
			continue
		}
		fmt.Println(e)
		printed++
	}
	fmt.Printf("\n%d events shown; run summary: success=%.3f msgs/query=%.1f rtt=%.1fms\n",
		printed, res.SuccessRate, res.AvgMessagesPerQuery, res.AvgDownloadRTTMs)
}
