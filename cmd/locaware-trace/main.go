// Command locaware-trace runs a small simulation with event tracing and
// prints the protocol's story: query submissions, forwarding decisions,
// storage/cache hits, reverse-path caching, downloads and Bloom gossip.
//
//	locaware-trace -protocol Locaware -peers 100 -queries 10
//	locaware-trace -protocol Locaware -query 3        # one query's lifecycle
//
// With -scenario, the run executes under a phased-dynamics timeline and
// phase-entry events appear inline with the query trace, so the log shows
// exactly which queries ran before and after each wave, crowd or outage:
//
//	locaware-trace -scenario churn-waves -queries 40
//	locaware-trace -scenario my.json -queries 40
//
// With -slowest (or -keep-failed / -min-hops), the run switches to the
// tail-sampling flight recorder: instead of the full event firehose it
// retains only the queries matching the policy, reconstructs each one's
// causal span tree and prints it as an indented timeline with per-hop
// propagation/processing attribution. -trace-out exports the retained
// trees as Chrome/Perfetto trace JSON (load at ui.perfetto.dev):
//
//	locaware-trace -slowest 3 -queries 200
//	locaware-trace -keep-failed -queries 200 -trace-out perfetto.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	locaware "github.com/p2prepro/locaware"
)

func main() {
	var (
		protoName = flag.String("protocol", "Locaware", "protocol: Flooding|Dicas|Dicas-Keys|Locaware|Locaware-LR")
		peers     = flag.Int("peers", 100, "number of peers")
		warmup    = flag.Int("warmup", 0, "warmup queries before the traced phase")
		queries   = flag.Int("queries", 10, "traced queries")
		query     = flag.Uint64("query", 0, "print only this query id (0 = all)")
		maxEvents = flag.Int("max-events", 20000, "trace buffer capacity")
		gossip    = flag.Bool("gossip", false, "include Bloom gossip events")
		records   = flag.Bool("records", false, "print the per-query record table (full-fidelity RetainRecords mode)")
		scen      = flag.String("scenario", "", "run under a phased-dynamics scenario (built-in name or JSON spec path); phase entries print inline")
		seed      = flag.Int64("seed", 1, "random seed")

		slowest    = flag.Int("slowest", 0, "flight recorder: keep the N slowest queries and print their span trees")
		keepFailed = flag.Bool("keep-failed", false, "flight recorder: keep every failed query")
		minHops    = flag.Int("min-hops", 0, "flight recorder: keep queries reaching at least this forward depth")
		traceOut   = flag.String("trace-out", "", "write retained traces as Chrome/Perfetto trace JSON to this file")
	)
	flag.Parse()

	if *slowest > 0 || *keepFailed || *minHops > 0 {
		runRecorded(*protoName, *peers, *warmup, *queries, *seed, *scen,
			&locaware.FlightRecorder{SlowestN: *slowest, KeepFailed: *keepFailed, MinHops: *minHops}, *traceOut)
		return
	}
	if *traceOut != "" {
		fmt.Fprintln(os.Stderr, "locaware-trace: -trace-out needs a flight-recorder policy (-slowest, -keep-failed or -min-hops)")
		os.Exit(1)
	}

	opts := locaware.DefaultOptions()
	opts.Seed = *seed
	opts.Peers = *peers
	opts.QueryRate = 0.01 // accelerate so traces cover little virtual time
	// Tracing is the full-fidelity path: keep per-query records so the
	// event stream can be cross-checked against each query's final outcome.
	opts.RetainRecords = *records
	if *scen != "" {
		sc, err := locaware.LoadScenario(*scen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "locaware-trace:", err)
			os.Exit(1)
		}
		opts.Scenario = sc
		fmt.Printf("scenario %q: phases %s\n", sc.Name(), strings.Join(sc.PhaseNames(), " → "))
	}

	res, events, err := locaware.RunTraced(opts, locaware.Protocol(*protoName), *warmup, *queries, *maxEvents)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locaware-trace:", err)
		os.Exit(1)
	}

	printed := 0
	for _, e := range events {
		// Phase entries annotate the timeline: always shown, even when the
		// trace is filtered down to a single query.
		if *query != 0 && e.Query != *query && e.Kind != "phase" {
			continue
		}
		if !*gossip && e.Kind == "gossip" {
			continue
		}
		fmt.Println(e)
		printed++
	}
	if *records {
		fmt.Printf("\n%-6s %-8s %-8s %10s %8s %8s %6s\n", "query", "success", "msgs", "rtt(ms)", "sameLoc", "cached", "hops")
		for _, r := range res.Records {
			// Record IDs restart at 1 for the measured phase while trace
			// events number queries network-wide (warmup included); offset
			// so -query selects the same query in both views.
			qid := r.ID + uint64(*warmup)
			if *query != 0 && qid != *query {
				continue
			}
			fmt.Printf("%-6d %-8v %-8d %10.1f %8v %8v %6d\n",
				qid, r.Success, r.Messages, r.DownloadRTTMs, r.SameLocality, r.FromCache, r.Hops)
		}
	}
	fmt.Printf("\n%d events shown; run summary: success=%.3f msgs/query=%.1f rtt=%.1fms\n",
		printed, res.SuccessRate, res.AvgMessagesPerQuery, res.AvgDownloadRTTMs)
}

// runRecorded is the flight-recorder mode: run with tail sampling, print
// each retained query's span tree, and optionally export Perfetto JSON.
func runRecorded(protoName string, peers, warmup, queries int, seed int64, scen string, fr *locaware.FlightRecorder, traceOut string) {
	opts := locaware.DefaultOptions()
	opts.Seed = seed
	opts.Peers = peers
	opts.QueryRate = 0.01
	opts.FlightRecorder = fr
	if scen != "" {
		sc, err := locaware.LoadScenario(scen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "locaware-trace:", err)
			os.Exit(1)
		}
		opts.Scenario = sc
		fmt.Printf("scenario %q: phases %s\n", sc.Name(), strings.Join(sc.PhaseNames(), " → "))
	}
	res, err := locaware.Run(opts, locaware.Protocol(protoName), warmup, queries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locaware-trace:", err)
		os.Exit(1)
	}
	for i, t := range res.Traces {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("kept=%s\n%s", t.Why, t.Render())
		if t.DroppedEvents > 0 {
			fmt.Printf("  warning: %d events dropped by the per-query buffer cap\n", t.DroppedEvents)
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "locaware-trace:", err)
			os.Exit(1)
		}
		if err := res.WritePerfetto(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "locaware-trace: writing trace:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d trace(s) to %s (load at ui.perfetto.dev or chrome://tracing)\n", len(res.Traces), traceOut)
	}
	fmt.Printf("\n%d traces retained; run summary: success=%.3f msgs/query=%.1f rtt=%.1fms\n",
		len(res.Traces), res.SuccessRate, res.AvgMessagesPerQuery, res.AvgDownloadRTTMs)
}
