// Command locaware-trace runs a small simulation with event tracing and
// prints the protocol's story: query submissions, forwarding decisions,
// storage/cache hits, reverse-path caching, downloads and Bloom gossip.
//
//	locaware-trace -protocol Locaware -peers 100 -queries 10
//	locaware-trace -protocol Locaware -query 3        # one query's lifecycle
//
// With -scenario, the run executes under a phased-dynamics timeline and
// phase-entry events appear inline with the query trace, so the log shows
// exactly which queries ran before and after each wave, crowd or outage:
//
//	locaware-trace -scenario churn-waves -queries 40
//	locaware-trace -scenario my.json -queries 40
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	locaware "github.com/p2prepro/locaware"
)

func main() {
	var (
		protoName = flag.String("protocol", "Locaware", "protocol: Flooding|Dicas|Dicas-Keys|Locaware|Locaware-LR")
		peers     = flag.Int("peers", 100, "number of peers")
		warmup    = flag.Int("warmup", 0, "warmup queries before the traced phase")
		queries   = flag.Int("queries", 10, "traced queries")
		query     = flag.Uint64("query", 0, "print only this query id (0 = all)")
		maxEvents = flag.Int("max-events", 20000, "trace buffer capacity")
		gossip    = flag.Bool("gossip", false, "include Bloom gossip events")
		records   = flag.Bool("records", false, "print the per-query record table (full-fidelity RetainRecords mode)")
		scen      = flag.String("scenario", "", "run under a phased-dynamics scenario (built-in name or JSON spec path); phase entries print inline")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	opts := locaware.DefaultOptions()
	opts.Seed = *seed
	opts.Peers = *peers
	opts.QueryRate = 0.01 // accelerate so traces cover little virtual time
	// Tracing is the full-fidelity path: keep per-query records so the
	// event stream can be cross-checked against each query's final outcome.
	opts.RetainRecords = *records
	if *scen != "" {
		sc, err := locaware.LoadScenario(*scen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "locaware-trace:", err)
			os.Exit(1)
		}
		opts.Scenario = sc
		fmt.Printf("scenario %q: phases %s\n", sc.Name(), strings.Join(sc.PhaseNames(), " → "))
	}

	res, events, err := locaware.RunTraced(opts, locaware.Protocol(*protoName), *warmup, *queries, *maxEvents)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locaware-trace:", err)
		os.Exit(1)
	}

	printed := 0
	for _, e := range events {
		// Phase entries annotate the timeline: always shown, even when the
		// trace is filtered down to a single query.
		if *query != 0 && e.Query != *query && e.Kind != "phase" {
			continue
		}
		if !*gossip && e.Kind == "gossip" {
			continue
		}
		fmt.Println(e)
		printed++
	}
	if *records {
		fmt.Printf("\n%-6s %-8s %-8s %10s %8s %8s %6s\n", "query", "success", "msgs", "rtt(ms)", "sameLoc", "cached", "hops")
		for _, r := range res.Records {
			// Record IDs restart at 1 for the measured phase while trace
			// events number queries network-wide (warmup included); offset
			// so -query selects the same query in both views.
			qid := r.ID + uint64(*warmup)
			if *query != 0 && qid != *query {
				continue
			}
			fmt.Printf("%-6d %-8v %-8d %10.1f %8v %8v %6d\n",
				qid, r.Success, r.Messages, r.DownloadRTTMs, r.SameLocality, r.FromCache, r.Hops)
		}
	}
	fmt.Printf("\n%d events shown; run summary: success=%.3f msgs/query=%.1f rtt=%.1fms\n",
		printed, res.SuccessRate, res.AvgMessagesPerQuery, res.AvgDownloadRTTMs)
}
